// Package repro is a pure-Go reproduction of "The Middle East under
// Malware Attack: Dissecting Cyber Weapons" (Zhioua, ICDCS Workshops
// 2013): a deterministic discrete-event cyber-range in which behavioural
// models of Stuxnet, Flame and Shamoon run against simulated Windows
// hosts, networks, PKI, C&C infrastructure and a centrifuge plant, plus
// the dissection toolchain (synthetic-PE static analysis, a YARA-like rule
// engine, a behavioural sandbox, and the Section-V trend classifier) that
// reproduces every figure and quantitative claim in the paper as an
// executable experiment.
//
// Beyond the paper's own artefacts the range carries a streaming
// detection engine (internal/detect) hunting a modeled CNI espionage
// campaign, and a deterministic benign user-activity layer
// (internal/users) that populates fleets with office/admin/developer/
// kiosk rhythms so detection content is priced against a measured
// noise floor — the D1-D5 experiment series, including per-rule
// precision/recall under noise (D4) and the pure-noise false-positive
// floor (D5).
//
// See DESIGN.md for the system inventory and experiment index,
// EXPERIMENTS.md for paper-vs-measured results, and the examples/
// directory for runnable scenarios. The benchmark harness in bench_test.go
// regenerates every figure and claim: go test -bench=. -benchmem .
package repro

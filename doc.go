// Package repro is a pure-Go reproduction of "The Middle East under
// Malware Attack: Dissecting Cyber Weapons" (Zhioua, ICDCS Workshops
// 2013): a deterministic discrete-event cyber-range in which behavioural
// models of Stuxnet, Flame and Shamoon run against simulated Windows
// hosts, networks, PKI, C&C infrastructure and a centrifuge plant, plus
// the dissection toolchain (synthetic-PE static analysis, a YARA-like rule
// engine, a behavioural sandbox, and the Section-V trend classifier) that
// reproduces every figure and quantitative claim in the paper as an
// executable experiment.
//
// See DESIGN.md for the system inventory and experiment index,
// EXPERIMENTS.md for paper-vs-measured results, and the examples/
// directory for runnable scenarios. The benchmark harness in bench_test.go
// regenerates every figure and claim: go test -bench=. -benchmem .
package repro

// Command sandboxd detonates a named synthetic sample in the instrumented
// sandbox (sinkholed internet, decoy documents) and prints the observed
// behaviour report.
//
// Usage:
//
//	sandboxd -sample shamoon -observe 72h
//	sandboxd -sample stuxnet
//	sandboxd -sample flame
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/cnc"
	"repro/internal/malware/flame"
	"repro/internal/malware/shamoon"
	"repro/internal/malware/stuxnet"
	"repro/internal/pe"
	"repro/internal/pki"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sandboxd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sandboxd", flag.ContinueOnError)
	var (
		sample  = fs.String("sample", "shamoon", "sample to detonate: shamoon|stuxnet|flame")
		seed    = fs.Uint64("seed", 1, "deterministic simulation seed")
		observe = fs.Duration("observe", 72*time.Hour, "virtual observation window")
		av      = fs.Bool("av", false, "install the post-disclosure AV before detonation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sb := analysis.NewSandbox(*seed, analysis.WithDecoyDocs(25))
	if *av {
		rules, err := analysis.CompileDisclosureRules()
		if err != nil {
			return err
		}
		sb.Victim.AddSecurity(analysis.NewSignatureAV("SimAV", rules))
	}

	img, err := buildAndBind(sb, *sample)
	if err != nil {
		return err
	}
	rep := sb.Run(img, *observe)
	fmt.Print(rep.Render())
	return nil
}

// buildAndBind constructs the family inside the sandbox kernel and binds
// its behaviours into the sandbox registry.
func buildAndBind(sb *analysis.Sandbox, sample string) (*pe.File, error) {
	var rootSeed, keySeed [32]byte
	rootSeed[0], keySeed[0] = 101, 102
	now := sb.K.Now()
	root := pki.NewRoot("SimTrust Root CA", pki.HashStrong, rootSeed, now.Add(-time.Hour), 100*365*24*time.Hour)
	sb.Victim.CertStore.AddRoot(root.Cert)
	vendorKey := pki.NewKeypair(keySeed)

	switch sample {
	case "shamoon":
		cert, err := root.Issue(now, pki.IssueRequest{
			Subject: "Eldos Corporation", Usages: pki.UsageDriverSign,
			Lifetime: 10 * 365 * 24 * time.Hour, PubKey: vendorKey.Public,
		})
		if err != nil {
			return nil, err
		}
		sh, err := shamoon.Build(sb.K, shamoon.Config{
			TriggerAt:      now.Add(24 * time.Hour),
			ReporterDomain: "home.attacker.example",
			DriverKey:      vendorKey,
			DriverCert:     cert,
		})
		if err != nil {
			return nil, err
		}
		sh.BindTo(sb.Registry)
		return sh.MainImage, nil
	case "stuxnet":
		cert, err := root.Issue(now, pki.IssueRequest{
			Subject: "Realtek Semiconductor Corp", Usages: pki.UsageDriverSign,
			Lifetime: 10 * 365 * 24 * time.Hour, PubKey: vendorKey.Public,
		})
		if err != nil {
			return nil, err
		}
		sx, err := stuxnet.Build(sb.K, stuxnet.Config{
			DriverKey:   vendorKey,
			DriverCerts: []*pki.Certificate{cert},
			BeaconEvery: 6 * time.Hour,
		})
		if err != nil {
			return nil, err
		}
		sx.BindTo(sb.Registry)
		return sx.MainImage, nil
	case "flame":
		center, err := cnc.NewAttackCenter(sb.K, sb.Internet, 5, 1)
		if err != nil {
			return nil, err
		}
		fl, err := flame.Build(sb.K, flame.Config{Center: center, BeaconEvery: 2 * time.Hour})
		if err != nil {
			return nil, err
		}
		fl.BindTo(sb.Registry)
		return fl.MainImage, nil
	default:
		return nil, fmt.Errorf("unknown sample %q", sample)
	}
}

package main

import "testing"

func TestDetonateAllSamples(t *testing.T) {
	for _, sample := range []string{"shamoon", "stuxnet", "flame"} {
		if err := run([]string{"-sample", sample, "-observe", "26h"}); err != nil {
			t.Fatalf("sandboxd %s: %v", sample, err)
		}
	}
}

func TestDetonateWithAV(t *testing.T) {
	if err := run([]string{"-sample", "shamoon", "-observe", "1h", "-av"}); err != nil {
		t.Fatalf("sandboxd -av: %v", err)
	}
}

func TestUnknownSample(t *testing.T) {
	if err := run([]string{"-sample", "mystery"}); err == nil {
		t.Fatal("unknown sample accepted")
	}
}

package main

import (
	"repro/internal/cnc"
	"repro/internal/core"
	"repro/internal/pki"
)

// pkiCert shortens the certificate slice literal in main.go.
type pkiCert = pki.Certificate

// newMiniCenter provisions a tiny C&C platform, enough for a flame build.
func newMiniCenter(w *core.World) (*cnc.AttackCenter, error) {
	return cnc.NewAttackCenter(w.K, w.Internet, 5, 1)
}

package main

import "testing"

func TestDissectAllSamples(t *testing.T) {
	for _, sample := range []string{
		"shamoon", "shamoon-driver", "stuxnet", "stuxnet-driver", "flame", "flame-update", "duqu", "gauss",
	} {
		if err := run([]string{"-sample", sample}); err != nil {
			t.Fatalf("dissect %s: %v", sample, err)
		}
	}
}

func TestDissectCompare(t *testing.T) {
	if err := run([]string{"-compare"}); err != nil {
		t.Fatalf("dissect -compare: %v", err)
	}
}

func TestDissectIOCs(t *testing.T) {
	if err := run([]string{"-sample", "shamoon", "-iocs"}); err != nil {
		t.Fatalf("dissect -iocs: %v", err)
	}
}

func TestDissectUnknownSample(t *testing.T) {
	if err := run([]string{"-sample", "mystery"}); err == nil {
		t.Fatal("unknown sample accepted")
	}
}

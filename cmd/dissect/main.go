// Command dissect builds a named synthetic sample and prints its static
// dissection: sections with entropy, imports, encrypted-resource analysis
// with recovered XOR keys, signature verdicts, and YARA hits.
//
// Usage:
//
//	dissect -sample shamoon            # TrkSvr.exe
//	dissect -sample shamoon-driver     # the Eldos-signed raw-disk driver
//	dissect -sample stuxnet            # the worm body
//	dissect -sample stuxnet-driver     # a stolen-cert rootkit driver
//	dissect -sample flame              # mssecmgr.ocx
//	dissect -sample flame-update       # the forged-signature fake update
//	dissect -sample duqu               # the spear-phish dropper
//	dissect -sample gauss              # winshell.ocx with the Godel payload
//	dissect -compare                   # code-lineage matrix across families
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/cnc"
	"repro/internal/core"
	"repro/internal/malware/duqu"
	"repro/internal/malware/flame"
	"repro/internal/malware/gauss"
	"repro/internal/malware/shamoon"
	"repro/internal/malware/stuxnet"
	"repro/internal/pe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dissect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dissect", flag.ContinueOnError)
	var (
		sample  = fs.String("sample", "shamoon", "sample to build and dissect")
		seed    = fs.Uint64("seed", 1, "deterministic simulation seed")
		compare = fs.Bool("compare", false, "print the code-lineage similarity matrix across all five families")
		iocs    = fs.Bool("iocs", false, "also print the extracted indicator list")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := core.NewWorld(core.WorldConfig{Seed: *seed})
	if err != nil {
		return err
	}
	if *compare {
		return runCompare(w)
	}
	img, err := buildSample(w, *sample)
	if err != nil {
		return err
	}

	rules, err := analysis.CompileDisclosureRules()
	if err != nil {
		return err
	}
	an := &analysis.Analyzer{Store: w.PKI.BaseStore, Rules: rules}
	rep, err := an.Analyze(img, w.K.Now())
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if *iocs {
		fmt.Print(analysis.ExtractIOCs(rep, nil).Render())
	}
	return nil
}

// runCompare builds one sample per family and prints the lineage matrix.
func runCompare(w *core.World) error {
	var imgs []*pe.File
	for _, name := range []string{"stuxnet", "duqu", "flame", "gauss", "shamoon"} {
		img, err := buildSample(w, name)
		if err != nil {
			return err
		}
		imgs = append(imgs, img)
	}
	m := analysis.CompareSamples(imgs...)
	fmt.Print(m.Render())
	fmt.Println("\nlineage: stuxnet<->duqu share the Tilded platform; flame<->gauss share the Flamer platform; shamoon shares nothing")
	return nil
}

func buildSample(w *core.World, name string) (*pe.File, error) {
	switch name {
	case "shamoon", "shamoon-driver":
		sh, err := shamoon.Build(w.K, shamoon.Config{
			ReporterDomain: "home.example",
			DriverKey:      w.PKI.EldosKey,
			DriverCert:     w.PKI.EldosCert,
		})
		if err != nil {
			return nil, err
		}
		if name == "shamoon-driver" {
			return sh.RawDiskDriver, nil
		}
		return sh.MainImage, nil
	case "stuxnet", "stuxnet-driver":
		sx, err := stuxnet.Build(w.K, stuxnet.Config{
			DriverKey:   w.PKI.StolenKey,
			DriverCerts: []*pkiCert{w.PKI.RealtekCert, w.PKI.JMicronCert},
		})
		if err != nil {
			return nil, err
		}
		if name == "stuxnet-driver" {
			return sx.Drivers[0], nil
		}
		return sx.MainImage, nil
	case "flame", "flame-update":
		if err := w.ForgeUpdateCert(); err != nil {
			return nil, err
		}
		// A minimal attack center just to satisfy the build dependency.
		center, err := newMiniCenter(w)
		if err != nil {
			return nil, err
		}
		fl, err := flame.Build(w.K, flame.Config{
			Center:        center,
			UpdateSignKey: w.PKI.AttackerKey,
			UpdateChain:   w.PKI.ForgedChain(),
		})
		if err != nil {
			return nil, err
		}
		if name == "flame-update" {
			return fl.FakeUpdate, nil
		}
		return fl.MainImage, nil
	case "duqu":
		seal, err := cnc.NewSealKeypair(w.K.RNG())
		if err != nil {
			return nil, err
		}
		d, err := duqu.Build(w.K, duqu.Config{
			Targets:    []string{"TARGET"},
			C2Domain:   "images.cdn.example",
			SealPub:    seal.Public,
			DriverKey:  w.PKI.StolenKey,
			DriverCert: w.PKI.JMicronCert,
		})
		if err != nil {
			return nil, err
		}
		return d.Dropper, nil
	case "gauss":
		center, err := newMiniCenter(w)
		if err != nil {
			return nil, err
		}
		g, err := gauss.Build(w.K, gauss.Config{Center: center, GodelTargetDir: "CascadeSCADA"})
		if err != nil {
			return nil, err
		}
		return g.MainImage, nil
	default:
		return nil, fmt.Errorf("unknown sample %q", name)
	}
}

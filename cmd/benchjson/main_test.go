package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkClaimC7Reduced-1   	       3	 436716460 ns/op	175010040 B/op	  628302 allocs/op
BenchmarkScheduleFire-1     	15000000	        76.02 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig1Stuxnet-1      	     100	  12345678 ns/op	     984 centrifuges_destroyed
PASS
ok  	repro	5.1s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
	c7 := got[0]
	if c7.Name != "ClaimC7Reduced" || c7.Iterations != 3 ||
		c7.NsPerOp != 436716460 || c7.BytesPerOp != 175010040 || c7.AllocsPerOp != 628302 {
		t.Fatalf("C7 parsed wrong: %+v", c7)
	}
	if got[1].Name != "ScheduleFire" || got[1].BytesPerOp != 0 {
		t.Fatalf("ScheduleFire parsed wrong: %+v", got[1])
	}
	if got[2].Metrics["centrifuges_destroyed"] != 984 {
		t.Fatalf("custom metric lost: %+v", got[2])
	}
}

func snapFile(baseline, after float64) *File {
	return &File{Snapshots: map[string]Snapshot{
		"baseline": {Benchmarks: []Benchmark{{Name: "ClaimC7Reduced", Iterations: 1, BytesPerOp: baseline}}},
		"after":    {Benchmarks: []Benchmark{{Name: "ClaimC7Reduced", Iterations: 1, BytesPerOp: after}}},
	}}
}

func TestValidateRatioGate(t *testing.T) {
	if err := validate(snapFile(200, 99), "f", "ClaimC7Reduced", "ClaimC7Reduced=2", ""); err != nil {
		t.Fatalf("2.02x improvement must pass the 2x floor: %v", err)
	}
	if err := validate(snapFile(200, 101), "f", "", "ClaimC7Reduced=2", ""); err == nil {
		t.Fatal("1.98x improvement passed the 2x floor")
	}
	if err := validate(snapFile(200, 99), "f", "NoSuchBench", "", ""); err == nil {
		t.Fatal("missing required benchmark passed")
	}
	if err := validate(&File{}, "f", "", "", ""); err == nil {
		t.Fatal("empty file passed")
	}
}

func TestValidateMetricGate(t *testing.T) {
	f := snapFile(200, 99)
	after := f.Snapshots["after"]
	after.Benchmarks[0].Metrics = map[string]float64{"ns/host-event": 66000}
	f.Snapshots["after"] = after

	if err := validate(f, "f", "", "", "ClaimC7Reduced=ns/host-event"); err != nil {
		t.Fatalf("present metric must pass: %v", err)
	}
	// Only "after" is checked: the frozen baseline predates the metric.
	if _, ok := f.Snapshots["baseline"].Benchmarks[0].Metrics["ns/host-event"]; ok {
		t.Fatal("test setup broken: baseline should lack the metric")
	}
	if err := validate(f, "f", "", "", "ClaimC7Reduced=no_such_metric"); err == nil {
		t.Fatal("missing metric passed")
	}
	if err := validate(f, "f", "", "", "NoSuchBench=ns/host-event"); err == nil {
		t.Fatal("missing benchmark passed the metric gate")
	}
	if err := validate(f, "f", "", "", "malformed-pair"); err == nil {
		t.Fatal("malformed -require-metric accepted")
	}
	after.Benchmarks[0].Metrics["ns/host-event"] = 0
	if err := validate(f, "f", "", "", "ClaimC7Reduced=ns/host-event"); err == nil {
		t.Fatal("zero-valued metric passed")
	}
}

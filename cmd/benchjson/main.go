// Command benchjson turns `go test -bench -benchmem` output into the
// committed benchmark snapshot BENCH_C7.json and gates it.
//
// Usage:
//
//	go test -bench ... -benchmem | benchjson -o BENCH_C7.json [-label after] [-require A,B] [-min-bytes-ratio NAME=R]
//	benchjson -check BENCH_C7.json [-require A,B] [-min-bytes-ratio NAME=R]
//
// The first form parses benchmark lines from stdin, replaces the -label
// snapshot of the JSON file (creating the file if needed, preserving the
// other snapshots — notably "baseline"), and then validates the result.
// The second form only validates an existing file; ci.sh runs it so a
// hand-edited or stale BENCH_C7.json fails fast.
//
// Gates:
//
//   - -require: comma-separated benchmark names (without the Benchmark
//     prefix or the -N GOMAXPROCS suffix) that every snapshot must carry;
//   - -min-bytes-ratio NAME=R: snapshot "baseline" must allocate at least
//     R times the bytes/op of snapshot "after" for NAME — the perf-
//     trajectory floor (C7 demands R=2);
//   - -require-metric NAME=METRIC[,NAME=METRIC...]: the "after" snapshot's
//     NAME benchmark must report METRIC with a positive value. Only "after"
//     is checked — the frozen baseline predates newer b.ReportMetric
//     columns (ns/host-event landed with the runstats layer).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one labelled set of benchmark results.
type Snapshot struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the BENCH_C7.json schema: named snapshots, typically "baseline"
// (frozen at the commit before the perf work) and "after" (refreshed by
// the ci.sh bench lane).
type File struct {
	Note      string              `json:"note,omitempty"`
	Snapshots map[string]Snapshot `json:"snapshots"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		out       = fs.String("o", "", "snapshot file to update from stdin bench output")
		label     = fs.String("label", "after", "snapshot name to (re)write in -o mode")
		check     = fs.String("check", "", "validate an existing snapshot file instead of reading stdin")
		require   = fs.String("require", "", "comma-separated benchmark names every snapshot must contain")
		minRatio  = fs.String("min-bytes-ratio", "", "NAME=R: baseline bytes/op must be >= R x after bytes/op")
		reqMetric = fs.String("require-metric", "", "NAME=METRIC[,...]: after snapshot's NAME must report METRIC > 0")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*out == "") == (*check == "") {
		return fmt.Errorf("exactly one of -o FILE or -check FILE is required")
	}

	var f File
	path := *check
	if *out != "" {
		path = *out
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &f); err != nil {
				return fmt.Errorf("%s: %w", *out, err)
			}
		} else if !os.IsNotExist(err) {
			return err
		}
		benches, err := parseBench(os.Stdin)
		if err != nil {
			return err
		}
		if len(benches) == 0 {
			return fmt.Errorf("no benchmark lines on stdin")
		}
		if f.Snapshots == nil {
			f.Snapshots = map[string]Snapshot{}
		}
		f.Snapshots[*label] = Snapshot{Benchmarks: benches}
		data, err := json.MarshalIndent(&f, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	} else {
		data, err := os.ReadFile(*check)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("%s: %w", *check, err)
		}
	}
	return validate(&f, path, *require, *minRatio, *reqMetric)
}

// validate applies the -require, -min-bytes-ratio and -require-metric
// gates to f.
func validate(f *File, path, require, minRatio, reqMetric string) error {
	if len(f.Snapshots) == 0 {
		return fmt.Errorf("%s: no snapshots", path)
	}
	if require != "" {
		var labels []string
		for l := range f.Snapshots {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			snap := f.Snapshots[l]
			for _, name := range strings.Split(require, ",") {
				if findBench(snap, strings.TrimSpace(name)) == nil {
					return fmt.Errorf("%s: snapshot %q is missing required benchmark %q", path, l, name)
				}
			}
		}
	}
	if minRatio != "" {
		name, ratioStr, ok := strings.Cut(minRatio, "=")
		if !ok {
			return fmt.Errorf("-min-bytes-ratio wants NAME=R (got %q)", minRatio)
		}
		ratio, err := strconv.ParseFloat(ratioStr, 64)
		if err != nil || ratio <= 0 {
			return fmt.Errorf("-min-bytes-ratio %q: bad ratio", minRatio)
		}
		base := findBench(f.Snapshots["baseline"], name)
		after := findBench(f.Snapshots["after"], name)
		if base == nil || after == nil {
			return fmt.Errorf("%s: -min-bytes-ratio %s needs the benchmark in both %q snapshots", path, name, "baseline/after")
		}
		if after.BytesPerOp <= 0 {
			return fmt.Errorf("%s: %s after snapshot has no bytes/op (run with -benchmem)", path, name)
		}
		if got := base.BytesPerOp / after.BytesPerOp; got < ratio {
			return fmt.Errorf("%s: %s bytes/op improved only %.2fx (baseline %.0f -> after %.0f); floor is %.1fx",
				path, name, got, base.BytesPerOp, after.BytesPerOp, ratio)
		}
	}
	if reqMetric != "" {
		after := f.Snapshots["after"]
		for _, pair := range strings.Split(reqMetric, ",") {
			name, metric, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return fmt.Errorf("-require-metric wants NAME=METRIC (got %q)", pair)
			}
			b := findBench(after, name)
			if b == nil {
				return fmt.Errorf("%s: snapshot %q is missing benchmark %q (-require-metric)", path, "after", name)
			}
			if b.Metrics[metric] <= 0 {
				return fmt.Errorf("%s: after snapshot's %s reports no %s metric (got %g) — its bench lost the b.ReportMetric call",
					path, name, metric, b.Metrics[metric])
			}
		}
	}
	return nil
}

func findBench(s Snapshot, name string) *Benchmark {
	for i := range s.Benchmarks {
		if s.Benchmarks[i].Name == name {
			return &s.Benchmarks[i]
		}
	}
	return nil
}

// parseBench reads `go test -bench` output: lines of the form
//
//	BenchmarkName-8  100  123 ns/op  456 B/op  7 allocs/op  30000 fleet_size
//
// Non-benchmark lines (the goos/pkg header, PASS, ok) are skipped. The
// Benchmark prefix and the -N GOMAXPROCS suffix are stripped from names.
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Benchmark{Name: name, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad benchmark value %q in %q", fields[i], sc.Text())
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// Command cyberlab runs the paper-reproduction experiments: every figure
// (F1–F6), every quantitative claim (C1–C11), the Section-V trend
// taxonomy (T1) and the ablations (A1, A2). See DESIGN.md for the index.
//
// Usage:
//
//	cyberlab -list
//	cyberlab -run F1 [-seed 7]
//	cyberlab -all [-parallel 8]
//	cyberlab -all -seeds 1..16 [-parallel 8]
//
// -parallel fans experiments out across a worker pool; the report is
// byte-identical to a sequential run because each experiment owns an
// independent world and results are emitted in report order. Per-
// experiment wall-clock timings go to stderr so the report itself stays
// deterministic. -seeds switches to a Monte Carlo sweep that aggregates
// per-metric min/mean/max across seeds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cyberlab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cyberlab", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		id       = fs.String("run", "", "run a single experiment by ID (e.g. F1)")
		all      = fs.Bool("all", false, "run every experiment")
		seed     = fs.Uint64("seed", 1, "deterministic simulation seed")
		seeds    = fs.String("seeds", "", "seed sweep: A..B (inclusive) or comma list; aggregates min/mean/max per metric")
		parallel = fs.Int("parallel", 1, "worker goroutines for -all and -seeds")
		out      = fs.String("o", "", "also write the report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1 (got %d)", *parallel)
	}
	var report strings.Builder
	emit := func(format string, a ...any) {
		fmt.Fprintf(&report, format, a...)
		fmt.Printf(format, a...)
	}
	defer func() {
		if *out != "" {
			if werr := os.WriteFile(*out, []byte(report.String()), 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "cyberlab: write report:", werr)
			}
		}
	}()

	switch {
	case *list:
		for _, eid := range core.ExperimentIDs() {
			fmt.Println(eid)
		}
		return nil
	case *seeds != "":
		ids := core.ExperimentIDs()
		if *id != "" {
			if core.Experiments[*id] == nil {
				return fmt.Errorf("unknown experiment %q (try -list)", *id)
			}
			ids = []string{*id}
		}
		seedList, err := parseSeeds(*seeds)
		if err != nil {
			return err
		}
		started := time.Now()
		entries := core.SweepSeeds(ids, seedList, *parallel)
		emit("%s", core.RenderSweep(entries))
		passes, runs, errored := 0, 0, 0
		for _, e := range entries {
			passes += e.Passes
			runs += e.Seeds
			errored += len(e.Errors)
			fmt.Fprintf(os.Stderr, "%-4s %8.3fs across %d seeds\n", e.ID, e.Wall.Seconds(), e.Seeds)
		}
		emit("%d/%d sweep runs reproduced (%d experiments x %d seeds)\n",
			passes, runs, len(ids), len(seedList))
		fmt.Fprintf(os.Stderr, "sweep wall %v (%d workers)\n",
			time.Since(started).Round(time.Millisecond), *parallel)
		if passes != runs {
			return fmt.Errorf("%d sweep runs failed (%d runner errors)", runs-passes, errored)
		}
		return nil
	case *id != "":
		runner, ok := core.Experiments[*id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *id)
		}
		started := time.Now()
		res, err := runner(*seed)
		if err != nil {
			return err
		}
		emit("%s", res.Render())
		fmt.Fprintf(os.Stderr, "%-4s %8.3fs\n", *id, time.Since(started).Seconds())
		if !res.Pass {
			return fmt.Errorf("experiment %s did not reproduce", *id)
		}
		return nil
	case *all:
		started := time.Now()
		reports := core.RunAllParallel(*seed, *parallel)
		failed, errored := 0, 0
		for _, rep := range reports {
			if rep.Err != nil {
				errored++
				emit("%v\n\n", rep.Err)
				continue
			}
			emit("%s\n", rep.Result.Render())
			if !rep.Result.Pass {
				failed++
			}
		}
		for _, rep := range reports {
			fmt.Fprintf(os.Stderr, "%-4s %8.3fs\n", rep.ID, rep.Wall.Seconds())
		}
		emit("%d/%d experiments reproduced (seed %d)\n",
			len(reports)-failed-errored, len(reports), *seed)
		fmt.Fprintf(os.Stderr, "total wall %v (%d workers)\n",
			time.Since(started).Round(time.Millisecond), *parallel)
		if failed+errored > 0 {
			return fmt.Errorf("%d experiments failed", failed+errored)
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("specify -list, -run ID, -all, or -seeds")
	}
}

// parseSeeds accepts "A..B" (inclusive range, A <= B) or a comma list
// ("1,2,5"). Duplicates are kept: a sweep runs exactly the seeds asked
// for.
func parseSeeds(s string) ([]uint64, error) {
	if lo, hi, ok := strings.Cut(s, ".."); ok {
		a, err := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds range start %q: %v", lo, err)
		}
		b, err := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds range end %q: %v", hi, err)
		}
		if b < a {
			return nil, fmt.Errorf("bad -seeds range %s: end before start", s)
		}
		if b-a >= 1<<16 {
			return nil, fmt.Errorf("-seeds range %s too large (max 65536 seeds)", s)
		}
		out := make([]uint64, 0, b-a+1)
		for v := a; ; v++ {
			out = append(out, v)
			if v == b {
				break
			}
		}
		return out, nil
	}
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds entry %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

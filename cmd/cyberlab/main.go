// Command cyberlab runs the paper-reproduction experiments: every figure
// (F1–F6), every quantitative claim (C1–C11), the Section-V trend
// taxonomy (T1), the ablations (A1–A3), the extensions (E1–E4), the
// campaign-resilience series (R1–R5) driven by the fault-injection
// engine, and the detection series (D1–D5) including the populated-fleet
// precision/noise-floor measurements. See DESIGN.md for the index.
//
// Usage:
//
//	cyberlab -list
//	cyberlab -run F1 [-seed 7]
//	cyberlab -run F2,F3,C1 [-parallel 2]
//	cyberlab -run R1..R5 [-faults chaos]
//	cyberlab -run D1 [-activity enterprise]
//	cyberlab -all [-parallel 8] [-trace t.jsonl] [-metrics m.json]
//	cyberlab -run C7 [-partitions 4]
//	cyberlab -all -seeds 1..16 [-parallel 8]
//	cyberlab -report [-o EXPERIMENTS.md]
//	cyberlab -rules
//	cyberlab -run C7 -progress
//	cyberlab -all -journal run.journal [-stall 30s] [-deadline 10m] [-max-retries 1]
//	cyberlab -all -journal run.journal -resume
//	cyberlab checkpoint -run C1 -at 30m [-seed 7] [-o c1.checkpoint]
//	cyberlab fork -from c1.checkpoint [-trace tail.jsonl]
//	cyberlab profile -run C7 [-progress] [-o manifest.json]
//	cyberlab trace -in t.jsonl [-cat X] [-actor Y] [-tag k=v] [-chain F1/s3] [-dot out.dot]
//	cyberlab detect -in t.jsonl [-o alerts.jsonl]
//
// -faults selects the adversity profile the R-series experiments run
// under (none, light, takedown, chaos; default takedown). The profile is
// part of the determinism contract: a fixed seed and profile produce
// byte-identical reports, traces and metrics at any -parallel width.
//
// -activity populates scenario fleets (the Aramco and CNI worlds) with
// the benign user-activity layer (internal/users, DESIGN.md §11): none,
// office, developer, kiosk, or enterprise. The default is none — the
// historical silent fleets. D4/D5 always run populated regardless of the
// flag; like -faults, the mix is part of the determinism contract.
//
// -parallel fans experiments out across a worker pool; the report, trace
// and metrics outputs are byte-identical to a sequential run because each
// experiment owns an independent world and results are emitted in report
// order.
//
// -partitions sizes the worker pool that advances a partitioned world's
// site shards between deterministic sync epochs (DESIGN.md §14; today
// the C7 Aramco fleet, sharded across six sites). The site layout is
// scenario state, the worker count is not: reports, traces, metrics,
// provenance and alerts are byte-identical at -partitions 1, 2, 4 or 8
// (0 = all cores), and the flag composes with -parallel, -journal,
// -resume and checkpoint/fork — a run journaled at one width resumes at
// any other. Per-experiment wall-clock timings go to stderr so the report
// itself stays deterministic. -seeds switches to a Monte Carlo sweep that
// aggregates per-metric min/mean/max across seeds. -trace writes the
// experiments' retained event records as JSONL (one object per line, each
// tagged exp=<ID>); -metrics writes the merged obs snapshot as JSON.
// -report renders EXPERIMENTS.md from the live run, making the committed
// document a reproducible build artefact (ci.sh fails on drift).
// -cpuprofile and -memprofile write pprof profiles of whatever the
// invocation ran; both paths are validated up front (existence AND
// writability of the destination) so a typo or a read-only directory
// fails before the experiments burn wall clock.
//
// -progress attaches the wall-clock telemetry plane (internal/runstats,
// DESIGN.md §12) and prints a live stderr ticker — experiments done,
// hosts attached, virtual time reached, fired events per wall second,
// queue depth, heap watermark — for long fleet-scale runs. The probe
// plane is read-only: every drift-gated artefact (report, trace,
// metrics, alerts) stays byte-identical with or without it.
//
// The profile subcommand runs experiments with the telemetry plane
// enabled and emits a JSON run manifest (wall-clock totals, per-phase
// and per-experiment breakdowns, kernel hot-loop stats, heap
// watermarks) to stdout or -o. The manifest is explicitly marked
// nondeterministic and is excluded from every drift gate.
//
// The trace subcommand reads a `-trace` JSONL export back and
// reconstructs the causal provenance forest: who infected whom, over
// which vector, and when. Default output is the indented tree plus
// aggregate stats; -dot renders Graphviz; -chain prints one episode's
// root-to-leaf causal path.
//
// The detect subcommand replays a `-trace` JSONL export through the
// built-in detection rule pack (internal/detect) offline and emits the
// alert stream as JSONL — byte-identical to what a live engine attached
// to the same run would have produced. -rules lists the pack.
//
// Supervision (DESIGN.md §13): -stall arms a vtime-stall watchdog that
// aborts any experiment whose virtual clock freezes while events keep
// executing; -deadline bounds each experiment's wall clock. Aborted
// experiments are reported partial with a diagnostic (queue depth, last
// handler, open spans) and never contaminate sibling outputs.
// -max-retries re-runs deterministic failures; a retry that produces
// different bytes is flagged as a determinism violation, never silently
// accepted. -journal appends each completed experiment to a crash-safe
// JSONL file (content-hashed, fsync'd per record); -resume verifies the
// journal — tolerating a torn final line from a mid-write kill — and
// serves journaled experiments without re-running them, byte-identical
// at any -parallel width. SIGINT/SIGTERM trigger a graceful shutdown:
// in-flight experiments stop at their next step boundary, outputs and
// the journal flush, and the run exits with a RUN PARTIAL banner.
//
// The checkpoint subcommand freezes a replay checkpoint — the
// (experiment, seed, faults, activity) tuple, a virtual-time boundary,
// and a hash of the trace prefix — and fork restores one by
// deterministic re-execution, refusing on prefix-hash drift and muting
// the verified prefix out of the restored artefacts.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/runstats"
	"repro/internal/sim"
)

func main() {
	// Graceful shutdown (DESIGN.md §13): the first SIGINT/SIGTERM asks
	// every in-flight experiment to stop at its next step boundary and
	// lets the run flush its journal, report and telemetry before
	// exiting with the partial-run banner; a second signal exits hard.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "\ncyberlab: %v: finishing current step and flushing outputs (send again to exit immediately)\n", s)
		core.RequestShutdown(fmt.Errorf("signal %v", s))
		<-sig
		os.Exit(130)
	}()
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cyberlab:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	if len(args) > 0 && args[0] == "trace" {
		return runTrace(args[1:])
	}
	if len(args) > 0 && args[0] == "detect" {
		return runDetect(args[1:])
	}
	if len(args) > 0 && args[0] == "profile" {
		return runProfile(args[1:])
	}
	if len(args) > 0 && args[0] == "checkpoint" {
		return runCheckpoint(args[1:])
	}
	if len(args) > 0 && args[0] == "fork" {
		return runFork(args[1:])
	}
	fs := flag.NewFlagSet("cyberlab", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list experiment IDs and exit")
		rules      = fs.Bool("rules", false, "list the built-in detection rule pack and exit")
		id         = fs.String("run", "", "run experiments by ID, comma-separated (e.g. F1 or F2,C1)")
		all        = fs.Bool("all", false, "run every experiment")
		genReport  = fs.Bool("report", false, "run every experiment and render EXPERIMENTS.md markdown")
		seed       = fs.Uint64("seed", 1, "deterministic simulation seed")
		seeds      = fs.String("seeds", "", "seed sweep: A..B (inclusive) or comma list; aggregates min/mean/max per metric")
		parallel   = fs.Int("parallel", 1, "worker goroutines for -all, -run lists and -seeds")
		partitions = fs.Int("partitions", 1, "worker goroutines advancing a partitioned world's site shards (0 = all cores); output bytes are identical at any width")
		out        = fs.String("o", "", "also write the report to this file")
		traceOut   = fs.String("trace", "", "write retained trace events to this file as JSONL")
		metricsOut = fs.String("metrics", "", "write the merged metrics snapshot to this file as JSON")
		faultsProf = fs.String("faults", "", "adversity profile for the R-series experiments (none, light, takedown, chaos)")
		activity   = fs.String("activity", "", "benign user-activity mix for scenario fleets (none, office, developer, kiosk, enterprise)")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf    = fs.String("memprofile", "", "write a heap profile to this file when the run finishes")
		progress   = fs.Bool("progress", false, "print a live wall-clock telemetry ticker to stderr")
		journalP   = fs.String("journal", "", "record completed experiments to this crash-safe JSONL file (fsync per record)")
		resume     = fs.Bool("resume", false, "resume from -journal: serve journaled experiments without re-running them")
		stall      = fs.Duration("stall", 0, "abort an experiment whose vtime freezes for this wall-clock window (0 = off)")
		deadline   = fs.Duration("deadline", 0, "abort any experiment exceeding this wall-clock budget (0 = off)")
		maxRetries = fs.Int("max-retries", 0, "re-run a failed experiment up to N times; a retry must reproduce identical bytes or the run is flagged nondeterministic")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := core.SetFaultProfile(*faultsProf); err != nil {
		return err
	}
	if err := core.SetActivityMix(*activity); err != nil {
		return err
	}
	if err := core.SetPartitionWorkers(*partitions); err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1 (got %d)", *parallel)
	}
	if *maxRetries < 0 {
		return fmt.Errorf("-max-retries must be >= 0 (got %d)", *maxRetries)
	}
	if *resume && *journalP == "" {
		return fmt.Errorf("-resume needs -journal FILE")
	}
	if *journalP != "" && *seeds != "" {
		return fmt.Errorf("-journal records single-seed runs; it cannot capture a -seeds sweep")
	}
	if *stall < 0 || *deadline < 0 {
		return fmt.Errorf("-stall and -deadline must be >= 0")
	}
	if *stall > 0 || *deadline > 0 {
		core.EnableSupervision(core.SuperviseConfig{Stall: *stall, Deadline: *deadline})
		defer core.DisableSupervision()
	}
	// Fail on unwritable output destinations before experiments burn wall
	// clock, not minutes later at write time.
	for _, o := range []struct{ flag, path string }{
		{"-o", *out}, {"-trace", *traceOut}, {"-metrics", *metricsOut},
		{"-cpuprofile", *cpuProf}, {"-memprofile", *memProf},
	} {
		if err := validateOutPath(o.flag, o.path); err != nil {
			return err
		}
	}
	var journal *core.Journal
	if *journalP != "" {
		if !*genReport && *id == "" && !*all {
			return fmt.Errorf("-journal needs a run (-run, -all, or -report)")
		}
		j, jerr := core.OpenJournal(*journalP, *resume, core.JournalConfig{
			Seed:     *seed,
			Faults:   core.FaultProfile().Name,
			Activity: core.ActivityMixName(),
		})
		if jerr != nil {
			return fmt.Errorf("-journal: %w", jerr)
		}
		journal = j
		// A journal write error (disk full, yanked volume) must fail the
		// run even if every experiment passed: a silently incomplete
		// journal would skip re-runs on the next -resume.
		defer func() {
			if cerr := journal.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("-journal: %w", cerr)
			}
		}()
	}
	opts := core.RunOptions{Workers: *parallel, MaxRetries: *maxRetries, Journal: journal}
	if *progress {
		c := runstats.Enable()
		stopTicker := c.StartProgress(os.Stderr, runstats.DefaultProgressPeriod)
		defer func() {
			stopTicker()
			runstats.Disable()
		}()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cyberlab: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cyberlab: -memprofile:", err)
			}
		}()
	}
	var report strings.Builder
	emit := func(format string, a ...any) {
		fmt.Fprintf(&report, format, a...)
		fmt.Printf(format, a...)
	}
	defer func() {
		if *out != "" {
			if werr := os.WriteFile(*out, []byte(report.String()), 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "cyberlab: write report:", werr)
			}
		}
	}()

	switch {
	case *list:
		for _, eid := range core.ExperimentIDs() {
			fmt.Println(eid)
		}
		return nil
	case *rules:
		fmt.Printf("%-22s %-9s %-12s %s\n", "rule", "kind", "scope", "description")
		for _, r := range detect.CNIRulePack() {
			fmt.Printf("%-22s %-9s %-12s %s\n", r.Name, ruleKind(r), r.Scope, r.Desc)
		}
		fmt.Println("\nscope is the D2 transfer result: behavioural rules key on attacker technique and fire on")
		fmt.Println("weapons they were never written for; campaign rules key on CNI artifacts and stay silent")
		fmt.Println("elsewhere (run `cyberlab -run D2`; D4/D5 price each scope against benign noise).")
		return nil
	case *seeds != "":
		if *traceOut != "" {
			return fmt.Errorf("-trace needs per-run events, which a -seeds sweep discards; use a single-seed run")
		}
		ids := core.ExperimentIDs()
		if *id != "" {
			var err error
			if ids, err = parseIDs(*id); err != nil {
				return err
			}
		}
		seedList, err := parseSeeds(*seeds)
		if err != nil {
			return err
		}
		started := time.Now()
		entries := core.SweepSeeds(ids, seedList, *parallel)
		emit("%s", core.RenderSweep(entries))
		passes, runs, errored := 0, 0, 0
		var merged obs.Snapshot
		for _, e := range entries {
			passes += e.Passes
			runs += e.Seeds
			errored += len(e.Errors)
			merged.Merge(e.Obs)
			fmt.Fprintf(os.Stderr, "%-4s %8.3fs across %d seeds\n", e.ID, e.Wall.Seconds(), e.Seeds)
		}
		emit("%d/%d sweep runs reproduced (%d experiments x %d seeds)\n",
			passes, runs, len(ids), len(seedList))
		fmt.Fprintf(os.Stderr, "sweep wall %v (%d workers)\n",
			time.Since(started).Round(time.Millisecond), *parallel)
		if err := writeMetrics(*metricsOut, merged); err != nil {
			return err
		}
		if passes != runs {
			return fmt.Errorf("%d sweep runs failed (%d runner errors)", runs-passes, errored)
		}
		return nil
	case *genReport:
		started := time.Now()
		reports := core.RunExperimentsOpts(core.ExperimentIDs(), *seed, opts)
		stopReport := runstats.Phase("report")
		md := core.RenderExperimentsMarkdown(reports, *seed)
		stopReport()
		emit("%s", md)
		for _, rep := range reports {
			fmt.Fprintf(os.Stderr, "%-4s %8.3fs\n", rep.ID, rep.Wall.Seconds())
		}
		fmt.Fprintf(os.Stderr, "report wall %v (%d workers)\n",
			time.Since(started).Round(time.Millisecond), *parallel)
		if err := writeObsOutputs(*traceOut, *metricsOut, reports); err != nil {
			return err
		}
		partialBanner(reports, *journalP)
		return reportErr(reports)
	case *id != "" || *all:
		ids := core.ExperimentIDs()
		if *id != "" {
			var err error
			if ids, err = parseIDs(*id); err != nil {
				return err
			}
		}
		started := time.Now()
		reports := core.RunExperimentsOpts(ids, *seed, opts)
		for _, rep := range reports {
			if rep.Err != nil {
				emit("%v\n\n", rep.Err)
				continue
			}
			emit("%s\n", rep.Result.Render())
		}
		for _, rep := range reports {
			fmt.Fprintf(os.Stderr, "%-4s %8.3fs\n", rep.ID, rep.Wall.Seconds())
		}
		failed, errored := tally(reports)
		emit("%d/%d experiments reproduced (seed %d)\n",
			len(reports)-failed-errored, len(reports), *seed)
		fmt.Fprintf(os.Stderr, "total wall %v (%d workers)\n",
			time.Since(started).Round(time.Millisecond), *parallel)
		if err := writeObsOutputs(*traceOut, *metricsOut, reports); err != nil {
			return err
		}
		partialBanner(reports, *journalP)
		return reportErr(reports)
	default:
		fs.Usage()
		return fmt.Errorf("specify -list, -rules, -run ID, -all, -report, or -seeds")
	}
}

// ruleKind names a rule's matching primitive for the -rules listing.
func ruleKind(r detect.Rule) string {
	switch {
	case r.Threshold != nil:
		return "threshold"
	case r.Sequence != nil:
		return "sequence"
	default:
		return "single"
	}
}

// runProfile implements `cyberlab profile`: run experiments with the
// wall-clock telemetry plane enabled and emit the JSON run manifest.
// Experiment reports go to stderr (summary lines only) so stdout stays
// clean for the manifest; -o redirects the manifest to a file and
// frees stdout. The manifest is nondeterministic by design and is
// never drift-gated — the deterministic artefacts of the same run are
// unchanged by profiling (the isolation property tests pin this).
func runProfile(args []string) error {
	fs := flag.NewFlagSet("cyberlab profile", flag.ContinueOnError)
	var (
		id         = fs.String("run", "", "profile these experiments, comma-separated (e.g. C7 or R1..R5)")
		all        = fs.Bool("all", false, "profile every experiment")
		seed       = fs.Uint64("seed", 1, "deterministic simulation seed")
		parallel   = fs.Int("parallel", 1, "worker goroutines")
		partitions = fs.Int("partitions", 1, "worker goroutines advancing a partitioned world's site shards (0 = all cores)")
		out        = fs.String("o", "", "write the JSON run manifest to this file (default stdout)")
		faultsProf = fs.String("faults", "", "adversity profile for the R-series experiments")
		activity   = fs.String("activity", "", "benign user-activity mix for scenario fleets")
		progress   = fs.Bool("progress", false, "also print the live telemetry ticker to stderr")
		every      = fs.Duration("every", runstats.DefaultProgressPeriod, "progress ticker period")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" && !*all {
		return fmt.Errorf("profile: specify -run IDs or -all")
	}
	if *parallel < 1 {
		return fmt.Errorf("profile: -parallel must be >= 1 (got %d)", *parallel)
	}
	if err := core.SetFaultProfile(*faultsProf); err != nil {
		return err
	}
	if err := core.SetActivityMix(*activity); err != nil {
		return err
	}
	if err := core.SetPartitionWorkers(*partitions); err != nil {
		return err
	}
	if err := validateOutPath("-o", *out); err != nil {
		return err
	}
	ids := core.ExperimentIDs()
	if *id != "" {
		var err error
		if ids, err = parseIDs(*id); err != nil {
			return err
		}
	}

	c := runstats.Enable()
	defer runstats.Disable()
	var stopTicker func()
	if *progress {
		stopTicker = c.StartProgress(os.Stderr, *every)
	}
	reports := core.RunExperiments(ids, *seed, *parallel)
	if stopTicker != nil {
		stopTicker()
	}
	for _, rep := range reports {
		status := "pass"
		switch {
		case rep.Err != nil:
			status = "error"
		case !rep.Result.Pass:
			status = "FAIL"
		}
		fmt.Fprintf(os.Stderr, "%-4s %8.3fs  %s\n", rep.ID, rep.Wall.Seconds(), status)
	}

	manifest := c.Manifest()
	if *out == "" || *out == "-" {
		if err := manifest.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		var buf bytes.Buffer
		if err := manifest.WriteJSON(&buf); err != nil {
			return fmt.Errorf("profile: render manifest: %w", err)
		}
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("profile: write manifest: %w", err)
		}
	}
	return reportErr(reports)
}

// runDetect implements `cyberlab detect`: replay a JSONL trace export
// through the built-in rule pack and write the alert stream as JSONL.
func runDetect(args []string) error {
	fs := flag.NewFlagSet("cyberlab detect", flag.ContinueOnError)
	var (
		in  = fs.String("in", "", "JSONL trace export to read (required; \"-\" = stdin)")
		out = fs.String("o", "", "write the alert stream as JSONL to this file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("detect: -in FILE is required")
	}
	if err := validateOutPath("-o", *out); err != nil {
		return err
	}
	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return fmt.Errorf("detect: %w", err)
		}
		defer f.Close()
		r = f
	}
	events, err := obs.ParseJSONL(r)
	if err != nil {
		return fmt.Errorf("detect: read %s: %w", *in, err)
	}
	alerts, err := detect.Replay(events, detect.CNIRulePack())
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := detect.WriteAlertsJSONL(&buf, alerts); err != nil {
		return fmt.Errorf("detect: render alerts: %w", err)
	}
	if *out == "" || *out == "-" {
		if _, err := os.Stdout.Write(buf.Bytes()); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("detect: write alerts: %w", err)
	}
	fmt.Fprintf(os.Stderr, "%d alerts from %d events\n", len(alerts), len(events))
	return nil
}

// runCheckpoint implements `cyberlab checkpoint`: run one experiment to
// completion and freeze a replay checkpoint — the configuration tuple, a
// virtual-time boundary, and a content hash of the trace prefix up to it
// (DESIGN.md §13). The checkpoint JSON goes to stdout or -o.
func runCheckpoint(args []string) error {
	fs := flag.NewFlagSet("cyberlab checkpoint", flag.ContinueOnError)
	var (
		id         = fs.String("run", "", "experiment ID to checkpoint (required)")
		seed       = fs.Uint64("seed", 1, "deterministic simulation seed")
		at         = fs.Duration("at", 0, "checkpoint boundary as virtual time past the simulation epoch (required, e.g. 30m)")
		faultsProf = fs.String("faults", "", "adversity profile for the R-series experiments")
		activity   = fs.String("activity", "", "benign user-activity mix for scenario fleets")
		partitions = fs.Int("partitions", 1, "worker goroutines advancing a partitioned world's site shards (0 = all cores)")
		out        = fs.String("o", "", "write the checkpoint JSON to this file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("checkpoint: -run ID is required")
	}
	if core.Experiments[*id] == nil {
		return fmt.Errorf("checkpoint: unknown experiment %q (try -list)", *id)
	}
	if *at <= 0 {
		return fmt.Errorf("checkpoint: -at DURATION (virtual time past the epoch) is required")
	}
	if err := core.SetFaultProfile(*faultsProf); err != nil {
		return err
	}
	if err := core.SetActivityMix(*activity); err != nil {
		return err
	}
	if err := core.SetPartitionWorkers(*partitions); err != nil {
		return err
	}
	if err := validateOutPath("-o", *out); err != nil {
		return err
	}
	cp, err := core.CaptureCheckpoint(*id, *seed, sim.Epoch.Add(*at))
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if *out == "" || *out == "-" {
		if err := core.WriteCheckpoint(os.Stdout, cp); err != nil {
			return err
		}
	} else {
		var buf bytes.Buffer
		if err := core.WriteCheckpoint(&buf, cp); err != nil {
			return fmt.Errorf("checkpoint: render: %w", err)
		}
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("checkpoint: write: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "checkpoint %s seed %d at %s: %d of %d events in the verified prefix\n",
		cp.Experiment, cp.Seed, cp.VTime.Format(time.RFC3339), cp.PrefixLen, cp.TotalLen)
	return nil
}

// runFork implements `cyberlab fork`: restore a checkpoint by
// deterministic re-execution under the captured configuration, verify
// the replayed prefix hash, and render only the tail past the boundary.
func runFork(args []string) error {
	fs := flag.NewFlagSet("cyberlab fork", flag.ContinueOnError)
	var (
		from       = fs.String("from", "", "checkpoint file to restore (required)")
		traceOut   = fs.String("trace", "", "write the tail trace events (past the checkpoint) to this file as JSONL")
		partitions = fs.Int("partitions", 1, "worker goroutines advancing a partitioned world's site shards (0 = all cores); the replay verifies against the checkpoint at any width")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *from == "" {
		return fmt.Errorf("fork: -from FILE is required")
	}
	if err := core.SetPartitionWorkers(*partitions); err != nil {
		return err
	}
	if err := validateOutPath("-trace", *traceOut); err != nil {
		return err
	}
	cp, err := core.ReadCheckpoint(*from)
	if err != nil {
		return fmt.Errorf("fork: %w", err)
	}
	if err := cp.ApplyConfig(); err != nil {
		return fmt.Errorf("fork: %w", err)
	}
	fr, err := core.Fork(cp)
	if err != nil {
		return fmt.Errorf("fork: %w", err)
	}
	fmt.Printf("%s\n", fr.Result.Render())
	if *traceOut != "" {
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, fr.Result.Events); err != nil {
			return fmt.Errorf("fork: render trace: %w", err)
		}
		if err := os.WriteFile(*traceOut, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("fork: write trace: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "fork %s seed %d: prefix of %d events verified at %s, %d tail events restored\n",
		cp.Experiment, cp.Seed, cp.PrefixLen, cp.VTime.Format(time.RFC3339), fr.TailEvents)
	return nil
}

// parseIDs splits a comma-separated -run value and validates every ID.
// Same-prefix ranges expand: "R1..R5" means R1,R2,R3,R4,R5.
func parseIDs(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		eid := strings.TrimSpace(part)
		if eid == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(eid, ".."); ok {
			expanded, err := expandIDRange(strings.TrimSpace(lo), strings.TrimSpace(hi))
			if err != nil {
				return nil, err
			}
			out = append(out, expanded...)
			continue
		}
		if core.Experiments[eid] == nil {
			return nil, fmt.Errorf("unknown experiment %q (try -list)", eid)
		}
		out = append(out, eid)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run got no experiment IDs")
	}
	return out, nil
}

// expandIDRange turns "R1","R5" into R1..R5. Both ends must share a
// letter prefix, and every expanded ID must exist.
func expandIDRange(lo, hi string) ([]string, error) {
	loPre, loN, err1 := splitIDNum(lo)
	hiPre, hiN, err2 := splitIDNum(hi)
	if err1 != nil || err2 != nil || loPre != hiPre || hiN < loN {
		return nil, fmt.Errorf("bad -run range %s..%s (want e.g. R1..R5)", lo, hi)
	}
	var out []string
	for n := loN; n <= hiN; n++ {
		eid := fmt.Sprintf("%s%d", loPre, n)
		if core.Experiments[eid] == nil {
			return nil, fmt.Errorf("unknown experiment %q in range %s..%s (try -list)", eid, lo, hi)
		}
		out = append(out, eid)
	}
	return out, nil
}

// splitIDNum cuts an experiment ID into its letter prefix and number.
func splitIDNum(id string) (string, int, error) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	n, err := strconv.Atoi(id[i:])
	if err != nil || i == 0 {
		return "", 0, fmt.Errorf("bad experiment ID %q", id)
	}
	return id[:i], n, nil
}

func tally(reports []core.RunReport) (failed, errored int) {
	for _, rep := range reports {
		switch {
		case rep.Err != nil:
			errored++
		case !rep.Result.Pass:
			failed++
		}
	}
	return failed, errored
}

// reportErr turns a report slice into the process exit status: nil only
// when every experiment ran to completion and passed. The error is a
// one-line summary naming the experiments that did not complete and why,
// so a CI log's last line is enough to know what to rerun.
func reportErr(reports []core.RunReport) error {
	var bad []string
	for _, rep := range reports {
		switch {
		case rep.Skipped:
			bad = append(bad, rep.ID+" (skipped)")
		case rep.Violation:
			bad = append(bad, rep.ID+" (nondeterministic)")
		case rep.Partial:
			bad = append(bad, rep.ID+" (aborted)")
		case rep.Err != nil:
			bad = append(bad, rep.ID+" (error)")
		case !rep.Result.Pass:
			bad = append(bad, rep.ID+" (fail)")
		}
	}
	if len(bad) == 0 {
		return nil
	}
	const maxListed = 8
	listed := bad
	if len(bad) > maxListed {
		listed = append(bad[:maxListed:maxListed], fmt.Sprintf("+%d more", len(bad)-maxListed))
	}
	return fmt.Errorf("%d of %d experiments did not complete: %s",
		len(bad), len(reports), strings.Join(listed, ", "))
}

// partialBanner prints the RUN PARTIAL summary to stderr when a run was
// cut short (shutdown signal, watchdog or deadline aborts). It never
// touches stdout: the report artefact stays deterministic, partial runs
// included.
func partialBanner(reports []core.RunReport, journalPath string) {
	done, served, aborted, skipped := 0, 0, 0, 0
	for _, rep := range reports {
		switch {
		case rep.Skipped:
			skipped++
		case rep.Partial:
			aborted++
		default:
			done++
			if rep.FromJournal {
				served++
			}
		}
	}
	if aborted == 0 && skipped == 0 && core.ShutdownCause() == nil {
		return
	}
	cause := "experiment aborts"
	if c := core.ShutdownCause(); c != nil {
		cause = c.Error()
	}
	fmt.Fprintf(os.Stderr, "RUN PARTIAL (%s): %d done (%d from journal), %d aborted, %d skipped\n",
		cause, done, served, aborted, skipped)
	if journalPath != "" {
		fmt.Fprintf(os.Stderr, "rerun with -journal %s -resume to serve the %d completed experiments and run the rest\n",
			journalPath, done)
	}
}

// writeObsOutputs writes the optional -trace and -metrics artefacts from
// a single-seed run. Both walk reports in report order, so the bytes do
// not depend on the worker count.
func writeObsOutputs(tracePath, metricsPath string, reports []core.RunReport) error {
	if tracePath != "" {
		var buf bytes.Buffer
		for _, rep := range reports {
			if rep.Result == nil {
				continue
			}
			if err := obs.WriteJSONL(&buf, rep.Result.Events); err != nil {
				return fmt.Errorf("render trace: %w", err)
			}
		}
		if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	if metricsPath != "" {
		var merged obs.Snapshot
		for _, rep := range reports {
			if rep.Result != nil {
				merged.Merge(rep.Result.Obs)
			}
		}
		if err := writeMetrics(metricsPath, merged); err != nil {
			return err
		}
	}
	return nil
}

func writeMetrics(path string, snap obs.Snapshot) error {
	if path == "" {
		return nil
	}
	data, err := snap.JSON()
	if err != nil {
		return fmt.Errorf("render metrics: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write metrics: %w", err)
	}
	return nil
}

// validateOutPath rejects output destinations that cannot possibly be
// written: a missing or non-directory parent, a path that is itself a
// directory, or a destination the process lacks permission to write
// (a read-only directory would otherwise only fail minutes later, when
// -memprofile or -o performs its deferred write). Every output flag —
// -o, -trace, -metrics, -cpuprofile, -memprofile, profile -o — goes
// through here, so a typo fails with the flag's name before any
// experiment burns wall clock.
func validateOutPath(flagName, path string) error {
	if path == "" || path == "-" {
		return nil
	}
	dir := filepath.Dir(path)
	info, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("%s %s: output directory %s does not exist", flagName, path, dir)
	}
	if !info.IsDir() {
		return fmt.Errorf("%s %s: %s is not a directory", flagName, path, dir)
	}
	if fi, err := os.Stat(path); err == nil {
		if fi.IsDir() {
			return fmt.Errorf("%s %s: path is a directory", flagName, path)
		}
		// The file exists: prove we can open it for writing without
		// truncating it.
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return fmt.Errorf("%s %s: not writable: %v", flagName, path, err)
		}
		f.Close()
		return nil
	}
	// The file does not exist yet: prove the directory accepts new
	// files with a sibling probe (created and removed immediately).
	probe, err := os.CreateTemp(dir, ".cyberlab-write-probe-*")
	if err != nil {
		return fmt.Errorf("%s %s: directory %s is not writable: %v", flagName, path, dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return nil
}

// runTrace implements `cyberlab trace`: read a JSONL export, reconstruct
// the provenance forest, and render it (text, DOT, or one causal chain).
func runTrace(args []string) error {
	fs := flag.NewFlagSet("cyberlab trace", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "JSONL trace export to read (required; \"-\" = stdin)")
		cat    = fs.String("cat", "", "keep only events of this category")
		actor  = fs.String("actor", "", "keep only events of this actor")
		tag    = fs.String("tag", "", "keep only events carrying this k=v tag (e.g. exp=F1)")
		chain  = fs.String("chain", "", "print the causal chain of one span: EXP/sN, or sN/N when one experiment is present")
		dotOut = fs.String("dot", "", "write the forest as Graphviz DOT to this file (\"-\" = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("trace: -in FILE is required")
	}
	if err := validateOutPath("-dot", *dotOut); err != nil {
		return err
	}
	var tagKey, tagVal string
	if *tag != "" {
		var ok bool
		tagKey, tagVal, ok = strings.Cut(*tag, "=")
		if !ok || tagKey == "" {
			return fmt.Errorf("trace: -tag wants k=v (got %q)", *tag)
		}
	}

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer f.Close()
		r = f
	}
	events, err := obs.ParseJSONL(r)
	if err != nil {
		return fmt.Errorf("trace: read %s: %w", *in, err)
	}
	kept := events[:0]
	for _, e := range events {
		if *cat != "" && e.Cat != *cat {
			continue
		}
		if *actor != "" && e.Actor != *actor {
			continue
		}
		if tagKey != "" {
			if v, ok := e.Get(tagKey); !ok || v != tagVal {
				continue
			}
		}
		kept = append(kept, e)
	}
	forest := provenance.Build(kept)

	if *chain != "" {
		id, err := parseSpanRef(*chain, forest)
		if err != nil {
			return err
		}
		nodes := forest.Chain(id)
		if nodes == nil {
			return fmt.Errorf("trace: span %s not in the (filtered) stream", id)
		}
		for i, n := range nodes {
			prefix := "origin"
			if i > 0 {
				prefix = fmt.Sprintf("hop %d (%s)", i, n.Vector)
			}
			fmt.Printf("%-18s %s  %s  [%s] %s  (%s)\n",
				prefix, n.ID, n.Actor, n.Cat, n.Msg, n.At.UTC().Format(time.RFC3339))
		}
		return nil
	}

	if *dotOut != "" {
		if *dotOut == "-" {
			return forest.DOT(os.Stdout)
		}
		var buf bytes.Buffer
		if err := forest.DOT(&buf); err != nil {
			return fmt.Errorf("trace: render dot: %w", err)
		}
		if err := os.WriteFile(*dotOut, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("trace: write dot: %w", err)
		}
		fmt.Fprint(os.Stderr, provenance.RenderStats(forest.Stats()))
		return nil
	}

	fmt.Print(provenance.RenderStats(forest.Stats()))
	if len(forest.Nodes) > 0 {
		fmt.Println()
		return forest.Text(os.Stdout)
	}
	return nil
}

// parseSpanRef resolves -chain's EXP/sN, sN or N forms against the
// forest. The bare forms need an unambiguous experiment tag.
func parseSpanRef(s string, f *provenance.Forest) (provenance.NodeID, error) {
	exp, rest, ok := strings.Cut(s, "/")
	if !ok {
		rest, exp = s, ""
		exps := f.Exps()
		if len(exps) == 1 {
			exp = exps[0]
		} else if len(exps) > 1 {
			return provenance.NodeID{}, fmt.Errorf(
				"trace: -chain %q is ambiguous across experiments %s; use EXP/sN", s, strings.Join(exps, ","))
		}
	}
	n, err := strconv.ParseUint(strings.TrimPrefix(rest, "s"), 10, 64)
	if err != nil || n == 0 {
		return provenance.NodeID{}, fmt.Errorf("trace: bad -chain span %q (want EXP/sN)", s)
	}
	return provenance.NodeID{Exp: exp, Span: obs.Span(n)}, nil
}

// parseSeeds accepts "A..B" (inclusive range, A <= B) or a comma list
// ("1,2,5"). Duplicates are kept: a sweep runs exactly the seeds asked
// for.
func parseSeeds(s string) ([]uint64, error) {
	if lo, hi, ok := strings.Cut(s, ".."); ok {
		a, err := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds range start %q: %v", lo, err)
		}
		b, err := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds range end %q: %v", hi, err)
		}
		if b < a {
			return nil, fmt.Errorf("bad -seeds range %s: end before start", s)
		}
		if b-a >= 1<<16 {
			return nil, fmt.Errorf("-seeds range %s too large (max 65536 seeds)", s)
		}
		out := make([]uint64, 0, b-a+1)
		for v := a; ; v++ {
			out = append(out, v)
			if v == b {
				break
			}
		}
		return out, nil
	}
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds entry %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

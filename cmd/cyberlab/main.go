// Command cyberlab runs the paper-reproduction experiments: every figure
// (F1–F6), every quantitative claim (C1–C11), the Section-V trend
// taxonomy (T1) and the ablations (A1, A2). See DESIGN.md for the index.
//
// Usage:
//
//	cyberlab -list
//	cyberlab -run F1 [-seed 7]
//	cyberlab -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cyberlab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cyberlab", flag.ContinueOnError)
	var (
		list = fs.Bool("list", false, "list experiment IDs and exit")
		id   = fs.String("run", "", "run a single experiment by ID (e.g. F1)")
		all  = fs.Bool("all", false, "run every experiment")
		seed = fs.Uint64("seed", 1, "deterministic simulation seed")
		out  = fs.String("o", "", "also write the report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var report strings.Builder
	emit := func(format string, a ...any) {
		fmt.Fprintf(&report, format, a...)
		fmt.Printf(format, a...)
	}
	defer func() {
		if *out != "" {
			if werr := os.WriteFile(*out, []byte(report.String()), 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "cyberlab: write report:", werr)
			}
		}
	}()

	switch {
	case *list:
		for _, eid := range core.ExperimentIDs() {
			fmt.Println(eid)
		}
		return nil
	case *id != "":
		runner, ok := core.Experiments[*id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *id)
		}
		started := time.Now()
		res, err := runner(*seed)
		if err != nil {
			return err
		}
		emit("%s", res.Render())
		emit("  wall time: %v\n", time.Since(started).Round(time.Millisecond))
		if !res.Pass {
			return fmt.Errorf("experiment %s did not reproduce", *id)
		}
		return nil
	case *all:
		started := time.Now()
		results, err := core.RunAll(*seed)
		if err != nil {
			return err
		}
		failed := 0
		for _, res := range results {
			emit("%s\n", res.Render())
			if !res.Pass {
				failed++
			}
		}
		emit("%d/%d experiments reproduced (seed %d, wall %v)\n",
			len(results)-failed, len(results), *seed, time.Since(started).Round(time.Millisecond))
		if failed > 0 {
			return fmt.Errorf("%d experiments failed", failed)
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("specify -list, -run ID, or -all")
	}
}

package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout around fn so subcommand output can be
// asserted byte-for-byte.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

// TestTraceSubcommandDeterministicAcrossWorkers is the acceptance check:
// exports produced under different -parallel counts reconstruct to
// byte-identical DOT and text renders, and the forest covers the
// Stuxnet, Flame and Shamoon campaigns.
func TestTraceSubcommandDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	var refDot, refText []byte
	for _, p := range []string{"1", "4", "8"} {
		export := filepath.Join(dir, "trace-"+p+".jsonl")
		if err := run([]string{"-run", "F1,C4,C9", "-parallel", p, "-trace", export}); err != nil {
			t.Fatalf("-parallel %s: %v", p, err)
		}
		dotPath := filepath.Join(dir, "out-"+p+".dot")
		if err := run([]string{"trace", "-in", export, "-dot", dotPath}); err != nil {
			t.Fatalf("trace -dot (-parallel %s export): %v", p, err)
		}
		dot, err := os.ReadFile(dotPath)
		if err != nil {
			t.Fatal(err)
		}
		text, terr := captureStdout(t, func() error {
			return run([]string{"trace", "-in", export})
		})
		if terr != nil {
			t.Fatalf("trace text: %v", terr)
		}
		if refDot == nil {
			refDot, refText = dot, []byte(text)
			continue
		}
		if !bytes.Equal(dot, refDot) {
			t.Errorf("-parallel %s: DOT differs from -parallel 1", p)
		}
		if !bytes.Equal([]byte(text), refText) {
			t.Errorf("-parallel %s: text render differs from -parallel 1", p)
		}
	}
	for _, campaign := range []string{"stuxnet installed", "flame installed", "shamoon installed"} {
		if !bytes.Contains(refDot, []byte(campaign)) {
			t.Errorf("DOT missing %q", campaign)
		}
	}
	if !bytes.HasPrefix(refDot, []byte("digraph provenance {")) || !bytes.HasSuffix(refDot, []byte("}\n")) {
		t.Error("DOT output not a well-formed digraph")
	}
	// Three experiments → three clusters.
	if n := bytes.Count(refDot, []byte("subgraph cluster_")); n != 3 {
		t.Errorf("DOT has %d clusters, want 3", n)
	}
}

func TestTraceChainWalk(t *testing.T) {
	dir := t.TempDir()
	export := filepath.Join(dir, "f1.jsonl")
	if err := run([]string{"-run", "F1", "-trace", export}); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"trace", "-in", export, "-chain", "F1/s3"})
	})
	if err != nil {
		t.Fatalf("trace -chain: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("chain depth = %d lines, want origin + one hop:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "origin") || !strings.Contains(lines[0], "stuxnet installed") {
		t.Errorf("chain origin line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "hop 1") || !strings.Contains(lines[1], "spooler") {
		t.Errorf("chain hop line: %q", lines[1])
	}
	// The bare span form works when the stream has one experiment.
	bare, err := captureStdout(t, func() error {
		return run([]string{"trace", "-in", export, "-chain", "s3"})
	})
	if err != nil || bare != out {
		t.Errorf("bare -chain s3 output differs: err=%v", err)
	}
	if err := run([]string{"trace", "-in", export, "-chain", "F1/s999"}); err == nil {
		t.Error("unknown span accepted")
	}
}

func TestTraceFilters(t *testing.T) {
	dir := t.TempDir()
	export := filepath.Join(dir, "multi.jsonl")
	if err := run([]string{"-run", "F1,C4", "-trace", export}); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"trace", "-in", export, "-tag", "exp=F1"})
	})
	if err != nil {
		t.Fatalf("trace -tag: %v", err)
	}
	if strings.Contains(out, "flame") || !strings.Contains(out, "stuxnet") {
		t.Errorf("-tag exp=F1 did not isolate the Stuxnet forest:\n%s", out)
	}
	out, err = captureStdout(t, func() error {
		return run([]string{"trace", "-in", export, "-cat", "infect", "-actor", "ENG-STATION"})
	})
	if err != nil {
		t.Fatalf("trace -cat -actor: %v", err)
	}
	if !strings.Contains(out, "ENG-STATION") || strings.Contains(out, "OFFICE-1") {
		t.Errorf("-cat/-actor filter leaked other actors:\n%s", out)
	}
}

func TestTraceArgValidation(t *testing.T) {
	if err := run([]string{"trace"}); err == nil {
		t.Error("trace without -in accepted")
	}
	if err := run([]string{"trace", "-in", "/does/not/exist.jsonl"}); err == nil {
		t.Error("missing input file accepted")
	}
	if err := run([]string{"trace", "-in", "x.jsonl", "-tag", "novalue"}); err == nil {
		t.Error("malformed -tag accepted")
	}
}

// TestOutputPathsValidatedUpFront is the fail-fast satellite: a doomed
// output destination must be rejected before any experiment runs, not
// after minutes of simulation.
func TestOutputPathsValidatedUpFront(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope", "deep")
	for _, args := range [][]string{
		{"-run", "F1", "-trace", filepath.Join(missing, "t.jsonl")},
		{"-run", "F1", "-metrics", filepath.Join(missing, "m.json")},
		{"-report", "-o", filepath.Join(missing, "r.md")},
	} {
		err := run(args)
		if err == nil {
			t.Errorf("%v: doomed output path accepted", args)
			continue
		}
		if !strings.Contains(err.Error(), "does not exist") {
			t.Errorf("%v: error does not name the missing directory: %v", args, err)
		}
	}
	// A directory given as the output file is just as doomed.
	dir := t.TempDir()
	if err := run([]string{"-run", "F1", "-trace", dir}); err == nil ||
		!strings.Contains(err.Error(), "is a directory") {
		t.Errorf("directory output path: %v", err)
	}
	// trace -dot goes through the same gate.
	if err := run([]string{"trace", "-in", "whatever.jsonl", "-dot", filepath.Join(missing, "g.dot")}); err == nil ||
		!strings.Contains(err.Error(), "does not exist") {
		t.Error("trace -dot doomed path accepted")
	}
}

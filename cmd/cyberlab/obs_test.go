package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestTraceMetricsDeterministicAcrossWorkers asserts the PR's contract:
// the -trace and -metrics artefacts are byte-identical no matter how many
// workers ran the experiments. Uses a fast subset so the matrix stays
// test-tier.
func TestTraceMetricsDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	var refTrace, refMetrics []byte
	for _, p := range []string{"1", "4", "8"} {
		tr := filepath.Join(dir, "trace-"+p+".jsonl")
		mt := filepath.Join(dir, "metrics-"+p+".json")
		if err := run([]string{"-run", "F2,F3,C1,C8", "-parallel", p, "-trace", tr, "-metrics", mt}); err != nil {
			t.Fatalf("-parallel %s: %v", p, err)
		}
		gotTrace, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		gotMetrics, err := os.ReadFile(mt)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotTrace) == 0 || len(gotMetrics) == 0 {
			t.Fatalf("-parallel %s: empty artefacts (trace %d bytes, metrics %d bytes)",
				p, len(gotTrace), len(gotMetrics))
		}
		if refTrace == nil {
			refTrace, refMetrics = gotTrace, gotMetrics
			continue
		}
		if !bytes.Equal(gotTrace, refTrace) {
			t.Errorf("-parallel %s: trace differs from -parallel 1", p)
		}
		if !bytes.Equal(gotMetrics, refMetrics) {
			t.Errorf("-parallel %s: metrics differ from -parallel 1", p)
		}
	}
}

// TestReportMatchesCommitted regenerates EXPERIMENTS.md from a live run
// and diffs it against the committed copy — the same drift gate ci.sh
// applies. Skipped under -short (the full run includes the 30k-host C7).
func TestReportMatchesCommitted(t *testing.T) {
	if testing.Short() {
		t.Skip("full -report run skipped in -short mode")
	}
	committed, err := os.ReadFile(filepath.Join("..", "..", "EXPERIMENTS.md"))
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "EXPERIMENTS.md")
	if err := run([]string{"-report", "-o", out}); err != nil {
		t.Fatalf("-report: %v", err)
	}
	generated, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(generated, committed) {
		t.Fatalf("EXPERIMENTS.md drifted from `cyberlab -report` output; regenerate with\n" +
			"  go run ./cmd/cyberlab -report -o EXPERIMENTS.md")
	}
}

func TestTraceRejectedWithSeeds(t *testing.T) {
	if err := run([]string{"-run", "F3", "-seeds", "1..2", "-trace", filepath.Join(t.TempDir(), "t.jsonl")}); err == nil {
		t.Fatal("-trace with -seeds accepted; sweeps discard per-run events")
	}
}

func TestRunCommaListRejectsUnknownID(t *testing.T) {
	if err := run([]string{"-run", "F3,ZZ"}); err == nil {
		t.Fatal("unknown ID in -run list accepted")
	}
}

func TestSweepMetricsWritten(t *testing.T) {
	mt := filepath.Join(t.TempDir(), "m.json")
	if err := run([]string{"-run", "F3", "-seeds", "1..2", "-metrics", mt}); err != nil {
		t.Fatalf("sweep with -metrics: %v", err)
	}
	data, err := os.ReadFile(mt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("counters")) {
		t.Fatalf("sweep metrics snapshot missing counters section: %s", data)
	}
}

package main

import "testing"

func TestParseSeeds(t *testing.T) {
	cases := []struct {
		in   string
		want []uint64
		err  bool
	}{
		{in: "1..4", want: []uint64{1, 2, 3, 4}},
		{in: "7..7", want: []uint64{7}},
		{in: "3,1,3", want: []uint64{3, 1, 3}},
		{in: " 5 , 6 ", want: []uint64{5, 6}},
		{in: "4..2", err: true},
		{in: "a..b", err: true},
		{in: "1..999999999", err: true},
		{in: "", err: true},
		{in: "1,x", err: true},
	}
	for _, c := range cases {
		got, err := parseSeeds(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseSeeds(%q) accepted, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSeeds(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseSeeds(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("parseSeeds(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestSeedSweepSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "F3", "-seeds", "1..2", "-parallel", "2"}); err != nil {
		t.Fatalf("sweep F3: %v", err)
	}
}

func TestBadParallelValue(t *testing.T) {
	if err := run([]string{"-all", "-parallel", "0"}); err == nil {
		t.Fatal("-parallel 0 accepted")
	}
}

func TestBadSeedsValue(t *testing.T) {
	if err := run([]string{"-all", "-seeds", "9..1"}); err == nil {
		t.Fatal("bad -seeds range accepted")
	}
}

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "F3", "-seed", "3"}); err != nil {
		t.Fatalf("run F3: %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "ZZ"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNoModeIsError(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no mode accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

package main

import "testing"

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "F3", "-seed", "3"}); err != nil {
		t.Fatalf("run F3: %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "ZZ"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNoModeIsError(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no mode accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runstats"
)

func TestProfileSubcommandManifest(t *testing.T) {
	out := filepath.Join(t.TempDir(), "manifest.json")
	if err := run([]string{"profile", "-run", "A3,F3", "-o", out}); err != nil {
		t.Fatalf("profile: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var m runstats.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Plane != "wall-clock" {
		t.Fatalf("plane = %q, want wall-clock", m.Plane)
	}
	if m.Kernel.Hosts < 512 { // A3's fleet
		t.Fatalf("hosts = %d, want >= 512", m.Kernel.Hosts)
	}
	if m.Kernel.EventsFired == 0 || m.Kernel.NsPerEvent <= 0 {
		t.Fatalf("kernel stats empty: %+v", m.Kernel)
	}
	if len(m.Experiments) != 2 {
		t.Fatalf("experiments = %d entries, want 2 (A3, F3)", len(m.Experiments))
	}
	for _, e := range m.Experiments {
		if !e.Ok {
			t.Fatalf("experiment %s marked failed in manifest", e.ID)
		}
	}
	// The global collector must not leak into subsequent invocations.
	if runstats.Active() != nil {
		t.Fatal("profile left the global collector enabled")
	}
}

func TestProfileRequiresMode(t *testing.T) {
	if err := run([]string{"profile"}); err == nil {
		t.Fatal("profile with no -run/-all accepted")
	}
}

func TestProfileUnknownExperiment(t *testing.T) {
	if err := run([]string{"profile", "-run", "ZZ"}); err == nil {
		t.Fatal("profile -run ZZ accepted")
	}
}

func TestProfileBadParallel(t *testing.T) {
	if err := run([]string{"profile", "-run", "F3", "-parallel", "0"}); err == nil {
		t.Fatal("profile -parallel 0 accepted")
	}
}

// TestProgressFlagKeepsReportBytes is the CLI face of the isolation
// property: the -o report of a -progress run is byte-identical to a
// plain run's (the deeper trace/metrics assertion lives in
// internal/core's TestRunstatsDeterminismIsolation).
func TestProgressFlagKeepsReportBytes(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.txt")
	probed := filepath.Join(dir, "probed.txt")
	if err := run([]string{"-run", "F2,C8", "-o", plain}); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	if err := run([]string{"-run", "F2,C8", "-progress", "-o", probed}); err != nil {
		t.Fatalf("progress run: %v", err)
	}
	a, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(probed)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("-progress changed the report bytes:\n--- plain ---\n%s\n--- probed ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty report")
	}
}

func TestValidateOutPathRejectsBadDestinations(t *testing.T) {
	dir := t.TempDir()
	if err := validateOutPath("-o", filepath.Join(dir, "missing", "x.json")); err == nil {
		t.Fatal("missing parent directory accepted")
	}
	if err := validateOutPath("-o", dir); err == nil {
		t.Fatal("directory destination accepted")
	}
	if err := validateOutPath("-o", filepath.Join(dir, "ok.json")); err != nil {
		t.Fatalf("valid destination rejected: %v", err)
	}
	// Existing writable file: fine, and not truncated by validation.
	f := filepath.Join(dir, "existing.json")
	if err := os.WriteFile(f, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateOutPath("-o", f); err != nil {
		t.Fatalf("existing file rejected: %v", err)
	}
	if data, _ := os.ReadFile(f); string(data) != "keep" {
		t.Fatal("validation truncated the existing file")
	}
}

// TestValidateOutPathRejectsUnwritable covers the fail-fast gap for
// -cpuprofile/-memprofile: a read-only directory must be caught up
// front, not when the deferred heap write fires after the run.
func TestValidateOutPathRejectsUnwritable(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permission bits")
	}
	dir := t.TempDir()
	ro := filepath.Join(dir, "ro")
	if err := os.Mkdir(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	if err := validateOutPath("-memprofile", filepath.Join(ro, "heap.pb")); err == nil {
		t.Fatal("unwritable directory accepted")
	}
	roFile := filepath.Join(dir, "ro.json")
	if err := os.WriteFile(roFile, nil, 0o444); err != nil {
		t.Fatal(err)
	}
	if err := validateOutPath("-cpuprofile", roFile); err == nil {
		t.Fatal("read-only existing file accepted")
	}
}

// TestProfileValidatesOutput: the profile subcommand goes through the
// same fail-fast output validation as every other output flag.
func TestProfileValidatesOutput(t *testing.T) {
	if err := run([]string{"profile", "-run", "F3", "-o", filepath.Join(t.TempDir(), "no", "such", "dir.json")}); err == nil {
		t.Fatal("profile -o into missing directory accepted")
	}
}

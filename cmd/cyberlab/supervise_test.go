package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunJournalResume drives the full CLI path: a journaled run, then a
// -resume run that serves the journaled experiment instead of
// re-executing it.
func TestRunJournalResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	if err := run([]string{"-run", "F3", "-journal", path}); err != nil {
		t.Fatalf("journaled run: %v", err)
	}
	if err := run([]string{"-run", "F3,C8", "-journal", path, "-resume"}); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	// Without -resume, reusing the journal must be refused.
	if err := run([]string{"-run", "F3", "-journal", path}); err == nil ||
		!strings.Contains(err.Error(), "-resume") {
		t.Fatalf("journal reuse without -resume = %v, want a refusal", err)
	}
}

func TestRunJournalFlagValidation(t *testing.T) {
	if err := run([]string{"-run", "F3", "-resume"}); err == nil ||
		!strings.Contains(err.Error(), "-journal") {
		t.Fatal("-resume without -journal accepted")
	}
	if err := run([]string{"-run", "F3", "-seeds", "1..2", "-journal", "x.journal"}); err == nil {
		t.Fatal("-journal with -seeds accepted")
	}
	if err := run([]string{"-list", "-journal", "x.journal"}); err == nil {
		t.Fatal("-journal without a run accepted")
	}
	if err := run([]string{"-run", "F3", "-max-retries", "-1"}); err == nil {
		t.Fatal("negative -max-retries accepted")
	}
	if err := run([]string{"-run", "F3", "-stall", "-1s"}); err == nil {
		t.Fatal("negative -stall accepted")
	}
}

// TestRunFailureSummaryNamesIDs pins the exit contract: a run with a
// failing experiment exits non-zero with a one-line summary naming the
// failing IDs and why they failed.
func TestRunFailureSummaryNamesIDs(t *testing.T) {
	// X1 is the hidden spin self-test; unsupervised it refuses to start,
	// a deterministic error the summary must surface by ID.
	err := run([]string{"-run", "X1,F3"})
	if err == nil {
		t.Fatal("run with a failing experiment exited zero")
	}
	if !strings.Contains(err.Error(), "X1 (error)") || !strings.Contains(err.Error(), "did not complete") {
		t.Fatalf("failure summary does not name the failing ID: %v", err)
	}
	if strings.Contains(err.Error(), "F3") {
		t.Fatalf("failure summary names a passing experiment: %v", err)
	}

	// Under an armed watchdog X1 spins until reaped; the summary must
	// report it as aborted, and the healthy sibling still passes.
	err = run([]string{"-run", "X1,F3", "-stall", "100ms"})
	if err == nil || !strings.Contains(err.Error(), "X1 (aborted)") {
		t.Fatalf("supervised failure summary = %v, want X1 (aborted)", err)
	}
}

// TestCheckpointForkCLI round-trips a checkpoint through the two
// subcommands: capture to a file, then fork from it.
func TestCheckpointForkCLI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c1.checkpoint")
	if err := run([]string{"checkpoint", "-run", "C1", "-at", "12h", "-o", path}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint file missing or empty: %v", err)
	}
	tail := filepath.Join(dir, "tail.jsonl")
	if err := run([]string{"fork", "-from", path, "-trace", tail}); err != nil {
		t.Fatalf("fork: %v", err)
	}
	if _, err := os.Stat(tail); err != nil {
		t.Fatalf("fork tail trace missing: %v", err)
	}
}

func TestCheckpointFlagValidation(t *testing.T) {
	if err := run([]string{"checkpoint", "-run", "C1"}); err == nil {
		t.Fatal("checkpoint without -at accepted")
	}
	if err := run([]string{"checkpoint", "-at", "1h"}); err == nil {
		t.Fatal("checkpoint without -run accepted")
	}
	if err := run([]string{"checkpoint", "-run", "ZZ", "-at", "1h"}); err == nil {
		t.Fatal("checkpoint of unknown experiment accepted")
	}
	if err := run([]string{"fork"}); err == nil {
		t.Fatal("fork without -from accepted")
	}
	if err := run([]string{"fork", "-from", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("fork from a missing file accepted")
	}
}

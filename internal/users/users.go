// Package users is the range's benign user-activity layer: deterministic
// per-host user agents that keep a fleet busy with ordinary work so the
// detection experiments measure signal against a realistic noise floor
// instead of a silent world (Dey et al., "Realistic simulation of users
// for IT systems in cyber ranges").
//
// Each agent follows a seeded daily-rhythm profile — office worker,
// admin, developer, kiosk — and emits real simulator actions through the
// same substrate the malware models use: document churn via the lazy-COW
// host filesystem, mail and web browsing through netsim, file-share
// copies, USB plug/copy cycles, and the admin's credentialed
// RDP + SMB-copy + remote-exec maintenance rounds. Every action therefore
// produces the same trace events, spans and telemetry analogs an
// intrusion produces, which is exactly what makes the noise honest: a
// rule that cannot tell the admin's PsExec from the attacker's pays for
// it in measured false positives (experiments D4/D5).
//
// Determinism contract (DESIGN.md §11): an agent owns an RNG forked from
// its host's stream at attach time, ticks on the shared kernel's pooled
// timers, and draws nothing while off-shift — so for a fixed seed the
// action stream is a pure function of the profile mix and byte-identical
// at any worker count. Action breadcrumbs are emitted as cat=user trace
// records named users.<noun>.<verb>, matching the layer's metric names;
// all of an agent's actions carry its users.session.start span, so a
// false positive chains back to the responsible benign session via
// `cyberlab trace -chain`.
package users

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pe"
	"repro/internal/sim"
	"repro/internal/usb"
)

// Profile names one daily-rhythm behaviour class.
type Profile string

// The four agent profiles. Work hours gate the hourly tick; outside them
// an agent draws no randomness at all, so shift boundaries cannot skew
// the RNG stream.
const (
	// Office churns documents, mail, web, file shares and the odd USB
	// stick between 08:00 and 18:00.
	Office Profile = "office"
	// Admin does light office work plus a daily maintenance round —
	// RDP login, patch copy, remote exec against one fleet host — the
	// benign twin of the PSEXESVC telemetry the rule pack watches.
	Admin Profile = "admin"
	// Developer runs build tools and pushes artefacts to shares between
	// 09:00 and 19:00.
	Developer Profile = "developer"
	// Kiosk browses the web around the clock and touches nothing else.
	Kiosk Profile = "kiosk"
)

// Mix names a fleet-level profile assignment: host i's profile is a pure
// function of (mix, i), so a sharded fleet build at any worker count
// yields the same population.
type Mix string

// The built-in mixes. The zero value "" means "unset" (scenario builders
// fall back to the global -activity default); MixNone is the explicit
// silent fleet.
const (
	MixNone      Mix = "none"
	MixOffice    Mix = "office"
	MixDeveloper Mix = "developer"
	MixKiosk     Mix = "kiosk"
	// MixEnterprise is the populated-fleet default: host 0 is the admin,
	// every fifth-ish host a developer, a few kiosks, the rest office.
	MixEnterprise Mix = "enterprise"
)

// ParseMix validates a mix name from a flag or config.
func ParseMix(s string) (Mix, error) {
	switch Mix(s) {
	case MixNone, MixOffice, MixDeveloper, MixKiosk, MixEnterprise:
		return Mix(s), nil
	}
	return "", fmt.Errorf("users: unknown activity mix %q (none, office, developer, kiosk, enterprise)", s)
}

// ProfileFor assigns host index i its profile under the mix. Empty means
// no agent.
func (m Mix) ProfileFor(i int) Profile {
	switch m {
	case MixOffice:
		return Office
	case MixDeveloper:
		return Developer
	case MixKiosk:
		return Kiosk
	case MixEnterprise:
		switch {
		case i == 0:
			return Admin
		case i%5 == 3:
			return Developer
		case i%9 == 7:
			return Kiosk
		default:
			return Office
		}
	}
	return ""
}

// Config parameterizes a population. Zero values get defaults in Attach.
type Config struct {
	// Mix assigns profiles by host index (required; MixNone attaches
	// nobody).
	Mix Mix
	// TickEvery is the action cadence during work hours (default 1h).
	TickEvery time.Duration
	// MaintainEvery is the admin maintenance-round period (default 24h).
	// At the default, the round's single RDP login stays below the
	// rdp-login-burst threshold window by construction — see DESIGN.md
	// §11 for the cadence/threshold arithmetic.
	MaintainEvery time.Duration
	// DocBytes caps generated document size (default 4 KiB; documents
	// are seeded lazily exactly like host.SeedDocumentsSized).
	DocBytes int
}

// Stats aggregates what the population did; deterministic for a fixed
// seed.
type Stats struct {
	Agents       int
	DocWrites    int
	MailsSent    int
	MailsRead    int
	WebVisits    int
	ShareCopies  int
	USBCycles    int
	ToolRuns     int
	RDPLogins    int
	Maintenances int
	TasksCreated int
	// ActionErrors counts actions the substrate refused (target down,
	// shares closed, no uplink). The draw still happened, so the RNG
	// stream is unaffected.
	ActionErrors int
}

// Actions returns the total benign actions performed.
func (s Stats) Actions() int {
	return s.DocWrites + s.MailsSent + s.MailsRead + s.WebVisits +
		s.ShareCopies + s.USBCycles + s.ToolRuns + s.Maintenances
}

// Agent is one simulated human on one host.
type Agent struct {
	H       *host.Host
	Profile Profile
	// Session is the agent's root provenance span: every action the agent
	// performs is stamped with it, so alerts its telemetry trips chain
	// back to the benign session.
	Session obs.Span

	pop     *Population
	rng     *sim.RNG
	user    string
	docSlot int
	peerIdx int
	drive   *usb.Drive
}

// Population is a set of agents attached to one LAN's hosts.
type Population struct {
	K   *sim.Kernel
	LAN *netsim.LAN

	Agents []*Agent
	Stats  Stats

	cfg      Config
	reportMu []byte // shared immutable buffer for share/USB copies
	mailRaw  []byte
	patchRaw []byte
	patchImg *pe.File
	toolImg  *pe.File

	mDoc, mMailSend, mMailRead, mWeb    *obs.Counter
	mShare, mUSB, mTool, mRDP           *obs.Counter
	mMaintain, mTask, mAttach, mRefused *obs.Counter
}

// Benign corporate endpoints EnsureServices registers on the simulated
// internet. Addresses live in the 198.51.100.0/24 TEST-NET block next to
// the world's other infrastructure.
const (
	MailDomain = "mail.corp.example"
	mailIP     = netsim.IP("198.51.100.60")
)

var webSites = []struct {
	Domain string
	IP     netsim.IP
}{
	{"portal.corp.example", "198.51.100.61"},
	{"news.example", "198.51.100.62"},
	{"weather.example", "198.51.100.63"},
}

// EnsureServices registers the benign mail and web endpoints agents talk
// to. Registration is idempotent: re-binding the same name/IP pair is a
// no-op in effect, so multiple populations can share one internet.
func EnsureServices(in *netsim.Internet) {
	if in == nil {
		return
	}
	page := []byte("<html>corporate portal</html>")
	ok := netsim.HandlerFunc(func(*netsim.Request) *netsim.Response { return netsim.OK(page) })
	in.RegisterDomain(MailDomain, mailIP)
	inbox := []byte("inbox: 3 unread")
	in.BindServer(mailIP, netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		if req.Method == "POST" {
			return netsim.OK(nil)
		}
		return netsim.OK(inbox)
	}))
	for _, s := range webSites {
		in.RegisterDomain(s.Domain, s.IP)
		in.BindServer(s.IP, ok)
	}
}

// docExts are the document types office agents churn (a subset of what
// the collection malware hunts, so noise documents are plausible loot).
var docExts = []string{"docx", "xlsx", "pdf", "txt"}

// Attach builds one agent per host according to cfg.Mix and starts their
// timers. It must be called from the sequential phase of fleet
// construction (after AddHostsSharded's merge), so the per-agent RNG
// forks happen in host-index order regardless of build workers. internet
// may be nil (air-gapped fleets skip mail/web).
func Attach(k *sim.Kernel, lan *netsim.LAN, internet *netsim.Internet, hosts []*host.Host, cfg Config) (*Population, error) {
	if cfg.Mix == "" || cfg.Mix == MixNone {
		return nil, fmt.Errorf("users: Attach needs an activity mix (got %q)", cfg.Mix)
	}
	if _, err := ParseMix(string(cfg.Mix)); err != nil {
		return nil, err
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = time.Hour
	}
	if cfg.MaintainEvery <= 0 {
		cfg.MaintainEvery = 24 * time.Hour
	}
	if cfg.DocBytes < 2048 {
		cfg.DocBytes = 4 * 1024
	}
	p := &Population{K: k, LAN: lan, cfg: cfg}
	m := k.Metrics()
	p.mDoc = m.Counter("users.doc.write")
	p.mMailSend = m.Counter("users.mail.send")
	p.mMailRead = m.Counter("users.mail.recv")
	p.mWeb = m.Counter("users.web.browse")
	p.mShare = m.Counter("users.share.copy")
	p.mUSB = m.Counter("users.usb.cycle")
	p.mTool = m.Counter("users.tool.run")
	p.mRDP = m.Counter("users.rdp.login")
	p.mMaintain = m.Counter("users.host.maintain")
	p.mTask = m.Counter("users.task.register")
	p.mAttach = m.Counter("users.agent.attach")
	p.mRefused = m.Counter("users.action.refused")

	EnsureServices(internet)
	p.reportMu = []byte(strings.Repeat("quarterly report draft \x00", 64))
	p.mailRaw = []byte("From: staff\r\nSubject: weekly status\r\n\r\nall quiet.")
	p.patchImg = &pe.File{
		Name: "kb-maint.exe", Machine: pe.MachineX86,
		Timestamp: time.Date(2012, 5, 8, 0, 0, 0, 0, time.UTC),
		Sections: []pe.Section{{Name: ".text", Characteristics: pe.SecCode | pe.SecExec,
			Data: []byte("monthly maintenance rollup installer\x00")}},
	}
	raw, err := p.patchImg.Marshal()
	if err != nil {
		return nil, fmt.Errorf("users: marshal patch image: %w", err)
	}
	p.patchRaw = raw
	p.toolImg = &pe.File{
		Name: "msbuild.exe", Machine: pe.MachineX86,
		Timestamp: time.Date(2010, 3, 1, 0, 0, 0, 0, time.UTC),
		Sections: []pe.Section{{Name: ".text", Characteristics: pe.SecCode | pe.SecExec,
			Data: []byte("build toolchain driver\x00")}},
	}

	for i, h := range hosts {
		prof := cfg.Mix.ProfileFor(i)
		if prof == "" {
			continue
		}
		p.attachAgent(h, prof)
	}
	return p, nil
}

// attachAgent wires one agent: its RNG fork, its session span, and its
// timers. Runs sequentially in host order — the worker-count invariance
// of the whole layer rests on that.
func (p *Population) attachAgent(h *host.Host, prof Profile) {
	a := &Agent{H: h, Profile: prof, pop: p, rng: h.RNG.Fork(), user: "emp-" + strings.ToLower(h.Name)}
	a.Session = p.K.OpenSpan(sim.CatUser, h.Name, "users.session.start "+string(prof), "user",
		obs.T("profile", string(prof)), obs.T("user", a.user))
	p.Agents = append(p.Agents, a)
	p.Stats.Agents++
	p.mAttach.Inc()
	p.K.Every(p.cfg.TickEvery, "users-tick:"+h.Name, func() { p.tick(a) })
	if prof == Admin {
		// Routine persistence the pack must NOT fire on: a Program Files
		// inventory task, registered up front (the benign Event-4698).
		p.K.WithCause(sim.Cause{Span: a.Session, Vector: "user"}, func() {
			h.ScheduleTask("inventory-scan", `C:\Program Files\Inventory\scan.exe`,
				p.K.Now().Add(30*24*time.Hour))
		})
		p.Stats.TasksCreated++
		p.mTask.Inc()
		p.K.Every(p.cfg.MaintainEvery, "users-admin:"+h.Name, func() { p.maintain(a) })
	}
}

// activeAt gates the tick on the profile's work hours. Purely a function
// of virtual time: no draws happen off-shift.
func activeAt(prof Profile, t time.Time) bool {
	hr := t.UTC().Hour()
	switch prof {
	case Office, Admin:
		return hr >= 8 && hr < 18
	case Developer:
		return hr >= 9 && hr < 19
	case Kiosk:
		return true
	}
	return false
}

// tick performs one work-hours action under the agent's session span.
func (p *Population) tick(a *Agent) {
	if a.H.Down || !activeAt(a.Profile, p.K.Now()) {
		return
	}
	p.K.WithCause(sim.Cause{Span: a.Session, Vector: "user"}, func() { p.act(a) })
}

// act draws once and dispatches on the profile's action weights.
func (p *Population) act(a *Agent) {
	r := a.rng.Float64()
	switch a.Profile {
	case Office:
		switch {
		case r < 0.35:
			p.writeDoc(a)
		case r < 0.50:
			p.mail(a, true)
		case r < 0.62:
			p.mail(a, false)
		case r < 0.77:
			p.browse(a)
		case r < 0.92:
			p.shareCopy(a)
		default:
			p.usbCycle(a)
		}
	case Admin:
		switch {
		case r < 0.45:
			p.writeDoc(a)
		case r < 0.70:
			p.mail(a, true)
		default:
			p.browse(a)
		}
	case Developer:
		switch {
		case r < 0.25:
			p.writeDoc(a)
		case r < 0.45:
			p.toolRun(a)
		case r < 0.65:
			p.shareCopy(a)
		case r < 0.85:
			p.browse(a)
		default:
			p.mail(a, true)
		}
	case Kiosk:
		p.browse(a)
	}
}

// breadcrumb emits the action's cat=user trace record. Skipped entirely
// on dead traces (muted, no subscribers) so 30k busy hosts pay nothing
// for it in fleet benchmarks; counters and substrate events are never
// gated this way.
func (p *Population) breadcrumb(a *Agent, msg string) {
	tr := p.K.Trace()
	if !tr.Live() {
		return
	}
	tr.Emit(p.K.Now(), sim.CatUser, a.H.Name, msg,
		obs.T("user", a.user), obs.T("profile", string(a.Profile)))
}

// writeDoc creates or rewrites one document in the agent's rotating slot
// set. Content is lazy-COW exactly like host.SeedDocumentsSized: the file
// records the RNG position and the stream skips what eager generation
// would have consumed — so a populated 30k fleet stays cheap and a later
// read (or wipe) sees the same bytes either way. The slot cap bounds
// per-host file growth however long the run.
func (p *Population) writeDoc(a *Agent) {
	const docSlots = 8
	slot := a.docSlot % docSlots
	a.docSlot++
	ext := docExts[a.rng.Intn(len(docExts))]
	size := 1024 + a.rng.Intn(p.cfg.DocBytes-1024)
	name := fmt.Sprintf("draft-%02d.%s", slot, ext)
	path := `C:\Users\` + a.user + `\documents\` + name
	var err error
	if a.H.EagerDocs {
		data := a.rng.Bytes(size)
		err = a.H.FS.Write(path, data, 0, p.K.Now())
	} else {
		lc := host.LazyContent{Seed: a.rng.State(), Len: size, Doc: true}
		a.rng.Skip((size + 7) / 8)
		err = a.H.FS.WriteLazy(path, lc, 0, p.K.Now())
	}
	if err != nil {
		p.refused(a)
		return
	}
	p.Stats.DocWrites++
	p.mDoc.Inc()
	p.breadcrumb(a, "users.doc.write "+name)
}

// mail sends (send=true) or polls (send=false) the corporate mail host.
func (p *Population) mail(a *Agent, send bool) {
	if !a.H.Internet || p.LAN.Uplink == nil {
		p.refused(a)
		return
	}
	req := &netsim.Request{Method: "GET", Host: MailDomain, Path: "/inbox"}
	if send {
		req.Method, req.Path, req.Body = "POST", "/send", p.mailRaw
	}
	if _, err := p.LAN.HTTP(a.H, req); err != nil {
		p.refused(a)
		return
	}
	if send {
		p.Stats.MailsSent++
		p.mMailSend.Inc()
		p.breadcrumb(a, "users.mail.send "+MailDomain)
	} else {
		p.Stats.MailsRead++
		p.mMailRead.Inc()
		p.breadcrumb(a, "users.mail.recv "+MailDomain)
	}
}

// browse fetches one page from the benign web pool. The site draw happens
// before the reachability check so the RNG stream does not depend on
// uplink state.
func (p *Population) browse(a *Agent) {
	site := webSites[a.rng.Intn(len(webSites))].Domain
	if !a.H.Internet || p.LAN.Uplink == nil {
		p.refused(a)
		return
	}
	if _, err := p.LAN.HTTP(a.H, &netsim.Request{Method: "GET", Host: site, Path: "/"}); err != nil {
		p.refused(a)
		return
	}
	p.Stats.WebVisits++
	p.mWeb.Inc()
	p.breadcrumb(a, "users.web.browse "+site)
}

// shareCopy drops the agent's report on the next peer's public share —
// the benign cat=spread "smb copy" telemetry. The buffer is shared and
// immutable; targets alias it (DESIGN.md §9), and the fixed per-source
// path bounds target-side file growth.
func (p *Population) shareCopy(a *Agent) {
	target := p.LAN.PeerAt(a.H.Name, a.peerIdx)
	a.peerIdx++
	if target == nil {
		p.refused(a)
		return
	}
	path := `C:\Users\Public\reports\` + a.user + `.docx`
	if err := p.LAN.CopyToShare(a.H, target.Name, path, p.reportMu); err != nil {
		p.refused(a)
		return
	}
	p.Stats.ShareCopies++
	p.mShare.Inc()
	p.breadcrumb(a, "users.share.copy to "+target.Name)
}

// usbCycle plugs the agent's personal stick, parks the report on it, and
// removes it — the benign cat=usb telemetry.
func (p *Population) usbCycle(a *Agent) {
	if a.drive == nil {
		a.drive = usb.NewDrive("USB-" + a.H.Name)
	}
	a.H.InsertUSB(a.drive)
	a.drive.Put("backup-"+a.user+".docx", p.reportMu, false)
	a.H.RemoveUSB()
	p.Stats.USBCycles++
	p.mUSB.Inc()
	p.breadcrumb(a, "users.usb.cycle "+a.drive.Label)
}

// toolRun executes the benign build tool — ordinary cat=exec telemetry
// with an image name no rule content matches.
func (p *Population) toolRun(a *Agent) {
	if _, err := a.H.Execute(p.toolImg, false); err != nil {
		p.refused(a)
		return
	}
	p.Stats.ToolRuns++
	p.mTool.Inc()
	p.breadcrumb(a, "users.tool.run "+p.toolImg.Name)
}

// maintain is the admin's maintenance round against the next fleet host
// in rotation: RDP login, patch copy, remote exec. This is deliberately
// the same telemetry triple the campaigns emit — the irreducible benign
// PsExec false positive D3/D5 price out — at a cadence every threshold
// rule stays silent on.
func (p *Population) maintain(a *Agent) {
	if a.H.Down {
		return
	}
	p.K.WithCause(sim.Cause{Span: a.Session, Vector: "user"}, func() {
		target := p.LAN.PeerAt(a.H.Name, a.peerIdx)
		a.peerIdx++
		if target == nil {
			return
		}
		const patchPath = `C:\Patches\kb-maint.exe`
		if err := p.LAN.RDPLogin(a.H, target.Name, a.user); err != nil {
			p.refused(a)
			return
		}
		p.Stats.RDPLogins++
		p.mRDP.Inc()
		if err := p.LAN.CopyToShare(a.H, target.Name, patchPath, p.patchRaw); err != nil {
			p.refused(a)
			return
		}
		if err := p.LAN.RemoteExec(a.H, target.Name, patchPath); err != nil {
			p.refused(a)
			return
		}
		p.Stats.Maintenances++
		p.mMaintain.Inc()
		p.breadcrumb(a, "users.host.maintain "+target.Name)
	})
}

func (p *Population) refused(a *Agent) {
	p.Stats.ActionErrors++
	p.mRefused.Inc()
}

package users

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// start is 00:00 UTC so work-hour boundaries land on whole simulated days.
var start = time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)

// smallWorld builds n share-open, internet-connected hosts on one LAN
// with the benign services registered, and attaches a population.
func smallWorld(t *testing.T, seed uint64, n int, mix Mix, muted bool) (*sim.Kernel, *Population) {
	t.Helper()
	k := sim.NewKernel(sim.WithSeed(seed), sim.WithStart(start), sim.WithTraceCapacity(1<<14))
	k.Trace().SetMuted(muted)
	in := netsim.NewInternet(k)
	lan := netsim.NewLAN(k, "corp", "10.80.0", in)
	hosts := make([]*host.Host, n)
	for i := range hosts {
		h := host.New(k, nameFor(i), host.WithShares(true), host.WithInternet(true))
		lan.Attach(h)
		hosts[i] = h
	}
	p, err := Attach(k, lan, in, hosts, Config{Mix: mix})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	return k, p
}

func nameFor(i int) string {
	return "WS-" + string(rune('A'+i/26)) + string(rune('A'+i%26))
}

func TestParseMix(t *testing.T) {
	for _, ok := range []string{"none", "office", "developer", "kiosk", "enterprise"} {
		if _, err := ParseMix(ok); err != nil {
			t.Errorf("ParseMix(%q): %v", ok, err)
		}
	}
	if _, err := ParseMix("frenetic"); err == nil {
		t.Error("ParseMix accepted junk")
	}
}

func TestEnterpriseMixAssignment(t *testing.T) {
	if MixEnterprise.ProfileFor(0) != Admin {
		t.Error("host 0 should be the admin")
	}
	counts := map[Profile]int{}
	for i := 0; i < 45; i++ {
		counts[MixEnterprise.ProfileFor(i)]++
	}
	if counts[Admin] != 1 {
		t.Errorf("admins = %d, want exactly 1", counts[Admin])
	}
	for _, p := range []Profile{Office, Developer, Kiosk} {
		if counts[p] == 0 {
			t.Errorf("enterprise mix of 45 hosts has no %s", p)
		}
	}
	if MixNone.ProfileFor(3) != "" {
		t.Error("MixNone assigned a profile")
	}
}

func TestAttachRejectsEmptyMix(t *testing.T) {
	k := sim.NewKernel(sim.WithSeed(1), sim.WithStart(start))
	if _, err := Attach(k, netsim.NewLAN(k, "l", "10.0.0", nil), nil, nil, Config{}); err == nil {
		t.Fatal("Attach accepted empty mix")
	}
	if _, err := Attach(k, netsim.NewLAN(k, "l2", "10.0.1", nil), nil, nil, Config{Mix: MixNone}); err == nil {
		t.Fatal("Attach accepted MixNone")
	}
}

// TestDeterministicStream is the §11 contract: same seed, same mix ⇒
// byte-identical trace export.
func TestDeterministicStream(t *testing.T) {
	run := func() ([]byte, Stats) {
		k, p := smallWorld(t, 7, 12, MixEnterprise, false)
		if err := k.RunFor(72 * time.Hour); err != nil {
			t.Fatalf("RunFor: %v", err)
		}
		var buf bytes.Buffer
		if err := k.Trace().WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes(), p.Stats
	}
	b1, s1 := run()
	b2, s2 := run()
	if !bytes.Equal(b1, b2) {
		t.Fatal("equal-seed runs exported different trace bytes")
	}
	if s1 != s2 {
		t.Fatalf("equal-seed stats diverged: %+v vs %+v", s1, s2)
	}
	if s1.Actions() == 0 {
		t.Fatal("population did nothing in 72h")
	}
}

// TestActionsEmitSubstrateTelemetry checks the layer speaks through the
// real simulator: documents land in the COW FS, share copies emit
// cat=spread, browsing emits cat=network, USB cycles emit cat=usb, and
// the admin round emits the RDP/psexec pair.
func TestActionsEmitSubstrateTelemetry(t *testing.T) {
	k, p := smallWorld(t, 3, 12, MixEnterprise, false)
	if err := k.RunFor(7 * 24 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	tr := k.Trace()
	if p.Stats.DocWrites == 0 || tr.Count(sim.CatUser) == 0 {
		t.Fatalf("no documents or no user breadcrumbs: %+v", p.Stats)
	}
	var doced bool
	for _, a := range p.Agents {
		if len(a.H.FS.Glob(".docx"))+len(a.H.FS.Glob(".xlsx"))+
			len(a.H.FS.Glob(".pdf"))+len(a.H.FS.Glob(".txt")) > 0 {
			doced = true
			break
		}
	}
	if !doced {
		t.Error("no agent materialized documents on its filesystem")
	}
	if p.Stats.ShareCopies > 0 && len(tr.Find("smb copy")) == 0 {
		t.Error("share copies produced no cat=spread smb telemetry")
	}
	if p.Stats.WebVisits > 0 && tr.Count(sim.CatNetwork) == 0 {
		t.Error("web visits produced no network telemetry")
	}
	if p.Stats.USBCycles > 0 && tr.Count(sim.CatUSB) == 0 {
		t.Error("usb cycles produced no usb telemetry")
	}
	if p.Stats.Maintenances == 0 {
		t.Fatal("admin never completed a maintenance round")
	}
	if len(tr.Find("rdp login")) == 0 || len(tr.Find("psexec")) == 0 {
		t.Error("maintenance rounds missing rdp/psexec telemetry")
	}
	if p.Stats.TasksCreated != 1 || len(tr.Find("task registered: inventory-scan")) == 0 {
		t.Error("admin inventory task missing")
	}
}

// TestSessionSpanAttribution: every substrate event an agent causes is
// stamped with that agent's session span, so provenance chains terminate
// at the benign users.session root.
func TestSessionSpanAttribution(t *testing.T) {
	k, p := smallWorld(t, 5, 6, MixOffice, false)
	if err := k.RunFor(48 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	sessions := map[string]struct{ span uint64 }{}
	for _, a := range p.Agents {
		sessions[a.H.Name] = struct{ span uint64 }{uint64(a.Session)}
	}
	checked := 0
	for _, r := range k.Trace().Records() {
		if r.Cat != sim.CatNetwork && r.Cat != sim.CatSpread && r.Cat != sim.CatUser {
			continue
		}
		s, ok := sessions[r.Actor]
		if !ok || r.Parent != 0 {
			continue
		}
		if uint64(r.Span) != s.span {
			t.Fatalf("record %q by %s carries span %d, want session %d", r.Message, r.Actor, r.Span, s.span)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no attributable records checked")
	}
}

// TestWorkHoursGate: office agents draw nothing off-shift, kiosks never
// stop.
func TestWorkHoursGate(t *testing.T) {
	k, p := smallWorld(t, 9, 4, MixOffice, false)
	// 00:00 → 07:30 is entirely off-shift for office workers (the 08:00
	// tick itself is the first in-shift one).
	if err := k.RunFor(7*time.Hour + 30*time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := p.Stats.Actions(); got != 0 {
		t.Fatalf("office agents acted %d times before 08:00", got)
	}
	if err := k.RunFor(4 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if p.Stats.Actions() == 0 {
		t.Fatal("office agents idle during work hours")
	}

	k2, p2 := smallWorld(t, 9, 4, MixKiosk, false)
	if err := k2.RunFor(6 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if p2.Stats.WebVisits == 0 {
		t.Fatal("kiosks idle overnight")
	}
}

// TestMutedFleetSkipsBreadcrumbs: muting retains counters (determinism)
// while eliding cat=user record formatting (fleet-benchmark fast path).
func TestMutedFleetSkipsBreadcrumbs(t *testing.T) {
	k, p := smallWorld(t, 11, 8, MixOffice, true)
	if err := k.RunFor(48 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if p.Stats.Actions() == 0 {
		t.Fatal("muted population did nothing")
	}
	// Category counters tick on every emission, muted or not (that is
	// the determinism guarantee), so the only cat=user counts allowed
	// here are the per-agent session-open spans — the per-action
	// breadcrumb Emits must have been skipped entirely.
	if got := k.Trace().Count(sim.CatUser); got != p.Stats.Agents {
		t.Fatalf("muted trace counted %d cat=user records, want %d session spans only", got, p.Stats.Agents)
	}
	if v := k.Metrics().Counter("users.doc.write").Value(); v == 0 {
		t.Fatal("users.* counters must accumulate while muted")
	}
	// Same seed unmuted: identical Stats, proving muting changes only
	// observation, never behaviour.
	k2, p2 := smallWorld(t, 11, 8, MixOffice, false)
	if err := k2.RunFor(48 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if p.Stats != p2.Stats {
		t.Fatalf("muting changed behaviour: %+v vs %+v", p.Stats, p2.Stats)
	}
}

// TestBreadcrumbTaxonomy: every cat=user message uses the documented
// users.<noun>.<verb> prefix.
func TestBreadcrumbTaxonomy(t *testing.T) {
	k, _ := smallWorld(t, 13, 10, MixEnterprise, false)
	if err := k.RunFor(5 * 24 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	for _, r := range k.Trace().Filter(sim.CatUser) {
		head := strings.SplitN(r.Message, " ", 2)[0]
		parts := strings.Split(head, ".")
		if len(parts) != 3 || parts[0] != "users" || parts[1] == "" || parts[2] == "" {
			t.Fatalf("breadcrumb %q violates users.<noun>.<verb> taxonomy", r.Message)
		}
	}
}

// TestDownHostGoesQuiet: a downed host's agent performs nothing.
func TestDownHostGoesQuiet(t *testing.T) {
	k, p := smallWorld(t, 17, 3, MixKiosk, false)
	for _, a := range p.Agents {
		a.H.Down = true
	}
	if err := k.RunFor(24 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if p.Stats.Actions() != 0 {
		t.Fatalf("downed hosts acted: %+v", p.Stats)
	}
}

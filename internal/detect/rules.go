package detect

import "time"

// CNIRulePack returns the built-in detections, translated from the
// published IRGC-CNI hunting rules (SNIPPETS.md: the Splunk, Elastic and
// Datadog variants of the CISA advisory content) into this engine's
// primitives. The telemetry names map onto the range's substrate events:
// IIS web-shell drops emit cat=exploit "webshell written", scheduled-task
// registration emits cat=exec "task registered" (the Event-4698 analog),
// service creation emits "service installed" (7045), RDP sessions emit
// cat=network "rdp login" (1149), and SMB remote execution emits
// cat=spread "psexec" — so each rule below is the simulated twin of its
// SIEM original.
func CNIRulePack() []Rule {
	return []Rule{
		{
			Name:  "webshell-write",
			Desc:  "web shell dropped into an IIS content directory (UpdateChecker.aspx pattern)",
			Scope: ScopeCampaign,
			Match: &Predicate{
				Cat:         "exploit",
				MsgContains: "webshell written",
			},
		},
		{
			Name:  "webshell-exec",
			Desc:  "IIS worker executing an .aspx payload as a process",
			Scope: ScopeCampaign,
			Match: &Predicate{
				Cat:  "exec",
				Tags: []TagMatch{{K: "image", Contains: ".aspx"}},
			},
		},
		{
			Name:  "schtask-temp-image",
			Desc:  "scheduled task registered with an image under a writable Temp path (randomized-name persistence)",
			Scope: ScopeCampaign,
			Match: &Predicate{
				Cat:         "exec",
				MsgContains: "task registered",
				Tags:        []TagMatch{{K: "image", Contains: `\Temp\`}},
			},
		},
		{
			Name:  "proxy-tool-exec",
			Desc:  "known tunnelling/proxy tool executed (plink, ngrok, glider, reverse socks)",
			Scope: ScopeCampaign,
			Match: &Predicate{
				Cat:  "exec",
				Tags: []TagMatch{{K: "image", Contains: "plink"}},
			},
		},
		{
			Name:  "vpn-login-external",
			Desc:  "VPN authentication from an external address with a privileged account",
			Scope: ScopeCampaign,
			Match: &Predicate{
				Cat:         "network",
				MsgContains: "vpn login",
			},
		},
		{
			Name:  "psexec-remote-exec",
			Desc:  "remote service execution over SMB (PSEXESVC pattern)",
			Scope: ScopeBehavioural,
			Match: &Predicate{
				Cat:         "spread",
				MsgContains: "psexec",
			},
			// One deployment sweep should read as one alert per source,
			// not one per target.
			Cooldown: time.Hour,
		},
		{
			Name:  "psexec-fanout",
			Desc:  "three or more remote executions from one source within six hours",
			Scope: ScopeBehavioural,
			Threshold: &Threshold{
				Of:       Predicate{Cat: "spread", MsgContains: "psexec"},
				Count:    3,
				Window:   6 * time.Hour,
				PerActor: true,
			},
		},
		{
			Name: "rdp-login-burst",
			Desc: "burst of outbound RDP logins from one host (Event-1149 chain)",
			// Technique-shaped, but among the modeled weapons only the
			// CNI campaign drives RDP at burst rates (D2: silent on
			// Shamoon), so it scores as campaign content.
			Scope: ScopeCampaign,
			Threshold: &Threshold{
				Of:       Predicate{Cat: "network", MsgContains: "rdp login"},
				Count:    3,
				Window:   48 * time.Hour,
				PerActor: true,
			},
		},
		{
			Name:  "beacon-periodic",
			Desc:  "six or more C2 check-ins from one host inside a day (proxy-tool beaconing)",
			Scope: ScopeCampaign,
			Threshold: &Threshold{
				Of:       Predicate{Cat: "c2", MsgContains: "checked in"},
				Count:    6,
				Window:   24 * time.Hour,
				PerActor: true,
			},
			Cooldown: 24 * time.Hour,
		},
		{
			Name:  "cni-kill-chain",
			Desc:  "web shell write, then scheduled-task persistence, then lateral psexec on the same host within 72 hours",
			Scope: ScopeCampaign,
			Sequence: &Sequence{
				Steps: []Predicate{
					{Cat: "exploit", MsgContains: "webshell written"},
					{Cat: "exec", MsgContains: "task registered", Tags: []TagMatch{{K: "image", Contains: `\Temp\`}}},
					{Cat: "spread", MsgContains: "psexec"},
				},
				Window:   72 * time.Hour,
				PerActor: true,
			},
		},
	}
}

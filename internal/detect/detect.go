// Package detect is the range's streaming detection engine: a small
// deterministic rule evaluator that watches the live trace stream as the
// kernel steps (or replays an exported JSONL stream offline) and fires
// alerts. The paper's campaigns ran for months before anyone noticed;
// this package exists so the reproduction can measure the quantity that
// matters to a defender — virtual time from first hop to first alert.
//
// Three rule primitives cover the SNIPPETS-derived hunting content:
// single-event matches (cat/actor/msg/tag predicates), threshold counts
// over sliding virtual-time windows, and ordered sequences. Rules are
// evaluated in pack order against every event, so for a fixed seed the
// alert stream is byte-identical at any `-parallel` worker count.
//
// In live mode each firing opens an alert span whose parent is the span
// of the triggering event, so alerts join the provenance forest
// (DESIGN.md §7): Chain() walks from an alert back through the infection
// chain that tripped it.
//
// Scoring is noise-aware: rules carry a Scope (behavioural vs
// campaign-artifact, the D2 transfer result), and the benign
// user-activity layer (internal/users) emits the same substrate
// telemetry attackers do, so D4 measures per-rule precision/recall on a
// populated fleet and D5 measures the pack's pure-noise false-positive
// floor. Because benign actions are span-attributed too, a false
// positive's chain terminates at a users.session root rather than an
// intrusion root — that root is the TP/FP oracle (DESIGN.md §11).
package detect

import (
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
	"repro/internal/runstats"
	"repro/internal/sim"
)

// TagMatch matches one event tag: key K must be present and, when set,
// its value must equal V exactly or contain Contains.
type TagMatch struct {
	K        string
	V        string
	Contains string
}

// Predicate is a single-event filter. Zero-valued fields are wildcards;
// set fields must all hold.
type Predicate struct {
	Cat         string // exact trace category
	Actor       string // exact actor
	ActorPrefix string // actor prefix (host-group targeting)
	MsgContains string // substring of the message
	Tags        []TagMatch
}

// Match reports whether the event satisfies the predicate.
func (p *Predicate) Match(e obs.Event) bool {
	if p.Cat != "" && e.Cat != p.Cat {
		return false
	}
	if p.Actor != "" && e.Actor != p.Actor {
		return false
	}
	if p.ActorPrefix != "" && !hasPrefix(e.Actor, p.ActorPrefix) {
		return false
	}
	if p.MsgContains != "" && !contains(e.Msg, p.MsgContains) {
		return false
	}
	for _, tm := range p.Tags {
		v, ok := e.Get(tm.K)
		if !ok {
			return false
		}
		if tm.V != "" && v != tm.V {
			return false
		}
		if tm.Contains != "" && !contains(v, tm.Contains) {
			return false
		}
	}
	return true
}

// contains/hasPrefix avoid importing strings into the per-event hot path
// signature — they compile to the same code.
func contains(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

// Threshold fires when Count events matching Of land within a sliding
// virtual-time Window — the "N psexec executions in six hours" shape.
// PerActor keeps an independent window per emitting actor. On firing,
// the window state resets so one burst yields one alert.
type Threshold struct {
	Of       Predicate
	Count    int
	Window   time.Duration
	PerActor bool
}

// Sequence fires when its steps match in order within Window of the
// first step — the kill-chain shape ("web shell write → scheduled-task
// create → psexec"). A step may be satisfied by any later matching
// event; non-matching events in between are ignored. When the window
// expires the partial match resets and the current event may restart the
// chain. PerActor tracks an independent chain per actor.
type Sequence struct {
	Steps    []Predicate
	Window   time.Duration
	PerActor bool
}

// Scope classifies what a rule keys on — measured, not asserted: D2
// replays every other weapon's trace through the pack and counts which
// rules transfer, and D4/D5 price each scope's false-positive surface
// against the benign user-activity layer.
type Scope string

const (
	// ScopeBehavioural rules key on attacker technique (remote service
	// execution, fan-out rates) and fire on any campaign using it — and,
	// symmetrically, on the benign admin who shares the technique (the
	// D5 noise floor).
	ScopeBehavioural Scope = "behavioural"
	// ScopeCampaign rules key on campaign-specific artifacts (file
	// names, paths, beacon cadence) — silent on other weapons in D2 and
	// on pure noise in D5, blind to a re-tooled attacker.
	ScopeCampaign Scope = "campaign"
)

// Rule is one detection: exactly one of Match, Threshold, Sequence must
// be set. Name must use the metric charset (lowercase words, digits,
// '.', '_', '-') because each rule owns a detect.rule.<name>.fire
// counter. Cooldown suppresses re-firing for the same key (actor, or
// globally for non-per-actor rules) within the given virtual interval.
// Scope is advisory metadata for scoring (the engine ignores it).
type Rule struct {
	Name      string
	Desc      string
	Scope     Scope
	Match     *Predicate
	Threshold *Threshold
	Sequence  *Sequence
	Cooldown  time.Duration
}

func (r *Rule) validate() error {
	set := 0
	if r.Match != nil {
		set++
	}
	if r.Threshold != nil {
		set++
		if r.Threshold.Count < 1 || r.Threshold.Window <= 0 {
			return fmt.Errorf("detect: rule %q: threshold needs count >= 1 and window > 0", r.Name)
		}
	}
	if r.Sequence != nil {
		set++
		if len(r.Sequence.Steps) < 2 || r.Sequence.Window <= 0 {
			return fmt.Errorf("detect: rule %q: sequence needs >= 2 steps and window > 0", r.Name)
		}
	}
	if set != 1 {
		return fmt.Errorf("detect: rule %q must set exactly one of Match/Threshold/Sequence, has %d", r.Name, set)
	}
	if r.Name == "" {
		return fmt.Errorf("detect: rule with empty name")
	}
	return nil
}

// Alert is one rule firing. Cause is the span of the triggering event
// (zero when it was unattributed); Span is the alert's own provenance
// episode, allocated only in live mode.
type Alert struct {
	Rule  string
	At    time.Time
	Seq   uint64 // trace sequence of the triggering event
	Actor string
	Msg   string // message of the triggering event
	Cause obs.Span
	Span  obs.Span
}

// Event converts the alert to its export form: cat "alert", the firing
// rule as a tag, and Parent carrying the triggering cause so offline
// alert streams keep the causal link even without a span of their own.
func (a Alert) Event() obs.Event {
	return obs.Event{
		At: a.At, Seq: a.Seq, Cat: string(sim.CatAlert), Actor: a.Actor,
		Msg: "alert: " + a.Rule, Span: a.Span, Parent: a.Cause,
		Tags: []obs.Tag{obs.T("rule", a.Rule)},
	}
}

// WriteAlertsJSONL exports alerts one JSON object per line, in firing
// order. Equal inputs produce identical bytes.
func WriteAlertsJSONL(w io.Writer, alerts []Alert) error {
	events := make([]obs.Event, len(alerts))
	for i, a := range alerts {
		events[i] = a.Event()
	}
	return obs.WriteJSONL(w, events)
}

// seqState is one in-flight sequence match.
type seqState struct {
	step    int
	startAt time.Time
}

// Engine evaluates a rule pack over an event stream. Create with New
// (offline replay) or Attach (live, subscribed to a kernel's trace).
// The engine is single-threaded, like the kernel that feeds it.
type Engine struct {
	k     *sim.Kernel // nil in offline mode
	rules []Rule

	alerts     []Alert
	seen       uint64
	suppressed uint64

	thState   []map[string][]time.Time
	sqState   []map[string]*seqState
	lastFire  []map[string]time.Time
	fireCount []int

	counters []*obs.Counter // live only, parallel to rules
	mTotal   *obs.Counter
	mSeen    *obs.Counter
}

// New builds an offline engine for Replay/Handle.
func New(rules []Rule) (*Engine, error) {
	en := &Engine{rules: rules}
	for i := range rules {
		if err := rules[i].validate(); err != nil {
			return nil, err
		}
	}
	n := len(rules)
	en.thState = make([]map[string][]time.Time, n)
	en.sqState = make([]map[string]*seqState, n)
	en.lastFire = make([]map[string]time.Time, n)
	en.fireCount = make([]int, n)
	for i := range rules {
		en.thState[i] = make(map[string][]time.Time)
		en.sqState[i] = make(map[string]*seqState)
		en.lastFire[i] = make(map[string]time.Time)
	}
	return en, nil
}

// Attach builds a live engine subscribed to the kernel's trace: every
// record the range emits flows through the rule pack as it happens, and
// each firing opens an alert span parented to the triggering event's
// span. Per-rule firing counters register as detect.rule.<name>.fire.
func Attach(k *sim.Kernel, rules []Rule) (*Engine, error) {
	en, err := New(rules)
	if err != nil {
		return nil, err
	}
	en.k = k
	en.counters = make([]*obs.Counter, len(rules))
	for i, r := range rules {
		en.counters[i] = k.Metrics().Counter("detect.rule." + r.Name + ".fire")
	}
	en.mTotal = k.Metrics().Counter("detect.alert.total")
	en.mSeen = k.Metrics().Counter("detect.event.seen")
	k.Trace().Subscribe(func(rec sim.Record) {
		en.Handle(rec.Event())
	})
	return en, nil
}

// Handle feeds one event through every rule in pack order. Alert events
// are ignored — the engine's own firings echo back through the live
// subscription and must not re-trigger rules.
func (en *Engine) Handle(e obs.Event) {
	if e.Cat == string(sim.CatAlert) {
		return
	}
	en.seen++
	if en.mSeen != nil {
		en.mSeen.Inc()
	}
	for i := range en.rules {
		en.eval(i, e)
	}
}

func (en *Engine) eval(i int, e obs.Event) {
	r := &en.rules[i]
	switch {
	case r.Match != nil:
		if r.Match.Match(e) {
			en.fire(i, e, e.Actor)
		}
	case r.Threshold != nil:
		th := r.Threshold
		if !th.Of.Match(e) {
			return
		}
		key := ""
		if th.PerActor {
			key = e.Actor
		}
		times := append(en.thState[i][key], e.At)
		// Evict observations that slid out of the window: the window is
		// the half-open interval (e.At - Window, e.At].
		keep := 0
		for keep < len(times) && e.At.Sub(times[keep]) >= th.Window {
			keep++
		}
		times = times[keep:]
		if len(times) >= th.Count {
			en.thState[i][key] = times[:0]
			en.fire(i, e, e.Actor)
			return
		}
		en.thState[i][key] = times
	case r.Sequence != nil:
		sq := r.Sequence
		key := ""
		if sq.PerActor {
			key = e.Actor
		}
		st := en.sqState[i][key]
		if st == nil {
			st = &seqState{}
			en.sqState[i][key] = st
		}
		if st.step > 0 && e.At.Sub(st.startAt) >= sq.Window {
			st.step = 0
		}
		if !sq.Steps[st.step].Match(e) {
			return
		}
		if st.step == 0 {
			st.startAt = e.At
		}
		st.step++
		if st.step == len(sq.Steps) {
			st.step = 0
			en.fire(i, e, e.Actor)
		}
	}
}

// fire records one rule firing (unless suppressed by cooldown) and, in
// live mode, opens the alert's provenance span as a child of the
// triggering event's episode.
func (en *Engine) fire(i int, e obs.Event, key string) {
	r := &en.rules[i]
	if r.Cooldown > 0 {
		if last, ok := en.lastFire[i][key]; ok && e.At.Sub(last) < r.Cooldown {
			en.suppressed++
			return
		}
		en.lastFire[i][key] = e.At
	}
	a := Alert{Rule: r.Name, At: e.At, Seq: e.Seq, Actor: e.Actor, Msg: e.Msg, Cause: e.Span}
	en.fireCount[i]++
	if en.k != nil {
		en.k.WithCause(sim.Cause{Span: e.Span, Vector: "detect"}, func() {
			a.Span = en.k.OpenSpan(sim.CatAlert, e.Actor, "alert: "+r.Name, "detect",
				obs.T("rule", r.Name))
		})
		en.counters[i].Inc()
		en.mTotal.Inc()
	}
	en.alerts = append(en.alerts, a)
}

// Alerts returns the firings so far, in order. The caller must not
// mutate the result.
func (en *Engine) Alerts() []Alert { return en.alerts }

// Seen reports how many (non-alert) events the engine evaluated.
func (en *Engine) Seen() uint64 { return en.seen }

// Suppressed reports how many firings cooldowns swallowed.
func (en *Engine) Suppressed() uint64 { return en.suppressed }

// Rules returns the engine's rule pack.
func (en *Engine) Rules() []Rule { return en.rules }

// FireCount returns how many times the named rule fired (0 for unknown
// rules — a rule that never fires and one that does not exist render the
// same way in a coverage table).
func (en *Engine) FireCount(name string) int {
	for i := range en.rules {
		if en.rules[i].Name == name {
			return en.fireCount[i]
		}
	}
	return 0
}

// Replay runs an exported event stream through a rule pack offline. The
// input must be in trace order (as WriteJSONL exports it); the result is
// the same alert list a live engine produced, minus the live-only alert
// span IDs. Replay is the offline "detect" wall-phase: when a runstats
// collector is live it gets the region's wall time (live engines run
// inline inside the kernel's "run" phase and are not separable).
func Replay(events []obs.Event, rules []Rule) ([]Alert, error) {
	defer runstats.Phase("detect")()
	en, err := New(rules)
	if err != nil {
		return nil, err
	}
	for _, e := range events {
		en.Handle(e)
	}
	return en.Alerts(), nil
}

package detect

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/sim"
)

var t0 = time.Date(2012, 4, 23, 6, 0, 0, 0, time.UTC)

func ev(at time.Time, seq uint64, cat, actor, msg string, tags ...obs.Tag) obs.Event {
	return obs.Event{At: at, Seq: seq, Cat: cat, Actor: actor, Msg: msg, Tags: tags}
}

func TestMatchRuleFires(t *testing.T) {
	rules := []Rule{{
		Name:  "webshell-write",
		Match: &Predicate{Cat: "exploit", MsgContains: "webshell written"},
	}}
	alerts, err := Replay([]obs.Event{
		ev(t0, 1, "exec", "IIS-01", "exec w3wp.exe (pid 1001)"),
		ev(t0.Add(time.Minute), 2, "exploit", "IIS-01", "webshell written: UpdateChecker.aspx"),
	}, rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Rule != "webshell-write" || alerts[0].Actor != "IIS-01" {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestPredicateTagMatch(t *testing.T) {
	p := Predicate{Cat: "exec", Tags: []TagMatch{{K: "image", Contains: ".aspx"}}}
	if !p.Match(ev(t0, 1, "exec", "h", "m", obs.T("image", "UpdateChecker.aspx"))) {
		t.Fatal("tag contains did not match")
	}
	if p.Match(ev(t0, 1, "exec", "h", "m", obs.T("image", "svchost.exe"))) {
		t.Fatal("matched wrong image")
	}
	if p.Match(ev(t0, 1, "exec", "h", "m")) {
		t.Fatal("matched event without the tag")
	}
	exact := Predicate{Tags: []TagMatch{{K: "user", V: "svc-backup"}}}
	if exact.Match(ev(t0, 1, "network", "h", "m", obs.T("user", "svc-backup2"))) {
		t.Fatal("exact tag value matched a superstring")
	}
}

func TestThresholdSlidingWindow(t *testing.T) {
	rules := []Rule{{
		Name: "psexec-fanout",
		Threshold: &Threshold{
			Of: Predicate{Cat: "spread", MsgContains: "psexec"}, Count: 3,
			Window: 6 * time.Hour, PerActor: true,
		},
	}}
	// Two hits, a long gap (evicting both), then three inside the window.
	events := []obs.Event{
		ev(t0, 1, "spread", "WS-01", "psexec \\\\WS-02 x"),
		ev(t0.Add(time.Hour), 2, "spread", "WS-01", "psexec \\\\WS-03 x"),
		ev(t0.Add(20*time.Hour), 3, "spread", "WS-01", "psexec \\\\WS-04 x"),
		ev(t0.Add(21*time.Hour), 4, "spread", "WS-01", "psexec \\\\WS-05 x"),
		// A different actor's hits must not count toward WS-01's window.
		ev(t0.Add(21*time.Hour+time.Minute), 5, "spread", "WS-09", "psexec \\\\WS-05 x"),
		ev(t0.Add(22*time.Hour), 6, "spread", "WS-01", "psexec \\\\WS-06 x"),
	}
	alerts, err := Replay(events, rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 {
		t.Fatalf("want exactly 1 alert, got %+v", alerts)
	}
	if !alerts[0].At.Equal(t0.Add(22 * time.Hour)) {
		t.Fatalf("fired at %v, want the third in-window hit", alerts[0].At)
	}
	// After firing, the window resets: two more hits stay silent.
	more := append(events,
		ev(t0.Add(23*time.Hour), 7, "spread", "WS-01", "psexec \\\\WS-07 x"),
		ev(t0.Add(24*time.Hour), 8, "spread", "WS-01", "psexec \\\\WS-08 x"),
	)
	alerts, _ = Replay(more, rules)
	if len(alerts) != 1 {
		t.Fatalf("window did not reset on fire: %+v", alerts)
	}
}

func TestSequenceOrderAndWindow(t *testing.T) {
	rules := []Rule{{
		Name: "kill-chain",
		Sequence: &Sequence{
			Steps: []Predicate{
				{Cat: "exploit", MsgContains: "webshell"},
				{Cat: "exec", MsgContains: "task registered"},
				{Cat: "spread", MsgContains: "psexec"},
			},
			Window: 72 * time.Hour, PerActor: true,
		},
	}}
	// Out-of-order steps never fire.
	alerts, err := Replay([]obs.Event{
		ev(t0, 1, "spread", "H", "psexec \\\\x y"),
		ev(t0.Add(time.Hour), 2, "exec", "H", "task registered: t"),
		ev(t0.Add(2*time.Hour), 3, "exploit", "H", "webshell written"),
	}, rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 0 {
		t.Fatalf("out-of-order sequence fired: %+v", alerts)
	}
	// In order, with noise interleaved, fires once at the final step.
	alerts, _ = Replay([]obs.Event{
		ev(t0, 1, "exploit", "H", "webshell written"),
		ev(t0.Add(time.Minute), 2, "exec", "H", "exec benign.exe (pid 1)"),
		ev(t0.Add(time.Hour), 3, "exec", "H", "task registered: t"),
		ev(t0.Add(2*time.Hour), 4, "spread", "H", "psexec \\\\x y"),
	}, rules)
	if len(alerts) != 1 || alerts[0].Rule != "kill-chain" {
		t.Fatalf("sequence did not fire: %+v", alerts)
	}
	// The window gates completion: a 100 h gap between first and last
	// step resets the chain.
	alerts, _ = Replay([]obs.Event{
		ev(t0, 1, "exploit", "H", "webshell written"),
		ev(t0.Add(time.Hour), 2, "exec", "H", "task registered: t"),
		ev(t0.Add(100*time.Hour), 3, "spread", "H", "psexec \\\\x y"),
	}, rules)
	if len(alerts) != 0 {
		t.Fatalf("expired sequence fired: %+v", alerts)
	}
}

func TestCooldownSuppresses(t *testing.T) {
	rules := []Rule{{
		Name:     "psexec-remote-exec",
		Match:    &Predicate{Cat: "spread", MsgContains: "psexec"},
		Cooldown: time.Hour,
	}}
	en, err := New(rules)
	if err != nil {
		t.Fatal(err)
	}
	en.Handle(ev(t0, 1, "spread", "H", "psexec \\\\a x"))
	en.Handle(ev(t0.Add(time.Minute), 2, "spread", "H", "psexec \\\\b x"))
	en.Handle(ev(t0.Add(2*time.Hour), 3, "spread", "H", "psexec \\\\c x"))
	if len(en.Alerts()) != 2 {
		t.Fatalf("cooldown math wrong: %+v", en.Alerts())
	}
	if en.Suppressed() != 1 {
		t.Fatalf("suppressed = %d, want 1", en.Suppressed())
	}
}

func TestRuleValidation(t *testing.T) {
	if _, err := New([]Rule{{Name: "none"}}); err == nil {
		t.Fatal("rule with no primitive accepted")
	}
	if _, err := New([]Rule{{
		Name:  "both",
		Match: &Predicate{Cat: "x"}, Threshold: &Threshold{Of: Predicate{}, Count: 1, Window: time.Hour},
	}}); err == nil {
		t.Fatal("rule with two primitives accepted")
	}
	if _, err := New([]Rule{{Name: "badseq", Sequence: &Sequence{Steps: []Predicate{{Cat: "x"}}, Window: time.Hour}}}); err == nil {
		t.Fatal("single-step sequence accepted")
	}
}

// TestLiveAlertSpansJoinProvenance drives a kernel with the engine
// attached and checks every alert's span validates as a child of the
// event that tripped the rule.
func TestLiveAlertSpansJoinProvenance(t *testing.T) {
	k := sim.NewKernel(sim.WithSeed(7))
	en, err := Attach(k, []Rule{{
		Name:  "infect-any",
		Match: &Predicate{Cat: "infect"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(time.Hour, "compromise", func() {
		sp := k.OpenSpan(sim.CatInfect, "WS-01", "implant installed", "usb-lnk")
		k.WithCause(sim.Cause{Span: sp}, func() {
			k.Trace().Emit(k.Now(), sim.CatExec, "WS-01", "exec payload.exe (pid 7)")
		})
	})
	k.Drain(100)

	alerts := en.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v", alerts)
	}
	a := alerts[0]
	if a.Span == 0 || a.Cause == 0 {
		t.Fatalf("live alert missing spans: %+v", a)
	}
	f := provenance.Build(k.Trace().Events())
	if issues := f.Validate(); len(issues) != 0 {
		t.Fatalf("forest invalid: %v", issues)
	}
	n := f.Node(provenance.NodeID{Span: a.Span})
	if n == nil {
		t.Fatal("alert span missing from forest")
	}
	if n.Parent != a.Cause || n.Up == nil || n.Up.ID.Span != a.Cause {
		t.Fatalf("alert span not parented to its cause: node=%+v", n)
	}
	if n.Vector != "detect" {
		t.Fatalf("alert edge vector = %q, want detect", n.Vector)
	}
	if got := k.Metrics().Counter("detect.rule.infect-any.fire").Value(); got != 1 {
		t.Fatalf("per-rule counter = %g", got)
	}
}

// TestReplayMatchesLive exports the live trace and replays it offline:
// the two alert streams must agree on everything but the live-only span.
func TestReplayMatchesLive(t *testing.T) {
	run := func() (*sim.Kernel, *Engine) {
		k := sim.NewKernel(sim.WithSeed(3))
		en, err := Attach(k, CNIRulePack())
		if err != nil {
			t.Fatal(err)
		}
		k.Schedule(time.Hour, "drop", func() {
			sp := k.OpenSpan(sim.CatExploit, "IIS-01", "webshell written: UpdateChecker.aspx", "web-upload")
			k.WithCause(sim.Cause{Span: sp}, func() {
				k.Trace().Emit(k.Now(), sim.CatExec, "IIS-01", "task registered: Updater07",
					obs.T("task", "Updater07"), obs.T("image", `C:\Windows\Temp\up.exe`))
				for i := 0; i < 4; i++ {
					k.Trace().Emit(k.Now().Add(time.Duration(i)*time.Minute), sim.CatSpread, "IIS-01",
						"psexec \\\\WS-0x path", obs.T("target", "WS-0x"))
				}
			})
		})
		k.Drain(100)
		return k, en
	}
	k, live := run()

	var buf bytes.Buffer
	if err := k.Trace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := Replay(parsed, CNIRulePack())
	if err != nil {
		t.Fatal(err)
	}
	if len(offline) != len(live.Alerts()) {
		t.Fatalf("offline %d alerts, live %d", len(offline), len(live.Alerts()))
	}
	for i, la := range live.Alerts() {
		oa := offline[i]
		oa.Span = la.Span // live-only field
		if oa != la {
			t.Fatalf("alert %d: offline %+v live %+v", i, oa, la)
		}
	}
}

func TestWriteAlertsJSONLDeterministic(t *testing.T) {
	alerts := []Alert{
		{Rule: "r1", At: t0, Seq: 4, Actor: "H", Msg: "m", Cause: 2, Span: 9},
		{Rule: "r2", At: t0.Add(time.Hour), Seq: 7, Actor: "H2", Msg: "m2"},
	}
	var a, b bytes.Buffer
	if err := WriteAlertsJSONL(&a, alerts); err != nil {
		t.Fatal(err)
	}
	if err := WriteAlertsJSONL(&b, alerts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("alert export not deterministic")
	}
	parsed, err := obs.ParseJSONL(&a)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 || parsed[0].Msg != "alert: r1" || parsed[0].Parent != 2 {
		t.Fatalf("alert export shape: %+v", parsed)
	}
}

func TestCNIRulePackValid(t *testing.T) {
	if _, err := New(CNIRulePack()); err != nil {
		t.Fatal(err)
	}
	if len(CNIRulePack()) < 8 {
		t.Fatalf("rule pack has %d rules, want >= 8", len(CNIRulePack()))
	}
}

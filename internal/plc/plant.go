package plc

import (
	"time"

	"repro/internal/sim"
)

// Plant is a complete cascade installation: PLC + bus + drives +
// centrifuges, ticking on the kernel, with an operator HMI and safety
// system watching through a comm library.
type Plant struct {
	K        *sim.Kernel
	PLC      *PLC
	Operator *OperatorView
	Safety   *SafetySystem

	stopTick func()
}

// PlantConfig describes a cascade to build.
type PlantConfig struct {
	Name string
	// CPType defaults to the Profibus CP model Stuxnet requires.
	CPType string
	// DriveVendors gives one entry per drive; defaults to the paper's
	// Finnish/Iranian pair repeated.
	DriveVendors []string
	// MachinesPerDrive defaults to 8.
	MachinesPerDrive int
	// TickEvery defaults to one simulated minute.
	TickEvery time.Duration
}

// NewPlant builds a plant running at NormalHz and starts its scan/physics
// loop on the kernel. Callers own Stop.
func NewPlant(k *sim.Kernel, cfg PlantConfig) *Plant {
	if cfg.CPType == "" {
		cfg.CPType = DefaultCPType
	}
	if len(cfg.DriveVendors) == 0 {
		cfg.DriveVendors = []string{VendorFinnish, VendorIranian, VendorFinnish, VendorIranian}
	}
	if cfg.MachinesPerDrive <= 0 {
		cfg.MachinesPerDrive = 8
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = time.Minute
	}
	bus := &Profibus{CPType: cfg.CPType}
	machineID := 0
	for i, vendor := range cfg.DriveVendors {
		d := &FrequencyConverter{Index: i, Vendor: vendor, CommandHz: NormalHz}
		for m := 0; m < cfg.MachinesPerDrive; m++ {
			machineID++
			d.machines = append(d.machines, &Centrifuge{ID: machineID, RotorHz: NormalHz})
		}
		bus.drives = append(bus.drives, d)
	}
	p := NewPLC(cfg.Name, bus)
	lib := NewDirectLib(p)
	plant := &Plant{
		K:        k,
		PLC:      p,
		Operator: NewOperatorView(lib),
		Safety:   NewSafetySystem(lib),
	}
	plant.stopTick = k.Every(cfg.TickEvery, "plant:"+cfg.Name, func() {
		p.ScanCycle()
		plant.Operator.Poll(len(bus.drives))
		plant.Safety.Check(len(bus.drives))
	})
	return plant
}

// RebindMonitors points the HMI and safety system at a (possibly
// trojanized) comm library — they load the same DLL Step 7 does.
func (pl *Plant) RebindMonitors(lib CommLib) {
	pl.Operator = NewOperatorView(lib)
	pl.Safety = NewSafetySystem(lib)
}

// Stop halts the plant tick loop.
func (pl *Plant) Stop() {
	if pl.stopTick != nil {
		pl.stopTick()
		pl.stopTick = nil
	}
}

// Centrifuges returns all machines across all drives.
func (pl *Plant) Centrifuges() []*Centrifuge {
	var out []*Centrifuge
	for _, d := range pl.PLC.Bus().Drives() {
		out = append(out, d.Machines()...)
	}
	return out
}

// DestroyedCount reports how many machines have been destroyed.
func (pl *Plant) DestroyedCount() int {
	n := 0
	for _, c := range pl.Centrifuges() {
		if c.Destroyed {
			n++
		}
	}
	return n
}

package plc

import (
	"fmt"
)

// CommLib is the interface of the s7otbxdx.dll communication library: the
// only path by which Step 7, the operator HMI and the digital safety
// system reach the PLC. Replacing the installed CommLib is therefore a
// complete man-in-the-middle on the engineering and monitoring plane —
// which is exactly the trick Stuxnet plays (paper, Section II-B).
type CommLib interface {
	// ReadBlock fetches a code block from the PLC.
	ReadBlock(id int) ([]byte, error)
	// WriteBlock stores a code block on the PLC.
	WriteBlock(id int, code []byte) error
	// ListBlocks enumerates stored block IDs.
	ListBlocks() []int
	// ReadFrequency reports the observed frequency on a drive.
	ReadFrequency(driveIdx int) (float64, error)
	// WriteFrequency commands a drive frequency.
	WriteFrequency(driveIdx int, hz float64) error
	// BusInfo describes the communications processor and drive vendors,
	// the fingerprint Stuxnet matches before arming its payload.
	BusInfo() BusInfo
}

// BusInfo is the hardware fingerprint visible through the comm library.
type BusInfo struct {
	CPType  string
	Vendors []string
}

// DirectLib is the genuine s7otbxdx.dll: straight pass-through to the PLC.
type DirectLib struct {
	plc *PLC
}

var _ CommLib = (*DirectLib)(nil)

// NewDirectLib returns the genuine comm library for p.
func NewDirectLib(p *PLC) *DirectLib { return &DirectLib{plc: p} }

// ReadBlock implements CommLib.
func (l *DirectLib) ReadBlock(id int) ([]byte, error) {
	b, ok := l.plc.readBlock(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoBlock, id)
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// WriteBlock implements CommLib.
func (l *DirectLib) WriteBlock(id int, code []byte) error {
	l.plc.writeBlock(id, code)
	return nil
}

// ListBlocks implements CommLib.
func (l *DirectLib) ListBlocks() []int { return l.plc.blockIDs() }

// ReadFrequency implements CommLib.
func (l *DirectLib) ReadFrequency(driveIdx int) (float64, error) {
	if driveIdx < 0 || driveIdx >= len(l.plc.bus.drives) {
		return 0, fmt.Errorf("plc: no drive %d", driveIdx)
	}
	return l.plc.bus.drives[driveIdx].ActualHz(), nil
}

// WriteFrequency implements CommLib.
func (l *DirectLib) WriteFrequency(driveIdx int, hz float64) error {
	return l.plc.SetDriveCommand(driveIdx, hz)
}

// BusInfo implements CommLib.
func (l *DirectLib) BusInfo() BusInfo {
	info := BusInfo{CPType: l.plc.bus.CPType}
	for _, d := range l.plc.bus.drives {
		info.Vendors = append(info.Vendors, d.Vendor)
	}
	return info
}

// PLC exposes the underlying controller — used by attack code that has
// already replaced the library and by tests; the legitimate applications
// never touch it.
func (l *DirectLib) PLC() *PLC { return l.plc }

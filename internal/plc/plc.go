// Package plc models the industrial-control substrate of the Stuxnet
// attack: a PLC with a code-block store, a Profibus segment with frequency
// converter drives spinning centrifuges, the Step 7 engineering software
// that talks to the PLC *only* through a comm library (the s7otbxdx.dll
// indirection Stuxnet trojanized), an operator HMI, and a digital safety
// system. Centrifuge physics are a simple rotor-stress model calibrated so
// the paper's 1410→2→1064 Hz attack profile destroys machines while normal
// 807–1210 Hz operation never does.
package plc

import (
	"errors"
	"fmt"
	"sort"
)

// Frequency band constants from the paper (Section II-C).
const (
	// NormalHz is the steady enrichment operating frequency.
	NormalHz = 1064
	// TriggerMinHz..TriggerMaxHz is the band Stuxnet checks before
	// firing its payload.
	TriggerMinHz = 807
	TriggerMaxHz = 1210
	// AttackHighHz, AttackLowHz are the destructive excursion targets.
	AttackHighHz = 1410
	AttackLowHz  = 2
)

// Physics tuning.
const (
	// rotorAlpha is the per-tick first-order response of rotor speed to
	// the commanded frequency (ticks are one simulated minute).
	rotorAlpha = 0.5
	// overspeedLimitHz is where mechanical stress begins accumulating.
	overspeedLimitHz = 1250
	// overspeedStressRate converts Hz-above-limit to stress per minute,
	// tuned so a ~30-minute 1410 Hz excursion is fatal while brief
	// overshoots are survivable.
	overspeedStressRate = 0.03
	// decelStressThresholdHz is the commanded-step size beyond which a
	// transition shocks the rotor (resonance crossings).
	decelStressThresholdHz = 500
	// decelStressPerEvent is the stress added by one violent transition.
	decelStressPerEvent = 18
	// DestructionStress is the rotor fatigue limit.
	DestructionStress = 100
)

// Centrifuge is one IR-1-style machine.
type Centrifuge struct {
	ID        int
	RotorHz   float64
	Stress    float64
	Destroyed bool
}

// step advances the rotor one tick toward commanded frequency and
// accumulates stress.
func (c *Centrifuge) step(commandHz float64) {
	if c.Destroyed {
		c.RotorHz = 0
		return
	}
	prev := c.RotorHz
	c.RotorHz += (commandHz - c.RotorHz) * rotorAlpha
	if c.RotorHz > overspeedLimitHz {
		c.Stress += (c.RotorHz - overspeedLimitHz) * overspeedStressRate
	}
	if delta := prev - c.RotorHz; delta > decelStressThresholdHz || -delta > decelStressThresholdHz {
		c.Stress += decelStressPerEvent
	}
	if c.Stress >= DestructionStress {
		c.Destroyed = true
		c.RotorHz = 0
	}
}

// FrequencyConverter is a variable-frequency drive on the Profibus. The
// Vendor matters: Stuxnet fires only against the two vendors the paper
// names (one Finnish, one Iranian).
type FrequencyConverter struct {
	Index     int
	Vendor    string
	CommandHz float64
	machines  []*Centrifuge
}

// Vendors matching the paper's description.
const (
	VendorFinnish = "Vacon"
	VendorIranian = "Fararo Paya"
)

// ActualHz returns the mean rotor frequency of attached machines (what a
// sensor on the drive reports).
func (d *FrequencyConverter) ActualHz() float64 {
	if len(d.machines) == 0 {
		return d.CommandHz
	}
	var sum float64
	for _, m := range d.machines {
		sum += m.RotorHz
	}
	return sum / float64(len(d.machines))
}

// Machines returns the attached centrifuges.
func (d *FrequencyConverter) Machines() []*Centrifuge { return d.machines }

// Profibus is the field bus linking the PLC to drives.
type Profibus struct {
	// CPType is the communications-processor model; Stuxnet requires a
	// Profibus CP (paper, Section II-C).
	CPType string
	drives []*FrequencyConverter
}

// DefaultCPType is the Profibus communications processor model string.
const DefaultCPType = "CP 342-5 PROFIBUS"

// Drives returns the attached drives.
func (b *Profibus) Drives() []*FrequencyConverter { return b.drives }

// PLC is the programmable logic controller: a block store plus a set of
// named scan-cycle routines (the behavioural meaning of installed blocks).
type PLC struct {
	Name     string
	bus      *Profibus
	blocks   map[int][]byte
	routines map[string]Routine
	order    []string
}

// Routine is logic executed every PLC scan cycle.
type Routine func(p *PLC)

// NewPLC creates a PLC attached to the bus.
func NewPLC(name string, bus *Profibus) *PLC {
	return &PLC{
		Name:     name,
		bus:      bus,
		blocks:   make(map[int][]byte),
		routines: make(map[string]Routine),
	}
}

// Bus returns the attached Profibus.
func (p *PLC) Bus() *Profibus { return p.bus }

// writeBlock stores a code block (reached via a CommLib).
func (p *PLC) writeBlock(id int, code []byte) {
	cp := make([]byte, len(code))
	copy(cp, code)
	p.blocks[id] = cp
}

// readBlock returns a stored block.
func (p *PLC) readBlock(id int) ([]byte, bool) {
	b, ok := p.blocks[id]
	return b, ok
}

// blockIDs returns sorted stored block IDs.
func (p *PLC) blockIDs() []int {
	out := make([]int, 0, len(p.blocks))
	for id := range p.blocks {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// InstallRoutine binds scan-cycle logic under a name (idempotent replace).
func (p *PLC) InstallRoutine(name string, r Routine) {
	if _, ok := p.routines[name]; !ok {
		p.order = append(p.order, name)
	}
	p.routines[name] = r
}

// RemoveRoutine unbinds a routine.
func (p *PLC) RemoveRoutine(name string) {
	if _, ok := p.routines[name]; !ok {
		return
	}
	delete(p.routines, name)
	for i, n := range p.order {
		if n == name {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
}

// ScanCycle runs one PLC cycle: routines fire, then drives push their
// commands into the attached machines.
func (p *PLC) ScanCycle() {
	for _, name := range p.order {
		p.routines[name](p)
	}
	for _, d := range p.bus.drives {
		for _, m := range d.machines {
			m.step(d.CommandHz)
		}
	}
}

// SetDriveCommand sets the commanded frequency on drive idx.
func (p *PLC) SetDriveCommand(idx int, hz float64) error {
	if idx < 0 || idx >= len(p.bus.drives) {
		return fmt.Errorf("plc: no drive %d", idx)
	}
	p.bus.drives[idx].CommandHz = hz
	return nil
}

// DriveCommand returns the commanded frequency on drive idx.
func (p *PLC) DriveCommand(idx int) (float64, error) {
	if idx < 0 || idx >= len(p.bus.drives) {
		return 0, fmt.Errorf("plc: no drive %d", idx)
	}
	return p.bus.drives[idx].CommandHz, nil
}

// ErrNoBlock is returned when a requested block does not exist.
var ErrNoBlock = errors.New("plc: no such block")

package plc

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/sim"
)

func testKernel() *sim.Kernel { return sim.NewKernel(sim.WithSeed(5)) }

func smallPlant(k *sim.Kernel) *Plant {
	return NewPlant(k, PlantConfig{
		Name:             "natanz-a26",
		DriveVendors:     []string{VendorFinnish, VendorIranian},
		MachinesPerDrive: 4,
	})
}

func TestPlantRunsSteadyAtNormalHz(t *testing.T) {
	k := testKernel()
	p := smallPlant(k)
	defer p.Stop()
	if err := k.RunFor(6 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if p.DestroyedCount() != 0 {
		t.Fatalf("destroyed = %d under normal operation", p.DestroyedCount())
	}
	for _, c := range p.Centrifuges() {
		if math.Abs(c.RotorHz-NormalHz) > 1 {
			t.Fatalf("rotor %d at %.1f Hz, want ~%d", c.ID, c.RotorHz, NormalHz)
		}
		if c.Stress != 0 {
			t.Fatalf("rotor %d accumulated stress %.1f under normal operation", c.ID, c.Stress)
		}
	}
	if !p.Operator.AllNormal() {
		t.Fatalf("operator view abnormal: %v", p.Operator.Readings)
	}
	if p.Safety.Tripped {
		t.Fatal("safety system tripped under normal operation")
	}
}

func TestNormalBandSweepNeverDestroys(t *testing.T) {
	// Any steady frequency inside the paper's 807-1210 Hz band is safe.
	for _, hz := range []float64{TriggerMinHz, 900, 1000, NormalHz, TriggerMaxHz} {
		k := testKernel()
		p := smallPlant(k)
		for i := range p.PLC.Bus().Drives() {
			p.PLC.SetDriveCommand(i, hz)
		}
		k.RunFor(24 * time.Hour)
		p.Stop()
		if n := p.DestroyedCount(); n != 0 {
			t.Fatalf("steady %.0f Hz destroyed %d machines", hz, n)
		}
	}
}

func TestAttackProfileDestroys(t *testing.T) {
	// The paper's 1410 -> 2 -> 1064 Hz excursion must destroy machines
	// when the safety system is blind (here: monitors removed).
	k := testKernel()
	p := smallPlant(k)
	p.Safety.Tripped = true // pretend already blinded; Check() is a no-op once tripped... use fresh check below
	defer p.Stop()

	// Drive the profile directly through the PLC.
	lib := NewDirectLib(p.PLC)
	for i := 0; i < 2; i++ {
		lib.WriteFrequency(i, AttackHighHz)
	}
	k.RunFor(30 * time.Minute)
	for i := 0; i < 2; i++ {
		lib.WriteFrequency(i, AttackLowHz)
	}
	k.RunFor(10 * time.Minute)
	for i := 0; i < 2; i++ {
		lib.WriteFrequency(i, NormalHz)
	}
	k.RunFor(30 * time.Minute)

	if n := p.DestroyedCount(); n == 0 {
		t.Fatal("attack profile destroyed nothing")
	}
}

func TestSafetySystemTripsOnRealReadings(t *testing.T) {
	// Without the rootkit replay, the protection system sees the
	// overspeed and shuts the cascade down before destruction.
	k := testKernel()
	p := smallPlant(k)
	defer p.Stop()
	lib := NewDirectLib(p.PLC)
	for i := 0; i < 2; i++ {
		lib.WriteFrequency(i, AttackHighHz)
	}
	k.RunFor(2 * time.Hour)
	if !p.Safety.Tripped {
		t.Fatal("safety system never tripped on overspeed")
	}
	if n := p.DestroyedCount(); n != 0 {
		t.Fatalf("safety trip too late: %d destroyed", n)
	}
	// After the trip, drives are commanded to zero.
	for i, d := range p.PLC.Bus().Drives() {
		if d.CommandHz != 0 {
			t.Fatalf("drive %d command = %.0f after trip, want 0", i, d.CommandHz)
		}
	}
}

func TestCentrifugeStepInertia(t *testing.T) {
	c := &Centrifuge{RotorHz: 0}
	c.step(100)
	if c.RotorHz <= 0 || c.RotorHz >= 100 {
		t.Fatalf("rotor = %.1f, want between 0 and 100", c.RotorHz)
	}
	prev := c.RotorHz
	c.step(100)
	if c.RotorHz <= prev {
		t.Fatal("rotor not converging")
	}
}

func TestDestroyedCentrifugeStaysDown(t *testing.T) {
	c := &Centrifuge{RotorHz: NormalHz, Stress: DestructionStress}
	c.step(NormalHz)
	if !c.Destroyed || c.RotorHz != 0 {
		t.Fatalf("centrifuge = %+v", c)
	}
	c.step(NormalHz)
	if c.RotorHz != 0 {
		t.Fatal("destroyed centrifuge spun up again")
	}
}

func TestDirectLibBlockOps(t *testing.T) {
	bus := &Profibus{CPType: DefaultCPType}
	p := NewPLC("test", bus)
	lib := NewDirectLib(p)
	if err := lib.WriteBlock(890, []byte("DB890")); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	b, err := lib.ReadBlock(890)
	if err != nil || string(b) != "DB890" {
		t.Fatalf("ReadBlock: %v %q", err, b)
	}
	if _, err := lib.ReadBlock(999); !errors.Is(err, ErrNoBlock) {
		t.Fatalf("err = %v, want ErrNoBlock", err)
	}
	lib.WriteBlock(1, []byte("OB1"))
	ids := lib.ListBlocks()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 890 {
		t.Fatalf("ListBlocks = %v", ids)
	}
}

func TestBusInfoFingerprint(t *testing.T) {
	k := testKernel()
	p := smallPlant(k)
	defer p.Stop()
	lib := NewDirectLib(p.PLC)
	info := lib.BusInfo()
	if info.CPType != DefaultCPType {
		t.Fatalf("CPType = %q", info.CPType)
	}
	if len(info.Vendors) != 2 || info.Vendors[0] != VendorFinnish || info.Vendors[1] != VendorIranian {
		t.Fatalf("Vendors = %v", info.Vendors)
	}
}

func TestRoutineInstallRemoveOrder(t *testing.T) {
	bus := &Profibus{CPType: DefaultCPType}
	p := NewPLC("t", bus)
	var calls []string
	p.InstallRoutine("a", func(*PLC) { calls = append(calls, "a") })
	p.InstallRoutine("b", func(*PLC) { calls = append(calls, "b") })
	p.ScanCycle()
	if len(calls) != 2 || calls[0] != "a" {
		t.Fatalf("calls = %v", calls)
	}
	p.RemoveRoutine("a")
	calls = nil
	p.ScanCycle()
	if len(calls) != 1 || calls[0] != "b" {
		t.Fatalf("after remove: %v", calls)
	}
	p.RemoveRoutine("ghost") // no-op
	// Replacing keeps order.
	p.InstallRoutine("b", func(*PLC) { calls = append(calls, "b2") })
	calls = nil
	p.ScanCycle()
	if len(calls) != 1 || calls[0] != "b2" {
		t.Fatalf("after replace: %v", calls)
	}
}

func TestStep7OpenProjectHooks(t *testing.T) {
	k := testKernel()
	h := host.New(k, "ENG-STATION")
	bus := &Profibus{CPType: DefaultCPType}
	p := NewPLC("plc", bus)
	s7 := NewStep7(h, `C:\Program Files\Siemens\Step7`, p)

	if !h.FS.Exists(s7.DLLPath()) {
		t.Fatal("genuine DLL not on disk")
	}
	if err := NewProject(h, `C:\Projects\cascade`); err != nil {
		t.Fatalf("NewProject: %v", err)
	}
	var hooked []string
	s7.OnProjectOpen(func(dir string) { hooked = append(hooked, dir) })
	if err := s7.OpenProject(`C:\Projects\cascade`); err != nil {
		t.Fatalf("OpenProject: %v", err)
	}
	if len(hooked) != 1 || hooked[0] != `C:\Projects\cascade` {
		t.Fatalf("hooks = %v", hooked)
	}
	if err := s7.OpenProject(`C:\Projects\missing`); !errors.Is(err, ErrNoProject) {
		t.Fatalf("err = %v, want ErrNoProject", err)
	}
	if got := s7.OpenedProjects(); len(got) != 1 {
		t.Fatalf("OpenedProjects = %v", got)
	}
}

func TestStep7DownloadUpload(t *testing.T) {
	k := testKernel()
	h := host.New(k, "ENG")
	bus := &Profibus{CPType: DefaultCPType}
	p := NewPLC("plc", bus)
	s7 := NewStep7(h, `C:\Step7`, p)
	if err := s7.DownloadBlock(35, []byte("FC35 logic")); err != nil {
		t.Fatalf("DownloadBlock: %v", err)
	}
	b, err := s7.UploadBlock(35)
	if err != nil || string(b) != "FC35 logic" {
		t.Fatalf("UploadBlock: %v %q", err, b)
	}
	if ids := s7.ListBlocks(); len(ids) != 1 || ids[0] != 35 {
		t.Fatalf("ListBlocks = %v", ids)
	}
}

func TestOperatorViewAllNormal(t *testing.T) {
	k := testKernel()
	p := smallPlant(k)
	defer p.Stop()
	k.RunFor(10 * time.Minute)
	if len(p.Operator.Readings) != 2 {
		t.Fatalf("readings = %v", p.Operator.Readings)
	}
	if !p.Operator.AllNormal() {
		t.Fatalf("AllNormal false for %v", p.Operator.Readings)
	}
	v := NewOperatorView(NewDirectLib(p.PLC))
	if v.AllNormal() {
		t.Fatal("AllNormal true with no readings")
	}
}

func TestRebindMonitors(t *testing.T) {
	k := testKernel()
	p := smallPlant(k)
	defer p.Stop()
	lib := NewDirectLib(p.PLC)
	p.RebindMonitors(lib)
	k.RunFor(5 * time.Minute)
	if len(p.Operator.Readings) == 0 {
		t.Fatal("rebound operator never polled")
	}
}

func TestProjectInfectedDetection(t *testing.T) {
	k := testKernel()
	h := host.New(k, "ENG")
	NewProject(h, `C:\Projects\clean`)
	if ProjectInfected(h, `C:\Projects\clean`) {
		t.Fatal("clean project reported infected")
	}
	h.FS.Write(`C:\Projects\clean\xutils\listen.xr`, []byte("inj"), host.AttrHidden, k.Now())
	if !ProjectInfected(h, `C:\Projects\clean`) {
		t.Fatal("infected project not detected")
	}
}

package plc

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/host"
	"repro/internal/sim"
)

// CommLibDLL is the comm library's file name inside a Step 7 install.
const CommLibDLL = "s7otbxdx.dll"

// CommLibBackup is the name Stuxnet renames the genuine library to.
const CommLibBackup = "s7otbxsx.dll"

// Step7 is the engineering application installed on a Windows host. All
// PLC access flows through its comm library.
type Step7 struct {
	Host       *host.Host
	InstallDir string
	lib        CommLib
	// openHooks fire whenever a project is opened — the API-hook point
	// Stuxnet uses to find and infect project folders.
	openHooks []func(projectDir string)
	// openedProjects records project folders in open order.
	openedProjects []string
}

// NewStep7 installs Step 7 on h with the genuine comm library for the
// target PLC.
func NewStep7(h *host.Host, installDir string, target *PLC) *Step7 {
	s := &Step7{Host: h, InstallDir: host.CleanPath(installDir), lib: NewDirectLib(target)}
	// The genuine DLL exists as a file too, so file-level swaps are
	// observable by forensics.
	h.FS.Write(s.DLLPath(), []byte("GENUINE "+CommLibDLL+" v5.4"), 0, h.K.Now())
	return s
}

// DLLPath returns the comm library path on disk.
func (s *Step7) DLLPath() string { return s.InstallDir + `\` + CommLibDLL }

// Lib returns the currently loaded comm library.
func (s *Step7) Lib() CommLib { return s.lib }

// ReplaceLib swaps the loaded comm library — the object-graph half of the
// s7otbxdx.dll replacement (the file-level half is an FS rename + write).
func (s *Step7) ReplaceLib(lib CommLib) {
	s.lib = lib
	s.Host.Logf(sim.CatPLC, "step7", "comm library implementation replaced")
}

// OnProjectOpen registers a hook fired for every opened project.
func (s *Step7) OnProjectOpen(hook func(projectDir string)) {
	s.openHooks = append(s.openHooks, hook)
}

// ErrNoProject is returned when the project folder does not exist.
var ErrNoProject = errors.New("plc: no such Step 7 project")

// OpenProject opens a project folder, firing open hooks.
func (s *Step7) OpenProject(dir string) error {
	dir = host.CleanPath(dir)
	if !s.Host.FS.DirExists(dir) {
		return fmt.Errorf("%w: %s", ErrNoProject, dir)
	}
	s.openedProjects = append(s.openedProjects, dir)
	s.Host.Logf(sim.CatPLC, "step7", "opened project %s", dir)
	for _, hook := range s.openHooks {
		hook(dir)
	}
	return nil
}

// OpenedProjects returns project folders in open order.
func (s *Step7) OpenedProjects() []string {
	out := make([]string, len(s.openedProjects))
	copy(out, s.openedProjects)
	return out
}

// DownloadBlock writes a code block to the PLC through the comm library —
// what an engineer does when (re)programming the controller.
func (s *Step7) DownloadBlock(id int, code []byte) error {
	return s.lib.WriteBlock(id, code)
}

// UploadBlock reads a block back for display/compare.
func (s *Step7) UploadBlock(id int) ([]byte, error) {
	return s.lib.ReadBlock(id)
}

// ListBlocks enumerates blocks as the engineer sees them.
func (s *Step7) ListBlocks() []int { return s.lib.ListBlocks() }

// NewProject creates a project folder with the standard file skeleton.
func NewProject(h *host.Host, dir string) error {
	dir = host.CleanPath(dir)
	files := map[string]string{
		dir + `\project.s7p`:      "SIMATIC project file",
		dir + `\blocks\ob1.blk`:   "ORGANIZATION BLOCK OB1: main scan",
		dir + `\blocks\db890.blk`: "DATA BLOCK DB890",
	}
	for path, content := range files {
		if err := h.FS.Write(path, []byte(content), 0, h.K.Now()); err != nil {
			return fmt.Errorf("new project: %w", err)
		}
	}
	return nil
}

// ProjectInfected reports whether a project folder carries the dropped
// infection artefacts.
func ProjectInfected(h *host.Host, dir string) bool {
	dir = host.CleanPath(dir)
	for _, f := range h.FS.List(dir) {
		if strings.Contains(strings.ToLower(f.Path), "xutils") {
			return true
		}
	}
	return h.FS.Exists(dir + `\xutils\listen.xr`)
}

// OperatorView is the HMI: it polls drive frequencies through the comm
// library and keeps the last readings — what the plant operator sees.
type OperatorView struct {
	lib      CommLib
	Readings []float64
}

// NewOperatorView returns an HMI bound to the library.
func NewOperatorView(lib CommLib) *OperatorView {
	return &OperatorView{lib: lib}
}

// Poll refreshes the displayed frequencies.
func (v *OperatorView) Poll(driveCount int) {
	v.Readings = v.Readings[:0]
	for i := 0; i < driveCount; i++ {
		hz, err := v.lib.ReadFrequency(i)
		if err != nil {
			hz = -1
		}
		v.Readings = append(v.Readings, hz)
	}
}

// AllNormal reports whether every displayed frequency is inside the normal
// operating band.
func (v *OperatorView) AllNormal() bool {
	for _, hz := range v.Readings {
		if hz < TriggerMinHz || hz > TriggerMaxHz {
			return false
		}
	}
	return len(v.Readings) > 0
}

// SafetySystem is the digital protection system. It observes frequencies
// through the same comm-library plane and trips — commanding all drives to
// zero — when readings leave the protection band. Stuxnet's replay of
// recorded normal values blinds it (paper, Section II-C).
type SafetySystem struct {
	lib     CommLib
	Tripped bool
	// Protection band.
	MinHz, MaxHz float64
}

// NewSafetySystem returns a protection system bound to the library.
func NewSafetySystem(lib CommLib) *SafetySystem {
	return &SafetySystem{lib: lib, MinHz: 700, MaxHz: 1300}
}

// Check polls all drives; out-of-band readings trip the system, which
// immediately commands every drive to zero through the library.
func (ss *SafetySystem) Check(driveCount int) {
	if ss.Tripped {
		return
	}
	for i := 0; i < driveCount; i++ {
		hz, err := ss.lib.ReadFrequency(i)
		if err != nil {
			continue
		}
		if hz < ss.MinHz || hz > ss.MaxHz {
			ss.Tripped = true
			for j := 0; j < driveCount; j++ {
				// Shutdown command: a trip is an emergency stop.
				if err := ss.lib.WriteFrequency(j, 0); err != nil {
					continue
				}
			}
			return
		}
	}
}

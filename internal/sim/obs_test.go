package sim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestKernelMetricsCounters(t *testing.T) {
	k := NewKernel()
	ev := k.Schedule(time.Minute, "a", func() {})
	k.Schedule(2*time.Minute, "b", func() {})
	k.Cancel(ev)
	k.Cancel(ev) // double-cancel must not double-count
	k.Drain(100)

	s := k.Metrics().Snapshot()
	if s.Counters["sim.event.schedule"] != 2 {
		t.Fatalf("schedule = %g, want 2", s.Counters["sim.event.schedule"])
	}
	if s.Counters["sim.event.cancel"] != 1 {
		t.Fatalf("cancel = %g, want 1", s.Counters["sim.event.cancel"])
	}
	if s.Counters["sim.event.execute"] != 1 {
		t.Fatalf("execute = %g, want 1", s.Counters["sim.event.execute"])
	}
}

func TestKernelEventsGated(t *testing.T) {
	quiet := NewKernel()
	quiet.Schedule(time.Minute, "x", func() {})
	quiet.Drain(10)
	if quiet.Trace().Count(CatKernel) != 0 {
		t.Fatal("kernel events emitted without WithKernelEvents")
	}

	loud := NewKernel(WithKernelEvents(true))
	loud.Schedule(time.Minute, "x", func() {})
	loud.Drain(10)
	if loud.Trace().Count(CatKernel) < 2 { // schedule + execute
		t.Fatalf("kernel events = %d, want >= 2", loud.Trace().Count(CatKernel))
	}
}

func TestTraceEmitTagsAndSeq(t *testing.T) {
	k := NewKernel()
	tr := k.Trace()
	tr.Emit(k.Now(), CatInfect, "WS-01", "stuxnet installed", obs.T("vector", "usb"))
	tr.Add(k.Now(), CatExec, "WS-01", "exec %s", "a.exe")
	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("seqs = %d,%d want 1,2", recs[0].Seq, recs[1].Seq)
	}
	if len(recs[0].Tags) != 1 || recs[0].Tags[0] != obs.T("vector", "usb") {
		t.Fatalf("tags = %v", recs[0].Tags)
	}
	if recs[1].Message != "exec a.exe" {
		t.Fatalf("message = %q", recs[1].Message)
	}
}

func TestTraceWriteJSONL(t *testing.T) {
	k := NewKernel()
	k.Trace().Emit(k.Now(), CatC2, "server", "GET_NEWS", obs.Ti("packages", 2))
	var buf bytes.Buffer
	if err := k.Trace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	for _, want := range []string{`"cat":"c2"`, `"seq":1`, `"packages":"2"`, `"t":"2010-06-01T00:00:00Z"`} {
		if !strings.Contains(line, want) {
			t.Fatalf("JSONL %q missing %q", line, want)
		}
	}
}

// TestTraceJSONLIdenticalAcrossRuns pins the determinism contract at the
// trace level: two kernels driven identically export identical bytes.
func TestTraceJSONLIdenticalAcrossRuns(t *testing.T) {
	export := func() string {
		k := NewKernel(WithSeed(7))
		stop := k.Every(time.Minute, "tick", func() {
			k.Trace().Emit(k.Now(), CatNetwork, "h", "beat", obs.Ti("r", int64(k.RNG().Intn(100))))
		})
		if err := k.RunFor(10 * time.Minute); err != nil {
			t.Fatal(err)
		}
		stop()
		var buf bytes.Buffer
		if err := k.Trace().WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := export(), export()
	if a != b {
		t.Fatal("trace JSONL differs across identical runs")
	}
	if len(strings.Split(strings.TrimSpace(a), "\n")) != 10 {
		t.Fatalf("expected 10 lines, got:\n%s", a)
	}
}

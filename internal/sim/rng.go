package sim

// RNG is a small, fast, deterministic random source (splitmix64). Every
// stochastic decision in the range must derive from a kernel RNG so that
// simulations replay bit-for-bit from a seed.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent child RNG whose stream is a pure function of
// the parent's current state. Useful to give each host its own stream.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Bytes fills and returns a new slice of n pseudorandom bytes.
func (r *RNG) Bytes(n int) []byte {
	b := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < n; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	return b
}

// Pick returns a uniformly chosen element of items. It panics on an empty
// slice.
func Pick[T any](r *RNG, items []T) T {
	return items[r.Intn(len(items))]
}

// Shuffle permutes items in place (Fisher-Yates).
func Shuffle[T any](r *RNG, items []T) {
	for i := len(items) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		items[i], items[j] = items[j], items[i]
	}
}

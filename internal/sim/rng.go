package sim

// RNG is a small, fast, deterministic random source (splitmix64). Every
// stochastic decision in the range must derive from a kernel RNG so that
// simulations replay bit-for-bit from a seed.
type RNG struct {
	state uint64
}

// golden is the splitmix64 state increment. One Uint64 draw advances the
// state by exactly this constant, which is what makes Skip O(1).
const golden = 0x9e3779b97f4a7c15

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent child RNG whose stream is a pure function of
// the parent's current state. Useful to give each host its own stream.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ golden)
}

// ForkAt derives the i-th member of a family of independent child streams
// without advancing the parent. The result is a pure function of (parent
// state, i), so sharded builders can hand host i its own stream from any
// worker goroutine and still replay bit-for-bit at any worker count.
func (r *RNG) ForkAt(i uint64) *RNG {
	z := r.state ^ (i+1)*golden
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewRNG(z ^ (z >> 31))
}

// State exposes the internal stream position. NewRNG(State()) clones the
// stream: it produces exactly the draws this RNG would produce next.
// Lazy file content stores this as its generation seed.
func (r *RNG) State() uint64 { return r.state }

// Skip advances the stream by n draws in O(1), leaving the RNG in exactly
// the state n Uint64 calls would. Lazy seeding uses it to keep the parent
// stream byte-identical to eager seeding without generating the bytes.
func (r *RNG) Skip(n int) {
	if n < 0 {
		panic("sim: Skip with negative n")
	}
	r.state += golden * uint64(n)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Bytes fills and returns a new slice of n pseudorandom bytes.
func (r *RNG) Bytes(n int) []byte {
	b := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < n; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	return b
}

// Pick returns a uniformly chosen element of items. It panics on an empty
// slice.
func Pick[T any](r *RNG, items []T) T {
	return items[r.Intn(len(items))]
}

// Shuffle permutes items in place (Fisher-Yates).
func Shuffle[T any](r *RNG, items []T) {
	for i := len(items) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		items[i], items[j] = items[j], items[i]
	}
}

package sim

import (
	"testing"
	"time"
)

// TestFiredEventsAreRecycled pins the free-list contract: a fired or
// cancelled event's struct goes back to the pool with its closure, name
// and cause cleared, and the very next schedule reuses it.
func TestFiredEventsAreRecycled(t *testing.T) {
	k := NewKernel()
	k.Schedule(time.Second, "first", func() {})
	if !k.Step() {
		t.Fatal("Step executed nothing")
	}
	if len(k.free) != 1 {
		t.Fatalf("free list = %d events, want 1", len(k.free))
	}
	rec := k.free[0]
	if rec.fn != nil || rec.name != "" || rec.cause != (Cause{}) {
		t.Fatalf("recycled event not cleared: fn=%p name=%q cause=%+v", rec.fn, rec.name, rec.cause)
	}
	tm := k.Schedule(time.Second, "second", func() {})
	if tm.ev != rec {
		t.Fatal("schedule did not reuse the pooled event struct")
	}
	if len(k.free) != 0 {
		t.Fatalf("free list = %d events after reuse, want 0", len(k.free))
	}
}

// TestCancelledEventsAreRecycled is the Cancel-side variant.
func TestCancelledEventsAreRecycled(t *testing.T) {
	k := NewKernel()
	tm := k.Schedule(time.Second, "doomed", func() {})
	k.Cancel(tm)
	if len(k.free) != 1 || k.free[0].fn != nil {
		t.Fatalf("cancelled event not recycled/cleared (free=%d)", len(k.free))
	}
}

// TestStaleTimerIsInertAfterRecycle is the safety half of pooling: a
// handle to a fired event must not cancel (or report on) the unrelated
// event that inherited its struct.
func TestStaleTimerIsInertAfterRecycle(t *testing.T) {
	k := NewKernel()
	stale := k.Schedule(time.Second, "old", func() {})
	k.Step()
	fired := false
	fresh := k.Schedule(time.Second, "new", func() { fired = true })
	if fresh.ev != stale.ev {
		t.Fatal("test premise broken: struct was not reused")
	}
	if stale.Active() {
		t.Fatal("stale Timer reports Active for a recycled event")
	}
	if got := stale.Name(); got != "" {
		t.Fatalf("stale Timer leaked name %q of the recycled event", got)
	}
	k.Cancel(stale) // must NOT cancel "new"
	k.Drain(10)
	if !fired {
		t.Fatal("stale Cancel removed an unrelated recycled event")
	}
}

// TestTimerAccessorsWhileQueued covers the live half of the handle API.
func TestTimerAccessorsWhileQueued(t *testing.T) {
	k := NewKernel()
	tm := k.Schedule(time.Minute, "beat", func() {})
	if !tm.Active() {
		t.Fatal("queued Timer not Active")
	}
	if tm.Name() != "beat" {
		t.Fatalf("Name = %q", tm.Name())
	}
	if want := Epoch.Add(time.Minute); !tm.At().Equal(want) {
		t.Fatalf("At = %v, want %v", tm.At(), want)
	}
	k.Drain(1)
	if tm.Active() || !tm.At().IsZero() {
		t.Fatal("fired Timer still reports queued state")
	}
}

// TestPoolDeterminismUnderChurn replays a timer-storm workload twice and
// requires identical execution order and telemetry — pooling must not
// perturb the determinism contract.
func TestPoolDeterminismUnderChurn(t *testing.T) {
	run := func() (uint64, float64) {
		k := NewKernel(WithSeed(3))
		var cancels []Timer
		for i := 0; i < 500; i++ {
			d := time.Duration(1+k.RNG().Intn(3600)) * time.Second
			tm := k.Schedule(d, "churn", func() {
				if k.RNG().Bool(0.5) {
					k.Schedule(time.Duration(1+k.RNG().Intn(600))*time.Second, "child", func() {})
				}
			})
			if i%3 == 0 {
				cancels = append(cancels, tm)
			}
		}
		for _, tm := range cancels {
			k.Cancel(tm)
		}
		k.Drain(10_000)
		return k.Steps(), k.Metrics().Snapshot().Counters["sim.event.schedule"]
	}
	s1, c1 := run()
	s2, c2 := run()
	if s1 != s2 || c1 != c2 {
		t.Fatalf("run diverged: steps %d vs %d, schedules %g vs %g", s1, s2, c1, c2)
	}
}

// BenchmarkScheduleFire measures the hot schedule->execute path. With the
// free list a steady-state iteration allocates nothing.
func BenchmarkScheduleFire(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(time.Second, "bench", fn)
		k.Step()
	}
}

// BenchmarkScheduleCancel measures the schedule->cancel path.
func BenchmarkScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Cancel(k.Schedule(time.Second, "bench", fn))
	}
}

// TestScheduleFireSteadyStateAllocs is the CI-facing regression gate for
// the pool: the schedule/fire cycle must not allocate once warmed up.
func TestScheduleFireSteadyStateAllocs(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	allocs := testing.AllocsPerRun(1000, func() {
		k.Schedule(time.Second, "steady", fn)
		k.Step()
	})
	if allocs > 0 {
		t.Fatalf("schedule/fire allocates %.1f objects per op, want 0", allocs)
	}
}

package sim

import (
	"strings"
	"testing"
	"time"
)

func TestTraceAddAndCount(t *testing.T) {
	tr := NewTrace(16)
	at := Epoch
	tr.Add(at, CatInfect, "host1", "compromised via %s", "LNK")
	tr.Add(at, CatInfect, "host2", "compromised via spooler")
	tr.Add(at, CatWipe, "host1", "MBR overwritten")
	if tr.Count(CatInfect) != 2 {
		t.Fatalf("Count(infect) = %d, want 2", tr.Count(CatInfect))
	}
	if tr.Count(CatWipe) != 1 {
		t.Fatalf("Count(wipe) = %d, want 1", tr.Count(CatWipe))
	}
	if tr.Count(CatExfil) != 0 {
		t.Fatalf("Count(exfil) = %d, want 0", tr.Count(CatExfil))
	}
}

func TestTraceRingRotation(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Add(Epoch.Add(time.Duration(i)*time.Second), CatExec, "a", "event %d", i)
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	if recs[0].Message != "event 2" || recs[2].Message != "event 4" {
		t.Fatalf("wrong rotation window: %v", recs)
	}
	if tr.Count(CatExec) != 5 {
		t.Fatalf("counter lost on rotation: %d", tr.Count(CatExec))
	}
}

func TestTraceChronologicalOrder(t *testing.T) {
	tr := NewTrace(10)
	for i := 0; i < 4; i++ {
		tr.Add(Epoch.Add(time.Duration(i)*time.Minute), CatNetwork, "net", "pkt %d", i)
	}
	recs := tr.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i].At.Before(recs[i-1].At) {
			t.Fatalf("records out of order at %d", i)
		}
	}
}

func TestTraceFilterAndFind(t *testing.T) {
	tr := NewTrace(10)
	tr.Add(Epoch, CatC2, "flame", "GET_NEWS")
	tr.Add(Epoch, CatExfil, "flame", "ADD_ENTRY 4096 bytes")
	tr.Add(Epoch, CatC2, "flame", "update received")
	if got := len(tr.Filter(CatC2)); got != 2 {
		t.Fatalf("Filter(c2) = %d, want 2", got)
	}
	if got := len(tr.Find("ADD_ENTRY")); got != 1 {
		t.Fatalf("Find = %d, want 1", got)
	}
}

func TestTraceMutedKeepsCounters(t *testing.T) {
	tr := NewTrace(10)
	tr.SetMuted(true)
	tr.Add(Epoch, CatWipe, "shamoon", "wiped")
	if len(tr.Records()) != 0 {
		t.Fatal("muted trace retained records")
	}
	if tr.Count(CatWipe) != 1 {
		t.Fatal("muted trace lost counter")
	}
}

func TestTraceDumpFormat(t *testing.T) {
	tr := NewTrace(4)
	tr.Add(Epoch, CatCert, "pki", "signed driver")
	dump := tr.Dump()
	if !strings.Contains(dump, "[cert]") || !strings.Contains(dump, "signed driver") {
		t.Fatalf("unexpected dump: %q", dump)
	}
}

func TestTraceTinyCapacity(t *testing.T) {
	tr := NewTrace(0) // clamps to 1
	tr.Add(Epoch, CatExec, "a", "one")
	tr.Add(Epoch, CatExec, "a", "two")
	recs := tr.Records()
	if len(recs) != 1 || recs[0].Message != "two" {
		t.Fatalf("records = %v", recs)
	}
}

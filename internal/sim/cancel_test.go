package sim

import (
	"errors"
	"testing"
	"time"
)

// runCaught runs fn and returns the *Cancelled panic it unwound with
// (nil if it returned normally).
func runCaught(t *testing.T, fn func()) (c *Cancelled) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if c, ok = AsCancelled(r); !ok {
				panic(r)
			}
		}
	}()
	fn()
	return nil
}

// TestCancelRunAbortsAtStepBoundary: a pending CancelRun tears the run
// down between events — the in-flight handler always completes, the
// panic carries the cause and a diagnostic, and no further events fire.
func TestCancelRunAbortsAtStepBoundary(t *testing.T) {
	k := NewKernel()
	var fired []string
	cause := errors.New("test cause")
	k.Schedule(time.Second, "first", func() {
		fired = append(fired, "first")
		k.CancelRun(cause)
		fired = append(fired, "first-done") // handler must finish
	})
	k.Schedule(2*time.Second, "second", func() { fired = append(fired, "second") })

	c := runCaught(t, func() { k.RunFor(time.Hour) })
	if c == nil {
		t.Fatal("cancelled run returned normally")
	}
	if !errors.Is(c, cause) {
		t.Fatalf("cancel cause = %v, want %v", c.Cause, cause)
	}
	if len(fired) != 2 || fired[1] != "first-done" {
		t.Fatalf("fired = %v; want the in-flight handler to complete and nothing more", fired)
	}
	if c.Diag.Steps != 1 || c.Diag.LastHandler != "first" {
		t.Fatalf("diagnostic = %+v, want steps=1 lastHandler=first", c.Diag)
	}
	if c.Diag.Pending != 1 || c.Diag.NextEvent != "second" {
		t.Fatalf("diagnostic = %+v, want pending=1 next=second", c.Diag)
	}
	if k.Pending() != 0 {
		t.Fatalf("queue not drained after abort: %d pending", k.Pending())
	}
}

// TestCancelRunPoolBalance: an abort mid-run must not leak pooled
// events — everything scheduled is returned to the free list, including
// the events still queued at the abort boundary.
func TestCancelRunPoolBalance(t *testing.T) {
	k := NewKernel()
	var reschedule func()
	n := 0
	reschedule = func() {
		n++
		// Fan out: each firing schedules two more, so the queue is deep
		// when the abort lands.
		k.Schedule(time.Second, "fan", reschedule)
		k.Schedule(2*time.Second, "fan", reschedule)
		if n == 500 {
			k.CancelRun(nil)
		}
	}
	k.Schedule(time.Second, "fan", reschedule)
	if c := runCaught(t, func() { k.RunFor(24 * time.Hour) }); c == nil {
		t.Fatal("cancelled run returned normally")
	}
	ps := k.PoolStats()
	if !ps.Balanced() {
		t.Fatalf("pool leaked events across abort: gets %d (hits %d + misses %d) != puts %d",
			ps.Hits+ps.Misses, ps.Hits, ps.Misses, ps.Puts)
	}
	if k.Pending() != 0 {
		t.Fatalf("queue not drained: %d", k.Pending())
	}
}

// TestCancelRunFromAnotherGoroutine: CancelRun is the one cross-
// goroutine entry point; a cancel posted from outside lands at the next
// step boundary.
func TestCancelRunFromAnotherGoroutine(t *testing.T) {
	k := NewKernel()
	var spin func()
	spin = func() { k.Schedule(0, "spin", spin) } // vtime-frozen hot loop
	k.Schedule(0, "spin", spin)
	go k.CancelRun(ErrStalled)
	c := runCaught(t, func() { k.RunFor(time.Hour) })
	if c == nil {
		t.Fatal("spin run returned normally")
	}
	if !errors.Is(c, ErrStalled) {
		t.Fatalf("cause = %v, want ErrStalled", c.Cause)
	}
	if !k.PoolStats().Balanced() {
		t.Fatalf("pool unbalanced after cross-goroutine abort: %+v", k.PoolStats())
	}
}

// TestCancelRunFirstCauseWins: later requests before the abort don't
// overwrite the original cause.
func TestCancelRunFirstCauseWins(t *testing.T) {
	k := NewKernel()
	k.CancelRun(ErrDeadline)
	k.CancelRun(ErrStalled)
	k.Schedule(time.Second, "never", func() {})
	c := runCaught(t, func() { k.Step() })
	if c == nil || !errors.Is(c, ErrDeadline) {
		t.Fatalf("cause = %v, want first cause ErrDeadline", c)
	}
	if k.CancelRequested() {
		t.Fatal("cancel request not consumed by the abort")
	}
}

// TestAttachProbeChains: two probes attached via AttachProbe both see
// samples; the finer cadence wins.
func TestAttachProbeChains(t *testing.T) {
	k := NewKernel()
	a, b := &recordingProbe{}, &recordingProbe{}
	k.AttachProbe(a, 100)
	k.AttachProbe(b, 10)
	if k.probeEvery != 10 {
		t.Fatalf("probeEvery = %d, want the finer cadence 10", k.probeEvery)
	}
	fn := func() {}
	for i := 0; i < 25; i++ {
		k.Schedule(time.Duration(i+1)*time.Second, "tick", fn)
	}
	if err := k.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	if a.samples != 2 || b.samples != 2 {
		t.Fatalf("probe samples = %d/%d, want 2/2 (25 steps at cadence 10)", a.samples, b.samples)
	}
}

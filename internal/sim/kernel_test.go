package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKernelStartsAtEpoch(t *testing.T) {
	k := NewKernel()
	if !k.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", k.Now(), Epoch)
	}
}

func TestWithStart(t *testing.T) {
	start := time.Date(2012, time.August, 15, 8, 0, 0, 0, time.UTC)
	k := NewKernel(WithStart(start))
	if !k.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", k.Now(), start)
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	k := NewKernel()
	var fired time.Time
	k.Schedule(5*time.Minute, "ping", func() { fired = k.Now() })
	if err := k.RunFor(time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	want := Epoch.Add(5 * time.Minute)
	if !fired.Equal(want) {
		t.Errorf("event fired at %v, want %v", fired, want)
	}
	if !k.Now().Equal(Epoch.Add(time.Hour)) {
		t.Errorf("clock = %v, want %v", k.Now(), Epoch.Add(time.Hour))
	}
}

func TestEventsFireInTimestampOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(3*time.Second, "c", func() { order = append(order, 3) })
	k.Schedule(1*time.Second, "a", func() { order = append(order, 1) })
	k.Schedule(2*time.Second, "b", func() { order = append(order, 2) })
	k.Drain(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestTieBreakBySequence(t *testing.T) {
	k := NewKernel()
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		k.Schedule(time.Second, name, func() { order = append(order, name) })
	}
	k.Drain(10)
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	k := NewKernel()
	ev := k.Schedule(-time.Hour, "past", func() {})
	if ev.At().Before(k.Now()) {
		t.Fatalf("event scheduled in the past: %v < %v", ev.At(), k.Now())
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	ev := k.Schedule(time.Second, "x", func() { fired = true })
	k.Cancel(ev)
	k.Drain(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancelling the zero Timer must be safe.
	k.Cancel(ev)
	k.Cancel(Timer{})
}

func TestCancelOneOfMany(t *testing.T) {
	k := NewKernel()
	var got []int
	evs := make([]Timer, 5)
	for i := 0; i < 5; i++ {
		i := i
		evs[i] = k.Schedule(time.Duration(i+1)*time.Second, "n", func() { got = append(got, i) })
	}
	k.Cancel(evs[2])
	k.Drain(10)
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEvery(t *testing.T) {
	k := NewKernel()
	n := 0
	cancel := k.Every(10*time.Minute, "tick", func() { n++ })
	if err := k.RunFor(time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if n != 6 {
		t.Fatalf("ticks = %d, want 6", n)
	}
	cancel()
	if err := k.RunFor(time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if n != 6 {
		t.Fatalf("ticks after cancel = %d, want 6", n)
	}
}

func TestEveryCancelRemovesPendingTick(t *testing.T) {
	k := NewKernel()
	cancel := k.Every(time.Minute, "tick", func() {})
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	cancel()
	if k.Pending() != 0 {
		t.Fatalf("pending after cancel = %d, want 0 (dead tick left in queue)", k.Pending())
	}
	if n := k.Drain(10); n != 0 {
		t.Fatalf("Drain burned %d steps on a cancelled timer, want 0", n)
	}
	cancel() // double-cancel must be safe
}

func TestEveryCancelInsideTickLeavesQueueEmpty(t *testing.T) {
	k := NewKernel()
	n := 0
	var cancel func()
	cancel = k.Every(time.Minute, "tick", func() {
		n++
		if n == 2 {
			cancel()
		}
	})
	if err := k.RunFor(time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if n != 2 {
		t.Fatalf("ticks = %d, want 2", n)
	}
	if k.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", k.Pending())
	}
}

func TestEveryCancelFromWithinTick(t *testing.T) {
	k := NewKernel()
	n := 0
	var cancel func()
	cancel = k.Every(time.Minute, "tick", func() {
		n++
		if n == 3 {
			cancel()
		}
	})
	if err := k.RunFor(time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestStopInterruptsRun(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Every(time.Minute, "tick", func() {
		n++
		if n == 2 {
			k.Stop()
		}
	})
	err := k.RunFor(time.Hour)
	if err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if n != 2 {
		t.Fatalf("ticks = %d, want 2", n)
	}
}

func TestStopBeforeRunAbortsNextRun(t *testing.T) {
	k := NewKernel()
	fired := false
	k.Schedule(time.Second, "e", func() { fired = true })
	k.Stop()
	if err := k.RunFor(time.Hour); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped (pre-run Stop was erased)", err)
	}
	if fired {
		t.Fatal("event fired despite pre-run Stop")
	}
	// The latch is consumed: the following run proceeds normally.
	if err := k.RunFor(time.Hour); err != nil {
		t.Fatalf("second RunFor: %v", err)
	}
	if !fired {
		t.Fatal("event did not fire after the latch was consumed")
	}
}

func TestStopLatchConsumedByInterruptedRun(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Every(time.Minute, "tick", func() {
		n++
		if n == 2 {
			k.Stop()
		}
	})
	if err := k.RunFor(time.Hour); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	// A stopped run must not poison the next one.
	if err := k.RunFor(time.Hour); err != nil {
		t.Fatalf("run after stop: %v", err)
	}
	if n <= 2 {
		t.Fatalf("ticks = %d, want > 2 after resuming", n)
	}
}

func TestStopBeforeDrain(t *testing.T) {
	k := NewKernel()
	k.Schedule(time.Second, "e", func() {})
	k.Stop()
	if n := k.Drain(10); n != 0 {
		t.Fatalf("Drain after pre-Stop executed %d events, want 0", n)
	}
	if n := k.Drain(10); n != 1 {
		t.Fatalf("Drain after consumed latch executed %d events, want 1", n)
	}
}

func TestRunUntilDoesNotExecuteLaterEvents(t *testing.T) {
	k := NewKernel()
	fired := false
	k.Schedule(2*time.Hour, "late", func() { fired = true })
	if err := k.RunFor(time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if fired {
		t.Fatal("event beyond deadline fired")
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
}

func TestDrainRespectsMaxSteps(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 10; i++ {
		k.Schedule(time.Duration(i)*time.Second, "e", func() {})
	}
	if n := k.Drain(4); n != 4 {
		t.Fatalf("Drain = %d, want 4", n)
	}
	if k.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", k.Pending())
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	var times []time.Time
	k.Schedule(time.Second, "outer", func() {
		times = append(times, k.Now())
		k.Schedule(time.Second, "inner", func() {
			times = append(times, k.Now())
		})
	})
	k.Drain(10)
	if len(times) != 2 {
		t.Fatalf("events = %d, want 2", len(times))
	}
	if got, want := times[1].Sub(times[0]), time.Second; got != want {
		t.Fatalf("inner delay = %v, want %v", got, want)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		k := NewKernel(WithSeed(42))
		var out []uint64
		for i := 0; i < 5; i++ {
			k.Schedule(time.Duration(k.RNG().Intn(1000))*time.Millisecond, "e", func() {
				out = append(out, k.RNG().Uint64())
			})
		}
		k.Drain(100)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnProperty(t *testing.T) {
	r := NewRNG(9)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBytesLength(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{0, 1, 7, 8, 9, 100} {
		if got := len(r.Bytes(n)); got != n {
			t.Fatalf("Bytes(%d) length = %d", n, got)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(5)
	child := a.Fork()
	// Child stream must differ from the parent continuing stream.
	same := true
	for i := 0; i < 10; i++ {
		if a.Uint64() != child.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("forked RNG mirrors parent stream")
	}
}

func TestPickAndShuffle(t *testing.T) {
	r := NewRNG(11)
	items := []string{"a", "b", "c", "d"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, items)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("Pick never chose some elements: %v", seen)
	}
	orig := []int{1, 2, 3, 4, 5, 6, 7, 8}
	shuffled := append([]int(nil), orig...)
	Shuffle(r, shuffled)
	sum := 0
	for _, v := range shuffled {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("Shuffle lost elements: %v", shuffled)
	}
}

func TestScheduleAtPastClamps(t *testing.T) {
	k := NewKernel()
	k.Schedule(time.Hour, "advance", func() {})
	k.Drain(1)
	ev := k.ScheduleAt(Epoch, "past", func() {})
	if ev.At().Before(k.Now()) {
		t.Fatalf("past event not clamped: %v < %v", ev.At(), k.Now())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	k := NewKernel()
	if k.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

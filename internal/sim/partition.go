package sim

// Partitioned deterministic execution (DESIGN.md §14).
//
// A PartitionSet couples P independent kernels — one per world shard
// (site, LAN, enclave) — into a single simulation that can advance on
// multiple OS threads without giving up the byte-determinism contract.
// The scheme is conservative epoch synchronization:
//
//   - every partition runs its own events locally inside the window
//     (epoch, epoch+Δ]; partitions share no mutable state during a
//     window, so the workers never contend;
//   - cross-partition traffic (internet dispatch, C&C beacons, USB
//     carries between sites) is not delivered synchronously: the sender
//     enqueues a Message stamped (At = send vtime, From = sender index,
//     Seq = per-sender counter) into its outbox;
//   - at the window's end every worker parks on a barrier; the
//     coordinator sorts all outboxes by (At, From, Seq) and schedules
//     each message onto its destination kernel at the boundary time, in
//     that order, before any partition resumes.
//
// Delivery order is therefore a pure function of virtual time and the
// per-sender counters — never of which worker finished first — so the
// number of workers advancing the set only controls wall-clock
// concurrency, exactly like AddHostsSharded's build workers. The
// logical partition layout itself is part of the scenario: changing it
// changes the simulated world (different kernels, RNG streams and span
// sequences), while changing the worker count never changes a byte.

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Message is one cross-partition payload, exchanged at an epoch
// boundary. At is the sender's virtual clock when Send was called; the
// message is delivered at the first window boundary at or after At,
// so cross-partition latency is bounded by the set's epoch Δ.
type Message struct {
	At      time.Time // sender's virtual time at Send
	From    int       // sending partition index
	Seq     uint64    // per-sender send counter (starts at 1)
	Kind    string    // routing tag for the destination's handler
	Payload any
}

// routed is an outbox entry: a Message plus its destination.
type routed struct {
	to  int
	msg Message
}

// Partition is one shard of a partitioned simulation: a kernel plus its
// mailbox plumbing. Obtain one from PartitionSet.Add.
type Partition struct {
	K   *Kernel
	set *PartitionSet
	idx int

	seq     uint64 // stamps outgoing messages
	outbox  []routed
	deliver func(Message)

	wall time.Duration // wall-clock plane: time spent advancing this shard
}

// Index returns the partition's position in the set. Indices are
// assigned in Add order and are part of the deterministic message
// ordering, so partitioned scenarios must Add shards in a fixed order.
func (p *Partition) Index() int { return p.idx }

// Send enqueues a cross-partition message for delivery at the end of
// the current epoch window. It must be called from the partition's own
// kernel (inside one of its event callbacks, or between runs on the
// coordinating goroutine) — the outbox is not locked, the barrier is
// the only synchronization. Sending to the own partition is a bug:
// local work is just ScheduleAt.
func (p *Partition) Send(to int, kind string, payload any) {
	if to < 0 || to >= len(p.set.parts) {
		panic(fmt.Sprintf("sim: partition %d sends %q to out-of-range partition %d", p.idx, kind, to))
	}
	if to == p.idx {
		panic(fmt.Sprintf("sim: partition %d sends %q to itself; use ScheduleAt", p.idx, kind))
	}
	p.seq++
	p.outbox = append(p.outbox, routed{to: to, msg: Message{
		At: p.K.Now(), From: p.idx, Seq: p.seq, Kind: kind, Payload: payload,
	}})
}

// Sent reports how many cross-partition messages this partition has
// enqueued so far (delivered or not).
func (p *Partition) Sent() uint64 { return p.seq }

// OnDeliver installs the partition's mailbox handler. Delivered
// messages run as ordinary kernel events on the partition's own kernel
// (virtual time = the window boundary), so handlers may schedule,
// trace, open spans, and touch any state owned by the partition.
func (p *Partition) OnDeliver(fn func(Message)) { p.deliver = fn }

// PartitionStat is one shard's share of a partitioned run, on the
// wall-clock telemetry plane (the Steps count is deterministic; Wall is
// real time and feeds runstats manifests, never drift-gated artefacts).
type PartitionStat struct {
	Steps uint64        // events executed by the shard's kernel
	Wall  time.Duration // wall-clock spent advancing the shard
	Sent  uint64        // cross-partition messages enqueued
}

// PartitionSet advances P kernels in lock-step epoch windows with
// deterministic mailbox exchange at every boundary. The zero value is
// not usable; construct with NewPartitionSet.
type PartitionSet struct {
	epoch time.Duration
	parts []*Partition
}

// NewPartitionSet returns an empty set with the given epoch width Δ.
// Δ is part of the scenario definition (like a seed): it bounds
// cross-partition latency and therefore shapes delivery times.
func NewPartitionSet(epoch time.Duration) *PartitionSet {
	if epoch <= 0 {
		panic(fmt.Sprintf("sim: NewPartitionSet with non-positive epoch %v", epoch))
	}
	return &PartitionSet{epoch: epoch}
}

// Epoch returns the set's window width Δ.
func (ps *PartitionSet) Epoch() time.Duration { return ps.epoch }

// Len returns the number of partitions added so far.
func (ps *PartitionSet) Len() int { return len(ps.parts) }

// Add registers a kernel as the next partition (index = current Len)
// and returns its handle. All partitions must be added before the
// first RunUntil call, in a fixed scenario-defined order.
func (ps *PartitionSet) Add(k *Kernel) *Partition {
	p := &Partition{K: k, set: ps, idx: len(ps.parts)}
	ps.parts = append(ps.parts, p)
	return p
}

// Partition returns the handle at index i.
func (ps *PartitionSet) Partition(i int) *Partition { return ps.parts[i] }

// Stats reports each shard's executed-event count, accumulated advance
// wall time and message count, in partition order.
func (ps *PartitionSet) Stats() []PartitionStat {
	out := make([]PartitionStat, len(ps.parts))
	for i, p := range ps.parts {
		out[i] = PartitionStat{Steps: p.K.Steps(), Wall: p.wall, Sent: p.seq}
	}
	return out
}

// earliestEvent returns the earliest queued event time across all
// partitions.
func (ps *PartitionSet) earliestEvent() (time.Time, bool) {
	var best time.Time
	found := false
	for _, p := range ps.parts {
		if at, ok := p.K.NextEventAt(); ok && (!found || at.Before(best)) {
			best, found = at, true
		}
	}
	return best, found
}

// RunUntil advances every partition to the deadline in epoch windows,
// delivering cross-partition mail at each boundary, using up to
// `workers` OS threads per window (<= 1 runs on the calling goroutine).
// The worker count never changes simulation bytes. Idle stretches are
// skipped in one hop: a window always opens at the earliest queued
// event across the set.
//
// If any partition's run is torn down by CancelRun — the supervisor's
// cancel path (DESIGN.md §13) — the cancellation fans out to every
// sibling partition, each shard releases its pending events back to
// its pool, and the first abort re-panics on the calling goroutine as
// a *Cancelled, exactly like a single-kernel supervised run.
func (ps *PartitionSet) RunUntil(deadline time.Time, workers int) error {
	for {
		ps.abortIfCancelRequested()
		next, ok := ps.earliestEvent()
		if !ok || next.After(deadline) {
			break
		}
		end := next.Add(ps.epoch)
		if end.After(deadline) {
			end = deadline
		}
		if err := ps.advance(end, workers); err != nil {
			return err
		}
		ps.deliverAll(end)
	}
	// Nothing left at or before the deadline: advance every clock to it.
	for _, p := range ps.parts {
		if err := p.K.RunUntil(deadline); err != nil {
			return err
		}
	}
	return nil
}

// advance runs every partition's kernel to the window end, fanning the
// shards across a bounded worker pool. Workers recover *Cancelled
// panics (a panic on a bare goroutine would kill the process); the
// coordinator then fans the cancellation out and re-panics.
func (ps *PartitionSet) advance(end time.Time, workers int) error {
	errs := make([]error, len(ps.parts))
	panics := make([]any, len(ps.parts))
	run := func(i int) {
		p := ps.parts[i]
		t0 := time.Now()
		defer func() {
			p.wall += time.Since(t0)
			if r := recover(); r != nil {
				panics[i] = r
			}
		}()
		errs[i] = p.K.RunUntil(end)
	}
	if workers <= 1 || len(ps.parts) == 1 {
		for i := range ps.parts {
			run(i)
		}
	} else {
		if workers > len(ps.parts) {
			workers = len(ps.parts)
		}
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					run(i)
				}
			}()
		}
		for i := range ps.parts {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for i := range ps.parts {
		if panics[i] != nil {
			ps.abortAll(i, panics[i])
		}
	}
	for i := range ps.parts {
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// abortIfCancelRequested promptly honours a CancelRun that landed while
// the set was between windows (or on an idle shard that would never
// step again): it fans out and unwinds just like a mid-window abort.
func (ps *PartitionSet) abortIfCancelRequested() {
	for i, p := range ps.parts {
		if p.K.CancelRequested() {
			ps.abortAll(i, nil)
		}
	}
}

// abortAll tears the whole set down after partition `first` aborted
// (cause is its recovered panic) or was found with a cancel pending
// (cause nil): every sibling gets the cancellation, every shard
// releases its pending events back to its pool (the supervisor's leak
// audit spans all partition kernels), and the abort unwinds to the
// caller. Non-Cancelled panics propagate as-is without cancelling
// siblings — a programming error must not be dressed up as a
// supervised abort.
func (ps *PartitionSet) abortAll(first int, cause any) {
	cc, isCancel := cause.(*Cancelled)
	if cause == nil {
		// Materialise the pending cancel into a *Cancelled so the fan-out
		// carries the original cause.
		func() {
			defer func() {
				if r := recover(); r != nil {
					if c, ok := r.(*Cancelled); ok {
						cc, isCancel = c, true
					} else {
						cause = r
					}
				}
			}()
			ps.parts[first].K.abortIfCancelled()
		}()
		if !isCancel && cause == nil {
			return // the cancel raced away; nothing to unwind
		}
	}
	if !isCancel {
		panic(cause)
	}
	for j, sib := range ps.parts {
		if j != first {
			sib.K.CancelRun(cc.Cause)
		}
	}
	for j, sib := range ps.parts {
		if j == first {
			continue
		}
		func() {
			defer func() { _ = recover() }()
			sib.K.abortIfCancelled()
		}()
	}
	panic(cc)
}

// deliverAll is the epoch barrier's mailbox exchange: every outbox
// entry is sorted by (At, From, Seq) and scheduled onto its destination
// kernel at the boundary time `at`, in that order. It runs on the
// coordinating goroutine with every worker parked, so no locking is
// needed — and the resulting schedule sequence on each destination is
// a pure function of simulation state.
func (ps *PartitionSet) deliverAll(at time.Time) {
	total := 0
	for _, p := range ps.parts {
		total += len(p.outbox)
	}
	if total == 0 {
		return
	}
	all := make([]routed, 0, total)
	for _, p := range ps.parts {
		all = append(all, p.outbox...)
		p.outbox = p.outbox[:0]
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].msg, all[j].msg
		if !a.At.Equal(b.At) {
			return a.At.Before(b.At)
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.Seq < b.Seq
	})
	for _, r := range all {
		dst := ps.parts[r.to]
		if dst.deliver == nil {
			panic(fmt.Sprintf("sim: partition %d received %q from partition %d with no OnDeliver handler",
				r.to, r.msg.Kind, r.msg.From))
		}
		m := r.msg
		fn := dst.deliver
		dst.K.ScheduleAt(at, "partition:mail:"+m.Kind, func() { fn(m) })
	}
}

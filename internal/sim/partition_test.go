package sim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// collectDeliveries wires partition p to append a one-line render of
// every delivered message (with the local virtual receive time).
func collectDeliveries(p *Partition, into *[]string) {
	p.OnDeliver(func(m Message) {
		*into = append(*into, fmt.Sprintf("recv@%s kind=%s from=%d seq=%d at=%s payload=%v",
			p.K.Now().Format("15:04:05"), m.Kind, m.From, m.Seq, m.At.Format("15:04:05"), m.Payload))
	})
}

// TestPartitionMailboxOrdering proves the barrier delivers one window's
// mail sorted by (send vtime, sender index, per-sender seq), at the
// window boundary, regardless of the order sends were made in.
func TestPartitionMailboxOrdering(t *testing.T) {
	ps := NewPartitionSet(time.Hour)
	k0 := NewKernel()
	k1 := NewKernel()
	k2 := NewKernel()
	p0 := ps.Add(k0)
	p1 := ps.Add(k1)
	p2 := ps.Add(k2)

	var got []string
	collectDeliveries(p0, &got)

	// Sender 2 sends before sender 1 in wall order; vtime must win.
	k2.Schedule(1*time.Minute, "send", func() { p2.Send(0, "b", "k2-first") })
	k1.Schedule(1*time.Minute, "send", func() {
		p1.Send(0, "a", "k1-first")
		p1.Send(0, "a", "k1-second") // same vtime: seq breaks the tie
	})
	k1.Schedule(3*time.Minute, "send", func() { p1.Send(0, "c", "k1-late") })

	if err := ps.RunUntil(Epoch.Add(2*time.Hour), 1); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}

	// Window opens at the earliest event (+1m) and closes at +1h1m; every
	// message lands there, ordered (At, From, Seq).
	want := []string{
		"recv@01:01:00 kind=a from=1 seq=1 at=00:01:00 payload=k1-first",
		"recv@01:01:00 kind=a from=1 seq=2 at=00:01:00 payload=k1-second",
		"recv@01:01:00 kind=b from=2 seq=1 at=00:01:00 payload=k2-first",
		"recv@01:01:00 kind=c from=1 seq=3 at=00:03:00 payload=k1-late",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d deliveries, want %d:\n%v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("delivery %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	if !k0.Now().Equal(Epoch.Add(2 * time.Hour)) {
		t.Errorf("destination clock = %s, want deadline", k0.Now())
	}
}

// buildPingRing builds P partitions where each shard ticks every 10
// minutes, traces the tick, and pings its right neighbour; deliveries
// are traced on the receiving kernel. Cross-partition traffic therefore
// flows in every window.
func buildPingRing(parts int) *PartitionSet {
	ps := NewPartitionSet(15 * time.Minute)
	for i := 0; i < parts; i++ {
		k := NewKernel(WithSeed(uint64(100 + i)))
		p := ps.Add(k)
		p.OnDeliver(func(m Message) {
			k.Trace().Emit(k.Now(), CatNetwork, fmt.Sprintf("part-%d", p.Index()),
				fmt.Sprintf("recv %s from %d seq %d", m.Kind, m.From, m.Seq))
		})
		i := i
		k.Every(10*time.Minute, fmt.Sprintf("tick:%d", i), func() {
			k.Trace().Emit(k.Now(), CatExec, fmt.Sprintf("part-%d", i), "tick")
			p.Send((i+1)%parts, "ping", k.RNG().Uint64())
		})
	}
	return ps
}

// traceFingerprint renders every partition kernel's full record stream.
func traceFingerprint(ps *PartitionSet) string {
	var out string
	for i := 0; i < ps.Len(); i++ {
		k := ps.Partition(i).K
		out += fmt.Sprintf("== partition %d steps=%d spans=%d\n", i, k.Steps(), k.SpanCount())
		for _, r := range k.Trace().Records() {
			out += fmt.Sprintf("%s #%d [%s] %s: %s\n", r.At.Format(time.RFC3339), r.Seq, r.Cat, r.Actor, r.Message)
		}
	}
	return out
}

// TestPartitionWorkerCountInvariance is the §14 contract at the sim
// layer: the number of workers advancing a partition set changes wall
// clock only — every kernel's trace, step count and message flow are
// byte-identical at 1/2/4/8 workers.
func TestPartitionWorkerCountInvariance(t *testing.T) {
	deadline := Epoch.Add(6 * time.Hour)
	var base string
	for _, workers := range []int{1, 2, 4, 8} {
		ps := buildPingRing(4)
		if err := ps.RunUntil(deadline, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fp := traceFingerprint(ps)
		if base == "" {
			base = fp
			continue
		}
		if fp != base {
			t.Fatalf("workers=%d diverged from workers=1:\n%s\n-- vs --\n%s", workers, fp, base)
		}
	}
}

// TestPartitionIdleFastForward: a set whose shards go quiet must skip
// the dead stretch in one hop instead of spinning empty epoch windows,
// and every clock must land exactly on the deadline.
func TestPartitionIdleFastForward(t *testing.T) {
	ps := NewPartitionSet(time.Minute)
	k0 := NewKernel()
	k1 := NewKernel()
	p0 := ps.Add(k0)
	p1 := ps.Add(k1)
	var got []string
	collectDeliveries(p1, &got)
	_ = p0
	// One event a year out; a naive fixed grid would grind through half a
	// million one-minute windows.
	k0.ScheduleAt(Epoch.AddDate(1, 0, 0), "late", func() { p0.Send(1, "late", nil) })
	deadline := Epoch.AddDate(1, 0, 1)
	if err := ps.RunUntil(deadline, 1); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("deliveries = %v, want 1", got)
	}
	for i, k := range []*Kernel{k0, k1} {
		if !k.Now().Equal(deadline) {
			t.Errorf("partition %d clock = %s, want deadline", i, k.Now())
		}
	}
}

// TestPartitionCancelFanOut: a CancelRun landing on ONE shard of a
// partitioned run must tear down the whole set — siblings get the same
// cause, every shard's queue is released back to its pool, and the
// abort unwinds as a *Cancelled, exactly like a single supervised
// kernel (DESIGN.md §13/§14).
func TestPartitionCancelFanOut(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ps := NewPartitionSet(15 * time.Minute)
		kernels := make([]*Kernel, 3)
		for i := range kernels {
			k := NewKernel()
			kernels[i] = k
			p := ps.Add(k)
			p.OnDeliver(func(Message) {})
			k.Every(5*time.Minute, fmt.Sprintf("tick:%d", i), func() {})
		}
		// Partition 1 hits its own deadline mid-window: a deterministic
		// stand-in for the watchdog's cross-goroutine CancelRun.
		kernels[1].Schedule(30*time.Minute, "trip", func() {
			kernels[1].CancelRun(ErrDeadline)
		})
		var recovered any
		func() {
			defer func() { recovered = recover() }()
			_ = ps.RunUntil(Epoch.Add(4*time.Hour), workers)
		}()
		c, ok := AsCancelled(recovered)
		if !ok {
			t.Fatalf("workers=%d: run did not unwind as *Cancelled: %v", workers, recovered)
		}
		if !errors.Is(c, ErrDeadline) {
			t.Errorf("workers=%d: cause = %v, want ErrDeadline", workers, c.Cause)
		}
		for i, k := range kernels {
			if k.Pending() != 0 {
				t.Errorf("workers=%d: partition %d still has %d queued events after abort", workers, i, k.Pending())
			}
			if st := k.PoolStats(); !st.Balanced() {
				t.Errorf("workers=%d: partition %d pool leak: %+v", workers, i, st)
			}
			if k.CancelRequested() {
				t.Errorf("workers=%d: partition %d cancel left pending", workers, i)
			}
		}
	}
}

// TestPartitionCancelBetweenWindows: a cancel latched before the run
// starts (e.g. the process-wide shutdown path) is honoured before the
// first window opens, and still fans out.
func TestPartitionCancelBetweenWindows(t *testing.T) {
	ps := NewPartitionSet(time.Minute)
	var kernels []*Kernel
	for i := 0; i < 2; i++ {
		k := NewKernel()
		kernels = append(kernels, k)
		ps.Add(k).OnDeliver(func(Message) {})
		k.Schedule(time.Minute, "work", func() {})
	}
	kernels[1].CancelRun(nil)
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		_ = ps.RunUntil(Epoch.Add(time.Hour), 1)
	}()
	c, ok := AsCancelled(recovered)
	if !ok {
		t.Fatalf("run did not unwind as *Cancelled: %v", recovered)
	}
	if !errors.Is(c, ErrCancelled) {
		t.Errorf("cause = %v, want ErrCancelled", c.Cause)
	}
	for i, k := range kernels {
		if k.Pending() != 0 || !k.PoolStats().Balanced() {
			t.Errorf("partition %d not wound down: pending=%d pool=%+v", i, k.Pending(), k.PoolStats())
		}
	}
}

// TestPartitionSendMisuse: self-sends and out-of-range destinations are
// scenario bugs and fail loudly.
func TestPartitionSendMisuse(t *testing.T) {
	ps := NewPartitionSet(time.Minute)
	p0 := ps.Add(NewKernel())
	ps.Add(NewKernel())
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("self-send", func() { p0.Send(0, "x", nil) })
	mustPanic("out-of-range", func() { p0.Send(7, "x", nil) })
}

// TestPartitionNoHandlerPanics: mail for a partition that never called
// OnDeliver is a wiring bug, caught at the barrier with a clear message.
func TestPartitionNoHandlerPanics(t *testing.T) {
	ps := NewPartitionSet(time.Minute)
	k0 := NewKernel()
	p0 := ps.Add(k0)
	ps.Add(NewKernel()) // no handler
	k0.Schedule(time.Second, "send", func() { p0.Send(1, "orphan", nil) })
	defer func() {
		if recover() == nil {
			t.Fatal("delivery to handler-less partition did not panic")
		}
	}()
	_ = ps.RunUntil(Epoch.Add(time.Hour), 1)
}

// TestPartitionStats: the wall-clock shard accounting used by the
// runstats manifest counts each kernel's steps and sends.
func TestPartitionStats(t *testing.T) {
	ps := buildPingRing(2)
	if err := ps.RunUntil(Epoch.Add(time.Hour), 2); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	stats := ps.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats len = %d", len(stats))
	}
	for i, st := range stats {
		if st.Steps == 0 {
			t.Errorf("partition %d reported zero steps", i)
		}
		if st.Sent == 0 {
			t.Errorf("partition %d reported zero sends", i)
		}
		if st.Steps != ps.Partition(i).K.Steps() {
			t.Errorf("partition %d steps mismatch", i)
		}
	}
}

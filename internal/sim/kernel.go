// Package sim provides the deterministic discrete-event simulation kernel
// that every substrate in the cyber-range is built on.
//
// The kernel maintains a virtual clock and a priority queue of scheduled
// events. Events fire in timestamp order; ties are broken by scheduling
// sequence number so that runs are fully deterministic. All randomness in
// the range must come from the kernel's seeded RNG.
//
// Each kernel also carries the world's observability state: an
// obs.Registry of metrics (the kernel itself maintains the
// sim.event.schedule / sim.event.execute / sim.event.cancel counters;
// substrates register their own) and the structured Trace whose tagged
// records export as JSONL. Both are keyed to virtual time only, so runs
// with equal seeds produce byte-identical telemetry.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Epoch is the default virtual start time of a simulation: shortly before
// the Stuxnet campaign window described in the paper.
var Epoch = time.Date(2010, time.June, 1, 0, 0, 0, 0, time.UTC)

// ErrStopped is returned by Run variants when the kernel was stopped
// explicitly via Stop before the run condition was reached.
var ErrStopped = errors.New("sim: kernel stopped")

// Sample is one wall-clock-plane observation of a running kernel,
// delivered to a Probe from inside the hot loop. Everything in it is
// deterministic kernel state; what makes the probe plane "wall-clock" is
// that the *timing* of deliveries (every probeEvery steps of a run whose
// wall speed varies) is only meaningful against the real clock, and that
// nothing a Probe computes may ever flow back into obs registries or
// drift-gated artefacts (DESIGN.md §12).
type Sample struct {
	VNow       time.Time // kernel virtual clock at the sampled step
	Steps      uint64    // events executed so far
	Pending    int       // event-queue depth
	PoolFree   int       // recycled Event structs currently idle
	PoolHits   uint64    // schedules served from the free list
	PoolMisses uint64    // schedules that had to allocate
}

// Probe receives periodic kernel-loop samples on the wall-clock
// telemetry plane (internal/runstats). Implementations must only read
// the sample: they run on the kernel's goroutine, in the middle of the
// hot loop, and must not schedule events, touch the trace, or block.
type Probe interface {
	KernelSample(s Sample)
}

// Cause is the causal context an action runs under: the span that caused
// it and the infection vector that transition would use. The kernel keeps
// an ambient Cause that ScheduleAt captures into scheduled events and
// Step reinstates around their callbacks, so causality survives timer
// hops (spooler MOF droppers, scheduled wipers, beacon ticks).
type Cause struct {
	Span   obs.Span
	Vector string
}

// Event is a scheduled callback inside the simulation. Fired and
// cancelled Event structs are recycled through the kernel's free list, so
// code outside the kernel must hold a Timer (which detects recycling),
// never a bare *Event.
type Event struct {
	at    time.Time
	seq   uint64
	name  string
	fn    func()
	cause Cause
	index int // heap index; -1 once popped or cancelled
}

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// inert. A Timer stays safe to use after its event fires or is cancelled
// even though the kernel recycles Event structs: every operation checks
// the schedule sequence number stamped at creation, so a stale handle
// can never touch a recycled event that now belongs to someone else.
type Timer struct {
	ev  *Event
	seq uint64
}

// Active reports whether the event is still queued.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.index >= 0 && t.ev.seq == t.seq
}

// At returns the virtual fire time, or the zero time if the event already
// fired, was cancelled, or the Timer is zero.
func (t Timer) At() time.Time {
	if !t.Active() {
		return time.Time{}
	}
	return t.ev.at
}

// Name returns the debug name given at scheduling time, or "" once the
// event is no longer queued.
func (t Timer) Name() string {
	if !t.Active() {
		return ""
	}
	return t.ev.name
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Kernel is the discrete-event simulation core. It is not safe for
// concurrent use; the entire range is single-threaded and deterministic.
type Kernel struct {
	now   time.Time
	seq   uint64
	queue eventHeap
	// free recycles fired/cancelled Event structs. A 30,000-host timer
	// storm schedules millions of events; without the pool every one is a
	// fresh heap allocation that survives until the next GC cycle.
	free    []*Event
	rng     *RNG
	trace   *Trace
	stopped bool
	steps   uint64
	spans   uint64 // last span ID allocated by OpenSpan
	cause   Cause  // ambient causal context

	metrics *obs.Registry
	// Cached counter handles: scheduling and stepping are the hottest
	// paths in the range, so they must not pay a map lookup per event.
	mSchedule, mExecute, mCancel *obs.Counter
	// Profiling: per-handler-class execution counters (class = event name
	// up to the first ':', so host-suffixed names share one series) and a
	// histogram of virtual-time deltas between consecutive steps.
	handlerCounters map[string]*obs.Counter
	hVTDelta        *obs.Histogram
	lastStepAt      time.Time
	haveLastStep    bool
	// kernelEvents gates per-event trace records (schedule/execute/
	// cancel). Off by default: a 30,000-host fleet steps millions of
	// times and would evict every interesting record from the ring.
	kernelEvents bool

	// Wall-clock-plane sampling (DESIGN.md §12). probe is nil unless a
	// telemetry collector attached one, so the disabled hot-loop cost is
	// a single pointer check. poolHits/poolMisses/poolPuts are
	// deterministic bookkeeping of the free list, kept out of the obs
	// registry so the metrics snapshot bytes are independent of
	// telemetry. Get/put balance (hits+misses == puts once a run is
	// fully wound down) must hold even across an aborted run.
	probe      Probe
	probeEvery uint64
	poolHits   uint64
	poolMisses uint64
	poolPuts   uint64

	// cancelReq is the only cross-goroutine field on the kernel: a
	// pending CancelRun cause, honoured at the next step boundary
	// (cancel.go, DESIGN.md §13).
	cancelReq atomic.Pointer[cancelState]
	// lastHandler is the event-name class of the most recently executed
	// event, reported in abort diagnostics.
	lastHandler string
}

// Option configures a Kernel at construction time.
type Option func(*Kernel)

// WithStart sets the virtual start time (default Epoch).
func WithStart(t time.Time) Option {
	return func(k *Kernel) { k.now = t }
}

// WithSeed seeds the kernel RNG (default 1).
func WithSeed(seed uint64) Option {
	return func(k *Kernel) { k.rng = NewRNG(seed) }
}

// WithTraceCapacity sets the trace ring-buffer capacity (default 4096).
func WithTraceCapacity(n int) Option {
	return func(k *Kernel) { k.trace = NewTrace(n) }
}

// WithKernelEvents enables per-event trace records for every schedule,
// execute and cancel (category CatKernel). Debug aid; the counters in
// Metrics are always maintained regardless.
func WithKernelEvents(v bool) Option {
	return func(k *Kernel) { k.kernelEvents = v }
}

// NewKernel returns a kernel positioned at Epoch with a seeded RNG.
func NewKernel(opts ...Option) *Kernel {
	k := &Kernel{
		now:     Epoch,
		rng:     NewRNG(1),
		trace:   NewTrace(4096),
		metrics: obs.NewRegistry(),
	}
	k.mSchedule = k.metrics.Counter("sim.event.schedule")
	k.mExecute = k.metrics.Counter("sim.event.execute")
	k.mCancel = k.metrics.Counter("sim.event.cancel")
	k.handlerCounters = make(map[string]*obs.Counter)
	k.hVTDelta = k.metrics.Histogram("sim.step.vtdelta-seconds", VTDeltaBuckets)
	for _, opt := range opts {
		opt(k)
	}
	return k
}

// VTDeltaBuckets is the bucket layout of the sim.step.vtdelta-seconds
// histogram: virtual-time gaps between consecutive steps, from sub-second
// bursts to multi-day quiet stretches.
var VTDeltaBuckets = []float64{0, 1, 60, 600, 3600, 6 * 3600, 24 * 3600, 7 * 24 * 3600}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// Trace returns the kernel's structured trace log.
func (k *Kernel) Trace() *Trace { return k.trace }

// Metrics returns the kernel's metrics registry. Substrates register
// their counters, gauges and histograms here; names follow the
// subsystem.noun.verb convention (DESIGN.md §6).
func (k *Kernel) Metrics() *obs.Registry { return k.metrics }

// Steps reports how many events have been executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// SpanCount reports how many causal spans OpenSpan has allocated. Result
// capture uses it to offset span IDs when merging multi-kernel traces.
func (k *Kernel) SpanCount() uint64 { return k.spans }

// Cause returns the ambient causal context.
func (k *Kernel) Cause() Cause { return k.cause }

// WithCause runs fn with c installed as the ambient causal context,
// restoring the previous context (and the trace's ambient span stamp)
// afterwards. Use it to attribute a synchronous action — an exploit
// delivering a dropper, an update MITM, a C&C order being applied — to
// the episode that caused it.
func (k *Kernel) WithCause(c Cause, fn func()) {
	prev := k.cause
	k.cause = c
	k.trace.setAmbient(c.Span)
	fn()
	k.cause = prev
	k.trace.setAmbient(prev.Span)
}

// OpenSpan allocates a new causal episode and emits its opening trace
// record. The parent is the ambient cause's span (zero makes this a
// root); the edge vector is the explicit vector argument, falling back
// to the ambient cause's vector, then "root". The opening record carries
// the vector as a tag so provenance reconstruction can label edges.
//
// OpenSpan does NOT install the new span as the ambient cause — callers
// wrap the actions belonging to the episode in WithCause explicitly.
func (k *Kernel) OpenSpan(cat Category, actor, msg, vector string, tags ...obs.Tag) obs.Span {
	k.spans++
	span := obs.Span(k.spans)
	parent := k.cause.Span
	if vector == "" {
		vector = k.cause.Vector
	}
	if vector == "" {
		vector = "root"
	}
	all := make([]obs.Tag, 0, len(tags)+1)
	all = append(all, obs.T("vector", vector))
	all = append(all, tags...)
	k.trace.EmitSpan(k.now, cat, actor, msg, span, parent, all...)
	return span
}

// Pending reports how many events are waiting in the queue.
func (k *Kernel) Pending() int { return len(k.queue) }

// NextEventAt returns the virtual timestamp of the earliest queued
// event, or false when the queue is empty. The epoch coordinator uses
// it to skip idle stretches in one hop (partition.go).
func (k *Kernel) NextEventAt() (time.Time, bool) {
	if len(k.queue) == 0 {
		return time.Time{}, false
	}
	return k.queue[0].at, true
}

// PoolStat is the event free list's get/put ledger. Gets (Hits+Misses)
// count Schedule calls; Puts count events returned to the pool — fired,
// cancelled, or released by an aborted run. Once a kernel is fully wound
// down (queue empty or run aborted), Hits+Misses == Puts: a supervisor
// abort must not leak pooled events (DESIGN.md §13).
type PoolStat struct {
	Hits   uint64 // schedules served from the free list
	Misses uint64 // schedules that had to allocate
	Puts   uint64 // events returned to the free list
	Free   int    // structs idle in the free list right now
}

// Balanced reports whether every scheduled event has been returned to
// the pool (no events queued or leaked).
func (s PoolStat) Balanced() bool { return s.Hits+s.Misses == s.Puts }

// PoolStats reports the free list's get/put ledger. The counts are
// deterministic (they follow the schedule/fire sequence exactly) but
// live outside the obs registry: they describe the runtime's memory
// behaviour, not the simulated world.
func (k *Kernel) PoolStats() PoolStat {
	return PoolStat{Hits: k.poolHits, Misses: k.poolMisses, Puts: k.poolPuts, Free: len(k.free)}
}

// DefaultProbeEvery is the sampling cadence SetProbe installs when the
// caller passes every <= 0: one sample per 1024 executed events keeps
// the hot-loop cost of an attached probe under 0.1%.
const DefaultProbeEvery = 1024

// SetProbe installs a wall-clock telemetry probe, sampled every `every`
// executed events (<= 0 selects DefaultProbeEvery). A nil probe detaches.
// The probe plane is read-only: installing one never changes scheduling,
// tracing, metrics, or RNG draws, so outputs stay byte-identical
// (asserted by TestProbeDoesNotPerturbDeterminism).
func (k *Kernel) SetProbe(p Probe, every uint64) {
	if every == 0 {
		every = DefaultProbeEvery
	}
	k.probe = p
	k.probeEvery = every
}

// teeProbe fans one sample stream out to two probes in attach order.
type teeProbe struct{ a, b Probe }

func (t teeProbe) KernelSample(s Sample) {
	t.a.KernelSample(s)
	t.b.KernelSample(s)
}

// AttachProbe chains p onto whatever probe is already installed; every
// delivered sample reaches both. The effective cadence becomes the
// smaller of the existing and requested `every` (<= 0 selects
// DefaultProbeEvery). The telemetry collector and the stall watchdog
// both ride the same hook this way without knowing about each other.
func (k *Kernel) AttachProbe(p Probe, every uint64) {
	if p == nil {
		return
	}
	if every == 0 {
		every = DefaultProbeEvery
	}
	if k.probe == nil {
		k.probe = p
		k.probeEvery = every
		return
	}
	if every < k.probeEvery {
		k.probeEvery = every
	}
	k.probe = teeProbe{a: k.probe, b: p}
}

// FlushProbe delivers one final sample to the attached probe (no-op
// without one). Callers flush after a run so the tail of a workload —
// up to probeEvery-1 steps — is not lost from wall-clock totals.
func (k *Kernel) FlushProbe() {
	if k.probe == nil {
		return
	}
	k.probe.KernelSample(k.sample())
}

// sample snapshots the probe-visible kernel state.
func (k *Kernel) sample() Sample {
	return Sample{
		VNow:       k.now,
		Steps:      k.steps,
		Pending:    len(k.queue),
		PoolFree:   len(k.free),
		PoolHits:   k.poolHits,
		PoolMisses: k.poolMisses,
	}
}

// Schedule enqueues fn to run after delay d. Negative delays are treated as
// zero. The returned Timer may be passed to Cancel.
func (k *Kernel) Schedule(d time.Duration, name string, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return k.ScheduleAt(k.now.Add(d), name, fn)
}

// ScheduleAt enqueues fn to run at virtual time t. Times in the past are
// clamped to now.
func (k *Kernel) ScheduleAt(t time.Time, name string, fn func()) Timer {
	if fn == nil {
		panic("sim: ScheduleAt with nil fn")
	}
	if t.Before(k.now) {
		t = k.now
	}
	k.seq++
	var ev *Event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		*ev = Event{at: t, seq: k.seq, name: name, fn: fn, cause: k.cause}
		k.poolHits++
	} else {
		ev = &Event{at: t, seq: k.seq, name: name, fn: fn, cause: k.cause}
		k.poolMisses++
	}
	heap.Push(&k.queue, ev)
	k.mSchedule.Inc()
	if k.kernelEvents {
		k.trace.Emit(k.now, CatKernel, "kernel", "schedule "+name, obs.Ti("seq", int64(ev.seq)))
	}
	return Timer{ev: ev, seq: ev.seq}
}

// release clears a popped or cancelled event and returns its struct to
// the free list. Nilling the closure (and the name string) matters: a
// fired event's fn captures hosts, drives and implant state, and a
// retained pointer in the queue's backing array would keep entire
// infection chains alive for the rest of the run.
func (k *Kernel) release(ev *Event) {
	ev.fn = nil
	ev.name = ""
	ev.cause = Cause{}
	k.poolPuts++
	k.free = append(k.free, ev)
}

// Every schedules fn to run repeatedly with the given period, starting one
// period from now, until the returned cancel function is called. Cancelling
// also removes the already-scheduled next tick from the queue, so Pending
// drops immediately and Drain never burns steps on dead ticks.
func (k *Kernel) Every(period time.Duration, name string, fn func()) (cancel func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive period %v", period))
	}
	stopped := false
	var pending Timer
	var tick func()
	tick = func() {
		pending = Timer{}
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = k.Schedule(period, name, tick)
		}
	}
	pending = k.Schedule(period, name, tick)
	return func() {
		stopped = true
		k.Cancel(pending)
		pending = Timer{}
	}
}

// Cancel removes a previously scheduled event. Cancelling a Timer whose
// event already fired (or was already cancelled), or the zero Timer, is a
// no-op — the sequence check makes stale handles inert even after the
// Event struct is recycled.
func (k *Kernel) Cancel(t Timer) {
	if !t.Active() {
		return
	}
	ev := t.ev
	heap.Remove(&k.queue, ev.index)
	ev.index = -1
	k.mCancel.Inc()
	if k.kernelEvents {
		k.trace.Emit(k.now, CatKernel, "kernel", "cancel "+ev.name, obs.Ti("seq", int64(ev.seq)))
	}
	k.release(ev)
}

// Stop halts the current Run call after the in-flight event completes.
// When no run is active, the stop is latched: the next RunUntil/RunFor/
// Drain call aborts immediately without executing any event. Each run
// consumes the latch on exit, so a stopped run never poisons the one
// after it.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed. A pending
// CancelRun is honoured here, before the next event is popped — the
// step boundary is the only place a supervised run may be torn down
// (the abort unwinds as a *Cancelled panic; see cancel.go).
func (k *Kernel) Step() bool {
	k.abortIfCancelled()
	if len(k.queue) == 0 {
		return false
	}
	ev := heap.Pop(&k.queue).(*Event)
	if k.haveLastStep {
		k.hVTDelta.Observe(ev.at.Sub(k.lastStepAt).Seconds())
	}
	k.lastStepAt = ev.at
	k.haveLastStep = true
	k.now = ev.at
	k.steps++
	k.mExecute.Inc()
	k.handlerCounter(ev.name).Inc()
	if k.probe != nil && k.steps%k.probeEvery == 0 {
		k.probe.KernelSample(k.sample())
	}
	if k.kernelEvents {
		k.trace.Emit(k.now, CatKernel, "kernel", "execute "+ev.name, obs.Ti("seq", int64(ev.seq)))
	}
	k.lastHandler = ev.name
	// Reinstate the causal context captured at scheduling time, so work
	// done inside timer callbacks attributes to the episode that armed
	// the timer. The callback is read out before it runs because the
	// struct is recycled (and its closure dropped) as soon as it returns.
	fn := ev.fn
	prev := k.cause
	k.cause = ev.cause
	k.trace.setAmbient(ev.cause.Span)
	k.release(ev)
	fn()
	k.cause = prev
	k.trace.setAmbient(prev.Span)
	return true
}

// handlerCounter returns the profiling counter for an event name's
// handler class — the name up to the first ':' (host-suffixed schedules
// like "task:wipe@WS-1" share one series, keeping cardinality bounded at
// fleet scale). The class is sanitized to the metric charset on first
// use and the handle cached, so Step pays one short map lookup.
func (k *Kernel) handlerCounter(name string) *obs.Counter {
	class := name
	if i := strings.IndexByte(class, ':'); i >= 0 {
		class = class[:i]
	}
	if c, ok := k.handlerCounters[class]; ok {
		return c
	}
	c := k.metrics.Counter("sim.handler." + sanitizeMetricWord(class) + ".execute")
	k.handlerCounters[class] = c
	return c
}

// sanitizeMetricWord maps an arbitrary event-name class onto the metric
// charset (lowercase, digits, '.', '_', '-').
func sanitizeMetricWord(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		case c >= 'A' && c <= 'Z':
			b[i] = c + ('a' - 'A')
		default:
			b[i] = '-'
		}
	}
	if len(b) == 0 {
		return "unnamed"
	}
	return string(b)
}

// RunUntil executes events until the queue is empty, the kernel is stopped,
// or the next event would fire after deadline. The clock is advanced to
// deadline when the run completes normally with time left.
func (k *Kernel) RunUntil(deadline time.Time) error {
	for !k.stopped {
		if len(k.queue) == 0 {
			break
		}
		if k.queue[0].at.After(deadline) {
			break
		}
		k.Step()
	}
	if k.stopped {
		k.stopped = false
		return ErrStopped
	}
	if k.now.Before(deadline) {
		k.now = deadline
	}
	return nil
}

// RunFor is RunUntil(now + d).
func (k *Kernel) RunFor(d time.Duration) error {
	return k.RunUntil(k.now.Add(d))
}

// Drain executes events until the queue is empty or maxSteps events have
// run. It returns the number of events executed. Use a sensible maxSteps to
// guard against self-perpetuating schedules (periodic timers).
func (k *Kernel) Drain(maxSteps uint64) uint64 {
	var n uint64
	for n < maxSteps && !k.stopped {
		if !k.Step() {
			break
		}
		n++
	}
	k.stopped = false
	return n
}

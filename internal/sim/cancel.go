package sim

import (
	"errors"
	"fmt"
	"time"
)

// Run cancellation (DESIGN.md §13). A supervisor — the stall watchdog, a
// wall-clock deadline, or the signal handler — asks a running kernel to
// stop with CancelRun; the kernel honours the request at the next step
// boundary, between events, so no handler is ever torn mid-flight. The
// abort releases every still-queued pooled event (get/put balance holds
// even for aborted runs) and unwinds as a *Cancelled panic that the
// experiment runner converts into a partial RunReport. Cancellation is
// the only wall-clock-triggered control flow allowed to touch a kernel,
// and it may only ever abort: it writes nothing to the trace or the
// metrics registry, so completed experiments' bytes are unaffected by a
// sibling's abort.

// ErrCancelled is the generic cancellation cause used when CancelRun is
// given a nil cause.
var ErrCancelled = errors.New("sim: run cancelled")

// ErrStalled is the cancellation cause the vtime-stall watchdog uses: the
// kernel kept executing events but its virtual clock stopped advancing.
var ErrStalled = errors.New("sim: vtime stalled")

// ErrDeadline is the cancellation cause for per-experiment wall-clock
// deadlines.
var ErrDeadline = errors.New("sim: wall-clock deadline exceeded")

// Cancelled is the panic value an aborted run unwinds with. It carries
// the supervisor's cause and a Diagnostic snapshot taken on the kernel
// goroutine at the abort boundary.
type Cancelled struct {
	Cause error
	Diag  Diagnostic
}

// Error makes *Cancelled usable as an error after recovery.
func (c *Cancelled) Error() string {
	return fmt.Sprintf("%v (%s)", c.Cause, c.Diag)
}

// Unwrap exposes the supervisor's cause to errors.Is.
func (c *Cancelled) Unwrap() error { return c.Cause }

// AsCancelled reports whether a recovered panic value is a run
// cancellation.
func AsCancelled(r any) (*Cancelled, bool) {
	c, ok := r.(*Cancelled)
	return c, ok
}

// Diagnostic is the state dump attached to an aborted run: enough to see
// what the kernel was doing when the supervisor reaped it.
type Diagnostic struct {
	VNow        time.Time // virtual clock at the abort boundary
	Steps       uint64    // events executed before the abort
	Pending     int       // queue depth at the abort (before release)
	LastHandler string    // event-name class of the last executed event
	NextEvent   string    // name of the event that would have run next
	Spans       uint64    // causal spans opened so far
}

// String renders the dump as one line (folded into error text and the
// report's failure cell).
func (d Diagnostic) String() string {
	next := d.NextEvent
	if next == "" {
		next = "-"
	}
	last := d.LastHandler
	if last == "" {
		last = "-"
	}
	return fmt.Sprintf("vtime %s, %d steps, queue %d, last handler %q, next event %q, %d open spans",
		d.VNow.UTC().Format(time.RFC3339), d.Steps, d.Pending, last, next, d.Spans)
}

// cancelState carries a pending cancellation request across goroutines.
type cancelState struct{ cause error }

// CancelRun asks the kernel to abort its current (or next) run at the
// next step boundary with the given cause (nil selects ErrCancelled).
// Unlike every other Kernel method it is safe to call from any
// goroutine: supervisors run on the wall-clock plane. The first cause
// wins; later requests before the abort are ignored. The abort itself —
// releasing queued events and panicking with *Cancelled — happens on the
// kernel's own goroutine, deterministically between two events.
func (k *Kernel) CancelRun(cause error) {
	if cause == nil {
		cause = ErrCancelled
	}
	k.cancelReq.CompareAndSwap(nil, &cancelState{cause: cause})
}

// CancelRequested reports whether a cancellation is pending but not yet
// honoured (the kernel has not reached a step boundary since).
func (k *Kernel) CancelRequested() bool { return k.cancelReq.Load() != nil }

// Diagnostic snapshots the kernel's step-boundary state. Must only be
// called from the kernel's goroutine (it reads unsynchronised state).
func (k *Kernel) Diagnostic() Diagnostic {
	d := Diagnostic{
		VNow:        k.now,
		Steps:       k.steps,
		Pending:     len(k.queue),
		LastHandler: k.lastHandler,
		Spans:       k.spans,
	}
	if len(k.queue) > 0 {
		d.NextEvent = k.queue[0].name
	}
	return d
}

// takeCancel consumes a pending cancellation request, if any.
func (k *Kernel) takeCancel() *cancelState {
	c := k.cancelReq.Load()
	if c != nil && k.cancelReq.CompareAndSwap(c, nil) {
		return c
	}
	return nil
}

// abortIfCancelled honours a pending CancelRun at a step boundary:
// snapshot the diagnostic, return every queued event to the pool, and
// unwind. Nothing is written to the trace or metrics — the abort path
// must not observe-and-mutate the deterministic plane (DESIGN.md §13).
func (k *Kernel) abortIfCancelled() {
	c := k.takeCancel()
	if c == nil {
		return
	}
	diag := k.Diagnostic()
	k.releasePending()
	panic(&Cancelled{Cause: c.cause, Diag: diag})
}

// releasePending drains the queue back into the free list without
// executing or tracing anything, keeping pool get/put balance intact
// across an abort.
func (k *Kernel) releasePending() {
	for len(k.queue) > 0 {
		n := len(k.queue) - 1
		ev := k.queue[n]
		k.queue[n] = nil
		k.queue = k.queue[:n]
		ev.index = -1
		k.release(ev)
	}
}

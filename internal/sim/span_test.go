package sim

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func TestOpenSpanRootAndVectorFallback(t *testing.T) {
	k := NewKernel()
	sp := k.OpenSpan(CatInfect, "h1", "installed", "")
	if sp == 0 {
		t.Fatal("OpenSpan returned the zero span")
	}
	if k.SpanCount() != 1 {
		t.Fatalf("SpanCount = %d, want 1", k.SpanCount())
	}
	events := k.Trace().Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want the opening record", len(events))
	}
	e := events[0]
	if e.Span != sp || e.Parent != 0 {
		t.Fatalf("opening record span/parent = %d/%d, want %d/0", e.Span, e.Parent, sp)
	}
	// No explicit vector, no ambient cause: the root fallback.
	if v, _ := e.Get("vector"); v != "root" {
		t.Fatalf("vector = %q, want root", v)
	}
}

func TestOpenSpanInheritsAmbientParentAndVector(t *testing.T) {
	k := NewKernel()
	root := k.OpenSpan(CatInfect, "h1", "patient zero", "")
	var child obs.Span
	k.WithCause(Cause{Span: root, Vector: "usb-lnk"}, func() {
		child = k.OpenSpan(CatInfect, "h2", "second hop", "")
	})
	events := k.Trace().Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[1]
	if e.Span != child || e.Parent != root {
		t.Fatalf("child span/parent = %d/%d, want %d/%d", e.Span, e.Parent, child, root)
	}
	if v, _ := e.Get("vector"); v != "usb-lnk" {
		t.Fatalf("vector = %q, want inherited usb-lnk", v)
	}
	// An explicit vector wins over the ambient one.
	var third obs.Span
	k.WithCause(Cause{Span: root, Vector: "usb-lnk"}, func() {
		third = k.OpenSpan(CatExec, "h2", "payload", "keyed-payload")
	})
	e = k.Trace().Events()[2]
	if v, _ := e.Get("vector"); e.Span != third || v != "keyed-payload" {
		t.Fatalf("explicit vector lost: span=%d vector=%q", e.Span, v)
	}
}

func TestAmbientCauseStampsEmits(t *testing.T) {
	k := NewKernel()
	sp := k.OpenSpan(CatInfect, "h1", "installed", "")
	k.WithCause(Cause{Span: sp}, func() {
		k.Trace().Emit(k.Now(), CatExec, "h1", "in-episode detail")
	})
	k.Trace().Emit(k.Now(), CatExec, "h1", "outside")
	events := k.Trace().Events()
	if events[1].Span != sp || events[1].Parent != 0 {
		t.Fatalf("in-episode record span/parent = %d/%d, want %d/0", events[1].Span, events[1].Parent, sp)
	}
	if events[2].Span != 0 {
		t.Fatalf("record outside WithCause carries span %d", events[2].Span)
	}
}

func TestScheduleCapturesCauseAcrossTimerHop(t *testing.T) {
	k := NewKernel()
	sp := k.OpenSpan(CatInfect, "h1", "installed", "")
	var fired obs.Span
	k.WithCause(Cause{Span: sp, Vector: "trigger-timer"}, func() {
		k.Schedule(time.Hour, "detonate", func() {
			fired = k.Cause().Span
			k.Trace().Emit(k.Now(), CatWipe, "h1", "boom")
		})
	})
	// Outside the cause scope now; the hop must restore it inside the
	// handler only.
	if k.Cause().Span != 0 {
		t.Fatal("cause leaked out of WithCause")
	}
	k.Drain(100)
	if fired != sp {
		t.Fatalf("handler saw span %d, want %d", fired, sp)
	}
	events := k.Trace().Events()
	last := events[len(events)-1]
	if last.Span != sp {
		t.Fatalf("scheduled emit span = %d, want %d", last.Span, sp)
	}
	if k.Cause().Span != 0 {
		t.Fatal("cause not restored after Step")
	}
}

func TestWithCauseNestsAndRestores(t *testing.T) {
	k := NewKernel()
	a := k.OpenSpan(CatInfect, "h1", "a", "")
	b := k.OpenSpan(CatInfect, "h2", "b", "")
	k.WithCause(Cause{Span: a}, func() {
		k.WithCause(Cause{Span: b}, func() {
			if k.Cause().Span != b {
				t.Fatalf("inner cause = %d", k.Cause().Span)
			}
		})
		if k.Cause().Span != a {
			t.Fatalf("outer cause not restored: %d", k.Cause().Span)
		}
	})
	if k.Cause().Span != 0 {
		t.Fatal("cause not cleared at top level")
	}
}

func TestSpanSkeletonSurvivesRingEviction(t *testing.T) {
	k := NewKernel(WithTraceCapacity(4))
	root := k.OpenSpan(CatInfect, "h0", "root", "")
	var child obs.Span
	k.WithCause(Cause{Span: root, Vector: "psexec"}, func() {
		child = k.OpenSpan(CatInfect, "h1", "hop", "")
	})
	// Flood the ring far past capacity.
	for i := 0; i < 64; i++ {
		k.Trace().Emit(k.Now(), CatExec, "noise", "tick")
	}
	var sawRoot, sawChild bool
	for _, e := range k.Trace().Events() {
		if e.Span == root && e.Parent == 0 {
			sawRoot = true
		}
		if e.Span == child && e.Parent == root {
			sawChild = true
		}
	}
	if !sawRoot || !sawChild {
		t.Fatalf("opening records evicted with the ring: root=%v child=%v", sawRoot, sawChild)
	}
	// The merged stream must stay seq-sorted.
	events := k.Trace().Events()
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("merged stream out of seq order at %d", i)
		}
	}
}

func TestMutedTraceStillAllocatesSpans(t *testing.T) {
	k := NewKernel()
	k.Trace().SetMuted(true)
	sp := k.OpenSpan(CatInfect, "h1", "installed", "")
	if sp != 1 || k.SpanCount() != 1 {
		t.Fatalf("span=%d count=%d; muted kernels must keep allocation parity", sp, k.SpanCount())
	}
	if n := len(k.Trace().Events()); n != 0 {
		t.Fatalf("muted trace retained %d records", n)
	}
}

func TestHandlerProfilingCounters(t *testing.T) {
	k := NewKernel()
	k.Schedule(time.Second, "mof:WS-1", func() {})
	k.Schedule(2*time.Second, "mof:WS-2", func() {})
	k.Schedule(time.Hour, "beacon", func() {})
	k.Drain(100)
	snap := k.Metrics().Snapshot()
	if got := snap.Counters["sim.handler.mof.execute"]; got != 2 {
		t.Fatalf("sim.handler.mof.execute = %v, want 2", got)
	}
	if got := snap.Counters["sim.handler.beacon.execute"]; got != 1 {
		t.Fatalf("sim.handler.beacon.execute = %v, want 1", got)
	}
	h, ok := snap.Histograms["sim.step.vtdelta-seconds"]
	if !ok {
		t.Fatal("vtdelta histogram missing")
	}
	// Three steps: deltas 1s, 1s, 3598s observed after the first step.
	if h.Count != 2 {
		t.Fatalf("vtdelta count = %d, want 2 (gaps between 3 steps)", h.Count)
	}
	if h.Sum != 1+3598 {
		t.Fatalf("vtdelta sum = %v, want 3599", h.Sum)
	}
}

func TestSanitizeMetricWord(t *testing.T) {
	for in, want := range map[string]string{
		"mof":          "mof",
		"Flame Beacon": "flame-beacon",
		"":             "unnamed",
		"usb@host":     "usb-host",
	} {
		if got := sanitizeMetricWord(in); got != want {
			t.Fatalf("sanitizeMetricWord(%q) = %q, want %q", in, got, want)
		}
	}
}

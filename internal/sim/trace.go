package sim

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/obs"
)

// Category classifies trace records so analyses (and tests) can filter the
// event stream without string matching on messages.
type Category string

// Well-known trace categories used across the range.
const (
	CatExec      Category = "exec"      // process/sample execution
	CatInfect    Category = "infect"    // successful compromise of a host
	CatSpread    Category = "spread"    // propagation attempt
	CatExploit   Category = "exploit"   // exploit gate fired
	CatNetwork   Category = "network"   // network traffic
	CatC2        Category = "c2"        // command-and-control exchange
	CatExfil     Category = "exfil"     // data theft
	CatPLC       Category = "plc"       // industrial process events
	CatWipe      Category = "wipe"      // destructive action
	CatDefense   Category = "defense"   // security product activity
	CatCert      Category = "cert"      // certificate operations
	CatSuicide   Category = "suicide"   // self-removal
	CatBluetooth Category = "bluetooth" // bluetooth activity
	CatUSB       Category = "usb"       // removable media activity
	CatFault     Category = "fault"     // injected adversity (takedown, crash, sweep)
	CatKernel    Category = "kernel"    // scheduler internals (WithKernelEvents)
	CatAlert     Category = "alert"     // detection rule firing (internal/detect)
	CatUser      Category = "user"      // benign user activity (internal/users)
)

// Record is one structured trace entry: a timestamped, tagged event.
// Seq is assigned by the owning Trace and, with At, gives records a
// total order that survives export and concatenation.
//
// Span attributes the record to a causal episode (zero = unattributed);
// Parent is non-zero only on the record that opens the span, where it
// names the causing span.
type Record struct {
	At      time.Time
	Seq     uint64
	Cat     Category
	Actor   string // emitting component, e.g. host name or module name
	Message string
	Span    obs.Span
	Parent  obs.Span
	Tags    []obs.Tag
}

// Event converts the record to its export form.
func (r Record) Event() obs.Event {
	return obs.Event{
		At: r.At, Seq: r.Seq, Cat: string(r.Cat), Actor: r.Actor, Msg: r.Message,
		Span: r.Span, Parent: r.Parent, Tags: r.Tags,
	}
}

func (r Record) String() string {
	return fmt.Sprintf("%s [%s] %s: %s", r.At.Format(time.RFC3339), r.Cat, r.Actor, r.Message)
}

// Trace is a bounded ring buffer of Records plus running per-category
// counters. Counters are never evicted, so fleet-scale runs can rely on
// counts even after old records rotate out.
//
// Span-opening records (the first record of each causal episode, emitted
// by Kernel.OpenSpan) are additionally retained in an unbounded side
// index so ring eviction at fleet scale never orphans a provenance
// parent. Ordinary records are stamped with the ambient span installed
// by the kernel's causal context.
type Trace struct {
	records []Record
	next    int
	full    bool
	seq     uint64
	counts  map[Category]int
	muted   bool

	ambient obs.Span // stamped onto every Emit/Add record
	spans   []Record // span-opening records, seq-ascending, never evicted

	sinks []func(Record) // live subscribers, called on every record
}

// NewTrace returns a trace holding at most capacity records.
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{
		records: make([]Record, capacity),
		counts:  make(map[Category]int),
	}
}

// SetMuted disables (true) or enables (false) record retention. Counters
// still accumulate while muted; benchmarks use this to avoid log churn.
func (t *Trace) SetMuted(m bool) { t.muted = m }

// Live reports whether an emitted record would be observed by anyone:
// retained (unmuted) or forwarded to a subscriber. High-volume emitters
// of purely observational records — the benign user-activity layer emits
// one breadcrumb per action across tens of thousands of hosts — check
// this before paying for message formatting, so muted fleet benchmarks
// skip the cost entirely. Substrate events must NOT be gated on it:
// their counters and side effects are part of the simulation.
func (t *Trace) Live() bool { return !t.muted || len(t.sinks) > 0 }

// Subscribe registers a sink called synchronously with every record as
// it is emitted — ring eviction and muting do not apply, so a live
// detector sees the full stream even at fleet scale. Sinks run on the
// emitting goroutine in emission order; a sink that emits back into the
// trace (an alert, say) must guard against re-entering itself.
func (t *Trace) Subscribe(fn func(Record)) { t.sinks = append(t.sinks, fn) }

// publish fans a freshly-stamped record out to subscribers.
func (t *Trace) publish(r Record) {
	for _, fn := range t.sinks {
		fn(r)
	}
}

// Add appends a record built from a format string.
func (t *Trace) Add(at time.Time, cat Category, actor, format string, args ...any) {
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	t.Emit(at, cat, actor, msg)
}

// Emit appends a tagged record. The message is taken verbatim; tags are
// retained in order and appear in JSONL exports. The record is stamped
// with the ambient causal span (zero when no episode is active).
func (t *Trace) Emit(at time.Time, cat Category, actor, msg string, tags ...obs.Tag) {
	t.counts[cat]++
	t.seq++
	rec := Record{At: at, Seq: t.seq, Cat: cat, Actor: actor, Message: msg, Span: t.ambient, Tags: tags}
	if !t.muted {
		t.records[t.next] = rec
		t.next++
		if t.next == len(t.records) {
			t.next = 0
			t.full = true
		}
	}
	if len(t.sinks) > 0 {
		t.publish(rec)
	}
}

// EmitSpan appends the record that opens causal episode span, caused by
// parent (zero for a root). Opening records are retained in the
// unbounded span index — not the ring — so provenance reconstruction
// can always resolve parents even after ring eviction.
func (t *Trace) EmitSpan(at time.Time, cat Category, actor, msg string, span, parent obs.Span, tags ...obs.Tag) {
	t.counts[cat]++
	t.seq++
	rec := Record{
		At: at, Seq: t.seq, Cat: cat, Actor: actor, Message: msg,
		Span: span, Parent: parent, Tags: tags,
	}
	if !t.muted {
		t.spans = append(t.spans, rec)
	}
	if len(t.sinks) > 0 {
		t.publish(rec)
	}
}

// Count returns how many records of the category were ever added.
func (t *Trace) Count(cat Category) int { return t.counts[cat] }

// Records returns retained records in chronological order: the ring
// contents merged with the span index by sequence number.
func (t *Trace) Records() []Record {
	var ring []Record
	if !t.full {
		ring = t.records[:t.next]
	} else {
		ring = make([]Record, 0, len(t.records))
		ring = append(ring, t.records[t.next:]...)
		ring = append(ring, t.records[:t.next]...)
	}
	if len(t.spans) == 0 {
		out := make([]Record, len(ring))
		copy(out, ring)
		return out
	}
	// Two-way merge: both slices are seq-ascending.
	out := make([]Record, 0, len(ring)+len(t.spans))
	i, j := 0, 0
	for i < len(ring) && j < len(t.spans) {
		if ring[i].Seq < t.spans[j].Seq {
			out = append(out, ring[i])
			i++
		} else {
			out = append(out, t.spans[j])
			j++
		}
	}
	out = append(out, ring[i:]...)
	out = append(out, t.spans[j:]...)
	return out
}

// setAmbient installs the span stamped onto subsequent Emit/Add records.
func (t *Trace) setAmbient(s obs.Span) { t.ambient = s }

// Filter returns retained records matching the category, in order.
func (t *Trace) Filter(cat Category) []Record {
	var out []Record
	for _, r := range t.Records() {
		if r.Cat == cat {
			out = append(out, r)
		}
	}
	return out
}

// Find returns retained records whose message contains substr.
func (t *Trace) Find(substr string) []Record {
	var out []Record
	for _, r := range t.Records() {
		if strings.Contains(r.Message, substr) {
			out = append(out, r)
		}
	}
	return out
}

// Dump renders all retained records, one per line.
func (t *Trace) Dump() string {
	var b strings.Builder
	for _, r := range t.Records() {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Events returns retained records in chronological order in their
// export form.
func (t *Trace) Events() []obs.Event {
	recs := t.Records()
	out := make([]obs.Event, len(recs))
	for i, r := range recs {
		out[i] = r.Event()
	}
	return out
}

// WriteJSONL exports the retained records as JSON lines. Only virtual
// time appears in the output, so equal-seed runs export identical bytes.
func (t *Trace) WriteJSONL(w io.Writer) error {
	return obs.WriteJSONL(w, t.Events())
}

package sim

import (
	"fmt"
	"strings"
	"time"
)

// Category classifies trace records so analyses (and tests) can filter the
// event stream without string matching on messages.
type Category string

// Well-known trace categories used across the range.
const (
	CatExec      Category = "exec"      // process/sample execution
	CatInfect    Category = "infect"    // successful compromise of a host
	CatSpread    Category = "spread"    // propagation attempt
	CatExploit   Category = "exploit"   // exploit gate fired
	CatNetwork   Category = "network"   // network traffic
	CatC2        Category = "c2"        // command-and-control exchange
	CatExfil     Category = "exfil"     // data theft
	CatPLC       Category = "plc"       // industrial process events
	CatWipe      Category = "wipe"      // destructive action
	CatDefense   Category = "defense"   // security product activity
	CatCert      Category = "cert"      // certificate operations
	CatSuicide   Category = "suicide"   // self-removal
	CatBluetooth Category = "bluetooth" // bluetooth activity
	CatUSB       Category = "usb"       // removable media activity
)

// Record is one structured trace entry.
type Record struct {
	At      time.Time
	Cat     Category
	Actor   string // emitting component, e.g. host name or module name
	Message string
}

func (r Record) String() string {
	return fmt.Sprintf("%s [%s] %s: %s", r.At.Format(time.RFC3339), r.Cat, r.Actor, r.Message)
}

// Trace is a bounded ring buffer of Records plus running per-category
// counters. Counters are never evicted, so fleet-scale runs can rely on
// counts even after old records rotate out.
type Trace struct {
	records []Record
	next    int
	full    bool
	counts  map[Category]int
	muted   bool
}

// NewTrace returns a trace holding at most capacity records.
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{
		records: make([]Record, capacity),
		counts:  make(map[Category]int),
	}
}

// SetMuted disables (true) or enables (false) record retention. Counters
// still accumulate while muted; benchmarks use this to avoid log churn.
func (t *Trace) SetMuted(m bool) { t.muted = m }

// Add appends a record.
func (t *Trace) Add(at time.Time, cat Category, actor, format string, args ...any) {
	t.counts[cat]++
	if t.muted {
		return
	}
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	t.records[t.next] = Record{At: at, Cat: cat, Actor: actor, Message: msg}
	t.next++
	if t.next == len(t.records) {
		t.next = 0
		t.full = true
	}
}

// Count returns how many records of the category were ever added.
func (t *Trace) Count(cat Category) int { return t.counts[cat] }

// Records returns retained records in chronological order.
func (t *Trace) Records() []Record {
	if !t.full {
		out := make([]Record, t.next)
		copy(out, t.records[:t.next])
		return out
	}
	out := make([]Record, 0, len(t.records))
	out = append(out, t.records[t.next:]...)
	out = append(out, t.records[:t.next]...)
	return out
}

// Filter returns retained records matching the category, in order.
func (t *Trace) Filter(cat Category) []Record {
	var out []Record
	for _, r := range t.Records() {
		if r.Cat == cat {
			out = append(out, r)
		}
	}
	return out
}

// Find returns retained records whose message contains substr.
func (t *Trace) Find(substr string) []Record {
	var out []Record
	for _, r := range t.Records() {
		if strings.Contains(r.Message, substr) {
			out = append(out, r)
		}
	}
	return out
}

// Dump renders all retained records, one per line.
func (t *Trace) Dump() string {
	var b strings.Builder
	for _, r := range t.Records() {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

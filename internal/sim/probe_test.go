package sim

import (
	"testing"
	"time"
)

// recordingProbe counts deliveries into plain fields; it allocates
// nothing per sample, so the alloc tests below isolate the kernel's own
// hot-loop cost.
type recordingProbe struct {
	samples    int
	lastSteps  uint64
	lastVNow   time.Time
	maxPending int
	hits       uint64
	misses     uint64
}

func (p *recordingProbe) KernelSample(s Sample) {
	p.samples++
	p.lastSteps = s.Steps
	p.lastVNow = s.VNow
	if s.Pending > p.maxPending {
		p.maxPending = s.Pending
	}
	p.hits = s.PoolHits
	p.misses = s.PoolMisses
}

// TestProbeSamplingCadence pins the contract: one sample per `every`
// executed events, plus whatever FlushProbe delivers at the end.
func TestProbeSamplingCadence(t *testing.T) {
	k := NewKernel()
	p := &recordingProbe{}
	k.SetProbe(p, 10)
	for i := 0; i < 95; i++ {
		k.Schedule(time.Duration(i)*time.Second, "tick", func() {})
	}
	k.Drain(1000)
	if p.samples != 9 {
		t.Fatalf("samples = %d after 95 steps at every=10, want 9", p.samples)
	}
	if p.lastSteps != 90 {
		t.Fatalf("last sampled step = %d, want 90", p.lastSteps)
	}
	k.FlushProbe()
	if p.samples != 10 || p.lastSteps != 95 {
		t.Fatalf("flush: samples=%d lastSteps=%d, want 10/95", p.samples, p.lastSteps)
	}
	if p.lastVNow != k.Now() {
		t.Fatalf("flushed VNow = %v, want kernel now %v", p.lastVNow, k.Now())
	}
}

// TestProbeDefaultCadence: every <= 0 selects DefaultProbeEvery.
func TestProbeDefaultCadence(t *testing.T) {
	k := NewKernel()
	k.SetProbe(&recordingProbe{}, 0)
	if k.probeEvery != DefaultProbeEvery {
		t.Fatalf("probeEvery = %d, want %d", k.probeEvery, DefaultProbeEvery)
	}
}

// TestPoolStatsAccounting pins hit/miss bookkeeping: first schedules
// allocate (misses), steady-state schedules recycle (hits), and the
// probe sees the same numbers PoolStats reports.
func TestPoolStatsAccounting(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	k.Schedule(time.Second, "a", fn)
	k.Step()
	k.Schedule(time.Second, "b", fn) // reuses a's struct
	k.Step()
	ps := k.PoolStats()
	if ps.Hits != 1 || ps.Misses != 1 {
		t.Fatalf("PoolStats = %d hits / %d misses, want 1/1", ps.Hits, ps.Misses)
	}
	if !ps.Balanced() {
		t.Fatalf("pool unbalanced after drained run: %+v", ps)
	}
	p := &recordingProbe{}
	k.SetProbe(p, 1)
	k.FlushProbe()
	if p.hits != ps.Hits || p.misses != ps.Misses {
		t.Fatalf("probe saw %d/%d, PoolStats says %d/%d", p.hits, p.misses, ps.Hits, ps.Misses)
	}
}

// TestProbeDoesNotPerturbDeterminism replays the pool-churn workload
// with and without an attached probe and requires identical execution
// order, metrics, and trace bytes — the probe plane is read-only.
func TestProbeDoesNotPerturbDeterminism(t *testing.T) {
	run := func(attach bool) (uint64, string, string) {
		k := NewKernel(WithSeed(7))
		if attach {
			k.SetProbe(&recordingProbe{}, 16)
		}
		for i := 0; i < 300; i++ {
			d := time.Duration(1+k.RNG().Intn(3600)) * time.Second
			k.Schedule(d, "churn", func() {
				if k.RNG().Bool(0.5) {
					k.Trace().Add(k.Now(), CatKernel, "t", "spawn")
					k.Schedule(time.Duration(1+k.RNG().Intn(600))*time.Second, "child", func() {})
				}
			})
		}
		k.Drain(10_000)
		var events []string
		for _, e := range k.Trace().Events() {
			events = append(events, e.Msg)
		}
		return k.Steps(), k.Metrics().Snapshot().Text(), join(events)
	}
	s1, m1, t1 := run(false)
	s2, m2, t2 := run(true)
	if s1 != s2 || m1 != m2 || t1 != t2 {
		t.Fatalf("probe perturbed the run: steps %d vs %d, metrics equal=%v, trace equal=%v",
			s1, s2, m1 == m2, t1 == t2)
	}
}

func join(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s + "\n"
	}
	return out
}

// TestProbeDisabledPathAllocs is the acceptance-criteria gate: with no
// probe attached (the default), the sampling hook must add zero
// allocations to the schedule/fire hot loop.
func TestProbeDisabledPathAllocs(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	allocs := testing.AllocsPerRun(1000, func() {
		k.Schedule(time.Second, "steady", fn)
		k.Step()
	})
	if allocs > 0 {
		t.Fatalf("disabled-probe schedule/fire allocates %.1f objects per op, want 0", allocs)
	}
}

// TestProbeEnabledPathAllocs: even with a probe attached and sampling
// every step, the kernel side of delivery is allocation-free (the Sample
// struct is passed by value, never boxed).
func TestProbeEnabledPathAllocs(t *testing.T) {
	k := NewKernel()
	k.SetProbe(&recordingProbe{}, 1)
	fn := func() {}
	allocs := testing.AllocsPerRun(1000, func() {
		k.Schedule(time.Second, "steady", fn)
		k.Step()
	})
	if allocs > 0 {
		t.Fatalf("enabled-probe schedule/fire allocates %.1f objects per op, want 0", allocs)
	}
}

// BenchmarkScheduleFireProbed is BenchmarkScheduleFire's probed twin:
// the delta between the two is the cost of live telemetry sampling.
func BenchmarkScheduleFireProbed(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	k.SetProbe(&recordingProbe{}, DefaultProbeEvery)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(time.Second, "bench", fn)
		k.Step()
	}
}

package runstats

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// Manifest is the JSON run record `cyberlab profile` emits: one
// wall-clock profile of an invocation. Every field lives on the
// nondeterministic plane — the Plane/Note header says so in-band, so a
// manifest can never be mistaken for (or diffed like) a drift-gated
// artefact.
type Manifest struct {
	Plane string `json:"plane"` // always "wall-clock"
	Note  string `json:"note"`

	StartedAt  time.Time `json:"started_at"`
	WallSecs   float64   `json:"wall_seconds"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`

	Kernel      KernelStats      `json:"kernel"`
	Heap        HeapStats        `json:"heap"`
	Supervision SupervisionStats `json:"supervision"`
	// PartitionWall is the per-shard breakdown of a partitioned world
	// (DESIGN.md §14), in partition-index order; absent for
	// unpartitioned runs.
	PartitionWall []PartitionEntry `json:"partition_wall,omitempty"`
	Phases        []PhaseEntry     `json:"phases,omitempty"`
	// Experiments is the per-experiment wall-clock breakdown, in finish
	// order (nondeterministic under -parallel by nature).
	Experiments []ExperimentEntry `json:"experiments,omitempty"`
}

// KernelStats aggregates every sampled kernel's hot-loop telemetry.
// With a partitioned world (DESIGN.md §14) the aggregates sum across
// every shard kernel — queue depth is the fleet-wide total, not the
// last shard to sample.
type KernelStats struct {
	Kernels       int64   `json:"kernels"`
	Hosts         int64   `json:"hosts"`
	Partitions    int64   `json:"partitions"`
	EventsFired   uint64  `json:"events_fired"`
	EventsPerSec  float64 `json:"events_per_wall_second"`
	NsPerEvent    float64 `json:"ns_per_event"`
	PoolHits      uint64  `json:"pool_hits"`
	PoolMisses    uint64  `json:"pool_misses"`
	PoolHitRate   float64 `json:"pool_hit_rate"`
	MaxQueueDepth int64   `json:"max_queue_depth"`
	VTimeReached  string  `json:"vtime_reached,omitempty"`
}

// PartitionEntry is one shard's wall record in the manifest: events it
// stepped inside epoch windows, wall time spent there, and the derived
// per-event cost. Wall times are per-shard worker time, so their sum
// can exceed total wall when shards advance concurrently.
type PartitionEntry struct {
	Index      int     `json:"index"`
	Events     uint64  `json:"events"`
	WallSecs   float64 `json:"wall_seconds"`
	NsPerEvent float64 `json:"ns_per_event"`
}

// SupervisionStats counts the supervision layer's interventions
// (DESIGN.md §13). All zero on an undisturbed run; the section is
// always present so consumers can rely on the key.
type SupervisionStats struct {
	Stalls                uint64 `json:"stalls"`
	DeadlineAborts        uint64 `json:"deadline_aborts"`
	Cancels               uint64 `json:"cancels"`
	Retries               uint64 `json:"retries"`
	DeterminismViolations uint64 `json:"determinism_violations"`
	JournalServed         uint64 `json:"journal_served"`
}

// HeapStats are the Go heap watermarks of the run.
type HeapStats struct {
	MaxAllocBytes uint64 `json:"max_alloc_bytes"`
	SysBytes      uint64 `json:"sys_bytes"`
	NumGC         uint32 `json:"num_gc"`
}

// PhaseEntry is one named wall-timer region. Regions nest ("run"
// contains "fleet-build"), so entries are a breakdown, not a partition.
type PhaseEntry struct {
	Name     string  `json:"name"`
	WallSecs float64 `json:"wall_seconds"`
}

// ExperimentEntry is one experiment's wall record in the manifest.
type ExperimentEntry struct {
	ID       string  `json:"id"`
	Seed     uint64  `json:"seed"`
	WallSecs float64 `json:"wall_seconds"`
	PctWall  float64 `json:"pct_of_total"`
	Ok       bool    `json:"ok"`
}

// manifestNote is stamped into every manifest so downstream consumers
// cannot miss the plane separation.
const manifestNote = "wall-clock plane: values vary run to run; excluded from all determinism drift gates (DESIGN.md §12)"

// Manifest freezes the collector into a run record. Call it after the
// workload finishes (and after kernels flushed their probes).
func (c *Collector) Manifest() *Manifest {
	c.SampleHeap()
	wall := time.Since(c.start)
	events := c.events.Load()
	hits, misses := c.poolHits.Load(), c.poolMisses.Load()

	m := &Manifest{
		Plane:      "wall-clock",
		Note:       manifestNote,
		StartedAt:  c.start.UTC(),
		WallSecs:   wall.Seconds(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Kernel: KernelStats{
			Kernels:       c.kernels.Load(),
			Hosts:         c.hosts.Load(),
			Partitions:    c.partitions.Load(),
			EventsFired:   events,
			MaxQueueDepth: c.queueMax.Load(),
			PoolHits:      hits,
			PoolMisses:    misses,
		},
		Heap: HeapStats{
			MaxAllocBytes: c.heapMax.Load(),
			SysBytes:      c.heapSys.Load(),
			NumGC:         c.numGC.Load(),
		},
		Supervision: SupervisionStats{
			Stalls:                c.supStalls.Load(),
			DeadlineAborts:        c.supDeadlines.Load(),
			Cancels:               c.supCancels.Load(),
			Retries:               c.supRetries.Load(),
			DeterminismViolations: c.supViolations.Load(),
			JournalServed:         c.supJournal.Load(),
		},
	}
	if events > 0 {
		m.Kernel.EventsPerSec = float64(events) / wall.Seconds()
		m.Kernel.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
	}
	if hits+misses > 0 {
		m.Kernel.PoolHitRate = float64(hits) / float64(hits+misses)
	}
	if t := c.VTimeMax(); !t.IsZero() {
		m.Kernel.VTimeReached = t.Format(time.RFC3339)
	}
	for _, p := range c.PartitionWalls() {
		entry := PartitionEntry{Index: p.Index, Events: p.Steps, WallSecs: p.Wall.Seconds()}
		if p.Steps > 0 {
			entry.NsPerEvent = float64(p.Wall.Nanoseconds()) / float64(p.Steps)
		}
		m.PartitionWall = append(m.PartitionWall, entry)
	}

	c.mu.Lock()
	for _, name := range c.phaseOrder {
		m.Phases = append(m.Phases, PhaseEntry{Name: name, WallSecs: c.phases[name].Seconds()})
	}
	for _, e := range c.exps {
		entry := ExperimentEntry{ID: e.ID, Seed: e.Seed, WallSecs: e.Wall.Seconds(), Ok: e.Ok}
		if wall > 0 {
			entry.PctWall = 100 * e.Wall.Seconds() / wall.Seconds()
		}
		m.Experiments = append(m.Experiments, entry)
	}
	c.mu.Unlock()
	return m
}

// WriteJSON renders the manifest as indented JSON plus a trailing
// newline.
func (m *Manifest) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Package runstats is the wall-clock telemetry plane of the cyber-range
// (DESIGN.md §12): live observability for long fleet-scale runs,
// strictly segregated from the deterministic vtime plane that
// internal/obs serves.
//
// The segregation contract is absolute. Everything obs records —
// counters, histograms, trace events, spans — is keyed to virtual time
// and seed only, so trace/metrics/report streams are byte-identical for
// a fixed (seed, profile, mix) at any worker count; ci.sh drift-gates
// several of those streams. Everything runstats records — wall-clock
// phase timers, events per wall second, heap watermarks, queue pressure
// — varies run to run by construction. Runstats data therefore flows in
// exactly one direction: out of kernels (via read-only sim.Probe
// samples) into the Collector, and from there to stderr (the -progress
// ticker) or the `cyberlab profile` JSON manifest. Nothing here may
// ever be written into an obs registry, a kernel trace, or any
// drift-gated artefact, and enabling a collector must leave every
// deterministic byte stream unchanged (asserted by
// TestRunstatsDeterminismIsolation in internal/core).
//
// The package is process-global by design: experiments build their
// worlds deep inside runner functions, so the Collector attaches to
// kernels from NewWorld via the Active() hook rather than threading
// through every constructor. All Collector methods are safe for
// concurrent use — the parallel runner drives many kernels at once.
package runstats

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// active is the process-global collector; nil when telemetry is off
// (the default). A single atomic pointer load is the entire disabled
// cost at every instrumentation site.
var active atomic.Pointer[Collector]

// Enable installs a fresh global Collector and returns it. Telemetry
// stays on until Disable.
func Enable() *Collector {
	c := NewCollector()
	active.Store(c)
	return c
}

// Disable detaches the global collector. Kernels that already hold a
// probe keep sampling into it harmlessly; new worlds attach nothing.
func Disable() { active.Store(nil) }

// Active returns the global collector, or nil when telemetry is off.
func Active() *Collector { return active.Load() }

// Collector accumulates one CLI invocation's wall-clock telemetry:
// kernel hot-loop samples, phase timers, per-experiment wall clocks,
// and Go heap watermarks.
type Collector struct {
	start time.Time

	// Hot-path counters, fed by kernel probes on worker goroutines.
	events     atomic.Uint64 // fired kernel events (summed deltas)
	poolHits   atomic.Uint64
	poolMisses atomic.Uint64
	hosts      atomic.Int64
	kernels    atomic.Int64
	partitions atomic.Int64 // partition count of the current sharded world
	queueSum   atomic.Int64 // summed sampled queue depth across all kernels
	queueMax   atomic.Int64 // high watermark of the summed queue depth
	vtimeMax   atomic.Int64 // max sampled virtual time (ns since epoch)

	// Heap watermarks, refreshed by SampleHeap (ticker + phase edges).
	heapMax  atomic.Uint64 // high watermark of runtime HeapAlloc
	heapSys  atomic.Uint64 // last sampled HeapSys
	numGC    atomic.Uint32
	expsDone atomic.Int64
	expTotal atomic.Int64

	// Supervision-layer counters (DESIGN.md §13), fed by the watchdog
	// sweeper and the supervised runner.
	supStalls     atomic.Uint64 // vtime-stall watchdog aborts
	supDeadlines  atomic.Uint64 // wall-clock deadline aborts
	supCancels    atomic.Uint64 // experiment cancellations, any cause
	supRetries    atomic.Uint64 // -max-retries re-executions
	supViolations atomic.Uint64 // retries that produced different bytes
	supJournal    atomic.Uint64 // experiments served from a resume journal

	mu         sync.Mutex
	phases     map[string]time.Duration
	phaseOrder []string
	exps       []ExperimentWall
	parts      map[int]*PartitionWall
}

// ExperimentWall is one experiment's wall-clock record.
type ExperimentWall struct {
	ID   string
	Seed uint64
	Wall time.Duration
	Ok   bool
}

// PartitionWall is one partition shard's cumulative wall-clock record
// (DESIGN.md §14): events stepped and wall time spent inside epoch
// windows, summed across every window the shard advanced through.
type PartitionWall struct {
	Index int
	Steps uint64
	Wall  time.Duration
}

// NewCollector returns a standalone collector (tests use this directly;
// the CLI goes through Enable).
func NewCollector() *Collector {
	return &Collector{
		start:  time.Now(),
		phases: make(map[string]time.Duration),
	}
}

// kernelProbe adapts one kernel's sim.Probe stream onto the shared
// collector. A kernel is single-goroutine, so the last-seen fields need
// no synchronisation; only the collector's counters are shared.
type kernelProbe struct {
	c           *Collector
	lastSteps   uint64
	lastHits    uint64
	lastMisses  uint64
	lastPending int64
}

// KernelSample implements sim.Probe. It must stay allocation-free: it
// runs inside the kernel hot loop. Queue depth aggregates as a summed
// per-probe delta — with a partitioned world many kernels sample
// concurrently, and a last-writer-wins store would report whichever
// shard sampled last instead of the fleet-wide pressure.
func (p *kernelProbe) KernelSample(s sim.Sample) {
	p.c.events.Add(s.Steps - p.lastSteps)
	p.lastSteps = s.Steps
	p.c.poolHits.Add(s.PoolHits - p.lastHits)
	p.lastHits = s.PoolHits
	p.c.poolMisses.Add(s.PoolMisses - p.lastMisses)
	p.lastMisses = s.PoolMisses
	sum := p.c.queueSum.Add(int64(s.Pending) - p.lastPending)
	p.lastPending = int64(s.Pending)
	atomicMax(&p.c.queueMax, sum)
	atomicMax(&p.c.vtimeMax, s.VNow.UnixNano())
}

// atomicMax raises *a to v if v is greater.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// AttachKernel installs a sampling probe on k feeding the global
// collector. No-op (and allocation-free) when telemetry is off —
// NewWorld calls this for every world it builds.
func AttachKernel(k *sim.Kernel) {
	if c := Active(); c != nil {
		c.Attach(k)
	}
}

// Attach installs a probe on k feeding this collector. It joins the
// probe chain rather than claiming the slot, so the supervision layer's
// stall watch and the telemetry plane can ride the same kernel.
func (c *Collector) Attach(k *sim.Kernel) {
	c.kernels.Add(1)
	k.AttachProbe(&kernelProbe{c: c}, 0)
}

// AddHosts records n hosts joining a fleet (shown by the progress
// ticker and the manifest).
func (c *Collector) AddHosts(n int) { c.hosts.Add(int64(n)) }

// SetPartitions records the partition count of the current sharded
// world (DESIGN.md §14). Shown by the progress ticker and stamped into
// the manifest; 0 means the run never built a partitioned world.
func (c *Collector) SetPartitions(n int) { c.partitions.Store(int64(n)) }

// Partitions returns the recorded partition count (0 when the run is
// unpartitioned).
func (c *Collector) Partitions() int64 { return c.partitions.Load() }

// RecordPartition accumulates one shard's epoch-window advance: steps
// executed and wall time spent, keyed by partition index. The fleet
// runner feeds it after each RunUntil from sim.PartitionSet.Stats().
// Values are cumulative totals, so feeding a monotone stats snapshot
// repeatedly keeps the record correct (the map overwrites per index).
func (c *Collector) RecordPartition(idx int, steps uint64, wall time.Duration) {
	c.mu.Lock()
	if c.parts == nil {
		c.parts = make(map[int]*PartitionWall)
	}
	p := c.parts[idx]
	if p == nil {
		p = &PartitionWall{Index: idx}
		c.parts[idx] = p
	}
	p.Steps = steps
	p.Wall = wall
	c.mu.Unlock()
}

// PartitionWalls returns the per-shard wall records sorted by partition
// index (empty for unpartitioned runs).
func (c *Collector) PartitionWalls() []PartitionWall {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PartitionWall, 0, len(c.parts))
	for i := 0; i < len(c.parts); i++ {
		if p, ok := c.parts[i]; ok {
			out = append(out, *p)
		}
	}
	return out
}

// QueueDepth returns the current summed queue depth across all sampled
// kernels (the progress ticker's "queue" gauge).
func (c *Collector) QueueDepth() int64 { return c.queueSum.Load() }

// SetTotalExperiments sizes the progress ticker's "done/total" gauge.
func (c *Collector) SetTotalExperiments(n int) { c.expTotal.Store(int64(n)) }

// RecordExperiment logs one experiment's wall clock; the runner calls
// it from worker goroutines as each experiment finishes.
func (c *Collector) RecordExperiment(id string, seed uint64, wall time.Duration, ok bool) {
	c.expsDone.Add(1)
	c.mu.Lock()
	c.exps = append(c.exps, ExperimentWall{ID: id, Seed: seed, Wall: wall, Ok: ok})
	c.mu.Unlock()
}

// StartPhase opens a named wall timer and returns its stop function.
// Phase regions may nest and overlap ("run" contains "fleet-build");
// each accumulates independently, so a phase total is the summed wall
// time spent inside that region across all goroutines.
func (c *Collector) StartPhase(name string) (stop func()) {
	started := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			d := time.Since(started)
			c.mu.Lock()
			if _, seen := c.phases[name]; !seen {
				c.phaseOrder = append(c.phaseOrder, name)
			}
			c.phases[name] += d
			c.mu.Unlock()
		})
	}
}

// Phase is the package-level convenience used at instrumentation sites:
// it returns a no-op stop when telemetry is off, so call sites stay one
// line (`defer runstats.Phase("fleet-build")()`).
func Phase(name string) (stop func()) {
	c := Active()
	if c == nil {
		return func() {}
	}
	return c.StartPhase(name)
}

// CountStall records a vtime-stall watchdog abort.
func (c *Collector) CountStall() { c.supStalls.Add(1) }

// CountDeadline records a wall-clock deadline abort.
func (c *Collector) CountDeadline() { c.supDeadlines.Add(1) }

// CountCancel records an experiment cancellation of any cause.
func (c *Collector) CountCancel() { c.supCancels.Add(1) }

// CountRetry records a -max-retries re-execution.
func (c *Collector) CountRetry() { c.supRetries.Add(1) }

// CountViolation records a retry that failed to reproduce the first
// attempt's bytes.
func (c *Collector) CountViolation() { c.supViolations.Add(1) }

// CountJournalServed records an experiment satisfied from a resume
// journal instead of executed.
func (c *Collector) CountJournalServed() { c.supJournal.Add(1) }

// Events returns the fired-event total sampled so far.
func (c *Collector) Events() uint64 { return c.events.Load() }

// Hosts returns the hosts-attached total.
func (c *Collector) Hosts() int64 { return c.hosts.Load() }

// VTimeMax returns the latest virtual time any kernel sample reached
// (zero time until the first sample lands).
func (c *Collector) VTimeMax() time.Time {
	ns := c.vtimeMax.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

package runstats

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// drive runs a small timer workload on a probed kernel.
func drive(t *testing.T, c *Collector, events int) *sim.Kernel {
	t.Helper()
	k := sim.NewKernel()
	c.Attach(k)
	for i := 0; i < events; i++ {
		k.Schedule(time.Duration(i+1)*time.Second, "work", func() {})
	}
	k.Drain(uint64(events) + 1)
	k.FlushProbe()
	return k
}

func TestCollectorAccumulatesKernelSamples(t *testing.T) {
	c := NewCollector()
	drive(t, c, 2500) // crosses two DefaultProbeEvery boundaries + flush
	if got := c.Events(); got != 2500 {
		t.Fatalf("Events = %d, want 2500", got)
	}
	if c.kernels.Load() != 1 {
		t.Fatalf("kernels = %d, want 1", c.kernels.Load())
	}
	if c.VTimeMax().IsZero() {
		t.Fatal("VTimeMax never advanced")
	}
	hits, misses := c.poolHits.Load(), c.poolMisses.Load()
	if hits+misses != 2500 {
		t.Fatalf("pool hits+misses = %d, want 2500", hits+misses)
	}
}

func TestCollectorMergesConcurrentKernels(t *testing.T) {
	c := NewCollector()
	const workers, per = 8, 1500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			k := sim.NewKernel()
			c.Attach(k)
			for i := 0; i < per; i++ {
				k.Schedule(time.Duration(i+1)*time.Millisecond, "work", func() {})
			}
			k.Drain(per + 1)
			k.FlushProbe()
		}()
	}
	wg.Wait()
	if got := c.Events(); got != workers*per {
		t.Fatalf("Events = %d, want %d", got, workers*per)
	}
	if c.kernels.Load() != workers {
		t.Fatalf("kernels = %d, want %d", c.kernels.Load(), workers)
	}
}

func TestPhaseTimersAccumulate(t *testing.T) {
	c := NewCollector()
	stop := c.StartPhase("fleet-build")
	time.Sleep(5 * time.Millisecond)
	stop()
	stop() // double-stop is a no-op
	stop2 := c.StartPhase("fleet-build")
	time.Sleep(5 * time.Millisecond)
	stop2()
	c.StartPhase("run")()
	m := c.Manifest()
	if len(m.Phases) != 2 || m.Phases[0].Name != "fleet-build" || m.Phases[1].Name != "run" {
		t.Fatalf("phases = %+v, want fleet-build then run (first-seen order)", m.Phases)
	}
	if m.Phases[0].WallSecs < 0.008 {
		t.Fatalf("fleet-build wall = %v, want >= ~10ms accumulated", m.Phases[0].WallSecs)
	}
}

func TestGlobalEnableDisable(t *testing.T) {
	if Active() != nil {
		t.Fatal("collector active before Enable")
	}
	c := Enable()
	defer Disable()
	if Active() != c {
		t.Fatal("Active != Enabled collector")
	}
	stop := Phase("x")
	stop()
	Disable()
	if Active() != nil {
		t.Fatal("collector still active after Disable")
	}
	Phase("y")() // no-op path must not panic
}

func TestManifestShape(t *testing.T) {
	c := NewCollector()
	c.AddHosts(42)
	c.SetTotalExperiments(2)
	drive(t, c, 1200)
	c.RecordExperiment("C7", 1, 125*time.Millisecond, true)
	c.RecordExperiment("F1", 1, 25*time.Millisecond, false)

	var buf bytes.Buffer
	if err := c.Manifest().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Plane != "wall-clock" {
		t.Fatalf("plane = %q, want wall-clock", m.Plane)
	}
	if !strings.Contains(m.Note, "excluded from all determinism drift gates") {
		t.Fatalf("note does not mark the manifest nondeterministic: %q", m.Note)
	}
	if m.Kernel.Hosts != 42 || m.Kernel.EventsFired != 1200 {
		t.Fatalf("kernel stats = %+v", m.Kernel)
	}
	if m.Kernel.NsPerEvent <= 0 || m.Kernel.EventsPerSec <= 0 {
		t.Fatalf("rates missing: %+v", m.Kernel)
	}
	if m.Kernel.PoolHitRate < 0 || m.Kernel.PoolHitRate > 1 {
		t.Fatalf("pool hit rate out of range: %v", m.Kernel.PoolHitRate)
	}
	if m.Heap.MaxAllocBytes == 0 {
		t.Fatal("heap watermark never sampled")
	}
	if len(m.Experiments) != 2 {
		t.Fatalf("experiments = %d entries, want 2", len(m.Experiments))
	}
	byID := map[string]ExperimentEntry{}
	for _, e := range m.Experiments {
		byID[e.ID] = e
	}
	if e := byID["C7"]; !e.Ok || e.WallSecs < 0.1 || e.PctWall <= 0 {
		t.Fatalf("C7 entry = %+v", e)
	}
	if e := byID["F1"]; e.Ok {
		t.Fatalf("F1 entry should be !Ok: %+v", e)
	}
}

func TestProgressTicker(t *testing.T) {
	c := NewCollector()
	c.SetTotalExperiments(3)
	c.AddHosts(7)
	drive(t, c, 1100)
	var buf syncBuffer
	stop := c.StartProgress(&buf, 10*time.Millisecond)
	time.Sleep(35 * time.Millisecond)
	stop()
	stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "hosts 7") || !strings.Contains(out, "events") {
		t.Fatalf("progress output missing gauges:\n%s", out)
	}
	if !strings.Contains(out, "progress(final):") {
		t.Fatalf("no final summary line:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines < 2 {
		t.Fatalf("expected multiple ticks, got %d lines:\n%s", lines, out)
	}
}

// syncBuffer guards a bytes.Buffer: the ticker goroutine writes while
// the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestHumanUnits(t *testing.T) {
	cases := map[float64]string{12: "12", 1500: "1.5k", 2_500_000: "2.5M", 3e9: "3.0G"}
	for in, want := range cases {
		if got := humanCount(in); got != want {
			t.Errorf("humanCount(%g) = %q, want %q", in, got, want)
		}
	}
	if got := humanBytes(512); got != "1KB" && got != "0KB" {
		t.Errorf("humanBytes(512) = %q", got)
	}
	if got := humanBytes(3 << 20); got != "3MB" {
		t.Errorf("humanBytes(3MB) = %q", got)
	}
	if got := humanBytes(2 << 30); got != "2.00GB" {
		t.Errorf("humanBytes(2GB) = %q", got)
	}
}

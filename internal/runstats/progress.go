package runstats

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// DefaultProgressPeriod is the -progress ticker cadence.
const DefaultProgressPeriod = 2 * time.Second

// SampleHeap refreshes the collector's Go heap watermarks from
// runtime.MemStats. The progress ticker calls it each period;
// long-running phases may call it at their edges. ReadMemStats briefly
// stops the world, so it must never be called from a kernel probe.
func (c *Collector) SampleHeap() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		cur := c.heapMax.Load()
		if ms.HeapAlloc <= cur || c.heapMax.CompareAndSwap(cur, ms.HeapAlloc) {
			break
		}
	}
	c.heapSys.Store(ms.HeapSys)
	c.numGC.Store(ms.NumGC)
}

// StartProgress launches the live ticker: one status line per period to
// w (stderr in the CLI) with experiments done, hosts attached, virtual
// time reached, fired events and their wall rate, queue depth, and
// heap. It returns a stop function that halts the goroutine and emits
// one final line so short runs still get a summary. Output goes to the
// wall-clock plane only; nothing the ticker prints is drift-gated.
func (c *Collector) StartProgress(w io.Writer, period time.Duration) (stop func()) {
	if period <= 0 {
		period = DefaultProgressPeriod
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	var lastEvents uint64
	var lastAt = time.Now()
	line := func(final bool) {
		c.SampleHeap()
		now := time.Now()
		events := c.events.Load()
		rate := float64(events-lastEvents) / now.Sub(lastAt).Seconds()
		lastEvents, lastAt = events, now
		vt := "-"
		if t := c.VTimeMax(); !t.IsZero() {
			vt = t.Format("2006-01-02T15:04:05Z")
		}
		tag := "progress"
		if final {
			tag = "progress(final)"
			rate = float64(events) / now.Sub(c.start).Seconds()
		}
		parts := ""
		if n := c.partitions.Load(); n > 0 {
			parts = fmt.Sprintf(" | parts %d", n)
		}
		fmt.Fprintf(w, "%s: %d/%d exps | hosts %d%s | vtime %s | %s events (%s/s) | queue %d | heap %s\n",
			tag, c.expsDone.Load(), c.expTotal.Load(), c.hosts.Load(), parts, vt,
			humanCount(float64(events)), humanCount(rate),
			c.queueSum.Load(), humanBytes(c.heapMax.Load()))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				line(false)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			line(true)
		})
	}
}

// humanCount renders 1234567 as "1.2M".
func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// humanBytes renders a byte count with a binary unit.
func humanBytes(v uint64) string {
	const mb = 1 << 20
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(v)/(1<<30))
	case v >= mb:
		return fmt.Sprintf("%.0fMB", float64(v)/mb)
	default:
		return fmt.Sprintf("%.0fKB", float64(v)/(1<<10))
	}
}

package faults

import (
	"fmt"

	"repro/internal/cnc"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Sinkhole is the research server that captured C&C domains point at
// (paper, Section III-B): it answers the malware's own protocol with an
// empty package list — so surviving clients keep polling — while
// recording a census of who still checks in, from where.
type Sinkhole struct {
	K  *sim.Kernel
	IP netsim.IP

	checkins int
	clients  map[string]bool
	byType   map[string]int
	byDomain map[string]int
}

// NewSinkhole returns a sinkhole that will answer at ip once bound (see
// Engine.SinkholeDomains).
func NewSinkhole(k *sim.Kernel, ip netsim.IP) *Sinkhole {
	return &Sinkhole{
		K:        k,
		IP:       ip,
		clients:  make(map[string]bool),
		byType:   make(map[string]int),
		byDomain: make(map[string]int),
	}
}

// ServeSim records the check-in census and keeps the client talking.
func (s *Sinkhole) ServeSim(req *netsim.Request) *netsim.Response {
	s.checkins++
	s.byDomain[req.Host]++
	client := req.Query["client"]
	if client != "" {
		s.clients[client] = true
	}
	ctype := req.Query["type"]
	if ctype != "" {
		s.byType[ctype]++
	}
	s.K.Metrics().Counter("faults.sinkhole.checkin").Inc()
	s.K.Trace().Emit(s.K.Now(), sim.CatFault, "sinkhole",
		fmt.Sprintf("sinkhole check-in via %s from %s", req.Host, req.Source),
		obs.T("sinkhole", string(s.IP)), obs.T("domain", req.Host), obs.T("type", ctype))
	if req.Query["cmd"] == cnc.CmdGetNews {
		// A syntactically valid, empty GET_NEWS answer: zero packages.
		return netsim.OK([]byte{0, 0, 0, 0})
	}
	return netsim.OK(nil)
}

// Checkins returns the total check-ins observed.
func (s *Sinkhole) Checkins() int { return s.checkins }

// DistinctClients returns how many distinct client IDs checked in.
func (s *Sinkhole) DistinctClients() int { return len(s.clients) }

// TypeCensus returns check-in counts by client type.
func (s *Sinkhole) TypeCensus() map[string]int { return s.byType }

// DomainCensus returns check-in counts by captured domain.
func (s *Sinkhole) DomainCensus() map[string]int { return s.byDomain }

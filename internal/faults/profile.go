package faults

import (
	"fmt"
	"sort"
	"time"
)

// Profile is a declarative adversity schedule. All times are offsets from
// the simulation start; a zero value disables that fault family. The same
// profile applied to the same seed yields the same fault sequence, so
// every R-series run is reproducible byte-for-byte at any worker count.
type Profile struct {
	Name string

	// --- network faults ---

	// TakedownAt removes the campaign's C&C domains from DNS.
	TakedownAt time.Duration
	// NXWindow, when non-zero, restores the domains after this long — a
	// temporary registrar suspension instead of a permanent seizure.
	NXWindow time.Duration
	// SinkholeAt re-points the (dead) domains at a research sinkhole that
	// records every surviving check-in (paper, Section III-B).
	SinkholeAt time.Duration
	// LossAt applies LAN-wide packet loss/latency from this offset.
	LossAt  time.Duration
	Loss    float64
	Latency time.Duration

	// --- host faults ---

	// CrashEvery crashes a CrashFraction sample of the fleet on this
	// period; each machine reboots after Downtime.
	CrashEvery    time.Duration
	CrashFraction float64
	Downtime      time.Duration
	// PatchAt rolls out the named-bulletin patches mid-campaign.
	PatchAt time.Duration

	// --- defender faults ---

	// AVStartAt begins periodic AV remediation sweeps that quarantine
	// known-malware images by content digest.
	AVStartAt    time.Duration
	AVSweepEvery time.Duration
}

// Active reports whether the profile injects any faults at all.
func (p Profile) Active() bool {
	return p.TakedownAt > 0 || p.SinkholeAt > 0 || p.LossAt > 0 ||
		p.CrashEvery > 0 || p.PatchAt > 0 || p.AVStartAt > 0
}

// Profiles are the named adversity schedules selectable with
// `cyberlab -faults NAME`.
var Profiles = map[string]Profile{
	// none: the undisturbed baseline.
	"none": {Name: "none"},

	// light: late, temporary interference — a registrar suspension with a
	// 24 h NXDOMAIN window, mild packet loss, occasional crashes.
	"light": {
		Name:       "light",
		TakedownAt: 96 * time.Hour, NXWindow: 24 * time.Hour,
		SinkholeAt: 144 * time.Hour,
		LossAt:     72 * time.Hour, Loss: 0.05,
		CrashEvery: 48 * time.Hour, CrashFraction: 0.1, Downtime: time.Hour,
		AVStartAt: 120 * time.Hour, AVSweepEvery: 48 * time.Hour,
	},

	// takedown: the canonical R-series schedule — permanent domain
	// seizure at 72 h, research sinkhole at 120 h, total LAN blackout at
	// 36 h (for the experiments that use LAN impairment), daily crash
	// cycles, patch rollout alongside the takedown, daily AV sweeps.
	"takedown": {
		Name:       "takedown",
		TakedownAt: 72 * time.Hour,
		SinkholeAt: 120 * time.Hour,
		LossAt:     36 * time.Hour, Loss: 1.0,
		CrashEvery: 24 * time.Hour, CrashFraction: 0.25, Downtime: 2 * time.Hour,
		PatchAt:   72 * time.Hour,
		AVStartAt: 96 * time.Hour, AVSweepEvery: 24 * time.Hour,
	},

	// chaos: everything earlier, harder and noisier — partial loss keeps
	// the RNG-driven drop path exercised.
	"chaos": {
		Name:       "chaos",
		TakedownAt: 48 * time.Hour,
		SinkholeAt: 96 * time.Hour,
		LossAt:     24 * time.Hour, Loss: 0.35, Latency: 5 * time.Minute,
		CrashEvery: 12 * time.Hour, CrashFraction: 0.4, Downtime: 4 * time.Hour,
		PatchAt:   48 * time.Hour,
		AVStartAt: 48 * time.Hour, AVSweepEvery: 12 * time.Hour,
	},
}

// DefaultProfile is the schedule the R-series experiments run under when
// no -faults flag is given (and the one the committed reports assume).
const DefaultProfile = "takedown"

// Lookup resolves a profile name ("" means DefaultProfile).
func Lookup(name string) (Profile, error) {
	if name == "" {
		name = DefaultProfile
	}
	p, ok := Profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("faults: unknown profile %q (have %v)", name, Names())
	}
	return p, nil
}

// Names lists the available profile names, sorted.
func Names() []string {
	out := make([]string, 0, len(Profiles))
	for n := range Profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

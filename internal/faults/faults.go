// Package faults is the deterministic adversity engine: scheduled,
// kernel-driven interventions against a running campaign. It attacks the
// three substrates the modelled weapons depend on — the network (domain
// takedowns, NXDOMAIN windows, research sinkholes, LAN packet loss), the
// hosts (crash/reboot cycles that test persistence, mid-campaign patch
// rollouts), and the defenders' side (AV remediation sweeps that
// quarantine known images by content digest).
//
// Every intervention opens a root causal span in the `fault` trace
// category under the "faults" actor, and fallback behaviour in the
// malware models attributes to that span: the takedown is the provable
// *cause* of the P2P sync or the re-registration that follows. Faults
// draw only from the kernel RNG and virtual clock, so the same seed and
// profile produce the same adversity byte-for-byte at any -parallel
// width.
package faults

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pe"
	"repro/internal/sim"
)

// Actor is the trace actor name for engine-originated events.
const Actor = "faults"

// Stats counts the interventions an engine performed.
type Stats struct {
	Takedowns   int
	Restores    int
	Sinkholes   int
	Impairments int
	Crashes     int
	Patches     int // host×bulletin applications
	Quarantines int // files removed by AV sweeps
}

// Engine injects faults into one kernel's world.
type Engine struct {
	K  *sim.Kernel
	In *netsim.Internet

	Stats Stats
}

// NewEngine returns an engine bound to the kernel and internet fabric.
func NewEngine(k *sim.Kernel, in *netsim.Internet) *Engine {
	return &Engine{K: k, In: in}
}

// open starts a root fault span. Interventions are exogenous — they are
// never caused by campaign activity, so any ambient cause is suppressed.
func (e *Engine) open(msg, vector string, tags ...obs.Tag) obs.Span {
	var sp obs.Span
	e.K.WithCause(sim.Cause{}, func() {
		sp = e.K.OpenSpan(sim.CatFault, Actor, msg, vector, tags...)
	})
	return sp
}

// --- network faults ---

// TakedownDomain removes a C&C domain from DNS (registrar seizure). The
// intervention's span becomes the domain's fault span: clients that fall
// back because of it inherit the takedown as their causal parent.
func (e *Engine) TakedownDomain(name string) bool {
	sp := e.open("domain takedown: "+name, "takedown", obs.T("domain", name))
	if !e.In.Takedown(name, sp) {
		return false
	}
	e.Stats.Takedowns++
	e.K.Metrics().Counter("faults.domain.takedown").Inc()
	return true
}

// RestoreDomain re-binds a taken-down or sinkholed domain to its original
// address.
func (e *Engine) RestoreDomain(name string) bool {
	if !e.In.Restore(name) {
		return false
	}
	e.Stats.Restores++
	e.K.Metrics().Counter("faults.domain.restore").Inc()
	e.K.Trace().Emit(e.K.Now(), sim.CatFault, Actor, "domain restored: "+name,
		obs.T("domain", name))
	return true
}

// NXWindow takes a domain down now and schedules its restoration after
// the window — the temporary-suspension variant of a takedown.
func (e *Engine) NXWindow(name string, window time.Duration) {
	if e.TakedownDomain(name) && window > 0 {
		e.K.Schedule(window, "faults-restore:"+name, func() { e.RestoreDomain(name) })
	}
}

// SinkholeDomains binds the research sinkhole and re-points every named
// domain at it (dead names are re-registered, the way analysts claimed
// expired C&C domains). Returns how many domains were captured.
func (e *Engine) SinkholeDomains(names []string, sink *Sinkhole) int {
	sp := e.open(fmt.Sprintf("sinkhole: %d domains -> %s", len(names), sink.IP),
		"sinkhole", obs.T("sink", string(sink.IP)))
	e.In.BindServer(sink.IP, sink)
	n := 0
	for _, name := range names {
		if e.In.SinkholeDomain(name, sink.IP, sp) {
			n++
			e.Stats.Sinkholes++
			e.K.Metrics().Counter("faults.domain.sinkhole").Inc()
		}
	}
	return n
}

// ImpairLAN applies packet loss and latency to every operation crossing
// the LAN fabric (loss 1.0 is a total blackout).
func (e *Engine) ImpairLAN(l *netsim.LAN, imp netsim.Impairment) {
	e.open(fmt.Sprintf("lan %s impaired: loss=%.2f latency=%s", l.Name, imp.Loss, imp.Latency),
		"impair", obs.T("lan", l.Name))
	l.SetImpairment(imp)
	e.Stats.Impairments++
	e.K.Metrics().Counter("faults.lan.impair").Inc()
}

// --- host faults ---

// CrashHost takes a machine down now and schedules its reboot after
// downtime. Only artefacts with real persistence (registry run keys,
// boot-start services, on-disk images) survive into the rebooted host;
// in-memory processes and timers do not.
func (e *Engine) CrashHost(h *host.Host, downtime time.Duration) bool {
	if h.Down {
		return false
	}
	sp := e.open("host crash: "+h.Name, "crash", obs.T("host", h.Name))
	e.K.WithCause(sim.Cause{Span: sp, Vector: "crash"}, func() { h.Crash() })
	e.Stats.Crashes++
	if downtime > 0 {
		e.K.Schedule(downtime, "faults-reboot:"+h.Name, func() {
			e.K.WithCause(sim.Cause{Span: sp, Vector: "reboot"}, func() { h.Reboot() })
		})
	}
	return true
}

// StartCrashCycles crashes a Bernoulli(fraction) sample of the fleet every
// period (fraction >= 1 crashes every machine without drawing the RNG).
// The returned cancel stops the cycle.
func (e *Engine) StartCrashCycles(hosts []*host.Host, every time.Duration, fraction float64, downtime time.Duration) func() {
	return e.K.Every(every, "faults-crash-cycle", func() {
		for _, h := range hosts {
			if fraction < 1 && e.K.RNG().Float64() >= fraction {
				continue
			}
			e.CrashHost(h, downtime)
		}
	})
}

// PatchHosts rolls the named bulletins out to the fleet — the
// mid-campaign "MS10-061 finally got patched" event that closes an
// exploit gate for everything not yet infected.
func (e *Engine) PatchHosts(hosts []*host.Host, bulletins ...string) {
	e.open(fmt.Sprintf("patch rollout: %s to %d hosts", strings.Join(bulletins, "+"), len(hosts)),
		"patch", obs.T("bulletins", strings.Join(bulletins, "+")))
	for _, h := range hosts {
		for _, b := range bulletins {
			h.ApplyPatch(b)
		}
	}
	e.Stats.Patches += len(hosts) * len(bulletins)
	e.K.Metrics().Counter("faults.patch.apply").Add(float64(len(hosts) * len(bulletins)))
}

// --- defender faults ---

// Digests builds the AV signature set: the content digests of the known
// malware images.
func Digests(imgs ...*pe.File) map[[32]byte]bool {
	out := make(map[[32]byte]bool, len(imgs))
	for _, img := range imgs {
		out[img.MustDigest()] = true
	}
	return out
}

// AVSweep scans every up host's filesystem and quarantines files whose
// content parses as a known-malware image. Quarantine removes the file
// only; a running agent dies at its next reboot when the boot-time
// persistence check finds the image gone.
func (e *Engine) AVSweep(hosts []*host.Host, known map[[32]byte]bool) int {
	sp := e.open(fmt.Sprintf("av remediation sweep: %d hosts", len(hosts)), "av-sweep")
	total := 0
	for _, h := range hosts {
		if h.Down {
			continue
		}
		// Walk is deterministic (sorted paths) but deleting during the
		// walk would mutate the map under iteration; collect then delete.
		var doomed []string
		h.FS.Walk(`C:`, func(f *host.FileNode) bool {
			// Peek at the magic first: a sweep must not materialise every
			// lazy user document just to learn it is not an SPE image.
			if p := f.Prefix(len(pe.Magic)); len(p) < len(pe.Magic) || string(p) != string(pe.Magic[:]) {
				return true
			}
			if img, err := pe.Parse(f.Bytes()); err == nil {
				if d, derr := img.Digest(); derr == nil && known[d] {
					doomed = append(doomed, f.Path)
				}
			}
			return true
		})
		for _, path := range doomed {
			if h.FS.Delete(path) != nil {
				continue
			}
			total++
			e.Stats.Quarantines++
			e.K.Metrics().Counter("faults.av.quarantine").Inc()
			e.K.WithCause(sim.Cause{Span: sp, Vector: "quarantine"}, func() {
				e.K.Trace().Emit(e.K.Now(), sim.CatFault, h.Name,
					"av quarantined "+path, obs.T("path", path))
			})
		}
	}
	return total
}

// StartAVSweeps runs AVSweep on a period; the returned cancel stops it.
func (e *Engine) StartAVSweeps(hosts []*host.Host, known map[[32]byte]bool, every time.Duration) func() {
	return e.K.Every(every, "faults-av-sweep", func() { e.AVSweep(hosts, known) })
}

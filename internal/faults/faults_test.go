package faults

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/cnc"
	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pe"
	"repro/internal/sim"
)

func testKernel() *sim.Kernel { return sim.NewKernel(sim.WithSeed(7)) }

func testEngine() (*sim.Kernel, *netsim.Internet, *Engine) {
	k := testKernel()
	in := netsim.NewInternet(k)
	return k, in, NewEngine(k, in)
}

func okServer() netsim.Handler {
	return netsim.HandlerFunc(func(*netsim.Request) *netsim.Response {
		return netsim.OK([]byte("ok"))
	})
}

func testImage(name string) *pe.File {
	return &pe.File{
		Name:       name,
		Machine:    pe.MachineX86,
		Timestamp:  time.Date(2012, 5, 1, 0, 0, 0, 0, time.UTC),
		EntryPoint: 0x401000,
		Sections: []pe.Section{
			{Name: ".text", Characteristics: pe.SecCode | pe.SecExec, Data: []byte("payload body of " + name)},
		},
	}
}

func TestFaultProfiles(t *testing.T) {
	p, err := Lookup("")
	if err != nil || p.Name != DefaultProfile {
		t.Fatalf("Lookup(\"\") = %q, %v; want default %q", p.Name, err, DefaultProfile)
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Fatal("Lookup(bogus) did not fail")
	}
	names := Names()
	if !sort.StringsAreSorted(names) || len(names) != len(Profiles) {
		t.Fatalf("Names() = %v", names)
	}
	if Profiles["none"].Active() {
		t.Fatal("profile none reports Active")
	}
	for _, name := range []string{"light", "takedown", "chaos"} {
		if !Profiles[name].Active() {
			t.Fatalf("profile %s reports inactive", name)
		}
	}
}

func TestFaultTakedownRestore(t *testing.T) {
	k, in, eng := testEngine()
	in.RegisterDomain("c2.example", "203.0.113.5")
	in.BindServer("203.0.113.5", okServer())

	if !eng.TakedownDomain("c2.example") {
		t.Fatal("takedown of a registered domain failed")
	}
	if in.Reachable("c2.example") {
		t.Fatal("domain still reachable after takedown")
	}
	if in.FaultMode("c2.example") != "takedown" {
		t.Fatalf("FaultMode = %q", in.FaultMode("c2.example"))
	}
	if in.FaultSpan("c2.example") == 0 {
		t.Fatal("takedown left no causal span for fallback attribution")
	}
	if eng.TakedownDomain("never.example") {
		t.Fatal("takedown of an unregistered domain succeeded")
	}
	if eng.Stats.Takedowns != 1 {
		t.Fatalf("Takedowns = %d", eng.Stats.Takedowns)
	}
	if got := k.Metrics().Counter("faults.domain.takedown").Value(); got != 1 {
		t.Fatalf("faults.domain.takedown = %g", got)
	}

	if !eng.RestoreDomain("c2.example") {
		t.Fatal("restore failed")
	}
	if !in.Reachable("c2.example") {
		t.Fatal("domain not reachable after restore")
	}
	if in.FaultSpan("c2.example") != 0 {
		t.Fatal("restore left a stale fault span")
	}
	if eng.RestoreDomain("c2.example") {
		t.Fatal("double restore succeeded")
	}
}

func TestFaultNXWindowRestoresOnSchedule(t *testing.T) {
	k, in, eng := testEngine()
	in.RegisterDomain("c2.example", "203.0.113.5")
	in.BindServer("203.0.113.5", okServer())

	eng.NXWindow("c2.example", 24*time.Hour)
	if in.Reachable("c2.example") {
		t.Fatal("domain reachable inside NX window")
	}
	if err := k.RunFor(25 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if !in.Reachable("c2.example") {
		t.Fatal("NX window did not restore the domain")
	}
	if eng.Stats.Takedowns != 1 || eng.Stats.Restores != 1 {
		t.Fatalf("stats = %+v", eng.Stats)
	}
}

func TestFaultSinkholeCensus(t *testing.T) {
	k, in, eng := testEngine()
	in.RegisterDomain("a.example", "203.0.113.1") // alive name, no server: dead C&C
	eng.TakedownDomain("b.example")               // nothing to take down
	in.RegisterDomain("b.example", "203.0.113.2")
	eng.TakedownDomain("b.example") // expired name, later claimed by the sinkhole

	sink := NewSinkhole(k, "198.51.100.9")
	if n := eng.SinkholeDomains([]string{"a.example", "b.example"}, sink); n != 2 {
		t.Fatalf("SinkholeDomains = %d, want 2", n)
	}

	checkin := func(domain, client, ctype string) *netsim.Response {
		t.Helper()
		resp, err := in.Dispatch(&netsim.Request{
			Method: "POST", Host: domain, Path: cnc.ClientPath, Source: client,
			Query: map[string]string{"cmd": cnc.CmdGetNews, "client": client, "type": ctype},
		})
		if err != nil || resp.Status != 200 {
			t.Fatalf("checkin via %s: %v %v", domain, err, resp)
		}
		return resp
	}
	resp := checkin("a.example", "victim-1", "FL")
	pkgs, err := cnc.DecodePackages(resp.Body)
	if err != nil || len(pkgs) != 0 {
		t.Fatalf("sinkhole GET_NEWS answer not an empty package list: %d %v", len(pkgs), err)
	}
	checkin("b.example", "victim-2", "SP")
	checkin("b.example", "victim-2", "SP")

	if sink.Checkins() != 3 || sink.DistinctClients() != 2 {
		t.Fatalf("checkins = %d distinct = %d", sink.Checkins(), sink.DistinctClients())
	}
	if sink.DomainCensus()["b.example"] != 2 || sink.TypeCensus()["FL"] != 1 {
		t.Fatalf("census = %v %v", sink.DomainCensus(), sink.TypeCensus())
	}
	if got := k.Metrics().Counter("faults.sinkhole.checkin").Value(); got != 3 {
		t.Fatalf("faults.sinkhole.checkin = %g", got)
	}
	if n := len(k.Trace().Filter(sim.CatFault)); n < 5 { // 2 takedown spans + sinkhole span + 3 checkins, minus ring slack
		t.Fatalf("fault-category trace records = %d", n)
	}
}

func TestFaultCrashRebootCycle(t *testing.T) {
	k, _, eng := testEngine()
	h := host.New(k, "WS-1")

	if !eng.CrashHost(h, 2*time.Hour) {
		t.Fatal("crash failed")
	}
	if !h.Down {
		t.Fatal("host not down after crash")
	}
	if eng.CrashHost(h, time.Hour) {
		t.Fatal("crash of a down host succeeded")
	}
	if err := k.RunFor(3 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if h.Down {
		t.Fatal("host did not reboot after downtime")
	}
	if h.BootCount != 1 {
		t.Fatalf("BootCount = %d", h.BootCount)
	}
	if eng.Stats.Crashes != 1 {
		t.Fatalf("Crashes = %d", eng.Stats.Crashes)
	}
}

func TestFaultCrashCyclesSampleFleet(t *testing.T) {
	k, _, eng := testEngine()
	var hosts []*host.Host
	for i := 0; i < 6; i++ {
		hosts = append(hosts, host.New(k, fmt.Sprintf("WS-%d", i+1)))
	}
	cancel := eng.StartCrashCycles(hosts, 12*time.Hour, 1.0, time.Hour)
	if err := k.RunFor(13 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if eng.Stats.Crashes != len(hosts) {
		t.Fatalf("fraction 1.0 crashed %d of %d hosts", eng.Stats.Crashes, len(hosts))
	}
	cancel()
	before := eng.Stats.Crashes
	if err := k.RunFor(48 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if eng.Stats.Crashes != before {
		t.Fatal("cancel did not stop the crash cycle")
	}
}

func TestFaultPatchRollout(t *testing.T) {
	k, _, eng := testEngine()
	hosts := []*host.Host{host.New(k, "A"), host.New(k, "B")}
	eng.PatchHosts(hosts, "MS10-061", "MS08-067")
	for _, h := range hosts {
		if !h.Patched("MS10-061") || !h.Patched("MS08-067") {
			t.Fatalf("%s missing patches", h.Name)
		}
	}
	if eng.Stats.Patches != 4 {
		t.Fatalf("Patches = %d, want 4", eng.Stats.Patches)
	}
}

func TestFaultAVSweepQuarantinesKnownDigests(t *testing.T) {
	k, _, eng := testEngine()
	evil := testImage("mssecmgr.ocx")
	raw, err := evil.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}

	h := host.New(k, "WS-1")
	if err := h.FS.Write(host.SystemDir+`\mssecmgr.ocx`, raw, 0, k.Now()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := h.FS.Write(`C:\docs\report.docx`, []byte("quarterly numbers"), 0, k.Now()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// A different, unknown PE image must survive a digest-based sweep.
	otherRaw, err := testImage("other.exe").Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if err := h.FS.Write(`C:\tools\other.exe`, otherRaw, 0, k.Now()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	down := host.New(k, "WS-2")
	if err := down.FS.Write(host.SystemDir+`\mssecmgr.ocx`, raw, 0, k.Now()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	down.Crash()

	known := Digests(evil)
	if n := eng.AVSweep([]*host.Host{h, down}, known); n != 1 {
		t.Fatalf("AVSweep = %d, want 1", n)
	}
	if h.FS.Exists(host.SystemDir + `\mssecmgr.ocx`) {
		t.Fatal("known image survived the sweep")
	}
	if !h.FS.Exists(`C:\docs\report.docx`) || !h.FS.Exists(`C:\tools\other.exe`) {
		t.Fatal("sweep deleted a benign file")
	}
	if !down.FS.Exists(host.SystemDir + `\mssecmgr.ocx`) {
		t.Fatal("sweep scanned a down host")
	}
	if eng.Stats.Quarantines != 1 {
		t.Fatalf("Quarantines = %d", eng.Stats.Quarantines)
	}
}

// TestFaultEventJSONLRoundTrip drives a small adversity scenario, exports
// the kernel trace — fault-category events, root fault spans, sinkhole
// check-ins with their tags — through the JSONL wire format and re-imports
// it. Parsing must preserve every field (tags come back key-sorted, a
// deterministic order), and a second export/import cycle must be a fixed
// point byte-for-byte.
func TestFaultEventJSONLRoundTrip(t *testing.T) {
	k, in, eng := testEngine()
	in.RegisterDomain("c2.example", "203.0.113.5")
	eng.TakedownDomain("c2.example")
	sink := NewSinkhole(k, "198.51.100.9")
	eng.SinkholeDomains([]string{"c2.example"}, sink)
	if _, err := in.Dispatch(&netsim.Request{
		Method: "POST", Host: "c2.example", Path: cnc.ClientPath, Source: "victim-1",
		Query: map[string]string{"cmd": cnc.CmdGetNews, "client": "victim-1", "type": "FL"},
	}); err != nil {
		t.Fatalf("checkin: %v", err)
	}

	events := k.Trace().Events()
	if len(events) == 0 {
		t.Fatal("scenario produced no events")
	}
	var sawFault, sawSinkTag, sawSpan bool
	for _, e := range events {
		if e.Cat == string(sim.CatFault) {
			sawFault = true
		}
		if _, ok := e.Get("sinkhole"); ok {
			sawSinkTag = true
		}
		if e.Span != 0 {
			sawSpan = true
		}
	}
	if !sawFault || !sawSinkTag || !sawSpan {
		t.Fatalf("stream missing shapes: fault=%v sinkholeTag=%v span=%v", sawFault, sawSinkTag, sawSpan)
	}

	var buf1 bytes.Buffer
	if err := obs.WriteJSONL(&buf1, events); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	parsed, err := obs.ParseJSONL(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(events))
	}
	for i, e := range events {
		p := parsed[i]
		if !p.At.Equal(e.At) || p.Seq != e.Seq || p.Cat != e.Cat ||
			p.Actor != e.Actor || p.Msg != e.Msg || p.Span != e.Span || p.Parent != e.Parent {
			t.Fatalf("event %d changed across the wire:\n got %+v\nwant %+v", i, p, e)
		}
		for _, tag := range e.Tags {
			if v, ok := p.Get(tag.K); !ok || v != tag.V {
				t.Fatalf("event %d lost tag %s=%q (got %q, %v)", i, tag.K, tag.V, v, ok)
			}
		}
	}

	// Export the parsed stream again: parse(write(x)) must be a fixed point.
	var buf2 bytes.Buffer
	if err := obs.WriteJSONL(&buf2, parsed); err != nil {
		t.Fatalf("WriteJSONL(parsed): %v", err)
	}
	reparsed, err := obs.ParseJSONL(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatalf("ParseJSONL(round 2): %v", err)
	}
	if !reflect.DeepEqual(parsed, reparsed) {
		t.Fatal("second round trip changed the records")
	}
	var buf3 bytes.Buffer
	if err := obs.WriteJSONL(&buf3, reparsed); err != nil {
		t.Fatalf("WriteJSONL(round 2): %v", err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Fatal("round-tripped JSONL bytes differ")
	}
}

func BenchmarkFaultAVSweep(b *testing.B) {
	k, _, eng := testEngine()
	evil := testImage("mssecmgr.ocx")
	raw, err := evil.Marshal()
	if err != nil {
		b.Fatalf("Marshal: %v", err)
	}
	var hosts []*host.Host
	for i := 0; i < 8; i++ {
		h := host.New(k, fmt.Sprintf("WS-%d", i+1))
		for j := 0; j < 20; j++ {
			h.FS.Write(fmt.Sprintf(`C:\docs\doc-%02d.docx`, j), []byte("document body"), 0, k.Now())
		}
		hosts = append(hosts, h)
	}
	known := Digests(evil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hosts[i%len(hosts)].FS.Write(host.SystemDir+`\mssecmgr.ocx`, raw, 0, k.Now())
		eng.AVSweep(hosts, known)
	}
}

func BenchmarkFaultSinkholeCheckin(b *testing.B) {
	k, in, eng := testEngine()
	in.RegisterDomain("c2.example", "203.0.113.5")
	eng.TakedownDomain("c2.example")
	sink := NewSinkhole(k, "198.51.100.9")
	eng.SinkholeDomains([]string{"c2.example"}, sink)
	req := &netsim.Request{
		Method: "POST", Host: "c2.example", Path: cnc.ClientPath, Source: "victim-1",
		Query: map[string]string{"cmd": cnc.CmdGetNews, "client": "victim-1", "type": "FL"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Dispatch(req); err != nil {
			b.Fatalf("Dispatch: %v", err)
		}
	}
}

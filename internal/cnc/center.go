package cnc

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// AttackCenter is the single control point behind all C&C servers
// (paper, Fig. 4), with the hierarchical role separation the dissection
// highlighted: the admin prepares servers, the operator moves packages and
// sealed entries through the control panel, and only the coordinator holds
// the decryption key for stolen data.
type AttackCenter struct {
	K       *sim.Kernel
	Seal    *SealKeypair
	Pool    *DomainPool
	Servers []*Server

	// collected holds sealed entries the operator pulled from servers,
	// awaiting the coordinator.
	collected []*Entry
	// decrypted is the coordinator's cleartext archive.
	decrypted []StolenDoc
}

// StolenDoc is one decrypted exfiltrated document.
type StolenDoc struct {
	ClientID string
	Name     string
	Data     []byte
}

// NewAttackCenter provisions the full platform: coordinator keys, the
// domain pool, one server per distinct pool IP, and DNS registration.
func NewAttackCenter(k *sim.Kernel, in *netsim.Internet, nDomains, nIPs int) (*AttackCenter, error) {
	seal, err := NewSealKeypair(k.RNG())
	if err != nil {
		return nil, err
	}
	center := &AttackCenter{K: k, Seal: seal}
	center.Pool = NewDomainPool(k.RNG(), nDomains, nIPs)
	center.Pool.RegisterAll(in)
	for _, ip := range center.Pool.IPs() {
		center.Servers = append(center.Servers, NewServer(k, in, ip, seal.Public))
	}
	return center, nil
}

// Admin returns the admin role handle.
func (c *AttackCenter) Admin() Admin { return Admin{c} }

// Operator returns the operator role handle.
func (c *AttackCenter) Operator() Operator { return Operator{c} }

// Coordinator returns the coordinator role handle.
func (c *AttackCenter) Coordinator() Coordinator { return Coordinator{c} }

// Admin prepares and maintains servers (ssh + scripts in the paper).
type Admin struct{ c *AttackCenter }

// ProvisionAll runs LogWiper and starts the 30-minute retention job on
// every server.
func (a Admin) ProvisionAll(retention time.Duration) {
	for _, s := range a.c.Servers {
		s.RunLogWiper()
		s.StartCleanup(retention)
	}
}

// Operator drives the control panel: uploading packages, downloading
// sealed entries. The operator never sees plaintext.
type Operator struct{ c *AttackCenter }

// PushCommandAll queues a broadcast package on every server. The order is
// a root causal span (category c2, vector "c2-order"): every client-side
// effect of the command attributes to it.
func (o Operator) PushCommandAll(name string, payload []byte) {
	span := o.c.K.OpenSpan(sim.CatC2, "attack-center",
		fmt.Sprintf("operator order: broadcast %s", name), "c2-order",
		obs.T("package", name))
	for _, s := range o.c.Servers {
		s.PushNews(&Package{Name: name, Payload: payload, Span: span})
	}
}

// PushCommand queues a targeted package on every server (the client may
// contact any of them). Like PushCommandAll, the order opens a root span.
func (o Operator) PushCommand(clientID, name string, payload []byte) {
	span := o.c.K.OpenSpan(sim.CatC2, "attack-center",
		fmt.Sprintf("operator order: %s -> %s", name, clientID), "c2-order",
		obs.T("package", name), obs.T("client", clientID))
	for _, s := range o.c.Servers {
		s.PushAd(clientID, &Package{Name: name, Payload: payload, Span: span})
	}
}

// RecoverFromTakedown surveys the pool against live DNS, registers fresh
// replacement domains for every lost one (same server fleet, new names —
// the operators' observed response to takedowns), and broadcasts the fresh
// names as a config:domains package so surviving clients re-expand their
// lists on next check-in. Returns how many fresh domains were registered.
func (o Operator) RecoverFromTakedown(in *netsim.Internet) int {
	lost := 0
	for _, r := range o.c.Pool.Registrations {
		if ip, ok := in.Resolve(r.Domain); !ok || ip != r.IP {
			lost++
		}
	}
	if lost == 0 {
		return 0
	}
	fresh := o.c.Pool.Extend(o.c.K.RNG(), lost)
	payload := make([]byte, 0, 32*len(fresh))
	for i, r := range fresh {
		if i > 0 {
			payload = append(payload, '\n')
		}
		payload = append(payload, r.Domain...)
		in.RegisterDomain(r.Domain, r.IP)
	}
	o.c.K.Metrics().Counter("cnc.domain.reregister").Add(float64(len(fresh)))
	o.c.K.Trace().Add(o.c.K.Now(), sim.CatC2, "attack-center",
		"operator re-registered %d replacement domains after takedown", len(fresh))
	o.PushCommandAll(PkgDomainUpdate, payload)
	return len(fresh)
}

// CollectAll downloads unretrieved sealed entries from every server into
// the attack center. It returns how many entries moved.
func (o Operator) CollectAll() int {
	n := 0
	for _, s := range o.c.Servers {
		entries := s.FetchEntries()
		o.c.collected = append(o.c.collected, entries...)
		n += len(entries)
	}
	if n > 0 {
		o.c.K.Trace().Add(o.c.K.Now(), sim.CatC2, "attack-center", "operator collected %d sealed entries", n)
	}
	return n
}

// SealedInbox returns the sealed entries awaiting the coordinator.
func (o Operator) SealedInbox() []*Entry { return o.c.collected }

// TryRead attempts to read an entry as the operator — it always fails,
// demonstrating the role separation the paper describes.
func (o Operator) TryRead(e *Entry) ([]byte, error) {
	return nil, ErrOperatorCannotDecrypt
}

// ErrOperatorCannotDecrypt marks the operator's lack of the private key.
var ErrOperatorCannotDecrypt = errors.New("cnc: entry is sealed to the coordinator key; operator holds no private key")

// Coordinator is the only role holding the seal private key.
type Coordinator struct{ c *AttackCenter }

// DecryptAll opens every collected entry into the cleartext archive,
// returning how many documents were recovered.
func (co Coordinator) DecryptAll() (int, error) {
	n := 0
	for _, e := range co.c.collected {
		plain, err := co.c.Seal.Open(e.Sealed)
		if err != nil {
			return n, fmt.Errorf("decrypt entry %d: %w", e.ID, err)
		}
		co.c.decrypted = append(co.c.decrypted, StolenDoc{ClientID: e.ClientID, Name: e.Name, Data: plain})
		n++
	}
	co.c.collected = co.c.collected[:0]
	return n, nil
}

// Archive returns the decrypted documents.
func (co Coordinator) Archive() []StolenDoc { return co.c.decrypted }

// TotalStolenBytes sums sealed bytes ever received across all servers.
func (c *AttackCenter) TotalStolenBytes() int64 {
	var n int64
	for _, s := range c.Servers {
		n += s.TotalEntryBytes
	}
	return n
}

package cnc

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Paper-reported platform shape (Section III-B): 80 registered domains
// pointing at 22 server IPs; clients ship with ~5 default domains and grow
// to ~10 after first contact.
const (
	DefaultDomainCount   = 80
	DefaultServerIPCount = 22
	BootstrapDomains     = 5
	PostContactDomains   = 10
)

// Registration is the WHOIS-style record for one domain — fake identities,
// mostly German and Austrian addresses, spread over registrars.
type Registration struct {
	Domain    string
	IP        netsim.IP
	Registrar string
	Identity  string
	Country   string
}

// DomainPool is the attacker's registered-domain inventory.
type DomainPool struct {
	Registrations []Registration
}

var (
	domainWords = []string{
		"traffic", "spot", "quick", "net", "flush", "dns", "smart", "banner",
		"chart", "pingserver", "update", "sync", "video", "media", "counter", "stats",
	}
	domainTLDs = []string{".com", ".net", ".org", ".info", ".in"}
	registrars = []string{"GoDaddy", "eNom", "Tucows", "1&1", "Key-Systems"}
	identities = []string{"Ivan Blix", "Paolo Calzaretta", "Traian Lucchesi", "Adrien Leroy", "Karl Steiner"}
	countries  = []string{"Germany", "Austria", "Germany", "Austria", "Germany"}
)

// NewDomainPool deterministically generates nDomains names mapped onto
// nIPs server addresses in round-robin order.
func NewDomainPool(rng *sim.RNG, nDomains, nIPs int) *DomainPool {
	if nDomains <= 0 {
		nDomains = DefaultDomainCount
	}
	if nIPs <= 0 {
		nIPs = DefaultServerIPCount
	}
	pool := &DomainPool{Registrations: make([]Registration, 0, nDomains)}
	seen := make(map[string]bool, nDomains)
	for len(pool.Registrations) < nDomains {
		name := fmt.Sprintf("%s%s%d%s",
			domainWords[rng.Intn(len(domainWords))],
			domainWords[rng.Intn(len(domainWords))],
			rng.Intn(100),
			domainTLDs[rng.Intn(len(domainTLDs))])
		if seen[name] {
			continue
		}
		seen[name] = true
		i := len(pool.Registrations)
		idx := rng.Intn(len(identities))
		pool.Registrations = append(pool.Registrations, Registration{
			Domain:    name,
			IP:        netsim.IP(fmt.Sprintf("203.0.%d.%d", 100+i%nIPs, 10+i%nIPs)),
			Registrar: registrars[rng.Intn(len(registrars))],
			Identity:  identities[idx],
			Country:   countries[idx],
		})
	}
	return pool
}

// Extend registers n fresh domains into the pool — the operators' response
// to takedowns. The paper's 80-domains-over-22-IPs shape accreted exactly
// this way: names keep coming from the same generator, while the server
// fleet stays fixed, so new registrations reuse the existing IPs
// round-robin. The fresh registrations are returned for DNS registration.
func (p *DomainPool) Extend(rng *sim.RNG, n int) []Registration {
	ips := p.IPs()
	if n <= 0 || len(ips) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(p.Registrations)+n)
	for _, r := range p.Registrations {
		seen[r.Domain] = true
	}
	fresh := make([]Registration, 0, n)
	for len(fresh) < n {
		name := fmt.Sprintf("%s%s%d%s",
			domainWords[rng.Intn(len(domainWords))],
			domainWords[rng.Intn(len(domainWords))],
			rng.Intn(100),
			domainTLDs[rng.Intn(len(domainTLDs))])
		if seen[name] {
			continue
		}
		seen[name] = true
		i := len(p.Registrations)
		idx := rng.Intn(len(identities))
		reg := Registration{
			Domain:    name,
			IP:        ips[i%len(ips)],
			Registrar: registrars[rng.Intn(len(registrars))],
			Identity:  identities[idx],
			Country:   countries[idx],
		}
		p.Registrations = append(p.Registrations, reg)
		fresh = append(fresh, reg)
	}
	return fresh
}

// Domains returns all domain names in order.
func (p *DomainPool) Domains() []string {
	out := make([]string, len(p.Registrations))
	for i, r := range p.Registrations {
		out[i] = r.Domain
	}
	return out
}

// IPs returns the distinct server IPs in first-seen order.
func (p *DomainPool) IPs() []netsim.IP {
	seen := make(map[netsim.IP]bool)
	var out []netsim.IP
	for _, r := range p.Registrations {
		if !seen[r.IP] {
			seen[r.IP] = true
			out = append(out, r.IP)
		}
	}
	return out
}

// RegisterAll points every domain at its IP in the simulated DNS.
func (p *DomainPool) RegisterAll(in *netsim.Internet) {
	for _, r := range p.Registrations {
		in.RegisterDomain(r.Domain, r.IP)
	}
}

// UnregisterAll removes every domain (takedown or suicide cleanup).
func (p *DomainPool) UnregisterAll(in *netsim.Internet) {
	for _, r := range p.Registrations {
		in.UnregisterDomain(r.Domain)
	}
}

// BootstrapConfig returns the first n domain names — the default
// configuration compiled into a fresh client.
func (p *DomainPool) BootstrapConfig(n int) []string {
	if n > len(p.Registrations) {
		n = len(p.Registrations)
	}
	return p.Domains()[:n]
}

package cnc

import (
	"crypto/ecdh"
	"errors"
	"fmt"

	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// BeaconClient is the C&C client half compiled into an implant: a list of
// known domains (5 at build time, ~10 after first contact), the client
// identity, and the coordinator public key used to seal uploads.
type BeaconClient struct {
	ID      string
	Type    ClientType
	Domains []string
	SealPub *ecdh.PublicKey
	// Contacted records that at least one check-in succeeded.
	Contacted bool
}

// ErrNoServer is returned when no configured domain answers.
var ErrNoServer = errors.New("cnc: no configured C&C domain reachable")

// PkgDomainUpdate is the package name carrying an expanded domain list
// (newline-separated) pushed after first contact.
const PkgDomainUpdate = "config:domains"

// Contact performs one GET_NEWS cycle from h through its LAN, trying each
// configured domain in order. Received domain-update packages are applied
// to the client configuration; all packages are returned to the caller.
func (bc *BeaconClient) Contact(l *netsim.LAN, h *host.Host) ([]*Package, error) {
	for _, domain := range bc.Domains {
		resp, err := l.HTTP(h, &netsim.Request{
			Method: "POST",
			Host:   domain,
			Path:   ClientPath,
			Query:  map[string]string{"cmd": CmdGetNews, "client": bc.ID, "type": string(bc.Type)},
		})
		if err != nil || resp.Status != 200 {
			continue
		}
		pkgs, err := DecodePackages(resp.Body)
		if err != nil {
			continue
		}
		bc.Contacted = true
		for _, p := range pkgs {
			if p.Name == PkgDomainUpdate {
				bc.applyDomainUpdate(p.Payload)
			}
		}
		h.K.Trace().Add(h.K.Now(), sim.CatC2, h.Name, "checked in at %s: %d packages", domain, len(pkgs))
		return pkgs, nil
	}
	return nil, fmt.Errorf("%w (%d domains tried)", ErrNoServer, len(bc.Domains))
}

func (bc *BeaconClient) applyDomainUpdate(payload []byte) {
	known := make(map[string]bool, len(bc.Domains))
	for _, d := range bc.Domains {
		known[d] = true
	}
	start := 0
	for i := 0; i <= len(payload); i++ {
		if i == len(payload) || payload[i] == '\n' {
			if d := string(payload[start:i]); d != "" && !known[d] {
				known[d] = true
				bc.Domains = append(bc.Domains, d)
			}
			start = i + 1
		}
	}
}

// Upload seals plaintext to the coordinator key and ADD_ENTRYs it to the
// first reachable domain.
func (bc *BeaconClient) Upload(l *netsim.LAN, h *host.Host, name string, plaintext []byte) error {
	if bc.SealPub == nil {
		return errors.New("cnc: client has no seal public key")
	}
	sealed, err := Seal(bc.SealPub, h.RNG, plaintext)
	if err != nil {
		return err
	}
	for _, domain := range bc.Domains {
		resp, err := l.HTTP(h, &netsim.Request{
			Method: "POST",
			Host:   domain,
			Path:   ClientPath,
			Query:  map[string]string{"cmd": CmdAddEntry, "client": bc.ID, "type": string(bc.Type), "name": name},
			Body:   sealed,
		})
		if err == nil && resp.Status == 200 {
			return nil
		}
	}
	return fmt.Errorf("upload %q: %w", name, ErrNoServer)
}

package cnc

import (
	"crypto/ecdh"
	"errors"
	"fmt"
	"time"

	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// BeaconClient is the C&C client half compiled into an implant: a list of
// known domains (5 at build time, ~10 after first contact), the client
// identity, and the coordinator public key used to seal uploads.
type BeaconClient struct {
	ID      string
	Type    ClientType
	Domains []string
	SealPub *ecdh.PublicKey
	// Contacted records that at least one check-in succeeded.
	Contacted bool
	// Stats aggregates the client's check-in reliability telemetry.
	Stats BeaconStats

	// preferred indexes the last domain that answered; each cycle starts
	// there, so a takedown of the preferred domain shows up as an
	// explicit rotation instead of a silent walk.
	preferred int
}

// BeaconStats counts a client's C&C reliability outcomes. Everything here
// is deterministic for a fixed seed, so experiments can assert on it.
type BeaconStats struct {
	Attempts       int // Contact cycles started
	Successes      int // cycles that reached a live server
	Failovers      int // per-domain failures skipped over, all cycles
	Rotations      int // times the preferred domain changed
	ConsecFailures int // consecutive fully-failed cycles (reset on success)
}

// ErrNoServer is returned when no configured domain answers.
var ErrNoServer = errors.New("cnc: no configured C&C domain reachable")

// PkgDomainUpdate is the package name carrying an expanded domain list
// (newline-separated) pushed after first contact.
const PkgDomainUpdate = "config:domains"

// NextDelay returns the deterministic retry backoff after the current
// failure streak: base << min(streak, 5). A beacon that keeps failing
// thins its own traffic out — the "try again later, less often" behaviour
// a client needs once its domains die.
func (bc *BeaconClient) NextDelay(base time.Duration) time.Duration {
	shift := bc.Stats.ConsecFailures
	if shift > 5 {
		shift = 5
	}
	return base << uint(shift)
}

// PreferredDomain returns the domain the next cycle will try first.
func (bc *BeaconClient) PreferredDomain() string {
	if len(bc.Domains) == 0 {
		return ""
	}
	return bc.Domains[bc.preferred%len(bc.Domains)]
}

// failReason classifies a failed exchange for the audit trail.
func failReason(resp *netsim.Response, err error) string {
	switch {
	case err == nil && resp != nil:
		return fmt.Sprintf("http-%d", resp.Status)
	case errors.Is(err, netsim.ErrNXDomain):
		return "nxdomain"
	case errors.Is(err, netsim.ErrNoSuchServer):
		return "no-server"
	case errors.Is(err, netsim.ErrPacketLoss):
		return "loss"
	case errors.Is(err, host.ErrHostDown):
		return "host-down"
	case errors.Is(err, netsim.ErrNoInternet):
		return "offline"
	default:
		return "error"
	}
}

// failover records one dead domain in metrics and the trace, so ErrNoServer
// outcomes leave a per-domain audit trail instead of a silent walk.
func (bc *BeaconClient) failover(h *host.Host, domain, reason string) {
	bc.Stats.Failovers++
	h.K.Metrics().Counter("cnc.beacon.failover").Inc()
	h.K.Trace().Emit(h.K.Now(), sim.CatC2, h.Name,
		fmt.Sprintf("beacon failed at %s (%s)", domain, reason),
		obs.T("domain", domain), obs.T("reason", reason))
}

// Contact performs one GET_NEWS cycle from h through its LAN, starting at
// the preferred (last-good) domain and rotating through the rest. Received
// domain-update packages are applied to the client configuration; all
// packages are returned to the caller. Every dead domain is traced and
// counted before the next is tried.
func (bc *BeaconClient) Contact(l *netsim.LAN, h *host.Host) ([]*Package, error) {
	bc.Stats.Attempts++
	n := len(bc.Domains)
	for i := 0; i < n; i++ {
		idx := (bc.preferred + i) % n
		domain := bc.Domains[idx]
		resp, err := l.HTTP(h, &netsim.Request{
			Method: "POST",
			Host:   domain,
			Path:   ClientPath,
			Query:  map[string]string{"cmd": CmdGetNews, "client": bc.ID, "type": string(bc.Type)},
		})
		if err != nil || resp.Status != 200 {
			bc.failover(h, domain, failReason(resp, err))
			continue
		}
		pkgs, derr := DecodePackages(resp.Body)
		if derr != nil {
			bc.failover(h, domain, "bad-payload")
			continue
		}
		bc.Contacted = true
		bc.Stats.Successes++
		bc.Stats.ConsecFailures = 0
		if idx != bc.preferred {
			bc.preferred = idx
			bc.Stats.Rotations++
			h.K.Trace().Emit(h.K.Now(), sim.CatC2, h.Name,
				"beacon rotated preferred domain to "+domain, obs.T("domain", domain))
		}
		for _, p := range pkgs {
			if p.Name == PkgDomainUpdate {
				bc.applyDomainUpdate(p.Payload)
			}
		}
		h.K.Trace().Add(h.K.Now(), sim.CatC2, h.Name, "checked in at %s: %d packages", domain, len(pkgs))
		return pkgs, nil
	}
	bc.Stats.ConsecFailures++
	return nil, fmt.Errorf("%w (%d domains tried)", ErrNoServer, n)
}

func (bc *BeaconClient) applyDomainUpdate(payload []byte) {
	known := make(map[string]bool, len(bc.Domains))
	for _, d := range bc.Domains {
		known[d] = true
	}
	start := 0
	for i := 0; i <= len(payload); i++ {
		if i == len(payload) || payload[i] == '\n' {
			if d := string(payload[start:i]); d != "" && !known[d] {
				known[d] = true
				bc.Domains = append(bc.Domains, d)
			}
			start = i + 1
		}
	}
}

// Upload seals plaintext to the coordinator key and ADD_ENTRYs it to the
// first reachable domain, starting at the preferred one.
func (bc *BeaconClient) Upload(l *netsim.LAN, h *host.Host, name string, plaintext []byte) error {
	if bc.SealPub == nil {
		return errors.New("cnc: client has no seal public key")
	}
	sealed, err := Seal(bc.SealPub, h.RNG, plaintext)
	if err != nil {
		return err
	}
	n := len(bc.Domains)
	for i := 0; i < n; i++ {
		domain := bc.Domains[(bc.preferred+i)%n]
		resp, err := l.HTTP(h, &netsim.Request{
			Method: "POST",
			Host:   domain,
			Path:   ClientPath,
			Query:  map[string]string{"cmd": CmdAddEntry, "client": bc.ID, "type": string(bc.Type), "name": name},
			Body:   sealed,
		})
		if err == nil && resp.Status == 200 {
			return nil
		}
		bc.failover(h, domain, failReason(resp, err))
	}
	return fmt.Errorf("upload %q: %w", name, ErrNoServer)
}

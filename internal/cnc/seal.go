// Package cnc implements the command-and-control platform of Figs. 4 and 5:
// servers with the newsforyou {ads,news,entries} stores and the
// GET_NEWS/ADD_ENTRY client protocol, a MySQL-like bookkeeping database,
// LogWiper and retention jobs, an 80-domain/22-IP domain pool, and the
// attack-center role separation in which stolen data is public-key sealed
// so that even the server operator cannot read it — only the attack
// coordinator holding the private key can.
package cnc

import (
	"crypto/ecdh"
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/sim"
)

// SealKeypair is the attack coordinator's X25519 key pair. The public half
// is provisioned onto every C&C server; the private half never leaves the
// attack center.
type SealKeypair struct {
	Public  *ecdh.PublicKey
	private *ecdh.PrivateKey
}

// deterministicX25519Key derives a private key from exactly 32 RNG bytes.
// ecdh.GenerateKey(reader) is deliberately avoided: Go's crypto internals
// may read one extra byte from the reader at random (randutil.
// MaybeReadByte), which silently shifts the deterministic RNG stream and
// makes every draw after a sealing operation irreproducible.
func deterministicX25519Key(rng *sim.RNG) (*ecdh.PrivateKey, error) {
	return ecdh.X25519().NewPrivateKey(rng.Bytes(32))
}

// NewSealKeypair generates a coordinator key pair from the deterministic
// RNG, consuming a fixed number of RNG bytes.
func NewSealKeypair(rng *sim.RNG) (*SealKeypair, error) {
	priv, err := deterministicX25519Key(rng)
	if err != nil {
		return nil, fmt.Errorf("cnc: generate seal keypair: %w", err)
	}
	return &SealKeypair{Public: priv.PublicKey(), private: priv}, nil
}

// Seal encrypts plaintext to the coordinator public key: an ephemeral
// X25519 exchange derives a SHA-256 keystream that whitens the payload.
// (Confidentiality-only, as the real deployment's GPG-like sealing was;
// integrity is not the property the paper discusses.)
func Seal(pub *ecdh.PublicKey, rng *sim.RNG, plaintext []byte) ([]byte, error) {
	eph, err := deterministicX25519Key(rng)
	if err != nil {
		return nil, fmt.Errorf("cnc: seal: %w", err)
	}
	shared, err := eph.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("cnc: seal: %w", err)
	}
	out := make([]byte, 32+len(plaintext))
	copy(out, eph.PublicKey().Bytes())
	keystreamXOR(shared, plaintext, out[32:])
	return out, nil
}

// ErrSealedTooShort is returned for malformed sealed blobs.
var ErrSealedTooShort = errors.New("cnc: sealed blob too short")

// Open decrypts a sealed blob with the coordinator private key.
func (kp *SealKeypair) Open(blob []byte) ([]byte, error) {
	if len(blob) < 32 {
		return nil, ErrSealedTooShort
	}
	ephPub, err := ecdh.X25519().NewPublicKey(blob[:32])
	if err != nil {
		return nil, fmt.Errorf("cnc: open: %w", err)
	}
	shared, err := kp.private.ECDH(ephPub)
	if err != nil {
		return nil, fmt.Errorf("cnc: open: %w", err)
	}
	out := make([]byte, len(blob)-32)
	keystreamXOR(shared, blob[32:], out)
	return out, nil
}

// keystreamXOR XORs src into dst under a SHA-256 counter-mode keystream
// keyed by the shared secret.
func keystreamXOR(shared, src, dst []byte) {
	var block [40]byte
	copy(block[:32], shared)
	var counter uint64
	for off := 0; off < len(src); {
		block[32] = byte(counter)
		block[33] = byte(counter >> 8)
		block[34] = byte(counter >> 16)
		block[35] = byte(counter >> 24)
		block[36] = byte(counter >> 32)
		block[37] = byte(counter >> 40)
		block[38] = byte(counter >> 48)
		block[39] = byte(counter >> 56)
		ks := sha256.Sum256(block[:])
		for i := 0; i < len(ks) && off < len(src); i++ {
			dst[off] = src[off] ^ ks[i]
			off++
		}
		counter++
	}
}

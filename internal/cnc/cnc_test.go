package cnc

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func testKernel() *sim.Kernel { return sim.NewKernel(sim.WithSeed(11)) }

func TestSealOpenRoundTrip(t *testing.T) {
	k := testKernel()
	kp, err := NewSealKeypair(k.RNG())
	if err != nil {
		t.Fatalf("NewSealKeypair: %v", err)
	}
	for _, msg := range []string{"", "x", "a longer stolen document body with structure"} {
		sealed, err := Seal(kp.Public, k.RNG(), []byte(msg))
		if err != nil {
			t.Fatalf("Seal: %v", err)
		}
		if msg != "" && bytes.Contains(sealed, []byte(msg)) {
			t.Fatal("plaintext visible in sealed blob")
		}
		plain, err := kp.Open(sealed)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if string(plain) != msg {
			t.Fatalf("round trip = %q, want %q", plain, msg)
		}
	}
}

func TestSealConsumesFixedRNGBytes(t *testing.T) {
	// Key generation and sealing must draw a fixed number of bytes from
	// the deterministic RNG. The old ecdh.GenerateKey(reader) path let
	// crypto/internal/randutil.MaybeReadByte consume one extra byte at
	// random (~50% of calls), silently desynchronizing every RNG draw
	// after a sealing operation; 64 trials make a regression essentially
	// certain to flip at least one value.
	var wantAfterKey, wantAfterSeal uint64
	for i := 0; i < 64; i++ {
		r := sim.NewRNG(99)
		kp, err := NewSealKeypair(r)
		if err != nil {
			t.Fatalf("NewSealKeypair: %v", err)
		}
		afterKey := r.Uint64()
		if _, err := Seal(kp.Public, r, []byte("doc")); err != nil {
			t.Fatalf("Seal: %v", err)
		}
		afterSeal := r.Uint64()
		if i == 0 {
			wantAfterKey, wantAfterSeal = afterKey, afterSeal
			continue
		}
		if afterKey != wantAfterKey || afterSeal != wantAfterSeal {
			t.Fatalf("trial %d: RNG stream shifted (key %d vs %d, seal %d vs %d)",
				i, afterKey, wantAfterKey, afterSeal, wantAfterSeal)
		}
	}
}

func TestSealDifferentKeyCannotOpen(t *testing.T) {
	k := testKernel()
	kp1, _ := NewSealKeypair(k.RNG())
	kp2, _ := NewSealKeypair(k.RNG())
	sealed, _ := Seal(kp1.Public, k.RNG(), []byte("secret document"))
	got, err := kp2.Open(sealed)
	if err == nil && string(got) == "secret document" {
		t.Fatal("wrong key decrypted the blob")
	}
}

func TestOpenTruncated(t *testing.T) {
	k := testKernel()
	kp, _ := NewSealKeypair(k.RNG())
	if _, err := kp.Open([]byte("short")); !errors.Is(err, ErrSealedTooShort) {
		t.Fatalf("err = %v", err)
	}
}

func TestPackageWireRoundTrip(t *testing.T) {
	pkgs := []*Package{
		{Name: "module:snack", Target: "client-1", Payload: []byte{1, 2, 3}},
		{Name: PkgDomainUpdate, Payload: []byte("a.example\nb.example")},
	}
	got, err := DecodePackages(encodePackages(pkgs))
	if err != nil {
		t.Fatalf("DecodePackages: %v", err)
	}
	if len(got) != 2 || got[0].Name != "module:snack" || got[0].Target != "client-1" {
		t.Fatalf("got = %+v", got[0])
	}
	if !bytes.Equal(got[1].Payload, pkgs[1].Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestPackageWireHostile(t *testing.T) {
	raw := encodePackages([]*Package{{Name: "x", Payload: []byte("y")}})
	for i := 0; i < len(raw); i++ {
		if _, err := DecodePackages(raw[:i]); err == nil {
			t.Fatalf("accepted %d-byte prefix", i)
		}
	}
	if _, err := DecodePackages(append(raw, 0)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func testServer(t *testing.T) (*sim.Kernel, *netsim.Internet, *Server, *SealKeypair) {
	t.Helper()
	k := testKernel()
	in := netsim.NewInternet(k)
	kp, err := NewSealKeypair(k.RNG())
	if err != nil {
		t.Fatalf("NewSealKeypair: %v", err)
	}
	s := NewServer(k, in, "203.0.113.10", kp.Public)
	return k, in, s, kp
}

func clientReq(cmd, client, name string, body []byte) *netsim.Request {
	return &netsim.Request{
		Method: "POST", Host: "203.0.113.10", Path: ClientPath,
		Query: map[string]string{"cmd": cmd, "client": client, "type": string(ClientFL), "name": name},
		Body:  body, Source: client,
	}
}

func TestServerGetNewsAdsAndBroadcast(t *testing.T) {
	_, in, s, _ := testServer(t)
	s.PushAd("victim-1", &Package{Name: "module:custom", Payload: []byte("targeted")})
	s.PushNews(&Package{Name: "module:update", Payload: []byte("for-everyone")})

	resp, err := in.Dispatch(clientReq(CmdGetNews, "victim-1", "", nil))
	if err != nil || resp.Status != 200 {
		t.Fatalf("dispatch: %v %v", err, resp)
	}
	pkgs, err := DecodePackages(resp.Body)
	if err != nil || len(pkgs) != 2 {
		t.Fatalf("packages = %v, %v", pkgs, err)
	}

	// Ads are consumed; news is delivered once per client.
	resp, _ = in.Dispatch(clientReq(CmdGetNews, "victim-1", "", nil))
	pkgs, _ = DecodePackages(resp.Body)
	if len(pkgs) != 0 {
		t.Fatalf("second fetch = %d packages, want 0", len(pkgs))
	}

	// Another client still receives the broadcast, not the ad.
	resp, _ = in.Dispatch(clientReq(CmdGetNews, "victim-2", "", nil))
	pkgs, _ = DecodePackages(resp.Body)
	if len(pkgs) != 1 || pkgs[0].Name != "module:update" {
		t.Fatalf("victim-2 packages = %+v", pkgs)
	}
}

func TestServerClientBookkeeping(t *testing.T) {
	k, in, s, _ := testServer(t)
	in.Dispatch(clientReq(CmdGetNews, "victim-1", "", nil))
	k.RunFor(time.Hour)
	in.Dispatch(clientReq(CmdGetNews, "victim-1", "", nil))
	rec := s.DB.Clients["victim-1"]
	if rec == nil || rec.Contacts != 2 || rec.Type != ClientFL {
		t.Fatalf("record = %+v", rec)
	}
	if !rec.LastSeen.After(rec.FirstSeen) {
		t.Fatal("LastSeen not updated")
	}
}

func TestServerAddEntryAndOperatorCannotRead(t *testing.T) {
	k, in, s, kp := testServer(t)
	sealed, _ := Seal(kp.Public, k.RNG(), []byte("design.dwg contents"))
	resp, err := in.Dispatch(clientReq(CmdAddEntry, "victim-1", "design.dwg", sealed))
	if err != nil || resp.Status != 200 {
		t.Fatalf("ADD_ENTRY: %v %v", err, resp)
	}
	if s.PendingEntries() != 1 || s.TotalEntryBytes != int64(len(sealed)) {
		t.Fatalf("entries = %d bytes = %d", s.PendingEntries(), s.TotalEntryBytes)
	}
	entries := s.FetchEntries()
	if len(entries) != 1 || entries[0].Name != "design.dwg" {
		t.Fatalf("entries = %+v", entries)
	}
	// Sealed payload is not plaintext.
	if bytes.Contains(entries[0].Sealed, []byte("design.dwg contents")) {
		t.Fatal("entry stored in plaintext")
	}
	// Coordinator recovers it.
	plain, err := kp.Open(entries[0].Sealed)
	if err != nil || string(plain) != "design.dwg contents" {
		t.Fatalf("Open: %v %q", err, plain)
	}
	// Fetch marks retrieved: second fetch empty.
	if len(s.FetchEntries()) != 0 {
		t.Fatal("entries fetched twice")
	}
}

func TestServerBadRequests(t *testing.T) {
	_, in, _, _ := testServer(t)
	resp, _ := in.Dispatch(&netsim.Request{Host: "203.0.113.10", Path: ClientPath, Query: map[string]string{"cmd": CmdGetNews}})
	if resp.Status != 400 {
		t.Fatalf("missing client id: status %d", resp.Status)
	}
	resp, _ = in.Dispatch(clientReq("WHO_ARE_YOU", "x", "", nil))
	if resp.Status != 400 {
		t.Fatalf("unknown command: status %d", resp.Status)
	}
	// Disguise page.
	resp, _ = in.Dispatch(&netsim.Request{Host: "203.0.113.10", Path: "/"})
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "It works!") {
		t.Fatalf("disguise = %v", resp)
	}
}

func TestLogWiper(t *testing.T) {
	_, in, s, _ := testServer(t)
	in.Dispatch(clientReq(CmdGetNews, "v", "", nil))
	if s.AccessLogLen() == 0 {
		t.Fatal("no access log accumulated")
	}
	s.RunLogWiper()
	if s.AccessLogLen() != 0 || !s.LogWiperRan {
		t.Fatal("LogWiper ineffective")
	}
}

func TestCleanupRetention(t *testing.T) {
	k, in, s, kp := testServer(t)
	s.StartCleanup(30 * time.Minute)
	sealed, _ := Seal(kp.Public, k.RNG(), []byte("doc"))
	in.Dispatch(clientReq(CmdAddEntry, "v", "a.docx", sealed))
	// Not yet retrieved: survives indefinitely.
	k.RunFor(2 * time.Hour)
	if s.PendingEntries() != 1 {
		t.Fatalf("unretrieved entry removed: %d", s.PendingEntries())
	}
	s.FetchEntries()
	k.RunFor(2 * time.Hour)
	if s.PendingEntries() != 0 {
		t.Fatalf("retrieved entry not cleaned: %d", s.PendingEntries())
	}
	s.StopCleanup()
}

func TestDomainPoolShape(t *testing.T) {
	k := testKernel()
	pool := NewDomainPool(k.RNG(), DefaultDomainCount, DefaultServerIPCount)
	if len(pool.Domains()) != DefaultDomainCount {
		t.Fatalf("domains = %d", len(pool.Domains()))
	}
	if len(pool.IPs()) != DefaultServerIPCount {
		t.Fatalf("IPs = %d", len(pool.IPs()))
	}
	// Registrations carry fake identities in DE/AT.
	for _, r := range pool.Registrations {
		if r.Country != "Germany" && r.Country != "Austria" {
			t.Fatalf("country = %q", r.Country)
		}
		if r.Registrar == "" || r.Identity == "" {
			t.Fatalf("registration incomplete: %+v", r)
		}
	}
	if got := pool.BootstrapConfig(BootstrapDomains); len(got) != 5 {
		t.Fatalf("bootstrap = %d", len(got))
	}
}

func TestDomainPoolRegisterUnregister(t *testing.T) {
	k := testKernel()
	in := netsim.NewInternet(k)
	pool := NewDomainPool(k.RNG(), 10, 3)
	pool.RegisterAll(in)
	if len(in.Domains()) != 10 || in.DistinctServerIPs() != 3 {
		t.Fatalf("registered %d domains, %d IPs", len(in.Domains()), in.DistinctServerIPs())
	}
	pool.UnregisterAll(in)
	if len(in.Domains()) != 0 {
		t.Fatal("takedown incomplete")
	}
}

func TestAttackCenterEndToEnd(t *testing.T) {
	k := testKernel()
	in := netsim.NewInternet(k)
	center, err := NewAttackCenter(k, in, 20, 4)
	if err != nil {
		t.Fatalf("NewAttackCenter: %v", err)
	}
	if len(center.Servers) != 4 {
		t.Fatalf("servers = %d", len(center.Servers))
	}
	center.Admin().ProvisionAll(30 * time.Minute)
	for _, s := range center.Servers {
		if !s.LogWiperRan {
			t.Fatal("admin provisioning skipped a server")
		}
	}

	// A victim host checks in and uploads through the beacon client.
	l := netsim.NewLAN(k, "office", "10.0.0", in)
	victim := host.New(k, "VICTIM", host.WithInternet(true))
	l.Attach(victim)
	bc := &BeaconClient{
		ID: "victim-1", Type: ClientFL,
		Domains: center.Pool.BootstrapConfig(BootstrapDomains),
		SealPub: center.Seal.Public,
	}
	center.Operator().PushCommandAll(PkgDomainUpdate, []byte(strings.Join(center.Pool.BootstrapConfig(PostContactDomains), "\n")))
	pkgs, err := bc.Contact(l, victim)
	if err != nil {
		t.Fatalf("Contact: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("pkgs = %d", len(pkgs))
	}
	if len(bc.Domains) != PostContactDomains {
		t.Fatalf("domains after update = %d, want %d", len(bc.Domains), PostContactDomains)
	}
	if err := bc.Upload(l, victim, "secret.docx", []byte("contents")); err != nil {
		t.Fatalf("Upload: %v", err)
	}

	// Operator collects but cannot read.
	op := center.Operator()
	if n := op.CollectAll(); n != 1 {
		t.Fatalf("collected = %d", n)
	}
	if _, err := op.TryRead(op.SealedInbox()[0]); !errors.Is(err, ErrOperatorCannotDecrypt) {
		t.Fatalf("TryRead err = %v", err)
	}
	// Coordinator decrypts.
	n, err := center.Coordinator().DecryptAll()
	if err != nil || n != 1 {
		t.Fatalf("DecryptAll: %d %v", n, err)
	}
	docs := center.Coordinator().Archive()
	if len(docs) != 1 || string(docs[0].Data) != "contents" || docs[0].Name != "secret.docx" {
		t.Fatalf("archive = %+v", docs)
	}
	if center.TotalStolenBytes() <= 0 {
		t.Fatal("TotalStolenBytes not counted")
	}
}

func TestBeaconClientNoServer(t *testing.T) {
	k := testKernel()
	in := netsim.NewInternet(k)
	l := netsim.NewLAN(k, "office", "10.0.0", in)
	h := host.New(k, "H", host.WithInternet(true))
	l.Attach(h)
	bc := &BeaconClient{ID: "x", Type: ClientFL, Domains: []string{"dead.example"}}
	if _, err := bc.Contact(l, h); !errors.Is(err, ErrNoServer) {
		t.Fatalf("err = %v", err)
	}
	kp, _ := NewSealKeypair(k.RNG())
	bc.SealPub = kp.Public
	if err := bc.Upload(l, h, "n", []byte("d")); !errors.Is(err, ErrNoServer) {
		t.Fatalf("upload err = %v", err)
	}
}

func TestBeaconClientTriesDomainsInOrder(t *testing.T) {
	k := testKernel()
	in := netsim.NewInternet(k)
	kp, _ := NewSealKeypair(k.RNG())
	s := NewServer(k, in, "203.0.113.99", kp.Public)
	in.RegisterDomain("alive.example", "203.0.113.99")
	l := netsim.NewLAN(k, "office", "10.0.0", in)
	h := host.New(k, "H", host.WithInternet(true))
	l.Attach(h)
	bc := &BeaconClient{ID: "c", Type: ClientSP, Domains: []string{"dead1.example", "dead2.example", "alive.example"}, SealPub: kp.Public}
	if _, err := bc.Contact(l, h); err != nil {
		t.Fatalf("Contact: %v", err)
	}
	if !bc.Contacted {
		t.Fatal("Contacted flag unset")
	}
	if s.DB.Clients["c"] == nil || s.DB.Clients["c"].Type != ClientSP {
		t.Fatal("server did not record client")
	}
}

package cnc

import (
	"bytes"
	"crypto/ecdh"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ClientType tags the malware family/variant checking in — the sample
// analysis found four (paper, Section III-B).
type ClientType string

// Client types observed on the real servers.
const (
	ClientFL  ClientType = "CLIENT_TYPE_FL"
	ClientSP  ClientType = "CLIENT_TYPE_SP"
	ClientSPE ClientType = "CLIENT_TYPE_SPE"
	ClientIP  ClientType = "CLIENT_TYPE_IP"
)

// Protocol constants: the two commands infected machines use.
const (
	CmdGetNews  = "GET_NEWS"
	CmdAddEntry = "ADD_ENTRY"
	// PanelPath is the control-panel endpoint the operator uses.
	PanelPath = "/newsforyou/CP/CP.php"
	// ClientPath is the endpoint infected machines talk to.
	ClientPath = "/newsforyou/gateway.php"
)

// Package is a command or module update parked in ads/ (targeted) or
// news/ (broadcast).
//
// Span carries the causal episode of the operator order that queued the
// package; it rides the wire so clients can attribute whatever the
// command does (module install, suicide) to that order.
type Package struct {
	Name    string
	Target  string // client ID; empty = all clients (news folder)
	Payload []byte
	Span    obs.Span
}

// Entry is one sealed stolen-data upload parked in entries/.
type Entry struct {
	ID        int
	ClientID  string
	Name      string
	Sealed    []byte
	At        time.Time
	Retrieved bool
}

// ClientRecord is the database row for a connecting client.
type ClientRecord struct {
	ID        string
	Type      ClientType
	FirstSeen time.Time
	LastSeen  time.Time
	Contacts  int
}

// Database is the server's MySQL-like bookkeeping store.
type Database struct {
	Clients   map[string]*ClientRecord
	PanelAuth map[string]string // user -> password hash (toy)
	Settings  map[string]string
}

// NewDatabase returns an empty database with default panel auth.
func NewDatabase() *Database {
	return &Database{
		Clients:   make(map[string]*ClientRecord),
		PanelAuth: map[string]string{"operator": "hash:46dff7..."},
		Settings:  map[string]string{"encryption": "pubkey-seal", "retention_minutes": "30"},
	}
}

// Server is one C&C node: a LAMP-style web server with the newsforyou
// store (paper, Fig. 5).
type Server struct {
	K  *sim.Kernel
	IP netsim.IP
	DB *Database
	// SealPub is the coordinator public key clients and the server use to
	// seal stolen data.
	SealPub *ecdh.PublicKey

	ads     map[string][]*Package
	news    []*Package
	entries []*Entry
	nextID  int

	// accessLog mimics the system logs LogWiper.sh destroys.
	accessLog []string
	// LogWiperRan records that the admin's setup script ran and deleted
	// itself.
	LogWiperRan bool

	// TotalEntryBytes counts sealed bytes ever parked (survives cleanup),
	// for the 5.5 GB/week measurement.
	TotalEntryBytes int64

	stopCleanup func()
}

// NewServer creates a C&C server bound at ip on the internet.
func NewServer(k *sim.Kernel, in *netsim.Internet, ip netsim.IP, sealPub *ecdh.PublicKey) *Server {
	s := &Server{
		K:       k,
		IP:      ip,
		DB:      NewDatabase(),
		SealPub: sealPub,
		ads:     make(map[string][]*Package),
	}
	in.BindServer(ip, s)
	return s
}

// ServeSim implements netsim.Handler.
func (s *Server) ServeSim(req *netsim.Request) *netsim.Response {
	s.accessLog = append(s.accessLog, fmt.Sprintf("%s %s %s from %s", s.K.Now().Format(time.RFC3339), req.Method, req.Path, req.Source))
	switch req.Path {
	case ClientPath:
		return s.serveClient(req)
	case PanelPath:
		// The panel is driven directly by the attack-center types; over
		// HTTP it only confirms liveness (mimicking an innocuous page).
		return netsim.OK([]byte("<html><body>news</body></html>"))
	default:
		// Disguised as an ordinary web server.
		return netsim.OK([]byte("<html><body>It works!</body></html>"))
	}
}

func (s *Server) serveClient(req *netsim.Request) *netsim.Response {
	clientID := req.Query["client"]
	if clientID == "" {
		return &netsim.Response{Status: 400}
	}
	s.touchClient(clientID, ClientType(req.Query["type"]))
	switch req.Query["cmd"] {
	case CmdGetNews:
		pkgs := s.takePackages(clientID)
		s.K.Metrics().Counter("cnc.news.serve").Inc()
		s.K.Trace().Emit(s.K.Now(), sim.CatC2, string(s.IP),
			fmt.Sprintf("GET_NEWS %s -> %d packages", clientID, len(pkgs)),
			obs.T("client", clientID), obs.Ti("packages", int64(len(pkgs))))
		return netsim.OK(encodePackages(pkgs))
	case CmdAddEntry:
		name := req.Query["name"]
		s.nextID++
		s.entries = append(s.entries, &Entry{
			ID: s.nextID, ClientID: clientID, Name: name,
			Sealed: append([]byte(nil), req.Body...), At: s.K.Now(),
		})
		s.TotalEntryBytes += int64(len(req.Body))
		s.K.Metrics().Counter("cnc.entry.add").Inc()
		s.K.Metrics().Histogram("cnc.entry.bytes", obs.ByteBuckets).Observe(float64(len(req.Body)))
		s.K.Trace().Emit(s.K.Now(), sim.CatExfil, string(s.IP),
			fmt.Sprintf("ADD_ENTRY %s %q (%d bytes)", clientID, name, len(req.Body)),
			obs.T("client", clientID), obs.T("entry", name), obs.Ti("bytes", int64(len(req.Body))))
		return netsim.OK([]byte("OK"))
	default:
		return &netsim.Response{Status: 400}
	}
}

func (s *Server) touchClient(id string, t ClientType) {
	rec, ok := s.DB.Clients[id]
	if !ok {
		rec = &ClientRecord{ID: id, Type: t, FirstSeen: s.K.Now()}
		s.DB.Clients[id] = rec
	}
	rec.LastSeen = s.K.Now()
	rec.Contacts++
}

// takePackages removes and returns everything queued for the client:
// its ads folder plus unconsumed broadcast news.
func (s *Server) takePackages(clientID string) []*Package {
	out := append([]*Package(nil), s.ads[clientID]...)
	delete(s.ads, clientID)
	rec := s.DB.Clients[clientID]
	// Broadcast news: deliver each package once per client, tracked by a
	// per-client high-water mark stored in Contacts-agnostic way. Keep it
	// simple: a per-client index in settings.
	key := "news_idx:" + clientID
	idx := 0
	if v, ok := s.DB.Settings[key]; ok {
		fmt.Sscanf(v, "%d", &idx)
	}
	for ; idx < len(s.news); idx++ {
		out = append(out, s.news[idx])
	}
	s.DB.Settings[key] = fmt.Sprintf("%d", idx)
	_ = rec
	return out
}

// PushAd queues a package for one specific client (the ads folder).
func (s *Server) PushAd(clientID string, p *Package) {
	p.Target = clientID
	s.ads[clientID] = append(s.ads[clientID], p)
}

// PushNews queues a broadcast package (the news folder).
func (s *Server) PushNews(p *Package) {
	p.Target = ""
	s.news = append(s.news, p)
}

// FetchEntries returns (and marks retrieved) all unretrieved sealed
// entries — the operator's download step. The payloads remain sealed.
func (s *Server) FetchEntries() []*Entry {
	var out []*Entry
	for _, e := range s.entries {
		if !e.Retrieved {
			e.Retrieved = true
			out = append(out, e)
		}
	}
	return out
}

// PendingEntries counts entries still on disk (retrieved or not).
func (s *Server) PendingEntries() int { return len(s.entries) }

// RunLogWiper is the admin's LogWiper.sh: it destroys the access log and
// deletes itself (paper, Fig. 5 discussion).
func (s *Server) RunLogWiper() {
	s.accessLog = nil
	s.LogWiperRan = true
	s.K.Trace().Add(s.K.Now(), sim.CatC2, string(s.IP), "LogWiper.sh: logs shredded, script deleted")
}

// AccessLogLen reports surviving access-log lines.
func (s *Server) AccessLogLen() int { return len(s.accessLog) }

// StartCleanup schedules the retention job: every interval, retrieved
// entries older than interval are removed ("stolen files ... cleaned up
// every 30 minutes", paper, Fig. 5 discussion).
func (s *Server) StartCleanup(interval time.Duration) {
	s.StopCleanup()
	s.stopCleanup = s.K.Every(interval, "cleanup:"+string(s.IP), func() {
		cutoff := s.K.Now().Add(-interval)
		kept := s.entries[:0]
		removed := 0
		for _, e := range s.entries {
			if e.Retrieved && e.At.Before(cutoff) {
				removed++
				continue
			}
			kept = append(kept, e)
		}
		s.entries = kept
		if removed > 0 {
			s.K.Trace().Add(s.K.Now(), sim.CatC2, string(s.IP), "retention job removed %d entries", removed)
		}
	})
}

// StopCleanup cancels the retention job.
func (s *Server) StopCleanup() {
	if s.stopCleanup != nil {
		s.stopCleanup()
		s.stopCleanup = nil
	}
}

// --- package wire encoding ---

func encodePackages(pkgs []*Package) []byte {
	var b bytes.Buffer
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(pkgs)))
	b.Write(tmp[:])
	for _, p := range pkgs {
		writeFrame(&b, []byte(p.Name))
		writeFrame(&b, []byte(p.Target))
		writeFrame(&b, p.Payload)
		var span [8]byte
		binary.LittleEndian.PutUint64(span[:], uint64(p.Span))
		b.Write(span[:])
	}
	return b.Bytes()
}

// ErrBadWire is returned for malformed package payloads.
var ErrBadWire = errors.New("cnc: malformed package encoding")

// DecodePackages parses the GET_NEWS response body.
func DecodePackages(raw []byte) ([]*Package, error) {
	if len(raw) < 4 {
		return nil, ErrBadWire
	}
	count := binary.LittleEndian.Uint32(raw)
	pos := 4
	if count > 4096 {
		return nil, fmt.Errorf("%w: %d packages", ErrBadWire, count)
	}
	out := make([]*Package, 0, count)
	for i := 0; i < int(count); i++ {
		name, n, err := readFrame(raw, pos)
		if err != nil {
			return nil, err
		}
		pos = n
		target, n, err := readFrame(raw, pos)
		if err != nil {
			return nil, err
		}
		pos = n
		payload, n, err := readFrame(raw, pos)
		if err != nil {
			return nil, err
		}
		pos = n
		if pos+8 > len(raw) {
			return nil, ErrBadWire
		}
		span := obs.Span(binary.LittleEndian.Uint64(raw[pos:]))
		pos += 8
		out = append(out, &Package{Name: string(name), Target: string(target), Payload: payload, Span: span})
	}
	if pos != len(raw) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadWire)
	}
	return out, nil
}

func writeFrame(b *bytes.Buffer, data []byte) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(data)))
	b.Write(tmp[:])
	b.Write(data)
}

func readFrame(raw []byte, pos int) ([]byte, int, error) {
	if pos+4 > len(raw) {
		return nil, 0, ErrBadWire
	}
	n := int(binary.LittleEndian.Uint32(raw[pos:]))
	pos += 4
	if n < 0 || pos+n > len(raw) {
		return nil, 0, ErrBadWire
	}
	out := make([]byte, n)
	copy(out, raw[pos:pos+n])
	return out, pos + n, nil
}

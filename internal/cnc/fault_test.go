package cnc

import (
	"errors"
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestFaultBeaconAuditTrail pins the satellite contract: a Contact cycle
// that walks only dead domains must not fail silently — every dead domain
// leaves a trace record with its failure reason, the cnc.beacon.failover
// counter advances, and the backoff streak doubles the retry delay.
func TestFaultBeaconAuditTrail(t *testing.T) {
	k := testKernel()
	in := netsim.NewInternet(k)
	in.RegisterDomain("noserver.example", "203.0.113.77") // resolves, nobody home
	l := netsim.NewLAN(k, "office", "10.0.0", in)
	h := host.New(k, "H", host.WithInternet(true))
	l.Attach(h)

	bc := &BeaconClient{ID: "c", Type: ClientFL,
		Domains: []string{"gone1.example", "noserver.example", "gone2.example"}}
	if _, err := bc.Contact(l, h); !errors.Is(err, ErrNoServer) {
		t.Fatalf("err = %v, want ErrNoServer", err)
	}

	if bc.Stats.Attempts != 1 || bc.Stats.Failovers != 3 || bc.Stats.ConsecFailures != 1 {
		t.Fatalf("stats = %+v", bc.Stats)
	}
	if got := k.Metrics().Counter("cnc.beacon.failover").Value(); got != 3 {
		t.Fatalf("cnc.beacon.failover = %g, want 3", got)
	}
	recs := k.Trace().Find("beacon failed at")
	if len(recs) != 3 {
		t.Fatalf("failover trace records = %d, want 3", len(recs))
	}
	reasons := make(map[string]string)
	for _, r := range recs {
		e := r.Event()
		domain, _ := e.Get("domain")
		reason, _ := e.Get("reason")
		reasons[domain] = reason
		if e.Cat != string(sim.CatC2) {
			t.Fatalf("failover event in category %q", e.Cat)
		}
	}
	want := map[string]string{
		"gone1.example": "nxdomain", "gone2.example": "nxdomain",
		"noserver.example": "no-server",
	}
	for d, r := range want {
		if reasons[d] != r {
			t.Fatalf("domain %s reason = %q, want %q (all: %v)", d, reasons[d], r, reasons)
		}
	}

	base := time.Hour
	if d := bc.NextDelay(base); d != 2*time.Hour {
		t.Fatalf("NextDelay after 1 failed cycle = %s, want 2h", d)
	}
	if _, err := bc.Contact(l, h); !errors.Is(err, ErrNoServer) {
		t.Fatalf("second cycle err = %v", err)
	}
	if d := bc.NextDelay(base); d != 4*time.Hour {
		t.Fatalf("NextDelay after 2 failed cycles = %s, want 4h", d)
	}
}

// TestFaultBeaconRotationAfterTakedown pins the domain-agility audit: when
// the preferred domain dies, the next cycle fails over, succeeds on a
// survivor, records an explicit rotation, and starts there next time.
func TestFaultBeaconRotationAfterTakedown(t *testing.T) {
	k := testKernel()
	in := netsim.NewInternet(k)
	kp, _ := NewSealKeypair(k.RNG())
	NewServer(k, in, "203.0.113.99", kp.Public)
	in.RegisterDomain("primary.example", "203.0.113.99")
	in.RegisterDomain("backup.example", "203.0.113.99")
	l := netsim.NewLAN(k, "office", "10.0.0", in)
	h := host.New(k, "H", host.WithInternet(true))
	l.Attach(h)

	bc := &BeaconClient{ID: "c", Type: ClientFL,
		Domains: []string{"primary.example", "backup.example"}, SealPub: kp.Public}
	if _, err := bc.Contact(l, h); err != nil {
		t.Fatalf("first contact: %v", err)
	}
	if bc.PreferredDomain() != "primary.example" || bc.Stats.Rotations != 0 {
		t.Fatalf("preferred = %q rotations = %d", bc.PreferredDomain(), bc.Stats.Rotations)
	}

	sp := k.OpenSpan(sim.CatFault, "faults", "takedown", "takedown")
	if !in.Takedown("primary.example", sp) {
		t.Fatal("Takedown failed")
	}
	if _, err := bc.Contact(l, h); err != nil {
		t.Fatalf("post-takedown contact: %v", err)
	}
	if bc.PreferredDomain() != "backup.example" {
		t.Fatalf("preferred = %q, want backup.example", bc.PreferredDomain())
	}
	if bc.Stats.Rotations != 1 || bc.Stats.Failovers != 1 || bc.Stats.ConsecFailures != 0 {
		t.Fatalf("stats = %+v", bc.Stats)
	}
	if recs := k.Trace().Find("beacon rotated preferred domain"); len(recs) != 1 {
		t.Fatalf("rotation trace records = %d, want 1", len(recs))
	}
}

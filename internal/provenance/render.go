package provenance

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// maxLabel bounds node labels in both renderers so 30,000-host forests
// stay legible.
const maxLabel = 56

func clip(s string) string {
	if len(s) <= maxLabel {
		return s
	}
	return s[:maxLabel-1] + "…"
}

// dotEscape makes a string safe inside a double-quoted DOT label.
func dotEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// DOT renders the forest as a deterministic Graphviz digraph: one cluster
// per experiment tag, vector-labelled edges, orphans dashed. Identical
// inputs yield identical bytes.
func (f *Forest) DOT(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("digraph provenance {\n")
	bw.printf("  rankdir=LR;\n")
	bw.printf("  node [shape=box, fontsize=10, fontname=\"monospace\"];\n")
	bw.printf("  edge [fontsize=9, fontname=\"monospace\"];\n")

	nodes := f.sorted()
	exps := f.Exps()
	multi := len(exps) > 1
	for ci, exp := range exps {
		indent := "  "
		if multi {
			bw.printf("  subgraph cluster_%d {\n", ci)
			bw.printf("    label=\"%s\";\n", dotEscape(exp))
			indent = "    "
		}
		for _, n := range nodes {
			if n.ID.Exp != exp {
				continue
			}
			label := fmt.Sprintf("%s\\n[%s] %s", dotEscape(n.Actor), dotEscape(n.Cat), dotEscape(clip(n.Msg)))
			bw.printf("%s\"%s\" [label=\"%s\"];\n", indent, dotEscape(n.ID.String()), label)
		}
		if multi {
			bw.printf("  }\n")
		}
	}
	for _, n := range nodes {
		if n.Up != nil {
			bw.printf("  \"%s\" -> \"%s\" [label=\"%s\"];\n",
				dotEscape(n.Up.ID.String()), dotEscape(n.ID.String()), dotEscape(n.Vector))
		} else if n.Parent != 0 {
			// Orphan: parent evicted or outside the export window.
			bw.printf("  \"s%d?\" -> \"%s\" [label=\"%s\", style=dashed];\n",
				n.Parent, dotEscape(n.ID.String()), dotEscape(n.Vector))
		}
	}
	bw.printf("}\n")
	return bw.err
}

// Text renders the forest as an indented tree, one block per root, roots
// in deterministic order. Children show their delivery vector and their
// virtual-time offset from the root.
func (f *Forest) Text(w io.Writer) error {
	bw := &errWriter{w: w}
	writeTree := func(root *Node) {
		var walk func(n *Node, depth int)
		walk = func(n *Node, depth int) {
			if depth == 0 {
				bw.printf("%s  %s  [%s] %s  (%s)\n",
					n.ID, n.Actor, n.Cat, clip(n.Msg), n.At.UTC().Format(time.RFC3339))
			} else {
				bw.printf("%s+- (%s) %s  %s  [%s] %s  (+%s)\n",
					strings.Repeat("  ", depth), n.Vector, n.ID, n.Actor, n.Cat, clip(n.Msg),
					n.At.Sub(root.At))
			}
			for _, c := range n.Children {
				walk(c, depth+1)
			}
		}
		walk(root, 0)
	}
	for i, r := range f.Roots {
		if i > 0 {
			bw.printf("\n")
		}
		writeTree(r)
	}
	if len(f.Orphans) > 0 {
		if len(f.Roots) > 0 {
			bw.printf("\n")
		}
		bw.printf("orphans (parent outside export window):\n")
		for _, n := range f.Orphans {
			bw.printf("  (%s) %s  %s  [%s] %s\n", n.Vector, n.ID, n.Actor, n.Cat, clip(n.Msg))
		}
	}
	return bw.err
}

// RenderStats formats the aggregate block used in experiment reports.
func RenderStats(s Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "provenance: %d episodes, %d roots, max depth %d, max fan-out %d (%d/%d events spanned)\n",
		s.Nodes, s.Roots, s.MaxDepth, s.MaxFanOut, s.Spanned, s.Total)
	if s.Orphans > 0 {
		fmt.Fprintf(&b, "orphans: %d\n", s.Orphans)
	}
	if len(s.Vectors) > 0 {
		vecs := make([]string, 0, len(s.Vectors))
		for v := range s.Vectors {
			vecs = append(vecs, v)
		}
		sort.Strings(vecs)
		b.WriteString("vectors:")
		for _, v := range vecs {
			fmt.Fprintf(&b, " %s=%d", v, s.Vectors[v])
		}
		b.WriteString("\n")
	}
	for d, dt := range s.HopTimes {
		if dt >= 0 {
			fmt.Fprintf(&b, "first hop to depth %d after %s\n", d+1, dt)
		}
	}
	return b.String()
}

// errWriter folds the first write error, so renderers can stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

package provenance

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

var t0 = time.Date(2012, 8, 15, 8, 0, 0, 0, time.UTC)

// fixture is a two-experiment stream: a Shamoon-like spread tree under
// F9 and a single root under F8, plus span-free noise and in-episode
// detail records.
func fixture() []obs.Event {
	ev := func(seq uint64, dt time.Duration, cat, actor, msg string, span, parent obs.Span, tags ...obs.Tag) obs.Event {
		return obs.Event{At: t0.Add(dt), Seq: seq, Cat: cat, Actor: actor, Msg: msg,
			Span: span, Parent: parent, Tags: tags}
	}
	return []obs.Event{
		ev(1, 0, "infect", "WS-1", "installed", 1, 0,
			obs.T("exp", "F9"), obs.T("vector", "root")),
		ev(2, time.Minute, "exec", "WS-1", "dropper copied", 1, 0, obs.T("exp", "F9")),
		ev(3, 2*time.Hour, "infect", "WS-2", "installed", 2, 1,
			obs.T("exp", "F9"), obs.T("vector", "psexec")),
		ev(4, 2*time.Hour, "infect", "WS-3", "installed", 3, 1,
			obs.T("exp", "F9"), obs.T("vector", "psexec")),
		ev(5, 4*time.Hour, "wipe", "WS-2", "wiper detonated", 4, 2,
			obs.T("exp", "F9"), obs.T("vector", "trigger-timer")),
		ev(6, 4*time.Hour, "network", "net", "span-free noise", 0, 0, obs.T("exp", "F9")),
		// A second experiment sharing span numbers 1..2: must not collide.
		ev(1, 0, "infect", "HOST-A", "installed", 1, 0,
			obs.T("exp", "F8"), obs.T("vector", "root")),
		ev(2, time.Hour, "exec", "HOST-A", `payload "quoted"`, 2, 1,
			obs.T("exp", "F8"), obs.T("vector", "keyed-payload")),
	}
}

func TestBuildShape(t *testing.T) {
	f := Build(fixture())
	if len(f.Nodes) != 6 {
		t.Fatalf("nodes = %d, want 6", len(f.Nodes))
	}
	if len(f.Roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(f.Roots))
	}
	if len(f.Orphans) != 0 {
		t.Fatalf("orphans = %v", f.Orphans)
	}
	if issues := f.Validate(); len(issues) != 0 {
		t.Fatalf("valid fixture reported issues: %v", issues)
	}
	// Roots sort by experiment tag.
	if f.Roots[0].ID.Exp != "F8" || f.Roots[1].ID.Exp != "F9" {
		t.Fatalf("root order: %s, %s", f.Roots[0].ID, f.Roots[1].ID)
	}
	root := f.Node(NodeID{Exp: "F9", Span: 1})
	if root == nil || len(root.Children) != 2 {
		t.Fatalf("F9 root children = %+v", root)
	}
	if root.Events != 2 {
		t.Fatalf("root carries %d events, want opener + detail", root.Events)
	}
	wiper := f.Node(NodeID{Exp: "F9", Span: 4})
	if wiper.Depth() != 2 || wiper.Up.ID.Span != 2 {
		t.Fatalf("wiper depth=%d parent=%v", wiper.Depth(), wiper.Up.ID)
	}
}

func TestChain(t *testing.T) {
	f := Build(fixture())
	chain := f.Chain(NodeID{Exp: "F9", Span: 4})
	if len(chain) != 3 {
		t.Fatalf("chain length = %d, want root->hop->wipe", len(chain))
	}
	want := []obs.Span{1, 2, 4}
	for i, n := range chain {
		if n.ID.Span != want[i] {
			t.Fatalf("chain[%d] = %s, want s%d", i, n.ID, want[i])
		}
	}
	if f.Chain(NodeID{Exp: "F9", Span: 99}) != nil {
		t.Fatal("unknown span produced a chain")
	}
}

func TestStats(t *testing.T) {
	f := Build(fixture())
	s := f.Stats()
	if s.Nodes != 6 || s.Roots != 2 || s.Orphans != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxDepth != 2 || s.MaxFanOut != 2 {
		t.Fatalf("depth/fanout = %d/%d, want 2/2", s.MaxDepth, s.MaxFanOut)
	}
	if s.Vectors["psexec"] != 2 || s.Vectors["root"] != 2 {
		t.Fatalf("vectors = %v", s.Vectors)
	}
	if len(s.HopTimes) != 2 || s.HopTimes[0] != time.Hour || s.HopTimes[1] != 4*time.Hour {
		t.Fatalf("hop times = %v", s.HopTimes)
	}
	if s.Total != 8 || s.Spanned != 7 {
		t.Fatalf("total/spanned = %d/%d", s.Total, s.Spanned)
	}
}

func TestValidateFlagsViolations(t *testing.T) {
	events := []obs.Event{
		// Parent 9 never opens.
		{At: t0, Seq: 1, Cat: "infect", Actor: "a", Msg: "m", Span: 10, Parent: 9},
		// Child opens before its parent.
		{At: t0.Add(time.Hour), Seq: 2, Cat: "infect", Actor: "b", Msg: "m", Span: 11},
		{At: t0, Seq: 3, Cat: "infect", Actor: "c", Msg: "m", Span: 12, Parent: 11},
		// Parent allocated after the child (impossible under kernel
		// allocation order).
		{At: t0, Seq: 4, Cat: "infect", Actor: "d", Msg: "m", Span: 5, Parent: 13},
		{At: t0, Seq: 5, Cat: "infect", Actor: "e", Msg: "m", Span: 13},
	}
	f := Build(events)
	issues := f.Validate()
	if len(issues) != 3 {
		t.Fatalf("issues = %v, want 3", issues)
	}
	if len(f.Orphans) != 1 {
		t.Fatalf("orphans = %d, want 1", len(f.Orphans))
	}
}

func TestFilterExp(t *testing.T) {
	f := FilterExp(fixture(), "F8")
	if len(f.Nodes) != 2 || len(f.Roots) != 1 {
		t.Fatalf("filtered forest: %d nodes, %d roots", len(f.Nodes), len(f.Roots))
	}
	if got := f.Exps(); len(got) != 1 || got[0] != "F8" {
		t.Fatalf("exps = %v", got)
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestDOTGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Build(fixture()).DOT(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture.dot", buf.Bytes())
}

func TestTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Build(fixture()).Text(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture.txt", buf.Bytes())
}

func TestRenderDeterministic(t *testing.T) {
	// Map iteration must never leak into either renderer.
	var first []byte
	for i := 0; i < 20; i++ {
		var dot, txt bytes.Buffer
		f := Build(fixture())
		if err := f.DOT(&dot); err != nil {
			t.Fatal(err)
		}
		if err := f.Text(&txt); err != nil {
			t.Fatal(err)
		}
		combined := append(dot.Bytes(), txt.Bytes()...)
		if first == nil {
			first = combined
		} else if !bytes.Equal(first, combined) {
			t.Fatalf("render %d differs from render 0", i)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	// A 4096-node spread tree with fan-out 8 plus per-node detail events.
	var events []obs.Event
	seq := uint64(0)
	emit := func(cat, actor, msg string, span, parent obs.Span, tags ...obs.Tag) {
		seq++
		events = append(events, obs.Event{
			At: t0.Add(time.Duration(seq) * time.Second), Seq: seq,
			Cat: cat, Actor: actor, Msg: msg, Span: span, Parent: parent, Tags: tags,
		})
	}
	for s := obs.Span(1); s <= 4096; s++ {
		parent := s / 8
		vector := "psexec"
		if parent == 0 {
			vector = "root"
		}
		emit("infect", fmt.Sprintf("WS-%d", s), "installed", s, parent,
			obs.T("exp", "C7"), obs.T("vector", vector))
		emit("exec", fmt.Sprintf("WS-%d", s), "detail", s, 0, obs.T("exp", "C7"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := Build(events)
		if len(f.Nodes) != 4096 {
			b.Fatalf("nodes = %d", len(f.Nodes))
		}
	}
}

func BenchmarkStats(b *testing.B) {
	f := Build(fixture())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Stats()
	}
}

// Package provenance reconstructs causal infection forests from exported
// event streams. The contract (DESIGN.md §7): the FIRST record bearing a
// span ID is that episode's opening record — it carries the parent span
// and the delivery vector tag — and every later record with the same span
// is in-episode detail. Roots are episodes with parent 0 (patient zero
// compromises, operator orders). Spans are unique within one experiment
// export; across experiments nodes are keyed by (exp tag, span) so a
// combined `-all` export still reconstructs one clean forest per
// experiment.
package provenance

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// NodeID identifies one causal episode in a (possibly multi-experiment)
// event stream.
type NodeID struct {
	Exp  string // the exp=<ID> tag, "" when untagged
	Span obs.Span
}

func (id NodeID) String() string {
	if id.Exp == "" {
		return fmt.Sprintf("s%d", id.Span)
	}
	return fmt.Sprintf("%s/s%d", id.Exp, id.Span)
}

// Node is one reconstructed episode: an infection, a deployed payload, a
// wipe, an operator order.
type Node struct {
	ID     NodeID
	Parent obs.Span // 0 for roots
	Vector string   // delivery vector tag of the opening record
	Cat    string
	Actor  string
	Msg    string
	At     time.Time
	Seq    uint64
	Events int // records carrying this span, opener included

	Up       *Node   // resolved parent, nil for roots and orphans
	Children []*Node // sorted by (At, Seq, Span)
}

// Depth is the edge distance from this node's root (0 for roots and
// orphans).
func (n *Node) Depth() int {
	d := 0
	for p := n.Up; p != nil; p = p.Up {
		d++
	}
	return d
}

// Size is the node count of the subtree rooted here.
func (n *Node) Size() int {
	total := 1
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}

// Forest is the reconstructed causal forest of an event stream.
type Forest struct {
	Nodes   map[NodeID]*Node
	Roots   []*Node // parent 0, sorted by (Exp, At, Seq, Span)
	Orphans []*Node // parent span never appeared in the stream
	Total   int     // events scanned
	Spanned int     // events carrying a span
}

// Build reconstructs the forest from an event stream (as exported by
// `-trace` or captured in a Result). Order of events matters only for the
// opener-first contract; reconstruction itself is deterministic for any
// stable input order.
func Build(events []obs.Event) *Forest {
	f := &Forest{Nodes: make(map[NodeID]*Node)}
	for _, e := range events {
		f.Total++
		if e.Span == 0 {
			continue
		}
		f.Spanned++
		exp, _ := e.Get("exp")
		id := NodeID{Exp: exp, Span: e.Span}
		if n, ok := f.Nodes[id]; ok {
			n.Events++
			continue
		}
		vector, _ := e.Get("vector")
		f.Nodes[id] = &Node{
			ID: id, Parent: e.Parent, Vector: vector,
			Cat: e.Cat, Actor: e.Actor, Msg: e.Msg,
			At: e.At, Seq: e.Seq, Events: 1,
		}
	}

	for _, n := range f.sorted() {
		if n.Parent == 0 {
			f.Roots = append(f.Roots, n)
			continue
		}
		p, ok := f.Nodes[NodeID{Exp: n.ID.Exp, Span: n.Parent}]
		if !ok {
			f.Orphans = append(f.Orphans, n)
			continue
		}
		n.Up = p
		p.Children = append(p.Children, n)
	}
	return f
}

// sorted returns every node in deterministic order: experiment, then
// time, then capture sequence, then span.
func (f *Forest) sorted() []*Node {
	out := make([]*Node, 0, len(f.Nodes))
	for _, n := range f.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ID.Exp != b.ID.Exp {
			return a.ID.Exp < b.ID.Exp
		}
		if !a.At.Equal(b.At) {
			return a.At.Before(b.At)
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.ID.Span < b.ID.Span
	})
	return out
}

// Node returns the node for an ID, or nil.
func (f *Forest) Node(id NodeID) *Node { return f.Nodes[id] }

// Chain walks from the identified node up to its root, returning the path
// root-first. Nil when the span is unknown.
func (f *Forest) Chain(id NodeID) []*Node {
	n := f.Nodes[id]
	if n == nil {
		return nil
	}
	var rev []*Node
	for ; n != nil; n = n.Up {
		rev = append(rev, n)
	}
	out := make([]*Node, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}

// Validate checks the forest's causal invariants, returning one message
// per violation (empty = valid):
//   - every non-zero parent span exists in the stream (no orphans);
//   - a parent episode opens no later than its children (At monotone);
//   - parent span IDs precede child span IDs (allocation order).
func (f *Forest) Validate() []string {
	var issues []string
	for _, n := range f.sorted() {
		if n.Parent == 0 {
			continue
		}
		p, ok := f.Nodes[NodeID{Exp: n.ID.Exp, Span: n.Parent}]
		if !ok {
			issues = append(issues, fmt.Sprintf("%s: parent span %d missing from stream", n.ID, n.Parent))
			continue
		}
		if p.At.After(n.At) {
			issues = append(issues, fmt.Sprintf("%s: opens at %s before its parent %s (%s)",
				n.ID, n.At.Format(time.RFC3339), p.ID, p.At.Format(time.RFC3339)))
		}
		if n.Parent >= n.ID.Span {
			issues = append(issues, fmt.Sprintf("%s: parent span %d not allocated before it", n.ID, n.Parent))
		}
	}
	return issues
}

// Stats are the forest-level aggregates: how deep the infection chains
// went, how wide they fanned out, which vectors carried them, and how
// fast each hop landed.
type Stats struct {
	Total     int // events scanned
	Spanned   int // events carrying a span
	Nodes     int
	Roots     int
	Orphans   int
	MaxDepth  int // edges; 0 = roots only
	MaxFanOut int // widest single node
	// Vectors counts episodes per delivery vector.
	Vectors map[string]int
	// HopTimes[d-1] is the earliest root-to-depth-d latency observed
	// (virtual time), for d in 1..MaxDepth.
	HopTimes []time.Duration
}

// Stats computes the forest aggregates.
func (f *Forest) Stats() Stats {
	s := Stats{
		Total: f.Total, Spanned: f.Spanned,
		Nodes: len(f.Nodes), Roots: len(f.Roots), Orphans: len(f.Orphans),
		Vectors: make(map[string]int),
	}
	for _, n := range f.Nodes {
		if n.Vector != "" {
			s.Vectors[n.Vector]++
		}
		if len(n.Children) > s.MaxFanOut {
			s.MaxFanOut = len(n.Children)
		}
	}
	var walk func(n *Node, root *Node, depth int)
	walk = func(n *Node, root *Node, depth int) {
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		if depth > 0 {
			dt := n.At.Sub(root.At)
			for len(s.HopTimes) < depth {
				s.HopTimes = append(s.HopTimes, -1)
			}
			if s.HopTimes[depth-1] < 0 || dt < s.HopTimes[depth-1] {
				s.HopTimes[depth-1] = dt
			}
		}
		for _, c := range n.Children {
			walk(c, root, depth+1)
		}
	}
	for _, r := range f.Roots {
		walk(r, r, 0)
	}
	return s
}

// Exps returns the distinct experiment tags present, sorted.
func (f *Forest) Exps() []string {
	seen := make(map[string]bool)
	for id := range f.Nodes {
		seen[id.Exp] = true
	}
	out := make([]string, 0, len(seen))
	for exp := range seen {
		out = append(out, exp)
	}
	sort.Strings(out)
	return out
}

// FilterExp returns a forest rebuilt from only the nodes of one
// experiment (cheap: reuses the reconstruction, not the event stream).
func FilterExp(events []obs.Event, exp string) *Forest {
	var kept []obs.Event
	for _, e := range events {
		if got, _ := e.Get("exp"); got == exp {
			kept = append(kept, e)
		}
	}
	return Build(kept)
}

package pki

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/pe"
)

// ImageSignature is the decoded content of an SPE signature blob: the
// certificate chain (leaf first) and the leaf key's signature over the
// image digest.
type ImageSignature struct {
	Chain     []*Certificate
	Signature []byte
}

// SignImage attaches to img a signature by key under the given chain.
// chain[0] must be the certificate for key's public part. This is how the
// stolen JMicron/Realtek keys signed Stuxnet's rootkit drivers, how Eldos
// signed the raw-disk driver Shamoon abused, and how the forged Microsoft
// certificate signed Flame's fake Windows Update.
func SignImage(img *pe.File, key *Keypair, chain ...*Certificate) error {
	if len(chain) == 0 {
		return ErrEmptyChain
	}
	if !chain[0].PubKey.Equal(key.Public) {
		return fmt.Errorf("pki: leaf certificate %q does not match signing key", chain[0].Subject)
	}
	digest, err := img.Digest()
	if err != nil {
		return fmt.Errorf("sign image: %w", err)
	}
	sig := ImageSignature{Chain: chain, Signature: key.Sign(digest[:])}
	img.SigBlob = sig.marshal()
	return nil
}

// VerifyImage checks img's signature blob: the chain must validate in the
// store for the requested usage at time now, and the leaf key's signature
// must cover the image digest. It returns the decoded signature on success
// so callers can inspect the signer identity.
func VerifyImage(img *pe.File, store *Store, now time.Time, usage KeyUsage) (*ImageSignature, error) {
	if len(img.SigBlob) == 0 {
		return nil, errors.New("pki: image is unsigned")
	}
	sig, err := parseImageSignature(img.SigBlob)
	if err != nil {
		return nil, err
	}
	if err := store.VerifyChain(now, usage, sig.Chain...); err != nil {
		return nil, err
	}
	digest, err := img.Digest()
	if err != nil {
		return nil, err
	}
	if !ed25519.Verify(sig.Chain[0].PubKey, digest[:], sig.Signature) {
		return nil, fmt.Errorf("%w: image digest", ErrBadSignature)
	}
	return sig, nil
}

// marshal encodes the signature blob:
//
//	count u16, certs (framed), siglen u16 + sig
func (s *ImageSignature) marshal() []byte {
	var b bytes.Buffer
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], uint16(len(s.Chain)))
	b.Write(tmp[:])
	for _, c := range s.Chain {
		enc := marshalCert(c)
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(enc)))
		b.Write(l[:])
		b.Write(enc)
	}
	binary.LittleEndian.PutUint16(tmp[:], uint16(len(s.Signature)))
	b.Write(tmp[:])
	b.Write(s.Signature)
	return b.Bytes()
}

func parseImageSignature(blob []byte) (*ImageSignature, error) {
	r := blobReader{buf: blob}
	count, err := r.u16()
	if err != nil {
		return nil, err
	}
	if count == 0 || count > 16 {
		return nil, fmt.Errorf("pki: implausible chain length %d", count)
	}
	sig := &ImageSignature{Chain: make([]*Certificate, 0, count)}
	for i := 0; i < int(count); i++ {
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		enc, err := r.take(int(n))
		if err != nil {
			return nil, err
		}
		cert, err := parseCert(enc)
		if err != nil {
			return nil, fmt.Errorf("pki: chain cert %d: %w", i, err)
		}
		sig.Chain = append(sig.Chain, cert)
	}
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	sig.Signature, err = r.take(int(n))
	if err != nil {
		return nil, err
	}
	if r.pos != len(r.buf) {
		return nil, errors.New("pki: trailing bytes in signature blob")
	}
	return sig, nil
}

// marshalCert serializes the full certificate (TBS fields + signature)
// using a framed layout independent of TBS so padding round-trips exactly.
func marshalCert(c *Certificate) []byte {
	var b bytes.Buffer
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], c.Serial)
	b.Write(tmp[:])
	writeFramed(&b, []byte(c.Subject))
	writeFramed(&b, []byte(c.Issuer))
	binary.LittleEndian.PutUint64(tmp[:], uint64(c.Usages))
	b.Write(tmp[:])
	b.WriteByte(byte(c.SigAlgo))
	binary.LittleEndian.PutUint64(tmp[:], uint64(c.NotBefore.Unix()))
	b.Write(tmp[:])
	binary.LittleEndian.PutUint64(tmp[:], uint64(c.NotAfter.Unix()))
	b.Write(tmp[:])
	writeFramed(&b, c.PubKey)
	writeFramed(&b, c.Padding)
	writeFramed(&b, c.Signature)
	return b.Bytes()
}

func parseCert(enc []byte) (*Certificate, error) {
	r := blobReader{buf: enc}
	c := &Certificate{}
	serial, err := r.u64()
	if err != nil {
		return nil, err
	}
	c.Serial = serial
	sub, err := r.framed()
	if err != nil {
		return nil, err
	}
	c.Subject = string(sub)
	iss, err := r.framed()
	if err != nil {
		return nil, err
	}
	c.Issuer = string(iss)
	usages, err := r.u64()
	if err != nil {
		return nil, err
	}
	c.Usages = KeyUsage(usages)
	algo, err := r.take(1)
	if err != nil {
		return nil, err
	}
	c.SigAlgo = HashAlgo(algo[0])
	nb, err := r.u64()
	if err != nil {
		return nil, err
	}
	c.NotBefore = time.Unix(int64(nb), 0).UTC()
	na, err := r.u64()
	if err != nil {
		return nil, err
	}
	c.NotAfter = time.Unix(int64(na), 0).UTC()
	pub, err := r.framed()
	if err != nil {
		return nil, err
	}
	if len(pub) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("pki: bad public key length %d", len(pub))
	}
	c.PubKey = ed25519.PublicKey(pub)
	if c.Padding, err = r.framed(); err != nil {
		return nil, err
	}
	if len(c.Padding) == 0 {
		c.Padding = nil
	}
	if c.Signature, err = r.framed(); err != nil {
		return nil, err
	}
	if r.pos != len(r.buf) {
		return nil, errors.New("pki: trailing bytes in certificate")
	}
	return c, nil
}

type blobReader struct {
	buf []byte
	pos int
}

func (r *blobReader) take(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.buf) {
		return nil, errors.New("pki: truncated blob")
	}
	out := make([]byte, n)
	copy(out, r.buf[r.pos:r.pos+n])
	r.pos += n
	return out, nil
}

func (r *blobReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *blobReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *blobReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *blobReader) framed() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	return r.take(int(n))
}

func writeFramed(b *bytes.Buffer, data []byte) {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(data)))
	b.Write(l[:])
	b.Write(data)
}

package pki

import (
	"errors"
	"testing"
	"time"
)

// Edge cases around chain construction and trust anchors.

func TestVerifyEmptyChain(t *testing.T) {
	store := NewStore()
	if err := store.VerifyChain(testNow, UsageCodeSign); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("err = %v, want ErrEmptyChain", err)
	}
}

func TestVerifyChainIssuerNameMismatch(t *testing.T) {
	root := testRoot(t, "Root A", HashStrong)
	otherRoot := testRoot2(t, "Root B")
	store := NewStore(root.Cert)
	key := NewKeypair(seed(70))
	// Issued by Root A but claims Root B as issuer.
	leaf, _ := root.Issue(testNow, IssueRequest{Subject: "Leaf", Usages: UsageCodeSign, PubKey: key.Public})
	leaf.Issuer = "Root B"
	leaf.Signature = root.Key.Sign(leaf.Digest()) // re-sign the altered TBS
	store.AddRoot(otherRoot.Cert)
	err := store.VerifyChain(testNow, UsageCodeSign, leaf)
	if !errors.Is(err, ErrBadSignature) && !errors.Is(err, ErrIssuerMismatch) {
		t.Fatalf("err = %v, want signature/issuer failure", err)
	}
}

func testRoot2(t *testing.T, name string) *Authority {
	t.Helper()
	return NewRoot(name, HashStrong, seed(71), testNow.Add(-time.Hour), 100*365*24*time.Hour)
}

func TestDistrustedRootRejectsEvenDirectly(t *testing.T) {
	root := testRoot(t, "Root", HashStrong)
	store := NewStore(root.Cert)
	store.Distrust(root.Cert.Serial, "compromised")
	if err := store.VerifyChain(testNow, UsageCA, root.Cert); !errors.Is(err, ErrDistrusted) {
		t.Fatalf("err = %v, want ErrDistrusted", err)
	}
}

func TestExpiredIntermediateFailsChain(t *testing.T) {
	root := testRoot(t, "Root", HashStrong)
	store := NewStore(root.Cert)
	inter, err := root.Subordinate(testNow, "ShortInter", HashStrong, seed(72), time.Hour)
	if err != nil {
		t.Fatalf("Subordinate: %v", err)
	}
	key := NewKeypair(seed(73))
	leaf, err := inter.Issue(testNow, IssueRequest{Subject: "Leaf", Usages: UsageCodeSign,
		Lifetime: 100 * 24 * time.Hour, PubKey: key.Public})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	// Leaf valid, intermediate expired: whole chain fails.
	at := testNow.Add(2 * time.Hour)
	if err := store.VerifyChain(at, UsageCodeSign, leaf, inter.Cert); !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

func TestNonCACannotIssue(t *testing.T) {
	root := testRoot(t, "Root", HashStrong)
	key := NewKeypair(seed(74))
	leafCert, _ := root.Issue(testNow, IssueRequest{Subject: "NotCA", Usages: UsageCodeSign, PubKey: key.Public})
	fake := &Authority{Cert: leafCert, Key: key}
	if _, err := fake.Issue(testNow, IssueRequest{Subject: "X", Usages: UsageCodeSign, PubKey: key.Public}); err == nil {
		t.Fatal("non-CA issued a certificate")
	}
}

func TestIssueRequiresPublicKey(t *testing.T) {
	root := testRoot(t, "Root", HashStrong)
	if _, err := root.Issue(testNow, IssueRequest{Subject: "X", Usages: UsageCodeSign}); err == nil {
		t.Fatal("issue without a public key succeeded")
	}
}

func TestForgedCertCannotExtendValidity(t *testing.T) {
	// A forged certificate that tries to outlive the victim still
	// collides (padding fixes the digest) but then fails the validity
	// check at verification time beyond the victim's window... actually
	// the forged cert carries its own dates inside the collided TBS, so
	// extending them is allowed by the crypto — the defence is the
	// advisory. This test documents that property: date fields are part
	// of the forgeable surface.
	root := testRoot(t, "Root", HashStrong)
	inter, _ := root.Subordinate(testNow, "WeakInter", HashWeak, seed(75), 50*365*24*time.Hour)
	key := NewKeypair(seed(76))
	victim, _ := inter.Issue(testNow, IssueRequest{Subject: "TSLS", Usages: UsageLicenseOnly,
		Lifetime: 24 * time.Hour, PubKey: key.Public})
	forged, err := ForgeFromWeakCert(victim, Certificate{
		Subject: "Extended", Usages: UsageCodeSign,
		NotBefore: victim.NotBefore, NotAfter: victim.NotAfter.Add(365 * 24 * time.Hour),
		PubKey: key.Public,
	})
	if err != nil {
		t.Fatalf("Forge: %v", err)
	}
	store := NewStore(root.Cert)
	at := victim.NotAfter.Add(time.Hour) // victim expired, forged "valid"
	if err := store.VerifyChain(at, UsageCodeSign, forged, inter.Cert); err != nil {
		t.Fatalf("forged-extended chain rejected: %v (the weak digest covers the dates, so this should verify)", err)
	}
}

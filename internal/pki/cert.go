// Package pki implements the simulated certificate infrastructure of the
// cyber-range: certificates, issuing authorities, trust stores, code
// signing of SPE images, and the weak-hash collision forging that the paper
// describes for Flame's leveraged Microsoft Terminal Services certificate.
//
// Signatures are real Ed25519 signatures over a digest of the certificate's
// to-be-signed encoding. The digest algorithm is per-certificate: HashStrong
// is SHA-256; HashWeak is a deliberately collision-prone truncated hash
// standing in for the flawed MD5-based algorithm the real attack exploited.
// Because the Ed25519 signature covers only the digest, two TBS encodings
// that collide under the weak hash share a valid signature — exactly the
// property Flame's designers used to mint a code-signing certificate from a
// limited-use licensing certificate (paper, Fig. 3).
package pki

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// HashAlgo selects the digest a certificate's issuer signature covers.
type HashAlgo uint8

// Supported digest algorithms.
const (
	HashStrong HashAlgo = iota + 1 // SHA-256; collision-resistant
	HashWeak                       // truncated 20-bit digest; forgeable
)

func (h HashAlgo) String() string {
	switch h {
	case HashStrong:
		return "strong-sha256"
	case HashWeak:
		return "weak-legacy"
	default:
		return fmt.Sprintf("hash(%d)", uint8(h))
	}
}

// KeyUsage is a bitmask of operations a certificate is trusted for.
type KeyUsage uint16

// Key usages appearing in the modelled campaigns.
const (
	UsageCA          KeyUsage = 1 << iota // may issue certificates
	UsageCodeSign                         // may sign user-mode executables
	UsageDriverSign                       // may sign kernel drivers
	UsageLicenseOnly                      // Terminal Services license verification only
)

func (u KeyUsage) String() string {
	var parts []string
	add := func(bit KeyUsage, name string) {
		if u&bit != 0 {
			parts = append(parts, name)
		}
	}
	add(UsageCA, "ca")
	add(UsageCodeSign, "code-sign")
	add(UsageDriverSign, "driver-sign")
	add(UsageLicenseOnly, "license-only")
	if len(parts) == 0 {
		return "none"
	}
	return fmt.Sprintf("%v", parts)
}

// Keypair is an Ed25519 key pair held by a certificate subject. Possession
// of a Keypair models possession of the private key: the "stolen JMicron
// and Realtek certificates" of the Stuxnet attack are Keypair+Certificate
// values exfiltrated into attacker hands.
type Keypair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// NewKeypair generates a key pair from a deterministic seed so that
// simulations replay exactly.
func NewKeypair(seed [32]byte) *Keypair {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &Keypair{
		Public:  priv.Public().(ed25519.PublicKey),
		private: priv,
	}
}

// Sign signs digest with the private key.
func (k *Keypair) Sign(digest []byte) []byte {
	return ed25519.Sign(k.private, digest)
}

// Certificate is a simulated X.509-like certificate.
type Certificate struct {
	Serial    uint64
	Subject   string
	Issuer    string
	Usages    KeyUsage
	SigAlgo   HashAlgo // digest algorithm the issuer signature covers
	NotBefore time.Time
	NotAfter  time.Time
	PubKey    ed25519.PublicKey
	// Padding is an opaque extension blob, serialized at the end of the
	// TBS encoding. Legitimate certificates leave it empty; forged
	// certificates use it to steer weak-hash collisions.
	Padding   []byte
	Signature []byte
}

// TBS returns the to-be-signed encoding of the certificate: every field
// except the signature, with Padding last so collision search can reuse the
// prefix hash state.
func (c *Certificate) TBS() []byte {
	var b bytes.Buffer
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], c.Serial)
	b.Write(tmp[:])
	writeStr(&b, c.Subject)
	writeStr(&b, c.Issuer)
	binary.LittleEndian.PutUint64(tmp[:], uint64(c.Usages))
	b.Write(tmp[:])
	b.WriteByte(byte(c.SigAlgo))
	binary.LittleEndian.PutUint64(tmp[:], uint64(c.NotBefore.Unix()))
	b.Write(tmp[:])
	binary.LittleEndian.PutUint64(tmp[:], uint64(c.NotAfter.Unix()))
	b.Write(tmp[:])
	writeStr(&b, string(c.PubKey))
	b.Write(c.Padding) // unframed tail: collision padding
	return b.Bytes()
}

// Digest hashes the TBS encoding under the certificate's signature
// algorithm.
func (c *Certificate) Digest() []byte {
	return DigestData(c.SigAlgo, c.TBS())
}

// DigestData hashes data under the given algorithm. Both algorithms return
// a 32-byte digest; HashWeak carries only 20 bits of it, which is what
// makes collisions practical.
func DigestData(algo HashAlgo, data []byte) []byte {
	switch algo {
	case HashWeak:
		h := WeakHash(data)
		out := make([]byte, 32)
		binary.LittleEndian.PutUint32(out, h)
		return out
	default:
		sum := sha256.Sum256(data)
		return sum[:]
	}
}

// WeakHashBits is the effective strength of the legacy algorithm.
const WeakHashBits = 20

// WeakHash is the deliberately collision-prone legacy digest: FNV-1a
// truncated to WeakHashBits bits.
func WeakHash(data []byte) uint32 {
	return weakHashContinue(weakHashSeed, data)
}

const (
	weakHashSeed  uint32 = 2166136261
	weakHashPrime uint32 = 16777619
	weakHashMask  uint32 = 1<<WeakHashBits - 1
)

func weakHashContinue(state uint32, data []byte) uint32 {
	for _, b := range data {
		state ^= uint32(b)
		state *= weakHashPrime
	}
	return state & weakHashMask
}

// weakHashState returns the internal (untruncated) FNV state after data,
// for incremental collision search.
func weakHashState(data []byte) uint32 {
	state := weakHashSeed
	for _, b := range data {
		state ^= uint32(b)
		state *= weakHashPrime
	}
	return state
}

// Authority couples an issuing certificate with its key pair.
type Authority struct {
	Cert *Certificate
	Key  *Keypair

	nextSerial uint64
	// defaultAlgo, when set, overrides the digest used for issued
	// certificates (see Subordinate). Zero means "use the authority
	// certificate's own SigAlgo".
	defaultAlgo HashAlgo
}

// NewRoot creates a self-signed root authority. algo is the digest the root
// uses when signing (both itself and issued certificates default to it).
func NewRoot(name string, algo HashAlgo, seed [32]byte, notBefore time.Time, lifetime time.Duration) *Authority {
	key := NewKeypair(seed)
	cert := &Certificate{
		Serial:    1,
		Subject:   name,
		Issuer:    name,
		Usages:    UsageCA,
		SigAlgo:   algo,
		NotBefore: notBefore,
		NotAfter:  notBefore.Add(lifetime),
		PubKey:    key.Public,
	}
	cert.Signature = key.Sign(cert.Digest())
	return &Authority{Cert: cert, Key: key, nextSerial: 2}
}

// IssueRequest describes a certificate to be issued.
type IssueRequest struct {
	Subject  string
	Usages   KeyUsage
	SigAlgo  HashAlgo // digest for the new cert's signature; issuer's default if zero
	Lifetime time.Duration
	PubKey   ed25519.PublicKey
}

// Issue signs a new certificate for the request, valid from now.
func (a *Authority) Issue(now time.Time, req IssueRequest) (*Certificate, error) {
	if a.Cert.Usages&UsageCA == 0 {
		return nil, fmt.Errorf("pki: %q is not a CA", a.Cert.Subject)
	}
	if len(req.PubKey) != ed25519.PublicKeySize {
		return nil, errors.New("pki: issue request missing subject public key")
	}
	algo := req.SigAlgo
	if algo == 0 {
		algo = a.defaultAlgo
	}
	if algo == 0 {
		algo = a.Cert.SigAlgo
	}
	lifetime := req.Lifetime
	if lifetime <= 0 {
		lifetime = 365 * 24 * time.Hour
	}
	a.nextSerial++
	cert := &Certificate{
		Serial:    a.nextSerial,
		Subject:   req.Subject,
		Issuer:    a.Cert.Subject,
		Usages:    req.Usages,
		SigAlgo:   algo,
		NotBefore: now,
		NotAfter:  now.Add(lifetime),
		PubKey:    req.PubKey,
	}
	cert.Signature = a.Key.Sign(cert.Digest())
	return cert, nil
}

// Subordinate issues an intermediate CA under this authority and returns it
// as a new Authority. algo is the digest the subordinate's *own issued
// certificates' signatures* will default to.
func (a *Authority) Subordinate(now time.Time, name string, algo HashAlgo, seed [32]byte, lifetime time.Duration) (*Authority, error) {
	key := NewKeypair(seed)
	cert, err := a.Issue(now, IssueRequest{
		Subject:  name,
		Usages:   UsageCA,
		SigAlgo:  a.Cert.SigAlgo,
		Lifetime: lifetime,
		PubKey:   key.Public,
	})
	if err != nil {
		return nil, err
	}
	return &Authority{Cert: cert, Key: key, nextSerial: 1000, defaultAlgo: algo}, nil
}

func writeStr(b *bytes.Buffer, s string) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(s)))
	b.Write(tmp[:])
	b.WriteString(s)
}

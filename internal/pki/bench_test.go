package pki

import (
	"testing"
	"time"
)

func benchSetup(b *testing.B) (*Store, *Certificate, *Certificate, *Keypair) {
	b.Helper()
	now := time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
	root := NewRoot("Root", HashStrong, seed(1), now.Add(-time.Hour), 100*365*24*time.Hour)
	inter, err := root.Subordinate(now, "Licensing", HashWeak, seed(2), 50*365*24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	key := NewKeypair(seed(3))
	leaf, err := inter.Issue(now, IssueRequest{Subject: "TSLS", Usages: UsageLicenseOnly, PubKey: key.Public})
	if err != nil {
		b.Fatal(err)
	}
	return NewStore(root.Cert), leaf, inter.Cert, key
}

func BenchmarkVerifyChain(b *testing.B) {
	store, leaf, inter, _ := benchSetup(b)
	now := leaf.NotBefore.Add(time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := store.VerifyChain(now, UsageLicenseOnly, leaf, inter); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForgeFromWeakCert measures the collision search — the paper's
// "very knowledgeable cryptographers" step, feasible here because the
// legacy digest carries only 20 bits.
func BenchmarkForgeFromWeakCert(b *testing.B) {
	_, leaf, _, key := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		forged, err := ForgeFromWeakCert(leaf, Certificate{
			Serial:    uint64(i + 1000), // vary the template to force a fresh search
			Subject:   "Forged Update Signer",
			Usages:    UsageCodeSign,
			NotBefore: leaf.NotBefore, NotAfter: leaf.NotAfter,
			PubKey: key.Public,
		})
		if err != nil {
			b.Fatal(err)
		}
		if WeakHash(forged.TBS()) != WeakHash(leaf.TBS()) {
			b.Fatal("no collision")
		}
	}
}

func BenchmarkWeakHash1K(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		WeakHash(data)
	}
}

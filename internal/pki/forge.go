package pki

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrNotForgeable is returned when the victim certificate's signature does
// not use the weak legacy digest (collision forging is then infeasible).
var ErrNotForgeable = errors.New("pki: victim certificate does not use the weak digest; collision forging infeasible")

// maxForgeAttempts bounds the collision search. With a 20-bit digest the
// expected cost is ~2^20 trials, so 2^24 gives ample headroom.
const maxForgeAttempts = 1 << 24

// ForgeFromWeakCert mounts the Flame-style certificate attack (paper,
// Fig. 3): given a *legitimately issued* certificate whose signature covers
// the weak legacy digest — such as the limited-use certificate a Terminal
// Services Licensing Server receives on activation — it constructs a brand
// new certificate with attacker-chosen subject, usages and public key whose
// TBS encoding *collides* with the victim's under the weak hash, then
// transplants the victim's issuer signature onto it.
//
// The forged certificate chains exactly where the victim chained (same
// issuer), but now asserts code-signing authority the licensing certificate
// never had. The collision is steered through the Padding extension, whose
// bytes are varied until the truncated digests match.
func ForgeFromWeakCert(victim *Certificate, forged Certificate) (*Certificate, error) {
	if victim.SigAlgo != HashWeak {
		return nil, fmt.Errorf("%w (victim uses %v)", ErrNotForgeable, victim.SigAlgo)
	}
	target := WeakHash(victim.TBS())

	out := forged // copy caller's template
	out.Issuer = victim.Issuer
	out.SigAlgo = HashWeak
	out.Signature = nil

	// Incremental search: hash the TBS prefix once, then vary an 8-byte
	// counter suffix until the truncated state matches the target.
	out.Padding = nil
	prefixState := weakHashState(out.TBS())
	var counter [8]byte
	for attempt := uint64(0); attempt < maxForgeAttempts; attempt++ {
		binary.LittleEndian.PutUint64(counter[:], attempt)
		if weakHashContinue(prefixState, counter[:])&weakHashMask == target {
			out.Padding = make([]byte, len(counter))
			copy(out.Padding, counter[:])
			out.Signature = append([]byte(nil), victim.Signature...)
			return &out, nil
		}
	}
	return nil, fmt.Errorf("pki: no collision found in %d attempts", maxForgeAttempts)
}

package pki

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"time"
)

// Store is a host's certificate trust configuration: trusted roots plus the
// Untrusted Certificate Store that Microsoft Security Advisory 2718704
// populated to kill the Flame certificates (paper, Section III-A).
type Store struct {
	roots     map[uint64]*Certificate // by serial
	untrusted map[uint64]string       // serial -> reason
}

// NewStore returns a store trusting the given roots.
func NewStore(roots ...*Certificate) *Store {
	s := &Store{
		roots:     make(map[uint64]*Certificate, len(roots)),
		untrusted: make(map[uint64]string),
	}
	for _, r := range roots {
		s.roots[r.Serial] = r
	}
	return s
}

// AddRoot adds a trusted root.
func (s *Store) AddRoot(c *Certificate) { s.roots[c.Serial] = c }

// Distrust moves a certificate (by serial) into the untrusted store; any
// chain containing it then fails verification. This models the advisory
// update that moved three Microsoft certificates to the Untrusted store.
func (s *Store) Distrust(serial uint64, reason string) {
	s.untrusted[serial] = reason
}

// IsDistrusted reports whether a serial is in the untrusted store.
func (s *Store) IsDistrusted(serial uint64) bool {
	_, ok := s.untrusted[serial]
	return ok
}

// Clone returns an independent copy (each simulated host owns its store and
// receives advisory updates separately).
func (s *Store) Clone() *Store {
	c := &Store{
		roots:     make(map[uint64]*Certificate, len(s.roots)),
		untrusted: make(map[uint64]string, len(s.untrusted)),
	}
	for k, v := range s.roots {
		c.roots[k] = v
	}
	for k, v := range s.untrusted {
		c.untrusted[k] = v
	}
	return c
}

// Verification errors that callers match on.
var (
	ErrEmptyChain     = errors.New("pki: empty certificate chain")
	ErrUntrustedRoot  = errors.New("pki: chain does not terminate at a trusted root")
	ErrDistrusted     = errors.New("pki: certificate is in the untrusted store")
	ErrExpired        = errors.New("pki: certificate outside validity window")
	ErrBadSignature   = errors.New("pki: signature verification failed")
	ErrUsage          = errors.New("pki: certificate not valid for requested usage")
	ErrNotCA          = errors.New("pki: intermediate is not a CA")
	ErrIssuerMismatch = errors.New("pki: issuer name does not match parent subject")
)

// VerifyChain validates chain[0] (the leaf) for the requested usage at time
// now. chain[1:] are intermediates ordered leaf→root-most; the last element
// must have been issued by (or be) a root in the store.
//
// The signature check verifies the issuer's Ed25519 signature over the
// certificate's digest. Crucially the digest algorithm is the one recorded
// in the certificate — so a weak-hash collision transplant passes, exactly
// as the flawed production algorithm did.
func (s *Store) VerifyChain(now time.Time, usage KeyUsage, chain ...*Certificate) error {
	if len(chain) == 0 {
		return ErrEmptyChain
	}
	for i, c := range chain {
		if s.IsDistrusted(c.Serial) {
			return fmt.Errorf("%w: %q (serial %d)", ErrDistrusted, c.Subject, c.Serial)
		}
		if now.Before(c.NotBefore) || now.After(c.NotAfter) {
			return fmt.Errorf("%w: %q", ErrExpired, c.Subject)
		}
		if i > 0 && c.Usages&UsageCA == 0 {
			return fmt.Errorf("%w: %q", ErrNotCA, c.Subject)
		}
	}
	leaf := chain[0]
	if leaf.Usages&usage == 0 {
		return fmt.Errorf("%w: %q has %v, requested %v", ErrUsage, leaf.Subject, leaf.Usages, usage)
	}
	// Walk signatures: each cert must be signed by the next one's key; the
	// last must be signed by a trusted root's key (or be that root).
	for i, c := range chain {
		var issuerCert *Certificate
		if i+1 < len(chain) {
			issuerCert = chain[i+1]
		} else {
			issuerCert = s.findRootFor(c)
			if issuerCert == nil {
				return fmt.Errorf("%w: leaf %q, unresolved issuer %q", ErrUntrustedRoot, leaf.Subject, c.Issuer)
			}
			if s.IsDistrusted(issuerCert.Serial) {
				return fmt.Errorf("%w: root %q", ErrDistrusted, issuerCert.Subject)
			}
		}
		if c.Issuer != issuerCert.Subject {
			return fmt.Errorf("%w: %q claims issuer %q, parent is %q", ErrIssuerMismatch, c.Subject, c.Issuer, issuerCert.Subject)
		}
		if !ed25519.Verify(issuerCert.PubKey, c.Digest(), c.Signature) {
			return fmt.Errorf("%w: %q", ErrBadSignature, c.Subject)
		}
	}
	return nil
}

// findRootFor locates the trusted root whose subject matches c's issuer, or
// c itself if c is a trusted self-signed root.
func (s *Store) findRootFor(c *Certificate) *Certificate {
	if root, ok := s.roots[c.Serial]; ok && c.Issuer == c.Subject {
		return root
	}
	for _, root := range s.roots {
		if root.Subject == c.Issuer {
			return root
		}
	}
	return nil
}

package pki

import (
	"errors"
	"testing"
	"time"

	"repro/internal/pe"
)

var testNow = time.Date(2011, time.March, 1, 0, 0, 0, 0, time.UTC)

func seed(b byte) [32]byte {
	var s [32]byte
	for i := range s {
		s[i] = b
	}
	return s
}

func testRoot(t *testing.T, name string, algo HashAlgo) *Authority {
	t.Helper()
	return NewRoot(name, algo, seed(1), testNow.Add(-365*24*time.Hour), 20*365*24*time.Hour)
}

func TestSelfSignedRootVerifies(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	store := NewStore(root.Cert)
	if err := store.VerifyChain(testNow, UsageCA, root.Cert); err != nil {
		t.Fatalf("root chain: %v", err)
	}
}

func TestIssueAndVerifyLeaf(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	store := NewStore(root.Cert)
	key := NewKeypair(seed(2))
	leaf, err := root.Issue(testNow, IssueRequest{
		Subject: "Realtek Semiconductor Corp",
		Usages:  UsageCodeSign | UsageDriverSign,
		PubKey:  key.Public,
	})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if err := store.VerifyChain(testNow, UsageDriverSign, leaf); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
}

func TestVerifyRejectsWrongUsage(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	store := NewStore(root.Cert)
	key := NewKeypair(seed(3))
	leaf, err := root.Issue(testNow, IssueRequest{
		Subject: "Customer TSLS",
		Usages:  UsageLicenseOnly,
		PubKey:  key.Public,
	})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	err = store.VerifyChain(testNow, UsageCodeSign, leaf)
	if !errors.Is(err, ErrUsage) {
		t.Fatalf("err = %v, want ErrUsage", err)
	}
}

func TestVerifyRejectsExpired(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	store := NewStore(root.Cert)
	key := NewKeypair(seed(4))
	leaf, err := root.Issue(testNow, IssueRequest{
		Subject:  "ShortLived",
		Usages:   UsageCodeSign,
		Lifetime: time.Hour,
		PubKey:   key.Public,
	})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	err = store.VerifyChain(testNow.Add(2*time.Hour), UsageCodeSign, leaf)
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
	err = store.VerifyChain(testNow.Add(-time.Hour), UsageCodeSign, leaf)
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("before NotBefore: err = %v, want ErrExpired", err)
	}
}

func TestVerifyRejectsUnknownRoot(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	other := NewRoot("Other CA", HashStrong, seed(9), testNow.Add(-time.Hour), time.Hour*1000)
	store := NewStore(other.Cert)
	key := NewKeypair(seed(5))
	leaf, _ := root.Issue(testNow, IssueRequest{Subject: "X", Usages: UsageCodeSign, PubKey: key.Public})
	err := store.VerifyChain(testNow, UsageCodeSign, leaf)
	if !errors.Is(err, ErrUntrustedRoot) {
		t.Fatalf("err = %v, want ErrUntrustedRoot", err)
	}
}

func TestVerifyRejectsTamperedCert(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	store := NewStore(root.Cert)
	key := NewKeypair(seed(6))
	leaf, _ := root.Issue(testNow, IssueRequest{Subject: "Honest Corp", Usages: UsageCodeSign, PubKey: key.Public})
	leaf.Subject = "Evil Corp" // tamper after issuance
	err := store.VerifyChain(testNow, UsageCodeSign, leaf)
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestIntermediateChain(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	store := NewStore(root.Cert)
	inter, err := root.Subordinate(testNow, "Licensing Intermediate", HashWeak, seed(7), 10*365*24*time.Hour)
	if err != nil {
		t.Fatalf("Subordinate: %v", err)
	}
	key := NewKeypair(seed(8))
	leaf, err := inter.Issue(testNow, IssueRequest{Subject: "Leaf", Usages: UsageCodeSign, PubKey: key.Public})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if leaf.SigAlgo != HashWeak {
		t.Fatalf("leaf SigAlgo = %v, want weak (inherited from intermediate default)", leaf.SigAlgo)
	}
	if err := store.VerifyChain(testNow, UsageCodeSign, leaf, inter.Cert); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
}

func TestNonCACannotAnchorChain(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	store := NewStore(root.Cert)
	k1 := NewKeypair(seed(10))
	middle, _ := root.Issue(testNow, IssueRequest{Subject: "NotACA", Usages: UsageCodeSign, PubKey: k1.Public})
	k2 := NewKeypair(seed(11))
	leaf := &Certificate{
		Serial: 99, Subject: "Sneaky", Issuer: "NotACA",
		Usages: UsageCodeSign, SigAlgo: HashStrong,
		NotBefore: testNow.Add(-time.Hour), NotAfter: testNow.Add(time.Hour),
		PubKey: k2.Public,
	}
	leaf.Signature = k1.Sign(leaf.Digest())
	err := store.VerifyChain(testNow, UsageCodeSign, leaf, middle)
	if !errors.Is(err, ErrNotCA) {
		t.Fatalf("err = %v, want ErrNotCA", err)
	}
}

func TestDistrustKillsChain(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	store := NewStore(root.Cert)
	inter, _ := root.Subordinate(testNow, "Licensing Intermediate", HashWeak, seed(12), 10*365*24*time.Hour)
	key := NewKeypair(seed(13))
	leaf, _ := inter.Issue(testNow, IssueRequest{Subject: "Leaf", Usages: UsageCodeSign, PubKey: key.Public})
	if err := store.VerifyChain(testNow, UsageCodeSign, leaf, inter.Cert); err != nil {
		t.Fatalf("pre-advisory: %v", err)
	}
	store.Distrust(inter.Cert.Serial, "MS advisory 2718704")
	err := store.VerifyChain(testNow, UsageCodeSign, leaf, inter.Cert)
	if !errors.Is(err, ErrDistrusted) {
		t.Fatalf("post-advisory err = %v, want ErrDistrusted", err)
	}
}

func TestStoreCloneIsIndependent(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	a := NewStore(root.Cert)
	b := a.Clone()
	b.Distrust(root.Cert.Serial, "test")
	if a.IsDistrusted(root.Cert.Serial) {
		t.Fatal("Distrust on clone leaked into original")
	}
}

func TestForgeFromWeakCert(t *testing.T) {
	// The Fig. 3 scenario: Microsoft-like root, weak-digest licensing
	// intermediate, customer TSLS activation cert (license-only usage).
	root := testRoot(t, "SimSoft Root", HashStrong)
	store := NewStore(root.Cert)
	inter, err := root.Subordinate(testNow, "SimSoft Licensing PCA", HashWeak, seed(20), 10*365*24*time.Hour)
	if err != nil {
		t.Fatalf("Subordinate: %v", err)
	}
	attacker := NewKeypair(seed(21))
	tsls, err := inter.Issue(testNow, IssueRequest{
		Subject: "Contoso Terminal Services LS",
		Usages:  UsageLicenseOnly,
		PubKey:  attacker.Public,
	})
	if err != nil {
		t.Fatalf("Issue TSLS: %v", err)
	}
	// The licensing cert itself must NOT verify for code signing.
	if err := store.VerifyChain(testNow, UsageCodeSign, tsls, inter.Cert); !errors.Is(err, ErrUsage) {
		t.Fatalf("TSLS code-sign err = %v, want ErrUsage", err)
	}

	forged, err := ForgeFromWeakCert(tsls, Certificate{
		Serial:    tsls.Serial, // transplant keeps victim serial out of band; any serial works
		Subject:   "SimSoft Windows Update",
		Usages:    UsageCodeSign,
		NotBefore: tsls.NotBefore,
		NotAfter:  tsls.NotAfter,
		PubKey:    attacker.Public,
	})
	if err != nil {
		t.Fatalf("ForgeFromWeakCert: %v", err)
	}
	if WeakHash(forged.TBS()) != WeakHash(tsls.TBS()) {
		t.Fatal("forged TBS does not collide with victim TBS")
	}
	if err := store.VerifyChain(testNow, UsageCodeSign, forged, inter.Cert); err != nil {
		t.Fatalf("forged chain rejected: %v", err)
	}

	// Advisory response kills the forged chain.
	store.Distrust(inter.Cert.Serial, "advisory")
	if err := store.VerifyChain(testNow, UsageCodeSign, forged, inter.Cert); !errors.Is(err, ErrDistrusted) {
		t.Fatalf("post-advisory err = %v, want ErrDistrusted", err)
	}
}

func TestForgeRequiresWeakDigest(t *testing.T) {
	root := testRoot(t, "SimSoft Root", HashStrong)
	key := NewKeypair(seed(22))
	leaf, _ := root.Issue(testNow, IssueRequest{Subject: "Strong Leaf", Usages: UsageLicenseOnly, PubKey: key.Public})
	_, err := ForgeFromWeakCert(leaf, Certificate{Subject: "X", Usages: UsageCodeSign, PubKey: key.Public,
		NotBefore: leaf.NotBefore, NotAfter: leaf.NotAfter})
	if !errors.Is(err, ErrNotForgeable) {
		t.Fatalf("err = %v, want ErrNotForgeable", err)
	}
}

func TestSignAndVerifyImage(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	store := NewStore(root.Cert)
	key := NewKeypair(seed(30))
	cert, _ := root.Issue(testNow, IssueRequest{Subject: "JMicron Technology Corp", Usages: UsageDriverSign, PubKey: key.Public})

	img := &pe.File{Name: "mrxcls.sys", Machine: pe.MachineX86, Timestamp: testNow,
		Sections: []pe.Section{{Name: ".text", Data: []byte("rootkit driver body")}}}
	if err := SignImage(img, key, cert); err != nil {
		t.Fatalf("SignImage: %v", err)
	}
	sig, err := VerifyImage(img, store, testNow, UsageDriverSign)
	if err != nil {
		t.Fatalf("VerifyImage: %v", err)
	}
	if sig.Chain[0].Subject != "JMicron Technology Corp" {
		t.Fatalf("signer = %q", sig.Chain[0].Subject)
	}
}

func TestVerifyImageRejectsTamper(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	store := NewStore(root.Cert)
	key := NewKeypair(seed(31))
	cert, _ := root.Issue(testNow, IssueRequest{Subject: "Vendor", Usages: UsageDriverSign, PubKey: key.Public})
	img := &pe.File{Name: "drv.sys", Machine: pe.MachineX86, Timestamp: testNow,
		Sections: []pe.Section{{Name: ".text", Data: []byte("original")}}}
	if err := SignImage(img, key, cert); err != nil {
		t.Fatalf("SignImage: %v", err)
	}
	img.Sections[0].Data = []byte("patched!")
	if _, err := VerifyImage(img, store, testNow, UsageDriverSign); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyImageUnsigned(t *testing.T) {
	store := NewStore()
	img := &pe.File{Name: "x.exe", Machine: pe.MachineX86, Timestamp: testNow}
	if _, err := VerifyImage(img, store, testNow, UsageCodeSign); err == nil {
		t.Fatal("unsigned image verified")
	}
}

func TestSignImageWrongKey(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	key := NewKeypair(seed(32))
	other := NewKeypair(seed(33))
	cert, _ := root.Issue(testNow, IssueRequest{Subject: "V", Usages: UsageCodeSign, PubKey: key.Public})
	img := &pe.File{Name: "x.exe", Machine: pe.MachineX86, Timestamp: testNow}
	if err := SignImage(img, other, cert); err == nil {
		t.Fatal("SignImage accepted mismatched key")
	}
}

func TestImageSignatureBlobRoundTripThroughParse(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	store := NewStore(root.Cert)
	inter, _ := root.Subordinate(testNow, "Inter", HashStrong, seed(34), 10*365*24*time.Hour)
	key := NewKeypair(seed(35))
	cert, _ := inter.Issue(testNow, IssueRequest{Subject: "Leaf", Usages: UsageCodeSign, PubKey: key.Public})
	img := &pe.File{Name: "update.exe", Machine: pe.MachineX86, Timestamp: testNow,
		Sections: []pe.Section{{Name: ".text", Data: []byte("update body")}}}
	if err := SignImage(img, key, cert, inter.Cert); err != nil {
		t.Fatalf("SignImage: %v", err)
	}
	raw, err := img.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	reparsed, err := pe.Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := VerifyImage(reparsed, store, testNow, UsageCodeSign); err != nil {
		t.Fatalf("VerifyImage after round-trip: %v", err)
	}
}

func TestParseImageSignatureHostile(t *testing.T) {
	root := testRoot(t, "SimRoot CA", HashStrong)
	key := NewKeypair(seed(36))
	cert, _ := root.Issue(testNow, IssueRequest{Subject: "V", Usages: UsageCodeSign, PubKey: key.Public})
	img := &pe.File{Name: "x.exe", Machine: pe.MachineX86, Timestamp: testNow}
	if err := SignImage(img, key, cert); err != nil {
		t.Fatalf("SignImage: %v", err)
	}
	blob := img.SigBlob
	for i := 0; i < len(blob); i++ {
		if _, err := parseImageSignature(blob[:i]); err == nil {
			t.Fatalf("accepted truncated blob of %d bytes", i)
		}
	}
}

func TestWeakHashIsTruncated(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("a"), []byte("cyber weapons")} {
		if h := WeakHash(data); h > weakHashMask {
			t.Fatalf("WeakHash exceeds %d bits: %#x", WeakHashBits, h)
		}
	}
}

func TestUsageString(t *testing.T) {
	if got := (UsageCA | UsageCodeSign).String(); got != "[ca code-sign]" {
		t.Fatalf("String = %q", got)
	}
	if got := KeyUsage(0).String(); got != "none" {
		t.Fatalf("String = %q", got)
	}
}

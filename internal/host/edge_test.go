package host

import (
	"errors"
	"testing"
	"time"

	"repro/internal/pe"
	"repro/internal/sim"
	"repro/internal/usb"
)

// Edge cases around execution, removable media, and driver policy.

type blockByName struct{ name string }

func (b blockByName) Name() string { return "NameAV" }
func (b blockByName) ScanImage(h *Host, img *pe.File) string {
	if img.Name == b.name {
		return "Blocked." + b.name
	}
	return ""
}

func TestBrowseRemovableSwallowsAVBlock(t *testing.T) {
	// An AV block on the LNK payload must not abort browsing — the user
	// just sees the drive.
	k := sim.NewKernel()
	h := New(k, "GUARDED", WithOS(Win7))
	h.AddSecurity(blockByName{name: "payload.exe"})
	payload := &pe.File{Name: "payload.exe", Machine: pe.MachineX86, Timestamp: k.Now()}
	raw, _ := payload.Marshal()
	d := usb.NewDrive("STICK")
	d.Put("payload.exe", raw, true)
	d.LNKs = []usb.LNK{{Name: "x.lnk", OSTag: h.OS.Tag(), PayloadFile: "payload.exe", Malicious: true}}
	h.InsertUSB(d)
	if err := h.BrowseRemovable(); err != nil {
		t.Fatalf("BrowseRemovable returned AV error: %v", err)
	}
	if k.Trace().Count(sim.CatDefense) == 0 {
		t.Fatal("no defense trace for the blocked payload")
	}
}

func TestBrowseRemovableCorruptPayloadIgnored(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, "WS", WithOS(Win7), WithAutorun(true))
	d := usb.NewDrive("STICK")
	d.Put("junk.exe", []byte("not an SPE image"), false)
	d.Autorun = &usb.Autorun{Exec: "junk.exe"}
	d.LNKs = []usb.LNK{{Name: "x.lnk", OSTag: h.OS.Tag(), PayloadFile: "junk.exe", Malicious: true}}
	h.InsertUSB(d)
	if err := h.BrowseRemovable(); err != nil {
		t.Fatalf("corrupt payloads should be skipped: %v", err)
	}
}

func TestScheduledTaskMissingImage(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, "WS")
	h.ScheduleTask("ghost", `C:\missing.exe`, k.Now().Add(time.Minute))
	k.RunFor(2 * time.Minute) // must not panic; failure logged
	found := false
	for _, e := range h.EventLog() {
		if e.Source == "taskscheduler" {
			found = true
		}
	}
	if !found {
		t.Fatal("task failure not logged")
	}
}

func TestExecuteFileParseError(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, "WS")
	h.FS.Write(`C:\bad.exe`, []byte("garbage"), 0, k.Now())
	if _, err := h.ExecuteFile(`C:\bad.exe`, false); err == nil {
		t.Fatal("garbage executed")
	}
	if _, err := h.ExecuteFile(`C:\absent.exe`, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDriverCapsParsing(t *testing.T) {
	k := sim.NewKernel()
	// Build a self-trusted signer for this test.
	store, key, cert := driverPKI(t)
	h := New(k, "WS", WithCertStore(store))
	drv := testImage("multi.sys")
	drv.Sections = append(drv.Sections, pe.Section{Name: CapSectionName, Data: []byte(" rawdisk , , future-cap ")})
	if err := pkiSign(drv, key, cert); err != nil {
		t.Fatalf("sign: %v", err)
	}
	d, err := h.LoadDriver(drv)
	if err != nil {
		t.Fatalf("LoadDriver: %v", err)
	}
	if !d.Caps[CapRawDisk] || !d.Caps["future-cap"] || len(d.Caps) != 2 {
		t.Fatalf("caps = %v", d.Caps)
	}
	if h.Driver("MULTI.SYS") == nil {
		t.Fatal("driver lookup not case-insensitive")
	}
}

func TestWipeCheckCountsOnlyJPEGMarked(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, "WS")
	h.FS.Write(`C:\Users\u\documents\a.docx`, []byte{0xFF, 0xD8, 0x01}, 0, k.Now())
	h.FS.Write(`C:\Users\u\documents\b.docx`, []byte("intact"), 0, k.Now())
	h.FS.Write(`C:\Windows\sys.dll`, []byte{0xFF, 0xD8}, 0, k.Now())
	check := h.CheckWipe()
	if check.FilesWiped != 1 {
		t.Fatalf("FilesWiped = %d, want 1 (only user files count)", check.FilesWiped)
	}
}

func TestSeedDocumentsSizedBound(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, "WS")
	h.SeedDocumentsSized("u", 30, 4096)
	h.FS.Walk(`C:\Users`, func(f *FileNode) bool {
		if f.Size() > 4096 {
			t.Fatalf("doc %s = %d bytes, over bound", f.Path, f.Size())
		}
		return true
	})
}

func TestBrowserProfileRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	h := New(k, "WS")
	err := h.SeedBrowserProfile("ali", []BrowserLogin{
		{Domain: "bank.example", User: "a", Password: "p"},
	})
	if err != nil {
		t.Fatalf("SeedBrowserProfile: %v", err)
	}
	f, err := h.FS.Read(BrowserProfilePath("ali"))
	if err != nil || string(f.Bytes()) != "bank.example|a|p\n" {
		t.Fatalf("profile = %v %q", err, f.Bytes())
	}
}

package host

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// newPair builds two hosts with identical RNG streams, one lazy (the
// default) and one eager, for equivalence checks.
func newPair() (lazy, eager *Host) {
	lazy = New(sim.NewKernel(sim.WithSeed(77)), "WS")
	eager = New(sim.NewKernel(sim.WithSeed(77)), "WS", WithEagerDocs(true))
	return lazy, eager
}

// TestLazyEagerByteEquality is the §9 contract: reading every lazily
// seeded document observes exactly the bytes eager seeding would have
// written, and both modes leave the host RNG at the same stream position.
func TestLazyEagerByteEquality(t *testing.T) {
	lazyHost, eagerHost := newPair()
	lt, lf := lazyHost.SeedDocumentsSized("u", 40, 16*1024)
	et, ef := eagerHost.SeedDocumentsSized("u", 40, 16*1024)
	if lt != et || lf != 0 || ef != 0 {
		t.Fatalf("seeding diverged: lazy (%d,%d) vs eager (%d,%d)", lt, lf, et, ef)
	}
	if l, e := lazyHost.RNG.State(), eagerHost.RNG.State(); l != e {
		t.Fatalf("RNG stream position diverged: lazy %#x vs eager %#x", l, e)
	}
	checked := 0
	lazyHost.FS.Walk(`C:\Users`, func(f *FileNode) bool {
		ef, err := eagerHost.FS.Read(f.Path)
		if err != nil {
			t.Fatalf("eager host missing %s", f.Path)
		}
		if !bytes.Equal(f.Bytes(), ef.Bytes()) {
			t.Fatalf("content mismatch at %s", f.Path)
		}
		checked++
		return true
	})
	if checked != 40 {
		t.Fatalf("checked %d docs, want 40", checked)
	}
}

// TestLazyPrefixMatchesBytes pins prefix-stability of docTransform: Prefix
// must equal the head of the full generation, without materialising.
func TestLazyPrefixMatchesBytes(t *testing.T) {
	h := New(sim.NewKernel(sim.WithSeed(5)), "WS")
	h.SeedDocumentsSized("u", 10, 8*1024)
	h.FS.Walk(`C:\Users`, func(f *FileNode) bool {
		p := append([]byte(nil), f.Prefix(16)...)
		if f.Materialized() {
			t.Fatalf("Prefix materialised %s", f.Path)
		}
		if !bytes.Equal(p, f.Bytes()[:16]) {
			t.Fatalf("prefix of %s diverges from full content", f.Path)
		}
		return true
	})
}

// TestWriteAfterLazyRead covers the replace-content path: overwriting a
// document that was read lazily must stick, and re-reads see the new
// bytes.
func TestWriteAfterLazyRead(t *testing.T) {
	h := New(sim.NewKernel(), "WS")
	h.SeedDocumentsSized("u", 1, 4096)
	var path string
	h.FS.Walk(`C:\Users`, func(f *FileNode) bool { path = f.Path; return false })
	f, _ := h.FS.Read(path)
	_ = f.Bytes() // materialise
	if err := h.FS.Write(path, []byte("overwritten"), 0, h.K.Now()); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, _ := h.FS.Read(path)
	if string(got.Bytes()) != "overwritten" {
		t.Fatalf("content = %q", got.Bytes())
	}
}

// TestWipeAfterSeedWithoutMaterializing is the C7 memory story end to end:
// Shamoon-style wiping (replace content, check the two-byte artefact)
// never needs the seeded bytes, so nothing materialises.
func TestWipeAfterSeedWithoutMaterializing(t *testing.T) {
	h := New(sim.NewKernel(), "WS")
	h.SeedDocumentsSized("emp", 20, 4096)
	// Overwrite every doc with a JPEG fragment, as the buggy wiper does.
	frag := []byte{0xFF, 0xD8, 0xFF, 0xE0}
	h.FS.Walk(`C:\Users`, func(f *FileNode) bool {
		if f.Materialized() {
			t.Fatalf("doc %s materialised before any read", f.Path)
		}
		return true
	})
	var paths []string
	h.FS.Walk(`C:\Users`, func(f *FileNode) bool { paths = append(paths, f.Path); return true })
	for _, p := range paths {
		if err := h.FS.Write(p, frag, 0, h.K.Now()); err != nil {
			t.Fatalf("wipe %s: %v", p, err)
		}
	}
	check := h.CheckWipe()
	if check.FilesWiped != 20 {
		t.Fatalf("FilesWiped = %d, want 20", check.FilesWiped)
	}
}

// TestCheckWipeDoesNotMaterialize: the artefact scan peeks two bytes; an
// unwiped fleet's documents must stay unmaterialised afterwards.
func TestCheckWipeDoesNotMaterialize(t *testing.T) {
	h := New(sim.NewKernel(), "WS")
	h.SeedDocumentsSized("u", 15, 4096)
	if got := h.CheckWipe().FilesWiped; got != 0 {
		t.Fatalf("FilesWiped = %d on fresh host", got)
	}
	h.FS.Walk(`C:\Users`, func(f *FileNode) bool {
		if f.Materialized() {
			t.Fatalf("CheckWipe materialised %s", f.Path)
		}
		return true
	})
}

// TestWalkOverUnmaterializedNodes: metadata iteration (paths, sizes,
// extensions, totals) is free of content generation.
func TestWalkOverUnmaterializedNodes(t *testing.T) {
	h := New(sim.NewKernel(), "WS")
	total, _ := h.SeedDocumentsSized("u", 25, 4096)
	var sum int64
	h.FS.Walk(`C:\Users`, func(f *FileNode) bool {
		sum += int64(f.Size())
		_ = f.Ext()
		return true
	})
	if sum != total {
		t.Fatalf("size sum %d != seeded total %d", sum, total)
	}
	if h.FS.TotalBytes() < total {
		t.Fatalf("TotalBytes %d < seeded %d", h.FS.TotalBytes(), total)
	}
	h.FS.Walk(`C:\Users`, func(f *FileNode) bool {
		if f.Materialized() {
			t.Fatalf("walk materialised %s", f.Path)
		}
		return true
	})
}

// TestSharedContentCopyOnWrite: two nodes aliasing one shared buffer must
// not observe each other's mutations, and the backing buffer stays
// pristine.
func TestSharedContentCopyOnWrite(t *testing.T) {
	fs := NewFS()
	image := []byte("SPE1-shared-malware-image")
	fs.WriteShared(`C:\a.exe`, image, 0, t0)
	fs.WriteShared(`C:\b.exe`, image, 0, t0)
	fa, _ := fs.Read(`C:\a.exe`)
	fb, _ := fs.Read(`C:\b.exe`)
	ma := fa.MutableBytes()
	ma[0] = 'X'
	if image[0] != 'S' {
		t.Fatal("MutableBytes mutated the shared backing buffer")
	}
	if fb.Bytes()[0] != 'S' {
		t.Fatal("mutation leaked across shared nodes")
	}
	if fa.Bytes()[0] != 'X' {
		t.Fatal("mutation did not stick on the owning node")
	}
}

// TestMutableBytesOnLazyNode: COW over a lazy node materialises once and
// then owns the buffer.
func TestMutableBytesOnLazyNode(t *testing.T) {
	fs := NewFS()
	lc := LazyContent{Seed: 42, Len: 64, Doc: true}
	fs.WriteLazy(`C:\doc.txt`, lc, 0, t0)
	want := lc.Generate()
	f, _ := fs.Read(`C:\doc.txt`)
	m := f.MutableBytes()
	if !bytes.Equal(m, want) {
		t.Fatal("MutableBytes on lazy node generated wrong content")
	}
	m[0] = '!'
	if f.Bytes()[0] != '!' {
		t.Fatal("mutation lost after COW materialisation")
	}
}

// TestLazyDocNeverStartsWithJPEGMagic pins the CheckWipe soundness
// argument: docTransform forces byte 0 into 'a'..'z', so an untouched
// document can never be counted as wiped.
func TestLazyDocNeverStartsWithJPEGMagic(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		p := LazyContent{Seed: seed, Len: 2, Doc: true}.generatePrefix(2)
		if p[0] < 'a' || p[0] > 'z' {
			t.Fatalf("seed %d: first byte %#x outside transform range", seed, p[0])
		}
	}
}

package host

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// FileAttr is a bitmask of Windows-style file attributes.
type FileAttr uint8

// File attributes used by the modelled malware (hidden droppers, system
// files).
const (
	AttrHidden FileAttr = 1 << iota
	AttrSystem
	AttrReadOnly
)

// FileNode is one file in a simulated filesystem.
type FileNode struct {
	Path    string // original-case cleaned path
	Data    []byte
	Attr    FileAttr
	ModTime time.Time
}

// Size returns the file length in bytes.
func (f *FileNode) Size() int { return len(f.Data) }

// Ext returns the lower-case extension without the dot ("docx"), or "".
func (f *FileNode) Ext() string {
	base := f.Path
	if i := strings.LastIndexByte(base, '\\'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i >= 0 && i+1 < len(base) {
		return strings.ToLower(base[i+1:])
	}
	return ""
}

// FS is a case-insensitive, backslash-separated path store, the way the
// samples see a Windows volume. Directories exist implicitly when they
// contain files and explicitly after Mkdir.
type FS struct {
	files map[string]*FileNode // key: lower-cased clean path
	dirs  map[string]string    // key: lower-cased clean path -> original case
}

// NewFS returns an empty filesystem with the standard Windows skeleton.
func NewFS() *FS {
	fs := &FS{
		files: make(map[string]*FileNode),
		dirs:  make(map[string]string),
	}
	for _, d := range []string{
		`C:`, `C:\Windows`, `C:\Windows\System32`, `C:\Windows\System32\drivers`,
		`C:\Users`, `C:\Program Files`,
	} {
		fs.Mkdir(d)
	}
	return fs
}

// SystemDir is the simulated %system% directory the paper's droppers copy
// themselves into.
const SystemDir = `C:\Windows\System32`

// CleanPath normalizes a path: forward slashes become backslashes, repeated
// separators collapse, trailing separators are trimmed.
func CleanPath(p string) string {
	p = strings.ReplaceAll(p, "/", `\`)
	for strings.Contains(p, `\\`) {
		p = strings.ReplaceAll(p, `\\`, `\`)
	}
	return strings.TrimSuffix(p, `\`)
}

func fsKey(p string) string { return strings.ToLower(CleanPath(p)) }

// Errors returned by filesystem operations.
var (
	ErrNotFound = errors.New("host: file not found")
	ErrReadOnly = errors.New("host: file is read-only")
)

// Write creates or replaces a file. Parent directories are created
// implicitly. Read-only files refuse replacement.
func (fs *FS) Write(path string, data []byte, attr FileAttr, modTime time.Time) error {
	clean := CleanPath(path)
	key := fsKey(clean)
	if existing, ok := fs.files[key]; ok && existing.Attr&AttrReadOnly != 0 {
		return fmt.Errorf("%w: %s", ErrReadOnly, clean)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	fs.files[key] = &FileNode{Path: clean, Data: cp, Attr: attr, ModTime: modTime}
	fs.mkParents(clean)
	return nil
}

func (fs *FS) mkParents(clean string) {
	for {
		i := strings.LastIndexByte(clean, '\\')
		if i <= 0 {
			return
		}
		clean = clean[:i]
		key := strings.ToLower(clean)
		if _, ok := fs.dirs[key]; ok {
			return
		}
		fs.dirs[key] = clean
	}
}

// Mkdir registers a directory (and its parents).
func (fs *FS) Mkdir(path string) {
	clean := CleanPath(path)
	fs.dirs[strings.ToLower(clean)] = clean
	fs.mkParents(clean)
}

// Read returns the file at path.
func (fs *FS) Read(path string) (*FileNode, error) {
	f, ok := fs.files[fsKey(path)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, CleanPath(path))
	}
	return f, nil
}

// Exists reports whether a file exists at path.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[fsKey(path)]
	return ok
}

// DirExists reports whether a directory exists at path.
func (fs *FS) DirExists(path string) bool {
	_, ok := fs.dirs[fsKey(path)]
	return ok
}

// Delete removes the file at path.
func (fs *FS) Delete(path string) error {
	key := fsKey(path)
	if _, ok := fs.files[key]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, CleanPath(path))
	}
	delete(fs.files, key)
	return nil
}

// Rename moves a file, preserving contents and attributes. This is how
// Stuxnet swaps s7otbxdx.dll for s7otbxsx.dll.
func (fs *FS) Rename(oldPath, newPath string) error {
	oldKey := fsKey(oldPath)
	f, ok := fs.files[oldKey]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, CleanPath(oldPath))
	}
	delete(fs.files, oldKey)
	clean := CleanPath(newPath)
	f.Path = clean
	fs.files[fsKey(clean)] = f
	fs.mkParents(clean)
	return nil
}

// List returns the files directly inside dir, sorted by path.
func (fs *FS) List(dir string) []*FileNode {
	prefix := fsKey(dir) + `\`
	var out []*FileNode
	for key, f := range fs.files {
		if strings.HasPrefix(key, prefix) && !strings.Contains(key[len(prefix):], `\`) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Walk visits every file (sorted by path) whose path has dir as a prefix.
// An empty dir walks the whole filesystem.
func (fs *FS) Walk(dir string, visit func(*FileNode) bool) {
	prefix := ""
	if dir != "" {
		prefix = fsKey(dir) + `\`
	}
	keys := make([]string, 0, len(fs.files))
	for key := range fs.files {
		if prefix == "" || strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		if !visit(fs.files[key]) {
			return
		}
	}
}

// Glob returns files whose lower-cased path contains every one of the
// lower-cased substrings. The Shamoon wiper targets paths containing
// "download", "document", "picture", "music", "video", "desktop".
func (fs *FS) Glob(substrings ...string) []*FileNode {
	lowered := make([]string, len(substrings))
	for i, s := range substrings {
		lowered[i] = strings.ToLower(s)
	}
	var out []*FileNode
	for key, f := range fs.files {
		match := true
		for _, s := range lowered {
			if !strings.Contains(key, s) {
				match = false
				break
			}
		}
		if match {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// FileCount returns the number of files.
func (fs *FS) FileCount() int { return len(fs.files) }

// TotalBytes returns the sum of all file sizes.
func (fs *FS) TotalBytes() int64 {
	var n int64
	for _, f := range fs.files {
		n += int64(len(f.Data))
	}
	return n
}

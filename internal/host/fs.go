package host

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// FileAttr is a bitmask of Windows-style file attributes.
type FileAttr uint8

// File attributes used by the modelled malware (hidden droppers, system
// files).
const (
	AttrHidden FileAttr = 1 << iota
	AttrSystem
	AttrReadOnly
)

// LazyContent describes file content that can be generated on demand: a
// captured RNG stream position, a length, and whether the printable-
// document transform applies. Generation is a pure function of the
// descriptor, so a lazy file read observes exactly the bytes an eager
// write at seeding time would have stored (DESIGN.md §9).
type LazyContent struct {
	Seed uint64 // sim RNG state the content stream starts from
	Len  int    // content length in bytes
	Doc  bool   // apply the printable-document transform
}

// Generate materialises the full content.
func (lc LazyContent) Generate() []byte {
	data := sim.NewRNG(lc.Seed).Bytes(lc.Len)
	if lc.Doc {
		docTransform(data)
	}
	return data
}

// generatePrefix materialises only the first n bytes (n is clamped to
// Len). Wipe-artefact checks need two bytes of 30,000 hosts' documents;
// generating whole files for that would forfeit laziness.
func (lc LazyContent) generatePrefix(n int) []byte {
	if n > lc.Len {
		n = lc.Len
	}
	data := sim.NewRNG(lc.Seed).Bytes(n)
	if lc.Doc {
		docTransform(data)
	}
	return data
}

// docTransform makes generated content partially printable so strings
// extraction and entropy analysis see document-like structure. It is
// prefix-stable: transforming the first n bytes of a stream equals the
// first n bytes of the transformed stream.
func docTransform(data []byte) {
	for j := 0; j < len(data); j += 2 {
		data[j] = byte('a' + int(data[j])%26)
	}
}

// FileNode is one file in a simulated filesystem. Content lives in one of
// three states:
//
//   - owned: data holds bytes this node owns (the classic eager write);
//   - shared: data aliases an immutable buffer owned elsewhere (a
//     malware image cache); it is copied on first mutation;
//   - lazy: content has not been generated yet; a LazyContent descriptor
//     produces it deterministically on first read.
//
// Readers use Bytes (or Prefix for a cheap peek); writers that mutate in
// place use MutableBytes. Replacing content goes through FS.Write as
// always.
type FileNode struct {
	Path    string // original-case cleaned path
	Attr    FileAttr
	ModTime time.Time

	data   []byte
	shared bool
	lazy   *LazyContent
}

// Bytes returns the file content, generating it on first read if the
// node is lazy. Callers must treat the result as read-only: it may alias
// a buffer shared across the whole fleet. Use MutableBytes to mutate.
func (f *FileNode) Bytes() []byte {
	if f.lazy != nil {
		f.data = f.lazy.Generate()
		f.lazy = nil
	}
	return f.data
}

// MutableBytes returns content this node exclusively owns, materialising
// lazy content and copying shared content first (the copy-on-write step).
func (f *FileNode) MutableBytes() []byte {
	b := f.Bytes()
	if f.shared {
		b = append([]byte(nil), b...)
		f.data = b
		f.shared = false
	}
	return b
}

// Prefix returns the first n bytes of the content (fewer if the file is
// shorter) without materialising or caching a lazy node's full content.
func (f *FileNode) Prefix(n int) []byte {
	if f.lazy != nil {
		return f.lazy.generatePrefix(n)
	}
	if n > len(f.data) {
		n = len(f.data)
	}
	return f.data[:n]
}

// Materialized reports whether the content bytes exist in memory.
func (f *FileNode) Materialized() bool { return f.lazy == nil }

// Size returns the file length in bytes. It never materialises content.
func (f *FileNode) Size() int {
	if f.lazy != nil {
		return f.lazy.Len
	}
	return len(f.data)
}

// Ext returns the lower-case extension without the dot ("docx"), or "".
func (f *FileNode) Ext() string {
	base := f.Path
	if i := strings.LastIndexByte(base, '\\'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i >= 0 && i+1 < len(base) {
		return strings.ToLower(base[i+1:])
	}
	return ""
}

// FS is a case-insensitive, backslash-separated path store, the way the
// samples see a Windows volume. Directories exist implicitly when they
// contain files and explicitly after Mkdir.
type FS struct {
	files map[string]*FileNode // key: lower-cased clean path
	dirs  map[string]string    // key: lower-cased clean path -> original case
}

// NewFS returns an empty filesystem with the standard Windows skeleton.
func NewFS() *FS {
	fs := &FS{
		files: make(map[string]*FileNode),
		dirs:  make(map[string]string),
	}
	for _, d := range []string{
		`C:`, `C:\Windows`, `C:\Windows\System32`, `C:\Windows\System32\drivers`,
		`C:\Users`, `C:\Program Files`,
	} {
		fs.Mkdir(d)
	}
	return fs
}

// SystemDir is the simulated %system% directory the paper's droppers copy
// themselves into.
const SystemDir = `C:\Windows\System32`

// CleanPath normalizes a path: forward slashes become backslashes, repeated
// separators collapse, trailing separators are trimmed.
func CleanPath(p string) string {
	p = strings.ReplaceAll(p, "/", `\`)
	for strings.Contains(p, `\\`) {
		p = strings.ReplaceAll(p, `\\`, `\`)
	}
	return strings.TrimSuffix(p, `\`)
}

func fsKey(p string) string { return strings.ToLower(CleanPath(p)) }

// Errors returned by filesystem operations.
var (
	ErrNotFound = errors.New("host: file not found")
	ErrReadOnly = errors.New("host: file is read-only")
)

// put replaces the node at path (honouring the read-only refusal) and
// registers parent directories.
func (fs *FS) put(path string, node *FileNode) error {
	clean := CleanPath(path)
	key := fsKey(clean)
	if existing, ok := fs.files[key]; ok && existing.Attr&AttrReadOnly != 0 {
		return fmt.Errorf("%w: %s", ErrReadOnly, clean)
	}
	node.Path = clean
	fs.files[key] = node
	fs.mkParents(clean)
	return nil
}

// Write creates or replaces a file. Parent directories are created
// implicitly. Read-only files refuse replacement. The data is copied, so
// the caller keeps ownership of its slice.
func (fs *FS) Write(path string, data []byte, attr FileAttr, modTime time.Time) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	return fs.put(path, &FileNode{data: cp, Attr: attr, ModTime: modTime})
}

// WriteShared creates or replaces a file whose content aliases data
// without copying. The caller promises the buffer is immutable for the
// rest of the run — the contract malware image caches satisfy, letting a
// 30,000-host fleet hold one copy of each dropped image. In-place
// mutation through MutableBytes copies first, so sharers never observe
// each other.
func (fs *FS) WriteShared(path string, data []byte, attr FileAttr, modTime time.Time) error {
	return fs.put(path, &FileNode{data: data, shared: true, Attr: attr, ModTime: modTime})
}

// WriteLazy creates or replaces a file whose content is generated from
// the descriptor on first read. Until then the node costs only its
// metadata, which is what makes fleet-scale document seeding cheap.
func (fs *FS) WriteLazy(path string, lc LazyContent, attr FileAttr, modTime time.Time) error {
	if lc.Len < 0 {
		return fmt.Errorf("host: negative lazy content length %d for %s", lc.Len, path)
	}
	return fs.put(path, &FileNode{lazy: &lc, Attr: attr, ModTime: modTime})
}

func (fs *FS) mkParents(clean string) {
	for {
		i := strings.LastIndexByte(clean, '\\')
		if i <= 0 {
			return
		}
		clean = clean[:i]
		key := strings.ToLower(clean)
		if _, ok := fs.dirs[key]; ok {
			return
		}
		fs.dirs[key] = clean
	}
}

// Mkdir registers a directory (and its parents).
func (fs *FS) Mkdir(path string) {
	clean := CleanPath(path)
	fs.dirs[strings.ToLower(clean)] = clean
	fs.mkParents(clean)
}

// Read returns the file at path.
func (fs *FS) Read(path string) (*FileNode, error) {
	f, ok := fs.files[fsKey(path)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, CleanPath(path))
	}
	return f, nil
}

// Exists reports whether a file exists at path.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[fsKey(path)]
	return ok
}

// DirExists reports whether a directory exists at path.
func (fs *FS) DirExists(path string) bool {
	_, ok := fs.dirs[fsKey(path)]
	return ok
}

// Delete removes the file at path.
func (fs *FS) Delete(path string) error {
	key := fsKey(path)
	if _, ok := fs.files[key]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, CleanPath(path))
	}
	delete(fs.files, key)
	return nil
}

// Rename moves a file, preserving contents and attributes. This is how
// Stuxnet swaps s7otbxdx.dll for s7otbxsx.dll.
func (fs *FS) Rename(oldPath, newPath string) error {
	oldKey := fsKey(oldPath)
	f, ok := fs.files[oldKey]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, CleanPath(oldPath))
	}
	delete(fs.files, oldKey)
	clean := CleanPath(newPath)
	f.Path = clean
	fs.files[fsKey(clean)] = f
	fs.mkParents(clean)
	return nil
}

// List returns the files directly inside dir, sorted by path.
func (fs *FS) List(dir string) []*FileNode {
	prefix := fsKey(dir) + `\`
	var out []*FileNode
	for key, f := range fs.files {
		if strings.HasPrefix(key, prefix) && !strings.Contains(key[len(prefix):], `\`) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Walk visits every file (sorted by path) whose path has dir as a prefix.
// An empty dir walks the whole filesystem.
func (fs *FS) Walk(dir string, visit func(*FileNode) bool) {
	prefix := ""
	if dir != "" {
		prefix = fsKey(dir) + `\`
	}
	keys := make([]string, 0, len(fs.files))
	for key := range fs.files {
		if prefix == "" || strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		if !visit(fs.files[key]) {
			return
		}
	}
}

// Glob returns files whose lower-cased path contains every one of the
// lower-cased substrings. The Shamoon wiper targets paths containing
// "download", "document", "picture", "music", "video", "desktop".
func (fs *FS) Glob(substrings ...string) []*FileNode {
	lowered := make([]string, len(substrings))
	for i, s := range substrings {
		lowered[i] = strings.ToLower(s)
	}
	var out []*FileNode
	for key, f := range fs.files {
		match := true
		for _, s := range lowered {
			if !strings.Contains(key, s) {
				match = false
				break
			}
		}
		if match {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// FileCount returns the number of files.
func (fs *FS) FileCount() int { return len(fs.files) }

// TotalBytes returns the sum of all file sizes.
func (fs *FS) TotalBytes() int64 {
	var n int64
	for _, f := range fs.files {
		n += int64(f.Size())
	}
	return n
}

package host

import (
	"errors"
	"testing"
	"time"

	"repro/internal/pe"
	"repro/internal/pki"
	"repro/internal/sim"
	"repro/internal/usb"
)

func testKernel() *sim.Kernel {
	return sim.NewKernel(sim.WithSeed(7))
}

func testImage(name string) *pe.File {
	return &pe.File{
		Name: name, Machine: pe.MachineX86, Timestamp: t0,
		Sections: []pe.Section{{Name: ".text", Characteristics: pe.SecCode, Data: []byte(name + " body")}},
	}
}

func TestHostDefaults(t *testing.T) {
	k := testKernel()
	h := New(k, "WS-001")
	if h.OS != Win7 || h.Arch != pe.MachineX86 {
		t.Fatalf("defaults: %v %v", h.OS, h.Arch)
	}
	if !h.Bootable() {
		t.Fatal("fresh host not bootable")
	}
	if h.Patched("MS10-046") {
		t.Fatal("fresh host unexpectedly patched")
	}
}

func TestExecuteDispatch(t *testing.T) {
	k := testKernel()
	h := New(k, "WS-001")
	var gotImg string
	h.Dispatcher = func(hh *Host, p *Process, img *pe.File) {
		gotImg = img.Name
		if !p.Alive || p.PID == 0 {
			t.Error("bad process state in dispatcher")
		}
	}
	proc, err := h.Execute(testImage("dropper.exe"), false)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if gotImg != "dropper.exe" {
		t.Fatalf("dispatcher saw %q", gotImg)
	}
	if len(h.Processes()) != 1 {
		t.Fatalf("processes = %d", len(h.Processes()))
	}
	h.Kill(proc.PID)
	if len(h.Processes()) != 0 {
		t.Fatal("Kill did not remove process")
	}
}

func TestExecuteX64OnX86Fails(t *testing.T) {
	k := testKernel()
	h := New(k, "WS-001") // x86
	img := testImage("payload64.exe")
	img.Machine = pe.MachineX64
	if _, err := h.Execute(img, false); err == nil {
		t.Fatal("x64 image ran on x86 host")
	}
	h64 := New(k, "WS-064", WithArch(pe.MachineX64))
	if _, err := h64.Execute(img, false); err != nil {
		t.Fatalf("x64 on x64: %v", err)
	}
}

type blockAll struct{}

func (blockAll) Name() string                           { return "SimAV" }
func (blockAll) ScanImage(h *Host, img *pe.File) string { return "Trojan.Generic" }

type blockNone struct{}

func (blockNone) Name() string                           { return "SleepyAV" }
func (blockNone) ScanImage(h *Host, img *pe.File) string { return "" }

func TestSecurityProductBlocks(t *testing.T) {
	k := testKernel()
	h := New(k, "WS-001")
	h.AddSecurity(blockNone{})
	h.AddSecurity(blockAll{})
	_, err := h.Execute(testImage("mal.exe"), false)
	if !errors.Is(err, ErrBlocked) {
		t.Fatalf("err = %v, want ErrBlocked", err)
	}
	if k.Trace().Count(sim.CatDefense) == 0 {
		t.Fatal("no defense trace")
	}
}

func TestDropAndExecuteFile(t *testing.T) {
	k := testKernel()
	h := New(k, "WS-001")
	img := testImage("netinit.exe")
	if err := h.DropFile(`C:\Windows\System32\netinit.exe`, img, AttrHidden); err != nil {
		t.Fatalf("DropFile: %v", err)
	}
	ran := false
	h.Dispatcher = func(hh *Host, p *Process, got *pe.File) { ran = got.Name == "netinit.exe" }
	if _, err := h.ExecuteFile(`C:\Windows\System32\netinit.exe`, true); err != nil {
		t.Fatalf("ExecuteFile: %v", err)
	}
	if !ran {
		t.Fatal("dropped file did not dispatch")
	}
}

func TestServiceLifecycle(t *testing.T) {
	k := testKernel()
	h := New(k, "WS-001")
	h.DropFile(`C:\Windows\System32\trksvr.exe`, testImage("TrkSvr.exe"), 0)
	h.InstallService("TrkSvr", `C:\Windows\System32\trksvr.exe`, true)
	if h.Service("trksvr") == nil {
		t.Fatal("service lookup case-insensitive failed")
	}
	if _, ok := h.Registry.Get(`HKLM\SYSTEM\CurrentControlSet\Services\TrkSvr\ImagePath`); !ok {
		t.Fatal("service not registered in registry")
	}
	ran := false
	h.Dispatcher = func(hh *Host, p *Process, img *pe.File) {
		ran = true
		if !p.System {
			t.Error("service did not run as SYSTEM")
		}
	}
	if err := h.StartService("TrkSvr"); err != nil {
		t.Fatalf("StartService: %v", err)
	}
	if !ran || !h.Service("TrkSvr").Running {
		t.Fatal("service did not run")
	}
	if err := h.StartService("ghost"); err == nil {
		t.Fatal("starting unknown service succeeded")
	}
}

func TestScheduledTaskFiresAtTime(t *testing.T) {
	k := testKernel()
	h := New(k, "WS-001")
	h.DropFile(`C:\wiper.exe`, testImage("wiper.exe"), 0)
	var firedAt time.Time
	h.Dispatcher = func(hh *Host, p *Process, img *pe.File) { firedAt = k.Now() }
	trigger := k.Now().Add(48 * time.Hour)
	h.ScheduleTask("wipe", `C:\wiper.exe`, trigger)
	k.RunFor(24 * time.Hour)
	if !firedAt.IsZero() {
		t.Fatal("task fired early")
	}
	k.RunFor(48 * time.Hour)
	if !firedAt.Equal(trigger) {
		t.Fatalf("task fired at %v, want %v", firedAt, trigger)
	}
}

func TestPatchGate(t *testing.T) {
	k := testKernel()
	h := New(k, "WS-001", WithPatches("ms10-046"))
	if !h.Patched("MS10-046") {
		t.Fatal("WithPatches case-insensitivity failed")
	}
	h.ApplyPatch("MS10-061")
	if !h.Patched("ms10-061") {
		t.Fatal("ApplyPatch failed")
	}
}

func driverPKI(t *testing.T) (*pki.Store, *pki.Keypair, *pki.Certificate) {
	t.Helper()
	var s [32]byte
	s[0] = 42
	now := sim.Epoch
	root := pki.NewRoot("SimRoot", pki.HashStrong, s, now.Add(-time.Hour), 100*365*24*time.Hour)
	var s2 [32]byte
	s2[0] = 43
	key := pki.NewKeypair(s2)
	cert, err := root.Issue(now, pki.IssueRequest{
		Subject: "Eldos Corporation", Usages: pki.UsageDriverSign,
		Lifetime: 10 * 365 * 24 * time.Hour, PubKey: key.Public,
	})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	return pki.NewStore(root.Cert), key, cert
}

func TestLoadDriverSignedGrantsCaps(t *testing.T) {
	k := testKernel()
	store, key, cert := driverPKI(t)
	h := New(k, "WS-001", WithCertStore(store))
	drv := testImage("drdisk.sys")
	drv.Sections = append(drv.Sections, pe.Section{Name: CapSectionName, Data: []byte("rawdisk")})
	if err := pki.SignImage(drv, key, cert); err != nil {
		t.Fatalf("SignImage: %v", err)
	}
	if h.HasCap(CapRawDisk) {
		t.Fatal("capability present before driver load")
	}
	if err := h.WriteRawSector(0, make([]byte, SectorSize)); !errors.Is(err, ErrNoRawAccess) {
		t.Fatalf("raw write without driver: %v", err)
	}
	d, err := h.LoadDriver(drv)
	if err != nil {
		t.Fatalf("LoadDriver: %v", err)
	}
	if d.Signer != "Eldos Corporation" || !d.Caps[CapRawDisk] {
		t.Fatalf("driver = %+v", d)
	}
	if err := h.WriteRawSector(0, make([]byte, SectorSize)); err != nil {
		t.Fatalf("raw write with driver: %v", err)
	}
	if h.Bootable() {
		t.Fatal("host bootable after MBR overwrite with zeros")
	}
}

func TestLoadDriverUnsignedRejected(t *testing.T) {
	k := testKernel()
	store, _, _ := driverPKI(t)
	h := New(k, "WS-001", WithCertStore(store))
	drv := testImage("rootkit.sys")
	if _, err := h.LoadDriver(drv); !errors.Is(err, ErrUnsignedDriver) {
		t.Fatalf("err = %v, want ErrUnsignedDriver", err)
	}
}

func TestUSBLNKExploitGate(t *testing.T) {
	k := testKernel()
	payload := testImage("~wtr4132.tmp")
	raw, _ := payload.Marshal()

	d := usb.NewDrive("KINGSTON")
	d.Put("~wtr4132.tmp", raw, true)
	d.LNKs = []usb.LNK{
		{Name: "Copy of Shortcut to.lnk", OSTag: "win7", PayloadFile: "~wtr4132.tmp", Malicious: true},
		{Name: "Copy of Copy of Shortcut to.lnk", OSTag: "winxp", PayloadFile: "~wtr4132.tmp", Malicious: true},
	}

	// Unpatched Win7 host: exploited.
	h := New(k, "VICTIM", WithOS(Win7))
	ran := 0
	h.Dispatcher = func(hh *Host, p *Process, img *pe.File) { ran++ }
	h.InsertUSB(d)
	if err := h.BrowseRemovable(); err != nil {
		t.Fatalf("BrowseRemovable: %v", err)
	}
	if ran != 1 {
		t.Fatalf("payload ran %d times, want 1 (only matching-OS LNK)", ran)
	}

	// Patched host: safe.
	hp := New(k, "PATCHED", WithOS(Win7), WithPatches(MS10_046))
	hp.Dispatcher = func(hh *Host, p *Process, img *pe.File) { t.Error("payload ran on patched host") }
	hp.InsertUSB(d)
	if err := hp.BrowseRemovable(); err != nil {
		t.Fatalf("BrowseRemovable: %v", err)
	}

	// Wrong-OS host: LNKs don't match.
	hv := New(k, "VISTA", WithOS(WinVista))
	hv.Dispatcher = func(hh *Host, p *Process, img *pe.File) { t.Error("payload ran on mismatched OS") }
	hv.InsertUSB(d)
	hv.BrowseRemovable()
}

func TestUSBAutorunGate(t *testing.T) {
	k := testKernel()
	payload := testImage("autorun_payload.exe")
	raw, _ := payload.Marshal()
	d := usb.NewDrive("STICK")
	d.Put("setup.exe", raw, false)
	d.Autorun = &usb.Autorun{Exec: "setup.exe"}

	h := New(k, "AUTORUN-ON", WithAutorun(true))
	ran := false
	h.Dispatcher = func(hh *Host, p *Process, img *pe.File) { ran = true }
	h.InsertUSB(d)
	h.BrowseRemovable()
	if !ran {
		t.Fatal("autorun payload did not run")
	}

	h2 := New(k, "AUTORUN-OFF")
	h2.Dispatcher = func(hh *Host, p *Process, img *pe.File) { t.Error("autorun ran while disabled") }
	h2.InsertUSB(d)
	h2.BrowseRemovable()
}

func TestUSBInsertionHooksAndInternetSeen(t *testing.T) {
	k := testKernel()
	h := New(k, "GW", WithInternet(true))
	d := usb.NewDrive("STICK")
	d.HiddenDB = usb.NewHiddenStore()
	hooked := false
	h.OnUSBInsert = append(h.OnUSBInsert, func(hh *Host, dd *usb.Drive) { hooked = true })
	h.InsertUSB(d)
	if !hooked {
		t.Fatal("insertion hook did not fire")
	}
	if !d.HiddenDB.InternetSeen {
		t.Fatal("InternetSeen not set on connected host")
	}
	if got := h.RemoveUSB(); got != d || h.CurrentUSB() != nil {
		t.Fatal("RemoveUSB bookkeeping wrong")
	}
	if d.Insertions != 1 {
		t.Fatalf("Insertions = %d", d.Insertions)
	}
}

func TestBrowseWithoutDrive(t *testing.T) {
	h := New(testKernel(), "WS")
	if err := h.BrowseRemovable(); err == nil {
		t.Fatal("BrowseRemovable with no drive succeeded")
	}
}

func TestSeedDocumentsAndCheckWipe(t *testing.T) {
	k := testKernel()
	h := New(k, "WS-001")
	total, failed := h.SeedDocuments("ali", 50)
	if total <= 0 || failed != 0 || h.FS.FileCount() < 50 {
		t.Fatalf("seeded %d bytes (%d failed), %d files", total, failed, h.FS.FileCount())
	}
	check := h.CheckWipe()
	if check.FilesWiped != 0 || !check.Bootable || !check.MBRIntact || check.WipedMarker {
		t.Fatalf("fresh host wipe check: %+v", check)
	}
	h.MarkWiped("test")
	if !h.CheckWipe().WipedMarker {
		t.Fatal("MarkWiped not reflected")
	}
}

func TestEventLog(t *testing.T) {
	k := testKernel()
	h := New(k, "WS-001")
	h.Logf(sim.CatExec, "svc", "hello %d", 42)
	log := h.EventLog()
	if len(log) != 1 || log[0].Message != "hello 42" || log[0].Source != "svc" {
		t.Fatalf("log = %+v", log)
	}
}

func TestProfileInfo(t *testing.T) {
	k := testKernel()
	h := New(k, "WS-001", WithDomain("ARAMCO"), WithOS(WinXP))
	h.SeedDocuments("u", 3)
	p := h.ProfileInfo()
	if p.ComputerName != "WS-001" || p.Domain != "ARAMCO" || p.OSVersion != "winxp" {
		t.Fatalf("profile = %+v", p)
	}
	if p.FileCount < 3 || p.TotalBytes <= 0 {
		t.Fatalf("profile inventory = %+v", p)
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Set(`HKLM\Software\Foo`, "1")
	if v, ok := r.Get(`hklm\software\foo`); !ok || v != "1" {
		t.Fatal("case-insensitive get failed")
	}
	r.Set(`HKLM\Software\Bar`, "2")
	keys := r.Keys(`HKLM\Software`)
	if len(keys) != 2 {
		t.Fatalf("Keys = %v", keys)
	}
	r.Delete(`HKLM\SOFTWARE\foo`)
	if _, ok := r.Get(`HKLM\Software\Foo`); ok {
		t.Fatal("delete failed")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestMBRRoundTrip(t *testing.T) {
	m := &MBR{}
	copy(m.BootCode[:], "bootloader")
	m.Partitions[0] = Partition{Active: true, StartSector: 2048, Sectors: 1 << 20}
	sector := m.Marshal()
	if len(sector) != SectorSize {
		t.Fatalf("sector len = %d", len(sector))
	}
	got, err := ParseMBR(sector)
	if err != nil {
		t.Fatalf("ParseMBR: %v", err)
	}
	if !got.Partitions[0].Active || got.Partitions[0].StartSector != 2048 || got.Partitions[0].Sectors != 1<<20 {
		t.Fatalf("partitions = %+v", got.Partitions)
	}
}

func TestParseMBRRejectsWiped(t *testing.T) {
	if _, err := ParseMBR(make([]byte, SectorSize)); err == nil {
		t.Fatal("zeroed sector parsed as MBR")
	}
	if _, err := ParseMBR([]byte{1, 2, 3}); err == nil {
		t.Fatal("short sector parsed as MBR")
	}
}

func TestDiskSectorIO(t *testing.T) {
	d := NewDisk(100)
	if err := d.WriteSector(5, []byte("hello")); err != nil {
		t.Fatalf("WriteSector: %v", err)
	}
	s, err := d.ReadSector(5)
	if err != nil || string(s[:5]) != "hello" {
		t.Fatalf("ReadSector: %v %q", err, s[:5])
	}
	// Unwritten sectors read as zeros.
	s, _ = d.ReadSector(50)
	for _, b := range s {
		if b != 0 {
			t.Fatal("unwritten sector not zero")
		}
	}
	if _, err := d.ReadSector(-1); !errors.Is(err, ErrSectorRange) {
		t.Fatalf("err = %v", err)
	}
	if err := d.WriteSector(100, nil); !errors.Is(err, ErrSectorRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestFreshDiskBootable(t *testing.T) {
	d := NewDisk(1 << 12)
	if !d.Bootable() {
		t.Fatal("fresh disk not bootable")
	}
	d.WriteSector(0, make([]byte, SectorSize))
	if d.Bootable() {
		t.Fatal("disk bootable after MBR zeroed")
	}
}

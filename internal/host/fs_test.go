package host

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)

func TestFSWriteReadCaseInsensitive(t *testing.T) {
	fs := NewFS()
	if err := fs.Write(`C:\Windows\System32\NetInit.exe`, []byte("body"), AttrHidden, t0); err != nil {
		t.Fatalf("Write: %v", err)
	}
	f, err := fs.Read(`c:\windows\SYSTEM32\netinit.EXE`)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(f.Bytes(), []byte("body")) || f.Attr&AttrHidden == 0 {
		t.Fatalf("file = %+v", f)
	}
	if f.Path != `C:\Windows\System32\NetInit.exe` {
		t.Fatalf("original case lost: %s", f.Path)
	}
}

func TestFSForwardSlashNormalization(t *testing.T) {
	fs := NewFS()
	if err := fs.Write(`C:/Users/ali/documents/plan.docx`, []byte("x"), 0, t0); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !fs.Exists(`C:\Users\ali\documents\plan.docx`) {
		t.Fatal("normalized path not found")
	}
}

func TestFSReadMissing(t *testing.T) {
	fs := NewFS()
	_, err := fs.Read(`C:\nope.txt`)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestFSDelete(t *testing.T) {
	fs := NewFS()
	fs.Write(`C:\a.txt`, []byte("x"), 0, t0)
	if err := fs.Delete(`c:\A.TXT`); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if fs.Exists(`C:\a.txt`) {
		t.Fatal("file survived delete")
	}
	if err := fs.Delete(`C:\a.txt`); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestFSReadOnlyRefusesOverwrite(t *testing.T) {
	fs := NewFS()
	fs.Write(`C:\locked.sys`, []byte("orig"), AttrReadOnly, t0)
	err := fs.Write(`C:\locked.sys`, []byte("new"), 0, t0)
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly", err)
	}
	f, _ := fs.Read(`C:\locked.sys`)
	if string(f.Bytes()) != "orig" {
		t.Fatal("read-only file was modified")
	}
}

func TestFSRename(t *testing.T) {
	// The Stuxnet DLL swap: s7otbxdx.dll -> s7otbxsx.dll.
	fs := NewFS()
	orig := []byte("original comm library")
	fs.Write(`C:\Step7\s7otbxdx.dll`, orig, 0, t0)
	if err := fs.Rename(`C:\Step7\s7otbxdx.dll`, `C:\Step7\s7otbxsx.dll`); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if fs.Exists(`C:\Step7\s7otbxdx.dll`) {
		t.Fatal("old path still exists")
	}
	moved, err := fs.Read(`C:\Step7\s7otbxsx.dll`)
	if err != nil || !bytes.Equal(moved.Bytes(), orig) {
		t.Fatalf("moved file wrong: %v %q", err, moved.Bytes())
	}
	fs.Write(`C:\Step7\s7otbxdx.dll`, []byte("trojanized"), 0, t0)
	if fs.FileCount() != 2 {
		t.Fatalf("file count = %d, want 2", fs.FileCount())
	}
}

func TestFSRenameMissing(t *testing.T) {
	fs := NewFS()
	if err := fs.Rename(`C:\a`, `C:\b`); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestFSListDirectChildrenOnly(t *testing.T) {
	fs := NewFS()
	fs.Write(`C:\dir\a.txt`, nil, 0, t0)
	fs.Write(`C:\dir\b.txt`, nil, 0, t0)
	fs.Write(`C:\dir\sub\c.txt`, nil, 0, t0)
	got := fs.List(`C:\dir`)
	if len(got) != 2 {
		t.Fatalf("List = %d entries, want 2", len(got))
	}
	if got[0].Path != `C:\dir\a.txt` || got[1].Path != `C:\dir\b.txt` {
		t.Fatalf("List order wrong: %v, %v", got[0].Path, got[1].Path)
	}
}

func TestFSWalkSortedAndPrefixed(t *testing.T) {
	fs := NewFS()
	fs.Write(`C:\Users\u\documents\b.docx`, nil, 0, t0)
	fs.Write(`C:\Users\u\documents\a.docx`, nil, 0, t0)
	fs.Write(`C:\Windows\notes.txt`, nil, 0, t0)
	var paths []string
	fs.Walk(`C:\Users`, func(f *FileNode) bool {
		paths = append(paths, f.Path)
		return true
	})
	if len(paths) != 2 || paths[0] != `C:\Users\u\documents\a.docx` {
		t.Fatalf("Walk = %v", paths)
	}
	// Early termination.
	n := 0
	fs.Walk("", func(f *FileNode) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Walk did not stop early: %d", n)
	}
}

func TestFSGlob(t *testing.T) {
	fs := NewFS()
	fs.Write(`C:\Users\u\downloads\setup.exe`, nil, 0, t0)
	fs.Write(`C:\Users\u\documents\report.docx`, nil, 0, t0)
	fs.Write(`C:\Windows\System32\cmd.exe`, nil, 0, t0)
	got := fs.Glob("download")
	if len(got) != 1 || got[0].Path != `C:\Users\u\downloads\setup.exe` {
		t.Fatalf("Glob = %v", got)
	}
	got = fs.Glob("users", ".docx")
	if len(got) != 1 {
		t.Fatalf("Glob two substrings = %v", got)
	}
}

func TestFSDirTracking(t *testing.T) {
	fs := NewFS()
	if !fs.DirExists(`C:\Windows\System32`) {
		t.Fatal("standard skeleton missing")
	}
	fs.Write(`D:\data\deep\file.bin`, nil, 0, t0)
	if !fs.DirExists(`D:\data\deep`) || !fs.DirExists(`D:\data`) {
		t.Fatal("implicit parents not created")
	}
}

func TestFileNodeExt(t *testing.T) {
	cases := map[string]string{
		`C:\a\b.DOCX`: "docx",
		`C:\a\noext`:  "",
		`C:\a\.bash`:  "bash",
		`C:\a\f.tar`:  "tar",
	}
	for path, want := range cases {
		f := &FileNode{Path: CleanPath(path)}
		if got := f.Ext(); got != want {
			t.Errorf("Ext(%s) = %q, want %q", path, got, want)
		}
	}
}

func TestFSTotalBytes(t *testing.T) {
	fs := NewFS()
	fs.Write(`C:\a`, make([]byte, 100), 0, t0)
	fs.Write(`C:\b`, make([]byte, 28), 0, t0)
	if fs.TotalBytes() != 128 {
		t.Fatalf("TotalBytes = %d", fs.TotalBytes())
	}
}

func TestFSWriteCopiesData(t *testing.T) {
	fs := NewFS()
	data := []byte("mutable")
	fs.Write(`C:\x`, data, 0, t0)
	data[0] = 'X'
	f, _ := fs.Read(`C:\x`)
	if f.Bytes()[0] != 'm' {
		t.Fatal("FS aliases caller's slice")
	}
}

func TestCleanPathProperty(t *testing.T) {
	f := func(parts []string) bool {
		p := "C:"
		for _, part := range parts {
			p += `\` + part
		}
		clean := CleanPath(p)
		return clean == CleanPath(clean) // idempotent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package host

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/pe"
	"repro/internal/pki"
	"repro/internal/sim"
	"repro/internal/usb"
)

// OSVersion identifies the simulated Windows release on a host. Exploit
// gates and the per-OS LNK payloads consult it.
type OSVersion int

// Modelled Windows releases.
const (
	WinXP OSVersion = iota + 1
	WinVista
	Win7
	WinServer2003
	WinServer2008
)

// Tag returns the short identifier used on crafted LNK files.
func (v OSVersion) Tag() string {
	switch v {
	case WinXP:
		return "winxp"
	case WinVista:
		return "winvista"
	case Win7:
		return "win7"
	case WinServer2003:
		return "winserver2003"
	case WinServer2008:
		return "winserver2008"
	default:
		return "unknown"
	}
}

func (v OSVersion) String() string { return v.Tag() }

// Process is a running (simulated) program.
type Process struct {
	PID    int
	Image  string
	Digest [32]byte
	System bool // runs with SYSTEM privileges
	Alive  bool
}

// Service is an installed Windows service.
type Service struct {
	Name        string
	ImagePath   string
	StartOnBoot bool
	Running     bool
}

// Task is a scheduled task.
type Task struct {
	Name      string
	At        time.Time
	ImagePath string
	fired     bool
}

// DriverCap is a capability a loaded kernel driver grants to user mode.
type DriverCap string

// CapRawDisk lets user-mode code write raw disk sectors — the capability
// Shamoon obtained by loading the legitimately signed Eldos driver.
const CapRawDisk DriverCap = "rawdisk"

// CapSectionName is the SPE section in which a driver image declares its
// capabilities, comma-separated.
const CapSectionName = ".caps"

// Driver is a loaded kernel driver.
type Driver struct {
	Name   string
	Signer string
	Caps   map[DriverCap]bool
}

// SecurityProduct scans images before execution; a detection blocks the
// run. Concrete products (signature AV over the YARA engine) live in the
// analysis package.
type SecurityProduct interface {
	Name() string
	// ScanImage returns a non-empty detection name if the image is
	// recognized as malicious.
	ScanImage(h *Host, img *pe.File) (detection string)
}

// ExecDispatcher receives every successful execution on a host. The
// malware framework installs one that maps image digests to behaviour
// implants. A nil dispatcher means images run inertly.
type ExecDispatcher func(h *Host, proc *Process, img *pe.File)

// LogEntry is one event-log record.
type LogEntry struct {
	At      time.Time
	Source  string
	Message string
}

// Hardware describes peripherals relevant to Flame's collection modules.
type Hardware struct {
	Microphone bool
	Bluetooth  bool
}

// Host is one simulated Windows machine.
type Host struct {
	Name     string
	Domain   string
	OS       OSVersion
	Arch     pe.Machine
	Hardware Hardware

	K         *sim.Kernel
	RNG       *sim.RNG
	Disk      *Disk
	FS        *FS
	Registry  *Registry
	CertStore *pki.Store

	// Internet reports whether this host can reach the simulated
	// internet. Air-gapped zones set it false.
	Internet bool
	// AutorunEnabled mirrors the pre-MS08-038 default of honouring
	// autorun.inf on removable media.
	AutorunEnabled bool
	// SharesOpen models "file and print sharing turned on" — the
	// precondition for the MS10-061 spooler vector and SMB copy spread.
	SharesOpen bool
	// ProxyHost, when set, routes the host's HTTP traffic through the
	// named machine (the state Flame's fake WPAD answer induces).
	ProxyHost string

	patches  map[string]bool
	services map[string]*Service
	tasks    []*Task
	procs    map[int]*Process
	nextPID  int
	drivers  map[string]*Driver
	security []SecurityProduct
	eventLog []LogEntry

	// Dispatcher receives successful executions (see ExecDispatcher).
	Dispatcher ExecDispatcher

	currentUSB *usb.Drive
	// OnUSBInsert hooks run after a drive is inserted (malware that
	// infects sticks, or ferries data onto them).
	OnUSBInsert []func(*Host, *usb.Drive)

	// Wiped is set when destructive malware has destroyed user data.
	Wiped bool

	// EagerDocs makes SeedDocumentsSized materialise document bytes at
	// seeding time instead of lazily on first read. The two modes are
	// byte-equivalent (DESIGN.md §9); eager mode exists for the
	// equivalence tests and for memory-insensitive scenarios.
	EagerDocs bool

	// Down marks the machine crashed or powered off: nothing executes and
	// no LAN operation reaches it until Reboot.
	Down bool
	// OnReboot hooks run after a reboot's boot-start services relaunch.
	// Malware registers persistence checks here: an agent whose on-disk
	// artefacts were removed discovers at boot that it did not survive.
	OnReboot []func(*Host)
	// BootCount counts completed reboots.
	BootCount int

	// mExec is cached: Execute runs once per process on a 30,000-host
	// fleet, so it must not pay a registry lookup per call.
	mExec *obs.Counter
}

// Option configures a new Host.
type Option func(*Host)

// WithOS sets the Windows release (default Win7).
func WithOS(v OSVersion) Option { return func(h *Host) { h.OS = v } }

// WithArch sets the CPU architecture (default x86).
func WithArch(m pe.Machine) Option { return func(h *Host) { h.Arch = m } }

// WithDomain sets the Windows domain name.
func WithDomain(d string) Option { return func(h *Host) { h.Domain = d } }

// WithCertStore installs the trust store (default: empty store).
func WithCertStore(s *pki.Store) Option { return func(h *Host) { h.CertStore = s } }

// WithInternet marks the host internet-connected.
func WithInternet(v bool) Option { return func(h *Host) { h.Internet = v } }

// WithAutorun enables autorun.inf processing.
func WithAutorun(v bool) Option { return func(h *Host) { h.AutorunEnabled = v } }

// WithShares opens file & print sharing.
func WithShares(v bool) Option { return func(h *Host) { h.SharesOpen = v } }

// WithPatches pre-applies the listed security bulletins.
func WithPatches(ids ...string) Option {
	return func(h *Host) {
		for _, id := range ids {
			h.patches[strings.ToUpper(id)] = true
		}
	}
}

// WithHardware sets peripheral availability.
func WithHardware(hw Hardware) Option { return func(h *Host) { h.Hardware = hw } }

// WithRNG installs a pre-derived RNG stream instead of forking one from
// the kernel. Sharded fleet builders use it to hand host i the stream
// ForkAt(i) derives, so construction order (and worker count) cannot
// perturb per-host randomness.
func WithRNG(r *sim.RNG) Option { return func(h *Host) { h.RNG = r } }

// WithEagerDocs makes the host seed documents eagerly (see Host.EagerDocs).
func WithEagerDocs(v bool) Option { return func(h *Host) { h.EagerDocs = v } }

// New creates a host attached to the kernel.
func New(k *sim.Kernel, name string, opts ...Option) *Host {
	h := &Host{
		Name:      name,
		OS:        Win7,
		Arch:      pe.MachineX86,
		K:         k,
		Disk:      NewDisk(1 << 21), // 1 GiB of 512-byte sectors
		FS:        NewFS(),
		Registry:  NewRegistry(),
		CertStore: pki.NewStore(),
		patches:   make(map[string]bool),
		services:  make(map[string]*Service),
		procs:     make(map[int]*Process),
		drivers:   make(map[string]*Driver),
		nextPID:   1000,
		mExec:     k.Metrics().Counter("host.process.exec"),
	}
	for _, opt := range opts {
		opt(h)
	}
	// Fork only when no option supplied a stream: WithRNG hosts must not
	// draw from (or race on) the kernel RNG during sharded construction.
	if h.RNG == nil {
		h.RNG = k.RNG().Fork()
	}
	return h
}

// Logf appends to the host event log and the kernel trace.
func (h *Host) Logf(cat sim.Category, source, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	h.eventLog = append(h.eventLog, LogEntry{At: h.K.Now(), Source: source, Message: msg})
	h.K.Trace().Add(h.K.Now(), cat, h.Name, "%s: %s", source, msg)
}

// EventLog returns a copy of the host's event log.
func (h *Host) EventLog() []LogEntry {
	out := make([]LogEntry, len(h.eventLog))
	copy(out, h.eventLog)
	return out
}

// Patched reports whether the bulletin is installed.
func (h *Host) Patched(bulletin string) bool {
	return h.patches[strings.ToUpper(bulletin)]
}

// ApplyPatch installs a bulletin.
func (h *Host) ApplyPatch(bulletin string) {
	h.patches[strings.ToUpper(bulletin)] = true
}

// AddSecurity installs a security product.
func (h *Host) AddSecurity(p SecurityProduct) {
	h.security = append(h.security, p)
}

// ErrBlocked is returned when a security product stops an execution.
var ErrBlocked = errors.New("host: execution blocked by security product")

// ErrHostDown is returned when an operation targets a crashed machine.
var ErrHostDown = errors.New("host: machine is down")

// Crash powers the host off mid-flight: every process dies and in-memory
// state (the proxy configuration a WPAD hijack installed) is lost. Disk,
// registry, installed services and patch state persist — the reboot
// decides what comes back.
func (h *Host) Crash() {
	if h.Down {
		return
	}
	h.Down = true
	for _, p := range h.procs {
		p.Alive = false
	}
	h.ProxyHost = ""
	h.K.Metrics().Counter("host.crash").Inc()
	h.K.Trace().Emit(h.K.Now(), sim.CatFault, h.Name, "crashed: all processes killed",
		obs.T("host", h.Name))
}

// Reboot brings a downed host back: boot-start services relaunch from
// their on-disk images (in sorted name order, so reboots are
// deterministic), then OnReboot hooks run. Only artefacts persisted via
// registry, service, or driver survive a crash/reboot cycle — memory-only
// implants are gone.
func (h *Host) Reboot() {
	if !h.Down {
		return
	}
	h.Down = false
	h.BootCount++
	h.K.Metrics().Counter("host.reboot").Inc()
	h.K.Trace().Emit(h.K.Now(), sim.CatFault, h.Name, "rebooted",
		obs.T("host", h.Name), obs.Ti("boot", int64(h.BootCount)))
	names := make([]string, 0, len(h.services))
	for name := range h.services {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := h.services[name]
		if !s.StartOnBoot {
			continue
		}
		s.Running = false
		if err := h.StartService(s.Name); err != nil {
			h.Logf(sim.CatExec, "scm", "boot-start service %s failed: %v", s.Name, err)
		}
	}
	for _, hook := range h.OnReboot {
		hook(h)
	}
}

// Execute scans img with the installed security products and, if clean,
// spawns a process and hands it to the dispatcher.
func (h *Host) Execute(img *pe.File, system bool) (*Process, error) {
	if h.Down {
		return nil, fmt.Errorf("%w: %s", ErrHostDown, h.Name)
	}
	if img.Machine == pe.MachineX64 && h.Arch != pe.MachineX64 {
		return nil, fmt.Errorf("host: cannot execute %s image %q on %s host %s", img.Machine, img.Name, h.Arch, h.Name)
	}
	for _, prod := range h.security {
		if det := prod.ScanImage(h, img); det != "" {
			h.K.Metrics().Counter("host.security.block").Inc()
			h.Logf(sim.CatDefense, prod.Name(), "blocked %s (%s)", img.Name, det)
			return nil, fmt.Errorf("%w: %s detected %s as %s", ErrBlocked, prod.Name(), img.Name, det)
		}
	}
	digest, err := img.Digest()
	if err != nil {
		return nil, fmt.Errorf("execute %q: %w", img.Name, err)
	}
	h.nextPID++
	proc := &Process{PID: h.nextPID, Image: img.Name, Digest: digest, System: system, Alive: true}
	h.procs[proc.PID] = proc
	h.mExec.Inc()
	h.K.Trace().Emit(h.K.Now(), sim.CatExec, h.Name,
		fmt.Sprintf("exec %s (pid %d)", img.Name, proc.PID),
		obs.T("image", img.Name), obs.Ti("pid", int64(proc.PID)))
	if h.Dispatcher != nil {
		h.Dispatcher(h, proc, img)
	}
	return proc, nil
}

// ExecuteFile parses the SPE image stored at path and executes it.
func (h *Host) ExecuteFile(path string, system bool) (*Process, error) {
	f, err := h.FS.Read(path)
	if err != nil {
		return nil, err
	}
	img, err := pe.Parse(f.Bytes())
	if err != nil {
		return nil, fmt.Errorf("execute %s: %w", path, err)
	}
	return h.Execute(img, system)
}

// Kill marks a process dead.
func (h *Host) Kill(pid int) {
	if p, ok := h.procs[pid]; ok {
		p.Alive = false
	}
}

// Processes returns the live processes.
func (h *Host) Processes() []*Process {
	var out []*Process
	for _, p := range h.procs {
		if p.Alive {
			out = append(out, p)
		}
	}
	return out
}

// DropFile is a convenience for malware droppers: marshal img into the
// filesystem at path.
func (h *Host) DropFile(path string, img *pe.File, attr FileAttr) error {
	raw, err := img.Marshal()
	if err != nil {
		return fmt.Errorf("drop %s: %w", path, err)
	}
	return h.FS.Write(path, raw, attr, h.K.Now())
}

// InstallService registers a service whose image lives at imagePath. The
// registration is traced (the Event-7045 analog) so detection rules can
// watch service creation — the artefact PsExec leaves on every target.
func (h *Host) InstallService(name, imagePath string, startOnBoot bool) *Service {
	s := &Service{Name: name, ImagePath: imagePath, StartOnBoot: startOnBoot}
	h.services[strings.ToLower(name)] = s
	h.Registry.Set(`HKLM\SYSTEM\CurrentControlSet\Services\`+name+`\ImagePath`, imagePath)
	h.K.Trace().Emit(h.K.Now(), sim.CatExec, h.Name, "service installed: "+name,
		obs.T("service", name), obs.T("image", imagePath))
	return s
}

// Service returns the named service, or nil.
func (h *Host) Service(name string) *Service {
	return h.services[strings.ToLower(name)]
}

// StartService executes the service image with SYSTEM privileges.
func (h *Host) StartService(name string) error {
	s := h.Service(name)
	if s == nil {
		return fmt.Errorf("host: no service %q", name)
	}
	if _, err := h.ExecuteFile(s.ImagePath, true); err != nil {
		return fmt.Errorf("start service %s: %w", name, err)
	}
	s.Running = true
	return nil
}

// ScheduleTask registers a task that executes imagePath at the given
// time. The registration is traced (the Event-4698 analog) so detection
// rules can watch task creation — the persistence artefact the CNI
// intrusions dropped with randomized names.
func (h *Host) ScheduleTask(name, imagePath string, at time.Time) *Task {
	t := &Task{Name: name, At: at, ImagePath: imagePath}
	h.tasks = append(h.tasks, t)
	h.K.Trace().Emit(h.K.Now(), sim.CatExec, h.Name, "task registered: "+name,
		obs.T("task", name), obs.T("image", imagePath))
	h.K.ScheduleAt(at, "task:"+name+"@"+h.Name, func() {
		if t.fired {
			return
		}
		t.fired = true
		if _, err := h.ExecuteFile(t.ImagePath, true); err != nil {
			h.Logf(sim.CatExec, "taskscheduler", "task %s failed: %v", name, err)
		}
	})
	return t
}

// Tasks returns the registered scheduled tasks.
func (h *Host) Tasks() []*Task { return h.tasks }

// ErrUnsignedDriver is returned when driver signature policy rejects a
// load.
var ErrUnsignedDriver = errors.New("host: driver signature verification failed")

// LoadDriver verifies img's signature for driver signing against the
// host's trust store and, on success, loads it, granting any capabilities
// declared in the image's .caps section.
func (h *Host) LoadDriver(img *pe.File) (*Driver, error) {
	sig, err := pki.VerifyImage(img, h.CertStore, h.K.Now(), pki.UsageDriverSign)
	if err != nil {
		h.Logf(sim.CatCert, "ci", "rejected driver %s: %v", img.Name, err)
		return nil, fmt.Errorf("%w: %s: %v", ErrUnsignedDriver, img.Name, err)
	}
	d := &Driver{Name: img.Name, Signer: sig.Chain[0].Subject, Caps: make(map[DriverCap]bool)}
	if sec := img.Section(CapSectionName); sec != nil {
		for _, c := range strings.Split(string(sec.Data), ",") {
			if c = strings.TrimSpace(c); c != "" {
				d.Caps[DriverCap(c)] = true
			}
		}
	}
	h.drivers[strings.ToLower(img.Name)] = d
	h.K.Metrics().Counter("host.driver.load").Inc()
	h.Logf(sim.CatCert, "ci", "loaded driver %s signed by %q", img.Name, d.Signer)
	return d, nil
}

// Driver returns the loaded driver by image name, or nil.
func (h *Host) Driver(name string) *Driver {
	return h.drivers[strings.ToLower(name)]
}

// HasCap reports whether any loaded driver grants the capability.
func (h *Host) HasCap(cap DriverCap) bool {
	for _, d := range h.drivers {
		if d.Caps[cap] {
			return true
		}
	}
	return false
}

// ErrNoRawAccess is returned when user-mode code attempts raw sector I/O
// without a capability-granting driver — the restriction Shamoon worked
// around with the Eldos driver (paper, IV-B).
var ErrNoRawAccess = errors.New("host: user-mode raw disk access denied")

// WriteRawSector writes a raw disk sector on behalf of user-mode code. It
// requires a loaded driver granting CapRawDisk.
func (h *Host) WriteRawSector(n int64, data []byte) error {
	if !h.HasCap(CapRawDisk) {
		return ErrNoRawAccess
	}
	return h.Disk.WriteSector(n, data)
}

// Bootable reports whether the host's disk still boots.
func (h *Host) Bootable() bool { return h.Disk.Bootable() }

// InsertUSB mounts a drive and fires insertion hooks.
func (h *Host) InsertUSB(d *usb.Drive) {
	h.currentUSB = d
	d.Insertions++
	h.K.Metrics().Counter("host.usb.insert").Inc()
	h.K.Trace().Emit(h.K.Now(), sim.CatUSB, h.Name, "usb inserted: "+d.Label,
		obs.T("drive", d.Label))
	if h.Internet && d.HiddenDB != nil {
		d.HiddenDB.InternetSeen = true
	}
	for _, hook := range h.OnUSBInsert {
		hook(h, d)
	}
}

// RemoveUSB unmounts the current drive, returning it.
func (h *Host) RemoveUSB() *usb.Drive {
	d := h.currentUSB
	h.currentUSB = nil
	return d
}

// CurrentUSB returns the mounted drive, or nil.
func (h *Host) CurrentUSB() *usb.Drive { return h.currentUSB }

// MS10_046 is the LNK icon-rendering bulletin gate.
const MS10_046 = "MS10-046"

// BrowseRemovable models a user opening the mounted drive in Explorer.
// Rendering a crafted LNK on a host missing MS10-046 executes the payload
// (CVE-2010-2568); an autorun.inf fires if autorun is enabled.
func (h *Host) BrowseRemovable() error {
	d := h.currentUSB
	if d == nil {
		return errors.New("host: no removable drive mounted")
	}
	if h.AutorunEnabled && d.Autorun != nil {
		if f := d.Get(d.Autorun.Exec); f != nil {
			if img, err := pe.Parse(f.Data); err == nil {
				var execErr error
				h.K.WithCause(sim.Cause{Span: d.OriginSpan, Vector: "usb-autorun"}, func() {
					h.K.Trace().Add(h.K.Now(), sim.CatExploit, h.Name, "autorun.inf executed %s", img.Name)
					_, execErr = h.Execute(img, false)
				})
				if execErr != nil && !errors.Is(execErr, ErrBlocked) {
					return execErr
				}
			}
		}
	}
	for _, lnk := range d.LNKs {
		if !lnk.Malicious || lnk.OSTag != h.OS.Tag() {
			continue
		}
		if h.Patched(MS10_046) {
			h.Logf(sim.CatDefense, "shell", "LNK icon for %s rendered safely (%s installed)", lnk.PayloadFile, MS10_046)
			continue
		}
		f := d.Get(lnk.PayloadFile)
		if f == nil {
			continue
		}
		img, err := pe.Parse(f.Data)
		if err != nil {
			continue
		}
		h.K.Metrics().Counter("host.lnk.exploit").Inc()
		var execErr error
		h.K.WithCause(sim.Cause{Span: d.OriginSpan, Vector: "usb-lnk"}, func() {
			h.K.Trace().Emit(h.K.Now(), sim.CatExploit, h.Name,
				fmt.Sprintf("%s: crafted LNK %s executed %s", MS10_046, lnk.Name, img.Name),
				obs.T("bulletin", MS10_046), obs.T("payload", img.Name))
			_, execErr = h.Execute(img, false)
		})
		if execErr != nil && !errors.Is(execErr, ErrBlocked) {
			return execErr
		}
	}
	return nil
}

// Profile is the basic system inventory Flame's FLASK module collects.
type Profile struct {
	ComputerName string
	Domain       string
	OSVersion    string
	Arch         string
	FileCount    int
	TotalBytes   int64
}

// Profile returns the host's inventory.
func (h *Host) ProfileInfo() Profile {
	return Profile{
		ComputerName: h.Name,
		Domain:       h.Domain,
		OSVersion:    h.OS.String(),
		Arch:         h.Arch.String(),
		FileCount:    h.FS.FileCount(),
		TotalBytes:   h.FS.TotalBytes(),
	}
}

// Package host models a simulated Windows machine: a sector-addressed disk
// with an MBR, a case-insensitive filesystem, a registry, services and
// scheduled tasks, processes, kernel-driver loading with signature policy,
// a patch inventory that exploit gates consult, security products, and an
// event log. Hosts are pure in-memory state driven by the sim kernel.
package host

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// SectorSize is the disk sector size in bytes.
const SectorSize = 512

// bootSignature is the classic 0x55AA MBR trailer.
var bootSignature = [2]byte{0x55, 0xAA}

// Partition is one MBR partition-table entry.
type Partition struct {
	Active      bool
	StartSector uint32
	Sectors     uint32
}

// MBR is the master boot record: boot code, four partition entries, and the
// boot signature. Shamoon's wiper overwrites this structure (paper, IV-B).
type MBR struct {
	BootCode   [440]byte
	Partitions [4]Partition
}

// Marshal renders the MBR into a 512-byte sector image.
func (m *MBR) Marshal() []byte {
	out := make([]byte, SectorSize)
	copy(out, m.BootCode[:])
	off := 446
	for _, p := range m.Partitions {
		if p.Active {
			out[off] = 0x80
		}
		binary.LittleEndian.PutUint32(out[off+4:], p.StartSector)
		binary.LittleEndian.PutUint32(out[off+8:], p.Sectors)
		off += 16
	}
	out[510] = bootSignature[0]
	out[511] = bootSignature[1]
	return out
}

// ParseMBR decodes a 512-byte sector image. It returns an error if the boot
// signature is missing — the state a wiped disk is left in.
func ParseMBR(sector []byte) (*MBR, error) {
	if len(sector) != SectorSize {
		return nil, fmt.Errorf("host: MBR sector is %d bytes, want %d", len(sector), SectorSize)
	}
	if sector[510] != bootSignature[0] || sector[511] != bootSignature[1] {
		return nil, errors.New("host: missing boot signature")
	}
	m := &MBR{}
	copy(m.BootCode[:], sector[:440])
	off := 446
	for i := range m.Partitions {
		m.Partitions[i].Active = sector[off] == 0x80
		m.Partitions[i].StartSector = binary.LittleEndian.Uint32(sector[off+4:])
		m.Partitions[i].Sectors = binary.LittleEndian.Uint32(sector[off+8:])
		off += 16
	}
	return m, nil
}

// Disk is a lazily materialized sector store. Only written sectors consume
// memory, which keeps 30,000-workstation fleet runs cheap.
type Disk struct {
	NumSectors int64
	written    map[int64][]byte
}

// NewDisk creates a disk with an installed MBR: boot code present, one
// active partition spanning the rest of the disk.
func NewDisk(numSectors int64) *Disk {
	d := &Disk{NumSectors: numSectors, written: make(map[int64][]byte)}
	mbr := &MBR{}
	copy(mbr.BootCode[:], "SIMBOOT: loads the simulated OS")
	mbr.Partitions[0] = Partition{Active: true, StartSector: 2048, Sectors: uint32(numSectors - 2048)}
	d.WriteSector(0, mbr.Marshal())
	return d
}

// ErrSectorRange is returned for out-of-range sector addresses.
var ErrSectorRange = errors.New("host: sector out of range")

// ReadSector returns a copy of the sector's contents (zeros if never
// written).
func (d *Disk) ReadSector(n int64) ([]byte, error) {
	if n < 0 || n >= d.NumSectors {
		return nil, fmt.Errorf("%w: %d", ErrSectorRange, n)
	}
	out := make([]byte, SectorSize)
	if s, ok := d.written[n]; ok {
		copy(out, s)
	}
	return out, nil
}

// WriteSector stores data (truncated/padded to SectorSize) at sector n.
func (d *Disk) WriteSector(n int64, data []byte) error {
	if n < 0 || n >= d.NumSectors {
		return fmt.Errorf("%w: %d", ErrSectorRange, n)
	}
	s := make([]byte, SectorSize)
	copy(s, data)
	d.written[n] = s
	return nil
}

// ReadMBR parses sector 0.
func (d *Disk) ReadMBR() (*MBR, error) {
	s, err := d.ReadSector(0)
	if err != nil {
		return nil, err
	}
	return ParseMBR(s)
}

// Bootable reports whether the disk still carries a valid MBR with an
// active partition.
func (d *Disk) Bootable() bool {
	mbr, err := d.ReadMBR()
	if err != nil {
		return false
	}
	for _, p := range mbr.Partitions {
		if p.Active && p.Sectors > 0 {
			return true
		}
	}
	return false
}

// WrittenSectors reports how many sectors have ever been written.
func (d *Disk) WrittenSectors() int { return len(d.written) }

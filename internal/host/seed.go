package host

import (
	"fmt"

	"repro/internal/sim"
)

// Document extensions the Flame JIMMY module hunts for (paper, III-A) plus
// common filler types.
var docExtensions = []string{"docx", "ppt", "csv", "dwg", "pdf", "xlsx", "txt", "jpg"}

// User-profile folders the Shamoon wiper targets by name (paper, IV-B).
var UserFolders = []string{"download", "document", "picture", "music", "video", "desktop"}

// SeedDocuments populates the host with n synthetic user documents spread
// across the standard profile folders, sized 1–64 KiB, for collection and
// wiping experiments. It returns the total bytes written.
func (h *Host) SeedDocuments(user string, n int) int64 {
	return h.SeedDocumentsSized(user, n, 64*1024)
}

// SeedDocumentsSized is SeedDocuments with a maximum document size —
// fleet-scale scenarios use small documents to keep tens of thousands of
// hosts cheap.
func (h *Host) SeedDocumentsSized(user string, n, maxBytes int) int64 {
	if maxBytes < 2048 {
		maxBytes = 2048
	}
	var total int64
	for i := 0; i < n; i++ {
		folder := UserFolders[h.RNG.Intn(len(UserFolders))]
		ext := docExtensions[h.RNG.Intn(len(docExtensions))]
		size := 1024 + h.RNG.Intn(maxBytes-1024)
		path := fmt.Sprintf(`C:\Users\%s\%ss\report-%04d.%s`, user, folder, i, ext)
		data := h.RNG.Bytes(size)
		// Make the content partially printable so strings extraction and
		// entropy analysis see document-like structure.
		for j := 0; j < len(data); j += 2 {
			data[j] = byte('a' + int(data[j])%26)
		}
		if err := h.FS.Write(path, data, 0, h.K.Now()); err == nil {
			total += int64(size)
		}
	}
	return total
}

// BrowserLogin is one stored browser credential.
type BrowserLogin struct {
	Domain   string
	User     string
	Password string
}

// BrowserProfilePath is where a user's stored logins live.
func BrowserProfilePath(user string) string {
	return `C:\Users\` + user + `\AppData\Roaming\browser\logins.db`
}

// SeedBrowserProfile writes a browser credential store for the user — the
// banking-credential surface Gauss harvests.
func (h *Host) SeedBrowserProfile(user string, logins []BrowserLogin) error {
	var data []byte
	for _, l := range logins {
		data = append(data, []byte(l.Domain+"|"+l.User+"|"+l.Password+"\n")...)
	}
	return h.FS.Write(BrowserProfilePath(user), data, 0, h.K.Now())
}

// WipeCheck summarizes destructive-attack outcomes for one host.
type WipeCheck struct {
	Host        string
	FilesWiped  int
	MBRIntact   bool
	Bootable    bool
	WipedMarker bool
}

// CheckWipe inspects the host after a destructive attack: how many user
// files now begin with the JPEG magic (the Shamoon overwrite artefact),
// whether the MBR survived, and whether the host still boots.
func (h *Host) CheckWipe() WipeCheck {
	out := WipeCheck{Host: h.Name, WipedMarker: h.Wiped, Bootable: h.Bootable()}
	_, err := h.Disk.ReadMBR()
	out.MBRIntact = err == nil
	h.FS.Walk(`C:\Users`, func(f *FileNode) bool {
		if len(f.Data) >= 2 && f.Data[0] == 0xFF && f.Data[1] == 0xD8 {
			out.FilesWiped++
		}
		return true
	})
	return out
}

// MarkWiped records that destructive malware ran on this host.
func (h *Host) MarkWiped(reason string) {
	h.Wiped = true
	h.Logf(sim.CatWipe, "disk", "host wiped: %s", reason)
}

package host

import (
	"fmt"

	"repro/internal/sim"
)

// Document extensions the Flame JIMMY module hunts for (paper, III-A) plus
// common filler types.
var docExtensions = []string{"docx", "ppt", "csv", "dwg", "pdf", "xlsx", "txt", "jpg"}

// User-profile folders the Shamoon wiper targets by name (paper, IV-B).
var UserFolders = []string{"download", "document", "picture", "music", "video", "desktop"}

// SeedDocuments populates the host with n synthetic user documents spread
// across the standard profile folders, sized 1–64 KiB, for collection and
// wiping experiments. It returns the total bytes seeded and the number of
// documents that could not be written (path collisions with read-only
// files — zero on a freshly built host).
func (h *Host) SeedDocuments(user string, n int) (int64, int) {
	return h.SeedDocumentsSized(user, n, 64*1024)
}

// SeedDocumentsSized is SeedDocuments with a maximum document size —
// fleet-scale scenarios use small documents to keep tens of thousands of
// hosts cheap.
//
// By default documents are seeded lazily: each file records the RNG stream
// position its content starts from, and the host RNG skips over exactly the
// draws an eager seeding would have consumed. The parent stream therefore
// stays byte-identical to eager mode, and a later read generates exactly
// the bytes an eager write would have stored (DESIGN.md §9). Hosts built
// with WithEagerDocs materialise the bytes at seeding time instead.
func (h *Host) SeedDocumentsSized(user string, n, maxBytes int) (int64, int) {
	if maxBytes < 2048 {
		maxBytes = 2048
	}
	var total int64
	failed := 0
	for i := 0; i < n; i++ {
		folder := UserFolders[h.RNG.Intn(len(UserFolders))]
		ext := docExtensions[h.RNG.Intn(len(docExtensions))]
		size := 1024 + h.RNG.Intn(maxBytes-1024)
		path := fmt.Sprintf(`C:\Users\%s\%ss\report-%04d.%s`, user, folder, i, ext)
		var err error
		if h.EagerDocs {
			data := h.RNG.Bytes(size)
			docTransform(data)
			err = h.FS.Write(path, data, 0, h.K.Now())
		} else {
			lc := LazyContent{Seed: h.RNG.State(), Len: size, Doc: true}
			// Consume the same number of draws Bytes(size) would, so the
			// stream position after seeding matches eager mode exactly.
			h.RNG.Skip((size + 7) / 8)
			err = h.FS.WriteLazy(path, lc, 0, h.K.Now())
		}
		if err != nil {
			failed++
			continue
		}
		total += int64(size)
	}
	return total, failed
}

// BrowserLogin is one stored browser credential.
type BrowserLogin struct {
	Domain   string
	User     string
	Password string
}

// BrowserProfilePath is where a user's stored logins live.
func BrowserProfilePath(user string) string {
	return `C:\Users\` + user + `\AppData\Roaming\browser\logins.db`
}

// SeedBrowserProfile writes a browser credential store for the user — the
// banking-credential surface Gauss harvests.
func (h *Host) SeedBrowserProfile(user string, logins []BrowserLogin) error {
	var data []byte
	for _, l := range logins {
		data = append(data, []byte(l.Domain+"|"+l.User+"|"+l.Password+"\n")...)
	}
	return h.FS.Write(BrowserProfilePath(user), data, 0, h.K.Now())
}

// WipeCheck summarizes destructive-attack outcomes for one host.
type WipeCheck struct {
	Host        string
	FilesWiped  int
	MBRIntact   bool
	Bootable    bool
	WipedMarker bool
}

// CheckWipe inspects the host after a destructive attack: how many user
// files now begin with the JPEG magic (the Shamoon overwrite artefact),
// whether the MBR survived, and whether the host still boots. Prefix keeps
// the scan from materialising lazy documents — a never-touched lazy doc
// cannot start with 0xFF 0xD8 (docTransform forces byte 0 into 'a'..'z'),
// and a wiped one was rewritten eagerly by the wiper.
func (h *Host) CheckWipe() WipeCheck {
	out := WipeCheck{Host: h.Name, WipedMarker: h.Wiped, Bootable: h.Bootable()}
	_, err := h.Disk.ReadMBR()
	out.MBRIntact = err == nil
	h.FS.Walk(`C:\Users`, func(f *FileNode) bool {
		if p := f.Prefix(2); len(p) == 2 && p[0] == 0xFF && p[1] == 0xD8 {
			out.FilesWiped++
		}
		return true
	})
	return out
}

// MarkWiped records that destructive malware ran on this host.
func (h *Host) MarkWiped(reason string) {
	h.Wiped = true
	h.Logf(sim.CatWipe, "disk", "host wiped: %s", reason)
}

package host

import (
	"sort"
	"strings"
)

// Registry is a case-insensitive key/value store standing in for the
// Windows registry. Keys use the usual hive-rooted backslash paths
// (`HKLM\SYSTEM\...`).
type Registry struct {
	values map[string]registryEntry
}

type registryEntry struct {
	key   string // original case
	value string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{values: make(map[string]registryEntry)}
}

// Set stores value under key.
func (r *Registry) Set(key, value string) {
	r.values[strings.ToLower(key)] = registryEntry{key: key, value: value}
}

// Get returns the value for key and whether it exists.
func (r *Registry) Get(key string) (string, bool) {
	e, ok := r.values[strings.ToLower(key)]
	return e.value, ok
}

// Delete removes key (no-op if absent).
func (r *Registry) Delete(key string) {
	delete(r.values, strings.ToLower(key))
}

// Keys returns all keys with the given prefix (case-insensitive), sorted,
// in original case.
func (r *Registry) Keys(prefix string) []string {
	p := strings.ToLower(prefix)
	var out []string
	for k, e := range r.values {
		if strings.HasPrefix(k, p) {
			out = append(out, e.key)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored values.
func (r *Registry) Len() int { return len(r.values) }

package host

import (
	"repro/internal/pe"
	"repro/internal/pki"
)

// pkiSign adapts pki.SignImage for edge tests.
func pkiSign(img *pe.File, key *pki.Keypair, cert *pki.Certificate) error {
	return pki.SignImage(img, key, cert)
}

package host

import (
	"testing"

	"repro/internal/sim"
)

// benchSeed seeds a fresh host per iteration, so the numbers cover the
// full corpus-construction path: folder/name draws, FileNode churn, and —
// in eager mode only — materialising every document's bytes.
func benchSeed(b *testing.B, docs, size int, eager bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := New(sim.NewKernel(sim.WithSeed(uint64(1+i))), "WS", WithEagerDocs(eager))
		if _, failed := h.SeedDocumentsSized("u", docs, size); failed != 0 {
			b.Fatalf("%d documents failed to seed", failed)
		}
	}
}

// BenchmarkSeedDocumentsLazy is the default corpus path: documents carry a
// content descriptor (seed, length) and no bytes until first read.
func BenchmarkSeedDocumentsLazy(b *testing.B) { benchSeed(b, 50, 64*1024, false) }

// BenchmarkSeedDocumentsEager materialises every document at seeding time;
// the delta against the lazy bench is the allocation win of §9.
func BenchmarkSeedDocumentsEager(b *testing.B) { benchSeed(b, 50, 64*1024, true) }

// BenchmarkCheckWipeLazy scans a seeded-but-unread corpus for the JPEG
// overwrite marker. Prefix-only reads must not materialise the documents.
func BenchmarkCheckWipeLazy(b *testing.B) {
	h := New(sim.NewKernel(sim.WithSeed(7)), "WS")
	if _, failed := h.SeedDocumentsSized("u", 200, 64*1024); failed != 0 {
		b.Fatalf("%d documents failed to seed", failed)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if chk := h.CheckWipe(); chk.FilesWiped != 0 {
			b.Fatalf("unexpected wipe scan: %+v", chk)
		}
	}
	h.FS.Walk(`C:\Users`, func(f *FileNode) bool {
		if f.Materialized() {
			b.Fatalf("CheckWipe materialised %s", f.Path)
		}
		return true
	})
}

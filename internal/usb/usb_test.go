package usb

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDrivePutGetRemove(t *testing.T) {
	d := NewDrive("STICK")
	d.Put("Payload.EXE", []byte{1, 2, 3}, true)
	f := d.Get("payload.exe")
	if f == nil || !bytes.Equal(f.Data, []byte{1, 2, 3}) || !f.Hidden {
		t.Fatalf("Get = %+v", f)
	}
	if f.Name != "Payload.EXE" {
		t.Fatalf("original case lost: %s", f.Name)
	}
	d.Remove("PAYLOAD.exe")
	if d.Get("payload.exe") != nil {
		t.Fatal("Remove failed")
	}
	d.Remove("ghost") // no-op
}

func TestDrivePutCopiesData(t *testing.T) {
	d := NewDrive("STICK")
	data := []byte("mutable")
	d.Put("f", data, false)
	data[0] = 'X'
	if d.Get("f").Data[0] != 'm' {
		t.Fatal("drive aliases caller slice")
	}
}

func TestDrivePutReplaces(t *testing.T) {
	d := NewDrive("STICK")
	d.Put("f", []byte("one"), false)
	d.Put("F", []byte("two"), true)
	fs := d.Files()
	if len(fs) != 1 || string(fs[0].Data) != "two" {
		t.Fatalf("files = %+v", fs)
	}
}

func TestFilesSortedAndVisible(t *testing.T) {
	d := NewDrive("STICK")
	d.Put("zeta.doc", nil, false)
	d.Put("alpha.doc", nil, false)
	d.Put(".hidden.sys", nil, true)
	all := d.Files()
	if len(all) != 3 || all[0].Name != ".hidden.sys" {
		t.Fatalf("Files = %v", names(all))
	}
	vis := d.VisibleFiles()
	if len(vis) != 2 || vis[0].Name != "alpha.doc" || vis[1].Name != "zeta.doc" {
		t.Fatalf("VisibleFiles = %v", names(vis))
	}
}

func names(fs []*File) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	return out
}

func TestHiddenStoreParkDrain(t *testing.T) {
	h := NewHiddenStore()
	h.Park("b.docx", []byte("bravo"))
	h.Park("a.docx", []byte("alpha"))
	h.Park("b.docx", []byte("bravo-v2")) // overwrite keeps position
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	docs := h.Drain()
	if len(docs) != 2 || docs[0].Name != "b.docx" || string(docs[0].Data) != "bravo-v2" || docs[1].Name != "a.docx" {
		t.Fatalf("Drain = %v", docs)
	}
	if h.Len() != 0 {
		t.Fatal("Drain did not empty the store")
	}
	if len(h.Drain()) != 0 {
		t.Fatal("second Drain returned documents")
	}
}

func TestHiddenStoreParkCopies(t *testing.T) {
	h := NewHiddenStore()
	data := []byte("secret")
	h.Park("d", data)
	data[0] = 'X'
	if string(h.Drain()[0].Data) != "secret" {
		t.Fatal("store aliases caller slice")
	}
}

func TestParkedDocString(t *testing.T) {
	p := ParkedDoc{Name: "x.dwg", Data: make([]byte, 42)}
	if p.String() != "x.dwg (42 bytes)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestHiddenStoreProperty(t *testing.T) {
	// Drain returns exactly what was parked (last write per name, in
	// first-park order).
	f := func(keys []uint8, payload []byte) bool {
		h := NewHiddenStore()
		want := map[string][]byte{}
		var order []string
		for i, k := range keys {
			name := string('a' + rune(k%5))
			var data []byte
			if len(payload) > 0 {
				data = payload[i%len(payload):]
			}
			if _, seen := want[name]; !seen {
				order = append(order, name)
			}
			want[name] = data
			h.Park(name, data)
		}
		docs := h.Drain()
		if len(docs) != len(order) {
			return false
		}
		for i, d := range docs {
			if d.Name != order[i] || !bytes.Equal(d.Data, want[d.Name]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

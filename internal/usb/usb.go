// Package usb models removable drives — the paper's dominant initial
// infection vector. A drive carries plain files, Windows shortcut (LNK)
// entries, an optional autorun.inf, and the hidden on-stick database Flame
// used to ferry documents out of air-gapped networks.
package usb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// File is a plain file stored on the drive.
type File struct {
	Name   string
	Data   []byte
	Hidden bool
}

// LNK is a Windows shortcut entry. The Stuxnet delivery drive carries one
// crafted LNK per target OS version (paper, footnote 2); merely rendering
// the icon on an unpatched host (MS10-046) executes the payload file.
type LNK struct {
	Name        string
	OSTag       string // e.g. "winxp", "win7" — which OS the exploit build targets
	PayloadFile string // name of the payload file on this drive
	Malicious   bool
}

// Autorun models an autorun.inf that points at an executable on the drive.
type Autorun struct {
	Exec string
}

// Drive is a removable USB drive.
type Drive struct {
	Label   string
	files   map[string]*File // key: lower-case name
	LNKs    []LNK
	Autorun *Autorun
	// Hidden exfil database (Flame): created lazily by malware code.
	HiddenDB *HiddenStore
	// Insertions counts how many hosts this drive has been inserted into;
	// Stuxnet limits itself to three infections per drive.
	Insertions int
	// OriginSpan is the causal episode that armed this drive with malware
	// (zero for clean or externally prepared drives). Hosts executing a
	// payload from the drive attribute the new infection to this span.
	OriginSpan obs.Span
}

// NewDrive returns an empty drive.
func NewDrive(label string) *Drive {
	return &Drive{Label: label, files: make(map[string]*File)}
}

// Put stores a file on the drive (replacing any same-named file).
func (d *Drive) Put(name string, data []byte, hidden bool) {
	cp := make([]byte, len(data))
	copy(cp, data)
	d.files[strings.ToLower(name)] = &File{Name: name, Data: cp, Hidden: hidden}
}

// Get returns the named file, or nil.
func (d *Drive) Get(name string) *File {
	return d.files[strings.ToLower(name)]
}

// Remove deletes the named file if present.
func (d *Drive) Remove(name string) {
	delete(d.files, strings.ToLower(name))
}

// Files returns all files sorted by name.
func (d *Drive) Files() []*File {
	out := make([]*File, 0, len(d.files))
	for _, f := range d.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// VisibleFiles returns non-hidden files sorted by name — what a casual user
// sees in Explorer.
func (d *Drive) VisibleFiles() []*File {
	var out []*File
	for _, f := range d.Files() {
		if !f.Hidden {
			out = append(out, f)
		}
	}
	return out
}

// HiddenStore is Flame's covert on-stick database. Documents harvested in a
// disconnected (air-gapped) zone are parked here and uploaded when the
// stick later reaches an internet-connected infected host (paper, III-B).
type HiddenStore struct {
	// InternetSeen records that the stick has visited a host that had
	// internet connectivity, which is the condition Flame checks before
	// parking stolen documents on the stick.
	InternetSeen bool
	entries      map[string][]byte
	order        []string
}

// NewHiddenStore returns an empty hidden database.
func NewHiddenStore() *HiddenStore {
	return &HiddenStore{entries: make(map[string][]byte)}
}

// Park stores a stolen document under name (first write wins; re-parking a
// name is counted as an overwrite).
func (h *HiddenStore) Park(name string, data []byte) {
	if _, ok := h.entries[name]; !ok {
		h.order = append(h.order, name)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	h.entries[name] = cp
}

// Drain removes and returns all parked documents in insertion order.
func (h *HiddenStore) Drain() []ParkedDoc {
	out := make([]ParkedDoc, 0, len(h.order))
	for _, name := range h.order {
		out = append(out, ParkedDoc{Name: name, Data: h.entries[name]})
		delete(h.entries, name)
	}
	h.order = h.order[:0]
	return out
}

// Len reports the number of parked documents.
func (h *HiddenStore) Len() int { return len(h.entries) }

// ParkedDoc is one document lifted from an air-gapped zone.
type ParkedDoc struct {
	Name string
	Data []byte
}

func (p ParkedDoc) String() string {
	return fmt.Sprintf("%s (%d bytes)", p.Name, len(p.Data))
}

package obs

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestHistogramObserveNaNPanics(t *testing.T) {
	h := NewRegistry().Histogram("test.nan.hist", LinearBuckets(1, 1, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("Observe(NaN) did not panic")
		}
		if h.Count() != 0 || h.Sum() != 0 {
			t.Fatalf("NaN observation mutated histogram: count=%d sum=%g", h.Count(), h.Sum())
		}
	}()
	h.Observe(math.NaN())
}

func TestParseJSONLPreservesDuplicateTags(t *testing.T) {
	e := Event{
		At: eventAt, Seq: 1, Cat: "spread", Actor: "WS-01", Msg: "fan-out",
		Tags: []Tag{T("target", "WS-02"), T("target", "WS-03"), T("vector", "psexec")},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []Event{e}); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	got, err := ParseJSONL(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Tags) != 3 {
		t.Fatalf("duplicate tag collapsed: got %+v", got)
	}
	for i, want := range e.Tags {
		if got[0].Tags[i] != want {
			t.Fatalf("tag %d: got %v want %v (order or duplicates lost)", i, got[0].Tags[i], want)
		}
	}
	// The decode is a faithful inverse: re-encoding reproduces the bytes.
	var again bytes.Buffer
	if err := WriteJSONL(&again, got); err != nil {
		t.Fatal(err)
	}
	if again.String() != first {
		t.Fatalf("re-encode drifted:\n got %s want %s", again.String(), first)
	}
}

func TestParseJSONLScanErrorReportsLine(t *testing.T) {
	// Line 3 exceeds the 1 MiB scanner limit.
	input := "{\"t\":\"2010-06-01T08:30:00Z\",\"seq\":1,\"cat\":\"c\",\"actor\":\"a\",\"msg\":\"m\"}\n" +
		"\n" +
		strings.Repeat("x", 2<<20) + "\n"
	_, err := ParseJSONL(strings.NewReader(input))
	if err == nil {
		t.Fatal("over-long line parsed without error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("scan error omits the line number: %v", err)
	}
}

// TestJSONLRoundTripProperty drives WriteJSONL → ParseJSONL with
// generated events — empty strings, quotes, control characters, unicode
// in keys and values, repeated keys — and asserts every field and the
// full tag sequence survive.
func TestJSONLRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []string{
		"", "plain", `quote"inside`, "back\\slash", "tab\tchar", "newline\nchar",
		"nul\x00byte", "ctrl\x1b[0m", "händler", "участок", "目标", "🐙", " space ",
		"a=b,c", `{"json":"ish"}`,
	}
	pick := func() string { return alphabet[rng.Intn(len(alphabet))] }
	base := time.Date(2012, 4, 23, 6, 0, 0, 0, time.UTC)

	events := make([]Event, 200)
	for i := range events {
		e := Event{
			At:    base.Add(time.Duration(rng.Intn(1<<20)) * time.Millisecond),
			Seq:   uint64(i + 1),
			Cat:   pick(),
			Actor: pick(),
			Msg:   pick(),
		}
		if rng.Intn(2) == 0 {
			e.Span = Span(rng.Intn(50))
			if e.Span != 0 && rng.Intn(2) == 0 {
				e.Parent = Span(rng.Intn(int(e.Span) + 1))
			}
		}
		nTags := rng.Intn(5)
		for j := 0; j < nTags; j++ {
			e.Tags = append(e.Tags, T(pick(), pick()))
		}
		if nTags > 0 && rng.Intn(3) == 0 { // force a duplicate key
			e.Tags = append(e.Tags, T(e.Tags[0].K, pick()))
		}
		events[i] = e
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(got), len(events))
	}
	for i, want := range events {
		g := got[i]
		if !g.At.Equal(want.At) || g.Seq != want.Seq || g.Cat != want.Cat ||
			g.Actor != want.Actor || g.Msg != want.Msg ||
			g.Span != want.Span || g.Parent != want.Parent {
			t.Fatalf("event %d fields: got %+v want %+v", i, g, want)
		}
		if len(g.Tags) != len(want.Tags) {
			t.Fatalf("event %d tag count: got %v want %v", i, g.Tags, want.Tags)
		}
		for j := range want.Tags {
			if g.Tags[j] != want.Tags[j] {
				t.Fatalf("event %d tag %d: got %v want %v", i, j, g.Tags[j], want.Tags[j])
			}
		}
	}
}

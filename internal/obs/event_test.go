package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var eventAt = time.Date(2010, time.June, 1, 8, 30, 0, 0, time.UTC)

func TestEventJSONLShape(t *testing.T) {
	e := Event{
		At: eventAt, Seq: 7, Cat: "infect", Actor: "WS-01",
		Msg:  `stuxnet "installed"`,
		Tags: []Tag{T("host", "WS-01"), Ti("count", 3)},
	}
	line := string(e.AppendJSONL(nil))
	want := `{"t":"2010-06-01T08:30:00Z","seq":7,"cat":"infect","actor":"WS-01",` +
		`"msg":"stuxnet \"installed\"","tags":{"host":"WS-01","count":"3"}}` + "\n"
	if line != want {
		t.Fatalf("JSONL line:\n got %s want %s", line, want)
	}
	// Each line must be valid standalone JSON.
	var parsed map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(line)), &parsed); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
	if parsed["cat"] != "infect" || parsed["seq"] != float64(7) {
		t.Fatalf("parsed = %v", parsed)
	}
}

func TestEventJSONLOmitsEmptyTags(t *testing.T) {
	e := Event{At: eventAt, Seq: 1, Cat: "exec", Actor: "H", Msg: "m"}
	if strings.Contains(string(e.AppendJSONL(nil)), "tags") {
		t.Fatal("empty tag set not omitted")
	}
}

func TestWithTagPrepends(t *testing.T) {
	e := Event{Tags: []Tag{T("a", "1")}}
	e2 := e.WithTag(T("exp", "F1"))
	if len(e2.Tags) != 2 || e2.Tags[0].K != "exp" || e2.Tags[1].K != "a" {
		t.Fatalf("tags = %v", e2.Tags)
	}
	if len(e.Tags) != 1 {
		t.Fatal("WithTag mutated the original")
	}
}

func TestWriteJSONL(t *testing.T) {
	events := []Event{
		{At: eventAt, Seq: 1, Cat: "a", Actor: "x", Msg: "one"},
		{At: eventAt.Add(time.Minute), Seq: 2, Cat: "b", Actor: "y", Msg: "two"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("bad line %q: %v", l, err)
		}
	}
}

package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"time"
)

// Tag is one key=value annotation on an event. Tags are an ordered
// slice, not a map, so encodings are deterministic without sorting.
type Tag struct {
	K, V string
}

// T builds a string tag.
func T(k, v string) Tag { return Tag{K: k, V: v} }

// Ti builds an integer tag.
func Ti(k string, v int64) Tag { return Tag{K: k, V: strconv.FormatInt(v, 10)} }

// Event is one structured trace record: what happened (Cat + Msg), to
// whom (Actor), when in *virtual* time (At, with Seq breaking ties into
// a total order), plus free-form tags. Wall-clock time never appears —
// that is what keeps trace exports byte-identical across runs.
type Event struct {
	At    time.Time
	Seq   uint64
	Cat   string
	Actor string
	Msg   string
	Tags  []Tag
}

// WithTag returns a copy of e with an extra tag prepended (used to stamp
// the owning experiment onto exported events).
func (e Event) WithTag(t Tag) Event {
	tags := make([]Tag, 0, len(e.Tags)+1)
	tags = append(tags, t)
	tags = append(tags, e.Tags...)
	e.Tags = tags
	return e
}

// appendString appends a JSON-quoted string.
func appendString(b []byte, s string) []byte {
	q, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return append(b, `""`...)
	}
	return append(b, q...)
}

// AppendJSONL appends the event as one JSON line (with trailing newline)
// in fixed field order: t, seq, cat, actor, msg, tags. Tags keep their
// insertion order; an empty tag set is omitted.
func (e Event) AppendJSONL(b []byte) []byte {
	b = append(b, `{"t":"`...)
	b = e.At.UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"cat":`...)
	b = appendString(b, e.Cat)
	b = append(b, `,"actor":`...)
	b = appendString(b, e.Actor)
	b = append(b, `,"msg":`...)
	b = appendString(b, e.Msg)
	if len(e.Tags) > 0 {
		b = append(b, `,"tags":{`...)
		for i, t := range e.Tags {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendString(b, t.K)
			b = append(b, ':')
			b = appendString(b, t.V)
		}
		b = append(b, '}')
	}
	b = append(b, '}', '\n')
	return b
}

// WriteJSONL writes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	var buf []byte
	for _, e := range events {
		buf = e.AppendJSONL(buf[:0])
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Tag is one key=value annotation on an event. Tags are an ordered
// slice, not a map, so encodings are deterministic without sorting.
type Tag struct {
	K, V string
}

// T builds a string tag.
func T(k, v string) Tag { return Tag{K: k, V: v} }

// Ti builds an integer tag.
func Ti(k string, v int64) Tag { return Tag{K: k, V: strconv.FormatInt(v, 10)} }

// Span identifies a causal episode in the trace. Spans are allocated by a
// deterministic per-kernel counter starting at 1; zero means "no span".
type Span uint64

// Event is one structured trace record: what happened (Cat + Msg), to
// whom (Actor), when in *virtual* time (At, with Seq breaking ties into
// a total order), plus free-form tags. Wall-clock time never appears —
// that is what keeps trace exports byte-identical across runs.
//
// Span and Parent carry causality: the first event bearing a given Span
// opens that episode and names its cause via Parent (zero for roots);
// later events with the same Span and Parent == 0 are in-episode detail.
type Event struct {
	At     time.Time
	Seq    uint64
	Cat    string
	Actor  string
	Msg    string
	Span   Span
	Parent Span
	Tags   []Tag
}

// WithTag returns a copy of e with an extra tag prepended (used to stamp
// the owning experiment onto exported events).
func (e Event) WithTag(t Tag) Event {
	tags := make([]Tag, 0, len(e.Tags)+1)
	tags = append(tags, t)
	tags = append(tags, e.Tags...)
	e.Tags = tags
	return e
}

// TagAll prepends the same tag to every event in place, sharing one
// backing array for all the rewritten tag slices. Export paths that
// stamp an experiment ID onto thousands of events use this instead of
// per-event WithTag copies: total allocations stay O(1) in the number
// of events.
func TagAll(events []Event, t Tag) {
	total := 0
	for i := range events {
		total += len(events[i].Tags) + 1
	}
	arena := make([]Tag, 0, total)
	for i := range events {
		start := len(arena)
		arena = append(arena, t)
		arena = append(arena, events[i].Tags...)
		events[i].Tags = arena[start:len(arena):len(arena)]
	}
}

// appendString appends a JSON-quoted string.
func appendString(b []byte, s string) []byte {
	q, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return append(b, `""`...)
	}
	return append(b, q...)
}

// AppendJSONL appends the event as one JSON line (with trailing newline)
// in fixed field order: t, seq, cat, actor, msg, span, parent, tags.
// Zero span/parent fields are omitted, so span-free events keep the PR-2
// wire shape byte-for-byte. Tags keep their insertion order; an empty
// tag set is omitted.
func (e Event) AppendJSONL(b []byte) []byte {
	b = append(b, `{"t":"`...)
	b = e.At.UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"cat":`...)
	b = appendString(b, e.Cat)
	b = append(b, `,"actor":`...)
	b = appendString(b, e.Actor)
	b = append(b, `,"msg":`...)
	b = appendString(b, e.Msg)
	if e.Span != 0 {
		b = append(b, `,"span":`...)
		b = strconv.AppendUint(b, uint64(e.Span), 10)
	}
	if e.Parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, uint64(e.Parent), 10)
	}
	if len(e.Tags) > 0 {
		b = append(b, `,"tags":{`...)
		for i, t := range e.Tags {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendString(b, t.K)
			b = append(b, ':')
			b = appendString(b, t.V)
		}
		b = append(b, '}')
	}
	b = append(b, '}', '\n')
	return b
}

// WriteJSONL writes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	var buf []byte
	for _, e := range events {
		buf = e.AppendJSONL(buf[:0])
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// jsonlEvent mirrors the AppendJSONL wire shape for decoding.
type jsonlEvent struct {
	T      time.Time `json:"t"`
	Seq    uint64    `json:"seq"`
	Cat    string    `json:"cat"`
	Actor  string    `json:"actor"`
	Msg    string    `json:"msg"`
	Span   uint64    `json:"span"`
	Parent uint64    `json:"parent"`
	Tags   jsonTags  `json:"tags"`
}

// jsonTags decodes a JSON tags object into an ordered []Tag. A
// map[string]string here would silently collapse repeated keys (events
// legally carry them — two `target` tags on one fan-out record, say)
// and shuffle emission order; walking the raw tokens keeps the decode a
// faithful inverse of AppendJSONL.
type jsonTags []Tag

func (jt *jsonTags) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if tok == nil { // JSON null: no tags
		*jt = nil
		return nil
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("tags: expected object, got %v", tok)
	}
	var out []Tag
	for dec.More() {
		kTok, err := dec.Token()
		if err != nil {
			return err
		}
		k, ok := kTok.(string)
		if !ok {
			return fmt.Errorf("tags: non-string key %v", kTok)
		}
		vTok, err := dec.Token()
		if err != nil {
			return err
		}
		v, ok := vTok.(string)
		if !ok {
			return fmt.Errorf("tags: non-string value %v for key %q", vTok, k)
		}
		out = append(out, Tag{K: k, V: v})
	}
	if _, err := dec.Token(); err != nil { // consume closing '}'
		return err
	}
	*jt = out
	return nil
}

// ParseJSONL decodes a JSONL event stream produced by WriteJSONL. Tags
// come back in wire order with repeated keys intact, so
// WriteJSONL → ParseJSONL → WriteJSONL is byte-identical. Blank lines
// are skipped; a malformed or over-long line fails with its line number.
func ParseJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(line, &je); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out = append(out, Event{
			At: je.T, Seq: je.Seq, Cat: je.Cat, Actor: je.Actor, Msg: je.Msg,
			Span: Span(je.Span), Parent: Span(je.Parent), Tags: []Tag(je.Tags),
		})
	}
	if err := sc.Err(); err != nil {
		// The scanner stops at the first bad line: the one after the
		// last line it delivered.
		return nil, fmt.Errorf("obs: line %d: scan: %w", lineNo+1, err)
	}
	return out, nil
}

// Tag lookup helper: Get returns the value of the named tag and whether
// it is present.
func (e Event) Get(key string) (string, bool) {
	for _, t := range e.Tags {
		if t.K == key {
			return t.V, true
		}
	}
	return "", false
}

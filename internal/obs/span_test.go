package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestEventJSONLSpanFields(t *testing.T) {
	e := Event{
		At: eventAt, Seq: 9, Cat: "infect", Actor: "WS-02", Msg: "m",
		Span: 4, Parent: 1,
	}
	line := string(e.AppendJSONL(nil))
	want := `{"t":"2010-06-01T08:30:00Z","seq":9,"cat":"infect","actor":"WS-02",` +
		`"msg":"m","span":4,"parent":1}` + "\n"
	if line != want {
		t.Fatalf("JSONL line:\n got %s want %s", line, want)
	}
	// Zero span/parent stay off the wire so span-free exports keep their
	// pre-span byte shape.
	plain := string(Event{At: eventAt, Seq: 1, Cat: "c", Actor: "a", Msg: "m"}.AppendJSONL(nil))
	if strings.Contains(plain, "span") || strings.Contains(plain, "parent") {
		t.Fatalf("zero span/parent leaked into %s", plain)
	}
}

func TestParseJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{At: eventAt, Seq: 1, Cat: "infect", Actor: "x", Msg: "root", Span: 1,
			Tags: []Tag{T("vector", "root")}},
		{At: eventAt.Add(time.Hour), Seq: 2, Cat: "infect", Actor: "y", Msg: "child",
			Span: 2, Parent: 1, Tags: []Tag{T("exp", "F1"), T("vector", "usb-lnk")}},
		{At: eventAt.Add(2 * time.Hour), Seq: 3, Cat: "exec", Actor: "y", Msg: "detail", Span: 2},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(got), len(events))
	}
	for i, e := range events {
		g := got[i]
		if !g.At.Equal(e.At) || g.Seq != e.Seq || g.Cat != e.Cat ||
			g.Actor != e.Actor || g.Msg != e.Msg || g.Span != e.Span || g.Parent != e.Parent {
			t.Fatalf("event %d: got %+v want %+v", i, g, e)
		}
		if len(g.Tags) != len(e.Tags) {
			t.Fatalf("event %d tags: got %v want %v", i, g.Tags, e.Tags)
		}
		for _, want := range e.Tags {
			if v, ok := g.Get(want.K); !ok || v != want.V {
				t.Fatalf("event %d tag %s: got %q,%v", i, want.K, v, ok)
			}
		}
	}
}

func TestParseJSONLRejectsGarbage(t *testing.T) {
	if _, err := ParseJSONL(strings.NewReader("{\"t\":1}\nnot json\n")); err == nil {
		t.Fatal("garbage line parsed without error")
	}
}

func TestGet(t *testing.T) {
	e := Event{Tags: []Tag{T("a", "1"), T("b", "2")}}
	if v, ok := e.Get("b"); !ok || v != "2" {
		t.Fatalf("Get(b) = %q,%v", v, ok)
	}
	if _, ok := e.Get("zz"); ok {
		t.Fatal("Get on a missing key reported ok")
	}
}

func TestTagAllPrependsEverywhere(t *testing.T) {
	events := []Event{
		{Msg: "no tags"},
		{Msg: "one tag", Tags: []Tag{T("a", "1")}},
		{Msg: "two tags", Tags: []Tag{T("a", "1"), T("b", "2")}},
	}
	orig := events[2].Tags
	TagAll(events, T("exp", "F1"))
	for i, e := range events {
		if len(e.Tags) == 0 || e.Tags[0].K != "exp" || e.Tags[0].V != "F1" {
			t.Fatalf("event %d: exp tag not prepended: %v", i, e.Tags)
		}
		if len(e.Tags) != i+1 {
			t.Fatalf("event %d: tag count %d, want %d", i, len(e.Tags), i+1)
		}
	}
	if len(orig) != 2 || orig[0].K != "a" {
		t.Fatal("TagAll mutated an original tag slice")
	}
	// Appending to one event's tags must not bleed into the next event's
	// arena segment.
	events[0].Tags = append(events[0].Tags, T("x", "9"))
	if events[1].Tags[0].K != "exp" || events[1].Tags[1].K != "a" {
		t.Fatalf("arena bleed: event 1 tags = %v", events[1].Tags)
	}
}

func TestTagAllAllocsConstant(t *testing.T) {
	base := make([]Event, 4096)
	for i := range base {
		base[i].Tags = []Tag{T("vector", "usb-lnk")}
	}
	work := make([]Event, len(base))
	allocs := testing.AllocsPerRun(10, func() {
		copy(work, base) // restore the original tag slices; no allocation
		TagAll(work, T("exp", "F1"))
	})
	// The arena pattern costs one backing allocation regardless of event
	// count; the per-event WithTag path would cost ~4096 here.
	if allocs > 4 {
		t.Fatalf("TagAll allocated %v times for 4096 events, want O(1)", allocs)
	}
}

func BenchmarkTagAll(b *testing.B) {
	events := make([]Event, 8192)
	for i := range events {
		events[i].Tags = []Tag{T("vector", "usb-lnk"), T("os", "win7")}
	}
	work := make([]Event, len(events))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, events)
		TagAll(work, T("exp", "C7"))
	}
}

func BenchmarkWithTagPerEvent(b *testing.B) {
	// The pre-batch path TagAll replaced: one allocation per event.
	events := make([]Event, 8192)
	for i := range events {
		events[i].Tags = []Tag{T("vector", "usb-lnk"), T("os", "win7")}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range events {
			_ = events[j].WithTag(T("exp", "C7"))
		}
	}
}

package obs

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically non-decreasing metric.
type Counter struct {
	v float64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add increases the counter by d. Negative deltas are an authoring error.
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("obs: negative counter delta %g", d))
	}
	c.v += d
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a point-in-time level metric.
type Gauge struct {
	v float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the gauge by d (either sign).
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current level.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket distribution. Bucket i counts observations
// v with bounds[i-1] < v <= bounds[i]; one extra overflow bucket counts
// v > bounds[len-1] (the +Inf bucket). The bucket layout is fixed at
// registration and never reallocated, so snapshots of the same metric
// always align.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	count  uint64
}

// Observe records one value. NaN is an authoring error — every bucket
// comparison against NaN is false, so it would land in bucket 0 and
// poison sum (and everything downstream of snapshot merge/diff) — so it
// panics, mirroring Counter.Add on negative deltas.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		panic("obs: NaN histogram observation")
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Bounds returns the bucket upper bounds (not including +Inf). Callers
// must not mutate the result.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("obs: LinearBuckets needs n >= 1 and width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n >= 1, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// ByteBuckets is the shared layout for payload-size histograms:
// 64 B .. 1 MiB in powers of four.
var ByteBuckets = ExpBuckets(64, 4, 8)

// Registry holds a world's metrics. Metric handles are get-or-create:
// looking a name up twice returns the same instance, so hot paths can
// cache the pointer once and skip the map afterwards.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// checkName enforces the metric-name charset (lowercase dotted words,
// digits, dashes and underscores allowed) so text and JSON encodings
// never need escaping.
func checkName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			panic(fmt.Sprintf("obs: invalid metric name %q (want subsystem.noun.verb)", name))
		}
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	checkName(name)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	checkName(name)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. bounds must be strictly ascending;
// re-registering an existing histogram with a different layout panics —
// a fixed layout is what keeps cross-seed aggregation well-defined.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if h, ok := r.hists[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram %s re-registered with %d buckets, had %d", name, len(bounds), len(h.bounds)))
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("obs: histogram %s re-registered with different bounds", name))
			}
		}
		return h
	}
	checkName(name)
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %s needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly ascending", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package obs

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lan.smb.copy")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %g, want 3", c.Value())
	}
	if r.Counter("lan.smb.copy") != c {
		t.Fatal("counter lookup is not get-or-create")
	}
	g := r.Gauge("plant.centrifuges.spin")
	g.Set(24)
	g.Add(-3)
	if g.Value() != 21 {
		t.Fatalf("gauge = %g, want 21", g.Value())
	}
}

func TestCounterNegativeDeltaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("a.b.c").Add(-1)
}

func TestInvalidMetricNamePanics(t *testing.T) {
	for _, name := range []string{"", "Has Caps", "sp ace", "pipe|bad", "brace{x}"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", name)
				}
			}()
			NewRegistry().Counter(name)
		}()
	}
}

// TestHistogramBucketBoundaries pins the le (inclusive upper bound)
// semantics at the exact boundary values.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.y.z", []float64{1, 10, 100})
	cases := []struct {
		v      float64
		bucket int
	}{
		{-5, 0}, // below the first bound lands in bucket 0
		{1, 0},  // exactly on a bound is inclusive
		{1.0001, 1},
		{10, 1},
		{99.999, 2},
		{100, 2},
		{100.5, 3}, // overflow -> +Inf bucket
		{1e12, 3},
	}
	for _, c := range cases {
		before := append([]uint64(nil), h.counts...)
		h.Observe(c.v)
		for i := range h.counts {
			want := before[i]
			if i == c.bucket {
				want++
			}
			if h.counts[i] != want {
				t.Fatalf("Observe(%g): bucket %d count = %d, want %d", c.v, i, h.counts[i], want)
			}
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
}

func TestHistogramRelayoutPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("a.b.c", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different bounds did not panic")
		}
	}()
	r.Histogram("a.b.c", []float64{1, 3})
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(10, 5, 3)
	if lin[0] != 10 || lin[1] != 15 || lin[2] != 20 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(64, 4, 3)
	if exp[0] != 64 || exp[1] != 256 || exp[2] != 1024 {
		t.Fatalf("ExpBuckets = %v", exp)
	}
}

// TestSnapshotDiffRoundTrip verifies snapshot(after).Diff(snapshot(before))
// equals exactly the activity between the two snapshots, and that merging
// the diff back onto the before-state reproduces the after-state.
func TestSnapshotDiffRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b.c")
	h := r.Histogram("d.e.f", []float64{10, 100})
	c.Add(5)
	h.Observe(7)
	before := r.Snapshot()

	c.Add(3)
	h.Observe(50)
	h.Observe(5000)
	after := r.Snapshot()

	diff := after.Diff(before)
	if diff.Counters["a.b.c"] != 3 {
		t.Fatalf("counter diff = %g, want 3", diff.Counters["a.b.c"])
	}
	dh := diff.Histograms["d.e.f"]
	if dh.Count != 2 || dh.Counts[0] != 0 || dh.Counts[1] != 1 || dh.Counts[2] != 1 {
		t.Fatalf("histogram diff = %+v", dh)
	}

	merged := before
	merged.Merge(diff)
	if merged.Text() != after.Text() {
		t.Fatalf("before+diff != after:\n%s\nvs\n%s", merged.Text(), after.Text())
	}
}

func TestSnapshotMergeSums(t *testing.T) {
	a := NewRegistry()
	a.Counter("x.y.z").Add(2)
	a.Histogram("h.i.j", []float64{1}).Observe(0.5)
	b := NewRegistry()
	b.Counter("x.y.z").Add(3)
	b.Counter("only.in.b").Inc()
	b.Histogram("h.i.j", []float64{1}).Observe(9)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counters["x.y.z"] != 5 || s.Counters["only.in.b"] != 1 {
		t.Fatalf("merged counters = %v", s.Counters)
	}
	h := s.Histograms["h.i.j"]
	if h.Count != 2 || h.Counts[0] != 1 || h.Counts[1] != 1 || h.Sum != 9.5 {
		t.Fatalf("merged histogram = %+v", h)
	}
}

func TestSnapshotEncodingsStable(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		// Register in varying orders; output must not care.
		for _, n := range []string{"b.b.b", "a.a.a", "c.c.c"} {
			r.Counter(n).Inc()
		}
		r.Gauge("g.g.g").Set(1.5)
		r.Histogram("h.h.h", []float64{1, 2}).Observe(1)
		return r.Snapshot()
	}
	s1, s2 := build(), build()
	if s1.Text() != s2.Text() {
		t.Fatal("Text() not stable across identical registries")
	}
	j1, err := s1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatal("JSON() not stable across identical registries")
	}
	wantOrder := []string{"counter a.a.a 1", "counter b.b.b 1", "counter c.c.c 1", "gauge g.g.g 1.5"}
	text := s1.Text()
	last := -1
	for _, w := range wantOrder {
		i := strings.Index(text, w)
		if i < 0 || i < last {
			t.Fatalf("Text() ordering wrong:\n%s", text)
		}
		last = i
	}
}

// Package obs is the observability spine of the cyber-range: a
// zero-dependency, deterministic metrics registry plus the structured
// event records the simulation trace exports as JSONL.
//
// Every sim.Kernel owns one Registry; substrates (netsim, host, cnc, the
// malware models) record their key transitions on it as counters, gauges
// and fixed-bucket histograms. Metric names follow the
// subsystem.noun.verb convention (e.g. "lan.smb.copy",
// "flame.module.install"); see DESIGN.md §6 for the full catalogue.
//
// Determinism contract: nothing in this package reads the wall clock or
// any other ambient state. Snapshots encode with stable key ordering
// (sorted names), and Event JSONL lines carry virtual sim time only, so
// two runs with the same seed produce byte-identical exports regardless
// of worker count. Types are not safe for concurrent use: like the
// kernel they belong to, each registry is single-threaded inside one
// simulated world.
package obs

package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1; last is +Inf
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a frozen, value-typed copy of a registry. Snapshots merge
// (cross-world and cross-seed aggregation), diff (before/after a phase)
// and encode with stable ordering.
type Snapshot struct {
	Counters   map[string]float64           `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]float64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.v
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = HistogramSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: append([]uint64(nil), h.counts...),
				Count:  h.count,
				Sum:    h.sum,
			}
		}
	}
	return s
}

// Merge folds other into s: counters and gauges sum, histogram bucket
// counts sum. Histograms present in both must share a bucket layout
// (guaranteed when both sides registered through Registry.Histogram with
// the same fixed bounds); a mismatch panics.
func (s *Snapshot) Merge(other Snapshot) {
	for n, v := range other.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]float64)
		}
		s.Counters[n] += v
	}
	for n, v := range other.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]float64)
		}
		s.Gauges[n] += v
	}
	for n, h := range other.Histograms {
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistogramSnapshot)
		}
		mine, ok := s.Histograms[n]
		if !ok {
			s.Histograms[n] = HistogramSnapshot{
				Bounds: append([]float64(nil), h.Bounds...),
				Counts: append([]uint64(nil), h.Counts...),
				Count:  h.Count,
				Sum:    h.Sum,
			}
			continue
		}
		if len(mine.Bounds) != len(h.Bounds) {
			panic(fmt.Sprintf("obs: merge histogram %s: layouts differ", n))
		}
		for i := range mine.Bounds {
			if mine.Bounds[i] != h.Bounds[i] {
				panic(fmt.Sprintf("obs: merge histogram %s: layouts differ", n))
			}
			mine.Counts[i] += h.Counts[i]
		}
		mine.Counts[len(mine.Bounds)] += h.Counts[len(h.Bounds)]
		mine.Count += h.Count
		mine.Sum += h.Sum
		s.Histograms[n] = mine
	}
}

// Diff returns s minus base: counter deltas, histogram bucket deltas,
// and s's gauge levels (gauges are points in time, not rates). Metrics
// absent from base count as zero there.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	out := Snapshot{}
	for n, v := range s.Counters {
		if out.Counters == nil {
			out.Counters = make(map[string]float64)
		}
		out.Counters[n] = v - base.Counters[n]
	}
	for n, v := range s.Gauges {
		if out.Gauges == nil {
			out.Gauges = make(map[string]float64)
		}
		out.Gauges[n] = v
	}
	for n, h := range s.Histograms {
		if out.Histograms == nil {
			out.Histograms = make(map[string]HistogramSnapshot)
		}
		d := HistogramSnapshot{
			Bounds: append([]float64(nil), h.Bounds...),
			Counts: append([]uint64(nil), h.Counts...),
			Count:  h.Count,
			Sum:    h.Sum,
		}
		if b, ok := base.Histograms[n]; ok {
			if len(b.Bounds) != len(h.Bounds) {
				panic(fmt.Sprintf("obs: diff histogram %s: layouts differ", n))
			}
			for i := range d.Counts {
				d.Counts[i] -= b.Counts[i]
			}
			d.Count -= b.Count
			d.Sum -= b.Sum
		}
		out.Histograms[n] = d
	}
	return out
}

// fnum renders a float with the shortest round-trip representation so
// integral counters read as integers.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Text renders the snapshot as a stable, sorted, line-oriented listing:
//
//	counter lan.smb.copy 42
//	gauge plant.centrifuges.spinning 24
//	histogram cnc.entry.bytes count=3 sum=4096 le64=0 ... le+Inf=0
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, n := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %s %s\n", n, fnum(s.Counters[n]))
	}
	for _, n := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge %s %s\n", n, fnum(s.Gauges[n]))
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "histogram %s count=%d sum=%s", n, h.Count, fnum(h.Sum))
		for i, bound := range h.Bounds {
			fmt.Fprintf(&b, " le%s=%d", fnum(bound), h.Counts[i])
		}
		fmt.Fprintf(&b, " le+Inf=%d\n", h.Counts[len(h.Bounds)])
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON. encoding/json sorts map
// keys, so the output is byte-stable for equal snapshots.
func (s Snapshot) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package netsim

import (
	"testing"

	"repro/internal/sim"
)

// TestPartitionRemoteDomainForwards: a remote domain dispatches like a
// local one — resolve, count, trace — but the request lands in the
// forward callback and the caller gets a synthetic 200.
func TestPartitionRemoteDomainForwards(t *testing.T) {
	k := sim.NewKernel()
	in := NewInternet(k)
	var got []*Request
	in.RegisterRemoteDomain("home.kuwaitdomains.example", "203.0.113.66", func(r *Request) {
		got = append(got, r)
	})
	req := &Request{Method: "GET", Host: "home.kuwaitdomains.example", Path: "/x", Source: "WS-1"}
	resp, err := in.Dispatch(req)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d, want synthetic 200", resp.Status)
	}
	if len(got) != 1 || got[0] != req {
		t.Fatalf("forward saw %v, want the dispatched request", got)
	}
	snap := k.Metrics().Snapshot()
	if snap.Counters["internet.request.remote"] != 1 {
		t.Errorf("internet.request.remote = %v, want 1", snap.Counters["internet.request.remote"])
	}
	if snap.Counters["internet.request.dispatch"] != 1 {
		t.Errorf("internet.request.dispatch = %v, want 1", snap.Counters["internet.request.dispatch"])
	}
}

// TestPartitionRemoteDomainFaultable: the adversity engine's domain
// faults apply to remote names exactly as to local ones — a takedown
// stops the forwarding, Restore brings it back.
func TestPartitionRemoteDomainFaultable(t *testing.T) {
	k := sim.NewKernel()
	in := NewInternet(k)
	calls := 0
	in.RegisterRemoteDomain("c2.example", "198.51.100.9", func(*Request) { calls++ })
	if !in.Takedown("c2.example", 0) {
		t.Fatal("Takedown refused a remote domain")
	}
	if _, err := in.Dispatch(&Request{Host: "c2.example"}); err == nil {
		t.Fatal("dispatch succeeded through a taken-down remote domain")
	}
	if calls != 0 {
		t.Fatalf("forward ran %d times during takedown", calls)
	}
	if !in.Restore("c2.example") {
		t.Fatal("Restore refused")
	}
	if _, err := in.Dispatch(&Request{Host: "c2.example"}); err != nil {
		t.Fatalf("dispatch after restore: %v", err)
	}
	if calls != 1 {
		t.Fatalf("forward ran %d times after restore, want 1", calls)
	}
}

package netsim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/pe"
	"repro/internal/pki"
	"repro/internal/sim"
)

func testKernel() *sim.Kernel { return sim.NewKernel(sim.WithSeed(3)) }

func echoServer() Handler {
	return HandlerFunc(func(req *Request) *Response {
		return OK([]byte("echo:" + req.Path))
	})
}

func TestDNSAndDispatch(t *testing.T) {
	k := testKernel()
	in := NewInternet(k)
	in.RegisterDomain("www.mypremierfutbol.com", "203.0.113.7")
	in.BindServer("203.0.113.7", echoServer())

	resp, err := in.Dispatch(&Request{Method: "GET", Host: "www.mypremierfutbol.com", Path: "/index.php", Source: "victim"})
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if string(resp.Body) != "echo:/index.php" {
		t.Fatalf("body = %q", resp.Body)
	}
	if _, err := in.Dispatch(&Request{Host: "nxdomain.example"}); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v, want ErrNXDomain", err)
	}
}

func TestDispatchByLiteralIP(t *testing.T) {
	in := NewInternet(testKernel())
	in.BindServer("198.51.100.1", echoServer())
	resp, err := in.Dispatch(&Request{Host: "198.51.100.1", Path: "/x"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("literal IP dispatch: %v %v", err, resp)
	}
}

func TestDomainTakedown(t *testing.T) {
	in := NewInternet(testKernel())
	in.RegisterDomain("c2.example", "203.0.113.9")
	in.BindServer("203.0.113.9", echoServer())
	if !in.Reachable("c2.example") {
		t.Fatal("domain should be reachable")
	}
	in.UnregisterDomain("c2.example")
	if in.Reachable("c2.example") {
		t.Fatal("takedown ineffective")
	}
}

func TestDistinctServerIPs(t *testing.T) {
	in := NewInternet(testKernel())
	in.RegisterDomain("a.example", "1.1.1.1")
	in.RegisterDomain("b.example", "1.1.1.1")
	in.RegisterDomain("c.example", "2.2.2.2")
	if got := in.DistinctServerIPs(); got != 2 {
		t.Fatalf("DistinctServerIPs = %d, want 2", got)
	}
	if got := len(in.Domains()); got != 3 {
		t.Fatalf("Domains = %d, want 3", got)
	}
}

func TestLANAttachAndAddressing(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "office", "10.0.0", nil)
	h1 := host.New(k, "WS-1")
	h2 := host.New(k, "WS-2")
	n1 := l.Attach(h1)
	n2 := l.Attach(h2)
	if n1.IP == n2.IP {
		t.Fatal("duplicate IPs")
	}
	if !strings.HasPrefix(string(n1.IP), "10.0.0.") {
		t.Fatalf("IP = %s", n1.IP)
	}
	if len(l.Hosts()) != 2 || len(l.Peers("ws-1")) != 1 {
		t.Fatal("host enumeration broken")
	}
	if l.Node("WS-1") == nil || l.Node("ws-1") == nil {
		t.Fatal("node lookup case sensitivity")
	}
}

func TestSMBCopyRequiresOpenShares(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "office", "10.0.0", nil)
	src := host.New(k, "SRC", host.WithShares(true))
	closed := host.New(k, "CLOSED")
	open := host.New(k, "OPEN", host.WithShares(true))
	l.Attach(src)
	l.Attach(closed)
	l.Attach(open)

	if l.ShareAccessible(src, "CLOSED") {
		t.Fatal("closed host reported accessible")
	}
	if !l.ShareAccessible(src, "OPEN") {
		t.Fatal("open host reported inaccessible")
	}
	if err := l.CopyToShare(src, "CLOSED", `C:\x`, []byte("payload")); !errors.Is(err, ErrShareClosed) {
		t.Fatalf("err = %v, want ErrShareClosed", err)
	}
	if err := l.CopyToShare(src, "OPEN", `C:\Windows\System32\trksvr.exe`, []byte("payload")); err != nil {
		t.Fatalf("CopyToShare: %v", err)
	}
	if !open.FS.Exists(`C:\Windows\System32\trksvr.exe`) {
		t.Fatal("file not written on target")
	}
	if err := l.CopyToShare(src, "GHOST", `C:\x`, nil); !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteExec(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "office", "10.0.0", nil)
	src := host.New(k, "SRC")
	dst := host.New(k, "DST", host.WithShares(true))
	l.Attach(src)
	l.Attach(dst)
	img := &pe.File{Name: "TrkSvr.exe", Machine: pe.MachineX86, Timestamp: k.Now()}
	raw, _ := img.Marshal()
	dst.FS.Write(`C:\Windows\System32\trksvr.exe`, raw, 0, k.Now())
	ran := false
	dst.Dispatcher = func(h *host.Host, p *host.Process, got *pe.File) { ran = got.Name == "TrkSvr.exe" }
	if err := l.RemoteExec(src, "DST", `C:\Windows\System32\trksvr.exe`); err != nil {
		t.Fatalf("RemoteExec: %v", err)
	}
	if !ran {
		t.Fatal("remote binary did not run")
	}
}

func TestSpoolerExploitGates(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "office", "10.0.0", nil)
	src := host.New(k, "SRC")
	vuln := host.New(k, "VULN", host.WithShares(true))
	patched := host.New(k, "PATCHED", host.WithShares(true), host.WithPatches(MS10_061))
	noshares := host.New(k, "NOSHARES")
	for _, h := range []*host.Host{src, vuln, patched, noshares} {
		l.Attach(h)
	}
	dropper := &pe.File{Name: "winsta.exe", Machine: pe.MachineX86, Timestamp: k.Now()}

	ran := false
	vuln.Dispatcher = func(h *host.Host, p *host.Process, img *pe.File) {
		ran = true
		if !p.System {
			t.Error("spooler dropper should run as SYSTEM")
		}
	}
	if err := l.SpoolerExploit(src, "VULN", dropper); err != nil {
		t.Fatalf("SpoolerExploit: %v", err)
	}
	k.Drain(16)
	if !ran {
		t.Fatal("dropper never executed via MOF")
	}
	if !vuln.FS.Exists(`C:\Windows\System32\wbem\mof\sysnullevnt.mof`) {
		t.Fatal("MOF file missing")
	}

	if err := l.SpoolerExploit(src, "PATCHED", dropper); err == nil {
		t.Fatal("exploit succeeded against patched host")
	}
	if err := l.SpoolerExploit(src, "NOSHARES", dropper); !errors.Is(err, ErrShareClosed) {
		t.Fatalf("err = %v, want ErrShareClosed", err)
	}
}

func TestWPADHijackAndProxyMITM(t *testing.T) {
	k := testKernel()
	in := NewInternet(k)
	in.RegisterDomain("news.example", "198.51.100.2")
	in.BindServer("198.51.100.2", echoServer())

	l := NewLAN(k, "office", "10.0.0", in)
	attacker := host.New(k, "INFECTED", host.WithInternet(true))
	victim := host.New(k, "VICTIM", host.WithInternet(true))
	an := l.Attach(attacker)
	l.Attach(victim)

	// No responder: browser keeps direct connectivity.
	l.BrowserLaunch(victim)
	if victim.ProxyHost != "" {
		t.Fatal("proxy set with no WPAD responder")
	}

	// Attacker answers WPAD; victim adopts it on next browser launch.
	an.WPADResponder = func(from *host.Host) (string, bool) { return "INFECTED", true }
	var sawThroughProxy []string
	an.Proxy = func(req *Request) *Response {
		sawThroughProxy = append(sawThroughProxy, req.Host+req.Path)
		if req.Host == "news.example" && req.Path == "/intercept" {
			return OK([]byte("FAKE CONTENT"))
		}
		return nil // pass through
	}
	l.BrowserLaunch(victim)
	if victim.ProxyHost != "INFECTED" {
		t.Fatalf("ProxyHost = %q", victim.ProxyHost)
	}

	// Pass-through request reaches the real server but is observed.
	resp, err := l.HTTP(victim, &Request{Method: "GET", Host: "news.example", Path: "/real"})
	if err != nil || string(resp.Body) != "echo:/real" {
		t.Fatalf("pass-through: %v %q", err, resp)
	}
	// Intercepted request gets the attacker's bytes.
	resp, err = l.HTTP(victim, &Request{Method: "GET", Host: "news.example", Path: "/intercept"})
	if err != nil || string(resp.Body) != "FAKE CONTENT" {
		t.Fatalf("intercept: %v %q", err, resp)
	}
	if len(sawThroughProxy) != 2 {
		t.Fatalf("proxy observed %d requests, want 2", len(sawThroughProxy))
	}
}

func TestARPPoisonMITM(t *testing.T) {
	k := testKernel()
	in := NewInternet(k)
	in.RegisterDomain("site.example", "198.51.100.3")
	in.BindServer("198.51.100.3", echoServer())
	l := NewLAN(k, "office", "10.0.0", in)
	attacker := host.New(k, "ATTACKER", host.WithInternet(true))
	victim := host.New(k, "VICTIM", host.WithInternet(true))
	pinned := host.New(k, "PINNED", host.WithInternet(true))
	an := l.Attach(attacker)
	l.Attach(victim)
	pn := l.Attach(pinned)
	pn.StaticARP = true

	an.Proxy = func(req *Request) *Response {
		if req.Path == "/steal" {
			return OK([]byte("MITM"))
		}
		return nil
	}
	// No browser launch needed: the poison redirects immediately.
	if err := l.ARPPoison(attacker, "VICTIM"); err != nil {
		t.Fatalf("ARPPoison: %v", err)
	}
	resp, err := l.HTTP(victim, &Request{Method: "GET", Host: "site.example", Path: "/steal"})
	if err != nil || string(resp.Body) != "MITM" {
		t.Fatalf("intercept: %v %q", err, resp)
	}
	// Hardened target resists.
	if err := l.ARPPoison(attacker, "PINNED"); !errors.Is(err, ErrStaticARP) {
		t.Fatalf("err = %v, want ErrStaticARP", err)
	}
	if err := l.ARPPoison(attacker, "GHOST"); !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("err = %v", err)
	}
}

func TestHTTPWithoutInternet(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "airgap", "10.9.0", nil)
	h := host.New(k, "ISOLATED")
	l.Attach(h)
	if _, err := l.HTTP(h, &Request{Host: "x.example"}); !errors.Is(err, ErrNoInternet) {
		t.Fatalf("err = %v, want ErrNoInternet", err)
	}
	h2 := host.New(k, "CONNECTED-FLAG", host.WithInternet(true))
	l.Attach(h2)
	if _, err := l.HTTP(h2, &Request{Host: "x.example"}); !errors.Is(err, ErrNoInternet) {
		t.Fatalf("air-gapped LAN err = %v, want ErrNoInternet", err)
	}
}

func updatePKI(t *testing.T, now time.Time) (*pki.Store, *pki.Keypair, *pki.Certificate) {
	t.Helper()
	var s1, s2 [32]byte
	s1[0], s2[0] = 1, 2
	root := pki.NewRoot("SimSoft Root", pki.HashStrong, s1, now.Add(-time.Hour), 100*365*24*time.Hour)
	key := pki.NewKeypair(s2)
	cert, err := root.Issue(now, pki.IssueRequest{
		Subject: "SimSoft Windows Update", Usages: pki.UsageCodeSign,
		Lifetime: 10 * 365 * 24 * time.Hour, PubKey: key.Public,
	})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	return pki.NewStore(root.Cert), key, cert
}

func TestWindowsUpdateGenuineFlow(t *testing.T) {
	k := testKernel()
	in := NewInternet(k)
	store, key, cert := updatePKI(t, k.Now())
	wu := NewWindowsUpdate(in, "198.51.100.50")

	update := &pe.File{Name: "KB-2026-07.exe", Machine: pe.MachineX86, Timestamp: k.Now(),
		Sections: []pe.Section{{Name: ".text", Data: []byte("genuine update")}}}
	if err := pki.SignImage(update, key, cert); err != nil {
		t.Fatalf("SignImage: %v", err)
	}
	wu.Publish(update)

	l := NewLAN(k, "office", "10.0.0", in)
	h := host.New(k, "WS-1", host.WithInternet(true), host.WithCertStore(store))
	l.Attach(h)

	got, err := CheckForUpdates(l, h)
	if err != nil {
		t.Fatalf("CheckForUpdates: %v", err)
	}
	if got == nil || got.Name != "KB-2026-07.exe" {
		t.Fatalf("installed = %v", got)
	}
	// Second check: already installed, nothing happens.
	got, err = CheckForUpdates(l, h)
	if err != nil || got != nil {
		t.Fatalf("re-check: %v %v", got, err)
	}
}

func TestWindowsUpdateRejectsUnsigned(t *testing.T) {
	k := testKernel()
	in := NewInternet(k)
	store, _, _ := updatePKI(t, k.Now())
	wu := NewWindowsUpdate(in, "198.51.100.50")
	wu.Publish(&pe.File{Name: "evil.exe", Machine: pe.MachineX86, Timestamp: k.Now()})

	l := NewLAN(k, "office", "10.0.0", in)
	h := host.New(k, "WS-1", host.WithInternet(true), host.WithCertStore(store))
	l.Attach(h)
	if _, err := CheckForUpdates(l, h); !errors.Is(err, ErrUpdateRejected) {
		t.Fatalf("err = %v, want ErrUpdateRejected", err)
	}
}

func TestStartUpdateClientPeriodic(t *testing.T) {
	k := testKernel()
	in := NewInternet(k)
	store, key, cert := updatePKI(t, k.Now())
	wu := NewWindowsUpdate(in, "198.51.100.50")
	l := NewLAN(k, "office", "10.0.0", in)
	h := host.New(k, "WS-1", host.WithInternet(true), host.WithCertStore(store))
	l.Attach(h)

	installed := 0
	h.Dispatcher = func(hh *host.Host, p *host.Process, img *pe.File) { installed++ }
	cancel := StartUpdateClient(l, h, time.Hour)
	defer cancel()

	k.RunFor(30 * time.Minute) // service empty: nothing
	update := &pe.File{Name: "KB1.exe", Machine: pe.MachineX86, Timestamp: k.Now(),
		Sections: []pe.Section{{Name: ".text", Data: []byte("u1")}}}
	if err := pki.SignImage(update, key, cert); err != nil {
		t.Fatalf("SignImage: %v", err)
	}
	wu.Publish(update)
	k.RunFor(3 * time.Hour)
	if installed != 1 {
		t.Fatalf("installed %d updates, want 1", installed)
	}
}

func TestBluetoothScanAndBeacon(t *testing.T) {
	k := testKernel()
	r := NewRadio(k)
	office := "riyadh-office"
	infected := host.New(k, "LAPTOP-1", host.WithHardware(host.Hardware{Bluetooth: true}))
	nearby := host.New(k, "LAPTOP-2", host.WithHardware(host.Hardware{Bluetooth: true}))
	noBT := host.New(k, "DESKTOP", host.WithHardware(host.Hardware{}))
	r.PlaceHost(infected, office)
	r.PlaceHost(nearby, office)
	r.PlaceHost(noBT, office)
	r.PlaceDevice(office, &BTDevice{Name: "Ali's Phone", Kind: "phone", Owner: "ali", Contacts: []string{"+9665xxx"}})
	r.PlaceDevice("elsewhere", &BTDevice{Name: "Far Phone", Kind: "phone"})

	devs := r.Scan(infected)
	if len(devs) != 1 || devs[0].Name != "Ali's Phone" {
		t.Fatalf("Scan = %v", devs)
	}
	if r.Scan(noBT) != nil {
		t.Fatal("host without BT hardware scanned")
	}

	if !r.SetBeacon(nearby, true) {
		t.Fatal("SetBeacon failed")
	}
	if r.SetBeacon(noBT, true) {
		t.Fatal("SetBeacon succeeded without hardware")
	}
	devs = r.Scan(infected)
	if len(devs) != 2 {
		t.Fatalf("Scan after beacon = %v", devs)
	}
	if !r.IsBeaconing(nearby) {
		t.Fatal("IsBeaconing false")
	}
	if k.Trace().Count(sim.CatBluetooth) == 0 {
		t.Fatal("no bluetooth trace records")
	}
}

func TestScanUnplacedHost(t *testing.T) {
	k := testKernel()
	r := NewRadio(k)
	h := host.New(k, "H", host.WithHardware(host.Hardware{Bluetooth: true}))
	if r.Scan(h) != nil {
		t.Fatal("unplaced host scan should be nil")
	}
}

// Package netsim provides the simulated network fabric: an internet with
// DNS and HTTP, LANs with SMB shares, the print-spooler and WPAD broadcast
// behaviours the modelled malware abuses, a Windows Update service, and
// Bluetooth radio spaces.
//
// Requests are synchronous method calls — the paper's claims concern who
// can reach and impersonate whom, not latency — but all activity is
// stamped into the kernel trace at current virtual time, and the
// load-bearing transitions (lan.* exploit traffic, internet.request.*
// volume, wu.update.* outcomes) increment the kernel's obs registry.
package netsim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// IP is a printable address.
type IP string

// Request is a simulated HTTP request.
type Request struct {
	Method string
	Host   string // domain name or literal IP
	Path   string
	Query  map[string]string
	Body   []byte
	// Source identifies the originating machine (set by the fabric).
	Source string
}

// Response is a simulated HTTP response.
//
// OriginSpan/OriginVector are set by malicious responders (Flame's
// fake-update MITM): they attribute whatever the client does with the
// body — typically executing it — to the episode that served it.
type Response struct {
	Status       int
	Body         []byte
	OriginSpan   obs.Span
	OriginVector string
}

// OK wraps body in a 200 response.
func OK(body []byte) *Response { return &Response{Status: 200, Body: body} }

// NotFound is a 404 response.
func NotFound() *Response { return &Response{Status: 404} }

// Handler serves simulated HTTP.
type Handler interface {
	ServeSim(req *Request) *Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req *Request) *Response

// ServeSim implements Handler.
func (f HandlerFunc) ServeSim(req *Request) *Response { return f(req) }

// Errors surfaced by the fabric.
var (
	ErrNoRoute      = errors.New("netsim: no route to host")
	ErrNXDomain     = errors.New("netsim: domain does not resolve")
	ErrNoInternet   = errors.New("netsim: host has no internet connectivity")
	ErrNoSuchServer = errors.New("netsim: no server at address")
)

// Internet is the global name and server registry.
type Internet struct {
	K       *sim.Kernel
	dns     map[string]IP
	servers map[IP]Handler
	// catchAll, when set, resolves every unknown name — the sandbox
	// sinkhole configuration (INetSim-style).
	catchAll IP
	// faults remembers adversity-engine interventions per domain so
	// Restore can undo them and clients can attribute fallback behaviour
	// to the intervention's causal span.
	faults map[string]*domainFault

	mDispatch *obs.Counter
	hBytes    *obs.Histogram
	mErr      *obs.Counter
	mErrNX    *obs.Counter
	mErrNoSrv *obs.Counter
}

// domainFault is one live intervention against a domain name.
type domainFault struct {
	prevIP     IP
	registered bool // the name resolved in DNS before the fault
	mode       string
	span       obs.Span
}

// SetCatchAll makes every unknown name resolve to ip (empty disables).
func (in *Internet) SetCatchAll(ip IP) { in.catchAll = ip }

// NewInternet returns an empty internet.
func NewInternet(k *sim.Kernel) *Internet {
	return &Internet{
		K:         k,
		dns:       make(map[string]IP),
		servers:   make(map[IP]Handler),
		faults:    make(map[string]*domainFault),
		mDispatch: k.Metrics().Counter("internet.request.dispatch"),
		hBytes:    k.Metrics().Histogram("internet.request.bytes", obs.ByteBuckets),
		mErr:      k.Metrics().Counter("net.dispatch.err"),
		mErrNX:    k.Metrics().Counter("net.dispatch.err.nxdomain"),
		mErrNoSrv: k.Metrics().Counter("net.dispatch.err.noserver"),
	}
}

// RegisterDomain points name at ip.
func (in *Internet) RegisterDomain(name string, ip IP) {
	in.dns[name] = ip
}

// UnregisterDomain removes a name (domain takedown / suicide cleanup).
func (in *Internet) UnregisterDomain(name string) {
	delete(in.dns, name)
}

// Resolve looks up a name. Literal IPs resolve to themselves when a server
// is bound there.
func (in *Internet) Resolve(name string) (IP, bool) {
	if ip, ok := in.dns[name]; ok {
		return ip, true
	}
	if _, ok := in.servers[IP(name)]; ok {
		return IP(name), true
	}
	if in.catchAll != "" {
		return in.catchAll, true
	}
	return "", false
}

// Domains returns all registered domain names, sorted.
func (in *Internet) Domains() []string {
	out := make([]string, 0, len(in.dns))
	for d := range in.dns {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// DistinctServerIPs returns how many distinct IPs the registered domains
// point at — the paper's "80 domains, 22 server IPs" shape.
func (in *Internet) DistinctServerIPs() int {
	seen := make(map[IP]bool, len(in.dns))
	for _, ip := range in.dns {
		seen[ip] = true
	}
	return len(seen)
}

// BindServer attaches a handler at ip.
func (in *Internet) BindServer(ip IP, h Handler) {
	in.servers[ip] = h
}

// UnbindServer removes the server at ip.
func (in *Internet) UnbindServer(ip IP) {
	delete(in.servers, ip)
}

// Dispatch resolves req.Host and delivers the request to the bound server.
// Failures are counted (net.dispatch.err plus a per-cause counter) so
// takedown windows show up in metrics output, not just as client errors.
func (in *Internet) Dispatch(req *Request) (*Response, error) {
	ip, ok := in.Resolve(req.Host)
	if !ok {
		in.mErr.Inc()
		in.mErrNX.Inc()
		return nil, fmt.Errorf("%w: %s", ErrNXDomain, req.Host)
	}
	srv, ok := in.servers[ip]
	if !ok {
		in.mErr.Inc()
		in.mErrNoSrv.Inc()
		return nil, fmt.Errorf("%w: %s (%s)", ErrNoSuchServer, ip, req.Host)
	}
	in.mDispatch.Inc()
	in.hBytes.Observe(float64(len(req.Body)))
	in.K.Trace().Emit(in.K.Now(), sim.CatNetwork, req.Source,
		fmt.Sprintf("%s http://%s%s (%d bytes)", req.Method, req.Host, req.Path, len(req.Body)),
		obs.T("dest", req.Host), obs.Ti("bytes", int64(len(req.Body))))
	return srv.ServeSim(req), nil
}

// --- domain faults (the adversity engine's network substrate) ---

// Takedown removes name from DNS, remembering its previous binding for
// Restore. The span is the causal episode of the intervention: clients
// that fall back because of it attribute their fallback to this span
// (via FaultSpan). Returns false when the name never resolved.
func (in *Internet) Takedown(name string, span obs.Span) bool {
	prev, ok := in.dns[name]
	if !ok {
		return false
	}
	if f := in.faults[name]; f != nil {
		f.mode = "takedown"
		f.span = span
	} else {
		in.faults[name] = &domainFault{prevIP: prev, registered: true, mode: "takedown", span: span}
	}
	delete(in.dns, name)
	return true
}

// SinkholeDomain repoints name at sink — the researcher/registrar
// sinkhole move. Names that were already taken down (expired) are
// re-registered at the sink, matching how real sinkholes claimed dead
// C&C domains. Returns false only when the name was never registered
// and is not under a recorded fault.
func (in *Internet) SinkholeDomain(name string, sink IP, span obs.Span) bool {
	prev, had := in.dns[name]
	f := in.faults[name]
	if !had && f == nil {
		return false
	}
	if f != nil {
		f.mode = "sinkhole"
		f.span = span
	} else {
		in.faults[name] = &domainFault{prevIP: prev, registered: true, mode: "sinkhole", span: span}
	}
	in.dns[name] = sink
	return true
}

// Restore undoes a Takedown/SinkholeDomain, re-binding the original IP.
func (in *Internet) Restore(name string) bool {
	f, ok := in.faults[name]
	if !ok {
		return false
	}
	delete(in.faults, name)
	if f.registered {
		in.dns[name] = f.prevIP
	} else {
		delete(in.dns, name)
	}
	return true
}

// FaultSpan returns the causal span of the live fault on name (zero when
// the name is healthy). Fallback paths use it as their parent cause.
func (in *Internet) FaultSpan(name string) obs.Span {
	if f, ok := in.faults[name]; ok {
		return f.span
	}
	return 0
}

// FaultMode returns "takedown", "sinkhole", or "" for a healthy name.
func (in *Internet) FaultMode(name string) string {
	if f, ok := in.faults[name]; ok {
		return f.mode
	}
	return ""
}

// Reachable reports whether name currently resolves to a live server — the
// connectivity probe Stuxnet performs against windowsupdate.com / msn.com
// before contacting its C&C.
func (in *Internet) Reachable(name string) bool {
	ip, ok := in.Resolve(name)
	if !ok {
		return false
	}
	_, ok = in.servers[ip]
	return ok
}

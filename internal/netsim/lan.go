package netsim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/host"
	"repro/internal/obs"
	"repro/internal/pe"
	"repro/internal/sim"
)

// ProxyHandler lets a machine that has become another machine's proxy
// inspect and possibly replace traffic. Returning a non-nil response
// short-circuits the request (the MITM case); returning nil forwards it
// unchanged.
type ProxyHandler func(req *Request) *Response

// Node is a LAN attachment record for one host.
type Node struct {
	Host *host.Host
	IP   IP
	// WPADResponder, when set, answers NetBIOS WPAD broadcasts with a
	// proxy configuration naming this (or another) machine. Flame's SNACK
	// module installs one.
	WPADResponder func(from *host.Host) (proxyHost string, ok bool)
	// Proxy intercepts HTTP traffic from hosts whose ProxyHost names this
	// node. Flame's MUNCH module installs one.
	Proxy ProxyHandler
	// StaticARP hardens the host against gratuitous-ARP redirection.
	StaticARP bool
}

// LAN is one broadcast domain. A nil Uplink models an air-gapped network.
type LAN struct {
	Name   string
	K      *sim.Kernel
	Uplink *Internet

	nodes  map[string]*Node // by lower-cased host name
	nextIP int
	subnet string

	// Sorted-view caches, rebuilt lazily and invalidated by Attach. The
	// spread sweeps of a 30,000-host fleet call Peers once per infected
	// host per round; re-sorting the node map every time dominated the
	// profile.
	sortedHosts []*host.Host
	sortedNames []string
	peersBuf    []*host.Host

	// impair is the segment's current degradation (see SetImpairment).
	impair Impairment

	// Cached metric handles; the SMB/psexec paths run once per peer per
	// spread round at fleet scale.
	mAttach, mSMBCopy, mPsexec, mSpooler, mWPAD, mARP, mProxied, mDrop, mRDP *obs.Counter
}

// Impairment degrades a LAN segment: Loss is the probability one
// operation (HTTP, SMB probe/copy, psexec, spooler print job) is dropped;
// Latency is added to store-and-forward deliveries such as the spooler's
// MOF-launch delay. The zero value is a healthy segment.
type Impairment struct {
	Loss    float64
	Latency time.Duration
}

// ErrPacketLoss is returned when an impaired segment drops an operation.
var ErrPacketLoss = errors.New("netsim: packet lost (LAN impaired)")

// SetImpairment applies imp to the segment (zero value restores health).
func (l *LAN) SetImpairment(imp Impairment) { l.impair = imp }

// Impairment returns the segment's current degradation.
func (l *LAN) Impairment() Impairment { return l.impair }

// dropped decides one operation's fate under the current impairment. It
// is RNG-neutral at the extremes: Loss <= 0 never draws and never drops,
// Loss >= 1 never draws and always drops — so baseline worlds and
// total-blackout worlds consume identical RNG streams and stay
// byte-identical with their unimpaired twins.
func (l *LAN) dropped(op, from string) bool {
	p := l.impair.Loss
	if p <= 0 {
		return false
	}
	if p < 1 && l.K.RNG().Float64() >= p {
		return false
	}
	l.mDrop.Inc()
	l.K.Trace().Emit(l.K.Now(), sim.CatFault, from, "packet loss: "+op+" dropped",
		obs.T("op", op))
	return true
}

// NewLAN creates a LAN. uplink may be nil for air-gapped segments.
func NewLAN(k *sim.Kernel, name, subnet string, uplink *Internet) *LAN {
	m := k.Metrics()
	return &LAN{
		Name:     name,
		K:        k,
		Uplink:   uplink,
		nodes:    make(map[string]*Node),
		subnet:   subnet,
		mAttach:  m.Counter("lan.host.attach"),
		mSMBCopy: m.Counter("lan.smb.copy"),
		mPsexec:  m.Counter("lan.psexec.exec"),
		mSpooler: m.Counter("lan.spooler.exploit"),
		mWPAD:    m.Counter("lan.wpad.answer"),
		mARP:     m.Counter("lan.arp.poison"),
		mProxied: m.Counter("lan.http.proxied"),
		mDrop:    m.Counter("lan.impair.drop"),
		mRDP:     m.Counter("lan.rdp.login"),
	}
}

// Attach joins a host to the LAN, assigning it an address.
func (l *LAN) Attach(h *host.Host) *Node {
	l.nextIP++
	n := &Node{Host: h, IP: IP(fmt.Sprintf("%s.%d", l.subnet, l.nextIP))}
	l.nodes[strings.ToLower(h.Name)] = n
	l.sortedHosts, l.sortedNames = nil, nil
	l.mAttach.Inc()
	return n
}

// Node returns the attachment record for a host name, or nil.
func (l *LAN) Node(name string) *Node {
	return l.nodes[strings.ToLower(name)]
}

// HostCount returns the number of attached hosts.
func (l *LAN) HostCount() int { return len(l.nodes) }

// hostsSorted returns the cached name-sorted host slice, rebuilding it
// after an Attach. Callers must not mutate or retain the result.
func (l *LAN) hostsSorted() []*host.Host {
	if l.sortedHosts == nil {
		l.sortedHosts = make([]*host.Host, 0, len(l.nodes))
		for _, n := range l.nodes {
			l.sortedHosts = append(l.sortedHosts, n.Host)
		}
		sort.Slice(l.sortedHosts, func(i, j int) bool {
			return l.sortedHosts[i].Name < l.sortedHosts[j].Name
		})
	}
	return l.sortedHosts
}

// Hosts returns all attached hosts sorted by name. The slice is the
// caller's to keep.
func (l *LAN) Hosts() []*host.Host {
	return append([]*host.Host(nil), l.hostsSorted()...)
}

// Peers returns all attached hosts except the named one, sorted by name.
// The returned slice is a scratch buffer owned by the LAN and reused by
// the next Peers call: iterate it immediately, do not retain it across
// Peers or Attach calls.
func (l *LAN) Peers(name string) []*host.Host {
	l.peersBuf = l.peersBuf[:0]
	for _, h := range l.hostsSorted() {
		if !strings.EqualFold(h.Name, name) {
			l.peersBuf = append(l.peersBuf, h)
		}
	}
	return l.peersBuf
}

// PeerAt returns the i'th peer (modulo the peer count) of the named host
// in name-sorted order — the same host Peers(name)[i%len] would yield —
// without materializing the peer slice. High-frequency round-robin
// callers (the user-activity layer picks one share/maintenance target
// per action across fleet-scale LANs) use this to stay O(log n) per
// pick instead of O(n). The name must match the attached spelling
// exactly; returns nil when the host has no peers.
func (l *LAN) PeerAt(name string, i int) *host.Host {
	hs := l.hostsSorted()
	self := sort.Search(len(hs), func(j int) bool { return hs[j].Name >= name })
	if self < len(hs) && hs[self].Name == name {
		n := len(hs) - 1
		if n <= 0 || i < 0 {
			return nil
		}
		j := i % n
		if j >= self {
			j++
		}
		return hs[j]
	}
	if len(hs) == 0 || i < 0 {
		return nil
	}
	return hs[i%len(hs)]
}

// --- HTTP through the LAN (honouring proxy settings) ---

// HTTP issues an HTTP request from a host. If the host has a ProxyHost
// configured (e.g. after a WPAD hijack), the request is offered to the
// proxy node's handler first; a non-nil reply from the proxy is a
// man-in-the-middle response. Otherwise the request needs internet
// connectivity and an uplink.
func (l *LAN) HTTP(from *host.Host, req *Request) (*Response, error) {
	req.Source = from.Name
	if from.Down {
		return nil, fmt.Errorf("%w: %s", host.ErrHostDown, from.Name)
	}
	if l.dropped("http", from.Name) {
		return nil, fmt.Errorf("%w: %s -> %s", ErrPacketLoss, from.Name, req.Host)
	}
	if from.ProxyHost != "" {
		if proxy := l.Node(from.ProxyHost); proxy != nil && proxy.Proxy != nil && !proxy.Host.Down {
			l.mProxied.Inc()
			l.K.Trace().Emit(l.K.Now(), sim.CatNetwork, from.Name,
				fmt.Sprintf("proxied via %s: %s http://%s%s", from.ProxyHost, req.Method, req.Host, req.Path),
				obs.T("proxy", from.ProxyHost), obs.T("dest", req.Host))
			if resp := proxy.Proxy(req); resp != nil {
				return resp, nil
			}
		}
	}
	if !from.Internet {
		return nil, fmt.Errorf("%w: %s", ErrNoInternet, from.Name)
	}
	if l.Uplink == nil {
		return nil, fmt.Errorf("%w: LAN %s is air-gapped", ErrNoInternet, l.Name)
	}
	return l.Uplink.Dispatch(req)
}

// --- WPAD (NetBIOS proxy auto-discovery) ---

// WPADQuery models a browser broadcasting for wpad.dat on the local
// segment: with no DNS WPAD record, NetBIOS lets *any* machine answer, so
// the first responder wins (paper, Fig. 2 and footnote 6). It returns the
// proxy host name to configure, if any node answered.
func (l *LAN) WPADQuery(from *host.Host) (string, bool) {
	for _, name := range l.sortedNodeNames() {
		n := l.nodes[name]
		if n.Host == from || n.WPADResponder == nil || n.Host.Down {
			continue
		}
		if proxyHost, ok := n.WPADResponder(from); ok {
			l.mWPAD.Inc()
			l.K.Trace().Emit(l.K.Now(), sim.CatNetwork, from.Name,
				fmt.Sprintf("WPAD answered by %s -> proxy %s", n.Host.Name, proxyHost),
				obs.T("responder", n.Host.Name), obs.T("proxy", proxyHost))
			return proxyHost, true
		}
	}
	return "", false
}

// BrowserLaunch models a user opening the browser: the browser performs
// proxy auto-discovery and adopts whatever configuration it is handed.
func (l *LAN) BrowserLaunch(h *host.Host) {
	if proxy, ok := l.WPADQuery(h); ok {
		h.ProxyHost = proxy
	}
}

// ErrStaticARP is returned when the target pins its ARP table.
var ErrStaticARP = errors.New("netsim: target uses static ARP entries")

// ARPPoison mounts the alternative MITM the paper's footnote 6 names:
// gratuitous ARP replies redirect the victim's traffic through the
// attacker immediately — no browser launch or WPAD broadcast needed. It
// fails against hosts with pinned ARP tables.
func (l *LAN) ARPPoison(attacker *host.Host, victim string) error {
	n := l.Node(victim)
	if n == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchHost, victim)
	}
	if n.StaticARP {
		return fmt.Errorf("%w: %s", ErrStaticARP, victim)
	}
	n.Host.ProxyHost = attacker.Name
	l.mARP.Inc()
	l.K.Trace().Emit(l.K.Now(), sim.CatNetwork, attacker.Name,
		fmt.Sprintf("arp poisoned %s: traffic redirected", victim),
		obs.T("victim", victim))
	return nil
}

func (l *LAN) sortedNodeNames() []string {
	if l.sortedNames == nil {
		l.sortedNames = make([]string, 0, len(l.nodes))
		for name := range l.nodes {
			l.sortedNames = append(l.sortedNames, name)
		}
		sort.Strings(l.sortedNames)
	}
	return l.sortedNames
}

// --- SMB file & print sharing ---

// SMB errors.
var (
	ErrShareClosed = errors.New("netsim: target has file and print sharing off")
	ErrNoSuchHost  = errors.New("netsim: no such host on LAN")
)

// ShareAccessible models the open/close probe Shamoon performs before
// copying itself: it succeeds when the target exposes open shares.
func (l *LAN) ShareAccessible(from *host.Host, target string) bool {
	if from.Down {
		return false
	}
	n := l.Node(target)
	if n == nil || !n.Host.SharesOpen || n.Host.Down {
		return false
	}
	return !l.dropped("smb-probe", from.Name)
}

// CopyToShare writes data into the target's filesystem over SMB. The
// target's file aliases data without copying, so the caller must not
// mutate the buffer afterwards — spread loops hand the same marshalled
// image to thousands of peers, and one copy per peer was a dominant term
// in fleet-scale memory (DESIGN.md §9). Mutation on the receiving host
// goes through the filesystem's copy-on-write path.
func (l *LAN) CopyToShare(from *host.Host, target, remotePath string, data []byte) error {
	if from.Down {
		return fmt.Errorf("%w: %s", host.ErrHostDown, from.Name)
	}
	n := l.Node(target)
	if n == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchHost, target)
	}
	if n.Host.Down {
		return fmt.Errorf("%w: %s", host.ErrHostDown, target)
	}
	if !n.Host.SharesOpen {
		return fmt.Errorf("%w: %s", ErrShareClosed, target)
	}
	if l.dropped("smb-copy", from.Name) {
		return fmt.Errorf("%w: smb copy to %s", ErrPacketLoss, target)
	}
	l.mSMBCopy.Inc()
	l.K.Trace().Emit(l.K.Now(), sim.CatSpread, from.Name,
		fmt.Sprintf("smb copy to \\\\%s%s (%d bytes)", target, remotePath, len(data)),
		obs.T("target", target), obs.Ti("bytes", int64(len(data))))
	return n.Host.FS.WriteShared(remotePath, data, 0, l.K.Now())
}

// RDPLogin models a credentialed remote-desktop session from one host to
// another — the lateral-movement step the CNI intrusions used with stolen
// accounts. It performs no execution itself; what it leaves behind is the
// Event-1149 analog in the trace, the telemetry detection rules burst on.
func (l *LAN) RDPLogin(from *host.Host, target, user string) error {
	if from.Down {
		return fmt.Errorf("%w: %s", host.ErrHostDown, from.Name)
	}
	n := l.Node(target)
	if n == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchHost, target)
	}
	if n.Host.Down {
		return fmt.Errorf("%w: %s", host.ErrHostDown, target)
	}
	if l.dropped("rdp", from.Name) {
		return fmt.Errorf("%w: rdp to %s", ErrPacketLoss, target)
	}
	l.mRDP.Inc()
	l.K.Trace().Emit(l.K.Now(), sim.CatNetwork, from.Name,
		fmt.Sprintf("rdp login to %s as %s", target, user),
		obs.T("target", target), obs.T("user", user))
	return nil
}

// RemoteExec launches an executable already present on the target (the
// psexec step of Shamoon's spread). It requires open shares.
func (l *LAN) RemoteExec(from *host.Host, target, remotePath string) error {
	if from.Down {
		return fmt.Errorf("%w: %s", host.ErrHostDown, from.Name)
	}
	n := l.Node(target)
	if n == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchHost, target)
	}
	if n.Host.Down {
		return fmt.Errorf("%w: %s", host.ErrHostDown, target)
	}
	if !n.Host.SharesOpen {
		return fmt.Errorf("%w: %s", ErrShareClosed, target)
	}
	if l.dropped("psexec", from.Name) {
		return fmt.Errorf("%w: psexec on %s", ErrPacketLoss, target)
	}
	l.mPsexec.Inc()
	l.K.Trace().Emit(l.K.Now(), sim.CatSpread, from.Name,
		fmt.Sprintf("psexec \\\\%s %s", target, remotePath),
		obs.T("target", target))
	var err error
	l.K.WithCause(sim.Cause{Span: l.K.Cause().Span, Vector: "psexec"}, func() {
		_, err = n.Host.ExecuteFile(remotePath, true)
	})
	return err
}

// --- Print spooler (MS10-061) ---

// MS10_061 is the print-spooler impersonation bulletin gate.
const MS10_061 = "MS10-061"

// spooler file names from the paper's Stuxnet dissection (Section II-A).
const (
	spoolerMOF     = host.SystemDir + `\wbem\mof\sysnullevnt.mof`
	spoolerDropper = host.SystemDir + `\winsta.exe`
)

// SpoolerExploit mounts the MS10-061 attack: a crafted print request that
// writes two "documents" into the target's %system% directory — a MOF file
// and a dropper — after which MOF event processing launches the dropper.
// It fails when the target has sharing off or the bulletin installed.
func (l *LAN) SpoolerExploit(from *host.Host, target string, dropper *pe.File) error {
	if from.Down {
		return fmt.Errorf("%w: %s", host.ErrHostDown, from.Name)
	}
	n := l.Node(target)
	if n == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchHost, target)
	}
	t := n.Host
	if t.Down {
		return fmt.Errorf("%w: %s", host.ErrHostDown, target)
	}
	if !t.SharesOpen {
		return fmt.Errorf("%w: %s", ErrShareClosed, target)
	}
	if t.Patched(MS10_061) {
		return fmt.Errorf("netsim: %s rejected crafted print request (%s installed)", target, MS10_061)
	}
	if l.dropped("spooler", from.Name) {
		return fmt.Errorf("%w: print job to %s", ErrPacketLoss, target)
	}
	raw, err := dropper.Marshal()
	if err != nil {
		return fmt.Errorf("spooler exploit: %w", err)
	}
	if err := t.FS.Write(spoolerMOF, []byte("#pragma autorecover\ninstance of __EventFilter ..."), 0, l.K.Now()); err != nil {
		return err
	}
	if err := t.FS.Write(spoolerDropper, raw, host.AttrHidden, l.K.Now()); err != nil {
		return err
	}
	l.mSpooler.Inc()
	l.K.Trace().Emit(l.K.Now(), sim.CatExploit, from.Name,
		fmt.Sprintf("%s: spooler wrote %s on %s", MS10_061, spoolerDropper, target),
		obs.T("bulletin", MS10_061), obs.T("target", target))
	// MOF compilation registers the event consumer which launches the
	// dropper shortly after. The schedule is wrapped in a spooler-vector
	// cause so the infection the dropper produces attributes to the
	// attacking episode across the timer hop.
	// An impaired segment's Latency delays the store-and-forward hop.
	l.K.WithCause(sim.Cause{Span: l.K.Cause().Span, Vector: "spooler"}, func() {
		l.K.Schedule(l.impair.Latency, "mof:"+target, func() {
			if _, err := t.ExecuteFile(spoolerDropper, true); err != nil {
				t.Logf(sim.CatExec, "wmi", "mof-launched dropper failed: %v", err)
			}
		})
	})
	return nil
}

// LinkOK models one peer-to-peer datagram on the segment: both endpoints
// must be up and the exchange must survive the impairment draw. Stuxnet's
// P2P update path probes it before syncing from a peer.
func (l *LAN) LinkOK(from, to *host.Host) error {
	if from.Down {
		return fmt.Errorf("%w: %s", host.ErrHostDown, from.Name)
	}
	if to.Down {
		return fmt.Errorf("%w: %s", host.ErrHostDown, to.Name)
	}
	if l.dropped("p2p", from.Name) {
		return fmt.Errorf("%w: %s -> %s", ErrPacketLoss, from.Name, to.Name)
	}
	return nil
}

package netsim

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// counterVal reads a registry counter without creating histogram noise.
func counterVal(in *Internet, name string) float64 {
	return in.K.Metrics().Counter(name).Value()
}

// TestFaultDispatchErrCounters pins the dispatch failure audit: every
// failed Dispatch increments net.dispatch.err plus exactly one per-cause
// counter, and successes increment neither.
func TestFaultDispatchErrCounters(t *testing.T) {
	in := NewInternet(testKernel())
	in.RegisterDomain("dead.example", "203.0.113.1") // resolves, no server
	in.RegisterDomain("live.example", "203.0.113.2")
	in.BindServer("203.0.113.2", echoServer())

	if _, err := in.Dispatch(&Request{Host: "gone.example"}); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v, want ErrNXDomain", err)
	}
	if _, err := in.Dispatch(&Request{Host: "dead.example"}); !errors.Is(err, ErrNoSuchServer) {
		t.Fatalf("err = %v, want ErrNoSuchServer", err)
	}
	if _, err := in.Dispatch(&Request{Host: "live.example"}); err != nil {
		t.Fatalf("live dispatch: %v", err)
	}

	if got := counterVal(in, "net.dispatch.err"); got != 2 {
		t.Fatalf("net.dispatch.err = %g, want 2", got)
	}
	if got := counterVal(in, "net.dispatch.err.nxdomain"); got != 1 {
		t.Fatalf("net.dispatch.err.nxdomain = %g, want 1", got)
	}
	if got := counterVal(in, "net.dispatch.err.noserver"); got != 1 {
		t.Fatalf("net.dispatch.err.noserver = %g, want 1", got)
	}
	if got := counterVal(in, "internet.request.dispatch"); got != 1 {
		t.Fatalf("internet.request.dispatch = %g, want 1", got)
	}
}

// TestFaultDomainBookkeeping pins the fault table lifecycle the adversity
// engine depends on: takedown remembers the original binding, a sinkhole
// can claim the dead name, and restore rebinds the original IP — not the
// sink.
func TestFaultDomainBookkeeping(t *testing.T) {
	k := testKernel()
	in := NewInternet(k)
	in.RegisterDomain("c2.example", "203.0.113.9")
	in.BindServer("203.0.113.9", echoServer())

	sp := k.OpenSpan(sim.CatFault, "test", "takedown", "takedown")
	if !in.Takedown("c2.example", sp) {
		t.Fatal("Takedown failed")
	}
	if in.Takedown("c2.example", sp) {
		t.Fatal("double takedown succeeded")
	}
	if in.FaultSpan("c2.example") != sp || in.FaultMode("c2.example") != "takedown" {
		t.Fatalf("fault record = %v %q", in.FaultSpan("c2.example"), in.FaultMode("c2.example"))
	}

	sink := IP("198.51.100.9")
	in.BindServer(sink, echoServer())
	sp2 := k.OpenSpan(sim.CatFault, "test", "sinkhole", "sinkhole")
	if !in.SinkholeDomain("c2.example", sink, sp2) {
		t.Fatal("sinkhole of a taken-down name failed")
	}
	if ip, _ := in.Resolve("c2.example"); ip != sink {
		t.Fatalf("resolved to %s, want sink", ip)
	}
	if in.FaultMode("c2.example") != "sinkhole" || in.FaultSpan("c2.example") != sp2 {
		t.Fatalf("fault record after sinkhole = %q %v", in.FaultMode("c2.example"), in.FaultSpan("c2.example"))
	}

	if !in.Restore("c2.example") {
		t.Fatal("Restore failed")
	}
	if ip, ok := in.Resolve("c2.example"); !ok || ip != "203.0.113.9" {
		t.Fatalf("restored binding = %s %v, want original IP", ip, ok)
	}
	if in.SinkholeDomain("unknown.example", sink, sp2) {
		t.Fatal("sinkhole of a never-registered name succeeded")
	}
}

package netsim

import (
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"repro/internal/host"
	"repro/internal/pe"
	"repro/internal/pki"
	"repro/internal/sim"
)

// UpdateDomain is the well-known update service name, also used by the
// malware's connectivity probes.
const UpdateDomain = "update.windows.sim"

// UpdatePath is the catalog endpoint.
const UpdatePath = "/v1/latest"

// WindowsUpdate is the simulated update service plus its client logic.
// Server side: serves the latest published update image. Client side:
// fetches over the LAN (so a WPAD-configured proxy can intercept), verifies
// the signature chain against the *host's* trust store, and executes —
// "Windows OS computers launch Windows update binaries without any
// restrictions provided that the update is genuine" (paper, III-A).
type WindowsUpdate struct {
	in     *Internet
	latest *pe.File
}

// NewWindowsUpdate binds the update service at ip and registers
// UpdateDomain.
func NewWindowsUpdate(in *Internet, ip IP) *WindowsUpdate {
	wu := &WindowsUpdate{in: in}
	in.RegisterDomain(UpdateDomain, ip)
	in.BindServer(ip, HandlerFunc(func(req *Request) *Response {
		if req.Path != UpdatePath || wu.latest == nil {
			return NotFound()
		}
		raw, err := wu.latest.Marshal()
		if err != nil {
			return &Response{Status: 500}
		}
		return OK(raw)
	}))
	return wu
}

// Publish makes img the latest update in the catalog.
func (wu *WindowsUpdate) Publish(img *pe.File) { wu.latest = img }

// Update-client errors.
var (
	ErrUpdateUnavailable = errors.New("netsim: update service unavailable")
	ErrUpdateRejected    = errors.New("netsim: update signature rejected")
)

const updateRegPrefix = `HKLM\SOFTWARE\SimWindows\Update\Installed\`

// CheckForUpdates runs one update-client cycle for h: fetch (through any
// configured proxy), verify, execute. Already-installed updates (by
// digest) are skipped. It returns the executed image, or nil if nothing
// new was installed.
func CheckForUpdates(l *LAN, h *host.Host) (*pe.File, error) {
	resp, err := l.HTTP(h, &Request{Method: "GET", Host: UpdateDomain, Path: UpdatePath})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUpdateUnavailable, err)
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("%w: status %d", ErrUpdateUnavailable, resp.Status)
	}
	img, err := pe.Parse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUpdateRejected, err)
	}
	digest, err := img.Digest()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUpdateRejected, err)
	}
	key := updateRegPrefix + hex.EncodeToString(digest[:8])
	if _, installed := h.Registry.Get(key); installed {
		return nil, nil
	}
	sig, err := pki.VerifyImage(img, h.CertStore, h.K.Now(), pki.UsageCodeSign)
	if err != nil {
		h.K.Metrics().Counter("wu.update.reject").Inc()
		h.Logf(sim.CatCert, "wuauclt", "rejected update %s: %v", img.Name, err)
		return nil, fmt.Errorf("%w: %v", ErrUpdateRejected, err)
	}
	h.K.Metrics().Counter("wu.update.install").Inc()
	h.Logf(sim.CatNetwork, "wuauclt", "installing update %s signed by %q", img.Name, sig.Chain[0].Subject)
	h.Registry.Set(key, img.Name)
	var execErr error
	if resp.OriginSpan != 0 {
		// A MITM'd catalog response: attribute the execution to the
		// episode that served the fake update.
		h.K.WithCause(sim.Cause{Span: resp.OriginSpan, Vector: resp.OriginVector}, func() {
			_, execErr = h.Execute(img, true)
		})
	} else {
		_, execErr = h.Execute(img, true)
	}
	if execErr != nil {
		return nil, execErr
	}
	return img, nil
}

// StartUpdateClient schedules periodic update checks for h and returns a
// cancel function.
func StartUpdateClient(l *LAN, h *host.Host, every time.Duration) func() {
	return l.K.Every(every, "wuauclt:"+h.Name, func() {
		if _, err := CheckForUpdates(l, h); err != nil &&
			!errors.Is(err, ErrUpdateUnavailable) {
			h.Logf(sim.CatNetwork, "wuauclt", "update check: %v", err)
		}
	})
}

package netsim

import (
	"testing"

	"repro/internal/host"
)

// Edge cases around WPAD arbitration and proxy fallback.

func TestWPADFirstResponderBySortedNameWins(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "office", "10.0.0", nil)
	victim := host.New(k, "VICTIM")
	a := host.New(k, "AAA-ATTACKER")
	b := host.New(k, "ZZZ-ATTACKER")
	l.Attach(victim)
	na := l.Attach(a)
	nb := l.Attach(b)
	na.WPADResponder = func(from *host.Host) (string, bool) { return "AAA-ATTACKER", true }
	nb.WPADResponder = func(from *host.Host) (string, bool) { return "ZZZ-ATTACKER", true }

	proxy, ok := l.WPADQuery(victim)
	if !ok || proxy != "AAA-ATTACKER" {
		t.Fatalf("winner = %q (deterministic first-by-name expected)", proxy)
	}
}

func TestWPADResponderDoesNotAnswerItself(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "office", "10.0.0", nil)
	a := host.New(k, "SOLO")
	na := l.Attach(a)
	na.WPADResponder = func(from *host.Host) (string, bool) { return "SOLO", true }
	if _, ok := l.WPADQuery(a); ok {
		t.Fatal("host answered its own WPAD broadcast")
	}
}

func TestWPADSelectiveResponder(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "office", "10.0.0", nil)
	attacker := host.New(k, "ATTACKER")
	v1 := host.New(k, "TARGET")
	v2 := host.New(k, "IGNORED")
	na := l.Attach(attacker)
	l.Attach(v1)
	l.Attach(v2)
	na.WPADResponder = func(from *host.Host) (string, bool) {
		return "ATTACKER", from.Name == "TARGET"
	}
	if _, ok := l.WPADQuery(v1); !ok {
		t.Fatal("target not answered")
	}
	if _, ok := l.WPADQuery(v2); ok {
		t.Fatal("non-target answered")
	}
}

func TestProxyConfiguredButProxyHostGone(t *testing.T) {
	k := testKernel()
	in := NewInternet(k)
	in.RegisterDomain("site.example", "198.51.100.9")
	in.BindServer("198.51.100.9", echoServer())
	l := NewLAN(k, "office", "10.0.0", in)
	v := host.New(k, "VICTIM", host.WithInternet(true))
	l.Attach(v)
	v.ProxyHost = "DEPARTED" // points at a machine not on the LAN
	// Falls through to direct connectivity.
	resp, err := l.HTTP(v, &Request{Method: "GET", Host: "site.example", Path: "/x"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("fallback failed: %v %v", err, resp)
	}
}

func TestRemoteExecMissingFile(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "office", "10.0.0", nil)
	src := host.New(k, "SRC")
	dst := host.New(k, "DST", host.WithShares(true))
	l.Attach(src)
	l.Attach(dst)
	if err := l.RemoteExec(src, "DST", `C:\missing.exe`); err == nil {
		t.Fatal("psexec of a missing file succeeded")
	}
}

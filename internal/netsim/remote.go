package netsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Partition-aware routing (DESIGN.md §14). A partitioned world runs one
// Internet per shard; a domain whose real server lives in another
// partition is registered here as a *remote* domain: DNS and dispatch
// behave exactly as for a local name (takedown/sinkhole faults
// included), but the bound handler hands the request to the forward
// callback — in practice a sim.Partition mailbox Send — and
// acknowledges with a synthetic 200. Delivery to the origin server
// happens at the next epoch boundary, so remote dispatch is
// fire-and-forget: the caller sees the accept, never the origin's
// response body. That matches every cross-partition use in the range
// (wipe reporters, C&C beacons, exfil uploads), which treat any 200 as
// "sent" and ignore the payload.

// RegisterRemoteDomain points name at ip and binds a forwarding server
// there. Every dispatched request is counted on
// internet.request.remote, traced, passed to forward, and acknowledged
// with an empty 200.
func (in *Internet) RegisterRemoteDomain(name string, ip IP, forward func(*Request)) {
	if forward == nil {
		panic("netsim: RegisterRemoteDomain with nil forward")
	}
	remote := in.K.Metrics().Counter("internet.request.remote")
	in.RegisterDomain(name, ip)
	in.BindServer(ip, HandlerFunc(func(req *Request) *Response {
		remote.Inc()
		in.K.Trace().Emit(in.K.Now(), sim.CatNetwork, "internet",
			fmt.Sprintf("queue http://%s%s for cross-partition delivery", req.Host, req.Path),
			obs.T("dest", req.Host))
		forward(req)
		return OK(nil)
	}))
}

package netsim

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/host"
)

// referencePeers recomputes Peers the pre-cache way: sort the node map by
// host name, drop the named host.
func referencePeers(l *LAN, name string) []*host.Host {
	var out []*host.Host
	for _, n := range l.nodes {
		if !strings.EqualFold(n.Host.Name, name) {
			out = append(out, n.Host)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func TestPeersMatchesUncachedReference(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "office", "10.0.0", nil)
	// Mixed-case, out-of-order names exercise both the sort and the
	// case-insensitive self-exclusion.
	for _, name := range []string{"ws-09", "WS-03", "Srv-01", "ws-01", "WS-10"} {
		l.Attach(host.New(k, name))
	}
	for _, self := range []string{"WS-03", "ws-03", "Srv-01", "absent"} {
		got := l.Peers(self)
		want := referencePeers(l, self)
		if len(got) != len(want) {
			t.Fatalf("Peers(%q) = %d hosts, want %d", self, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Peers(%q)[%d] = %s, want %s", self, i, got[i].Name, want[i].Name)
			}
		}
	}
}

func TestPeersCacheInvalidatedByAttach(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "office", "10.0.0", nil)
	l.Attach(host.New(k, "WS-1"))
	l.Attach(host.New(k, "WS-3"))
	if got := len(l.Peers("WS-1")); got != 1 {
		t.Fatalf("peers before attach = %d, want 1", got)
	}
	// Attaching after a Peers call must invalidate the cached sorted view
	// and land the new host in sorted position.
	l.Attach(host.New(k, "WS-2"))
	got := l.Peers("WS-1")
	if len(got) != 2 || got[0].Name != "WS-2" || got[1].Name != "WS-3" {
		names := make([]string, len(got))
		for i, h := range got {
			names[i] = h.Name
		}
		t.Fatalf("peers after attach = %v, want [WS-2 WS-3]", names)
	}
	if l.HostCount() != 3 || len(l.Hosts()) != 3 {
		t.Fatalf("host count = %d/%d, want 3", l.HostCount(), len(l.Hosts()))
	}
}

func TestHostsReturnsIndependentSlice(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "office", "10.0.0", nil)
	l.Attach(host.New(k, "WS-1"))
	l.Attach(host.New(k, "WS-2"))
	hosts := l.Hosts()
	hosts[0] = nil // caller may scribble on its copy
	if got := l.Hosts(); got[0] == nil || got[0].Name != "WS-1" {
		t.Fatal("Hosts() returned the internal cache, not a copy")
	}
}

func TestWPADOrderSurvivesCaching(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "office", "10.0.0", nil)
	asker := host.New(k, "ASKER")
	l.Attach(asker)
	// Two responders: NetBIOS first-answer-wins must keep picking the
	// alphabetically first one before and after an Attach.
	for _, name := range []string{"resp-b", "resp-a"} {
		n := l.Attach(host.New(k, name))
		me := name
		n.WPADResponder = func(*host.Host) (string, bool) { return me, true }
	}
	if proxy, ok := l.WPADQuery(asker); !ok || proxy != "resp-a" {
		t.Fatalf("WPAD answer = %q/%v, want resp-a", proxy, ok)
	}
	n := l.Attach(host.New(k, "resp-0"))
	n.WPADResponder = func(*host.Host) (string, bool) { return "resp-0", true }
	if proxy, ok := l.WPADQuery(asker); !ok || proxy != "resp-0" {
		t.Fatalf("WPAD answer after attach = %q/%v, want resp-0", proxy, ok)
	}
}

// BenchmarkLANPeers512 is the spread-sweep hot path: one Peers scan per
// infected host per round on an A3-sized 512-host segment. With the
// sorted-view cache this is a single allocation-free linear pass instead
// of a map walk plus sort.
func BenchmarkLANPeers512(b *testing.B) {
	k := testKernel()
	l := NewLAN(k, "fleet", "10.30.0", nil)
	for i := 0; i < 512; i++ {
		l.Attach(host.New(k, fmt.Sprintf("WS-%05d", i+1)))
	}
	l.Peers("WS-00001") // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := l.Peers("WS-00001"); len(got) != 511 {
			b.Fatalf("peers = %d", len(got))
		}
	}
}

// TestPeerAtMatchesPeers pins PeerAt's contract: for every host and
// rotation index it returns exactly Peers(name)[i%len(peers)], without
// building the slice.
func TestPeerAtMatchesPeers(t *testing.T) {
	k := testKernel()
	l := NewLAN(k, "office", "10.0.0", nil)
	var hosts []*host.Host
	for _, name := range []string{"GAMMA", "ALPHA", "DELTA", "BETA", "EPSILON"} {
		h := host.New(k, name)
		l.Attach(h)
		hosts = append(hosts, h)
	}
	for _, h := range hosts {
		peers := append([]*host.Host(nil), l.Peers(h.Name)...)
		for i := 0; i < 12; i++ {
			want := peers[i%len(peers)]
			if got := l.PeerAt(h.Name, i); got != want {
				t.Fatalf("PeerAt(%s, %d) = %v, want %s", h.Name, i, got, want.Name)
			}
		}
	}
	if got := l.PeerAt("GHOST", 3); got == nil {
		t.Fatal("unknown name should still rotate over the full host list")
	}
	if got := l.PeerAt("ALPHA", -1); got != nil {
		t.Fatalf("negative index should return nil, got %v", got)
	}
	solo := NewLAN(k, "solo", "10.0.9", nil)
	only := host.New(k, "ONLY")
	solo.Attach(only)
	if got := solo.PeerAt("ONLY", 0); got != nil {
		t.Fatalf("peerless host should get nil, got %v", got)
	}
}

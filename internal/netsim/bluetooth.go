package netsim

import (
	"sort"
	"strings"

	"repro/internal/host"
	"repro/internal/sim"
)

// BTDevice is a non-host Bluetooth device (phone, headset) physically near
// some machines — the social-network and location side channel BEETLEJUICE
// enumerates (paper, III-A).
type BTDevice struct {
	Name     string
	Kind     string // "phone", "headset", "laptop"
	Owner    string
	Contacts []string // address-book entries a paired phone exposes
}

// RadioSpace is one physical location's radio environment.
type RadioSpace struct {
	Name    string
	devices []*BTDevice
}

// Radio tracks which hosts and devices share physical locations and which
// hosts currently beacon as discoverable.
type Radio struct {
	K         *sim.Kernel
	spaces    map[string]*RadioSpace
	hostSpace map[string]string // host name (lower) -> space name
	beaconing map[string]bool   // host name (lower) -> discoverable
}

// NewRadio returns an empty radio environment.
func NewRadio(k *sim.Kernel) *Radio {
	return &Radio{
		K:         k,
		spaces:    make(map[string]*RadioSpace),
		hostSpace: make(map[string]string),
		beaconing: make(map[string]bool),
	}
}

// Space returns (creating if needed) the named radio space.
func (r *Radio) Space(name string) *RadioSpace {
	s, ok := r.spaces[name]
	if !ok {
		s = &RadioSpace{Name: name}
		r.spaces[name] = s
	}
	return s
}

// PlaceHost puts a host in a physical space.
func (r *Radio) PlaceHost(h *host.Host, space string) {
	r.Space(space)
	r.hostSpace[strings.ToLower(h.Name)] = space
}

// PlaceDevice puts a device in a physical space.
func (r *Radio) PlaceDevice(space string, d *BTDevice) {
	s := r.Space(space)
	s.devices = append(s.devices, d)
}

// SetBeacon makes a host announce itself as a discoverable device (or
// stop). Requires Bluetooth hardware.
func (r *Radio) SetBeacon(h *host.Host, on bool) bool {
	if !h.Hardware.Bluetooth {
		return false
	}
	r.beaconing[strings.ToLower(h.Name)] = on
	if on {
		r.K.Trace().Add(r.K.Now(), sim.CatBluetooth, h.Name, "beaconing as discoverable device")
	}
	return true
}

// IsBeaconing reports whether the host currently beacons.
func (r *Radio) IsBeaconing(h *host.Host) bool {
	return r.beaconing[strings.ToLower(h.Name)]
}

// Scan enumerates devices near the host: all BTDevices in its space, plus
// any other beaconing hosts there. It returns nil when the host has no
// Bluetooth hardware or no assigned location.
func (r *Radio) Scan(h *host.Host) []*BTDevice {
	if !h.Hardware.Bluetooth {
		return nil
	}
	spaceName, ok := r.hostSpace[strings.ToLower(h.Name)]
	if !ok {
		return nil
	}
	space := r.spaces[spaceName]
	out := make([]*BTDevice, 0, len(space.devices))
	out = append(out, space.devices...)
	for hostName, on := range r.beaconing {
		if !on || hostName == strings.ToLower(h.Name) {
			continue
		}
		if r.hostSpace[hostName] == spaceName {
			out = append(out, &BTDevice{Name: hostName, Kind: "computer"})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	r.K.Trace().Add(r.K.Now(), sim.CatBluetooth, h.Name, "bt scan found %d devices", len(out))
	return out
}

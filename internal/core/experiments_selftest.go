package core

import (
	"errors"
	"time"
)

// X1 is the supervision self-test: an experiment that deliberately
// schedules a zero-delay self-perpetuating event loop, freezing the
// virtual clock forever while the step counter climbs — the exact
// pathology the vtime-stall watchdog exists to reap. It is registered
// in Experiments (so `cyberlab -run X1` reaches it) but intentionally
// absent from ExperimentIDs: -all and -report must never pick up an
// experiment whose purpose is to hang.
func init() { Experiments["X1"] = RunX1Spin }

// RunX1Spin refuses to run unsupervised — without an armed stall window
// or deadline nothing would ever reap the loop. Under supervision it
// never returns normally: the watchdog cancels the kernel and the run
// unwinds into a partial report carrying the stall diagnostic.
func RunX1Spin(seed uint64) (*Result, error) {
	if !SupervisionArmed() {
		return nil, errors.New("X1 spins forever at a frozen vtime by design; arm the supervisor (-stall or -deadline) so the watchdog can reap it")
	}
	w, err := NewWorld(WorldConfig{Seed: seed, MuteTrace: true})
	if err != nil {
		return nil, err
	}
	var spin func()
	spin = func() { w.K.Schedule(0, "selftest:spin", spin) }
	w.K.Schedule(0, "selftest:spin", spin)
	if err := w.K.RunFor(time.Hour); err != nil {
		return nil, err
	}
	// Unreachable under a working supervisor; reaching it means the
	// watchdog never fired, which is itself the test failure.
	r := &Result{
		ID:    "X1",
		Title: "Supervision self-test: vtime-frozen spin loop",
		Paper: "n/a (synthetic watchdog self-test)",
	}
	r.summaryf("spin loop survived %d steps without being reaped — the supervisor is not watching", w.K.Steps())
	r.CaptureObs(w.K)
	return r, nil
}

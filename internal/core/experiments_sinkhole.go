package core

import (
	"fmt"
	"time"

	"repro/internal/cnc"
	"repro/internal/host"
	"repro/internal/malware/flame"
	"repro/internal/netsim"
)

// RunE4Sinkhole reproduces the end of Section III-B: after the suicide
// command, analyzed samples showed Flame (CLIENT_TYPE_FL) was "only one
// out of four types of infected clients" — CLIENT_TYPE_SP, SPE and IP kept
// operating, "indicating the attackers can deploy new variants anytime".
// Analysts learned this by sinkholing the C&C domains and watching who
// kept checking in; this experiment performs that census.
func RunE4Sinkhole(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	lan := w.NewLAN("region", "10.70.0", false)
	center, err := cnc.NewAttackCenter(w.K, w.Internet, 20, 4)
	if err != nil {
		return nil, err
	}

	// Four variant campaigns from the same factory, one per client type.
	types := []cnc.ClientType{cnc.ClientFL, cnc.ClientSP, cnc.ClientSPE, cnc.ClientIP}
	variants := make(map[cnc.ClientType]*flame.Flame, len(types))
	for i, ct := range types {
		v, err := flame.Build(w.K, flame.Config{
			Center: center, ClientType: ct, BeaconEvery: 2 * time.Hour,
		})
		if err != nil {
			return nil, err
		}
		v.BindTo(w.Registry)
		variants[ct] = v
		for j := 0; j < 3; j++ {
			h := w.AddHost(lan, fmt.Sprintf("V%d-HOST-%d", i+1, j+1), host.WithInternet(true))
			if _, err := h.Execute(v.MainImage, true); err != nil {
				return nil, err
			}
		}
	}
	if err := w.K.RunFor(12 * time.Hour); err != nil {
		return nil, err
	}

	// Disclosure: the FL operator sends its clients the suicide command.
	variants[cnc.ClientFL].PushSuicideAll()
	if err := w.K.RunFor(6 * time.Hour); err != nil {
		return nil, err
	}
	flAliveAfterSuicide := variants[cnc.ClientFL].InfectedCount()

	// The research sinkhole: every attacker domain is re-pointed at the
	// analysts' server, which records who still checks in.
	checkins := map[string]int{}
	sinkhole := netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		if req.Path == cnc.ClientPath {
			checkins[req.Query["type"]]++
			// Answer with an empty package list so clients keep polling.
			return netsim.OK(emptyPackages())
		}
		return netsim.OK(nil)
	})
	for _, reg := range center.Pool.Registrations {
		w.Internet.UnregisterDomain(reg.Domain)
		w.Internet.RegisterDomain(reg.Domain, "198.51.100.250")
	}
	w.Internet.BindServer("198.51.100.250", sinkhole)
	if err := w.K.RunFor(48 * time.Hour); err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "E4",
		Title: "Sinkhole census: four client types, only FL suicided",
		Paper: "\"Flame clients (CLIENT_TYPE_FL) constitute only one out of four types of infected clients\"; the others stayed active",
	}
	res.metric("client_types_deployed", float64(len(types)), "types")
	res.metric("fl_agents_alive_after_suicide", float64(flAliveAfterSuicide), "agents")
	res.metric("sinkhole_checkins_fl", float64(checkins[string(cnc.ClientFL)]), "checkins")
	res.metric("sinkhole_checkins_sp", float64(checkins[string(cnc.ClientSP)]), "checkins")
	res.metric("sinkhole_checkins_spe", float64(checkins[string(cnc.ClientSPE)]), "checkins")
	res.metric("sinkhole_checkins_ip", float64(checkins[string(cnc.ClientIP)]), "checkins")
	survivorsActive := checkins[string(cnc.ClientSP)] > 0 &&
		checkins[string(cnc.ClientSPE)] > 0 &&
		checkins[string(cnc.ClientIP)] > 0
	res.metric("surviving_types", boolMetric(survivorsActive)*3, "types")
	res.Pass = flAliveAfterSuicide == 0 && checkins[string(cnc.ClientFL)] == 0 && survivorsActive
	res.summaryf("after the FL suicide 0 FL check-ins reach the sinkhole while SP/SPE/IP keep polling (%d/%d/%d check-ins)",
		checkins[string(cnc.ClientSP)], checkins[string(cnc.ClientSPE)], checkins[string(cnc.ClientIP)])
	res.notef("after the FL suicide, the sinkhole still sees SP/SPE/IP check-ins — the factory retains a foothold")
	res.CaptureObs(w.K)
	return res, nil
}

// emptyPackages is a valid GET_NEWS body carrying zero packages.
func emptyPackages() []byte { return []byte{0, 0, 0, 0} }

package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// checkpointBoundary picks a vtime strictly inside an experiment's
// event stream, so the checkpoint has both a prefix and a tail.
func checkpointBoundary(t *testing.T, id string) time.Time {
	t.Helper()
	rep := runOne(id, 1)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	events := rep.Result.Events
	if len(events) < 4 {
		t.Fatalf("%s retains only %d events; too few to split", id, len(events))
	}
	return events[len(events)/2].At
}

// TestCheckpointForkRoundTrip: capture a checkpoint mid-run, fork from
// it, and get back exactly the tail past the boundary — the verified
// prefix is muted out of the restored result.
func TestCheckpointForkRoundTrip(t *testing.T) {
	at := checkpointBoundary(t, "C1")
	cp, err := CaptureCheckpoint("C1", 1, at)
	if err != nil {
		t.Fatal(err)
	}
	if cp.PrefixLen == 0 || cp.PrefixLen >= cp.TotalLen {
		t.Fatalf("degenerate checkpoint: prefix %d of %d events", cp.PrefixLen, cp.TotalLen)
	}
	fr, err := Fork(cp)
	if err != nil {
		t.Fatal(err)
	}
	if fr.TailEvents != cp.TotalLen-cp.PrefixLen {
		t.Fatalf("fork tail = %d events, want %d", fr.TailEvents, cp.TotalLen-cp.PrefixLen)
	}
	for _, e := range fr.Result.Events {
		if !e.At.After(cp.VTime) {
			t.Fatalf("fork leaked a prefix event at %v (checkpoint %v)", e.At, cp.VTime)
		}
	}
}

// TestForkRefusesHashDrift: a checkpoint whose recorded prefix hash no
// longer matches the replay means the code or configuration changed —
// the fork must refuse, not silently diverge.
func TestForkRefusesHashDrift(t *testing.T) {
	cp, err := CaptureCheckpoint("C1", 1, checkpointBoundary(t, "C1"))
	if err != nil {
		t.Fatal(err)
	}
	cp.PrefixHash = strings.Repeat("0", len(cp.PrefixHash))
	if _, err := Fork(cp); err == nil || !strings.Contains(err.Error(), "drift") {
		t.Fatalf("hash-drifted fork = %v, want a drift refusal", err)
	}
}

// TestForkRefusesConfigMismatch: forking under a different fault
// profile than the capture is refused up front.
func TestForkRefusesConfigMismatch(t *testing.T) {
	cp, err := CaptureCheckpoint("C1", 1, checkpointBoundary(t, "C1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := SetFaultProfile("chaos"); err != nil {
		t.Fatal(err)
	}
	defer SetFaultProfile("")
	if _, err := Fork(cp); err == nil || !strings.Contains(err.Error(), "fault profile") {
		t.Fatalf("profile-mismatched fork = %v, want a refusal", err)
	}
	// ApplyConfig restores the captured configuration, after which the
	// fork verifies again.
	if err := cp.ApplyConfig(); err != nil {
		t.Fatal(err)
	}
	if _, err := Fork(cp); err != nil {
		t.Fatalf("fork after ApplyConfig: %v", err)
	}
}

// TestCheckpointFileRoundTrip: checkpoints survive the write/read cycle
// byte-for-byte in their verified fields.
func TestCheckpointFileRoundTrip(t *testing.T) {
	cp, err := CaptureCheckpoint("C1", 1, checkpointBoundary(t, "C1"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "f3.checkpoint")
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *cp {
		t.Fatalf("checkpoint round trip drifted:\n got %+v\nwant %+v", got, cp)
	}
}

package core

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/host"
	"repro/internal/malware/flame"
	"repro/internal/malware/shamoon"
	"repro/internal/malware/stuxnet"
	"repro/internal/netsim"
)

// RunT1Trends reproduces the Section V taxonomy: short campaign runs of
// all three weapons feed the trend classifier, whose profile must match
// the paper's qualitative ordering (Stuxnet/Flame sophisticated and
// targeted with suicide capability; Shamoon crude, broad and destructive
// with no uninstaller).
func RunT1Trends(seed uint64) (*Result, error) {
	// --- Stuxnet evidence ---
	w1, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	nat, err := BuildNatanz(w1, NatanzOptions{OfficeHosts: 1})
	if err != nil {
		return nil, err
	}
	if err := w1.K.RunFor(time.Hour); err != nil {
		return nil, err
	}
	if err := nat.Deliver(); err != nil {
		return nil, err
	}
	if err := w1.K.RunFor(6 * time.Hour); err != nil {
		return nil, err
	}
	nat.Plant.Stop()
	sxStats := nat.Stuxnet.Stats
	sxProfile := analysis.ClassifyTrends(analysis.TrendInput{
		Family:                 "stuxnet",
		ZeroDaysUsed:           len(sxStats.ZeroDaysUsed()) + 2, // LNK+EoP observed here; spooler/092 armed in C1
		SignedComponents:       sxStats.RootkitLoads > 0,
		ICSCapability:          sxStats.PLCCompromised,
		HardwareFingerprinting: sxStats.PayloadArmed,
		SpreadLimited:          true, // 3-infections-per-USB cap
		StolenCertificate:      sxStats.RootkitLoads > 0,
		ModulesDownloadable:    true, // the C&C update channel (II-A), exercised in the stuxnet tests
		USBInfectionVector:     sxStats.USBDrivesInfected > 0 || sxStats.InfectedHosts > 0,
		SelfRemoval:            true,
		RemoteTrigger:          true,
	})

	// --- Flame evidence ---
	w2, err := NewWorld(WorldConfig{Seed: seed + 1})
	if err != nil {
		return nil, err
	}
	esp, err := BuildEspionage(w2, EspionageOptions{Hosts: 3, DocsPerHost: 10, BeaconEvery: time.Hour})
	if err != nil {
		return nil, err
	}
	for _, m := range flame.DownloadableModules {
		esp.Flame.PushModuleAll(m)
	}
	if err := w2.K.RunFor(12 * time.Hour); err != nil {
		return nil, err
	}
	esp.Flame.PushSuicideAll()
	if err := w2.K.RunFor(4 * time.Hour); err != nil {
		return nil, err
	}
	flStats := esp.Flame.Stats
	flProfile := analysis.ClassifyTrends(analysis.TrendInput{
		Family:              "flame",
		ZeroDaysUsed:        1, // the shared LNK vector
		ForgedCertificate:   w2.PKI.ForgedCert != nil,
		CnCServerCount:      len(esp.Center.Servers),
		ModularRuntime:      true,
		SpreadLimited:       true,
		ModulesDownloadable: flStats.ModuleInstalls > len(flame.BaseModules),
		USBInfectionVector:  true,
		USBDataFerrying:     true,
		SelfRemoval:         flStats.SuicidesCompleted > 0,
		RemoteTrigger:       true,
	})

	// --- Shamoon evidence ---
	w3, err := NewWorld(WorldConfig{Seed: seed + 2, Start: shamoon.AramcoTrigger.Add(-12 * time.Hour)})
	if err != nil {
		return nil, err
	}
	ar, err := BuildAramco(w3, AramcoOptions{Workstations: 20, DocsPerHost: 3, SpreadEvery: time.Hour})
	if err != nil {
		return nil, err
	}
	if err := w3.K.RunUntil(shamoon.AramcoTrigger.Add(time.Hour)); err != nil {
		return nil, err
	}
	shProfile := analysis.ClassifyTrends(analysis.TrendInput{
		Family:                "shamoon",
		BroadWormBehaviour:    ar.Shamoon.Stats.SpreadCopies > 10,
		LegitimateDriverAbuse: ar.Shamoon.Stats.MBRsOverwritten > 0,
		Destructive:           ar.WipedCount() > 0,
	})

	res := &Result{
		ID:    "T1",
		Title: "Section V trend taxonomy",
		Paper: "sophisticated / targeted / certified / modular / USB-spreading / suiciding; Shamoon is the crude outlier without an uninstaller",
	}
	for _, p := range []analysis.TrendProfile{sxProfile, flProfile, shProfile} {
		for _, s := range p.Scores {
			res.metric(p.Family+"_"+s.Axis, float64(s.Score), "score")
		}
	}
	res.Pass = sxProfile.Score(analysis.AxisSophisticated) > shProfile.Score(analysis.AxisSophisticated) &&
		flProfile.Score(analysis.AxisSophisticated) > shProfile.Score(analysis.AxisSophisticated) &&
		sxProfile.Score(analysis.AxisTargeted) > shProfile.Score(analysis.AxisTargeted) &&
		flProfile.Score(analysis.AxisModular) >= sxProfile.Score(analysis.AxisModular) &&
		shProfile.Score(analysis.AxisSuiciding) == 0 &&
		sxProfile.Score(analysis.AxisSuiciding) > 0 && flProfile.Score(analysis.AxisSuiciding) > 0 &&
		sxProfile.Score(analysis.AxisCertified) > 0 && flProfile.Score(analysis.AxisCertified) > 0 &&
		shProfile.Score(analysis.AxisCertified) > 0
	res.summaryf("sophistication %d/%d/%d (stuxnet/flame/shamoon); only Shamoon lacks a suicide axis",
		sxProfile.Score(analysis.AxisSophisticated), flProfile.Score(analysis.AxisSophisticated),
		shProfile.Score(analysis.AxisSophisticated))
	res.block(analysis.RenderTable(sxProfile, flProfile, shProfile))
	res.CaptureObs(w1.K, w2.K, w3.K)
	return res, nil
}

// RunA1AblationPatching sweeps the patched fraction of a LAN and measures
// Stuxnet's network spread — the design-choice ablation for modelling
// vulnerabilities as patch gates.
func RunA1AblationPatching(seed uint64) (*Result, error) {
	res := &Result{
		ID:    "A1",
		Title: "Ablation: patch level vs Stuxnet spread",
		Paper: "(implied) the spooler/LNK vectors only exist because the bulletins were zero-day at the time",
	}
	fracs := []float64{0, 0.25, 0.5, 0.75, 1.0}
	const lanSize = 16
	var rates []float64
	for i, frac := range fracs {
		w, err := NewWorld(WorldConfig{Seed: seed + uint64(i)})
		if err != nil {
			return nil, err
		}
		sc, err := BuildNatanz(w, NatanzOptions{OfficeHosts: 0})
		if err != nil {
			return nil, err
		}
		patched := int(frac * lanSize)
		for j := 0; j < lanSize; j++ {
			opts := []host.Option{host.WithOS(host.Win7), host.WithShares(true)}
			if j < patched {
				opts = append(opts, host.WithPatches(stuxnet.MS10_061))
			}
			w.AddHost(sc.LAN, fmt.Sprintf("WS-%02d", j), opts...)
		}
		if err := sc.Deliver(); err != nil {
			return nil, err
		}
		if err := w.K.RunFor(72 * time.Hour); err != nil {
			return nil, err
		}
		sc.Plant.Stop()
		// Rate over the swept workstations only.
		infected := 0
		for j := 0; j < lanSize; j++ {
			if sc.Stuxnet.Infected(fmt.Sprintf("WS-%02d", j)) {
				infected++
			}
		}
		rate := float64(infected) / float64(lanSize)
		rates = append(rates, rate)
		res.metric(fmt.Sprintf("infection_rate_patched_%.0f%%", frac*100), rate, "fraction")
		res.CaptureObs(w.K)
	}
	monotone := true
	for i := 1; i < len(rates); i++ {
		if rates[i] > rates[i-1]+1e-9 {
			monotone = false
		}
	}
	res.Pass = monotone && rates[0] > 0.9 && rates[len(rates)-1] == 0
	res.summaryf("infection rate falls monotonically %.0f%%→%.0f%% as MS10-061 coverage sweeps 0→100%%",
		rates[0]*100, rates[len(rates)-1]*100)
	res.notef("spread collapses monotonically as MS10-061 coverage grows")
	return res, nil
}

// RunA2AblationAdvisory sweeps how quickly the certificate advisory lands
// and measures Flame's fake-update spread — the response-time ablation for
// the Fig. 3 attack.
func RunA2AblationAdvisory(seed uint64) (*Result, error) {
	res := &Result{
		ID:    "A2",
		Title: "Ablation: advisory response time vs fake-update spread",
		Paper: "(implied) the advisory that untrusted the certificates is what ended the update vector",
	}
	delays := []time.Duration{0, 12 * time.Hour, 48 * time.Hour}
	const fleet = 12
	var compromised []float64
	for i, delay := range delays {
		w, err := NewWorld(WorldConfig{Seed: seed + uint64(i)})
		if err != nil {
			return nil, err
		}
		sc, err := BuildEspionage(w, EspionageOptions{Hosts: fleet, DocsPerHost: 2, Domains: 10, ServerIPs: 2,
			BeaconEvery: time.Hour})
		if err != nil {
			return nil, err
		}
		sc.PushSpreadModules()
		if err := w.K.RunFor(2 * time.Hour); err != nil {
			return nil, err
		}
		// Advisory fires after the configured delay.
		w.K.Schedule(delay, "advisory", w.IssueAdvisory)
		// Victims check for updates every 6 hours over two days.
		for _, h := range sc.Hosts[1:] {
			h := h
			w.K.Every(6*time.Hour, "victim-update:"+h.Name, func() {
				sc.LAN.BrowserLaunch(h)
				netsim.CheckForUpdates(sc.LAN, h)
			})
		}
		if err := w.K.RunFor(48 * time.Hour); err != nil {
			return nil, err
		}
		n := float64(sc.Flame.Stats.UpdateInfections)
		compromised = append(compromised, n)
		res.metric(fmt.Sprintf("update_infections_advisory_after_%dh", int(delay.Hours())), n, "hosts")
		res.CaptureObs(w.K)
	}
	monotone := true
	for i := 1; i < len(compromised); i++ {
		if compromised[i] < compromised[i-1] {
			monotone = false
		}
	}
	res.Pass = monotone && compromised[0] == 0 && compromised[len(compromised)-1] == fleet-1
	res.summaryf("fake-update infections grow %.0f→%.0f of %d hosts as the advisory slips 0h→48h",
		compromised[0], compromised[len(compromised)-1], fleet-1)
	res.notef("an immediate advisory fully prevents the vector; a slow one cedes the whole LAN")
	return res, nil
}

// RunA3EpidemicCurve measures the propagation dynamics of the Shamoon
// share spread when each host can only reach a bounded number of new
// victims per round: the classic S-curve, sampled hourly until the whole
// fleet is saturated well before the hardcoded trigger.
func RunA3EpidemicCurve(seed uint64) (*Result, error) {
	start := shamoon.AramcoTrigger.Add(-48 * time.Hour)
	w, err := NewWorld(WorldConfig{Seed: seed, Start: start, MuteTrace: true})
	if err != nil {
		return nil, err
	}
	const fleet = 512
	sc, err := BuildAramco(w, AramcoOptions{
		Workstations: fleet,
		DocsPerHost:  1,
		SpreadEvery:  time.Hour,
		LeanImages:   true,
		MaxPerSweep:  3,
	})
	if err != nil {
		return nil, err
	}

	var curve []int
	w.K.Every(time.Hour, "epidemic-sample", func() {
		curve = append(curve, sc.Shamoon.InfectedCount())
	})
	if err := w.K.RunFor(36 * time.Hour); err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "A3",
		Title: "Ablation: propagation dynamics (bounded fan-out S-curve)",
		Paper: "(implied) \"the malware will attempt to copy itself to network shared folders of targets\" — saturation well before the trigger",
	}
	monotone := true
	t50, t100 := -1, -1
	for i, v := range curve {
		if i > 0 && v < curve[i-1] {
			monotone = false
		}
		if t50 < 0 && v*2 >= fleet {
			t50 = i + 1
		}
		if t100 < 0 && v >= fleet {
			t100 = i + 1
		}
	}
	res.metric("fleet_size", fleet, "hosts")
	res.metric("hours_to_50pct", float64(t50), "hours")
	res.metric("hours_to_100pct", float64(t100), "hours")
	res.metric("monotone_growth", boolMetric(monotone), "bool")
	// Early exponential phase: infections at t50 grew by more than the
	// seed host's own fan-out, i.e. secondary spread is happening.
	expPhase := t50 > 1 && t100 > t50
	res.metric("secondary_spread_observed", boolMetric(expPhase), "bool")
	res.Pass = monotone && t50 > 0 && t100 > t50 && curve[len(curve)-1] == fleet
	res.summaryf("S-curve over %d hosts: 50%% infected at %dh, saturation at %dh, growth monotone", fleet, t50, t100)
	res.notef("hourly curve (first 12 samples): %v", curve[:min(12, len(curve))])
	res.CaptureObs(w.K)
	return res, nil
}

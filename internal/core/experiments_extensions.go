package core

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/cnc"
	"repro/internal/host"
	"repro/internal/malware"
	"repro/internal/malware/duqu"
	"repro/internal/malware/gauss"
	"repro/internal/netsim"
	"repro/internal/pe"
)

// netsimOK wraps a body-capturing callback as an always-200 handler.
func netsimOK(capture func(body []byte)) netsim.Handler {
	return netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		capture(req.Body)
		return netsim.OK(nil)
	})
}

// RunE1DuquTargeting reproduces the paper's Duqu characterization
// (Sections I and V-D): extreme targeting (the dropper exits silently off
// the target list), modules "compiled and built specifically for every
// new infection", JPEG-wrapped sealed exfiltration, and the fixed-lifetime
// self-removal.
func RunE1DuquTargeting(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	lan := w.NewLAN("target-org", "10.50.0", false)

	seal, err := cnc.NewSealKeypair(w.K.RNG())
	if err != nil {
		return nil, err
	}
	targets := []string{"CA-ADMIN-1", "CA-ADMIN-2", "CA-HSM-OPS"}
	d, err := duqu.Build(w.K, duqu.Config{
		Targets:     targets,
		C2Domain:    "images.cdn.example",
		SealPub:     seal.Public,
		DriverKey:   w.PKI.StolenKey,
		DriverCert:  w.PKI.JMicronCert,
		KeylogEvery: 6 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	d.BindTo(w.Registry)

	var uploads [][]byte
	w.Internet.RegisterDomain("images.cdn.example", "203.0.113.90")
	w.Internet.BindServer("203.0.113.90", netsimOK(func(body []byte) { uploads = append(uploads, body) }))

	// A broad spear-phish wave hits ten machines; only three are on the
	// list.
	var hosts []*host.Host
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("STAFF-%02d", i+1)
		if i < len(targets) {
			name = targets[i]
		}
		h := w.AddHost(lan, name, host.WithInternet(true))
		hosts = append(hosts, h)
		if _, err := h.Execute(d.Dropper, true); err != nil {
			return nil, err
		}
	}
	if err := w.K.RunFor(48 * time.Hour); err != nil {
		return nil, err
	}

	// Per-victim builds are all distinct.
	digests := map[[32]byte]bool{}
	for _, name := range targets {
		if dg, ok := d.ModuleDigest(name); ok {
			digests[dg] = true
		}
	}
	// Exfil is JPEG-wrapped and opens only with the coordinator key.
	wrappedOK, sealedOK := true, true
	for _, body := range uploads {
		sealed, ok := duqu.UnwrapExfil(body)
		if !ok {
			wrappedOK = false
			continue
		}
		if _, err := seal.Open(sealed); err != nil {
			sealedOK = false
		}
	}

	// The lifetime deadline removes everything.
	if err := w.K.RunFor(36 * 24 * time.Hour); err != nil {
		return nil, err
	}
	artefacts := 0
	for _, h := range hosts {
		artefacts += duqu.ArtefactsPresent(h)
	}

	res := &Result{
		ID:    "E1",
		Title: "Duqu: extreme targeting and per-victim modules",
		Paper: "extremely targeted espionage; \"new modules are compiled and built specifically for every new infection\" (V-D); self-removal",
	}
	res.metric("phished_hosts", 10, "hosts")
	res.metric("targets_infected", float64(d.Stats.TargetsInfected), "hosts")
	res.metric("non_targets_refused", float64(d.Stats.NonTargetsRefused), "hosts")
	res.metric("distinct_victim_modules", float64(len(digests)), "builds")
	res.metric("jpeg_wrapped_exfils", float64(len(uploads)), "uploads")
	res.metric("exfil_opens_with_coordinator_key", boolMetric(wrappedOK && sealedOK && len(uploads) > 0), "bool")
	res.metric("artefacts_after_lifetime", float64(artefacts), "artefacts")
	res.metric("self_removals", float64(d.Stats.SelfRemovals), "hosts")
	res.Pass = d.Stats.TargetsInfected == 3 && d.Stats.NonTargetsRefused == 7 &&
		len(digests) == 3 && len(uploads) > 0 && wrappedOK && sealedOK &&
		artefacts == 0 && d.Stats.SelfRemovals == 3
	res.summaryf("%d/%d listed targets infected (%d refusals), %d distinct per-victim builds, %d JPEG-wrapped sealed uploads, 0 artefacts after lifetime",
		d.Stats.TargetsInfected, len(targets), d.Stats.NonTargetsRefused, len(digests), len(uploads))
	res.CaptureObs(w.K)
	return res, nil
}

// RunE2GaussGodel reproduces the paper's Gauss characterization (Section
// I): banking-credential theft, plus the configuration-keyed encrypted
// payload that detonates only on the intended machine and resists
// analysis everywhere else.
func RunE2GaussGodel(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	lan := w.NewLAN("beirut", "10.60.0", false)
	center, err := cnc.NewAttackCenter(w.K, w.Internet, 10, 2)
	if err != nil {
		return nil, err
	}
	g, err := gauss.Build(w.K, gauss.Config{
		Center:         center,
		GodelTargetDir: "CascadeSCADA",
		CollectEvery:   6 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	g.BindTo(w.Registry)

	godelHosts := []string{}
	w.Registry.Bind(g.GodelPayload, malware.ImplantFunc{ImplantName: "godel", Fn: func(env *malware.Env, p *host.Process, img *pe.File) {
		godelHosts = append(godelHosts, env.Host.Name)
	}})

	// Six machines with banking sessions; exactly one carries the keyed
	// configuration.
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("BANK-PC-%d", i+1)
		h := w.AddHost(lan, name, host.WithInternet(true))
		h.SeedBrowserProfile("user", []host.BrowserLogin{
			{Domain: "webmail.example", User: "u", Password: "x"},
			{Domain: fmt.Sprintf("ebanking.blombank.example/%d", i), User: "acct", Password: "pin"},
		})
		if i == 2 {
			h.FS.Write(`C:\Program Files\CascadeSCADA\hmi.exe`, []byte("x"), 0, w.K.Now())
		} else {
			h.FS.Write(`C:\Program Files\OfficeSuite\word.exe`, []byte("x"), 0, w.K.Now())
		}
		if _, err := h.Execute(g.MainImage, true); err != nil {
			return nil, err
		}
	}
	if err := w.K.RunFor(24 * time.Hour); err != nil {
		return nil, err
	}

	// The analyst's position: the resource is flagged encrypted, no key
	// recovered, and a dictionary of wrong configurations fails.
	an := &analysis.Analyzer{}
	rep, err := an.Analyze(g.MainImage, w.K.Now())
	if err != nil {
		return nil, err
	}
	var opaque, flagged bool
	for _, r := range rep.Resources {
		if r.ID == gauss.GodelResourceID {
			flagged = r.LikelyEncrypted
			opaque = r.RecoveredKey == nil && !r.DecryptsToImage
		}
	}
	dictionaryFails := g.GodelOpaqueTo([]string{"OfficeSuite", "Adobe", "WinZip", "Chrome"})

	// Banking credentials reached the coordinator.
	center.Operator().CollectAll()
	if _, err := center.Coordinator().DecryptAll(); err != nil {
		return nil, err
	}
	bankDocs := 0
	for _, doc := range center.Coordinator().Archive() {
		if doc.Name == "banking.db" {
			bankDocs++
		}
	}

	res := &Result{
		ID:    "E2",
		Title: "Gauss: banking theft and the configuration-keyed payload",
		Paper: "data stealing focused on banking information; same factory as Flame (Section I); payload encrypted to the target configuration",
	}
	res.metric("hosts_infected", float64(g.InfectedCount()), "hosts")
	res.metric("bank_credentials_matched", float64(g.Stats.BankMatches), "credentials")
	res.metric("banking_uploads_decrypted", float64(bankDocs), "docs")
	res.metric("godel_attempts", float64(g.Stats.GodelAttempts), "hosts")
	res.metric("godel_detonations", float64(g.Stats.GodelDetonations), "hosts")
	res.metric("payload_flagged_encrypted", boolMetric(flagged), "bool")
	res.metric("payload_opaque_to_analysis", boolMetric(opaque && dictionaryFails), "bool")
	res.Pass = g.InfectedCount() == 6 && g.Stats.BankMatches >= 6 && bankDocs >= 6 &&
		g.Stats.GodelDetonations == 1 && len(godelHosts) == 1 && godelHosts[0] == "BANK-PC-3" &&
		flagged && opaque && dictionaryFails
	res.summaryf("%d hosts infected, %d banking credentials matched, Godel detonated on exactly %d keyed host and stayed opaque to the analyst",
		g.InfectedCount(), g.Stats.BankMatches, g.Stats.GodelDetonations)
	res.CaptureObs(w.K)
	return res, nil
}

package core

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/host"
	"repro/internal/sim"
)

// c7Fingerprint runs a reduced C7 with the given build-worker count and
// seeding mode, and flattens everything observable — the rendered report,
// every metric, and the full obs snapshot — into one comparable string.
func c7Fingerprint(t *testing.T, workers int, eager bool) string {
	t.Helper()
	res, err := RunAramcoScaleN(7, 300, workers, eager)
	if err != nil {
		t.Fatalf("RunAramcoScaleN(workers=%d eager=%v): %v", workers, eager, err)
	}
	obsJSON, err := json.Marshal(res.Obs)
	if err != nil {
		t.Fatalf("marshal obs: %v", err)
	}
	return res.Render() + "\n" + string(obsJSON)
}

// TestShardedBuildWorkerCountInvariance is the §9 fleet-construction
// contract: 1, 4 and 8 build workers produce byte-identical experiment
// output.
func TestShardedBuildWorkerCountInvariance(t *testing.T) {
	base := c7Fingerprint(t, 1, false)
	for _, workers := range []int{4, 8} {
		if got := c7Fingerprint(t, workers, false); got != base {
			t.Fatalf("report diverged at %d build workers:\n--- 1 worker ---\n%s\n--- %d workers ---\n%s",
				workers, base, workers, got)
		}
	}
}

// TestEagerLazySeedingEquivalence: materialising document bytes at seeding
// time versus on first read must not change a single observable byte of a
// full campaign run.
func TestEagerLazySeedingEquivalence(t *testing.T) {
	lazy := c7Fingerprint(t, 1, false)
	eager := c7Fingerprint(t, 1, true)
	if lazy != eager {
		t.Fatalf("eager/lazy runs diverged:\n--- lazy ---\n%s\n--- eager ---\n%s", lazy, eager)
	}
}

// TestShardedHostStreamsMatchSpecIndex pins the RNG derivation: host i's
// stream is a pure function of the anchor and i, so rebuilding the same
// world yields identical per-host document layouts.
func TestShardedHostStreamsMatchSpecIndex(t *testing.T) {
	build := func(workers int) []string {
		w, err := NewWorld(WorldConfig{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		lan := w.NewLAN("l", "10.0.0", false)
		specs := make([]HostSpec, 20)
		for i := range specs {
			specs[i] = HostSpec{
				Name: fmt.Sprintf("H-%02d", i),
				Seed: func(h *host.Host) error {
					h.SeedDocumentsSized("u", 5, 4096)
					return nil
				},
			}
		}
		hosts, err := w.AddHostsSharded(lan, workers, specs)
		if err != nil {
			t.Fatal(err)
		}
		var layout []string
		for _, h := range hosts {
			h.FS.Walk(`C:\Users`, func(f *host.FileNode) bool {
				layout = append(layout, fmt.Sprintf("%s:%s:%d", h.Name, f.Path, f.Size()))
				return true
			})
		}
		return layout
	}
	a, b := build(1), build(6)
	if len(a) != len(b) {
		t.Fatalf("layout sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("layout[%d] = %q vs %q", i, a[i], b[i])
		}
	}
}

// TestSeedingFailureSurfacesFromShardedBuild: a host whose documents
// cannot be written must abort the build instead of silently shrinking
// the corpus (the bug SeedDocumentsSized used to hide).
func TestSeedingFailureSurfacesFromShardedBuild(t *testing.T) {
	w, err := NewWorld(WorldConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lan := w.NewLAN("l", "10.0.0", false)
	specs := []HostSpec{{
		Name: "H-00",
		Seed: func(h *host.Host) error {
			pre := h.RNG.State()
			if _, failed := h.SeedDocumentsSized("u", 3, 4096); failed != 0 {
				return fmt.Errorf("%d documents failed to seed", failed)
			}
			// Lock the corpus read-only, rewind the stream, and reseed: the
			// replayed draws pick exactly the same paths, so every write
			// fails and the counter must say so.
			var paths []string
			h.FS.Walk(`C:\Users`, func(f *host.FileNode) bool { paths = append(paths, f.Path); return true })
			for _, p := range paths {
				if err := h.FS.Write(p, nil, host.AttrReadOnly, h.K.Now()); err != nil {
					return err
				}
			}
			h.RNG = sim.NewRNG(pre)
			if _, failed := h.SeedDocumentsSized("u", 3, 4096); failed != 3 {
				return fmt.Errorf("expected 3 failed writes, got %d", failed)
			}
			return fmt.Errorf("seeding collided with read-only corpus")
		},
	}}
	if _, err := w.AddHostsSharded(lan, 1, specs); err == nil {
		t.Fatal("sharded build swallowed the seeding failure")
	}
}

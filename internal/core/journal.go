package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// The run journal (DESIGN.md §13) makes a long sweep crash-safe: an
// append-only JSONL file with one header record (the run configuration)
// followed by one record per completed experiment, each carrying a
// sha256 over its payload bytes and fsync'd before the runner moves on.
// A process killed mid-run loses at most the record it was writing;
// OpenJournal tolerates that torn final line by truncating it away.
// `cyberlab -resume` then serves every journaled outcome without
// re-executing it — and because the payload is the complete Result
// (metrics, notes, blocks, obs snapshot, trace events in lossless
// JSONL), the resumed run's report, trace and metrics artefacts are
// byte-identical to an uninterrupted run at any -parallel width.
//
// The journal itself lives on the wall-clock plane (it records wall
// durations and its record order is worker-finish order); only the
// payloads inside it are deterministic.

// journalVersion gates payload-format drift: a journal written by a
// different format refuses to resume rather than replay garbage.
const journalVersion = 1

// JournalConfig is the run configuration a journal is bound to. All
// three values are part of the determinism contract, so resuming under
// a different configuration is refused.
type JournalConfig struct {
	Seed     uint64 `json:"seed"`
	Faults   string `json:"faults"`
	Activity string `json:"activity"`
}

type journalHeader struct {
	Kind    string `json:"kind"` // "header"
	Version int    `json:"version"`
	JournalConfig
}

// journalRecord is one completed experiment. Hash is sha256 hex over
// the raw Payload bytes (or over Err when the experiment failed), so a
// bit-flipped record is detected before it is replayed.
type journalRecord struct {
	Kind    string          `json:"kind"` // "experiment"
	ID      string          `json:"id"`
	Seed    uint64          `json:"seed"`
	Err     string          `json:"err,omitempty"`
	Hash    string          `json:"hash"`
	WallMS  float64         `json:"wall_ms"` // advisory; wall-clock plane
	Payload json.RawMessage `json:"payload,omitempty"`
}

// resultPayload is the journaled (and retry-fingerprinted) encoding of
// a Result. Every field round-trips losslessly: obs.Snapshot has JSON
// tags, and the trace events use the obs JSONL codec whose round-trip
// is property-tested.
type resultPayload struct {
	ID      string       `json:"id"`
	Title   string       `json:"title"`
	Paper   string       `json:"paper,omitempty"`
	Summary string       `json:"summary,omitempty"`
	Metrics []Metric     `json:"metrics,omitempty"`
	Notes   []string     `json:"notes,omitempty"`
	Blocks  []string     `json:"blocks,omitempty"`
	Pass    bool         `json:"pass"`
	Obs     obs.Snapshot `json:"obs"`
	Events  string       `json:"events,omitempty"` // obs JSONL
}

// encodeResultPayload canonically serialises a Result (json.Marshal
// sorts map keys, so equal results produce equal bytes).
func encodeResultPayload(res *Result) ([]byte, error) {
	var ev strings.Builder
	if err := obs.WriteJSONL(&ev, res.Events); err != nil {
		return nil, err
	}
	return json.Marshal(resultPayload{
		ID: res.ID, Title: res.Title, Paper: res.Paper, Summary: res.Summary,
		Metrics: res.Metrics, Notes: res.Notes, Blocks: res.Blocks,
		Pass: res.Pass, Obs: res.Obs, Events: ev.String(),
	})
}

func decodeResultPayload(data []byte) (*Result, error) {
	var p resultPayload
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	res := &Result{
		ID: p.ID, Title: p.Title, Paper: p.Paper, Summary: p.Summary,
		Metrics: p.Metrics, Notes: p.Notes, Blocks: p.Blocks,
		Pass: p.Pass, Obs: p.Obs,
	}
	if p.Events != "" {
		events, err := obs.ParseJSONL(strings.NewReader(p.Events))
		if err != nil {
			return nil, fmt.Errorf("replay trace events: %w", err)
		}
		res.Events = events
	}
	return res, nil
}

func hashJournalBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Journal is an open run journal: the replayed outcomes of a previous
// (possibly crashed) run plus an append handle for this one.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	cfg      JournalConfig
	replayed map[string]RunReport
	served   int
	recorded int
	writeErr error
}

func journalKey(id string, seed uint64) string {
	return fmt.Sprintf("%s#%d", id, seed)
}

// OpenJournal opens (or creates) the journal at path under the given
// run configuration. A non-empty journal requires resume=true — running
// a fresh sweep onto an existing journal would silently skip its
// experiments. When resuming, every record is hash-verified, a torn
// final line (the crash signature) is truncated away, and a header that
// does not match cfg is an error.
func OpenJournal(path string, resume bool, cfg JournalConfig) (*Journal, error) {
	j := &Journal{path: path, cfg: cfg, replayed: make(map[string]RunReport)}
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	keep := 0
	if len(data) > 0 {
		if !resume {
			return nil, fmt.Errorf("journal %s already holds a run (%d bytes); pass -resume to continue it, or point -journal at a fresh file", path, len(data))
		}
		if keep, err = j.replay(data); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	// Physically drop the torn tail so the file on disk is exactly the
	// verified prefix before any new record lands after it.
	if err := f.Truncate(int64(keep)); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal %s: truncate torn tail: %w", path, err)
	}
	if _, err := f.Seek(int64(keep), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	j.f = f
	if keep == 0 {
		hdr := journalHeader{Kind: "header", Version: journalVersion, JournalConfig: cfg}
		line, err := json.Marshal(hdr)
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := j.append(line); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// replay verifies data's records and loads the completed outcomes,
// returning the byte length of the verified prefix. Only the final line
// may be damaged (every record was fsync'd before the next began, so a
// crash can tear at most the last one); damage anywhere else is
// corruption and refuses to resume.
func (j *Journal) replay(data []byte) (int, error) {
	off, lineNo := 0, 0
	for off < len(data) {
		nl := -1
		for i := off; i < len(data); i++ {
			if data[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			// No trailing newline: the final record never finished
			// writing. Drop it; the experiment re-runs.
			return off, nil
		}
		lineNo++
		final := nl == len(data)-1
		fatal, damaged := j.replayLine(data[off:nl], lineNo)
		if fatal != nil {
			return 0, fmt.Errorf("journal %s: line %d: %w", j.path, lineNo, fatal)
		}
		if damaged {
			if final {
				return off, nil
			}
			return 0, fmt.Errorf("journal %s: line %d is damaged but not the final record — the file is corrupt, refusing to resume from it", j.path, lineNo)
		}
		off = nl + 1
	}
	return off, nil
}

// replayLine verifies one record. damaged marks states a crash can
// produce (unparseable bytes, hash mismatch); fatal marks states it
// cannot (wrong header config, wrong version, structural nonsense).
func (j *Journal) replayLine(line []byte, lineNo int) (fatal error, damaged bool) {
	var probe struct {
		Kind string `json:"kind"`
	}
	if json.Unmarshal(line, &probe) != nil {
		return nil, true
	}
	switch probe.Kind {
	case "header":
		if lineNo != 1 {
			return fmt.Errorf("header record in the middle of the journal"), false
		}
		var h journalHeader
		if json.Unmarshal(line, &h) != nil {
			return nil, true
		}
		if h.Version != journalVersion {
			return fmt.Errorf("journal format v%d, this build writes v%d", h.Version, journalVersion), false
		}
		if h.JournalConfig != j.cfg {
			return fmt.Errorf("journal was recorded with seed=%d faults=%q activity=%q but this run uses seed=%d faults=%q activity=%q — a resume must replay the identical configuration",
				h.Seed, h.Faults, h.Activity, j.cfg.Seed, j.cfg.Faults, j.cfg.Activity), false
		}
		return nil, false
	case "experiment":
		if lineNo == 1 {
			return fmt.Errorf("first record is not the journal header"), false
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil {
			return nil, true
		}
		content := []byte(rec.Payload)
		if rec.Err != "" {
			content = []byte(rec.Err)
		}
		if hashJournalBytes(content) != rec.Hash {
			return nil, true
		}
		rep := RunReport{ID: rec.ID, Seed: rec.Seed, FromJournal: true}
		if rec.Err != "" {
			rep.Err = errors.New(rec.Err)
		} else {
			res, err := decodeResultPayload(rec.Payload)
			if err != nil {
				// The payload hash verified, so this is format drift in
				// the code, not disk damage.
				return fmt.Errorf("experiment %s payload does not decode: %w", rec.ID, err), false
			}
			rep.Result = res
		}
		j.replayed[journalKey(rec.ID, rec.Seed)] = rep
		return nil, false
	default:
		return fmt.Errorf("unknown record kind %q", probe.Kind), false
	}
}

// Lookup returns the journaled outcome for (id, seed), if any.
func (j *Journal) Lookup(id string, seed uint64) (RunReport, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rep, ok := j.replayed[journalKey(id, seed)]
	if ok {
		j.served++
	}
	return rep, ok
}

// Record journals one completed outcome: full result payload on
// success, error text on deterministic failure. Incomplete outcomes —
// skipped, aborted-partial, or determinism-violating reports — are
// deliberately not journaled, so a resume re-runs them. Write errors
// are sticky and surface from Close, never corrupting the report.
func (j *Journal) Record(rep RunReport) {
	if rep.Skipped || rep.Partial || rep.Violation || rep.FromJournal {
		return
	}
	rec := journalRecord{
		Kind: "experiment", ID: rep.ID, Seed: rep.Seed,
		WallMS: float64(rep.Wall) / float64(time.Millisecond),
	}
	if rep.Err != nil {
		rec.Err = rep.Err.Error()
		rec.Hash = hashJournalBytes([]byte(rec.Err))
	} else {
		payload, err := encodeResultPayload(rep.Result)
		if err != nil {
			j.fail(fmt.Errorf("encode %s: %w", rep.ID, err))
			return
		}
		rec.Payload = payload
		rec.Hash = hashJournalBytes(payload)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		j.fail(fmt.Errorf("marshal %s record: %w", rep.ID, err))
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.writeErr != nil {
		return
	}
	if err := j.appendLocked(line); err != nil {
		j.writeErr = err
	} else {
		j.recorded++
	}
}

func (j *Journal) fail(err error) {
	j.mu.Lock()
	if j.writeErr == nil {
		j.writeErr = err
	}
	j.mu.Unlock()
}

func (j *Journal) append(line []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(line)
}

// appendLocked writes one record line and fsyncs it: a record either
// fully reaches the disk before the runner moves on, or the crash tears
// only this line, which the next OpenJournal truncates.
func (j *Journal) appendLocked(line []byte) error {
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal %s: fsync: %w", j.path, err)
	}
	return nil
}

// Served reports how many lookups were satisfied from the journal.
func (j *Journal) Served() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.served
}

// Recorded reports how many fresh outcomes this run appended.
func (j *Journal) Recorded() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recorded
}

// Close flushes and closes the journal, surfacing any write error that
// occurred during the run.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var errs []error
	if j.writeErr != nil {
		errs = append(errs, j.writeErr)
	}
	if j.f != nil {
		if err := j.f.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("journal %s: fsync: %w", j.path, err))
		}
		if err := j.f.Close(); err != nil {
			errs = append(errs, fmt.Errorf("journal %s: close: %w", j.path, err))
		}
		j.f = nil
	}
	return errors.Join(errs...)
}

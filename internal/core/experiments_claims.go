package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/host"
	"repro/internal/malware/flame"
	"repro/internal/malware/shamoon"
	"repro/internal/malware/stuxnet"
	"repro/internal/netsim"
	"repro/internal/plc"
	"repro/internal/sim"
	"repro/internal/usb"
	"repro/internal/users"
)

// RunC1ZeroDays verifies the "four zero-day exploits" claim: MS10-046
// (LNK), MS10-061 (spooler), MS10-073 and MS10-092 (EoP) all fire in a
// single campaign, and each is individually blocked by its patch.
func RunC1ZeroDays(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	sc, err := BuildNatanz(w, NatanzOptions{OfficeHosts: 0})
	if err != nil {
		return nil, err
	}
	defer sc.Plant.Stop()
	lan := sc.LAN
	// Victim A: everything unpatched -> LNK + MS10-073 EoP.
	// Victim B: MS10-073 patched -> falls back to MS10-092.
	// Victim C: reached over the network -> MS10-061 spooler.
	a := sc.Engineer
	b := w.AddHost(lan, "VICTIM-B", host.WithOS(host.Win7), host.WithShares(true), host.WithPatches(stuxnet.MS10_073))
	c := w.AddHost(lan, "VICTIM-C", host.WithOS(host.Win7), host.WithShares(true))
	_ = c

	if err := sc.Deliver(); err != nil { // LNK on A (user context -> EoP 073)
		return nil, err
	}
	// Deliver to B by LNK as well (user context -> EoP 092).
	b.InsertUSB(sc.Delivery)
	if err := b.BrowseRemovable(); err != nil {
		return nil, err
	}
	// Let the spooler spread reach C.
	if err := w.K.RunFor(48 * time.Hour); err != nil {
		return nil, err
	}

	zd := sc.Stuxnet.Stats.ZeroDaysUsed()
	res := &Result{
		ID:    "C1",
		Title: "Four zero-day exploits in one campaign",
		Paper: "MS10-046, MS10-061, MS10-073, MS10-092 — \"an unprecedented set of four zero-day exploits\"",
	}
	res.metric("distinct_zero_days", float64(len(zd)), "exploits")
	res.metric("hosts_infected", float64(sc.Stuxnet.InfectedCount()), "hosts")
	res.notef("zero-days fired: %s", strings.Join(zd, ", "))

	// Patch gates: a fully patched host resists every vector.
	hardened := w.AddHost(lan, "HARDENED", host.WithOS(host.Win7), host.WithShares(true),
		host.WithPatches(stuxnet.MS10_046, stuxnet.MS10_061, stuxnet.MS10_073, stuxnet.MS10_092))
	hardened.InsertUSB(sc.Delivery)
	if err := hardened.BrowseRemovable(); err != nil {
		return nil, err
	}
	if err := w.K.RunFor(48 * time.Hour); err != nil {
		return nil, err
	}
	res.metric("fully_patched_host_resisted", boolMetric(!sc.Stuxnet.Infected("HARDENED")), "bool")
	res.Pass = len(zd) == 4 && a != nil && !sc.Stuxnet.Infected("HARDENED")
	res.summaryf("all %d zero-days fired (%s); %d hosts infected; fully patched host resisted every vector",
		len(zd), strings.Join(zd, ", "), sc.Stuxnet.InfectedCount())
	res.CaptureObs(w.K)
	return res, nil
}

// RunC2Centrifuge verifies the frequency-attack physics claims: the
// 807–1210 Hz trigger band, the 1410 -> 2 -> 1064 Hz profile destroying
// machines, and the replayed normal readings blinding operator and safety
// system while the attack runs.
func RunC2Centrifuge(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	// Control: identical plant without malware runs clean for a week.
	control := plc.NewPlant(w.K, plc.PlantConfig{Name: "control", MachinesPerDrive: 6})
	if err := w.K.RunFor(7 * 24 * time.Hour); err != nil {
		return nil, err
	}
	controlDestroyed := control.DestroyedCount()
	controlStress := 0.0
	for _, m := range control.Centrifuges() {
		controlStress += m.Stress
	}
	control.Stop()

	// Attack run.
	sc, err := BuildNatanz(w, NatanzOptions{OfficeHosts: 0, MachinesPerDrive: 6})
	if err != nil {
		return nil, err
	}
	defer sc.Plant.Stop()
	if err := w.K.RunFor(time.Hour); err != nil {
		return nil, err
	}
	if err := sc.Deliver(); err != nil {
		return nil, err
	}
	if err := w.K.RunFor(40 * time.Minute); err != nil {
		return nil, err
	}
	blind := sc.Plant.Operator.AllNormal() && !sc.Plant.Safety.Tripped
	if err := w.K.RunFor(3 * time.Hour); err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "C2",
		Title: "Centrifuge frequency attack (1410/2/1064 Hz)",
		Paper: "trigger 807-1210 Hz; excursions to 1410 then 2 then 1064 Hz destroy machines; operator and safety system see recorded normal values",
	}
	res.metric("control_week_destroyed", float64(controlDestroyed), "machines")
	res.metric("control_week_total_stress", controlStress, "stress")
	res.metric("attack_destroyed", float64(sc.Plant.DestroyedCount()), "machines")
	res.metric("attack_waves", float64(sc.Stuxnet.Stats.AttacksLaunched), "waves")
	res.metric("monitors_blind_during_attack", boolMetric(blind), "bool")
	res.metric("normal_hz", plc.NormalHz, "Hz")
	res.metric("attack_high_hz", plc.AttackHighHz, "Hz")
	res.metric("attack_low_hz", plc.AttackLowHz, "Hz")
	res.Pass = controlDestroyed == 0 && controlStress == 0 &&
		sc.Plant.DestroyedCount() > 0 && blind
	res.summaryf("control week: 0 destroyed, 0 stress; attack destroyed %d machines in %d wave(s) with monitors blind",
		sc.Plant.DestroyedCount(), sc.Stuxnet.Stats.AttacksLaunched)
	res.CaptureObs(w.K)
	return res, nil
}

// RunC3Targeting verifies the selectivity claim: the payload fires only
// against a Profibus CP with the Finnish/Iranian drive pair.
func RunC3Targeting(seed uint64) (*Result, error) {
	type variant struct {
		name    string
		vendors []string
		cpType  string
	}
	variants := []variant{
		{"natanz-match", []string{plc.VendorFinnish, plc.VendorIranian}, ""},
		{"wrong-vendors", []string{"Siemens", "ABB"}, ""},
		{"no-profibus", []string{plc.VendorFinnish, plc.VendorIranian}, "CP 443-1 ETHERNET"},
	}
	res := &Result{
		ID:    "C3",
		Title: "Stuxnet payload selectivity (hardware fingerprint)",
		Paper: "triggers only on Profibus CP; damaging payload only with the two frequency-converter vendors",
	}
	pass := true
	matchDestroyed := 0
	for i, v := range variants {
		w, err := NewWorld(WorldConfig{Seed: seed + uint64(i)})
		if err != nil {
			return nil, err
		}
		sc, err := BuildNatanz(w, NatanzOptions{OfficeHosts: 0, DriveVendors: v.vendors, CPType: v.cpType, MachinesPerDrive: 4})
		if err != nil {
			return nil, err
		}
		if err := w.K.RunFor(time.Hour); err != nil {
			return nil, err
		}
		if err := sc.Deliver(); err != nil {
			return nil, err
		}
		if err := w.K.RunFor(6 * time.Hour); err != nil {
			return nil, err
		}
		destroyed := sc.Plant.DestroyedCount()
		res.metric(v.name+"_destroyed", float64(destroyed), "machines")
		res.metric(v.name+"_payload_armed", boolMetric(sc.Stuxnet.Stats.PayloadArmed), "bool")
		switch v.name {
		case "natanz-match":
			matchDestroyed = destroyed
			pass = pass && destroyed > 0 && sc.Stuxnet.Stats.PayloadArmed
		default:
			pass = pass && destroyed == 0 && !sc.Stuxnet.Stats.PayloadArmed
		}
		sc.Plant.Stop()
		res.CaptureObs(w.K)
	}
	res.Pass = pass
	res.notef("only the matching plant is damaged; others stay dormant or untouched")
	res.summaryf("matching plant armed and lost %d machines; wrong-vendor and no-Profibus variants stayed dormant with 0 destroyed",
		matchDestroyed)
	return res, nil
}

// RunC4FlameSize verifies the size claims: ~900 KB bare-bones installer
// growing to ~20 MB fully deployed via C&C module downloads.
func RunC4FlameSize(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	sc, err := BuildEspionage(w, EspionageOptions{Hosts: 1, DocsPerHost: 1, Domains: 10, ServerIPs: 2,
		BeaconEvery: time.Hour})
	if err != nil {
		return nil, err
	}
	bare := sc.Flame.DeployedBytes(sc.Patient0.Name)
	for _, m := range flame.DownloadableModules {
		if err := sc.Flame.PushModuleAll(m); err != nil {
			return nil, err
		}
	}
	if err := w.K.RunFor(3 * time.Hour); err != nil {
		return nil, err
	}
	full := sc.Flame.DeployedBytes(sc.Patient0.Name)

	res := &Result{
		ID:    "C4",
		Title: "Flame size: bare-bones vs fully deployed",
		Paper: "900 KB bare-bones; ~20 MB when fully deployed; modules downloaded and updated from C&C",
	}
	res.metric("bare_bytes", float64(bare), "bytes")
	res.metric("deployed_bytes", float64(full), "bytes")
	res.metric("growth_ratio", float64(full)/float64(bare), "x")
	res.metric("modules_installed", float64(sc.Flame.Agent(sc.Patient0.Name).InstalledCount()), "modules")
	res.Pass = bare > 700*1024 && bare < 1200*1024 && full > 15<<20 && full < 25<<20
	res.summaryf("%d KB bare-bones grew to %.1f MB (%0.1fx) after %d modules arrived over C&C",
		bare/1024, float64(full)/(1<<20), float64(full)/float64(bare),
		sc.Flame.Agent(sc.Patient0.Name).InstalledCount())
	res.CaptureObs(w.K)
	return res, nil
}

// RunC5ExfilVolume measures one week of exfiltration volume landing on
// the C&C servers — the paper reports 5.5 GB on one server in a week; our
// synthetic corpus reproduces the *continuous multi-megabyte* shape.
func RunC5ExfilVolume(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed, MuteTrace: true})
	if err != nil {
		return nil, err
	}
	sc, err := BuildEspionage(w, EspionageOptions{
		Hosts: 12, DocsPerHost: 150, Domains: 10, ServerIPs: 2,
		BeaconEvery: 4 * time.Hour, CollectEvery: 12 * time.Hour,
		Microphones: true,
	})
	if err != nil {
		return nil, err
	}
	for _, h := range sc.Hosts[1:] {
		if _, err := h.Execute(sc.Flame.MainImage, true); err != nil {
			return nil, err
		}
	}
	// The operator reviews metadata daily and tasks every reported file.
	tasked := map[string]bool{}
	w.K.Every(24*time.Hour, "operator-review", func() {
		op := sc.Center.Operator()
		op.CollectAll()
		n, err := sc.Center.Coordinator().DecryptAll()
		if err != nil || n == 0 {
			return
		}
		for _, doc := range sc.Center.Coordinator().Archive() {
			text := string(doc.Data)
			if !strings.HasPrefix(text, "jimmy: ") {
				continue
			}
			path := strings.Fields(text)[1]
			key := doc.ClientID + "|" + path
			if tasked[key] {
				continue
			}
			tasked[key] = true
			op.PushCommand(doc.ClientID, flame.PkgSteal, []byte(path))
		}
	})
	if err := w.K.RunFor(7 * 24 * time.Hour); err != nil {
		return nil, err
	}

	total := sc.Center.TotalStolenBytes()
	perServer := total / int64(len(sc.Center.Servers))
	res := &Result{
		ID:    "C5",
		Title: "Weekly exfiltration volume",
		Paper: "5.5 GB of stolen data on one sample C&C server in one week",
	}
	res.metric("total_stolen_bytes_week", float64(total), "bytes")
	res.metric("per_server_bytes_week", float64(perServer), "bytes")
	res.metric("documents_stolen", float64(sc.Flame.Stats.DocumentsStolen), "docs")
	res.metric("metadata_records", float64(sc.Flame.Stats.MetadataRecords), "records")
	res.metric("audio_captures", float64(sc.Flame.Stats.AudioCaptures), "clips")
	res.Pass = total > 20<<20 && sc.Flame.Stats.DocumentsStolen > 100
	res.notef("synthetic corpus is smaller than a real ministry's; the shape — continuous two-stage exfil — is what reproduces")
	res.summaryf("%.1f MB landed on the servers in one simulated week (%d documents, %d audio clips); continuous two-stage shape reproduced",
		float64(total)/(1<<20), sc.Flame.Stats.DocumentsStolen, sc.Flame.Stats.AudioCaptures)
	res.CaptureObs(w.K)
	return res, nil
}

// RunC6Suicide verifies the SUICIDE claim: after the broadcast command,
// forensics finds zero artefacts on previously infected machines.
func RunC6Suicide(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	sc, err := BuildEspionage(w, EspionageOptions{Hosts: 5, DocsPerHost: 10, Domains: 10, ServerIPs: 2,
		BeaconEvery: 2 * time.Hour})
	if err != nil {
		return nil, err
	}
	for _, h := range sc.Hosts[1:] {
		if _, err := h.Execute(sc.Flame.MainImage, true); err != nil {
			return nil, err
		}
	}
	if err := w.K.RunFor(12 * time.Hour); err != nil {
		return nil, err
	}
	artefactsBefore := 0
	for _, h := range sc.Hosts {
		artefactsBefore += flame.ArtefactsPresent(h)
	}
	infectedBefore := sc.Flame.InfectedCount()

	sc.Flame.PushSuicideAll()
	if err := w.K.RunFor(6 * time.Hour); err != nil {
		return nil, err
	}
	artefactsAfter := 0
	for _, h := range sc.Hosts {
		artefactsAfter += flame.ArtefactsPresent(h)
	}

	res := &Result{
		ID:    "C6",
		Title: "SUICIDE: complete self-removal",
		Paper: "locates every file, removes it, overwrites to prevent recovery; no active infections afterwards",
	}
	res.metric("infected_before", float64(infectedBefore), "hosts")
	res.metric("artefacts_before", float64(artefactsBefore), "artefacts")
	res.metric("artefacts_after", float64(artefactsAfter), "artefacts")
	res.metric("live_agents_after", float64(sc.Flame.InfectedCount()), "agents")
	res.metric("suicides_completed", float64(sc.Flame.Stats.SuicidesCompleted), "hosts")
	res.Pass = infectedBefore == 5 && artefactsBefore > 0 && artefactsAfter == 0 && sc.Flame.InfectedCount() == 0
	res.summaryf("%d artefacts across %d infected hosts dropped to %d after the broadcast; 0 live agents remain",
		artefactsBefore, infectedBefore, artefactsAfter)
	res.CaptureObs(w.K)
	return res, nil
}

// RunC7AramcoScale reproduces the 30,000-workstation destruction on the
// partitioned multi-site world (DESIGN.md §14): six site kernels — the
// headquarters hub plus five regional offices — saturate over their own
// shares after a cross-site carry, then every machine wipes at the
// hardcoded trigger, stops booting, and reports home to the hub through
// the epoch mailboxes.
func RunC7AramcoScale(seed uint64) (*Result, error) {
	return RunAramcoPartitionedN(seed, 30000, aramcoSiteCount, 0, 0, false)
}

// runAramcoScale is the single-kernel C7 slice the reduced benches and
// substrate tests drive (the registry C7 runs the partitioned world).
func runAramcoScale(seed uint64, fleet int) (*Result, error) {
	return RunAramcoScaleN(seed, fleet, 0, false)
}

// RunAramcoScaleN is the C7 runner with its fleet size, build-worker
// count, and seeding mode exposed. Reports are byte-identical across any
// workers value and across eager/lazy seeding — the property the
// determinism tests and the bench lane pin. The fleet is explicitly
// silent (users.MixNone) so the frozen BENCH_C7.json baseline is immune
// to the -activity global; RunAramcoBusyN is the populated twin.
func RunAramcoScaleN(seed uint64, fleet, workers int, eagerDocs bool) (*Result, error) {
	return runAramcoScaleMix(seed, fleet, workers, eagerDocs, users.MixNone)
}

func runAramcoScaleMix(seed uint64, fleet, workers int, eagerDocs bool, mix users.Mix) (*Result, error) {
	start := shamoon.AramcoTrigger.Add(-24 * time.Hour)
	w, err := NewWorld(WorldConfig{Seed: seed, Start: start, MuteTrace: true})
	if err != nil {
		return nil, err
	}
	sc, err := BuildAramco(w, AramcoOptions{
		Workstations: fleet,
		DocsPerHost:  2,
		SpreadEvery:  2 * time.Hour,
		LeanImages:   true,
		BuildWorkers: workers,
		EagerDocs:    eagerDocs,
		Activity:     mix,
	})
	if err != nil {
		return nil, err
	}
	if err := w.K.RunUntil(shamoon.AramcoTrigger.Add(2 * time.Hour)); err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "C7",
		Title: "Aramco-scale destruction",
		Paper: "complete destruction of ~30,000 workstations; trigger August 15, 2012, 08:08 UTC",
	}
	res.metric("fleet_size", float64(fleet), "hosts")
	res.metric("infected", float64(sc.Shamoon.InfectedCount()), "hosts")
	res.metric("wiped_unbootable", float64(sc.WipedCount()), "hosts")
	res.metric("mbrs_overwritten", float64(sc.Shamoon.Stats.MBRsOverwritten), "hosts")
	res.metric("files_overwritten", float64(sc.Shamoon.Stats.FilesWiped), "files")
	res.metric("reports_sent", float64(sc.Shamoon.Stats.ReportsSent), "reports")
	// Everything wiped exactly at/after the hardcoded instant.
	wipedBefore := 0
	for _, h := range sc.Hosts {
		for _, e := range h.EventLog() {
			if strings.Contains(e.Message, "host wiped") && e.At.Before(shamoon.AramcoTrigger) {
				wipedBefore++
			}
		}
	}
	res.metric("wiped_before_trigger", float64(wipedBefore), "hosts")
	if sc.Users != nil {
		res.metric("benign_agents", float64(sc.Users.Stats.Agents), "agents")
		res.metric("benign_actions", float64(sc.Users.Stats.Actions()), "actions")
	}
	res.Pass = sc.Shamoon.InfectedCount() == fleet && sc.WipedCount() == fleet && wipedBefore == 0
	res.summaryf("%d/%d workstations infected and left unbootable; 0 wiped before the hardcoded trigger instant",
		sc.WipedCount(), fleet)
	res.CaptureObs(w.K)
	return res, nil
}

// RunC8JPEGBug verifies the coding-mistake claim: wiped files contain only
// the small upper fragment of the JPEG, against the intended full
// overwrite (the ablation).
func RunC8JPEGBug(seed uint64) (*Result, error) {
	var kernels []*sim.Kernel
	run := func(bug bool) (fragBytes float64, fullOverwrite bool, err error) {
		w, err := NewWorld(WorldConfig{Seed: seed, Start: shamoon.AramcoTrigger.Add(-2 * time.Hour)})
		if err != nil {
			return 0, false, err
		}
		kernels = append(kernels, w.K)
		b := bug
		sc, err := BuildAramco(w, AramcoOptions{Workstations: 1, DocsPerHost: 20, JPEGBug: &b})
		if err != nil {
			return 0, false, err
		}
		if err := w.K.RunUntil(shamoon.AramcoTrigger.Add(time.Hour)); err != nil {
			return 0, false, err
		}
		h := sc.Hosts[0]
		sizes := map[int]int{}
		for _, f := range h.FS.Glob(`c:\users`) {
			sizes[f.Size()]++
		}
		if len(sizes) == 1 {
			for sz := range sizes {
				return float64(sz), sz > shamoon.JPEGFragmentLen, nil
			}
		}
		return -1, true, nil
	}
	buggyFrag, buggyFull, err := run(true)
	if err != nil {
		return nil, err
	}
	fixedFrag, fixedFull, err := run(false)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "C8",
		Title: "JPEG overwrite bug (partial fragment only)",
		Paper: "files overwritten only by the small upper part of the JPEG image due to a coding mistake",
	}
	res.metric("buggy_overwrite_bytes", buggyFrag, "bytes")
	res.metric("buggy_writes_full_image", boolMetric(buggyFull), "bool")
	res.metric("fixed_overwrite_uniform_size", fixedFrag, "bytes")
	res.metric("fixed_preserves_file_size", boolMetric(!fixedFull || fixedFrag < 0), "bool")
	res.Pass = buggyFrag == shamoon.JPEGFragmentLen && !buggyFull
	res.notef("buggy wiper leaves every file exactly %d bytes; correct wiper spans original sizes", shamoon.JPEGFragmentLen)
	res.summaryf("buggy wiper left every file exactly %.0f bytes (the JPEG fragment); corrected wiper preserves original sizes",
		buggyFrag)
	res.CaptureObs(kernels...)
	return res, nil
}

// RunC9Reporter verifies the reporter telemetry claim: an HTTP GET
// carrying the domain name, overwrite count, IP address, and f1.inf.
func RunC9Reporter(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed, Start: shamoon.AramcoTrigger.Add(-4 * time.Hour)})
	if err != nil {
		return nil, err
	}
	sc, err := BuildAramco(w, AramcoOptions{Workstations: 3, DocsPerHost: 15})
	if err != nil {
		return nil, err
	}
	if err := w.K.RunUntil(shamoon.AramcoTrigger.Add(time.Hour)); err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "C9",
		Title: "Shamoon reporter telemetry",
		Paper: "HTTP GET with the infected system's domain name, number of overwritten files, IP address, and the f1.inf list",
	}
	res.metric("reports_received", float64(len(sc.Reports)), "reports")
	ok := len(sc.Reports) > 0
	fieldsOK := true
	for _, rep := range sc.Reports {
		if rep.Method != "GET" || rep.Query["mydata"] != "ARAMCO" ||
			rep.Query["uid"] == "" || rep.Query["state"] == "" || rep.Query["state"] == "0" ||
			len(rep.Body) == 0 {
			fieldsOK = false
		}
	}
	res.metric("all_reports_carry_four_fields", boolMetric(ok && fieldsOK), "bool")
	res.Pass = ok && fieldsOK
	res.summaryf("%d reports received, each a GET carrying domain, overwrite count, IP, and the f1.inf list",
		len(sc.Reports))
	res.CaptureObs(w.K)
	return res, nil
}

// RunC10AirGap verifies the hidden-USB-database claim: documents from a
// disconnected zone reach the C&C once the stick revisits a connected
// infected host.
func RunC10AirGap(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	sc, err := BuildEspionage(w, EspionageOptions{Hosts: 1, DocsPerHost: 5, Domains: 10, ServerIPs: 2})
	if err != nil {
		return nil, err
	}
	connected := sc.Patient0
	connected.AutorunEnabled = true

	agLAN := w.NewLAN("protected-zone", "10.99.0", true)
	protectedHost := w.AddHost(agLAN, "PROTECTED", host.WithAutorun(true))
	protectedHost.SeedDocuments("scientist", 40)

	stick := usb.NewDrive("COURIER")
	connected.InsertUSB(stick)
	connected.RemoveUSB()
	protectedHost.InsertUSB(stick)
	if err := protectedHost.BrowseRemovable(); err != nil {
		return nil, err
	}
	parked := 0
	if stick.HiddenDB != nil {
		parked = stick.HiddenDB.Len()
	}
	protectedHost.RemoveUSB()
	connected.InsertUSB(stick)

	op := sc.Center.Operator()
	op.CollectAll()
	decrypted, err := sc.Center.Coordinator().DecryptAll()
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "C10",
		Title: "Air-gap exfiltration via hidden USB database",
		Paper: "hidden database on USB sticks ferries leaked documents out of protected (no-internet) environments",
	}
	res.metric("protected_host_infected", boolMetric(sc.Flame.Agent("PROTECTED") != nil), "bool")
	res.metric("documents_parked_on_stick", float64(parked), "docs")
	res.metric("documents_reaching_center", float64(decrypted), "docs")
	res.metric("ferried_total", float64(sc.Flame.Stats.AirGapDocsFerried), "docs")
	res.Pass = parked > 0 && sc.Flame.Stats.AirGapDocsFerried == parked && decrypted >= parked
	res.summaryf("%d documents parked in the stick's hidden database, all %d ferried out and decrypted at the center",
		parked, sc.Flame.Stats.AirGapDocsFerried)
	res.CaptureObs(w.K)
	return res, nil
}

// RunC11Bluetooth verifies the BEETLEJUICE claim: the infected machine
// beacons as discoverable and exfiltrates the nearby device inventory.
func RunC11Bluetooth(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	sc, err := BuildEspionage(w, EspionageOptions{Hosts: 2, DocsPerHost: 2, Domains: 10, ServerIPs: 2,
		Bluetooth: true, BeaconEvery: time.Hour, CollectEvery: 2 * time.Hour})
	if err != nil {
		return nil, err
	}
	office := "riyadh-office"
	for i, h := range sc.Hosts {
		w.Radio.PlaceHost(h, office)
		_ = i
	}
	for i := 0; i < 4; i++ {
		w.Radio.PlaceDevice(office, &netsim.BTDevice{
			Name: fmt.Sprintf("Phone-%d", i+1), Kind: "phone", Owner: fmt.Sprintf("owner%d", i+1),
		})
	}
	if err := sc.Flame.PushModuleAll(flame.ModBeetlejuice); err != nil {
		return nil, err
	}
	if err := w.K.RunFor(12 * time.Hour); err != nil {
		return nil, err
	}

	op := sc.Center.Operator()
	op.CollectAll()
	if _, err := sc.Center.Coordinator().DecryptAll(); err != nil {
		return nil, err
	}
	inventoried := map[string]bool{}
	for _, doc := range sc.Center.Coordinator().Archive() {
		text := string(doc.Data)
		if strings.Contains(text, "beetlejuice: device=") {
			inventoried[text] = true
		}
	}

	res := &Result{
		ID:    "C11",
		Title: "BEETLEJUICE bluetooth reconnaissance",
		Paper: "enumerates devices around the infected machine and turns itself into a discoverable beacon",
	}
	res.metric("bt_scans", float64(sc.Flame.Stats.BluetoothScans), "scans")
	res.metric("infected_host_beaconing", boolMetric(w.Radio.IsBeaconing(sc.Patient0)), "bool")
	res.metric("distinct_device_sightings", float64(len(inventoried)), "records")
	res.Pass = sc.Flame.Stats.BluetoothScans > 0 && w.Radio.IsBeaconing(sc.Patient0) && len(inventoried) >= 4
	res.summaryf("%d bluetooth scans inventoried %d distinct nearby devices; infected machine beacons as discoverable",
		sc.Flame.Stats.BluetoothScans, len(inventoried))
	res.CaptureObs(w.K)
	return res, nil
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// payloadBytes canonically serialises a report's result, so two runs can
// be compared byte-for-byte (the same encoding the journal persists).
func payloadBytes(t *testing.T, rep RunReport) []byte {
	t.Helper()
	if rep.Err != nil {
		t.Fatalf("%s: %v", rep.ID, rep.Err)
	}
	b, err := encodeResultPayload(rep.Result)
	if err != nil {
		t.Fatalf("%s: encode: %v", rep.ID, err)
	}
	return b
}

// TestWatchdogReapsX1Spin is the acceptance gate for the vtime-stall
// watchdog: the synthetic spin experiment freezes the virtual clock
// forever, and the supervisor must reap it with a stall diagnostic and
// a balanced event pool.
func TestWatchdogReapsX1Spin(t *testing.T) {
	EnableSupervision(SuperviseConfig{Stall: 60 * time.Millisecond})
	defer DisableSupervision()

	rep := runOne("X1", 1)
	if !rep.Partial {
		t.Fatalf("X1 was not reaped: err=%v", rep.Err)
	}
	if !errors.Is(rep.Err, sim.ErrStalled) {
		t.Fatalf("X1 abort cause = %v, want ErrStalled", rep.Err)
	}
	if !strings.Contains(rep.Err.Error(), "vtime") {
		t.Fatalf("abort error carries no diagnostic: %v", rep.Err)
	}
	if strings.Contains(rep.Err.Error(), "pool leaked") {
		t.Fatalf("abort leaked pooled events: %v", rep.Err)
	}
}

// TestX1RefusesUnsupervised: without an armed supervisor the spin
// self-test must refuse to start rather than hang the process.
func TestX1RefusesUnsupervised(t *testing.T) {
	rep := runOne("X1", 1)
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "arm the supervisor") {
		t.Fatalf("unsupervised X1 = %v, want an arm-the-supervisor refusal", rep.Err)
	}
	if rep.Partial {
		t.Fatal("refusal must not be a partial report")
	}
}

// TestWatchdogDoesNotDisturbSiblings is the second acceptance gate: a
// reaped experiment must leave sibling experiments' output bytes
// untouched, even when they share a worker pool with the spinner.
func TestWatchdogDoesNotDisturbSiblings(t *testing.T) {
	ids := []string{"F3", "C1"}
	baseline := RunExperiments(ids, 1, 1)
	want := [][]byte{payloadBytes(t, baseline[0]), payloadBytes(t, baseline[1])}

	EnableSupervision(SuperviseConfig{Stall: 80 * time.Millisecond})
	defer DisableSupervision()
	reports := RunExperiments([]string{"F3", "X1", "C1"}, 1, 2)
	if !reports[1].Partial || !errors.Is(reports[1].Err, sim.ErrStalled) {
		t.Fatalf("X1 not reaped in the pool: %+v", reports[1].Err)
	}
	for i, ri := range []int{0, 2} {
		got := payloadBytes(t, reports[ri])
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("sibling %s bytes changed when X1 was reaped next to it", reports[ri].ID)
		}
	}
}

// registerTempExperiment installs a runner under a test-only ID and
// returns its cleanup.
func registerTempExperiment(t *testing.T, id string, r Runner) {
	t.Helper()
	Experiments[id] = r
	t.Cleanup(func() { delete(Experiments, id) })
}

// TestDeadlineAbortsLongExperiment: an experiment whose vtime advances
// happily (so the stall watchdog stays quiet) but whose wall clock
// exceeds the per-experiment deadline is aborted with ErrDeadline.
func TestDeadlineAbortsLongExperiment(t *testing.T) {
	registerTempExperiment(t, "ZZ-wall", func(seed uint64) (*Result, error) {
		w, err := NewWorld(WorldConfig{Seed: seed, MuteTrace: true})
		if err != nil {
			return nil, err
		}
		for i := 0; i < 20_000; i++ {
			w.K.Schedule(time.Duration(i+1)*time.Second, "slow", func() {
				time.Sleep(500 * time.Microsecond)
			})
		}
		if err := w.K.RunFor(30_000 * time.Second); err != nil {
			return nil, err
		}
		return nil, errors.New("ZZ-wall ran to completion under a deadline that should have reaped it")
	})
	EnableSupervision(SuperviseConfig{Deadline: 60 * time.Millisecond})
	defer DisableSupervision()

	rep := runOne("ZZ-wall", 1)
	if !rep.Partial || !errors.Is(rep.Err, sim.ErrDeadline) {
		t.Fatalf("deadline report = partial=%v err=%v, want partial ErrDeadline", rep.Partial, rep.Err)
	}
	if strings.Contains(rep.Err.Error(), "pool leaked") {
		t.Fatalf("deadline abort leaked pooled events: %v", rep.Err)
	}
}

// TestShutdownCancelsInFlightAndSkipsQueued: a graceful shutdown aborts
// the running experiment at its next step boundary and skips everything
// not yet started.
func TestShutdownCancelsInFlightAndSkipsQueued(t *testing.T) {
	defer ResetShutdown()
	started := make(chan struct{})
	var once sync.Once
	registerTempExperiment(t, "ZZ-interrupt", func(seed uint64) (*Result, error) {
		w, err := NewWorld(WorldConfig{Seed: seed, MuteTrace: true})
		if err != nil {
			return nil, err
		}
		for i := 0; i < 20_000; i++ {
			w.K.Schedule(time.Duration(i+1)*time.Second, "tick", func() {
				once.Do(func() { close(started) })
				time.Sleep(500 * time.Microsecond)
			})
		}
		if err := w.K.RunFor(30_000 * time.Second); err != nil {
			return nil, err
		}
		return nil, errors.New("ZZ-interrupt survived the shutdown")
	})
	go func() {
		<-started
		RequestShutdown(errors.New("test interrupt"))
	}()
	reports := RunExperiments([]string{"ZZ-interrupt", "F3"}, 1, 1)
	if !reports[0].Partial || !strings.Contains(reports[0].Err.Error(), "test interrupt") {
		t.Fatalf("in-flight report = partial=%v err=%v, want aborted by the interrupt", reports[0].Partial, reports[0].Err)
	}
	if !reports[1].Skipped || !strings.Contains(reports[1].Err.Error(), "test interrupt") {
		t.Fatalf("queued report = skipped=%v err=%v, want skipped", reports[1].Skipped, reports[1].Err)
	}
	if ShutdownCause() == nil {
		t.Fatal("shutdown cause lost")
	}
}

// TestRetryFlagsDeterminismViolation: a retried experiment whose second
// attempt produces different bytes is a determinism violation, never a
// silent recovery.
func TestRetryFlagsDeterminismViolation(t *testing.T) {
	attempt := 0
	registerTempExperiment(t, "ZZ-flaky", func(seed uint64) (*Result, error) {
		attempt++
		return nil, fmt.Errorf("flaky failure #%d", attempt)
	})
	rep := runSupervised("ZZ-flaky", 1, RunOptions{MaxRetries: 1})
	if rep.Attempts != 2 || !rep.Violation {
		t.Fatalf("flaky report = attempts=%d violation=%v, want 2 attempts flagged", rep.Attempts, rep.Violation)
	}

	registerTempExperiment(t, "ZZ-stable-fail", func(seed uint64) (*Result, error) {
		return nil, errors.New("always the same failure")
	})
	rep = runSupervised("ZZ-stable-fail", 1, RunOptions{MaxRetries: 2})
	if rep.Attempts != 3 || rep.Violation {
		t.Fatalf("stable failure = attempts=%d violation=%v, want 3 attempts unflagged", rep.Attempts, rep.Violation)
	}
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "always the same failure") {
		t.Fatalf("stable failure lost its error: %v", rep.Err)
	}
}

// TestSupervisionLeavesOutputBytesUnchanged pins the plane separation:
// arming the supervisor (probes attached, sweeper polling) must not
// change a healthy experiment's deterministic bytes.
func TestSupervisionLeavesOutputBytesUnchanged(t *testing.T) {
	want := payloadBytes(t, runOne("F3", 1))
	EnableSupervision(SuperviseConfig{Stall: 5 * time.Second, Deadline: time.Hour})
	defer DisableSupervision()
	got := payloadBytes(t, runOne("F3", 1))
	if !bytes.Equal(got, want) {
		t.Fatal("arming supervision changed F3's output bytes")
	}
}

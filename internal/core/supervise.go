package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runstats"
	"repro/internal/sim"
)

// The supervision layer (DESIGN.md §13) makes long multi-experiment runs
// survivable: a vtime-stall watchdog riding the kernel Probe hook, per-
// experiment wall-clock deadlines, and graceful SIGINT/SIGTERM shutdown.
// Supervision lives entirely on the wall-clock plane: it may read probe
// samples and it may abort an experiment (sim.Kernel.CancelRun unwinds
// at a step boundary), but it never writes to a trace, a metrics
// registry, or any drift-gated artefact. An aborted experiment's report
// is marked partial and excluded from every determinism guarantee;
// sibling experiments' bytes are untouched because each owns its own
// world.
//
// Experiment scopes are registered unconditionally (they are two map
// operations per experiment), so RequestShutdown can wind down in-
// flight experiments even when no watchdog or deadline is armed.

// SuperviseConfig arms the global supervisor.
type SuperviseConfig struct {
	// Stall is the vtime-stall watchdog window: an experiment kernel
	// that keeps executing events while its virtual clock stays frozen
	// for longer than this wall-clock window is aborted. 0 disarms.
	Stall time.Duration
	// Deadline is the per-experiment wall-clock budget, measured from
	// the experiment's start; exceeding it aborts the experiment at its
	// next step boundary. 0 disarms.
	Deadline time.Duration
}

// Supervisor is the armed watchdog/deadline sweeper. At most one is
// active per process (EnableSupervision replaces any previous one).
type Supervisor struct {
	cfg      SuperviseConfig
	done     chan struct{}
	stopOnce sync.Once
}

var activeSup atomic.Pointer[Supervisor]

// EnableSupervision installs a global supervisor and, when a stall
// window or deadline is armed, starts its sweep goroutine.
func EnableSupervision(cfg SuperviseConfig) *Supervisor {
	DisableSupervision()
	s := &Supervisor{cfg: cfg, done: make(chan struct{})}
	activeSup.Store(s)
	if cfg.Stall > 0 || cfg.Deadline > 0 {
		go s.loop()
	}
	return s
}

// DisableSupervision detaches and stops the global supervisor.
func DisableSupervision() {
	if s := activeSup.Swap(nil); s != nil {
		s.stopOnce.Do(func() { close(s.done) })
	}
}

// ActiveSupervisor returns the armed supervisor, or nil.
func ActiveSupervisor() *Supervisor { return activeSup.Load() }

// SupervisionArmed reports whether a watchdog window or deadline is
// armed (the X1 spin self-test refuses to run without one).
func SupervisionArmed() bool {
	s := ActiveSupervisor()
	return s != nil && (s.cfg.Stall > 0 || s.cfg.Deadline > 0)
}

// sweepEvery bounds the watchdog's polling cadence: a quarter of the
// tightest armed window, clamped to [5ms, 250ms].
func (s *Supervisor) sweepEvery() time.Duration {
	tight := s.cfg.Stall
	if tight == 0 || (s.cfg.Deadline > 0 && s.cfg.Deadline < tight) {
		tight = s.cfg.Deadline
	}
	tick := tight / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	return tick
}

func (s *Supervisor) loop() {
	t := time.NewTicker(s.sweepEvery())
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case now := <-t.C:
			s.sweep(now)
		}
	}
}

// sweep checks every open experiment scope against the armed deadline
// and stall window.
func (s *Supervisor) sweep(now time.Time) {
	for _, sc := range openScopes() {
		if s.cfg.Deadline > 0 && now.Sub(sc.started) > s.cfg.Deadline {
			if sc.cancel(fmt.Errorf("%w: experiment %s over its %v wall budget",
				sim.ErrDeadline, sc.id, s.cfg.Deadline)) {
				if c := runstats.Active(); c != nil {
					c.CountDeadline()
					c.CountCancel()
				}
			}
			continue
		}
		if s.cfg.Stall == 0 {
			continue
		}
		for _, w := range sc.watchList() {
			if w.stalled(now, s.cfg.Stall) {
				if sc.cancel(fmt.Errorf("%w: experiment %s executed events for %v of wall clock without advancing vtime",
					sim.ErrStalled, sc.id, s.cfg.Stall)) {
					if c := runstats.Active(); c != nil {
						c.CountStall()
						c.CountCancel()
					}
				}
				break
			}
		}
	}
}

// --- experiment scopes ---

// expScope is one in-flight experiment: its identity, start wall time,
// and every kernel its worlds have built so far. The scope is the unit
// of cancellation — a deadline or shutdown cancels all of its kernels,
// and whichever one the experiment is currently stepping unwinds.
type expScope struct {
	id      string
	seed    uint64
	started time.Time

	mu        sync.Mutex
	kernels   []*sim.Kernel
	watches   []*kernelWatch
	cancelled bool
}

// cancel requests cancellation of every kernel in the scope, once.
// Reports whether this call armed the cancellation.
func (sc *expScope) cancel(cause error) bool {
	sc.mu.Lock()
	if sc.cancelled {
		sc.mu.Unlock()
		return false
	}
	sc.cancelled = true
	kernels := append([]*sim.Kernel(nil), sc.kernels...)
	sc.mu.Unlock()
	for _, k := range kernels {
		k.CancelRun(cause)
	}
	return true
}

func (sc *expScope) watchList() []*kernelWatch {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return append([]*kernelWatch(nil), sc.watches...)
}

// kernelList snapshots the scope's kernels (used by the abort path's
// pool-balance self-check, on the experiment's own goroutine).
func (sc *expScope) kernelList() []*sim.Kernel {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return append([]*sim.Kernel(nil), sc.kernels...)
}

var (
	scopeMu sync.Mutex
	scopes  = map[uint64]*expScope{} // goroutine id -> open scope
)

// beginScope opens an experiment scope on the calling goroutine (worlds
// are always built on the goroutine that runs the experiment, so
// NewWorld finds the scope by goroutine id). The returned close func
// restores any outer scope.
func beginScope(id string, seed uint64) (*expScope, func()) {
	g := goid()
	sc := &expScope{id: id, seed: seed, started: time.Now()}
	scopeMu.Lock()
	prev := scopes[g]
	scopes[g] = sc
	scopeMu.Unlock()
	return sc, func() {
		scopeMu.Lock()
		if prev != nil {
			scopes[g] = prev
		} else {
			delete(scopes, g)
		}
		scopeMu.Unlock()
	}
}

func openScopes() []*expScope {
	scopeMu.Lock()
	defer scopeMu.Unlock()
	out := make([]*expScope, 0, len(scopes))
	for _, sc := range scopes {
		out = append(out, sc)
	}
	return out
}

// superviseKernel registers a freshly built kernel with the calling
// goroutine's experiment scope (no-op outside one) and, when a stall
// watchdog is armed, attaches its sampling watch to the kernel's probe
// chain. Called from NewWorld for every world.
func superviseKernel(k *sim.Kernel) {
	scopeMu.Lock()
	sc := scopes[goid()]
	scopeMu.Unlock()
	if sc == nil {
		return
	}
	w := &kernelWatch{}
	w.reset()
	sc.mu.Lock()
	sc.kernels = append(sc.kernels, k)
	sc.watches = append(sc.watches, w)
	cancelled := sc.cancelled
	sc.mu.Unlock()
	if cancelled {
		// A kernel born into an already-cancelled scope (deadline hit
		// during a later world build) aborts on its first step.
		k.CancelRun(sim.ErrCancelled)
	} else if cause := ShutdownCause(); cause != nil {
		k.CancelRun(fmt.Errorf("run interrupted: %w", cause))
	}
	if s := ActiveSupervisor(); s != nil && s.cfg.Stall > 0 {
		k.AttachProbe(w, 0)
	}
}

// kernelWatch is the watchdog's view of one kernel, fed by probe
// samples on the kernel goroutine and read by the sweep goroutine.
// All fields are atomics; the probe path must not block.
type kernelWatch struct {
	sampled      atomic.Bool
	vtime        atomic.Int64  // last sampled vtime (ns since epoch)
	steps        atomic.Uint64 // last sampled step count
	advanceWall  atomic.Int64  // wall ns when vtime last advanced
	advanceSteps atomic.Uint64 // step count at that advance
}

func (w *kernelWatch) reset() { w.advanceWall.Store(time.Now().UnixNano()) }

// KernelSample implements sim.Probe.
func (w *kernelWatch) KernelSample(s sim.Sample) {
	vt := s.VNow.UnixNano()
	if !w.sampled.Load() || vt > w.vtime.Load() {
		w.vtime.Store(vt)
		w.advanceWall.Store(time.Now().UnixNano())
		w.advanceSteps.Store(s.Steps)
		w.sampled.Store(true)
	}
	w.steps.Store(s.Steps)
}

// stalled reports a vtime stall: the kernel has executed events since
// its virtual clock last advanced, and that advance is more than the
// window ago. A kernel that is simply idle (no steps — e.g. the
// experiment is doing CPU work between runs) is never flagged, because
// a cancel could then false-positive on healthy experiments; a handler
// that blocks forever inside one event cannot be unwound at a step
// boundary at all and is left to the deadline/shutdown path to report.
func (w *kernelWatch) stalled(now time.Time, window time.Duration) bool {
	if !w.sampled.Load() {
		return false
	}
	if w.steps.Load() <= w.advanceSteps.Load() {
		return false
	}
	return now.UnixNano()-w.advanceWall.Load() > window.Nanoseconds()
}

// --- graceful shutdown ---

type shutdownState struct{ cause error }

var shutdownReq atomic.Pointer[shutdownState]

// ErrInterrupted is the generic shutdown cause.
var ErrInterrupted = errors.New("run interrupted")

// RequestShutdown begins a graceful wind-down: experiments not yet
// started are skipped, and every in-flight experiment is cancelled at
// its next step boundary (its report comes back partial). Safe to call
// from a signal handler goroutine; the first cause wins.
func RequestShutdown(cause error) {
	if cause == nil {
		cause = ErrInterrupted
	}
	if !shutdownReq.CompareAndSwap(nil, &shutdownState{cause: cause}) {
		return
	}
	for _, sc := range openScopes() {
		if sc.cancel(fmt.Errorf("run interrupted: %w", cause)) {
			if c := runstats.Active(); c != nil {
				c.CountCancel()
			}
		}
	}
}

// ShutdownCause returns the pending shutdown cause, or nil.
func ShutdownCause() error {
	if s := shutdownReq.Load(); s != nil {
		return s.cause
	}
	return nil
}

// ResetShutdown clears a pending shutdown (tests; a fresh CLI process
// never needs it).
func ResetShutdown() { shutdownReq.Store(nil) }

// goid parses the current goroutine's id from the stack header. Worlds
// are built on the goroutine that runs their experiment, so this is the
// key that links NewWorld back to the runOne scope without threading a
// context through every experiment signature.
func goid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

package core

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

func TestD1CNIDetection(t *testing.T) {
	res := runExperiment(t, "D1")
	if v := res.MustMetric("rules_fired"); v != res.MustMetric("rules_total") {
		t.Fatalf("coverage incomplete: %v rules fired", v)
	}
	if v := res.MustMetric("unattributed_alerts"); v != 0 {
		t.Fatalf("%v alerts without a provenance span", v)
	}
	if v := res.MustMetric("killchain_latency"); v <= 0 {
		t.Fatalf("kill-chain sequence never assembled (latency %v)", v)
	}
}

func TestD2CrossCampaign(t *testing.T) {
	res := runExperiment(t, "D2")
	if v := res.MustMetric("specific_rules_fired"); v != 0 {
		t.Fatalf("campaign-specific rules fired against Shamoon: %v", v)
	}
}

func TestD3FalsePositives(t *testing.T) {
	res := runExperiment(t, "D3")
	if v := res.MustMetric("fp_threshold_rules") + res.MustMetric("fp_sequence_rules"); v != 0 {
		t.Fatalf("stateful rules produced %v false positives", v)
	}
}

// alertStream serializes the cat=alert events of a result to the JSONL
// wire form — the exact bytes `cyberlab detect` would export.
func alertStream(t *testing.T, res *Result) []byte {
	t.Helper()
	var alerts []obs.Event
	for _, e := range res.Events {
		if e.Cat == "alert" {
			alerts = append(alerts, e)
		}
	}
	if len(alerts) == 0 {
		t.Fatal("no alert events captured")
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, alerts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestD1AlertStreamParallelByteIdentical is the issue's determinism gate:
// the exported alert stream must be byte-identical whether the run used
// 1, 4 or 8 workers.
func TestD1AlertStreamParallelByteIdentical(t *testing.T) {
	get := func(workers int) []byte {
		reports := RunExperiments([]string{"D1"}, 1, workers)
		if len(reports) != 1 || reports[0].Err != nil {
			t.Fatalf("D1 with %d workers: %+v", workers, reports)
		}
		return alertStream(t, reports[0].Result)
	}
	want := get(1)
	for _, workers := range []int{4, 8} {
		if got := get(workers); !bytes.Equal(got, want) {
			t.Fatalf("alert stream with %d workers differs from sequential", workers)
		}
	}
}

package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/obs"
)

// Replay checkpoints (DESIGN.md §13). A deterministic simulation never
// needs to serialise live state — closures, heaps, host maps — to be
// resumable: the (experiment, seed, fault profile, activity mix) tuple
// IS the state, and any point in the run is reachable by re-execution.
// A Checkpoint therefore captures only that tuple, a virtual timestamp,
// and a content hash of the trace prefix up to it. Fork "restores" the
// checkpoint by re-running the experiment, verifying that the replayed
// prefix hashes identically (catching config drift and code-level
// nondeterminism), and then muting the verified prefix out of the
// returned result so the fork's artefacts carry only the tail past the
// checkpoint.

const checkpointVersion = 1

// Checkpoint identifies a replayable point inside one experiment run.
type Checkpoint struct {
	Version    int       `json:"version"`
	Experiment string    `json:"experiment"`
	Seed       uint64    `json:"seed"`
	Faults     string    `json:"faults"`
	Activity   string    `json:"activity"`
	VTime      time.Time `json:"vtime"`       // checkpoint boundary (virtual clock)
	PrefixLen  int       `json:"prefix_len"`  // trace events at or before VTime
	PrefixHash string    `json:"prefix_hash"` // sha256 over their JSONL bytes
	TotalLen   int       `json:"total_len"`   // full run's event count, for context
	Summary    string    `json:"summary"`     // full run's one-line outcome
}

// tracePrefixHash hashes the JSONL encoding of every event at or before
// the boundary, in stream order, and returns (count, hash).
func tracePrefixHash(events []obs.Event, boundary time.Time) (int, string) {
	h := sha256.New()
	n := 0
	var buf []byte
	for _, e := range events {
		if e.At.After(boundary) {
			continue
		}
		buf = e.AppendJSONL(buf[:0])
		h.Write(buf)
		n++
	}
	return n, hex.EncodeToString(h.Sum(nil))
}

// CaptureCheckpoint runs the experiment to completion and freezes the
// trace prefix up to vtime into a Checkpoint bound to the process's
// current fault profile and activity mix.
func CaptureCheckpoint(id string, seed uint64, vtime time.Time) (*Checkpoint, error) {
	rep := runOne(id, seed)
	if rep.Err != nil {
		return nil, rep.Err
	}
	cp := &Checkpoint{
		Version:    checkpointVersion,
		Experiment: id,
		Seed:       seed,
		Faults:     FaultProfile().Name,
		Activity:   ActivityMixName(),
		VTime:      vtime.UTC(),
		TotalLen:   len(rep.Result.Events),
		Summary:    rep.Result.Summary,
	}
	cp.PrefixLen, cp.PrefixHash = tracePrefixHash(rep.Result.Events, cp.VTime)
	return cp, nil
}

// ForkResult is a restored checkpoint: the re-executed run with the
// verified prefix muted away.
type ForkResult struct {
	Checkpoint *Checkpoint
	// Result is the replayed experiment with Events reduced to the tail
	// strictly after the checkpoint vtime (the prefix was verified by
	// hash and is available from any run of the same configuration).
	Result *Result
	// TailEvents counts the events past the checkpoint.
	TailEvents int
}

// Fork restores a checkpoint by deterministic re-execution. The process
// configuration must already match the checkpoint (use ApplyConfig),
// and the replayed trace prefix must hash to the checkpoint's value; a
// mismatch means the code or configuration drifted since capture — or
// the run is nondeterministic — and the fork is refused.
func Fork(cp *Checkpoint) (*ForkResult, error) {
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint format v%d, this build speaks v%d", cp.Version, checkpointVersion)
	}
	if got := FaultProfile().Name; got != cp.Faults {
		return nil, fmt.Errorf("checkpoint was captured under fault profile %q but the process runs %q", cp.Faults, got)
	}
	if got := ActivityMixName(); got != cp.Activity {
		return nil, fmt.Errorf("checkpoint was captured under activity mix %q but the process runs %q", cp.Activity, got)
	}
	rep := runOne(cp.Experiment, cp.Seed)
	if rep.Err != nil {
		return nil, fmt.Errorf("fork replay: %w", rep.Err)
	}
	n, hash := tracePrefixHash(rep.Result.Events, cp.VTime)
	if n != cp.PrefixLen || hash != cp.PrefixHash {
		return nil, fmt.Errorf("checkpoint drift at %s: replay produced %d prefix events (hash %.12s…), checkpoint recorded %d (hash %.12s…) — the code or configuration changed since capture",
			cp.VTime.Format(time.RFC3339), n, hash, cp.PrefixLen, cp.PrefixHash)
	}
	tail := rep.Result.Events[:0:0]
	for _, e := range rep.Result.Events {
		if e.At.After(cp.VTime) {
			tail = append(tail, e)
		}
	}
	rep.Result.Events = tail
	return &ForkResult{Checkpoint: cp, Result: rep.Result, TailEvents: len(tail)}, nil
}

// ApplyConfig installs the checkpoint's fault profile and activity mix
// into the process, so Fork replays under the captured configuration.
func (cp *Checkpoint) ApplyConfig() error {
	if err := SetFaultProfile(cp.Faults); err != nil {
		return fmt.Errorf("checkpoint fault profile: %w", err)
	}
	if err := SetActivityMix(cp.Activity); err != nil {
		return fmt.Errorf("checkpoint activity mix: %w", err)
	}
	return nil
}

// WriteCheckpoint renders cp as indented JSON plus a trailing newline.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadCheckpoint loads a checkpoint file written by WriteCheckpoint.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return cp, nil
}

package core

import (
	"repro/internal/analysis"
	"repro/internal/cnc"
	"repro/internal/malware/duqu"
	"repro/internal/malware/flame"
	"repro/internal/malware/gauss"
	"repro/internal/malware/shamoon"
	"repro/internal/malware/stuxnet"
	"repro/internal/pki"
)

// RunE3Lineage reproduces the paper's code-lineage claims (Section I):
// "Duqu shares a lot of code with Stuxnet and there are several technical
// evidences that they have been designed by the same unknown entity";
// "Flame and Gauss exhibit striking similarities ... they come from the
// same factories that produced Stuxnet and Duqu"; and Shamoon, "the work
// of amateurs", shares code with neither. The shingle-similarity analysis
// recovers exactly this clustering from the samples' bytes.
func RunE3Lineage(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	// Build one sample per family.
	sx, err := stuxnet.Build(w.K, stuxnet.Config{
		DriverKey:   w.PKI.StolenKey,
		DriverCerts: []*pki.Certificate{w.PKI.RealtekCert},
	})
	if err != nil {
		return nil, err
	}
	seal, err := cnc.NewSealKeypair(w.K.RNG())
	if err != nil {
		return nil, err
	}
	dq, err := duqu.Build(w.K, duqu.Config{
		Targets: []string{"T"}, C2Domain: "x.example", SealPub: seal.Public,
	})
	if err != nil {
		return nil, err
	}
	center, err := cnc.NewAttackCenter(w.K, w.Internet, 5, 1)
	if err != nil {
		return nil, err
	}
	fl, err := flame.Build(w.K, flame.Config{Center: center})
	if err != nil {
		return nil, err
	}
	ga, err := gauss.Build(w.K, gauss.Config{Center: center, GodelTargetDir: "X"})
	if err != nil {
		return nil, err
	}
	sh, err := shamoon.Build(w.K, shamoon.Config{ReporterDomain: "y.example"})
	if err != nil {
		return nil, err
	}

	m := analysis.CompareSamples(sx.MainImage, dq.Dropper, fl.MainImage, ga.MainImage, sh.MainImage)
	stuxDuqu := m.Of(sx.MainImage.Name, dq.Dropper.Name)
	flameGauss := m.Of(fl.MainImage.Name, ga.MainImage.Name)
	stuxFlame := m.Of(sx.MainImage.Name, fl.MainImage.Name)
	stuxShamoon := m.Of(sx.MainImage.Name, sh.MainImage.Name)
	flameShamoon := m.Of(fl.MainImage.Name, sh.MainImage.Name)

	res := &Result{
		ID:    "E3",
		Title: "Code lineage across the five weapons",
		Paper: "Duqu shares code with Stuxnet (same entity); Flame and Gauss from the same factory; Shamoon the amateur outlier",
	}
	res.metric("sim_stuxnet_duqu", stuxDuqu, "jaccard")
	res.metric("sim_flame_gauss", flameGauss, "jaccard")
	res.metric("sim_stuxnet_flame", stuxFlame, "jaccard")
	res.metric("sim_stuxnet_shamoon", stuxShamoon, "jaccard")
	res.metric("sim_flame_shamoon", flameShamoon, "jaccard")
	res.Pass = stuxDuqu > 0.1 && flameGauss > 0.1 &&
		stuxDuqu > 10*stuxShamoon && flameGauss > 10*flameShamoon &&
		stuxDuqu > 10*stuxFlame // the two platforms are distinct factories
	res.summaryf("shingle similarity: stuxnet↔duqu %.2f and flame↔gauss %.2f, both >10× any pairing with Shamoon",
		stuxDuqu, flameGauss)
	res.block(m.Render())
	res.CaptureObs(w.K)
	return res, nil
}

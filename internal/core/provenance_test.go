package core

import (
	"testing"

	"repro/internal/provenance"
)

// TestProvenanceForestsValidAcrossExperiments is the PR's property test:
// every experiment's captured event stream must reconstruct into a valid
// causal forest — every referenced parent span present, parents opening
// no later than their children, allocation order monotone. Experiments
// that mute their trace (C7, A3) legitimately yield empty forests; the
// flagship campaigns must not.
func TestProvenanceForestsValidAcrossExperiments(t *testing.T) {
	mustHaveTrees := map[string]bool{
		"F1": true, // Stuxnet: Natanz operation
		"C4": true, // Flame: module growth
		"C9": true, // Shamoon: spread + wipe + report
		"T1": true, // multi-kernel capture exercises the span remap
	}
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if id == "C7" && testing.Short() {
				t.Skip("C7 skipped in -short mode")
			}
			rep := runOne(id, 1)
			if rep.Err != nil {
				t.Fatalf("run: %v", rep.Err)
			}
			f := provenance.Build(rep.Result.Events)
			for _, issue := range f.Validate() {
				t.Errorf("invalid forest: %s", issue)
			}
			if len(f.Orphans) > 0 {
				t.Errorf("%d orphan nodes (opening records lost?)", len(f.Orphans))
			}
			if mustHaveTrees[id] && len(f.Roots) == 0 {
				t.Errorf("expected infection trees, got an empty forest (%d events)", len(rep.Result.Events))
			}
			// Span uniqueness after the multi-kernel remap: node count must
			// equal the number of distinct span IDs seen.
			seen := make(map[uint64]bool)
			for _, e := range rep.Result.Events {
				if e.Span != 0 {
					seen[uint64(e.Span)] = true
				}
			}
			if len(seen) != len(f.Nodes) {
				t.Errorf("span collision: %d distinct span IDs vs %d nodes", len(seen), len(f.Nodes))
			}
		})
	}
}

package core

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/runstats"
)

// captureArtefacts runs ids and renders the three deterministic byte
// streams the CLI exports: the rendered report, the JSONL trace, and
// the merged metrics JSON — the same walk writeObsOutputs performs.
func captureArtefacts(t *testing.T, ids []string, workers int) (report, trace, metrics string) {
	t.Helper()
	reports := RunExperiments(ids, 1, workers)
	var rep, tr bytes.Buffer
	var merged obs.Snapshot
	for _, r := range reports {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		rep.WriteString(r.Result.Render())
		if err := obs.WriteJSONL(&tr, r.Result.Events); err != nil {
			t.Fatalf("render trace: %v", err)
		}
		merged.Merge(r.Result.Obs)
	}
	mj, err := merged.JSON()
	if err != nil {
		t.Fatalf("render metrics: %v", err)
	}
	return rep.String(), tr.String(), string(mj)
}

// TestRunstatsDeterminismIsolation is the telemetry-plane property test
// (ISSUE 8): enabling the wall-clock collector — probes sampling every
// kernel, a live progress ticker, per-experiment recording — must leave
// every drift-gated byte stream identical to a telemetry-off run, at
// any worker count. D1 rides along so the streaming detection engine's
// alert spans are covered too.
func TestRunstatsDeterminismIsolation(t *testing.T) {
	ids := []string{"F3", "C1", "C8", "D1"}
	wantReport, wantTrace, wantMetrics := captureArtefacts(t, ids, 1)
	if wantTrace == "" || wantMetrics == "" {
		t.Fatal("baseline artefacts empty")
	}

	for _, workers := range []int{1, 4, 8} {
		c := runstats.Enable()
		stop := c.StartProgress(io.Discard, time.Millisecond)
		gotReport, gotTrace, gotMetrics := captureArtefacts(t, ids, workers)
		stop()
		runstats.Disable()

		if gotReport != wantReport {
			t.Fatalf("telemetry-on report differs at %d workers", workers)
		}
		if gotTrace != wantTrace {
			t.Fatalf("telemetry-on trace differs at %d workers", workers)
		}
		if gotMetrics != wantMetrics {
			t.Fatalf("telemetry-on metrics differ at %d workers", workers)
		}

		// And the collector actually observed the run: it is isolation,
		// not a disconnected no-op.
		if c.Events() == 0 {
			t.Fatalf("collector sampled no events at %d workers", workers)
		}
		m := c.Manifest()
		if len(m.Experiments) != len(ids) {
			t.Fatalf("manifest records %d experiments, want %d", len(m.Experiments), len(ids))
		}
		for _, e := range m.Experiments {
			if !e.Ok {
				t.Fatalf("manifest marks %s failed", e.ID)
			}
		}
	}
}

// TestRunstatsManifestPhases: driving real experiments populates the
// world-build / fleet-build / run phase timers.
func TestRunstatsManifestPhases(t *testing.T) {
	c := runstats.Enable()
	defer runstats.Disable()
	if rep := runOne("A3", 1); rep.Err != nil { // A3 builds a 512-host sharded fleet
		t.Fatal(rep.Err)
	}
	m := c.Manifest()
	seen := map[string]bool{}
	for _, p := range m.Phases {
		seen[p.Name] = p.WallSecs >= 0
	}
	for _, want := range []string{"world-build", "fleet-build", "run"} {
		if !seen[want] {
			t.Fatalf("phase %q missing from manifest (got %+v)", want, m.Phases)
		}
	}
	if m.Kernel.Hosts < 512 {
		t.Fatalf("hosts = %d, want >= 512 (A3 fleet)", m.Kernel.Hosts)
	}
}

package core

import (
	"fmt"
	"time"

	"repro/internal/cnc"
	"repro/internal/detect"
	"repro/internal/host"
	"repro/internal/malware"
	"repro/internal/malware/cni"
	"repro/internal/malware/flame"
	"repro/internal/malware/shamoon"
	"repro/internal/malware/stuxnet"
	"repro/internal/netsim"
	"repro/internal/pki"
	"repro/internal/plc"
	"repro/internal/usb"
	"repro/internal/users"
)

// NatanzScenario is the Fig. 1 world: an enrichment plant with its
// engineering workstation, a handful of office machines, and a built
// Stuxnet campaign with a crafted delivery drive.
type NatanzScenario struct {
	World    *World
	LAN      *netsim.LAN
	Engineer *host.Host
	Offices  []*host.Host
	Plant    *plc.Plant
	Step7    *plc.Step7
	Stuxnet  *stuxnet.Stuxnet
	Delivery *usb.Drive
	Project  string
}

// NatanzOptions tweak the scenario.
type NatanzOptions struct {
	OfficeHosts      int      // default 3
	MachinesPerDrive int      // default 8
	DriveVendors     []string // default Finnish/Iranian pair
	CPType           string   // default Profibus CP
	PatchedBulletins []string // applied to every host
	C2Online         bool     // register the futbol domains
}

// BuildNatanz assembles the scenario on an existing world.
func BuildNatanz(w *World, opts NatanzOptions) (*NatanzScenario, error) {
	if opts.OfficeHosts <= 0 {
		opts.OfficeHosts = 3
	}
	sc := &NatanzScenario{World: w, Project: `C:\Projects\cascade-a26`}
	// The plant network is air-gapped; office LAN has internet.
	sc.LAN = w.NewLAN("natanz-plant", "10.10.0", true)

	sx, err := stuxnet.Build(w.K, stuxnet.Config{
		DriverKey:   w.PKI.StolenKey,
		DriverCerts: []*pki.Certificate{w.PKI.RealtekCert, w.PKI.JMicronCert},
		SpreadEvery: 12 * time.Hour,
	})
	if err != nil {
		return nil, fmt.Errorf("build stuxnet: %w", err)
	}
	sc.Stuxnet = sx
	sx.BindTo(w.Registry)

	hostOpts := func(extra ...host.Option) []host.Option {
		out := []host.Option{host.WithOS(host.Win7), host.WithShares(true)}
		if len(opts.PatchedBulletins) > 0 {
			out = append(out, host.WithPatches(opts.PatchedBulletins...))
		}
		return append(out, extra...)
	}

	sc.Engineer = w.AddHost(sc.LAN, "ENG-STATION", hostOpts()...)
	for i := 0; i < opts.OfficeHosts; i++ {
		sc.Offices = append(sc.Offices, w.AddHost(sc.LAN, fmt.Sprintf("OFFICE-%d", i+1), hostOpts()...))
	}

	plantCfg := plc.PlantConfig{
		Name:             "natanz-a26",
		MachinesPerDrive: opts.MachinesPerDrive,
		DriveVendors:     opts.DriveVendors,
		CPType:           opts.CPType,
	}
	sc.Plant = plc.NewPlant(w.K, plantCfg)
	sc.Step7 = plc.NewStep7(sc.Engineer, `C:\Program Files\Siemens\Step7`, sc.Plant.PLC)
	if err := plc.NewProject(sc.Engineer, sc.Project); err != nil {
		return nil, err
	}
	w.SetExtra(sc.Engineer.Name, malware.ExtraStep7, sc.Step7)
	w.SetExtra(sc.Engineer.Name, malware.ExtraPlant, sc.Plant)

	if opts.C2Online {
		for i, domain := range stuxnet.DefaultC2Domains {
			ip := netsim.IP(fmt.Sprintf("203.0.113.%d", 30+i))
			w.Internet.RegisterDomain(domain, ip)
			w.Internet.BindServer(ip, netsim.HandlerFunc(func(*netsim.Request) *netsim.Response {
				return netsim.OK([]byte("ok"))
			}))
		}
	}

	// The delivery drive an integrator engineer is handed (paper, V-E).
	sc.Delivery = usb.NewDrive("INTEGRATOR-STICK")
	raw, err := sx.MainImage.Marshal()
	if err != nil {
		return nil, err
	}
	sc.Delivery.Put(sx.MainImage.Name, raw, true)
	for _, osv := range []host.OSVersion{host.WinXP, host.WinVista, host.Win7, host.WinServer2003} {
		sc.Delivery.LNKs = append(sc.Delivery.LNKs, usb.LNK{
			Name: "Copy of Shortcut to.lnk", OSTag: osv.Tag(),
			PayloadFile: sx.MainImage.Name, Malicious: true,
		})
	}
	return sc, nil
}

// Deliver plugs the delivery drive into the engineer workstation and
// models the user browsing it, then opening the cascade project.
func (sc *NatanzScenario) Deliver() error {
	sc.Engineer.InsertUSB(sc.Delivery)
	if err := sc.Engineer.BrowseRemovable(); err != nil {
		return err
	}
	return sc.Step7.OpenProject(sc.Project)
}

// EspionageScenario is the Fig. 2/4/5 world: an enterprise LAN under a
// Flame campaign with full C&C platform and the forged update chain.
type EspionageScenario struct {
	World    *World
	LAN      *netsim.LAN
	Hosts    []*host.Host
	Center   *cnc.AttackCenter
	Flame    *flame.Flame
	Patient0 *host.Host
}

// EspionageOptions tweak the scenario.
type EspionageOptions struct {
	Hosts        int // default 8
	DocsPerHost  int // default 50
	Domains      int // default 80
	ServerIPs    int // default 22
	BeaconEvery  time.Duration
	CollectEvery time.Duration
	// Microphones/Bluetooth equip every host.
	Microphones bool
	Bluetooth   bool
}

// BuildEspionage assembles the scenario on an existing world. Patient zero
// is infected immediately.
func BuildEspionage(w *World, opts EspionageOptions) (*EspionageScenario, error) {
	if opts.Hosts <= 0 {
		opts.Hosts = 8
	}
	if opts.DocsPerHost <= 0 {
		opts.DocsPerHost = 50
	}
	if opts.Domains <= 0 {
		opts.Domains = cnc.DefaultDomainCount
	}
	if opts.ServerIPs <= 0 {
		opts.ServerIPs = cnc.DefaultServerIPCount
	}
	sc := &EspionageScenario{World: w}
	sc.LAN = w.NewLAN("ministry", "10.20.0", false)

	center, err := cnc.NewAttackCenter(w.K, w.Internet, opts.Domains, opts.ServerIPs)
	if err != nil {
		return nil, err
	}
	sc.Center = center
	center.Admin().ProvisionAll(30 * time.Minute)

	if err := w.ForgeUpdateCert(); err != nil {
		return nil, err
	}
	fl, err := flame.Build(w.K, flame.Config{
		Center:        center,
		UpdateSignKey: w.PKI.AttackerKey,
		UpdateChain:   w.PKI.ForgedChain(),
		BeaconEvery:   opts.BeaconEvery,
		CollectEvery:  opts.CollectEvery,
	})
	if err != nil {
		return nil, err
	}
	sc.Flame = fl
	fl.BindTo(w.Registry)

	hw := host.Hardware{Microphone: opts.Microphones, Bluetooth: opts.Bluetooth}
	for i := 0; i < opts.Hosts; i++ {
		h := w.AddHost(sc.LAN, fmt.Sprintf("MIN-%03d", i+1),
			host.WithInternet(true), host.WithHardware(hw), host.WithAutorun(true))
		h.SeedDocuments(fmt.Sprintf("user%d", i+1), opts.DocsPerHost)
		sc.Hosts = append(sc.Hosts, h)
	}
	sc.Patient0 = sc.Hosts[0]
	if _, err := sc.Patient0.Execute(fl.MainImage, true); err != nil {
		return nil, fmt.Errorf("infect patient zero: %w", err)
	}
	return sc, nil
}

// PushSpreadModules delivers SNACK/MUNCH/GADGET through C&C.
func (sc *EspionageScenario) PushSpreadModules() {
	for _, m := range []string{flame.ModSnack, flame.ModMunch, flame.ModGadget} {
		sc.Flame.PushModuleAll(m)
	}
}

// AramcoScenario is the Fig. 6 world: a corporate fleet under Shamoon.
type AramcoScenario struct {
	World    *World
	LAN      *netsim.LAN
	Hosts    []*host.Host
	Shamoon  *shamoon.Shamoon
	Reports  []*netsim.Request
	Patient0 *host.Host
	// Users is the benign population (nil for a silent fleet).
	Users *users.Population
}

// AramcoOptions tweak the scenario.
type AramcoOptions struct {
	Workstations int       // default 100
	DocsPerHost  int       // default 5
	TriggerAt    time.Time // default shamoon.AramcoTrigger
	SpreadEvery  time.Duration
	LeanImages   bool // small code bulk for fleet-scale runs
	JPEGBug      *bool
	MaxPerSweep  int // bound on new victims per host per spread round
	// BuildWorkers sizes the sharded fleet-construction pool (0 =
	// GOMAXPROCS). Any value produces byte-identical worlds.
	BuildWorkers int
	// EagerDocs seeds document bytes eagerly instead of lazily; the modes
	// are byte-equivalent (DESIGN.md §9) and this exists for the
	// equivalence tests.
	EagerDocs bool
	// Activity selects the benign user-activity mix for the fleet
	// (DESIGN.md §11). Zero defers to the -activity global; users.MixNone
	// forces a silent fleet.
	Activity users.Mix
	// The multi-site fields below shape one shard of a partitioned fleet
	// (DESIGN.md §14). LANName/Subnet give the site its own identity
	// (defaults "aramco-corp"/"10.30.0"); FirstIndex offsets workstation
	// numbering so site fleets concatenate into one WS-00001..WS-NNNNN
	// namespace; NoPatient0 leaves the site clean until infection arrives
	// from another partition; ReporterForward, when set, homes the wipe
	// reporter domain in another partition — reports route through the
	// cross-partition mailbox instead of a local server.
	LANName         string
	Subnet          string
	FirstIndex      int
	NoPatient0      bool
	ReporterForward func(*netsim.Request)
}

// BuildAramco assembles the scenario on an existing world. Patient zero is
// infected immediately (unless NoPatient0 defers the infection to a
// cross-site carry).
func BuildAramco(w *World, opts AramcoOptions) (*AramcoScenario, error) {
	if opts.Workstations <= 0 {
		opts.Workstations = 100
	}
	if opts.DocsPerHost <= 0 {
		opts.DocsPerHost = 5
	}
	if opts.LANName == "" {
		opts.LANName = "aramco-corp"
	}
	if opts.Subnet == "" {
		opts.Subnet = "10.30.0"
	}
	sc := &AramcoScenario{World: w}
	sc.LAN = w.NewLAN(opts.LANName, opts.Subnet, false)

	cfg := shamoon.Config{
		TriggerAt:      opts.TriggerAt,
		ReporterDomain: "home.kuwaitdomains.example",
		DriverKey:      w.PKI.EldosKey,
		DriverCert:     w.PKI.EldosCert,
		SpreadEvery:    opts.SpreadEvery,
		JPEGBug:        opts.JPEGBug,
		MaxPerSweep:    opts.MaxPerSweep,
	}
	if opts.LeanImages {
		cfg.BulkBytes = 1024
	}
	sh, err := shamoon.Build(w.K, cfg)
	if err != nil {
		return nil, err
	}
	sc.Shamoon = sh
	sh.BindTo(w.Registry)

	if opts.ReporterForward != nil {
		w.Internet.RegisterRemoteDomain(cfg.ReporterDomain, "203.0.113.66", opts.ReporterForward)
	} else {
		w.Internet.RegisterDomain(cfg.ReporterDomain, "203.0.113.66")
		w.Internet.BindServer("203.0.113.66", netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
			sc.Reports = append(sc.Reports, req)
			return netsim.OK(nil)
		}))
	}

	docBytes := 64 * 1024
	if opts.LeanImages {
		docBytes = 3 * 1024
	}
	specs := make([]HostSpec, opts.Workstations)
	for i := range specs {
		specs[i] = HostSpec{
			Name: fmt.Sprintf("WS-%05d", opts.FirstIndex+i+1),
			Opts: []host.Option{host.WithDomain("ARAMCO"), host.WithShares(true),
				host.WithInternet(true), host.WithEagerDocs(opts.EagerDocs)},
			Seed: func(h *host.Host) error {
				if _, failed := h.SeedDocumentsSized("emp", opts.DocsPerHost, docBytes); failed != 0 {
					return fmt.Errorf("%d documents failed to seed", failed)
				}
				return nil
			},
		}
	}
	if sc.Hosts, err = w.AddHostsSharded(sc.LAN, opts.BuildWorkers, specs); err != nil {
		return nil, err
	}
	// The benign population attaches in the sequential phase after the
	// sharded merge, so agent RNG forks happen in host-index order and
	// the activity stream is invariant under BuildWorkers.
	if mix := fleetMix(opts.Activity); mix != "" {
		if sc.Users, err = users.Attach(w.K, sc.LAN, w.Internet, sc.Hosts, users.Config{Mix: mix}); err != nil {
			return nil, err
		}
	}
	sc.Patient0 = sc.Hosts[0]
	if !opts.NoPatient0 {
		if _, err := sc.Patient0.Execute(sh.MainImage, true); err != nil {
			return nil, fmt.Errorf("infect patient zero: %w", err)
		}
	}
	return sc, nil
}

// Infect runs the Shamoon dropper on the site's designated landing host
// — how a cross-site carry ignites a NoPatient0 shard.
func (sc *AramcoScenario) Infect() error {
	if sc.Shamoon.Infected(sc.Patient0.Name) {
		return nil
	}
	if _, err := sc.Patient0.Execute(sc.Shamoon.MainImage, true); err != nil {
		return fmt.Errorf("infect %s: %w", sc.Patient0.Name, err)
	}
	return nil
}

// CNIScenario is the detection-engine world: a critical-infrastructure
// enclave with one internet-exposed IIS host, a workstation fleet, the
// IRGC-style CNI espionage campaign, and (optionally) a live streaming
// detection engine watching the kernel's event stream.
type CNIScenario struct {
	World        *World
	LAN          *netsim.LAN
	Entry        *host.Host
	Workstations []*host.Host
	Center       *cnc.AttackCenter
	CNI          *cni.CNI
	// Engine is the live detection engine (nil unless Rules were given).
	Engine *detect.Engine
	// Users is the benign population on the workstations (nil for a
	// silent enclave).
	Users *users.Population
}

// CNIOptions tweak the scenario.
type CNIOptions struct {
	Workstations int // default 6
	Domains      int // default 12
	ServerIPs    int // default 4
	BeaconEvery  time.Duration
	LateralEvery time.Duration
	// Rules, when non-empty, attaches a streaming detect.Engine to the
	// kernel before any campaign activity, so the rules see every event.
	Rules []detect.Rule
	// Activity selects the benign user-activity mix for the workstation
	// fleet (DESIGN.md §11). Zero defers to the -activity global;
	// users.MixNone forces a silent enclave.
	Activity users.Mix
}

// BuildCNI assembles the scenario on an existing world. Nothing is
// compromised until Intrude.
func BuildCNI(w *World, opts CNIOptions) (*CNIScenario, error) {
	if opts.Workstations <= 0 {
		opts.Workstations = 6
	}
	if opts.Domains <= 0 {
		opts.Domains = 12
	}
	if opts.ServerIPs <= 0 {
		opts.ServerIPs = 4
	}
	sc := &CNIScenario{World: w}
	sc.LAN = w.NewLAN("cni-enclave", "10.60.0", false)

	center, err := cnc.NewAttackCenter(w.K, w.Internet, opts.Domains, opts.ServerIPs)
	if err != nil {
		return nil, err
	}
	sc.Center = center
	center.Admin().ProvisionAll(30 * time.Minute)

	c, err := cni.Build(w.K, cni.Config{
		Center:       center,
		BeaconEvery:  opts.BeaconEvery,
		LateralEvery: opts.LateralEvery,
	})
	if err != nil {
		return nil, err
	}
	sc.CNI = c
	c.BindTo(w.Registry)

	if len(opts.Rules) > 0 {
		if sc.Engine, err = detect.Attach(w.K, opts.Rules); err != nil {
			return nil, err
		}
	}

	sc.Entry = w.AddHost(sc.LAN, "IIS-01",
		host.WithOS(host.WinServer2008), host.WithShares(true), host.WithInternet(true))
	for i := 0; i < opts.Workstations; i++ {
		sc.Workstations = append(sc.Workstations,
			w.AddHost(sc.LAN, fmt.Sprintf("CNI-WS-%02d", i+1),
				host.WithShares(true), host.WithInternet(true)))
	}
	// Benign population on the workstations only — the IIS entry host
	// serves content, nobody does desk work on it.
	if mix := fleetMix(opts.Activity); mix != "" {
		if sc.Users, err = users.Attach(w.K, sc.LAN, w.Internet, sc.Workstations, users.Config{Mix: mix}); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

// Intrude mounts the initial access: the stolen-credential VPN login and
// the web-shell drop on the exposed entry host.
func (sc *CNIScenario) Intrude() error {
	return sc.CNI.Intrude(sc.LAN, sc.Entry)
}

// WipedCount counts unbootable, wiped hosts.
func (sc *AramcoScenario) WipedCount() int {
	n := 0
	for _, h := range sc.Hosts {
		if h.Wiped && !h.Bootable() {
			n++
		}
	}
	return n
}

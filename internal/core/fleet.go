package core

import (
	"fmt"
	"runtime"

	"repro/internal/host"
	"repro/internal/netsim"
	"repro/internal/runstats"
)

// HostSpec describes one host of a sharded fleet build: its name, its
// host options, and an optional worker-side seeding step (documents,
// browser profiles) that touches only the host itself.
type HostSpec struct {
	Name string
	Opts []host.Option
	// Seed runs on the construction worker right after the host is built,
	// before it is attached to anything shared. It must confine itself to
	// the host's own state (FS, RNG, registry) — never the kernel trace,
	// the world, or another host.
	Seed func(h *host.Host) error
}

// AddHostsSharded builds the specs' hosts across a pool of workers and
// attaches them in index order. The result is byte-identical to any other
// worker count — including 1 — because the two sources of construction-
// order sensitivity are removed:
//
//   - randomness: one Fork from the kernel stream anchors the fleet, and
//     host i's RNG is ForkAt(i) of that anchor — a pure function of
//     (anchor, i) that neither advances the parent nor races on it;
//   - shared state: workers only read shared structures (the base trust
//     store, pre-warmed metric handles, the kernel clock); every write —
//     LAN attachment, dispatcher wiring, world bookkeeping, the attach
//     counter — happens in the sequential index-order merge.
//
// workers <= 0 uses GOMAXPROCS. Seeding failures abort with the first
// failing host's error, in index order regardless of which worker hit it.
func (w *World) AddHostsSharded(lan *netsim.LAN, workers int, specs []HostSpec) ([]*host.Host, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	defer runstats.Phase("fleet-build")()
	anchor := w.K.RNG().Fork()
	// Pre-warm the one registry handle host.New fetches, so the parallel
	// phase performs only map reads (obs.Registry writes are not
	// goroutine-safe).
	w.K.Metrics().Counter("host.process.exec")

	hosts := make([]*host.Host, len(specs))
	errs := make([]error, len(specs))
	runPool(len(specs), workers, func(i int) {
		all := append([]host.Option{
			host.WithCertStore(w.PKI.BaseStore.Clone()),
			host.WithRNG(anchor.ForkAt(uint64(i))),
		}, specs[i].Opts...)
		h := host.New(w.K, specs[i].Name, all...)
		if specs[i].Seed != nil {
			errs[i] = specs[i].Seed(h)
		}
		hosts[i] = h
	})

	for i, h := range hosts {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: build host %s: %w", specs[i].Name, errs[i])
		}
		lan.Attach(h)
		w.hosts[h.Name] = lan
		w.extra[h.Name] = make(map[string]any)
		w.Registry.Attach(h)
	}
	if c := runstats.Active(); c != nil {
		c.AddHosts(len(hosts))
	}
	return hosts, nil
}

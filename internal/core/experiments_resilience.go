package core

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/host"
	"repro/internal/malware/shamoon"
	"repro/internal/malware/stuxnet"
	"repro/internal/netsim"
	"repro/internal/pki"
)

// faultProfile is the adversity schedule the R-series runs under. It is
// package-level (not per-call) so `cyberlab -faults NAME` configures it
// once before the worker pool starts; the committed reports assume the
// default profile.
var faultProfile = faults.Profiles[faults.DefaultProfile]

// SetFaultProfile selects the named adversity profile for the R-series
// experiments. Call before any experiment runs — it is not synchronized
// with a running pool.
func SetFaultProfile(name string) error {
	p, err := faults.Lookup(name)
	if err != nil {
		return err
	}
	faultProfile = p
	return nil
}

// FaultProfile returns the active adversity profile.
func FaultProfile() faults.Profile { return faultProfile }

// RunR1StuxnetTakedownP2P answers: when both futbol C&C domains are taken
// down mid-campaign, does the fleet still converge on a new worm version?
// Stuxnet's P2P update path (paper, II-A) means one hand-delivered v2 —
// the operators' only remaining channel — should gossip across the LAN,
// with every sync causally attributed to the takedown that forced it.
func RunR1StuxnetTakedownP2P(seed uint64) (*Result, error) {
	prof := faultProfile
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	lan := w.NewLAN("factory", "10.40.0", false)
	sx, err := stuxnet.Build(w.K, stuxnet.Config{
		DriverKey:   w.PKI.StolenKey,
		DriverCerts: []*pki.Certificate{w.PKI.RealtekCert, w.PKI.JMicronCert},
		SpreadEvery: 6 * time.Hour,
		BeaconEvery: 12 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	sx.BindTo(w.Registry)
	for i, domain := range stuxnet.DefaultC2Domains {
		ip := netsim.IP(fmt.Sprintf("203.0.113.%d", 30+i))
		w.Internet.RegisterDomain(domain, ip)
		w.Internet.BindServer(ip, netsim.HandlerFunc(func(*netsim.Request) *netsim.Response {
			return netsim.OK([]byte("ok"))
		}))
	}
	const fleet = 10
	specs := make([]HostSpec, fleet)
	for i := range specs {
		specs[i] = HostSpec{
			Name: fmt.Sprintf("FAC-%02d", i+1),
			Opts: []host.Option{host.WithOS(host.Win7), host.WithShares(true), host.WithInternet(true)},
		}
	}
	hosts, err := w.AddHostsSharded(lan, 0, specs)
	if err != nil {
		return nil, err
	}
	if _, err := hosts[0].Execute(sx.MainImage, true); err != nil {
		return nil, fmt.Errorf("infect patient zero: %w", err)
	}

	eng := faults.NewEngine(w.K, w.Internet)
	update := sx.BuildUpdate(2)
	sx.BindUpdate(w.Registry, update, 2)

	takedownAt := prof.TakedownAt
	if takedownAt > 0 {
		w.K.Schedule(takedownAt, "r1-takedown", func() {
			for _, d := range stuxnet.DefaultC2Domains {
				if prof.NXWindow > 0 {
					eng.NXWindow(d, prof.NXWindow)
				} else {
					eng.TakedownDomain(d)
				}
			}
		})
	}
	// The operators hand-deliver v2 to patient zero 12 h after losing
	// their domains (at the same wall offset in the undisturbed run).
	deliverAt := takedownAt + 12*time.Hour
	if takedownAt == 0 {
		deliverAt = 84 * time.Hour
	}
	w.K.Schedule(deliverAt, "r1-update-delivery", func() {
		hosts[0].Execute(update, true)
	})
	if err := w.K.RunFor(7 * 24 * time.Hour); err != nil {
		return nil, err
	}

	infected, atV2 := 0, 0
	for _, h := range hosts {
		if sx.Infected(h.Name) {
			infected++
			if sx.Version(h.Name) >= 2 {
				atV2++
			}
		}
	}
	share := 0.0
	if infected > 0 {
		share = float64(atV2) / float64(infected)
	}

	res := &Result{
		ID:    "R1",
		Title: "Stuxnet C&C takedown: P2P version convergence",
		Paper: "\"updates could be installed on computers that were not connected to the Internet through a P2P network\" (II-A), under profile " + prof.Name,
	}
	res.metric("fleet", float64(fleet), "hosts")
	res.metric("infected_hosts", float64(infected), "hosts")
	res.metric("hosts_at_v2", float64(atV2), "hosts")
	res.metric("v2_share", share, "fraction")
	res.metric("p2p_syncs", float64(sx.Stats.P2PSyncs), "syncs")
	res.metric("beacon_failovers", float64(sx.Stats.BeaconFailovers), "failovers")
	res.metric("domains_taken_down", float64(eng.Stats.Takedowns), "domains")
	if takedownAt > 0 && prof.NXWindow == 0 {
		res.Pass = infected == fleet && share >= 0.9 && sx.Stats.P2PSyncs > 0
		res.summaryf("with both futbol domains seized, v2 reached %d/%d infected hosts (%.0f%%) purely over LAN P2P (%d syncs)",
			atV2, infected, share*100, sx.Stats.P2PSyncs)
		res.notef("every p2p sync span's causal parent is the takedown intervention")
	} else {
		res.Pass = infected == fleet && atV2 >= 1
		res.summaryf("profile %s: %d/%d infected, %d at v2 (%d p2p syncs)",
			prof.Name, infected, fleet, atV2, sx.Stats.P2PSyncs)
	}
	res.CaptureObs(w.K)
	return res, nil
}

// RunR2FlameDomainAgility answers: does the Flame platform survive losing
// its bootstrap domains? The operators re-register replacements from the
// same generator (the paper's 80-domain shape accreted through exactly
// such churn), clients rotate and pick up the new configuration, and when
// researchers finally sinkhole the whole pool the census records every
// surviving client checking in (Section III-B).
func RunR2FlameDomainAgility(seed uint64) (*Result, error) {
	prof := faultProfile
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	esp, err := BuildEspionage(w, EspionageOptions{
		Hosts: 6, DocsPerHost: 10, Domains: 24, ServerIPs: 6,
		BeaconEvery: 2 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	for _, h := range esp.Hosts[1:] {
		if _, err := h.Execute(esp.Flame.MainImage, true); err != nil {
			return nil, err
		}
	}

	eng := faults.NewEngine(w.K, w.Internet)
	sink := faults.NewSinkhole(w.K, "198.51.100.250")

	takedownAt := prof.TakedownAt
	if takedownAt == 0 {
		takedownAt = 72 * time.Hour // R2 is about the takedown; "none" skips it below
	}
	boot := esp.Center.Pool.BootstrapConfig(4)
	recovered := 0
	if prof.Active() {
		// Seize the first four bootstrap domains; clients rotate to the
		// fifth, the operators notice and extend the pool a day later.
		w.K.Schedule(takedownAt, "r2-takedown", func() {
			for _, d := range boot {
				if prof.NXWindow > 0 {
					eng.NXWindow(d, prof.NXWindow)
				} else {
					eng.TakedownDomain(d)
				}
			}
		})
		w.K.Schedule(takedownAt+24*time.Hour, "r2-reregister", func() {
			recovered = esp.Center.Operator().RecoverFromTakedown(w.Internet)
		})
		sinkholeAt := prof.SinkholeAt
		if sinkholeAt == 0 {
			sinkholeAt = takedownAt + 48*time.Hour
		}
		w.K.Schedule(sinkholeAt, "r2-sinkhole", func() {
			eng.SinkholeDomains(esp.Center.Pool.Domains(), sink)
		})
	}
	if err := w.K.RunFor(7 * 24 * time.Hour); err != nil {
		return nil, err
	}

	alive := esp.Flame.InfectedCount()
	rotations, failovers := 0, 0
	for _, a := range esp.Flame.Agents() {
		rotations += a.BeaconStats().Rotations
		failovers += a.BeaconStats().Failovers
	}

	res := &Result{
		ID:    "R2",
		Title: "Flame domain takedown: re-registration and sinkhole census",
		Paper: "~80 domains / 22 IPs with churn; sinkholed domains still drew check-ins from surviving clients (III-B), under profile " + prof.Name,
	}
	res.metric("agents_alive", float64(alive), "agents")
	res.metric("domains_taken_down", float64(eng.Stats.Takedowns), "domains")
	res.metric("domains_reregistered", float64(recovered), "domains")
	res.metric("domains_sinkholed", float64(eng.Stats.Sinkholes), "domains")
	res.metric("beacon_rotations", float64(rotations), "rotations")
	res.metric("beacon_failovers", float64(failovers), "failovers")
	res.metric("sinkhole_checkins", float64(sink.Checkins()), "checkins")
	res.metric("sinkhole_distinct_clients", float64(sink.DistinctClients()), "clients")
	if prof.Active() {
		res.Pass = alive == len(esp.Hosts) && recovered > 0 && rotations > 0 &&
			sink.DistinctClients() == alive
		res.summaryf("%d domains seized -> clients rotated (%d rotations), operators re-registered %d replacements; the sinkhole census saw all %d surviving clients (%d check-ins)",
			eng.Stats.Takedowns, rotations, recovered, sink.DistinctClients(), sink.Checkins())
		res.notef("the census works because the sinkhole answers the platform's own GET_NEWS protocol with an empty package list")
	} else {
		res.Pass = alive == len(esp.Hosts) && failovers == 0
		res.summaryf("baseline: all %d agents alive, no failovers, no sinkhole", alive)
	}
	res.CaptureObs(w.K)
	return res, nil
}

// RunR3ShamoonBlackout answers: does cutting the network stop the wiper?
// It must not — Shamoon's kill switch is a local scheduled task, and the
// paper's point is that the damage needs no C&C once armed. Under a total
// LAN blackout the spread curve freezes, the reporter goes silent, and
// every already-infected machine still wipes on schedule.
func RunR3ShamoonBlackout(seed uint64) (*Result, error) {
	prof := faultProfile
	w, err := NewWorld(WorldConfig{Seed: seed, Start: shamoon.AramcoTrigger.Add(-48 * time.Hour)})
	if err != nil {
		return nil, err
	}
	ar, err := BuildAramco(w, AramcoOptions{
		Workstations: 40, DocsPerHost: 3,
		SpreadEvery: 12 * time.Hour, MaxPerSweep: 1,
	})
	if err != nil {
		return nil, err
	}
	eng := faults.NewEngine(w.K, w.Internet)
	if prof.Active() && prof.LossAt > 0 {
		w.K.Schedule(prof.LossAt, "r3-blackout", func() {
			eng.ImpairLAN(ar.LAN, netsim.Impairment{Loss: prof.Loss, Latency: prof.Latency})
		})
	}
	if err := w.K.RunUntil(shamoon.AramcoTrigger.Add(2 * time.Hour)); err != nil {
		return nil, err
	}

	infected := ar.Shamoon.InfectedCount()
	wiped := ar.WipedCount()
	res := &Result{
		ID:    "R3",
		Title: "Shamoon under network blackout: wipe needs no C&C",
		Paper: "the wiper triggers from a local scheduled task at the armed date (IV-B); connectivity loss cannot recall it, under profile " + prof.Name,
	}
	res.metric("fleet", float64(len(ar.Hosts)), "hosts")
	res.metric("infected_hosts", float64(infected), "hosts")
	res.metric("wiped_hosts", float64(wiped), "hosts")
	res.metric("wipe_reports_home", float64(len(ar.Reports)), "reports")
	res.metric("lan_impairments", float64(eng.Stats.Impairments), "faults")
	switch {
	case prof.Active() && prof.LossAt > 0 && prof.Loss >= 1:
		res.Pass = wiped == infected && infected > 0 && infected < len(ar.Hosts) && len(ar.Reports) == 0
		res.summaryf("blackout at T-%s froze spread at %d/%d hosts, yet all %d wiped on schedule with 0 reports home",
			(48*time.Hour - prof.LossAt), infected, len(ar.Hosts), wiped)
		res.notef("the spread curve freezing while the wipe completes is the experiment's point: takedown mitigates propagation, never detonation")
	case prof.Active() && prof.LossAt > 0:
		res.Pass = wiped == infected && infected > 0
		res.summaryf("partial loss (%.0f%%): %d infected, all %d wiped on schedule", prof.Loss*100, infected, wiped)
	default:
		res.Pass = wiped == infected && infected > 0 && len(ar.Reports) > 0
		res.summaryf("baseline: %d infected, %d wiped, %d reports home", infected, wiped, len(ar.Reports))
	}
	res.CaptureObs(w.K)
	return res, nil
}

// RunR4CrashPersistence answers: which artefacts survive adversarial
// crash/reboot cycles, and does a mid-campaign patch rollout actually
// close the spooler gate? Wave A (unpatched) endures daily crash cycles —
// its registry keys, boot-start drivers and on-disk images must all
// persist. Wave B joins the LAN after the engine patched MS10-061, so the
// worm's one-shot spooler attempts against it must fail.
func RunR4CrashPersistence(seed uint64) (*Result, error) {
	prof := faultProfile
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	lan := w.NewLAN("plantnet", "10.50.0", false)
	sx, err := stuxnet.Build(w.K, stuxnet.Config{
		DriverKey:   w.PKI.StolenKey,
		DriverCerts: []*pki.Certificate{w.PKI.RealtekCert, w.PKI.JMicronCert},
		SpreadEvery: 6 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	sx.BindTo(w.Registry)

	const waveACount, waveBCount = 7, 6
	waveSpecs := func(prefix string, n int) []HostSpec {
		specs := make([]HostSpec, n)
		for i := range specs {
			specs[i] = HostSpec{
				Name: fmt.Sprintf("%s-%02d", prefix, i+1),
				Opts: []host.Option{host.WithOS(host.Win7), host.WithShares(true)},
			}
		}
		return specs
	}
	waveA, err := w.AddHostsSharded(lan, 0, waveSpecs("WAVEA", waveACount))
	if err != nil {
		return nil, err
	}
	if _, err := waveA[0].Execute(sx.MainImage, true); err != nil {
		return nil, err
	}

	eng := faults.NewEngine(w.K, w.Internet)
	if prof.Active() && prof.CrashEvery > 0 {
		eng.StartCrashCycles(waveA, prof.CrashEvery, prof.CrashFraction, prof.Downtime)
	}
	patchAt := prof.PatchAt
	if patchAt == 0 {
		patchAt = 72 * time.Hour
	}
	var waveB []*host.Host
	w.K.Schedule(patchAt+24*time.Hour, "r4-wave-b", func() {
		// Sharded build mid-run is safe: the kernel is inside this event,
		// and workers only read shared state.
		waveB, err = w.AddHostsSharded(lan, 0, waveSpecs("WAVEB", waveBCount))
		if err != nil {
			return
		}
		if prof.Active() && prof.PatchAt > 0 {
			// The rollout closed the spooler gate before these machines
			// ever saw the worm.
			eng.PatchHosts(waveB, stuxnet.MS10_061)
		}
	})
	if err := w.K.RunFor(7 * 24 * time.Hour); err != nil {
		return nil, err
	}
	if err != nil { // wave-B build failure inside the timer event
		return nil, err
	}

	infectedA, persisted, reboots := 0, 0, 0
	for _, h := range waveA {
		if sx.Infected(h.Name) {
			infectedA++
		}
		reboots += h.BootCount
		if h.FS.Exists(host.SystemDir + `\drivers\mrxcls.sys`) {
			if _, ok := h.Registry.Get(`HKLM\SYSTEM\CurrentControlSet\Services\mrxcls.sys`); ok {
				persisted++
			}
		}
	}
	infectedB := 0
	for _, h := range waveB {
		if sx.Infected(h.Name) {
			infectedB++
		}
	}

	res := &Result{
		ID:    "R4",
		Title: "Crash cycles and mid-campaign patching",
		Paper: "service/driver persistence survives reboots; patching MS10-061 closes the spooler vector for machines not yet reached, under profile " + prof.Name,
	}
	res.metric("wave_a_infected", float64(infectedA), "hosts")
	res.metric("wave_a_persisted", float64(persisted), "hosts")
	res.metric("wave_b_infected", float64(infectedB), "hosts")
	res.metric("crashes", float64(eng.Stats.Crashes), "crashes")
	res.metric("reboots", float64(reboots), "reboots")
	res.metric("patches_applied", float64(eng.Stats.Patches), "patches")
	if prof.Active() && prof.PatchAt > 0 {
		res.Pass = infectedA == waveACount && persisted == waveACount &&
			infectedB == 0 && eng.Stats.Crashes > 0
		res.summaryf("%d crashes/%d reboots left all %d wave-A infections persistent (driver + registry intact); the patched wave B stayed clean (0/%d)",
			eng.Stats.Crashes, reboots, persisted, waveBCount)
		res.notef("crash kills processes and timers; only registry-, service- and disk-backed artefacts carry across the reboot")
	} else {
		res.Pass = infectedA == waveACount && infectedB == waveBCount
		res.summaryf("baseline: worm reached all %d wave-A and all %d unpatched wave-B hosts",
			infectedA, infectedB)
	}
	res.CaptureObs(w.K)
	return res, nil
}

// RunR5AVAttrition answers: what does signature-based remediation actually
// buy against a resident platform? AV sweeps quarantine the on-disk
// installer by content digest, but the running agent only dies when a
// reboot hits the broken persistence chain — so attrition tracks the
// crash schedule, not the sweep schedule.
func RunR5AVAttrition(seed uint64) (*Result, error) {
	prof := faultProfile
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	esp, err := BuildEspionage(w, EspionageOptions{
		Hosts: 8, DocsPerHost: 10, Domains: 20, ServerIPs: 5,
		BeaconEvery: 2 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	for _, h := range esp.Hosts[1:] {
		if _, err := h.Execute(esp.Flame.MainImage, true); err != nil {
			return nil, err
		}
	}

	eng := faults.NewEngine(w.K, w.Internet)
	known := faults.Digests(esp.Flame.MainImage)
	if prof.Active() && prof.AVStartAt > 0 {
		w.K.Schedule(prof.AVStartAt, "r5-av-start", func() {
			eng.AVSweep(esp.Hosts, known)
			eng.StartAVSweeps(esp.Hosts, known, prof.AVSweepEvery)
		})
	}
	if prof.Active() && prof.CrashEvery > 0 {
		eng.StartCrashCycles(esp.Hosts, prof.CrashEvery, prof.CrashFraction, prof.Downtime)
	}
	if err := w.K.RunFor(7 * 24 * time.Hour); err != nil {
		return nil, err
	}

	alive := esp.Flame.InfectedCount()
	res := &Result{
		ID:    "R5",
		Title: "AV remediation sweeps vs. resident Flame agents",
		Paper: "quarantining the dropped installer breaks the LSA persistence chain; the agent dies at its next boot, not at scan time, under profile " + prof.Name,
	}
	res.metric("agents_start", float64(len(esp.Hosts)), "agents")
	res.metric("agents_alive", float64(alive), "agents")
	res.metric("agents_remediated", float64(esp.Flame.Stats.AgentsRemediated), "agents")
	res.metric("files_quarantined", float64(eng.Stats.Quarantines), "files")
	res.metric("crashes", float64(eng.Stats.Crashes), "crashes")
	if prof.Active() && prof.AVStartAt > 0 && prof.CrashEvery > 0 {
		res.Pass = eng.Stats.Quarantines >= len(esp.Hosts) &&
			esp.Flame.Stats.AgentsRemediated >= 1 && alive < len(esp.Hosts)
		res.summaryf("%d quarantines + %d crashes killed %d/%d agents; residents on never-rebooted machines kept running",
			eng.Stats.Quarantines, eng.Stats.Crashes, esp.Flame.Stats.AgentsRemediated, len(esp.Hosts))
		res.notef("remediation completes only when quarantine and reboot intersect — the defender needs both")
	} else {
		res.Pass = alive == len(esp.Hosts) && eng.Stats.Quarantines == 0
		res.summaryf("baseline: all %d agents alive, nothing quarantined", alive)
	}
	res.CaptureObs(w.K)
	return res, nil
}

package core

import "repro/internal/users"

// activityMix is the process-wide default benign-activity mix, applied
// to any fleet whose options leave Activity unset. `cyberlab -activity`
// sets it; experiments that need a populated world (D4/D5) pass an
// explicit mix instead so their results don't depend on the flag.
var activityMix users.Mix

// SetActivityMix installs the global default mix by name. "" and "none"
// both clear it (silent fleets, the historical default).
func SetActivityMix(name string) error {
	if name == "" {
		activityMix = ""
		return nil
	}
	m, err := users.ParseMix(name)
	if err != nil {
		return err
	}
	activityMix = m
	return nil
}

// ActivityMixName returns the global default mix's name ("" when no mix
// is installed). Journals and checkpoints record it: the mix is part of
// the determinism contract, so a resume or fork under a different mix
// must be refused rather than silently produce different bytes.
func ActivityMixName() string { return string(activityMix) }

// fleetMix resolves a scenario's Activity option against the global
// default: an explicit option wins (users.MixNone forces silence even
// under a global default); the zero value defers to SetActivityMix.
// Returns "" when no population should be attached.
func fleetMix(opt users.Mix) users.Mix {
	if opt == users.MixNone {
		return ""
	}
	if opt != "" {
		return opt
	}
	if activityMix == users.MixNone {
		return ""
	}
	return activityMix
}

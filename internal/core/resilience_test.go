package core

// Failure-injection tests: campaigns under partial defences. The paper's
// trends section argues current security mechanisms were ineffective
// *as deployed*; these tests check the models degrade believably when the
// defences do land.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/host"
	"repro/internal/malware/shamoon"
	"repro/internal/netsim"
)

// TestStuxnetDegradesWithoutRootkit: if the stolen vendor certificates are
// distrusted before infection, the rootkit drivers fail to load but the
// user-mode infection and the PLC man-in-the-middle still function — the
// drivers buy stealth, not capability.
func TestStuxnetDegradesWithoutRootkit(t *testing.T) {
	w, err := NewWorld(WorldConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildNatanz(w, NatanzOptions{OfficeHosts: 0, MachinesPerDrive: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Plant.Stop()
	// Revoke the stolen identities fleet-wide before delivery.
	sc.Engineer.CertStore.Distrust(w.PKI.RealtekCert.Serial, "revoked")
	sc.Engineer.CertStore.Distrust(w.PKI.JMicronCert.Serial, "revoked")

	w.K.RunFor(time.Hour)
	if err := sc.Deliver(); err != nil {
		t.Fatal(err)
	}
	w.K.RunFor(3 * time.Hour)

	if !sc.Stuxnet.Infected("ENG-STATION") {
		t.Fatal("infection should not depend on the rootkit")
	}
	if sc.Stuxnet.Stats.RootkitLoads != 0 || sc.Stuxnet.Stats.RootkitLoadErrors != 2 {
		t.Fatalf("rootkit stats = %+v", sc.Stuxnet.Stats)
	}
	if sc.Plant.DestroyedCount() == 0 {
		t.Fatal("PLC payload should still function without the Windows rootkit")
	}
}

// TestFlameSpreadBlockedByAV: hosts carrying post-disclosure signatures
// refuse the fake update payload; unprotected neighbours still fall.
func TestFlameSpreadBlockedByAV(t *testing.T) {
	w, err := NewWorld(WorldConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildEspionage(w, EspionageOptions{Hosts: 6, DocsPerHost: 2, Domains: 10, ServerIPs: 2,
		BeaconEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := analysis.CompileDisclosureRules("flame")
	if err != nil {
		t.Fatal(err)
	}
	// Protect hosts 2 and 3: the update stub passes (it carries none of
	// the flame markers) but the mssecmgr.ocx it drops is scanned on
	// execution and blocked.
	protectedNames := map[string]bool{}
	for _, h := range sc.Hosts[1:3] {
		h.AddSecurity(analysis.NewSignatureAV("SimAV", rules))
		protectedNames[h.Name] = true
	}
	sc.PushSpreadModules()
	w.K.RunFor(2 * time.Hour)

	for _, h := range sc.Hosts[1:] {
		sc.LAN.BrowserLaunch(h)
		netsim.CheckForUpdates(sc.LAN, h)
	}
	for _, h := range sc.Hosts[3:] {
		if sc.Flame.Agent(h.Name) == nil {
			t.Fatalf("unprotected host %s not infected", h.Name)
		}
	}
	for name := range protectedNames {
		if a := sc.Flame.Agent(name); a != nil {
			t.Fatalf("protected host %s infected", name)
		}
	}
}

// TestShamoonPartialFleet: closed-share machines survive both infection
// and the wipe; the damage tracks the share-exposure fraction exactly.
func TestShamoonPartialFleet(t *testing.T) {
	start := shamoon.AramcoTrigger.Add(-12 * time.Hour)
	w, err := NewWorld(WorldConfig{Seed: 7, Start: start})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildAramco(w, AramcoOptions{Workstations: 20, DocsPerHost: 2, SpreadEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Harden a third of the fleet (not patient zero).
	hardened := 0
	for i, h := range sc.Hosts {
		if i != 0 && i%3 == 0 {
			h.SharesOpen = false
			hardened++
		}
	}
	w.K.RunUntil(shamoon.AramcoTrigger.Add(time.Hour))

	wiped, survived := 0, 0
	for _, h := range sc.Hosts {
		if h.Wiped {
			wiped++
		} else {
			survived++
		}
	}
	if survived != hardened {
		t.Fatalf("survived = %d, hardened = %d", survived, hardened)
	}
	if wiped != len(sc.Hosts)-hardened {
		t.Fatalf("wiped = %d", wiped)
	}
	// Survivors still boot.
	for _, h := range sc.Hosts {
		if !h.Wiped && !h.Bootable() {
			t.Fatalf("%s survived infection but lost its MBR", h.Name)
		}
	}
}

// TestShamoonMaxPerSweepBounds: the per-round fan-out cap holds.
func TestShamoonMaxPerSweepBounds(t *testing.T) {
	start := shamoon.AramcoTrigger.Add(-48 * time.Hour)
	w, err := NewWorld(WorldConfig{Seed: 8, Start: start})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildAramco(w, AramcoOptions{
		Workstations: 40, DocsPerHost: 1, SpreadEvery: time.Hour, MaxPerSweep: 2, LeanImages: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the first sweep (1 infected host, cap 2) at most 3 hosts are
	// infected; growth is bounded by 3x per round thereafter.
	w.K.RunFor(61 * time.Minute)
	if got := sc.Shamoon.InfectedCount(); got > 3 {
		t.Fatalf("first round infected %d, cap is 2 new per host", got)
	}
	prev := sc.Shamoon.InfectedCount()
	for i := 0; i < 5; i++ {
		w.K.RunFor(time.Hour)
		now := sc.Shamoon.InfectedCount()
		if now > prev*3 {
			t.Fatalf("round %d: %d -> %d exceeds 3x bound", i, prev, now)
		}
		prev = now
	}
}

// TestWorldMixedCampaigns: two families coexist in one world without
// cross-talk (distinct digests dispatch to distinct implants).
func TestWorldMixedCampaigns(t *testing.T) {
	start := shamoon.AramcoTrigger.Add(-6 * time.Hour)
	w, err := NewWorld(WorldConfig{Seed: 9, Start: start})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := BuildAramco(w, AramcoOptions{Workstations: 4, DocsPerHost: 2})
	if err != nil {
		t.Fatal(err)
	}
	esp, err := BuildEspionage(w, EspionageOptions{Hosts: 3, DocsPerHost: 2, Domains: 10, ServerIPs: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.K.RunUntil(shamoon.AramcoTrigger.Add(time.Hour))

	if ar.WipedCount() != 4 {
		t.Fatalf("aramco wiped = %d", ar.WipedCount())
	}
	if esp.Flame.InfectedCount() != 1 {
		t.Fatalf("flame agents = %d", esp.Flame.InfectedCount())
	}
	// The espionage LAN is untouched by the wiper.
	for _, h := range esp.Hosts {
		if h.Wiped {
			t.Fatalf("flame host %s wiped by shamoon", h.Name)
		}
	}
}

// TestAramcoScaleSweep: the fleet mechanics are size-invariant.
func TestAramcoScaleSweep(t *testing.T) {
	for _, fleet := range []int{10, 100, 500} {
		res, err := runAramcoScale(3, fleet)
		if err != nil {
			t.Fatalf("fleet %d: %v", fleet, err)
		}
		if !res.Pass {
			t.Fatalf("fleet %d did not reproduce:\n%s", fleet, res.Render())
		}
		if res.MustMetric("wiped_unbootable") != float64(fleet) {
			t.Fatalf("fleet %d: wiped = %v", fleet, res.MustMetric("wiped_unbootable"))
		}
	}
}

// TestExperimentsAcrossSeeds: every fast experiment reproduces across a
// seed sweep, not just seed 1.
func TestExperimentsAcrossSeeds(t *testing.T) {
	fast := []string{"F3", "F5", "F6", "C3", "C8", "C9", "C10", "C11", "E2"}
	for _, id := range fast {
		for seed := uint64(2); seed <= 4; seed++ {
			res, err := Experiments[id](seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", id, seed, err)
			}
			if !res.Pass {
				t.Fatalf("%s seed %d did not reproduce:\n%s", id, seed, res.Render())
			}
		}
	}
	_ = fmt.Sprint
	_ = host.Win7
}

package core

import (
	"errors"
	"strings"
	"testing"
)

func TestRenderExperimentsMarkdownShape(t *testing.T) {
	reports := []RunReport{
		{ID: "F1", Result: &Result{
			ID: "F1", Paper: "multi|line\nclaim", Summary: "4 hosts | 1 project", Pass: true,
		}},
		{ID: "T1", Result: &Result{
			ID: "T1", Paper: "taxonomy", Summary: "profiles ordered", Pass: false,
			Blocks: []string{"trend table\nrow two"},
		}},
		{ID: "C1", Err: errors.New("experiment C1: boom")},
	}
	md := RenderExperimentsMarkdown(reports, 7)

	if !strings.HasPrefix(md, ReportHeader) {
		t.Fatalf("missing generated-file header:\n%s", md[:80])
	}
	for _, want := range []string{
		"| F1 | multi\\|line; claim | 4 hosts \\| 1 project | PASS |",
		"| T1 | taxonomy | profiles ordered | FAIL |",
		"| C1 | — | error: experiment C1: boom | ERROR |",
		"Measured (seed 7)",
		"```\ntrend table\nrow two\n```",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Sections with no reports at all are omitted entirely.
	if strings.Contains(md, "## Extensions") {
		t.Error("empty section rendered")
	}
}

func TestRenderExperimentsMarkdownOrderIndependent(t *testing.T) {
	a := []RunReport{
		{ID: "F1", Result: &Result{ID: "F1", Summary: "x", Pass: true}},
		{ID: "F2", Result: &Result{ID: "F2", Summary: "y", Pass: true}},
	}
	b := []RunReport{a[1], a[0]}
	if RenderExperimentsMarkdown(a, 1) != RenderExperimentsMarkdown(b, 1) {
		t.Fatal("report depends on input report order")
	}
}

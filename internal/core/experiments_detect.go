package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/detect"
	"repro/internal/host"
	"repro/internal/malware/shamoon"
	"repro/internal/pe"
	"repro/internal/provenance"
)

// The D-series evaluates the streaming detection engine (internal/detect)
// against live campaigns: D1 measures coverage and latency against the
// campaign the rule pack was written for, D2 measures how much of the
// pack generalizes to an unrelated weapon, and D3 measures the
// false-positive surface against purely benign administration. Together
// they are the paper's "detection is possible from commodity telemetry"
// counterpoint to the weapons chapters.

// ruleCoverageBlock renders the per-rule firing table shared by the
// D-series reports: one row per rule in pack order, fire count, and the
// virtual-time offset of the first alert (or "-" for silent rules).
func ruleCoverageBlock(en *detect.Engine, start time.Time) string {
	alerts := en.Alerts()
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %5s  %s\n", "rule", "fires", "first alert (offset)")
	for _, r := range en.Rules() {
		first := "-"
		for _, a := range alerts {
			if a.Rule == r.Name {
				first = fmt.Sprintf("+%s", a.At.Sub(start))
				break
			}
		}
		fmt.Fprintf(&b, "%-22s %5d  %s\n", r.Name, en.FireCount(r.Name), first)
	}
	return b.String()
}

// RunD1CNIDetection answers: watching nothing but the range's commodity
// telemetry stream (task registrations, RDP logins, SMB executions,
// C2 check-ins), does the translated CNI rule pack see the whole
// espionage campaign, and how fast? Every rule must fire, the three-stage
// kill-chain sequence must assemble, and every alert must carry a causal
// span that chains back to the campaign's web-shell root in the
// provenance forest.
func RunD1CNIDetection(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	sc, err := BuildCNI(w, CNIOptions{Workstations: 6, Rules: detect.CNIRulePack()})
	if err != nil {
		return nil, err
	}
	start := w.K.Now()
	if err := sc.Intrude(); err != nil {
		return nil, err
	}
	if err := w.K.RunFor(14 * 24 * time.Hour); err != nil {
		return nil, err
	}

	en := sc.Engine
	alerts := en.Alerts()
	fired := 0
	for _, r := range en.Rules() {
		if en.FireCount(r.Name) > 0 {
			fired++
		}
	}
	firstAlert := time.Duration(-1)
	if len(alerts) > 0 {
		firstAlert = alerts[0].At.Sub(start)
	}
	killChain := time.Duration(-1)
	for _, a := range alerts {
		if a.Rule == "cni-kill-chain" {
			killChain = a.At.Sub(start)
			break
		}
	}

	// Attribution: every live alert span must exist in a valid forest.
	f := provenance.Build(w.K.Trace().Events())
	issues := f.Validate()
	unattributed := 0
	for _, a := range alerts {
		if a.Span == 0 || f.Node(provenance.NodeID{Span: a.Span}) == nil {
			unattributed++
		}
	}

	fleet := 1 + len(sc.Workstations)
	res := &Result{
		ID:    "D1",
		Title: "Streaming detection of the CNI espionage campaign",
		Paper: "the CNI hunting content (web-shell drops, Event-4698 tasks, Event-1149 RDP chains, PSEXESVC, proxy-tool beaconing) detects the intrusion end to end",
	}
	res.metric("fleet", float64(fleet), "hosts")
	res.metric("infected_hosts", float64(sc.CNI.InfectedCount()), "hosts")
	res.metric("events_seen", float64(en.Seen()), "events")
	res.metric("rules_total", float64(len(en.Rules())), "rules")
	res.metric("rules_fired", float64(fired), "rules")
	res.metric("alerts", float64(len(alerts)), "alerts")
	res.metric("first_alert_latency", firstAlert.Hours(), "h")
	res.metric("killchain_latency", killChain.Hours(), "h")
	res.metric("unattributed_alerts", float64(unattributed), "alerts")
	res.metric("false_positives", 0, "alerts") // no benign actors in this world
	res.Pass = sc.CNI.InfectedCount() == fleet &&
		fired == len(en.Rules()) && len(alerts) > 0 &&
		killChain >= 0 && unattributed == 0 && len(issues) == 0
	res.summaryf("all %d/%d rules fired (%d alerts over %d events); first alert at +%.0fh, kill-chain confirmed at +%.0fh, every alert span chains to the web-shell root",
		fired, len(en.Rules()), len(alerts), en.Seen(), firstAlert.Hours(), killChain.Hours())
	res.notef("detection needs no malware-specific hooks: the engine subscribes to the same trace every experiment already emits")
	res.block(ruleCoverageBlock(en, start))
	res.CaptureObs(w.K)
	return res, nil
}

// RunD2CrossCampaign answers: how much of the CNI pack is behavioural
// (generalizes to a weapon it was never written for) versus
// campaign-specific? Against Shamoon's SMB fan-out the two PsExec rules
// must fire — the telemetry is the same PSEXESVC pattern — while the
// web-shell, VPN, task-path, proxy and kill-chain content must stay
// silent: Shamoon persists under System32, reports home with its own
// protocol, and never touches RDP.
func RunD2CrossCampaign(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed, Start: shamoon.AramcoTrigger.Add(-72 * time.Hour)})
	if err != nil {
		return nil, err
	}
	// Attach before the build so the rules see patient zero's infection.
	en, err := detect.Attach(w.K, detect.CNIRulePack())
	if err != nil {
		return nil, err
	}
	start := w.K.Now()
	ar, err := BuildAramco(w, AramcoOptions{
		Workstations: 24, DocsPerHost: 2,
		SpreadEvery: 12 * time.Hour, MaxPerSweep: 4, LeanImages: true,
	})
	if err != nil {
		return nil, err
	}
	if err := w.K.RunUntil(shamoon.AramcoTrigger.Add(2 * time.Hour)); err != nil {
		return nil, err
	}

	// The pack's own Scope metadata is the prediction; this experiment is
	// the measurement that keeps it honest.
	behaviouralTotal, behaviouralFired, specificFired := 0, 0, 0
	for _, r := range en.Rules() {
		if r.Scope == detect.ScopeBehavioural {
			behaviouralTotal++
		}
		if en.FireCount(r.Name) == 0 {
			continue
		}
		if r.Scope == detect.ScopeBehavioural {
			behaviouralFired++
		} else {
			specificFired++
		}
	}

	res := &Result{
		ID:    "D2",
		Title: "Rule-pack specificity: CNI content vs. the Shamoon wiper",
		Paper: "behavioural rules (remote-execution telemetry) transfer across weapons; campaign-specific content does not",
	}
	res.metric("fleet", float64(len(ar.Hosts)), "hosts")
	res.metric("infected_hosts", float64(ar.Shamoon.InfectedCount()), "hosts")
	res.metric("events_seen", float64(en.Seen()), "events")
	res.metric("behavioural_rules_fired", float64(behaviouralFired), "rules")
	res.metric("specific_rules_fired", float64(specificFired), "rules")
	res.metric("alerts", float64(len(en.Alerts())), "alerts")
	res.Pass = ar.Shamoon.InfectedCount() > 1 &&
		behaviouralFired == behaviouralTotal && specificFired == 0
	res.summaryf("against Shamoon only the %d behavioural PsExec rules fired (%d alerts); all %d campaign-specific CNI rules stayed silent",
		behaviouralFired, len(en.Alerts()), len(en.Rules())-behaviouralTotal)
	res.notef("the split is the point: telemetry-shape rules buy cross-weapon coverage, IOC-shaped rules buy precision")
	res.block(ruleCoverageBlock(en, start))
	res.CaptureObs(w.K)
	return res, nil
}

// RunD3FalsePositives answers: what does the pack cost in false positives
// against purely benign IT administration? A staged nightly patch rollout
// (RDP in, copy, remote-exec — one host per night) plus routine
// Program-Files scheduled tasks. The single-event PsExec rule fires on
// every rollout night — remote execution IS the deployment mechanism, and
// triage cost is the honest price of that rule — but every threshold,
// sequence and campaign-specific rule must stay at zero.
func RunD3FalsePositives(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	en, err := detect.Attach(w.K, detect.CNIRulePack())
	if err != nil {
		return nil, err
	}
	start := w.K.Now()
	lan := w.NewLAN("corp-benign", "10.70.0", false)
	admin := w.AddHost(lan, "IT-ADMIN", host.WithShares(true), host.WithInternet(true))
	const fleetSize = 5
	fleet := make([]*host.Host, fleetSize)
	for i := range fleet {
		fleet[i] = w.AddHost(lan, fmt.Sprintf("CORP-%02d", i+1),
			host.WithShares(true), host.WithInternet(true))
		// Routine persistence: a nightly backup task under Program Files.
		fleet[i].ScheduleTask("nightly-backup",
			`C:\Program Files\BackupSuite\backup.exe`, w.K.Now().Add(30*24*time.Hour))
	}

	patch := &pe.File{
		Name: "kb-rollup.exe", Machine: pe.MachineX86,
		Timestamp: time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC),
		Sections: []pe.Section{{Name: ".text", Characteristics: pe.SecCode | pe.SecExec,
			Data: []byte("monthly security rollup installer\x00")}},
	}
	raw, err := patch.Marshal()
	if err != nil {
		return nil, err
	}
	const patchPath = `C:\Patches\kb-rollup.exe`
	// Staged rollout: one host per night, credentialed RDP then PsExec —
	// exactly the telemetry shapes the pack watches, at benign cadence.
	next := 0
	w.K.Every(24*time.Hour, "it-rollout", func() {
		if next >= len(fleet) {
			return
		}
		target := fleet[next]
		next++
		if err := lan.RDPLogin(admin, target.Name, "it-admin"); err != nil {
			return
		}
		if err := lan.CopyToShare(admin, target.Name, patchPath, raw); err != nil {
			return
		}
		lan.RemoteExec(admin, target.Name, patchPath)
	})
	if err := w.K.RunFor(7 * 24 * time.Hour); err != nil {
		return nil, err
	}

	perClass := map[string]int{}
	fpTotal := 0
	for _, r := range en.Rules() {
		n := en.FireCount(r.Name)
		fpTotal += n
		switch {
		case r.Threshold != nil:
			perClass["threshold"] += n
		case r.Sequence != nil:
			perClass["sequence"] += n
		case r.Name == "psexec-remote-exec":
			perClass["deployment"] += n
		default:
			perClass["other-single"] += n
		}
	}

	res := &Result{
		ID:    "D3",
		Title: "False-positive surface against benign administration",
		Paper: "threshold and sequence rules encode attacker cadence, so benign single-host-per-night operations never reach them",
	}
	res.metric("benign_hosts", float64(1+fleetSize), "hosts")
	res.metric("events_seen", float64(en.Seen()), "events")
	res.metric("false_positives", float64(fpTotal), "alerts")
	res.metric("fp_deployment_rule", float64(perClass["deployment"]), "alerts")
	res.metric("fp_threshold_rules", float64(perClass["threshold"]), "alerts")
	res.metric("fp_sequence_rules", float64(perClass["sequence"]), "alerts")
	res.metric("fp_other_single", float64(perClass["other-single"]), "alerts")
	res.Pass = perClass["deployment"] == fleetSize &&
		perClass["threshold"] == 0 && perClass["sequence"] == 0 &&
		perClass["other-single"] == 0
	res.summaryf("a week of benign administration cost %d false positives, all from the single-event PsExec rule (one per rollout night); every threshold, sequence and campaign-specific rule stayed at zero",
		fpTotal)
	res.notef("the remaining FPs are irreducible without allow-listing: remote execution is both the deployment mechanism and the lateral-movement primitive")
	res.block(ruleCoverageBlock(en, start))
	res.CaptureObs(w.K)
	return res, nil
}

package core

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/obs"
)

func TestD4NoisyPrecision(t *testing.T) {
	res := runExperiment(t, "D4")
	if v := res.MustMetric("recall"); v != 1 {
		t.Fatalf("noise cost recall: %v", v)
	}
	if v := res.MustMetric("false_positives"); v == 0 {
		t.Fatal("populated fleet produced zero false positives — the noise layer is not exercising the pack")
	}
	if v := res.MustMetric("unattributed_alerts"); v != 0 {
		t.Fatalf("%v alerts not attributable to a provenance root", v)
	}
}

func TestD5NoiseFloor(t *testing.T) {
	res := runExperiment(t, "D5")
	if v := res.MustMetric("fp_threshold_rules") + res.MustMetric("fp_sequence_rules"); v != 0 {
		t.Fatalf("stateful rules fired on pure noise: %v", v)
	}
	if res.MustMetric("false_positives") != res.MustMetric("maintenance_rounds") {
		t.Fatal("noise floor is not exactly one alert per admin maintenance round")
	}
	if v := res.MustMetric("fp_untriaged"); v != 0 {
		t.Fatalf("%v false positives do not chain to a benign session root", v)
	}
}

// userStream serializes a result's cat=user events to JSONL — the bytes
// the D5 golden excerpt is cut from.
func userStream(t *testing.T, res *Result) []byte {
	t.Helper()
	var evs []obs.Event
	for _, e := range res.Events {
		if e.Cat == "user" {
			evs = append(evs, e)
		}
	}
	if len(evs) == 0 {
		t.Fatal("no user events captured")
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestD4D5StreamsParallelByteIdentical extends the issue's determinism
// gate to the populated experiments: both the alert stream and the
// benign-activity stream must be byte-identical at 1, 4 and 8 workers.
func TestD4D5StreamsParallelByteIdentical(t *testing.T) {
	get := func(workers int) [][]byte {
		reports := RunExperiments([]string{"D4", "D5"}, 1, workers)
		if len(reports) != 2 {
			t.Fatalf("want 2 reports, got %d", len(reports))
		}
		var out [][]byte
		for _, r := range reports {
			if r.Err != nil {
				t.Fatalf("%s with %d workers: %v", r.ID, workers, r.Err)
			}
			out = append(out, alertStream(t, r.Result), userStream(t, r.Result))
		}
		return out
	}
	want := get(1)
	for _, workers := range []int{4, 8} {
		got := get(workers)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("stream %d with %d workers differs from sequential", i, workers)
			}
		}
	}
}

// TestAramcoBusyBuildWorkerInvariant: the populated fleet is
// byte-identical (same experiment metrics, same benign action counts)
// whatever the sharded-build worker count — the users layer attaches
// after the merge, so agent RNG forks happen in host order.
func TestAramcoBusyBuildWorkerInvariant(t *testing.T) {
	get := func(workers int) string {
		res, err := RunAramcoBusyN(1, 200, workers)
		if err != nil {
			t.Fatalf("RunAramcoBusyN(workers=%d): %v", workers, err)
		}
		return res.Render()
	}
	want := get(1)
	for _, workers := range []int{4, 8} {
		if got := get(workers); got != want {
			t.Fatalf("busy fleet with %d build workers diverged:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestBusyFleetMemoryBound is the issue's cost gate at reduced scale:
// populating the C7 fleet with office agents must stay within 1.3x of
// the silent baseline's allocations (the 30k-host version is pinned by
// BenchmarkUsersC7BusyReduced in the bench lane).
func TestBusyFleetMemoryBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	alloc := func(f func() error) float64 {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if err := f(); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return float64(after.TotalAlloc - before.TotalAlloc)
	}
	silent := alloc(func() error {
		res, err := RunAramcoScaleN(1, 2000, 0, false)
		if err == nil && !res.Pass {
			t.Fatal("silent C7 run failed its own criteria")
		}
		return err
	})
	busy := alloc(func() error {
		res, err := RunAramcoBusyN(1, 2000, 0)
		if err == nil && !res.Pass {
			t.Fatal("busy C7 run failed its own criteria")
		}
		return err
	})
	if ratio := busy / silent; ratio > 1.3 {
		t.Fatalf("populated fleet costs %.2fx the silent baseline (%.0f vs %.0f bytes), budget is 1.3x",
			ratio, busy, silent)
	}
}

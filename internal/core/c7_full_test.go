package core

import (
	"runtime"
	"testing"
)

// TestC7FullScale runs the complete 30,000-workstation experiment. It is
// the heaviest test in the repository; skip with -short.
func TestC7FullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("30k-host fleet run skipped in -short mode")
	}
	res, err := RunC7AramcoScale(1)
	if err != nil {
		t.Fatalf("C7: %v", err)
	}
	if !res.Pass {
		t.Fatalf("C7 did not reproduce:\n%s", res.Render())
	}
	if res.MustMetric("wiped_unbootable") != 30000 {
		t.Fatalf("wiped = %v", res.MustMetric("wiped_unbootable"))
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	t.Logf("heap after fleet run: %d MB", m.HeapAlloc>>20)
}

package core

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/sim"
)

// Metric is one measured quantity of an experiment.
type Metric struct {
	Name  string
	Value float64
	Unit  string
}

// Result is the outcome of one experiment run (one figure or claim from
// the paper).
type Result struct {
	ID      string
	Title   string
	Paper   string // what the paper reports, for side-by-side rendering
	Summary string // one-line measured outcome, rendered into EXPERIMENTS.md
	Metrics []Metric
	Notes   []string
	// Blocks are preformatted multi-line artefacts (tables, matrices)
	// appended to the generated report as fenced code blocks.
	Blocks []string
	Pass   bool

	// Obs is the merged metrics snapshot of every kernel the experiment
	// drove (see CaptureObs).
	Obs obs.Snapshot
	// Events are the retained trace records of those kernels, each tagged
	// exp=<ID>, in capture order.
	Events []obs.Event

	// spanBase offsets span IDs of later-captured kernels so multi-world
	// experiments keep span uniqueness within the result.
	spanBase uint64
}

func (r *Result) metric(name string, value float64, unit string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

func (r *Result) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func (r *Result) summaryf(format string, args ...any) {
	r.Summary = fmt.Sprintf(format, args...)
}

func (r *Result) block(s string) {
	r.Blocks = append(r.Blocks, strings.TrimRight(s, "\n"))
}

// CaptureObs folds each kernel's telemetry into the result: registry
// snapshots merge into Obs, retained trace records append to Events
// tagged with the experiment ID. Multi-world experiments call it once
// per world, in a fixed order; each kernel's span IDs are shifted past
// the previous kernels' allocations so the merged stream keeps span
// uniqueness (kernels allocate 1,2,3,… independently).
func (r *Result) CaptureObs(ks ...*sim.Kernel) {
	for _, k := range ks {
		// Flush the wall-clock telemetry tail (no-op without a probe);
		// this reads kernel state but writes nothing deterministic.
		k.FlushProbe()
		r.Obs.Merge(k.Metrics().Snapshot())
		events := k.Trace().Events()
		if base := obs.Span(r.spanBase); base != 0 {
			for i := range events {
				if events[i].Span != 0 {
					events[i].Span += base
				}
				if events[i].Parent != 0 {
					events[i].Parent += base
				}
			}
		}
		r.spanBase += k.SpanCount()
		obs.TagAll(events, obs.T("exp", r.ID))
		r.Events = append(r.Events, events...)
	}
}

// CaptureObsMerged is CaptureObs for partitioned worlds (DESIGN.md
// §14): metrics snapshots merge and span IDs anchor in partition order
// exactly as CaptureObs would, but instead of concatenating whole
// streams the retained trace records interleave into one time-ordered
// stream — a k-way merge keyed (vtime, partition index, record seq).
// Each kernel's stream is already vtime-nondecreasing in record order,
// so the merge is well-defined, and the key is pure simulation state:
// the merged bytes are invariant under the partition worker count.
func (r *Result) CaptureObsMerged(ks ...*sim.Kernel) {
	streams := make([][]obs.Event, len(ks))
	total := 0
	for i, k := range ks {
		k.FlushProbe()
		r.Obs.Merge(k.Metrics().Snapshot())
		events := k.Trace().Events()
		if base := obs.Span(r.spanBase); base != 0 {
			for j := range events {
				if events[j].Span != 0 {
					events[j].Span += base
				}
				if events[j].Parent != 0 {
					events[j].Parent += base
				}
			}
		}
		r.spanBase += k.SpanCount()
		obs.TagAll(events, obs.T("exp", r.ID))
		streams[i] = events
		total += len(events)
	}
	merged := make([]obs.Event, 0, total)
	idx := make([]int, len(streams))
	for len(merged) < total {
		best := -1
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			// Strict Before keeps ties on the lowest partition index —
			// the partition-anchor component of the merge key.
			if best == -1 || s[idx[i]].At.Before(streams[best][idx[best]].At) {
				best = i
			}
		}
		merged = append(merged, streams[best][idx[best]])
		idx[best]++
	}
	r.Events = append(r.Events, merged...)
}

// provenanceTreeLimit caps the rendered tree; larger forests (C7 runs
// 30,000 hosts) report stats only.
const provenanceTreeLimit = 40

// attachProvenance appends the causal-forest summary block once the
// experiment has captured all its kernels. No-op for span-free streams.
func (r *Result) attachProvenance() {
	f := provenance.Build(r.Events)
	if len(f.Nodes) == 0 {
		return
	}
	var b strings.Builder
	b.WriteString(provenance.RenderStats(f.Stats()))
	if len(f.Nodes) <= provenanceTreeLimit {
		b.WriteString("\n")
		f.Text(&b)
	}
	r.block(b.String())
}

// Metric returns the named metric's value (and whether it exists).
func (r *Result) Metric(name string) (float64, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// MustMetric returns the named metric or panics (experiment authoring
// error).
func (r *Result) MustMetric(name string) float64 {
	v, ok := r.Metric(name)
	if !ok {
		panic(fmt.Sprintf("core: experiment %s has no metric %q", r.ID, name))
	}
	return v
}

// Render produces the experiment's report block.
func (r *Result) Render() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "[%s] %s — %s\n", r.ID, r.Title, status)
	if r.Paper != "" {
		fmt.Fprintf(&b, "  paper: %s\n", r.Paper)
	}
	for _, m := range r.Metrics {
		unit := m.Unit
		if unit != "" {
			unit = " " + unit
		}
		fmt.Fprintf(&b, "  %-38s %14.4g%s\n", m.Name, m.Value, unit)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Runner executes one experiment with a seed.
type Runner func(seed uint64) (*Result, error)

// Experiments indexes every experiment by ID (see DESIGN.md).
var Experiments = map[string]Runner{
	"F1":  RunF1StuxnetOperation,
	"F2":  RunF2WPADMitm,
	"F3":  RunF3CertForging,
	"F4":  RunF4CnCPlatform,
	"F5":  RunF5CnCServer,
	"F6":  RunF6ShamoonComponents,
	"C1":  RunC1ZeroDays,
	"C2":  RunC2Centrifuge,
	"C3":  RunC3Targeting,
	"C4":  RunC4FlameSize,
	"C5":  RunC5ExfilVolume,
	"C6":  RunC6Suicide,
	"C7":  RunC7AramcoScale,
	"C8":  RunC8JPEGBug,
	"C9":  RunC9Reporter,
	"C10": RunC10AirGap,
	"C11": RunC11Bluetooth,
	"T1":  RunT1Trends,
	"A1":  RunA1AblationPatching,
	"A2":  RunA2AblationAdvisory,
	"A3":  RunA3EpidemicCurve,
	"E1":  RunE1DuquTargeting,
	"E2":  RunE2GaussGodel,
	"E3":  RunE3Lineage,
	"E4":  RunE4Sinkhole,
	"R1":  RunR1StuxnetTakedownP2P,
	"R2":  RunR2FlameDomainAgility,
	"R3":  RunR3ShamoonBlackout,
	"R4":  RunR4CrashPersistence,
	"R5":  RunR5AVAttrition,
	"D1":  RunD1CNIDetection,
	"D2":  RunD2CrossCampaign,
	"D3":  RunD3FalsePositives,
	"D4":  RunD4NoisyPrecision,
	"D5":  RunD5NoiseFloor,
}

// ExperimentIDs returns all experiment IDs in report order.
func ExperimentIDs() []string {
	return []string{
		"F1", "F2", "F3", "F4", "F5", "F6",
		"C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9", "C10", "C11",
		"T1", "A1", "A2", "A3",
		"E1", "E2", "E3", "E4",
		"R1", "R2", "R3", "R4", "R5",
		"D1", "D2", "D3", "D4", "D5",
	}
}

// RunAll executes every experiment in order with the same seed. A failing
// experiment no longer truncates the run: every experiment executes, the
// successful results come back in report order, and the returned error
// joins every per-experiment failure.
func RunAll(seed uint64) ([]*Result, error) {
	reports := RunAllParallel(seed, 1)
	var out []*Result
	for _, rep := range reports {
		if rep.Err == nil {
			out = append(out, rep.Result)
		}
	}
	return out, JoinErrors(reports)
}

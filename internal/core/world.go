// Package core is the public API of the cyber-range: scenario builders
// that assemble the substrates (hosts, LANs, PKI, C&C, plants) into the
// worlds the paper describes, campaign runners for the three cyber
// weapons, and one experiment driver per figure and quantitative claim
// (see DESIGN.md for the experiment index).
//
// Each experiment returns a Result carrying its pass criterion, named
// metrics, a one-line measured Summary, and the obs telemetry of every
// kernel it drove (CaptureObs). RunExperiments / RunAllParallel fan
// experiments across a worker pool with byte-identical output for any
// worker count; SweepSeeds aggregates metrics and obs snapshots across a
// Monte Carlo seed sweep; RenderExperimentsMarkdown turns a run's
// reports into EXPERIMENTS.md, making the committed document a build
// artefact.
package core

import (
	"fmt"
	"time"

	"repro/internal/host"
	"repro/internal/malware"
	"repro/internal/netsim"
	"repro/internal/pki"
	"repro/internal/runstats"
	"repro/internal/sim"
)

// WorldPKI is the certificate landscape every scenario shares: a strong
// root, the weak-digest licensing intermediate (Flame's forging target),
// stolen driver-vendor credentials (Stuxnet), the legitimate raw-disk
// vendor (Shamoon), and a genuine update-signing identity.
type WorldPKI struct {
	Root        *pki.Authority
	Licensing   *pki.Authority
	BaseStore   *pki.Store // trusts Root; cloned into every host
	StolenKey   *pki.Keypair
	RealtekCert *pki.Certificate
	JMicronCert *pki.Certificate
	EldosKey    *pki.Keypair
	EldosCert   *pki.Certificate
	UpdateKey   *pki.Keypair
	UpdateCert  *pki.Certificate
	AttackerKey *pki.Keypair
	TSLSCert    *pki.Certificate
	ForgedCert  *pki.Certificate // nil until ForgeUpdateCert succeeds
}

// ForgedChain returns the chain the fake Windows Update is signed under.
func (p *WorldPKI) ForgedChain() []*pki.Certificate {
	if p.ForgedCert == nil {
		return nil
	}
	return []*pki.Certificate{p.ForgedCert, p.Licensing.Cert}
}

// World is a complete simulated environment.
type World struct {
	K        *sim.Kernel
	Internet *netsim.Internet
	Radio    *netsim.Radio
	PKI      *WorldPKI
	Registry *malware.Registry
	WU       *netsim.WindowsUpdate

	lans  map[string]*netsim.LAN
	hosts map[string]*netsim.LAN    // host name -> its LAN
	extra map[string]map[string]any // host name -> implant Extra
}

// WorldConfig parameterizes NewWorld.
type WorldConfig struct {
	Seed  uint64
	Start time.Time // zero = sim.Epoch
	// MuteTrace disables trace record retention (counters still work);
	// fleet benchmarks set it.
	MuteTrace bool
}

// NewWorld builds the shared infrastructure. Every experiment kernel is
// born here, so this is also where the wall-clock telemetry plane
// attaches its sampling probe (a no-op unless `cyberlab -progress` or
// `cyberlab profile` enabled a collector; probes are read-only and
// never perturb the deterministic plane — DESIGN.md §12).
func NewWorld(cfg WorldConfig) (*World, error) {
	defer runstats.Phase("world-build")()
	opts := []sim.Option{sim.WithSeed(cfg.Seed), sim.WithTraceCapacity(1 << 14)}
	if !cfg.Start.IsZero() {
		opts = append(opts, sim.WithStart(cfg.Start))
	}
	k := sim.NewKernel(opts...)
	runstats.AttachKernel(k)
	superviseKernel(k)
	if cfg.MuteTrace {
		k.Trace().SetMuted(true)
	}
	w := &World{
		K:        k,
		Internet: netsim.NewInternet(k),
		Radio:    netsim.NewRadio(k),
		lans:     make(map[string]*netsim.LAN),
		hosts:    make(map[string]*netsim.LAN),
		extra:    make(map[string]map[string]any),
	}
	var err error
	if w.PKI, err = buildWorldPKI(k); err != nil {
		return nil, err
	}
	w.WU = netsim.NewWindowsUpdate(w.Internet, "198.51.100.200")
	// Connectivity-probe targets (Stuxnet checks these before C&C).
	w.Internet.RegisterDomain("www.windowsupdate.com", "198.51.100.201")
	w.Internet.RegisterDomain("www.msn.com", "198.51.100.202")
	ok := netsim.HandlerFunc(func(*netsim.Request) *netsim.Response { return netsim.OK(nil) })
	w.Internet.BindServer("198.51.100.201", ok)
	w.Internet.BindServer("198.51.100.202", ok)

	w.Registry = malware.NewRegistry(func(h *host.Host) *malware.Env {
		return &malware.Env{
			K: w.K, Host: h, LAN: w.hosts[h.Name], Internet: w.Internet,
			Radio: w.Radio, Extra: w.extra[h.Name],
		}
	})
	return w, nil
}

func seed32(base uint64, tag byte) [32]byte {
	var s [32]byte
	for i := 0; i < 8; i++ {
		s[i] = byte(base >> (8 * i))
	}
	s[8] = tag
	return s
}

func buildWorldPKI(k *sim.Kernel) (*WorldPKI, error) {
	now := k.Now()
	longAgo := now.Add(-5 * 365 * 24 * time.Hour)
	p := &WorldPKI{}
	p.Root = pki.NewRoot("SimTrust Root CA", pki.HashStrong, seed32(1, 'r'), longAgo, 100*365*24*time.Hour)
	var err error
	// The legacy licensing intermediate still signs with the weak digest.
	p.Licensing, err = p.Root.Subordinate(longAgo, "SimSoft Licensing PCA", pki.HashWeak, seed32(1, 'l'), 50*365*24*time.Hour)
	if err != nil {
		return nil, fmt.Errorf("core: licensing intermediate: %w", err)
	}

	issue := func(key *pki.Keypair, subject string, usages pki.KeyUsage) (*pki.Certificate, error) {
		return p.Root.Issue(longAgo.Add(24*time.Hour), pki.IssueRequest{
			Subject: subject, Usages: usages,
			Lifetime: 20 * 365 * 24 * time.Hour, PubKey: key.Public,
		})
	}
	p.StolenKey = pki.NewKeypair(seed32(2, 's'))
	if p.RealtekCert, err = issue(p.StolenKey, "Realtek Semiconductor Corp", pki.UsageDriverSign|pki.UsageCodeSign); err != nil {
		return nil, err
	}
	if p.JMicronCert, err = issue(p.StolenKey, "JMicron Technology Corp", pki.UsageDriverSign|pki.UsageCodeSign); err != nil {
		return nil, err
	}
	p.EldosKey = pki.NewKeypair(seed32(3, 'e'))
	if p.EldosCert, err = issue(p.EldosKey, "Eldos Corporation", pki.UsageDriverSign); err != nil {
		return nil, err
	}
	p.UpdateKey = pki.NewKeypair(seed32(4, 'u'))
	if p.UpdateCert, err = issue(p.UpdateKey, "SimSoft Update Signing", pki.UsageCodeSign); err != nil {
		return nil, err
	}
	// The attacker's legitimately activated Terminal Services license
	// server certificate: license-only usage, weak digest.
	p.AttackerKey = pki.NewKeypair(seed32(5, 'a'))
	p.TSLSCert, err = p.Licensing.Issue(longAgo.Add(48*time.Hour), pki.IssueRequest{
		Subject: "Contoso Terminal Services LS", Usages: pki.UsageLicenseOnly,
		Lifetime: 20 * 365 * 24 * time.Hour, PubKey: p.AttackerKey.Public,
	})
	if err != nil {
		return nil, err
	}
	p.BaseStore = pki.NewStore(p.Root.Cert)
	return p, nil
}

// ForgeUpdateCert mounts the Fig. 3 collision attack, populating
// PKI.ForgedCert. It is idempotent.
func (w *World) ForgeUpdateCert() error {
	if w.PKI.ForgedCert != nil {
		return nil
	}
	forged, err := pki.ForgeFromWeakCert(w.PKI.TSLSCert, pki.Certificate{
		Serial:    424242,
		Subject:   "SimSoft Windows Update",
		Usages:    pki.UsageCodeSign,
		NotBefore: w.PKI.TSLSCert.NotBefore,
		NotAfter:  w.PKI.TSLSCert.NotAfter,
		PubKey:    w.PKI.AttackerKey.Public,
	})
	if err != nil {
		return fmt.Errorf("core: forge update cert: %w", err)
	}
	w.PKI.ForgedCert = forged
	return nil
}

// IssueAdvisory distrusts the licensing intermediate on every host — the
// Microsoft advisory 2718704 response.
func (w *World) IssueAdvisory() {
	for name := range w.hosts {
		if h := w.Host(name); h != nil {
			h.CertStore.Distrust(w.PKI.Licensing.Cert.Serial, "advisory 2718704")
		}
	}
	w.K.Trace().Add(w.K.Now(), sim.CatCert, "world", "advisory issued: licensing intermediate distrusted fleet-wide")
}

// NewLAN creates (or returns) a named LAN. airGapped LANs have no uplink.
func (w *World) NewLAN(name, subnet string, airGapped bool) *netsim.LAN {
	if l, ok := w.lans[name]; ok {
		return l
	}
	uplink := w.Internet
	if airGapped {
		uplink = nil
	}
	l := netsim.NewLAN(w.K, name, subnet, uplink)
	w.lans[name] = l
	return l
}

// AddHost creates a host on the LAN with the world trust store and the
// malware dispatcher attached.
func (w *World) AddHost(lan *netsim.LAN, name string, opts ...host.Option) *host.Host {
	all := append([]host.Option{host.WithCertStore(w.PKI.BaseStore.Clone())}, opts...)
	h := host.New(w.K, name, all...)
	lan.Attach(h)
	w.hosts[name] = lan
	w.extra[name] = make(map[string]any)
	w.Registry.Attach(h)
	if c := runstats.Active(); c != nil {
		c.AddHosts(1)
	}
	return h
}

// Host returns a host by name (nil if unknown).
func (w *World) Host(name string) *host.Host {
	lan, ok := w.hosts[name]
	if !ok {
		return nil
	}
	if node := lan.Node(name); node != nil {
		return node.Host
	}
	return nil
}

// SetExtra attaches scenario context (e.g. a Step7 install) to a host's
// implant environment.
func (w *World) SetExtra(hostName, key string, value any) {
	if m, ok := w.extra[hostName]; ok {
		m[key] = value
	}
}

package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/malware/shamoon"
)

// TestExperimentRegistryComplete checks the index matches DESIGN.md.
func TestExperimentRegistryComplete(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 35 {
		t.Fatalf("experiments = %d, want 35", len(ids))
	}
	for _, id := range ids {
		if Experiments[id] == nil {
			t.Fatalf("experiment %s not registered", id)
		}
	}
}

// Each figure/claim experiment must pass with the default seed. These are
// the primary reproduction tests.

func runExperiment(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Experiments[id](1)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if !res.Pass {
		t.Fatalf("%s did not reproduce:\n%s", id, res.Render())
	}
	return res
}

func TestF1StuxnetOperation(t *testing.T) {
	res := runExperiment(t, "F1")
	if res.MustMetric("centrifuges_destroyed") == 0 {
		t.Fatal("no destruction")
	}
}

func TestF2WPADMitm(t *testing.T) {
	res := runExperiment(t, "F2")
	if res.MustMetric("infected_via_fake_update") != 9 {
		t.Fatalf("update infections = %v", res.MustMetric("infected_via_fake_update"))
	}
}

func TestF3CertForging(t *testing.T) { runExperiment(t, "F3") }

func TestF4CnCPlatform(t *testing.T) {
	res := runExperiment(t, "F4")
	if res.MustMetric("registered_domains") != 80 || res.MustMetric("distinct_server_ips") != 22 {
		t.Fatalf("platform shape wrong: %s", res.Render())
	}
}

func TestF5CnCServer(t *testing.T) { runExperiment(t, "F5") }

func TestF6ShamoonComponents(t *testing.T) {
	res := runExperiment(t, "F6")
	if res.MustMetric("encrypted_resources") != 3 {
		t.Fatalf("resources = %v", res.MustMetric("encrypted_resources"))
	}
}

func TestC1ZeroDays(t *testing.T) {
	res := runExperiment(t, "C1")
	if res.MustMetric("distinct_zero_days") != 4 {
		t.Fatalf("zero days = %v", res.MustMetric("distinct_zero_days"))
	}
}

func TestC2Centrifuge(t *testing.T)  { runExperiment(t, "C2") }
func TestC3Targeting(t *testing.T)   { runExperiment(t, "C3") }
func TestC4FlameSize(t *testing.T)   { runExperiment(t, "C4") }
func TestC5ExfilVolume(t *testing.T) { runExperiment(t, "C5") }
func TestC6Suicide(t *testing.T)     { runExperiment(t, "C6") }

// The full 30,000-host C7 runs in the benchmark harness; the test tier
// uses a 2,000-host fleet for speed with identical mechanics.
func TestC7AramcoScaleReduced(t *testing.T) {
	res, err := runAramcoScale(1, 2000)
	if err != nil {
		t.Fatalf("C7: %v", err)
	}
	if !res.Pass {
		t.Fatalf("C7 did not reproduce:\n%s", res.Render())
	}
	if res.MustMetric("wiped_unbootable") != 2000 {
		t.Fatalf("wiped = %v", res.MustMetric("wiped_unbootable"))
	}
}

func TestC8JPEGBug(t *testing.T) {
	res := runExperiment(t, "C8")
	if res.MustMetric("buggy_overwrite_bytes") != shamoon.JPEGFragmentLen {
		t.Fatalf("fragment = %v", res.MustMetric("buggy_overwrite_bytes"))
	}
}

func TestC9Reporter(t *testing.T)   { runExperiment(t, "C9") }
func TestC10AirGap(t *testing.T)    { runExperiment(t, "C10") }
func TestC11Bluetooth(t *testing.T) { runExperiment(t, "C11") }

func TestT1Trends(t *testing.T) {
	res := runExperiment(t, "T1")
	if res.MustMetric("shamoon_suiciding") != 0 {
		t.Fatal("shamoon should not score on suiciding")
	}
}

func TestA1AblationPatching(t *testing.T) { runExperiment(t, "A1") }
func TestA2AblationAdvisory(t *testing.T) { runExperiment(t, "A2") }

func TestA3EpidemicCurve(t *testing.T) {
	res := runExperiment(t, "A3")
	if res.MustMetric("hours_to_50pct") >= res.MustMetric("hours_to_100pct") {
		t.Fatalf("curve shape wrong:\n%s", res.Render())
	}
}

func TestE1DuquTargeting(t *testing.T) {
	res := runExperiment(t, "E1")
	if res.MustMetric("distinct_victim_modules") != 3 {
		t.Fatalf("modules = %v", res.MustMetric("distinct_victim_modules"))
	}
}

func TestE3Lineage(t *testing.T) {
	res := runExperiment(t, "E3")
	if res.MustMetric("sim_stuxnet_duqu") <= res.MustMetric("sim_stuxnet_shamoon") {
		t.Fatalf("lineage shape wrong:\n%s", res.Render())
	}
}

func TestE4Sinkhole(t *testing.T) {
	res := runExperiment(t, "E4")
	if res.MustMetric("sinkhole_checkins_fl") != 0 {
		t.Fatalf("FL clients survived the suicide:\n%s", res.Render())
	}
}

func TestE2GaussGodel(t *testing.T) {
	res := runExperiment(t, "E2")
	if res.MustMetric("godel_detonations") != 1 {
		t.Fatalf("detonations = %v", res.MustMetric("godel_detonations"))
	}
}

// Determinism: the same experiment with the same seed yields identical
// metrics.
func TestExperimentDeterminism(t *testing.T) {
	run := func() []Metric {
		res, err := RunF1StuxnetOperation(7)
		if err != nil {
			t.Fatalf("F1: %v", err)
		}
		return res.Metrics
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("metric counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("metric %s differs across runs: %v vs %v", a[i].Name, a[i].Value, b[i].Value)
		}
	}
}

func TestResultRender(t *testing.T) {
	res := &Result{ID: "X", Title: "test", Paper: "paper says", Pass: true}
	res.metric("answer", 42, "units")
	res.notef("a note %d", 1)
	out := res.Render()
	for _, want := range []string{"[X]", "PASS", "paper says", "answer", "42", "a note 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if _, ok := res.Metric("missing"); ok {
		t.Fatal("phantom metric")
	}
}

func TestWorldAdvisoryAffectsAllHosts(t *testing.T) {
	w, err := NewWorld(WorldConfig{Seed: 3})
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	lan := w.NewLAN("l", "10.0.0", false)
	h1 := w.AddHost(lan, "H1")
	h2 := w.AddHost(lan, "H2")
	w.IssueAdvisory()
	for _, h := range []*host.Host{h1, h2} {
		if !h.CertStore.IsDistrusted(w.PKI.Licensing.Cert.Serial) {
			t.Fatalf("%s store not updated", h.Name)
		}
	}
	if w.Host("H1") != h1 || w.Host("GHOST") != nil {
		t.Fatal("World.Host lookup broken")
	}
	_ = time.Second
}

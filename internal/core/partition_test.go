package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/malware/shamoon"
	"repro/internal/sim"
	"repro/internal/users"
)

// setPartitionWorkers installs a partition worker-pool width for one
// test and restores the previous width afterwards.
func setPartitionWorkers(t *testing.T, n int) {
	t.Helper()
	old := PartitionWorkers()
	if err := SetPartitionWorkers(n); err != nil {
		t.Fatalf("SetPartitionWorkers(%d): %v", n, err)
	}
	t.Cleanup(func() { SetPartitionWorkers(old) })
}

// resultBytes canonically serialises a result for byte comparison.
func resultBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := encodeResultPayload(res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

// reducedPartitionedRunner is the test-tier partitioned C7: 240 hosts
// across the six-site layout with traces retained, so byte comparisons
// cover the merged trace stream, not just metrics. workers <= 0 defers
// to the -partitions global.
func reducedPartitionedRunner(workers int) Runner {
	return func(seed uint64) (*Result, error) {
		return runAramcoPartitionedMix(seed, 240, 6, workers, 0, false, users.MixNone, false)
	}
}

// TestPartitionWorkerByteIdentity is the §14 acceptance gate: the
// partitioned world's full result payload — report fields, merged obs
// snapshot, merged trace JSONL — is byte-identical at every partition
// worker width.
func TestPartitionWorkerByteIdentity(t *testing.T) {
	run := reducedPartitionedRunner(0)
	setPartitionWorkers(t, 1)
	base, err := run(3)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Pass {
		t.Fatalf("reduced partitioned C7 did not reproduce:\n%s", base.Render())
	}
	if len(base.Events) == 0 {
		t.Fatal("unmuted partitioned run retained no trace events; byte identity would be vacuous")
	}
	base.attachProvenance()
	want := resultBytes(t, base)

	for _, w := range []int{2, 4, 8} {
		setPartitionWorkers(t, w)
		res, err := run(3)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		res.attachProvenance()
		if got := resultBytes(t, res); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d produced different bytes than workers=1", w)
		}
	}
}

// TestPartitionWorkerRegistrySliceInvariant pins that the -partitions
// global is inert for the rest of the registry: a representative slice
// (figure, resilience, detection) produces identical bytes at any
// width.
func TestPartitionWorkerRegistrySliceInvariant(t *testing.T) {
	ids := []string{"F1", "R2", "D4"}
	want := make(map[string][]byte)
	setPartitionWorkers(t, 1)
	for _, id := range ids {
		want[id] = payloadBytes(t, runOne(id, 1))
	}
	setPartitionWorkers(t, 8)
	for _, id := range ids {
		if got := payloadBytes(t, runOne(id, 1)); !bytes.Equal(got, want[id]) {
			t.Fatalf("%s bytes changed under -partitions 8", id)
		}
	}
}

// TestPartitionComposesWithParallel: a partitioned experiment rides the
// parallel experiment runner next to ordinary experiments, and the
// (partition width × pool width) grid leaves every report's bytes
// unchanged.
func TestPartitionComposesWithParallel(t *testing.T) {
	registerTempExperiment(t, "ZZ-fleet", reducedPartitionedRunner(0))
	ids := []string{"F3", "ZZ-fleet", "C1"}

	setPartitionWorkers(t, 1)
	baseline := RunExperiments(ids, 1, 1)
	want := make([][]byte, len(baseline))
	for i, rep := range baseline {
		want[i] = payloadBytes(t, rep)
	}

	setPartitionWorkers(t, 4)
	reports := RunExperiments(ids, 1, 3)
	for i, rep := range reports {
		if got := payloadBytes(t, rep); !bytes.Equal(got, want[i]) {
			t.Fatalf("%s bytes changed under -partitions 4 -parallel 3", rep.ID)
		}
	}
}

// TestPartitionComposesWithJournalResume: a partitioned experiment
// journaled at one partition width resumes byte-identically at another
// — the width is deliberately outside the journal's determinism tuple,
// like -parallel.
func TestPartitionComposesWithJournalResume(t *testing.T) {
	registerTempExperiment(t, "ZZ-fleet", reducedPartitionedRunner(0))
	cfg := testJournalConfig(1)
	path := filepath.Join(t.TempDir(), "run.journal")

	setPartitionWorkers(t, 1)
	j1, err := OpenJournal(path, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := RunExperimentsOpts([]string{"ZZ-fleet"}, 1, RunOptions{Workers: 1, Journal: j1})
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	want := payloadBytes(t, first[0])

	setPartitionWorkers(t, 4)
	j2, err := OpenJournal(path, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed := RunExperimentsOpts([]string{"ZZ-fleet"}, 1, RunOptions{Workers: 1, Journal: j2})
	if !resumed[0].FromJournal {
		t.Fatal("resumed run re-executed instead of serving the journal")
	}
	if got := payloadBytes(t, resumed[0]); !bytes.Equal(got, want) {
		t.Fatal("journal-served bytes differ from the recorded run")
	}
}

// TestPartitionComposesWithCheckpointFork: a checkpoint captured from a
// partitioned run forks cleanly — the replay's trace prefix hashes
// identically — at a different partition width than the capture.
func TestPartitionComposesWithCheckpointFork(t *testing.T) {
	registerTempExperiment(t, "ZZ-fleet", reducedPartitionedRunner(0))

	setPartitionWorkers(t, 1)
	cp, err := CaptureCheckpoint("ZZ-fleet", 1, shamoon.AramcoTrigger)
	if err != nil {
		t.Fatal(err)
	}
	if cp.PrefixLen == 0 || cp.PrefixLen == cp.TotalLen {
		t.Fatalf("checkpoint boundary is degenerate: prefix %d of %d", cp.PrefixLen, cp.TotalLen)
	}

	setPartitionWorkers(t, 4)
	fork, err := Fork(cp)
	if err != nil {
		t.Fatalf("fork at -partitions 4 of a width-1 checkpoint: %v", err)
	}
	if fork.TailEvents != cp.TotalLen-cp.PrefixLen {
		t.Fatalf("fork tail = %d events, want %d", fork.TailEvents, cp.TotalLen-cp.PrefixLen)
	}
}

// TestPartitionDeadlineCancelFanOut: the supervision layer's deadline
// abort reaches every shard of a partitioned experiment — all six site
// kernels drain their queues, the pool ledgers balance, and the report
// is a partial with the deadline cause, even while four workers advance
// shards concurrently.
func TestPartitionDeadlineCancelFanOut(t *testing.T) {
	registerTempExperiment(t, "ZZ-stuck-fleet", func(seed uint64) (*Result, error) {
		f, err := BuildAramcoFleet(seed, AramcoFleetOptions{
			Workstations: 60, Sites: 6, LeanImages: true, MuteTrace: true, Workers: 4,
		})
		if err != nil {
			return nil, err
		}
		// Vtime advances happily (no stall) but every event burns wall
		// clock, so the wall deadline fires mid-window.
		for _, sc := range f.Sites {
			k := sc.World.K
			for i := 0; i < 4000; i++ {
				k.Schedule(time.Duration(i+1)*time.Second, "slow", func() {
					time.Sleep(500 * time.Microsecond)
				})
			}
		}
		if err := f.RunUntil(shamoon.AramcoTrigger.Add(2 * time.Hour)); err != nil {
			return nil, err
		}
		return nil, errors.New("ZZ-stuck-fleet outlived a deadline that should have reaped it")
	})
	EnableSupervision(SuperviseConfig{Deadline: 60 * time.Millisecond})
	defer DisableSupervision()

	rep := runOne("ZZ-stuck-fleet", 1)
	if !rep.Partial || !errors.Is(rep.Err, sim.ErrDeadline) {
		t.Fatalf("report = partial=%v err=%v, want partial ErrDeadline", rep.Partial, rep.Err)
	}
	if strings.Contains(rep.Err.Error(), "pool leaked") {
		t.Fatalf("partitioned abort leaked pooled events: %v", rep.Err)
	}
}

package core

// The world partitioner (DESIGN.md §14). A partitioned experiment
// shards its fleet by site: every site is a complete, isolated World —
// own kernel, RNG stream, internet, LAN, malware build — coupled into
// one campaign through a sim.PartitionSet's epoch-boundary mailboxes.
// The site layout (count, sizes, seeds, epoch width) is part of the
// scenario, like a seed; the -partitions flag only sizes the worker
// pool that advances the shards, so any worker count produces
// byte-identical reports, traces, metrics and alerts — the same
// invariance contract AddHostsSharded established for fleet
// construction.
//
// Worlds MUST be built on the experiment runner's goroutine: NewWorld
// registers each site kernel with the goroutine's supervision scope
// (DESIGN.md §13), which is what lets a stall watchdog or deadline
// CancelRun fan out across every partition of the experiment.

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/malware/shamoon"
	"repro/internal/netsim"
	"repro/internal/runstats"
	"repro/internal/sim"
	"repro/internal/users"
)

// partitionWorkers is the resolved -partitions global. Like the faults
// and activity globals it is set once at CLI start (or per test,
// sequentially) and read-only while experiments run.
var partitionWorkers = 1

// SetPartitionWorkers installs the partition worker-pool width used by
// partitioned experiments: n >= 1 threads, or 0 for all cores. The
// value never changes simulation bytes — it is deliberately NOT part of
// the determinism tuple journals and checkpoints record, so a run may
// be journaled at one width and resumed at another, like -parallel.
func SetPartitionWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("core: invalid partition worker count %d (want >= 1, or 0 for all cores)", n)
	}
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	partitionWorkers = n
	return nil
}

// PartitionWorkers returns the resolved partition worker-pool width.
func PartitionWorkers() int { return partitionWorkers }

// The C7 site layout: six sites (headquarters plus five regional
// offices) exchanging mail every 15 simulated minutes. Both constants
// are scenario state — changing either changes the simulated world.
const (
	aramcoSiteCount = 6
	aramcoEpoch     = 15 * time.Minute
)

// Cross-partition message kinds of the Aramco campaign.
const (
	aramcoCarryKind  = "shamoon-carry"  // inter-site infection courier
	aramcoReportKind = "shamoon-report" // wipe reports homed at the hub
)

// AramcoFleetOptions shape a partitioned multi-site Aramco world.
type AramcoFleetOptions struct {
	Workstations int // total fleet, split across sites (default 600)
	Sites        int // default aramcoSiteCount
	// The per-site knobs below pass through to every site's
	// AramcoOptions.
	DocsPerHost  int
	SpreadEvery  time.Duration
	LeanImages   bool
	BuildWorkers int
	EagerDocs    bool
	Activity     users.Mix
	MuteTrace    bool
	// CarryAfter is when the hub couriers the infection to the other
	// sites (default 1h after the world starts); delivery lands at the
	// next epoch boundary.
	CarryAfter time.Duration
	// Workers overrides the -partitions global for this fleet (<= 0
	// defers to it). Any value is byte-equivalent.
	Workers int
}

// AramcoFleet is a partitioned multi-site Aramco world: Sites[0] is the
// headquarters hub — patient zero lands there and the wipe-reporter
// domain is homed there — and every other site starts clean, ignited by
// a cross-partition carry.
type AramcoFleet struct {
	Set     *sim.PartitionSet
	Sites   []*AramcoScenario
	workers int
}

// BuildAramcoFleet assembles the partitioned world. Must run on the
// experiment runner's goroutine (see the package comment).
func BuildAramcoFleet(seed uint64, opts AramcoFleetOptions) (*AramcoFleet, error) {
	if opts.Workstations <= 0 {
		opts.Workstations = 600
	}
	if opts.Sites <= 0 {
		opts.Sites = aramcoSiteCount
	}
	if opts.Sites > opts.Workstations {
		opts.Sites = opts.Workstations
	}
	if opts.CarryAfter <= 0 {
		opts.CarryAfter = time.Hour
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = PartitionWorkers()
	}
	start := shamoon.AramcoTrigger.Add(-24 * time.Hour)
	f := &AramcoFleet{Set: sim.NewPartitionSet(aramcoEpoch), workers: workers}

	// Site seeds are independent forks of one anchor, so the whole fleet
	// is a pure function of (seed, layout) — not of build or run order.
	anchor := sim.NewRNG(seed)
	base := opts.Workstations / opts.Sites
	extra := opts.Workstations % opts.Sites
	first := 0
	for i := 0; i < opts.Sites; i++ {
		size := base
		if i < extra {
			size++
		}
		w, err := NewWorld(WorldConfig{
			Seed:      anchor.ForkAt(uint64(i)).State(),
			Start:     start,
			MuteTrace: opts.MuteTrace,
		})
		if err != nil {
			return nil, err
		}
		part := f.Set.Add(w.K)
		siteOpts := AramcoOptions{
			Workstations: size,
			DocsPerHost:  opts.DocsPerHost,
			SpreadEvery:  opts.SpreadEvery,
			LeanImages:   opts.LeanImages,
			BuildWorkers: opts.BuildWorkers,
			EagerDocs:    opts.EagerDocs,
			Activity:     opts.Activity,
			LANName:      fmt.Sprintf("aramco-site-%02d", i+1),
			Subnet:       fmt.Sprintf("10.%d.0", 30+i),
			FirstIndex:   first,
			NoPatient0:   i > 0,
		}
		if i > 0 {
			p := part
			siteOpts.ReporterForward = func(req *netsim.Request) { p.Send(0, aramcoReportKind, req) }
		}
		sc, err := BuildAramco(w, siteOpts)
		if err != nil {
			return nil, err
		}
		f.Sites = append(f.Sites, sc)
		first += size
	}

	// Mailbox handlers. The hub re-dispatches forwarded wipe reports
	// through its own internet, so they land on the real reporter server
	// with normal counters and trace records; a dispatch failure (e.g. a
	// fault took the domain down hub-side) drops the report, exactly as
	// a dead domain drops a direct one.
	hub := f.Sites[0]
	f.Set.Partition(0).OnDeliver(func(m sim.Message) {
		switch m.Kind {
		case aramcoReportKind:
			req, ok := m.Payload.(*netsim.Request)
			if !ok {
				panic(fmt.Sprintf("core: %s payload is %T, want *netsim.Request", m.Kind, m.Payload))
			}
			_, _ = hub.World.Internet.Dispatch(req)
		default:
			panic(fmt.Sprintf("core: hub received unknown partition message %q", m.Kind))
		}
	})
	for i := 1; i < len(f.Sites); i++ {
		sc := f.Sites[i]
		f.Set.Partition(i).OnDeliver(func(m sim.Message) {
			switch m.Kind {
			case aramcoCarryKind:
				if err := sc.Infect(); err != nil {
					panic(err)
				}
			default:
				panic(fmt.Sprintf("core: site received unknown partition message %q", m.Kind))
			}
		})
	}
	if len(f.Sites) > 1 {
		hubPart := f.Set.Partition(0)
		sites := len(f.Sites)
		hub.World.K.Schedule(opts.CarryAfter, "aramco-carry-courier", func() {
			for j := 1; j < sites; j++ {
				hubPart.Send(j, aramcoCarryKind, nil)
			}
		})
	}
	if c := runstats.Active(); c != nil {
		c.SetPartitions(len(f.Sites))
	}
	return f, nil
}

// RunUntil advances the whole fleet to the deadline and feeds the
// per-partition wall/step shares to the telemetry collector.
func (f *AramcoFleet) RunUntil(deadline time.Time) error {
	err := f.Set.RunUntil(deadline, f.workers)
	if c := runstats.Active(); c != nil {
		for i, st := range f.Set.Stats() {
			c.RecordPartition(i, st.Steps, st.Wall)
		}
	}
	return err
}

// Kernels returns every site kernel in partition order — the capture
// order CaptureObsMerged anchors span IDs by.
func (f *AramcoFleet) Kernels() []*sim.Kernel {
	ks := make([]*sim.Kernel, len(f.Sites))
	for i, sc := range f.Sites {
		ks[i] = sc.World.K
	}
	return ks
}

// InfectedCount sums infections across sites.
func (f *AramcoFleet) InfectedCount() int {
	n := 0
	for _, sc := range f.Sites {
		n += sc.Shamoon.InfectedCount()
	}
	return n
}

// WipedCount sums unbootable wiped hosts across sites.
func (f *AramcoFleet) WipedCount() int {
	n := 0
	for _, sc := range f.Sites {
		n += sc.WipedCount()
	}
	return n
}

// FleetStats sums the per-site Shamoon campaign counters.
func (f *AramcoFleet) FleetStats() shamoon.Stats {
	var total shamoon.Stats
	for _, sc := range f.Sites {
		st := sc.Shamoon.Stats
		total.InfectedHosts += st.InfectedHosts
		total.SpreadCopies += st.SpreadCopies
		total.WipedHosts += st.WipedHosts
		total.FilesWiped += st.FilesWiped
		total.MBRsOverwritten += st.MBRsOverwritten
		total.ReportsSent += st.ReportsSent
		total.DriverLoadErrors += st.DriverLoadErrors
	}
	return total
}

// Reports returns the wipe reports that reached the hub's reporter
// server — the hub site's directly plus every satellite's via the
// epoch mailboxes.
func (f *AramcoFleet) Reports() []*netsim.Request { return f.Sites[0].Reports }

// RunAramcoPartitionedN is the partitioned C7 runner with fleet size,
// site count, partition workers (<= 0 defers to -partitions),
// build workers and seeding mode exposed. Reports are byte-identical
// across any partWorkers/buildWorkers value — the §14 property the
// partition determinism tests and the ci.sh drift gate pin. The fleet
// is silent (users.MixNone) like RunAramcoScaleN.
func RunAramcoPartitionedN(seed uint64, fleet, sites, partWorkers, buildWorkers int, eagerDocs bool) (*Result, error) {
	return runAramcoPartitionedMix(seed, fleet, sites, partWorkers, buildWorkers, eagerDocs, users.MixNone, true)
}

func runAramcoPartitionedMix(seed uint64, fleet, sites, partWorkers, buildWorkers int,
	eagerDocs bool, mix users.Mix, mute bool) (*Result, error) {
	f, err := BuildAramcoFleet(seed, AramcoFleetOptions{
		Workstations: fleet,
		Sites:        sites,
		DocsPerHost:  2,
		SpreadEvery:  2 * time.Hour,
		LeanImages:   true,
		BuildWorkers: buildWorkers,
		EagerDocs:    eagerDocs,
		Activity:     mix,
		MuteTrace:    mute,
		Workers:      partWorkers,
	})
	if err != nil {
		return nil, err
	}
	if err := f.RunUntil(shamoon.AramcoTrigger.Add(2 * time.Hour)); err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "C7",
		Title: "Aramco-scale destruction",
		Paper: "complete destruction of ~30,000 workstations; trigger August 15, 2012, 08:08 UTC",
	}
	stats := f.FleetStats()
	res.metric("fleet_size", float64(fleet), "hosts")
	res.metric("sites", float64(len(f.Sites)), "sites")
	res.metric("infected", float64(f.InfectedCount()), "hosts")
	res.metric("wiped_unbootable", float64(f.WipedCount()), "hosts")
	res.metric("mbrs_overwritten", float64(stats.MBRsOverwritten), "hosts")
	res.metric("files_overwritten", float64(stats.FilesWiped), "files")
	res.metric("reports_sent", float64(stats.ReportsSent), "reports")
	res.metric("reports_received", float64(len(f.Reports())), "reports")
	// Everything wiped exactly at/after the hardcoded instant, on every
	// site — satellites wipe on their own clocks, one LAN apart.
	wipedBefore := 0
	benignAgents, benignActions := 0, 0
	for _, sc := range f.Sites {
		for _, h := range sc.Hosts {
			for _, e := range h.EventLog() {
				if strings.Contains(e.Message, "host wiped") && e.At.Before(shamoon.AramcoTrigger) {
					wipedBefore++
				}
			}
		}
		if sc.Users != nil {
			benignAgents += sc.Users.Stats.Agents
			benignActions += sc.Users.Stats.Actions()
		}
	}
	res.metric("wiped_before_trigger", float64(wipedBefore), "hosts")
	if benignAgents > 0 {
		res.metric("benign_agents", float64(benignAgents), "agents")
		res.metric("benign_actions", float64(benignActions), "actions")
	}
	res.Pass = f.InfectedCount() == fleet && f.WipedCount() == fleet &&
		wipedBefore == 0 && len(f.Reports()) == fleet
	res.summaryf("%d/%d workstations across %d sites infected and left unbootable; 0 wiped before the hardcoded trigger instant; %d/%d wipe reports reached the hub",
		f.WipedCount(), fleet, len(f.Sites), len(f.Reports()), fleet)
	res.notef("world sharded by site (§14): one kernel per site, cross-site carries and wipe reports ride epoch-boundary mailboxes; output bytes are invariant under -partitions")
	res.CaptureObsMerged(f.Kernels()...)
	return res, nil
}

package core

import (
	"bytes"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
)

// The R-series tests run under the default "takedown" profile — the one
// the committed EXPERIMENTS.md assumes. Tests that switch profiles must
// restore the default so later tests (and ExperimentIDs-wide sweeps in
// this package) see the documented schedule.

func restoreDefaultProfile(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		if err := SetFaultProfile(""); err != nil {
			t.Fatalf("restore default profile: %v", err)
		}
	})
}

func TestResilienceProfileSelection(t *testing.T) {
	restoreDefaultProfile(t)
	if err := SetFaultProfile("bogus"); err == nil {
		t.Fatal("SetFaultProfile(bogus) did not fail")
	}
	if FaultProfile().Name != faults.DefaultProfile {
		t.Fatalf("failed SetFaultProfile mutated the profile to %q", FaultProfile().Name)
	}
	if err := SetFaultProfile("chaos"); err != nil {
		t.Fatalf("SetFaultProfile(chaos): %v", err)
	}
	if FaultProfile().Name != "chaos" {
		t.Fatalf("profile = %q, want chaos", FaultProfile().Name)
	}
}

// TestResilienceR1P2PConvergence asserts the acceptance criterion: with
// both futbol domains seized, ≥90% of the infected fleet must converge on
// v2 purely over the LAN P2P path, each sync attributed to the takedown.
func TestResilienceR1P2PConvergence(t *testing.T) {
	res := runExperiment(t, "R1")
	if share := res.MustMetric("v2_share"); share < 0.9 {
		t.Fatalf("v2_share = %g, want >= 0.9", share)
	}
	if res.MustMetric("p2p_syncs") == 0 {
		t.Fatal("no P2P syncs recorded under takedown")
	}
	if res.MustMetric("domains_taken_down") != 2 {
		t.Fatalf("domains_taken_down = %g", res.MustMetric("domains_taken_down"))
	}
	// Every p2p sync span's parent must be the takedown intervention.
	var syncs, attributed int
	for _, e := range res.Events {
		if v, _ := e.Get("vector"); v == "p2p-lan" {
			syncs++
			if e.Parent != 0 {
				attributed++
			}
		}
	}
	if syncs == 0 || attributed != syncs {
		t.Fatalf("p2p sync attribution: %d/%d spans carry a causal parent", attributed, syncs)
	}
}

// TestResilienceR2SinkholeCensus asserts the acceptance criterion: the
// sinkhole census records check-ins from every surviving client.
func TestResilienceR2SinkholeCensus(t *testing.T) {
	res := runExperiment(t, "R2")
	if res.MustMetric("sinkhole_checkins") == 0 {
		t.Fatal("sinkhole recorded no check-ins")
	}
	if res.MustMetric("sinkhole_distinct_clients") != res.MustMetric("agents_alive") {
		t.Fatalf("census saw %g clients, %g agents alive",
			res.MustMetric("sinkhole_distinct_clients"), res.MustMetric("agents_alive"))
	}
	if res.MustMetric("domains_reregistered") == 0 {
		t.Fatal("operators never re-registered replacement domains")
	}
}

func TestResilienceR3WipeNeedsNoCnC(t *testing.T) {
	res := runExperiment(t, "R3")
	if res.MustMetric("wipe_reports_home") != 0 {
		t.Fatal("reports crossed a total blackout")
	}
	if res.MustMetric("wiped_hosts") != res.MustMetric("infected_hosts") {
		t.Fatal("blackout recalled the wiper")
	}
}

func TestResilienceR4CrashAndPatch(t *testing.T) {
	res := runExperiment(t, "R4")
	if res.MustMetric("wave_a_persisted") != res.MustMetric("wave_a_infected") {
		t.Fatal("crash cycles broke driver/registry persistence")
	}
	if res.MustMetric("wave_b_infected") != 0 {
		t.Fatal("worm crossed the MS10-061 patch gate")
	}
}

func TestResilienceR5AVAttrition(t *testing.T) {
	res := runExperiment(t, "R5")
	if res.MustMetric("agents_remediated") < 1 {
		t.Fatal("no agent died to quarantine + reboot")
	}
	if res.MustMetric("agents_alive") >= res.MustMetric("agents_start") {
		t.Fatal("AV attrition killed nobody")
	}
}

// TestResilienceBaselineProfile runs the whole series with faults
// disabled: every experiment must still pass via its baseline branch, and
// the campaigns must emit zero fault-category interventions.
func TestResilienceBaselineProfile(t *testing.T) {
	restoreDefaultProfile(t)
	if err := SetFaultProfile("none"); err != nil {
		t.Fatalf("SetFaultProfile(none): %v", err)
	}
	for _, id := range []string{"R1", "R2", "R3", "R4", "R5"} {
		res := runExperiment(t, id)
		if v, ok := res.Obs.Counters["faults.domain.takedown"]; ok && v > 0 {
			t.Fatalf("%s: baseline run performed %g takedowns", id, v)
		}
	}
}

// TestResilienceSeriesParallelDeterminism asserts the acceptance
// criterion: the R-series report, metrics and event stream are
// byte-identical at any worker count for a fixed seed and profile.
func TestResilienceSeriesParallelDeterminism(t *testing.T) {
	ids := []string{"R1", "R2", "R3", "R4", "R5"}
	serialize := func(reports []RunReport) []byte {
		t.Helper()
		var buf bytes.Buffer
		for _, rep := range reports {
			if rep.Err != nil {
				t.Fatalf("%s: %v", rep.ID, rep.Err)
			}
			buf.WriteString(rep.Result.Render())
			snap, err := rep.Result.Obs.JSON()
			if err != nil {
				t.Fatalf("%s: snapshot: %v", rep.ID, err)
			}
			buf.Write(snap)
			if err := obs.WriteJSONL(&buf, rep.Result.Events); err != nil {
				t.Fatalf("%s: events: %v", rep.ID, err)
			}
		}
		return buf.Bytes()
	}
	want := serialize(RunExperiments(ids, 1, 1))
	for _, workers := range []int{4, 8} {
		if got := serialize(RunExperiments(ids, 1, workers)); !bytes.Equal(got, want) {
			t.Fatalf("R-series output with %d workers differs from sequential run", workers)
		}
	}
}

package core

import (
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cnc"
	"repro/internal/host"
	"repro/internal/malware/flame"
	"repro/internal/malware/shamoon"
	"repro/internal/netsim"
	"repro/internal/pe"
	"repro/internal/pki"
)

// RunF1StuxnetOperation reproduces Figure 1: the three compromise levels —
// Windows, the Step 7 application, and the PLC — chained from a USB
// delivery to physical centrifuge damage with a blinded operator.
func RunF1StuxnetOperation(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	sc, err := BuildNatanz(w, NatanzOptions{OfficeHosts: 3, MachinesPerDrive: 6})
	if err != nil {
		return nil, err
	}
	defer sc.Plant.Stop()

	if err := w.K.RunFor(time.Hour); err != nil { // steady-state cascade
		return nil, err
	}
	if err := sc.Deliver(); err != nil {
		return nil, err
	}
	// Mid-attack checkpoint: ~40 min after delivery the payload is in its
	// high phase.
	if err := w.K.RunFor(40 * time.Minute); err != nil {
		return nil, err
	}
	operatorBlind := sc.Plant.Operator.AllNormal() && !sc.Plant.Safety.Tripped
	// Run the wave out plus LAN spread rounds.
	if err := w.K.RunFor(48 * time.Hour); err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "F1",
		Title: "Stuxnet operation overview (three compromise levels)",
		Paper: "USB -> Windows -> Step 7 (s7otbxdx.dll swap) -> PLC blocks -> centrifuge damage, operator sees normal",
	}
	stats := sc.Stuxnet.Stats
	res.metric("level1_windows_hosts_infected", float64(sc.Stuxnet.InfectedCount()), "hosts")
	res.metric("level2_step7_projects_infected", float64(stats.ProjectsInfected), "projects")
	res.metric("level3_plc_blocks_injected", boolMetric(stats.PLCCompromised)*2, "blocks")
	res.metric("rootkit_drivers_loaded", float64(stats.RootkitLoads), "drivers")
	res.metric("centrifuges_destroyed", float64(sc.Plant.DestroyedCount()), "machines")
	res.metric("attack_waves", float64(stats.AttacksLaunched), "waves")
	res.metric("operator_blind_mid_attack", boolMetric(operatorBlind), "bool")
	res.metric("zero_days_armed", float64(len(stats.ZeroDaysUsed())), "exploits")

	dllSwapped := sc.Engineer.FS.Exists(`C:\Program Files\Siemens\Step7\s7otbxsx.dll`)
	res.metric("s7otbxdx_dll_swapped", boolMetric(dllSwapped), "bool")
	res.Pass = sc.Stuxnet.InfectedCount() >= 1 && stats.ProjectsInfected >= 1 &&
		stats.PLCCompromised && sc.Plant.DestroyedCount() > 0 && operatorBlind && dllSwapped
	res.notef("engineer workstation infected via crafted LNK, project open deployed the PLC payload")
	res.summaryf("%d Windows hosts, %d Step 7 project(s), dll swapped, %d centrifuges destroyed over %d wave(s); operator display stayed normal",
		sc.Stuxnet.InfectedCount(), stats.ProjectsInfected, sc.Plant.DestroyedCount(), stats.AttacksLaunched)
	res.CaptureObs(w.K)
	return res, nil
}

// RunF2WPADMitm reproduces Figure 2: the Flame man-in-the-middle — a WPAD
// hijack turns the infected node into the victims' proxy, and intercepted
// Windows Update requests deliver a forged-signature installer.
func RunF2WPADMitm(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	sc, err := BuildEspionage(w, EspionageOptions{Hosts: 10, DocsPerHost: 5, Domains: 10, ServerIPs: 3,
		BeaconEvery: time.Hour})
	if err != nil {
		return nil, err
	}
	sc.PushSpreadModules()
	if err := w.K.RunFor(3 * time.Hour); err != nil { // modules arrive
		return nil, err
	}

	// Every other host launches a browser (proxy auto-discovery) and then
	// checks Windows Update.
	proxied, infectedViaUpdate := 0, 0
	for _, h := range sc.Hosts[1:] {
		sc.LAN.BrowserLaunch(h)
		if h.ProxyHost == sc.Patient0.Name {
			proxied++
		}
		if _, err := netsim.CheckForUpdates(sc.LAN, h); err == nil && sc.Flame.Agent(h.Name) != nil {
			infectedViaUpdate++
		}
	}

	res := &Result{
		ID:    "F2",
		Title: "Flame WPAD man-in-the-middle + fake Windows Update",
		Paper: "victims adopt infected machine as proxy via WPAD; intercepted updates install Flame (signed, so accepted)",
	}
	res.metric("lan_hosts", float64(len(sc.Hosts)), "hosts")
	res.metric("victims_proxied_via_wpad", float64(proxied), "hosts")
	res.metric("infected_via_fake_update", float64(infectedViaUpdate), "hosts")
	res.metric("total_flame_agents", float64(sc.Flame.InfectedCount()), "hosts")
	res.Pass = proxied == len(sc.Hosts)-1 && infectedViaUpdate == len(sc.Hosts)-1
	res.notef("fake update signed by %q chain validated on unpatched victims", "SimSoft Windows Update")
	res.summaryf("%d/%d victims adopted the infected proxy via WPAD and installed Flame from the forged update",
		infectedViaUpdate, len(sc.Hosts)-1)
	res.CaptureObs(w.K)
	return res, nil
}

// RunF3CertForging reproduces Figure 3: leveraging a limited-use Terminal
// Services licensing certificate into code-signing authority via a
// weak-hash collision, and the advisory that kills it.
func RunF3CertForging(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	p := w.PKI
	store := p.BaseStore.Clone()
	now := w.K.Now()

	// The licensing certificate itself cannot sign code.
	licenseRejected := store.VerifyChain(now, pki.UsageCodeSign, p.TSLSCert, p.Licensing.Cert) != nil

	if err := w.ForgeUpdateCert(); err != nil {
		return nil, err
	}
	collide := pki.WeakHash(p.ForgedCert.TBS()) == pki.WeakHash(p.TSLSCert.TBS())
	forgedAccepted := store.VerifyChain(now, pki.UsageCodeSign, p.ForgedChain()...) == nil

	// A signed binary is accepted as an update...
	fake := &pe.File{Name: "WuSetupV.exe", Machine: pe.MachineX86, Timestamp: now,
		Sections: []pe.Section{{Name: ".text", Data: []byte("installer")}}}
	if err := pki.SignImage(fake, p.AttackerKey, p.ForgedChain()...); err != nil {
		return nil, err
	}
	_, imgErr := pki.VerifyImage(fake, store, now, pki.UsageCodeSign)
	imageAccepted := imgErr == nil

	// ... until the advisory moves the intermediate to the untrusted
	// store.
	store.Distrust(p.Licensing.Cert.Serial, "advisory 2718704")
	_, postErr := pki.VerifyImage(fake, store, now, pki.UsageCodeSign)
	postAdvisoryRejected := postErr != nil

	res := &Result{
		ID:    "F3",
		Title: "Leveraging a licensing certificate to sign code",
		Paper: "TSLS cert (limited use) + flawed signing algorithm -> valid code signature; MS advisory untrusts the chain",
	}
	res.metric("license_cert_rejected_for_code", boolMetric(licenseRejected), "bool")
	res.metric("weak_hash_collision_found", boolMetric(collide), "bool")
	res.metric("forged_cert_accepted_for_code", boolMetric(forgedAccepted), "bool")
	res.metric("fake_update_signature_valid", boolMetric(imageAccepted), "bool")
	res.metric("post_advisory_rejected", boolMetric(postAdvisoryRejected), "bool")
	res.metric("weak_hash_bits", float64(pki.WeakHashBits), "bits")
	res.Pass = licenseRejected && collide && forgedAccepted && imageAccepted && postAdvisoryRejected
	res.summaryf("licensing cert rejected for code; %d-bit weak-hash collision yields an accepted forged chain; advisory distrust kills it",
		pki.WeakHashBits)
	res.CaptureObs(w.K)
	return res, nil
}

// RunF4CnCPlatform reproduces Figure 4: the C&C platform shape — 80
// domains over 22 server IPs, 5 bootstrap domains growing to ~10 after
// first contact, all controlled from a single attack center.
func RunF4CnCPlatform(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	sc, err := BuildEspionage(w, EspionageOptions{Hosts: 6, DocsPerHost: 5, BeaconEvery: 2 * time.Hour})
	if err != nil {
		return nil, err
	}
	// Push the expanded domain configuration.
	expanded := strings.Join(sc.Center.Pool.BootstrapConfig(cnc.PostContactDomains), "\n")
	sc.Center.Operator().PushCommandAll(cnc.PkgDomainUpdate, []byte(expanded))
	// Infect the rest directly (vector is not the subject of F4).
	for _, h := range sc.Hosts[1:] {
		if _, err := h.Execute(sc.Flame.MainImage, true); err != nil {
			return nil, err
		}
	}
	if err := w.K.RunFor(24 * time.Hour); err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "F4",
		Title: "The command-and-control platform behind Flame",
		Paper: "80 domains -> 22 server IPs; 5 default domains, ~10 after first contact; single attack center",
	}
	res.metric("registered_domains", float64(len(sc.Center.Pool.Domains())), "domains")
	res.metric("distinct_server_ips", float64(len(sc.Center.Pool.IPs())), "servers")
	res.metric("bootstrap_domains", float64(cnc.BootstrapDomains), "domains")
	agent := sc.Flame.Agent(sc.Patient0.Name)
	domainsAfter := 0
	if agent != nil {
		domainsAfter = len(agentDomains(agent))
	}
	res.metric("domains_after_first_contact", float64(domainsAfter), "domains")

	clientsSeen := 0
	for _, s := range sc.Center.Servers {
		clientsSeen += len(s.DB.Clients)
	}
	res.metric("clients_recorded_on_servers", float64(clientsSeen), "clients")
	deAtCount := 0
	for _, reg := range sc.Center.Pool.Registrations {
		if reg.Country == "Germany" || reg.Country == "Austria" {
			deAtCount++
		}
	}
	res.metric("registrations_fake_de_at", float64(deAtCount), "domains")
	res.Pass = len(sc.Center.Pool.Domains()) == cnc.DefaultDomainCount &&
		len(sc.Center.Pool.IPs()) == cnc.DefaultServerIPCount &&
		domainsAfter == cnc.PostContactDomains &&
		clientsSeen >= len(sc.Hosts) &&
		deAtCount == cnc.DefaultDomainCount
	res.summaryf("%d domains over %d server IPs; agents grew from %d to %d domains after first contact; %d clients recorded",
		len(sc.Center.Pool.Domains()), len(sc.Center.Pool.IPs()), cnc.BootstrapDomains, domainsAfter, clientsSeen)
	res.CaptureObs(w.K)
	return res, nil
}

// agentDomains exposes the agent's current C&C configuration size.
func agentDomains(a *flame.Agent) []string { return a.Domains() }

// RunF5CnCServer reproduces Figure 5: the server internals — the
// newsforyou ads/news/entries flow, sealed exfil the operator cannot read,
// LogWiper, and the 30-minute retention job.
func RunF5CnCServer(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	center, err := cnc.NewAttackCenter(w.K, w.Internet, 10, 1)
	if err != nil {
		return nil, err
	}
	server := center.Servers[0]
	lan := w.NewLAN("office", "10.40.0", false)
	victim := w.AddHost(lan, "VICTIM", hostInternet()...)

	bc := &cnc.BeaconClient{
		ID: "victim-1", Type: cnc.ClientFL,
		Domains: center.Pool.BootstrapConfig(cnc.BootstrapDomains),
		SealPub: center.Seal.Public,
	}
	// Targeted ad + broadcast news.
	center.Operator().PushCommand("victim-1", "module:custom", []byte("targeted payload"))
	center.Operator().PushCommandAll("module:update", []byte("broadcast payload"))
	pkgs, err := bc.Contact(lan, victim)
	if err != nil {
		return nil, err
	}
	adsAndNews := len(pkgs)

	// Upload stolen data; the operator fetches sealed blobs only.
	if err := bc.Upload(lan, victim, "design.dwg", []byte("secret cascade drawing")); err != nil {
		return nil, err
	}
	op := center.Operator()
	collected := op.CollectAll()
	_, opErr := op.TryRead(op.SealedInbox()[0])
	operatorBlocked := opErr != nil
	decrypted, err := center.Coordinator().DecryptAll()
	if err != nil {
		return nil, err
	}

	// LogWiper + retention.
	server.RunLogWiper()
	logsGone := server.AccessLogLen() == 0
	server.StartCleanup(30 * time.Minute)
	if err := bc.Upload(lan, victim, "more.docx", []byte("second doc")); err != nil {
		return nil, err
	}
	server.FetchEntries()
	if err := w.K.RunFor(2 * time.Hour); err != nil {
		return nil, err
	}
	cleaned := server.PendingEntries() == 0

	res := &Result{
		ID:    "F5",
		Title: "Inside a C&C server (newsforyou)",
		Paper: "ads (targeted) + news (broadcast) + entries (sealed uploads); operator cannot decrypt; LogWiper; 30-min cleanup",
	}
	res.metric("packages_delivered_ads_plus_news", float64(adsAndNews), "packages")
	res.metric("sealed_entries_collected", float64(collected), "entries")
	res.metric("operator_decrypt_blocked", boolMetric(operatorBlocked), "bool")
	res.metric("coordinator_decrypted", float64(decrypted), "docs")
	res.metric("logwiper_effective", boolMetric(logsGone), "bool")
	res.metric("retention_cleanup_effective", boolMetric(cleaned), "bool")
	res.Pass = adsAndNews == 2 && collected == 1 && operatorBlocked && decrypted == 1 && logsGone && cleaned
	res.summaryf("%d packages (ad+news) delivered; operator blocked on sealed entry, coordinator decrypted %d; logs wiped, retention emptied the store",
		adsAndNews, decrypted)
	res.CaptureObs(w.K)
	return res, nil
}

// RunF6ShamoonComponents reproduces Figure 6: the TrkSvr.exe decomposition
// — a ~900 KB PE whose XOR-encrypted resources are recovered by static
// analysis as the reporter, the wiper, and the 64-bit variant.
func RunF6ShamoonComponents(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	sh, err := shamoon.Build(w.K, shamoon.Config{
		ReporterDomain: "home.example",
		DriverKey:      w.PKI.EldosKey,
		DriverCert:     w.PKI.EldosCert,
		BulkBytes:      700 * 1024, // model the paper's 900 KB file
	})
	if err != nil {
		return nil, err
	}
	rules, err := analysis.CompileDisclosureRules("shamoon")
	if err != nil {
		return nil, err
	}
	an := &analysis.Analyzer{Store: w.PKI.BaseStore, Rules: rules}
	rep, err := an.Analyze(sh.MainImage, w.K.Now())
	if err != nil {
		return nil, err
	}

	encrypted, recovered, nested := 0, 0, 0
	for _, r := range rep.Resources {
		if r.LikelyEncrypted {
			encrypted++
		}
		if r.RecoveredKey != nil {
			recovered++
		}
		if r.DecryptsToImage {
			nested++
		}
	}
	// The driver is legitimately signed by its vendor.
	drvRep, err := an.Analyze(sh.RawDiskDriver, w.K.Now())
	if err != nil {
		return nil, err
	}
	driverSigned := drvRep.Signature.Present && drvRep.Signature.Signer == "Eldos Corporation"

	res := &Result{
		ID:    "F6",
		Title: "Shamoon components (TrkSvr.exe dissection)",
		Paper: "900 KB PE, simple XOR cipher, encrypted resources: reporter + wiper + 64-bit variant; Eldos-signed disk driver",
	}
	res.metric("main_image_bytes", float64(rep.Size), "bytes")
	res.metric("encrypted_resources", float64(encrypted), "resources")
	res.metric("xor_keys_recovered", float64(recovered), "keys")
	res.metric("nested_images_recovered", float64(nested), "images")
	res.metric("yara_dropper_rule_hits", float64(len(rep.YaraHits)), "rules")
	res.metric("disk_driver_vendor_signed", boolMetric(driverSigned), "bool")
	res.Pass = encrypted == 3 && recovered == 3 && nested == 3 &&
		rep.Size > 700*1024 && rep.Size < 1500*1024 && len(rep.YaraHits) > 0 && driverSigned
	res.notef("static analyzer recovered all three XOR keys via known-plaintext against the image magic")
	res.summaryf("%d KB image; %d/%d XOR-encrypted resources recovered (reporter, wiper, 64-bit variant); Eldos-signed driver verified",
		rep.Size/1024, nested, encrypted)
	res.CaptureObs(w.K)
	return res, nil
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func hostInternet() []host.Option {
	return []host.Option{host.WithInternet(true)}
}

package core

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runstats"
	"repro/internal/sim"
)

// The parallel experiment runner. Every experiment builds its own World —
// its own kernel, RNG, internet, PKI and hosts — and never touches
// another world's state, so experiments are embarrassingly parallel
// across worker goroutines. The only shared data a worker reads is the
// immutable Experiments registry and package-level constants. Reports
// always come back in input order, so rendered output is byte-identical
// no matter how many workers ran.

// RunReport is the outcome of one experiment execution inside the
// parallel runner.
type RunReport struct {
	ID     string
	Seed   uint64
	Result *Result // nil when Err != nil
	Err    error
	Wall   time.Duration

	// Partial marks an experiment aborted mid-run by the supervision
	// layer (stall watchdog, deadline, or graceful shutdown); Err carries
	// the cause and the kernel diagnostic.
	Partial bool
	// Skipped marks an experiment that never started because a shutdown
	// was already pending when its worker picked it up.
	Skipped bool
	// FromJournal marks a report replayed from a resume journal instead
	// of executed (Attempts is 0 for such reports).
	FromJournal bool
	// Attempts counts executions, >1 only under -max-retries.
	Attempts int
	// Violation flags a determinism violation: a retry of this experiment
	// produced different outcome bytes than the first attempt. The
	// latest attempt's outcome is kept, but the run must not be trusted
	// (and is never journaled).
	Violation bool
}

// runPool executes run(0..n-1) across at most workers goroutines.
// workers <= 1 degenerates to a plain sequential loop on the caller's
// goroutine.
func runPool(n, workers int, run func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// runOne executes a single experiment, converting panics into errors so
// one broken experiment can never truncate a sweep report. The run is
// wrapped in a supervision scope: the kernels its worlds build register
// with the scope, a supervisor abort unwinds here as a *sim.Cancelled
// and becomes a partial report, and a shutdown pending before the start
// skips the experiment outright. When a wall-clock collector is active
// it gets the experiment's wall time and pass/fail — telemetry that
// stays on the nondeterministic plane (the deterministic Result never
// carries wall data).
func runOne(id string, seed uint64) (rep RunReport) {
	rep = RunReport{ID: id, Seed: seed}
	if cause := ShutdownCause(); cause != nil {
		rep.Skipped = true
		rep.Err = fmt.Errorf("experiment %s: skipped: %v", id, cause)
		return rep
	}
	runner, ok := Experiments[id]
	if !ok {
		rep.Err = fmt.Errorf("experiment %s: unknown ID", id)
		return rep
	}
	sc, endScope := beginScope(id, seed)
	started := time.Now()
	defer func() {
		endScope()
		if r := recover(); r != nil {
			rep.Result = nil
			rep.Wall = time.Since(started)
			if c, isCancel := sim.AsCancelled(r); isCancel {
				rep.Partial = true
				rep.Err = fmt.Errorf("experiment %s: aborted: %w", id, c)
				if leak := poolLeaks(sc); leak != "" {
					rep.Err = fmt.Errorf("%w; %s", rep.Err, leak)
				}
			} else {
				rep.Err = fmt.Errorf("experiment %s: panic: %v", id, r)
			}
		}
		if c := runstats.Active(); c != nil {
			c.RecordExperiment(id, seed, rep.Wall,
				rep.Err == nil && rep.Result != nil && rep.Result.Pass)
		}
	}()
	defer runstats.Phase("run")()
	rep.Result, rep.Err = runner(seed)
	rep.Wall = time.Since(started)
	if rep.Err != nil {
		rep.Err = fmt.Errorf("experiment %s: %w", id, rep.Err)
	} else {
		rep.Result.attachProvenance()
	}
	return rep
}

// poolLeaks audits the event-pool ledger of every kernel an aborted
// experiment built: allocations must equal releases plus events still
// sitting in a queue (the aborted kernel drained its own queue; sibling
// kernels of a multi-world experiment may legitimately still hold
// scheduled events). Returns "" when the ledgers balance.
func poolLeaks(sc *expScope) string {
	var leaked uint64
	var bad int
	for _, k := range sc.kernelList() {
		ps := k.PoolStats()
		gets := ps.Hits + ps.Misses
		accounted := ps.Puts + uint64(k.Pending())
		if gets > accounted {
			leaked += gets - accounted
			bad++
		}
	}
	if leaked == 0 {
		return ""
	}
	return fmt.Sprintf("event pool leaked %d events across %d kernels", leaked, bad)
}

// outcomeFingerprint hashes everything deterministic about a report —
// the full result payload on success, the error text on failure — so a
// retried experiment can be checked for byte-identical reproduction.
func outcomeFingerprint(rep RunReport) string {
	h := sha256.New()
	switch {
	case rep.Err != nil:
		io.WriteString(h, "err\x00")
		io.WriteString(h, rep.Err.Error())
	case rep.Result != nil:
		payload, err := encodeResultPayload(rep.Result)
		if err != nil {
			io.WriteString(h, "encode-failure\x00")
			io.WriteString(h, err.Error())
		} else {
			h.Write(payload)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RunOptions extends RunExperiments with the supervision-layer knobs.
type RunOptions struct {
	// Workers sizes the pool (<=1 is sequential).
	Workers int
	// MaxRetries re-runs a failed experiment up to this many extra times.
	// Because experiments are deterministic, a retry must reproduce the
	// first attempt's outcome byte for byte; a divergence flags the
	// report's Violation bit instead of being papered over.
	MaxRetries int
	// Journal, when set, serves already-journaled (experiment, seed)
	// outcomes without re-running them and records fresh completions
	// (fsync'd per record) for the next resume.
	Journal *Journal
}

// runSupervised wraps runOne with the journal short-circuit and the
// bounded-retry determinism self-check.
func runSupervised(id string, seed uint64, opt RunOptions) RunReport {
	if opt.Journal != nil {
		if rep, ok := opt.Journal.Lookup(id, seed); ok {
			if c := runstats.Active(); c != nil {
				c.CountJournalServed()
			}
			return rep
		}
	}
	rep := runOne(id, seed)
	rep.Attempts = 1
	if rep.Err != nil && !rep.Partial && !rep.Skipped && opt.MaxRetries > 0 {
		// Retry is a determinism self-check, not flake laundering: every
		// attempt must reproduce the first attempt's bytes exactly.
		first := outcomeFingerprint(rep)
		for rep.Err != nil && !rep.Partial && !rep.Skipped &&
			rep.Attempts <= opt.MaxRetries && ShutdownCause() == nil {
			next := runOne(id, seed)
			next.Attempts = rep.Attempts + 1
			next.Violation = rep.Violation
			if c := runstats.Active(); c != nil {
				c.CountRetry()
			}
			if !next.Skipped && !next.Partial && outcomeFingerprint(next) != first {
				next.Violation = true
				if c := runstats.Active(); c != nil {
					c.CountViolation()
				}
			}
			rep = next
		}
	}
	if opt.Journal != nil {
		opt.Journal.Record(rep)
	}
	return rep
}

// RunExperiments executes the given experiment IDs with one seed across a
// pool of workers, returning reports in input order regardless of worker
// count. Unknown IDs and experiment failures become per-report errors;
// the remaining experiments still run.
func RunExperiments(ids []string, seed uint64, workers int) []RunReport {
	return RunExperimentsOpts(ids, seed, RunOptions{Workers: workers})
}

// RunExperimentsOpts is RunExperiments with the full option set.
func RunExperimentsOpts(ids []string, seed uint64, opt RunOptions) []RunReport {
	if c := runstats.Active(); c != nil {
		c.SetTotalExperiments(len(ids))
	}
	reports := make([]RunReport, len(ids))
	runPool(len(ids), opt.Workers, func(i int) {
		reports[i] = runSupervised(ids[i], seed, opt)
	})
	return reports
}

// RunAllParallel executes every registered experiment with the same seed
// across a pool of workers. Reports come back in report order.
func RunAllParallel(seed uint64, workers int) []RunReport {
	return RunExperiments(ExperimentIDs(), seed, workers)
}

// --- Multi-seed Monte Carlo sweep ---

// MetricStat aggregates one metric across the seeds of a sweep.
type MetricStat struct {
	Name string
	Unit string
	Min  float64
	Mean float64
	Max  float64
}

// SweepEntry aggregates one experiment across every seed of a sweep.
type SweepEntry struct {
	ID      string
	Title   string
	Seeds   int           // runs attempted (one per seed)
	Passes  int           // runs whose result reproduced
	Errors  []error       // per-seed runner errors, seed order
	Metrics []MetricStat  // first-seen metric order
	Wall    time.Duration // summed wall clock across seeds
	// Obs merges the experiment's registry snapshots across every seed
	// (counter sums grow with the seed count; gauges keep the last fold).
	Obs obs.Snapshot
}

// SweepSeeds runs every (experiment, seed) pair across one worker pool
// and aggregates per-metric min/mean/max across seeds. Entries come back
// in the order of ids and the aggregation is deterministic regardless of
// worker count, because per-pair reports land in a fixed slot before
// anything is folded.
func SweepSeeds(ids []string, seeds []uint64, workers int) []SweepEntry {
	if len(ids) == 0 || len(seeds) == 0 {
		return nil
	}
	if c := runstats.Active(); c != nil {
		c.SetTotalExperiments(len(ids) * len(seeds))
	}
	reports := make([]RunReport, len(ids)*len(seeds))
	runPool(len(reports), workers, func(i int) {
		reports[i] = runOne(ids[i/len(seeds)], seeds[i%len(seeds)])
		if res := reports[i].Result; res != nil {
			// A sweep only needs aggregates; retaining every seed's trace
			// would hold len(ids)*len(seeds) ring buffers in memory.
			res.Events = nil
		}
	})

	entries := make([]SweepEntry, len(ids))
	for ei, id := range ids {
		e := SweepEntry{ID: id}
		var order []string
		type agg struct {
			unit          string
			min, max, sum float64
			n             int
		}
		stats := make(map[string]*agg)
		for si := range seeds {
			rep := reports[ei*len(seeds)+si]
			e.Seeds++
			e.Wall += rep.Wall
			if rep.Err != nil {
				e.Errors = append(e.Errors, rep.Err)
				continue
			}
			if e.Title == "" {
				e.Title = rep.Result.Title
			}
			if rep.Result.Pass {
				e.Passes++
			}
			e.Obs.Merge(rep.Result.Obs)
			for _, m := range rep.Result.Metrics {
				a, ok := stats[m.Name]
				if !ok {
					a = &agg{unit: m.Unit, min: m.Value, max: m.Value}
					stats[m.Name] = a
					order = append(order, m.Name)
				}
				if m.Value < a.min {
					a.min = m.Value
				}
				if m.Value > a.max {
					a.max = m.Value
				}
				a.sum += m.Value
				a.n++
			}
		}
		for _, name := range order {
			a := stats[name]
			e.Metrics = append(e.Metrics, MetricStat{
				Name: name, Unit: a.unit,
				Min: a.min, Mean: a.sum / float64(a.n), Max: a.max,
			})
		}
		entries[ei] = e
	}
	return entries
}

// RenderSweep formats a sweep's aggregate table, mirroring Result.Render.
func RenderSweep(entries []SweepEntry) string {
	var b strings.Builder
	for _, e := range entries {
		title := e.Title
		if title == "" {
			title = "(no successful run)"
		}
		fmt.Fprintf(&b, "[%s] %s — %d/%d seeds reproduced\n", e.ID, title, e.Passes, e.Seeds)
		for _, m := range e.Metrics {
			unit := m.Unit
			if unit != "" {
				unit = " " + unit
			}
			fmt.Fprintf(&b, "  %-38s min %14.4g  mean %14.4g  max %14.4g%s\n",
				m.Name, m.Min, m.Mean, m.Max, unit)
		}
		for _, err := range e.Errors {
			fmt.Fprintf(&b, "  error: %v\n", err)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// JoinErrors folds every per-report error into one, or nil.
func JoinErrors(reports []RunReport) error {
	var errs []error
	for _, rep := range reports {
		if rep.Err != nil {
			errs = append(errs, rep.Err)
		}
	}
	return errors.Join(errs...)
}

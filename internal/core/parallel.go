package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runstats"
)

// The parallel experiment runner. Every experiment builds its own World —
// its own kernel, RNG, internet, PKI and hosts — and never touches
// another world's state, so experiments are embarrassingly parallel
// across worker goroutines. The only shared data a worker reads is the
// immutable Experiments registry and package-level constants. Reports
// always come back in input order, so rendered output is byte-identical
// no matter how many workers ran.

// RunReport is the outcome of one experiment execution inside the
// parallel runner.
type RunReport struct {
	ID     string
	Seed   uint64
	Result *Result // nil when Err != nil
	Err    error
	Wall   time.Duration
}

// runPool executes run(0..n-1) across at most workers goroutines.
// workers <= 1 degenerates to a plain sequential loop on the caller's
// goroutine.
func runPool(n, workers int, run func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// runOne executes a single experiment, converting panics into errors so
// one broken experiment can never truncate a sweep report. When a
// wall-clock collector is active it gets the experiment's wall time and
// pass/fail — telemetry that stays on the nondeterministic plane (the
// deterministic Result never carries wall data).
func runOne(id string, seed uint64) (rep RunReport) {
	rep = RunReport{ID: id, Seed: seed}
	runner, ok := Experiments[id]
	if !ok {
		rep.Err = fmt.Errorf("experiment %s: unknown ID", id)
		return rep
	}
	started := time.Now()
	defer func() {
		if r := recover(); r != nil {
			rep.Result = nil
			rep.Err = fmt.Errorf("experiment %s: panic: %v", id, r)
			rep.Wall = time.Since(started)
		}
		if c := runstats.Active(); c != nil {
			c.RecordExperiment(id, seed, rep.Wall,
				rep.Err == nil && rep.Result != nil && rep.Result.Pass)
		}
	}()
	defer runstats.Phase("run")()
	rep.Result, rep.Err = runner(seed)
	rep.Wall = time.Since(started)
	if rep.Err != nil {
		rep.Err = fmt.Errorf("experiment %s: %w", id, rep.Err)
	} else {
		rep.Result.attachProvenance()
	}
	return rep
}

// RunExperiments executes the given experiment IDs with one seed across a
// pool of workers, returning reports in input order regardless of worker
// count. Unknown IDs and experiment failures become per-report errors;
// the remaining experiments still run.
func RunExperiments(ids []string, seed uint64, workers int) []RunReport {
	if c := runstats.Active(); c != nil {
		c.SetTotalExperiments(len(ids))
	}
	reports := make([]RunReport, len(ids))
	runPool(len(ids), workers, func(i int) {
		reports[i] = runOne(ids[i], seed)
	})
	return reports
}

// RunAllParallel executes every registered experiment with the same seed
// across a pool of workers. Reports come back in report order.
func RunAllParallel(seed uint64, workers int) []RunReport {
	return RunExperiments(ExperimentIDs(), seed, workers)
}

// --- Multi-seed Monte Carlo sweep ---

// MetricStat aggregates one metric across the seeds of a sweep.
type MetricStat struct {
	Name string
	Unit string
	Min  float64
	Mean float64
	Max  float64
}

// SweepEntry aggregates one experiment across every seed of a sweep.
type SweepEntry struct {
	ID      string
	Title   string
	Seeds   int           // runs attempted (one per seed)
	Passes  int           // runs whose result reproduced
	Errors  []error       // per-seed runner errors, seed order
	Metrics []MetricStat  // first-seen metric order
	Wall    time.Duration // summed wall clock across seeds
	// Obs merges the experiment's registry snapshots across every seed
	// (counter sums grow with the seed count; gauges keep the last fold).
	Obs obs.Snapshot
}

// SweepSeeds runs every (experiment, seed) pair across one worker pool
// and aggregates per-metric min/mean/max across seeds. Entries come back
// in the order of ids and the aggregation is deterministic regardless of
// worker count, because per-pair reports land in a fixed slot before
// anything is folded.
func SweepSeeds(ids []string, seeds []uint64, workers int) []SweepEntry {
	if len(ids) == 0 || len(seeds) == 0 {
		return nil
	}
	if c := runstats.Active(); c != nil {
		c.SetTotalExperiments(len(ids) * len(seeds))
	}
	reports := make([]RunReport, len(ids)*len(seeds))
	runPool(len(reports), workers, func(i int) {
		reports[i] = runOne(ids[i/len(seeds)], seeds[i%len(seeds)])
		if res := reports[i].Result; res != nil {
			// A sweep only needs aggregates; retaining every seed's trace
			// would hold len(ids)*len(seeds) ring buffers in memory.
			res.Events = nil
		}
	})

	entries := make([]SweepEntry, len(ids))
	for ei, id := range ids {
		e := SweepEntry{ID: id}
		var order []string
		type agg struct {
			unit          string
			min, max, sum float64
			n             int
		}
		stats := make(map[string]*agg)
		for si := range seeds {
			rep := reports[ei*len(seeds)+si]
			e.Seeds++
			e.Wall += rep.Wall
			if rep.Err != nil {
				e.Errors = append(e.Errors, rep.Err)
				continue
			}
			if e.Title == "" {
				e.Title = rep.Result.Title
			}
			if rep.Result.Pass {
				e.Passes++
			}
			e.Obs.Merge(rep.Result.Obs)
			for _, m := range rep.Result.Metrics {
				a, ok := stats[m.Name]
				if !ok {
					a = &agg{unit: m.Unit, min: m.Value, max: m.Value}
					stats[m.Name] = a
					order = append(order, m.Name)
				}
				if m.Value < a.min {
					a.min = m.Value
				}
				if m.Value > a.max {
					a.max = m.Value
				}
				a.sum += m.Value
				a.n++
			}
		}
		for _, name := range order {
			a := stats[name]
			e.Metrics = append(e.Metrics, MetricStat{
				Name: name, Unit: a.unit,
				Min: a.min, Mean: a.sum / float64(a.n), Max: a.max,
			})
		}
		entries[ei] = e
	}
	return entries
}

// RenderSweep formats a sweep's aggregate table, mirroring Result.Render.
func RenderSweep(entries []SweepEntry) string {
	var b strings.Builder
	for _, e := range entries {
		title := e.Title
		if title == "" {
			title = "(no successful run)"
		}
		fmt.Fprintf(&b, "[%s] %s — %d/%d seeds reproduced\n", e.ID, title, e.Passes, e.Seeds)
		for _, m := range e.Metrics {
			unit := m.Unit
			if unit != "" {
				unit = " " + unit
			}
			fmt.Fprintf(&b, "  %-38s min %14.4g  mean %14.4g  max %14.4g%s\n",
				m.Name, m.Min, m.Mean, m.Max, unit)
		}
		for _, err := range e.Errors {
			fmt.Fprintf(&b, "  error: %v\n", err)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// JoinErrors folds every per-report error into one, or nil.
func JoinErrors(reports []RunReport) error {
	var errs []error
	for _, rep := range reports {
		if rep.Err != nil {
			errs = append(errs, rep.Err)
		}
	}
	return errors.Join(errs...)
}

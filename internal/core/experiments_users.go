package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/detect"
	"repro/internal/host"
	"repro/internal/provenance"
	"repro/internal/users"
)

// D4/D5 re-score the CNI rule pack against populated fleets (DESIGN.md
// §11): the benign user-activity layer keeps every workstation busy with
// ordinary work through the same substrate the campaign abuses, so
// precision finally means something. The TP/FP oracle is provenance, not
// labels: every alert span chains to a root, and that root is either the
// campaign's web-shell drop (true positive) or a benign users.session
// span (false positive) — the same walk `cyberlab trace -chain` renders
// for a human triaging the alert.

// alertRoot walks an alert's provenance chain and returns its origin
// node (nil when the span is unknown to the forest).
func alertRoot(f *provenance.Forest, a detect.Alert) *provenance.Node {
	chain := f.Chain(provenance.NodeID{Span: a.Span})
	if len(chain) == 0 {
		return nil
	}
	return chain[0]
}

// benignRoot reports whether a chain origin is a user session.
func benignRoot(n *provenance.Node) bool {
	return n != nil && strings.HasPrefix(n.Msg, "users.session.start")
}

// RunD4NoisyPrecision answers: with the enclave fully populated — an
// admin doing daily maintenance rounds, developers building, office
// workers churning documents, mail and shares — what do the CNI rules
// actually cost and catch? Recall must stay perfect (the campaign is the
// same one D1 detects end to end) while measured per-rule precision
// separates artifact-keyed content (clean) from technique-keyed content
// (pays the admin tax).
func RunD4NoisyPrecision(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	sc, err := BuildCNI(w, CNIOptions{
		Workstations: 6,
		Rules:        detect.CNIRulePack(),
		Activity:     users.MixEnterprise,
	})
	if err != nil {
		return nil, err
	}
	if err := sc.Intrude(); err != nil {
		return nil, err
	}
	if err := w.K.RunFor(14 * 24 * time.Hour); err != nil {
		return nil, err
	}

	en := sc.Engine
	alerts := en.Alerts()
	f := provenance.Build(w.K.Trace().Events())
	issues := f.Validate()

	type score struct{ tp, fp int }
	perRule := map[string]*score{}
	for _, r := range en.Rules() {
		perRule[r.Name] = &score{}
	}
	tpTotal, fpTotal, unattributed := 0, 0, 0
	for _, a := range alerts {
		root := alertRoot(f, a)
		if root == nil {
			unattributed++
			continue
		}
		// Only two actors exist in this world; anything not rooted in a
		// benign session was caused by the campaign.
		if benignRoot(root) {
			perRule[a.Rule].fp++
			fpTotal++
		} else {
			perRule[a.Rule].tp++
			tpTotal++
		}
	}
	recalled, cleanCampaign := 0, true
	for _, r := range en.Rules() {
		s := perRule[r.Name]
		if s.tp > 0 {
			recalled++
		}
		if r.Scope == detect.ScopeCampaign && s.fp > 0 {
			cleanCampaign = false
		}
	}

	var tbl strings.Builder
	fmt.Fprintf(&tbl, "%-22s %-12s %3s %3s  %s\n", "rule", "scope", "tp", "fp", "precision")
	for _, r := range en.Rules() {
		s := perRule[r.Name]
		prec := "-"
		if s.tp+s.fp > 0 {
			prec = fmt.Sprintf("%.2f", float64(s.tp)/float64(s.tp+s.fp))
		}
		fmt.Fprintf(&tbl, "%-22s %-12s %3d %3d  %s\n", r.Name, r.Scope, s.tp, s.fp, prec)
	}

	fleet := 1 + len(sc.Workstations)
	res := &Result{
		ID:    "D4",
		Title: "Per-rule precision/recall on a populated fleet",
		Paper: "recall survives realistic noise; precision splits by scope — campaign-artifact rules stay clean, technique rules pay for the benign admin",
	}
	res.metric("fleet", float64(fleet), "hosts")
	res.metric("benign_agents", float64(sc.Users.Stats.Agents), "agents")
	res.metric("benign_actions", float64(sc.Users.Stats.Actions()), "actions")
	res.metric("infected_hosts", float64(sc.CNI.InfectedCount()), "hosts")
	res.metric("events_seen", float64(en.Seen()), "events")
	res.metric("alerts", float64(len(alerts)), "alerts")
	res.metric("true_positives", float64(tpTotal), "alerts")
	res.metric("false_positives", float64(fpTotal), "alerts")
	res.metric("precision", float64(tpTotal)/float64(max(1, tpTotal+fpTotal)), "ratio")
	res.metric("rules_recalled", float64(recalled), "rules")
	res.metric("recall", float64(recalled)/float64(len(en.Rules())), "ratio")
	res.metric("unattributed_alerts", float64(unattributed), "alerts")
	res.Pass = sc.CNI.InfectedCount() == fleet &&
		recalled == len(en.Rules()) && fpTotal > 0 && cleanCampaign &&
		unattributed == 0 && len(issues) == 0
	res.summaryf("all %d rules still catch the campaign under %d benign actions; %d/%d alerts were noise-caused, every one provenance-attributed to its users.session root, and no campaign-artifact rule false-fired",
		recalled, sc.Users.Stats.Actions(), fpTotal, len(alerts))
	res.notef("the FP bill lands exclusively on technique-scoped rules: the admin's maintenance psexec is indistinguishable from lateral movement without allow-listing")
	res.block(tbl.String())
	res.CaptureObs(w.K)
	return res, nil
}

// RunD5NoiseFloor answers: what is the pack's false-positive floor
// against pure noise — a populated enterprise fleet with no campaign at
// all? This replaces D3's hand-built benign-admin world with the
// user-activity layer at fleet scale: the same profiles, cadences and
// telemetry every populated experiment uses. The floor must consist
// solely of the single-event PsExec rule firing once per admin
// maintenance round; every threshold, sequence and campaign-artifact
// rule must hold at zero, and each false positive must be triageable to
// its benign session via the provenance chain.
func RunD5NoiseFloor(seed uint64) (*Result, error) {
	w, err := NewWorld(WorldConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	en, err := detect.Attach(w.K, detect.CNIRulePack())
	if err != nil {
		return nil, err
	}
	start := w.K.Now()
	lan := w.NewLAN("corp-users", "10.80.0", false)
	const fleetSize = 24
	specs := make([]HostSpec, fleetSize)
	for i := range specs {
		specs[i] = HostSpec{
			Name: fmt.Sprintf("CORP-WS-%02d", i+1),
			Opts: []host.Option{host.WithShares(true), host.WithInternet(true)},
		}
	}
	hosts, err := w.AddHostsSharded(lan, 0, specs)
	if err != nil {
		return nil, err
	}
	pop, err := users.Attach(w.K, lan, w.Internet, hosts, users.Config{Mix: users.MixEnterprise})
	if err != nil {
		return nil, err
	}
	if err := w.K.RunFor(14 * 24 * time.Hour); err != nil {
		return nil, err
	}

	alerts := en.Alerts()
	f := provenance.Build(w.K.Trace().Events())
	issues := f.Validate()
	perClass := map[string]int{}
	untriaged := 0
	for _, r := range en.Rules() {
		n := en.FireCount(r.Name)
		switch {
		case r.Threshold != nil:
			perClass["threshold"] += n
		case r.Sequence != nil:
			perClass["sequence"] += n
		case r.Name == "psexec-remote-exec":
			perClass["deployment"] += n
		default:
			perClass["other-single"] += n
		}
	}
	for _, a := range alerts {
		if !benignRoot(alertRoot(f, a)) {
			untriaged++
		}
	}

	res := &Result{
		ID:    "D5",
		Title: "Noise-floor measurement: the rule pack against a purely benign fleet",
		Paper: "the pack's irreducible false-positive floor is one PsExec alert per admin maintenance round; cadence-encoding rules never reach threshold on human rhythms",
	}
	res.metric("benign_hosts", float64(fleetSize), "hosts")
	res.metric("benign_agents", float64(pop.Stats.Agents), "agents")
	res.metric("benign_actions", float64(pop.Stats.Actions()), "actions")
	res.metric("maintenance_rounds", float64(pop.Stats.Maintenances), "rounds")
	res.metric("events_seen", float64(en.Seen()), "events")
	res.metric("false_positives", float64(len(alerts)), "alerts")
	res.metric("fp_deployment_rule", float64(perClass["deployment"]), "alerts")
	res.metric("fp_threshold_rules", float64(perClass["threshold"]), "alerts")
	res.metric("fp_sequence_rules", float64(perClass["sequence"]), "alerts")
	res.metric("fp_other_single", float64(perClass["other-single"]), "alerts")
	res.metric("fp_untriaged", float64(untriaged), "alerts")
	res.Pass = pop.Stats.Actions() > 0 &&
		perClass["deployment"] == pop.Stats.Maintenances &&
		perClass["threshold"] == 0 && perClass["sequence"] == 0 &&
		perClass["other-single"] == 0 && untriaged == 0 && len(issues) == 0
	res.summaryf("two weeks and %d benign actions across %d agents cost %d false positives — exactly one per admin maintenance round — and each chains to its users.session root for triage; every other rule stayed at zero",
		pop.Stats.Actions(), pop.Stats.Agents, len(alerts))
	res.notef("same floor as D3's hand-built world, now measured against the reusable activity layer every populated experiment shares")
	res.block(ruleCoverageBlock(en, start))
	res.CaptureObs(w.K)
	return res, nil
}

// RunAramcoBusyN is RunAramcoScaleN with the fleet populated by office
// agents — the memory/throughput twin the BENCH gate compares against
// the silent baseline (ISSUE 7: populated 30k-host fleet within 1.3x of
// BENCH_C7.json).
func RunAramcoBusyN(seed uint64, fleet, workers int) (*Result, error) {
	return runAramcoScaleMix(seed, fleet, workers, false, users.MixOffice)
}

package core

import (
	"errors"
	"strings"
	"testing"
)

// raceIDs is the fast experiment subset the -race CI lane sweeps; heavy
// fleet runs (C7) are covered by the short-guarded full-run test below.
var raceIDs = []string{"F3", "C1", "C8"}

func renderReports(t *testing.T, reports []RunReport) string {
	t.Helper()
	var b strings.Builder
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("%s (seed %d): %v", rep.ID, rep.Seed, rep.Err)
		}
		b.WriteString(rep.Result.Render())
	}
	return b.String()
}

func TestRunExperimentsParallelDeterminism(t *testing.T) {
	ids := []string{"F2", "F3", "C1", "C6", "C8"}
	want := renderReports(t, RunExperiments(ids, 1, 1))
	if want == "" {
		t.Fatal("empty sequential report")
	}
	for _, workers := range []int{4, 8} {
		got := renderReports(t, RunExperiments(ids, 1, workers))
		if got != want {
			t.Fatalf("report with %d workers differs from sequential:\n--- got ---\n%s\n--- want ---\n%s", workers, got, want)
		}
	}
}

func TestRaceLaneParallelSweep(t *testing.T) {
	// The -race lane target: worker pool + multi-seed sweep over the fast
	// subset, enough concurrency to surface any shared mutable state
	// between worlds.
	seeds := []uint64{1, 2, 3}
	want := SweepSeeds(raceIDs, seeds, 1)
	got := SweepSeeds(raceIDs, seeds, 8)
	if RenderSweep(got) != RenderSweep(want) {
		t.Fatalf("sweep with 8 workers differs from sequential:\n--- got ---\n%s\n--- want ---\n%s",
			RenderSweep(got), RenderSweep(want))
	}
	for _, e := range got {
		if e.Seeds != len(seeds) || e.Passes != len(seeds) || len(e.Errors) != 0 {
			t.Fatalf("%s: seeds=%d passes=%d errs=%d, want %d/%d/0", e.ID, e.Seeds, e.Passes, len(e.Errors), len(seeds), len(seeds))
		}
		if len(e.Metrics) == 0 {
			t.Fatalf("%s: no aggregated metrics", e.ID)
		}
		for _, m := range e.Metrics {
			if !(m.Min <= m.Mean && m.Mean <= m.Max) {
				t.Fatalf("%s %s: min/mean/max out of order: %v/%v/%v", e.ID, m.Name, m.Min, m.Mean, m.Max)
			}
		}
	}
}

func TestRunAllParallelMatchesSequentialFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite double run skipped in -short mode")
	}
	results, err := RunAll(1) // the sequential baseline path
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(results) != len(ExperimentIDs()) {
		t.Fatalf("RunAll results = %d, want %d", len(results), len(ExperimentIDs()))
	}
	var want strings.Builder
	for _, res := range results {
		want.WriteString(res.Render())
	}
	got := renderReports(t, RunAllParallel(1, 8))
	if got != want.String() {
		t.Fatal("full parallel report differs from sequential run")
	}
}

func TestRunExperimentsCollectsErrorsAndKeepsRunning(t *testing.T) {
	Experiments["ZZ-boom"] = func(seed uint64) (*Result, error) {
		return nil, errors.New("synthetic failure")
	}
	Experiments["ZZ-panic"] = func(seed uint64) (*Result, error) {
		panic("synthetic panic")
	}
	defer delete(Experiments, "ZZ-boom")
	defer delete(Experiments, "ZZ-panic")

	reports := RunExperiments([]string{"ZZ-boom", "ZZ-panic", "ZZ-unknown", "F3"}, 1, 2)
	if len(reports) != 4 {
		t.Fatalf("reports = %d, want 4", len(reports))
	}
	for i, wantErr := range []string{"synthetic failure", "panic", "unknown ID"} {
		if reports[i].Err == nil || !strings.Contains(reports[i].Err.Error(), wantErr) {
			t.Fatalf("report %d err = %v, want substring %q", i, reports[i].Err, wantErr)
		}
	}
	last := reports[3]
	if last.Err != nil || last.Result == nil || !last.Result.Pass {
		t.Fatalf("F3 after failures: err=%v result=%v", last.Err, last.Result)
	}
	if err := JoinErrors(reports); err == nil || !strings.Contains(err.Error(), "ZZ-boom") {
		t.Fatalf("JoinErrors = %v, want joined failures", err)
	}
}

func TestSweepSeedsEmptyInputs(t *testing.T) {
	if SweepSeeds(nil, []uint64{1}, 4) != nil {
		t.Fatal("sweep of no experiments should be nil")
	}
	if SweepSeeds([]string{"F3"}, nil, 4) != nil {
		t.Fatal("sweep of no seeds should be nil")
	}
}

package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testJournalConfig(seed uint64) JournalConfig {
	return JournalConfig{Seed: seed, Faults: FaultProfile().Name, Activity: ActivityMixName()}
}

// TestJournalCrashResumeByteIdentical is the S3 acceptance test: a
// journaled sweep killed mid-run — including a torn final journal line,
// the signature of a SIGKILL between write and fsync — must, after
// -resume, yield exactly the bytes of an uninterrupted run, at every
// worker width.
func TestJournalCrashResumeByteIdentical(t *testing.T) {
	ids := []string{"F3", "C1", "C8"}
	cfg := testJournalConfig(1)
	clean := RunExperiments(ids, 1, 1)
	want := make([][]byte, len(clean))
	for i, rep := range clean {
		want[i] = payloadBytes(t, rep)
	}

	for _, workers := range []int{1, 4, 8} {
		path := filepath.Join(t.TempDir(), "run.journal")

		// Phase 1: the "crashed" run — only the first experiment lands in
		// the journal before the process dies.
		j1, err := OpenJournal(path, false, cfg)
		if err != nil {
			t.Fatalf("workers=%d: open: %v", workers, err)
		}
		RunExperimentsOpts(ids[:1], 1, RunOptions{Workers: 1, Journal: j1})
		if err := j1.Close(); err != nil {
			t.Fatalf("workers=%d: close: %v", workers, err)
		}
		// The kill tears the record being written: half a JSON object,
		// no trailing newline.
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"kind":"experiment","id":"C1","seed":1,"hash":"dead`); err != nil {
			t.Fatal(err)
		}
		f.Close()
		tornSize := fileSize(t, path)

		// Phase 2: resume. The torn tail is truncated, F3 is served from
		// the journal, C1 and C8 execute fresh.
		j2, err := OpenJournal(path, true, cfg)
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		if fileSize(t, path) >= tornSize {
			t.Fatalf("workers=%d: torn tail not truncated from the file", workers)
		}
		resumed := RunExperimentsOpts(ids, 1, RunOptions{Workers: workers, Journal: j2})
		if err := j2.Close(); err != nil {
			t.Fatalf("workers=%d: close after resume: %v", workers, err)
		}
		if !resumed[0].FromJournal {
			t.Fatalf("workers=%d: F3 was re-executed instead of served from the journal", workers)
		}
		if resumed[1].FromJournal || resumed[2].FromJournal {
			t.Fatalf("workers=%d: un-journaled experiments were served from the journal", workers)
		}
		for i := range ids {
			if !bytes.Equal(payloadBytes(t, resumed[i]), want[i]) {
				t.Fatalf("workers=%d: resumed %s differs from the uninterrupted run", workers, ids[i])
			}
		}

		// Phase 3: a second resume serves everything — the journal is now
		// complete and self-consistent.
		j3, err := OpenJournal(path, true, cfg)
		if err != nil {
			t.Fatalf("workers=%d: second resume: %v", workers, err)
		}
		replayed := RunExperimentsOpts(ids, 1, RunOptions{Workers: workers, Journal: j3})
		if j3.Served() != len(ids) {
			t.Fatalf("workers=%d: second resume served %d of %d", workers, j3.Served(), len(ids))
		}
		j3.Close()
		for i := range ids {
			if !replayed[i].FromJournal {
				t.Fatalf("workers=%d: %s missing from the completed journal", workers, ids[i])
			}
			if !bytes.Equal(payloadBytes(t, replayed[i]), want[i]) {
				t.Fatalf("workers=%d: journal-replayed %s differs from the uninterrupted run", workers, ids[i])
			}
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestJournalRequiresResumeFlag: running a fresh sweep onto an existing
// journal must be refused — it would silently skip its experiments.
func TestJournalRequiresResumeFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	cfg := testJournalConfig(1)
	j, err := OpenJournal(path, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(path, false, cfg); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("reopening without resume = %v, want a -resume refusal", err)
	}
}

// TestJournalConfigMismatchRefused: a journal is bound to its
// (seed, faults, activity) configuration; resuming under any other is
// an error, not silently different bytes.
func TestJournalConfigMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path, false, testJournalConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	other := testJournalConfig(2)
	if _, err := OpenJournal(path, true, other); err == nil || !strings.Contains(err.Error(), "identical configuration") {
		t.Fatalf("seed-mismatched resume = %v, want a configuration refusal", err)
	}
}

// TestJournalCorruptionRefused: damage anywhere but the final line
// cannot be crash fallout (records are fsync'd in order), so it must
// refuse to resume rather than replay a half-trusted file.
func TestJournalCorruptionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	cfg := testJournalConfig(1)
	j, err := OpenJournal(path, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	RunExperimentsOpts([]string{"F3", "C8"}, 1, RunOptions{Workers: 1, Journal: j})
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) < 4 { // header, F3, C8, trailing ""
		t.Fatalf("journal has %d lines, want at least 4", len(lines))
	}
	// Flip the pass bit inside the F3 record (line 2 of 3 — not the
	// final record, so this cannot be mistaken for a torn tail). The
	// line stays valid JSON; only the content hash can catch it.
	corrupt := bytes.Replace(lines[1], []byte(`"pass":true`), []byte(`"pass":false`), 1)
	if bytes.Equal(corrupt, lines[1]) {
		t.Fatal("test setup: F3 record has no pass bit to flip")
	}
	lines[1] = corrupt
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, true, cfg); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt-middle resume = %v, want a corruption refusal", err)
	}
}

// TestJournalSkipsIncompleteOutcomes: partial, skipped and
// determinism-violating reports never enter the journal — a resume must
// re-run them.
func TestJournalSkipsIncompleteOutcomes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	cfg := testJournalConfig(1)
	j, err := OpenJournal(path, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(RunReport{ID: "F1", Seed: 1, Partial: true, Err: os.ErrDeadlineExceeded})
	j.Record(RunReport{ID: "F2", Seed: 1, Skipped: true, Err: os.ErrDeadlineExceeded})
	j.Record(RunReport{ID: "F4", Seed: 1, Violation: true, Result: &Result{ID: "F4"}})
	if j.Recorded() != 0 {
		t.Fatalf("journal recorded %d incomplete outcomes, want 0", j.Recorded())
	}
	j.Close()

	j2, err := OpenJournal(path, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	for _, id := range []string{"F1", "F2", "F4"} {
		if _, ok := j2.Lookup(id, 1); ok {
			t.Fatalf("incomplete outcome %s was journaled", id)
		}
	}
}

// TestJournalReplaysDeterministicFailures: a failed (but complete)
// experiment is journaled with its error text and served on resume,
// hash-verified like any success.
func TestJournalReplaysDeterministicFailures(t *testing.T) {
	registerTempExperiment(t, "ZZ-det-fail", func(seed uint64) (*Result, error) {
		return nil, os.ErrPermission
	})
	path := filepath.Join(t.TempDir(), "run.journal")
	cfg := testJournalConfig(1)
	j, err := OpenJournal(path, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := RunExperimentsOpts([]string{"ZZ-det-fail"}, 1, RunOptions{Workers: 1, Journal: j})
	j.Close()
	if first[0].Err == nil {
		t.Fatal("expected a failure")
	}

	j2, err := OpenJournal(path, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rep, ok := j2.Lookup("ZZ-det-fail", 1)
	if !ok || !rep.FromJournal || rep.Err == nil || rep.Err.Error() != first[0].Err.Error() {
		t.Fatalf("journaled failure replay = ok=%v rep=%+v", ok, rep)
	}
}

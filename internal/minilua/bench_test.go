package minilua

import "testing"

const benchScript = `
local sum = 0
for i = 1, 1000 do
	sum = sum + i * 2 - (i % 7)
end
return sum
`

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchScript); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunArithmeticLoop(b *testing.B) {
	chunk, err := Parse(benchScript)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in := NewInterp()
		if _, err := in.Run(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableOps(b *testing.B) {
	chunk, err := Parse(`
		local t = {}
		for i = 1, 200 do t["k" .. i] = i end
		local sum = 0
		for k, v in t do sum = sum + v end
		return sum
	`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		in := NewInterp()
		if _, err := in.Run(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFunctionCalls(b *testing.B) {
	chunk, err := Parse(`
		function fib(n)
			if n < 2 then return n end
			return fib(n - 1) + fib(n - 2)
		end
		return fib(12)
	`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		in := NewInterp()
		if _, err := in.Run(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

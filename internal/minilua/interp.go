package minilua

import (
	"errors"
	"fmt"
	"strings"
)

// RuntimeError reports an execution failure with the source line.
type RuntimeError struct {
	Line int
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("minilua: runtime error at line %d: %s", e.Line, e.Msg)
}

// ErrFuelExhausted aborts scripts that exceed their execution budget.
var ErrFuelExhausted = errors.New("minilua: fuel exhausted")

// env is a lexical scope.
type env struct {
	vars   map[string]Value
	parent *env
}

func newEnv(parent *env) *env {
	return &env{vars: make(map[string]Value), parent: parent}
}

func (e *env) lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// setExisting assigns to the nearest scope declaring name; reports whether
// one was found.
func (e *env) setExisting(name string, v Value) bool {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return true
		}
	}
	return false
}

func (e *env) root() *env {
	s := e
	for s.parent != nil {
		s = s.parent
	}
	return s
}

// Interp executes chunks with a fuel budget and a capability environment.
type Interp struct {
	globals *env
	fuel    int
	output  strings.Builder
}

// DefaultFuel is the per-Run execution budget when none is set.
const DefaultFuel = 1 << 20

// NewInterp returns an interpreter with the standard library installed.
func NewInterp() *Interp {
	in := &Interp{globals: newEnv(nil), fuel: DefaultFuel}
	installStdlib(in)
	return in
}

// SetFuel sets the remaining execution budget.
func (in *Interp) SetFuel(n int) { in.fuel = n }

// Fuel returns the remaining budget.
func (in *Interp) Fuel() int { return in.fuel }

// SetGlobal binds a global variable (the capability-injection point: host
// APIs are exposed to modules as Builtin globals).
func (in *Interp) SetGlobal(name string, v Value) {
	in.globals.vars[name] = v
}

// Global reads a global variable.
func (in *Interp) Global(name string) Value {
	v, _ := in.globals.lookup(name)
	return v
}

// Register binds a Go function as a global builtin.
func (in *Interp) Register(name string, fn func(in *Interp, args []Value) (Value, error)) {
	in.SetGlobal(name, &Builtin{Name: name, Fn: fn})
}

// Output returns everything print() emitted.
func (in *Interp) Output() string { return in.output.String() }

// ResetOutput clears the print buffer.
func (in *Interp) ResetOutput() { in.output.Reset() }

// Run executes a chunk in the global scope, returning the chunk's return
// value (nil if it does not return).
func (in *Interp) Run(c *Chunk) (Value, error) {
	ret, ctl, err := in.execBlock(c.body, newEnv(in.globals))
	if err != nil {
		return nil, err
	}
	if ctl == ctlBreak {
		return nil, &RuntimeError{Line: 0, Msg: "break outside loop"}
	}
	return ret, nil
}

// RunSource parses and executes src.
func (in *Interp) RunSource(src string) (Value, error) {
	c, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return in.Run(c)
}

// Call invokes a script function or builtin from Go.
func (in *Interp) Call(fn Value, args ...Value) (Value, error) {
	return in.call(fn, args, 0)
}

type ctlKind int

const (
	ctlNone ctlKind = iota
	ctlReturn
	ctlBreak
)

func (in *Interp) burn(line int) error {
	in.fuel--
	if in.fuel < 0 {
		return fmt.Errorf("%w (line %d)", ErrFuelExhausted, line)
	}
	return nil
}

func (in *Interp) execBlock(body []stmt, e *env) (Value, ctlKind, error) {
	for _, s := range body {
		ret, ctl, err := in.execStmt(s, e)
		if err != nil {
			return nil, ctlNone, err
		}
		if ctl != ctlNone {
			return ret, ctl, nil
		}
	}
	return nil, ctlNone, nil
}

func (in *Interp) execStmt(s stmt, e *env) (Value, ctlKind, error) {
	switch st := s.(type) {
	case *localStmt:
		if err := in.burn(st.line); err != nil {
			return nil, ctlNone, err
		}
		vals := make([]Value, len(st.names))
		for i := range st.names {
			if i < len(st.exprs) {
				v, err := in.eval(st.exprs[i], e)
				if err != nil {
					return nil, ctlNone, err
				}
				vals[i] = v
			}
		}
		for i, name := range st.names {
			e.vars[name] = vals[i]
		}
		return nil, ctlNone, nil

	case *assignStmt:
		if err := in.burn(st.line); err != nil {
			return nil, ctlNone, err
		}
		vals := make([]Value, len(st.targets))
		for i := range st.targets {
			if i < len(st.exprs) {
				v, err := in.eval(st.exprs[i], e)
				if err != nil {
					return nil, ctlNone, err
				}
				vals[i] = v
			}
		}
		for i, tgt := range st.targets {
			if err := in.assign(tgt, vals[i], e); err != nil {
				return nil, ctlNone, err
			}
		}
		return nil, ctlNone, nil

	case *ifStmt:
		if err := in.burn(st.line); err != nil {
			return nil, ctlNone, err
		}
		for i, cond := range st.conds {
			v, err := in.eval(cond, e)
			if err != nil {
				return nil, ctlNone, err
			}
			if Truthy(v) {
				return in.execBlock(st.blocks[i], newEnv(e))
			}
		}
		if st.els != nil {
			return in.execBlock(st.els, newEnv(e))
		}
		return nil, ctlNone, nil

	case *whileStmt:
		for {
			if err := in.burn(st.line); err != nil {
				return nil, ctlNone, err
			}
			v, err := in.eval(st.cond, e)
			if err != nil {
				return nil, ctlNone, err
			}
			if !Truthy(v) {
				return nil, ctlNone, nil
			}
			ret, ctl, err := in.execBlock(st.body, newEnv(e))
			if err != nil {
				return nil, ctlNone, err
			}
			if ctl == ctlReturn {
				return ret, ctl, nil
			}
			if ctl == ctlBreak {
				return nil, ctlNone, nil
			}
		}

	case *repeatStmt:
		for {
			if err := in.burn(st.line); err != nil {
				return nil, ctlNone, err
			}
			// The condition sees locals declared in the body (Lua
			// semantics), so body and condition share the scope.
			scope := newEnv(e)
			ret, ctl, err := in.execBlock(st.body, scope)
			if err != nil {
				return nil, ctlNone, err
			}
			if ctl == ctlReturn {
				return ret, ctl, nil
			}
			if ctl == ctlBreak {
				return nil, ctlNone, nil
			}
			v, err := in.eval(st.cond, scope)
			if err != nil {
				return nil, ctlNone, err
			}
			if Truthy(v) {
				return nil, ctlNone, nil
			}
		}

	case *numForStmt:
		start, err := in.evalNumber(st.startE, e, st.line)
		if err != nil {
			return nil, ctlNone, err
		}
		limit, err := in.evalNumber(st.limitE, e, st.line)
		if err != nil {
			return nil, ctlNone, err
		}
		step := 1.0
		if st.stepE != nil {
			step, err = in.evalNumber(st.stepE, e, st.line)
			if err != nil {
				return nil, ctlNone, err
			}
		}
		if step == 0 {
			return nil, ctlNone, &RuntimeError{Line: st.line, Msg: "for step is zero"}
		}
		for i := start; (step > 0 && i <= limit) || (step < 0 && i >= limit); i += step {
			if err := in.burn(st.line); err != nil {
				return nil, ctlNone, err
			}
			scope := newEnv(e)
			scope.vars[st.varName] = i
			ret, ctl, err := in.execBlock(st.body, scope)
			if err != nil {
				return nil, ctlNone, err
			}
			if ctl == ctlReturn {
				return ret, ctl, nil
			}
			if ctl == ctlBreak {
				return nil, ctlNone, nil
			}
		}
		return nil, ctlNone, nil

	case *genForStmt:
		v, err := in.eval(st.iterable, e)
		if err != nil {
			return nil, ctlNone, err
		}
		tbl, ok := v.(*Table)
		if !ok {
			return nil, ctlNone, &RuntimeError{Line: st.line, Msg: "generic for requires a table, got " + TypeName(v)}
		}
		for _, key := range tbl.SortedKeys() {
			if err := in.burn(st.line); err != nil {
				return nil, ctlNone, err
			}
			scope := newEnv(e)
			scope.vars[st.keyV] = key
			scope.vars[st.valV] = tbl.Get(key)
			ret, ctl, err := in.execBlock(st.body, scope)
			if err != nil {
				return nil, ctlNone, err
			}
			if ctl == ctlReturn {
				return ret, ctl, nil
			}
			if ctl == ctlBreak {
				return nil, ctlNone, nil
			}
		}
		return nil, ctlNone, nil

	case *funcStmt:
		fn := &Function{name: st.name, params: st.fn.params, body: st.fn.body, env: e}
		if st.local {
			e.vars[st.name] = fn
		} else if !e.setExisting(st.name, fn) {
			e.root().vars[st.name] = fn
		}
		return nil, ctlNone, nil

	case *returnStmt:
		if err := in.burn(st.line); err != nil {
			return nil, ctlNone, err
		}
		if st.e == nil {
			return nil, ctlReturn, nil
		}
		v, err := in.eval(st.e, e)
		if err != nil {
			return nil, ctlNone, err
		}
		return v, ctlReturn, nil

	case *breakStmt:
		return nil, ctlBreak, nil

	case *exprStmt:
		if err := in.burn(st.line); err != nil {
			return nil, ctlNone, err
		}
		_, err := in.eval(st.e, e)
		return nil, ctlNone, err

	default:
		return nil, ctlNone, fmt.Errorf("minilua: unknown statement %T", s)
	}
}

func (in *Interp) assign(tgt expr, v Value, e *env) error {
	switch t := tgt.(type) {
	case *nameExpr:
		if !e.setExisting(t.name, v) {
			e.root().vars[t.name] = v
		}
		return nil
	case *indexExpr:
		obj, err := in.eval(t.obj, e)
		if err != nil {
			return err
		}
		tbl, ok := obj.(*Table)
		if !ok {
			return &RuntimeError{Line: t.line, Msg: "cannot index " + TypeName(obj)}
		}
		key, err := in.eval(t.key, e)
		if err != nil {
			return err
		}
		if key == nil {
			return &RuntimeError{Line: t.line, Msg: "table index is nil"}
		}
		tbl.Set(key, v)
		return nil
	default:
		return fmt.Errorf("minilua: cannot assign to %T", tgt)
	}
}

func (in *Interp) evalNumber(ex expr, e *env, line int) (float64, error) {
	v, err := in.eval(ex, e)
	if err != nil {
		return 0, err
	}
	n, ok := v.(float64)
	if !ok {
		return 0, &RuntimeError{Line: line, Msg: "expected number, got " + TypeName(v)}
	}
	return n, nil
}

func (in *Interp) eval(ex expr, e *env) (Value, error) {
	switch x := ex.(type) {
	case *nilExpr:
		return nil, nil
	case *boolExpr:
		return x.v, nil
	case *numberExpr:
		return x.v, nil
	case *stringExpr:
		return x.v, nil
	case *nameExpr:
		v, _ := e.lookup(x.name)
		return v, nil
	case *funcExpr:
		return &Function{params: x.params, body: x.body, env: e}, nil
	case *unExpr:
		return in.evalUnary(x, e)
	case *binExpr:
		return in.evalBinary(x, e)
	case *indexExpr:
		obj, err := in.eval(x.obj, e)
		if err != nil {
			return nil, err
		}
		tbl, ok := obj.(*Table)
		if !ok {
			return nil, &RuntimeError{Line: x.line, Msg: "cannot index " + TypeName(obj)}
		}
		key, err := in.eval(x.key, e)
		if err != nil {
			return nil, err
		}
		return tbl.Get(key), nil
	case *callExpr:
		if err := in.burn(x.line); err != nil {
			return nil, err
		}
		fn, err := in.eval(x.fn, e)
		if err != nil {
			return nil, err
		}
		args := make([]Value, len(x.args))
		for i, a := range x.args {
			args[i], err = in.eval(a, e)
			if err != nil {
				return nil, err
			}
		}
		return in.call(fn, args, x.line)
	case *tableExpr:
		t := NewTable()
		for _, ve := range x.arr {
			v, err := in.eval(ve, e)
			if err != nil {
				return nil, err
			}
			t.Append(v)
		}
		for i := range x.keys {
			k, err := in.eval(x.keys[i], e)
			if err != nil {
				return nil, err
			}
			v, err := in.eval(x.vals[i], e)
			if err != nil {
				return nil, err
			}
			if k == nil {
				return nil, &RuntimeError{Line: x.line, Msg: "table index is nil"}
			}
			t.Set(k, v)
		}
		return t, nil
	default:
		return nil, fmt.Errorf("minilua: unknown expression %T", ex)
	}
}

func (in *Interp) call(fn Value, args []Value, line int) (Value, error) {
	switch f := fn.(type) {
	case *Builtin:
		return f.Fn(in, args)
	case *Function:
		scope := newEnv(f.env)
		for i, p := range f.params {
			if i < len(args) {
				scope.vars[p] = args[i]
			} else {
				scope.vars[p] = nil
			}
		}
		ret, ctl, err := in.execBlock(f.body, scope)
		if err != nil {
			return nil, err
		}
		if ctl == ctlBreak {
			return nil, &RuntimeError{Line: line, Msg: "break outside loop"}
		}
		return ret, nil
	default:
		return nil, &RuntimeError{Line: line, Msg: "attempt to call a " + TypeName(fn) + " value"}
	}
}

func (in *Interp) evalUnary(x *unExpr, e *env) (Value, error) {
	v, err := in.eval(x.e, e)
	if err != nil {
		return nil, err
	}
	switch x.op {
	case "-":
		n, ok := v.(float64)
		if !ok {
			return nil, &RuntimeError{Line: x.line, Msg: "attempt to negate a " + TypeName(v)}
		}
		return -n, nil
	case "not":
		return !Truthy(v), nil
	case "#":
		switch vv := v.(type) {
		case string:
			return float64(len(vv)), nil
		case *Table:
			return float64(vv.Len()), nil
		default:
			return nil, &RuntimeError{Line: x.line, Msg: "attempt to get length of a " + TypeName(v)}
		}
	default:
		return nil, &RuntimeError{Line: x.line, Msg: "unknown unary operator " + x.op}
	}
}

func (in *Interp) evalBinary(x *binExpr, e *env) (Value, error) {
	// Short-circuit logic.
	if x.op == "and" || x.op == "or" {
		l, err := in.eval(x.l, e)
		if err != nil {
			return nil, err
		}
		if x.op == "and" {
			if !Truthy(l) {
				return l, nil
			}
			return in.eval(x.r, e)
		}
		if Truthy(l) {
			return l, nil
		}
		return in.eval(x.r, e)
	}
	l, err := in.eval(x.l, e)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(x.r, e)
	if err != nil {
		return nil, err
	}
	switch x.op {
	case "==":
		return valuesEqual(l, r), nil
	case "~=":
		return !valuesEqual(l, r), nil
	case "..":
		ls, lok := concatOperand(l)
		rs, rok := concatOperand(r)
		if !lok || !rok {
			return nil, &RuntimeError{Line: x.line, Msg: "attempt to concatenate a " + TypeName(pickBad(l, r, lok))}
		}
		return ls + rs, nil
	}
	// Numeric and comparison operators.
	switch x.op {
	case "<", "<=", ">", ">=":
		if ls, ok := l.(string); ok {
			rs, ok2 := r.(string)
			if !ok2 {
				return nil, &RuntimeError{Line: x.line, Msg: "attempt to compare string with " + TypeName(r)}
			}
			return compareStrings(x.op, ls, rs), nil
		}
	}
	ln, lok := l.(float64)
	rn, rok := r.(float64)
	if !lok || !rok {
		return nil, &RuntimeError{Line: x.line, Msg: fmt.Sprintf("attempt to perform arithmetic (%s) on a %s", x.op, TypeName(pickBad(l, r, lok)))}
	}
	switch x.op {
	case "+":
		return ln + rn, nil
	case "-":
		return ln - rn, nil
	case "*":
		return ln * rn, nil
	case "/":
		if rn == 0 {
			return nil, &RuntimeError{Line: x.line, Msg: "division by zero"}
		}
		return ln / rn, nil
	case "%":
		if rn == 0 {
			return nil, &RuntimeError{Line: x.line, Msg: "modulo by zero"}
		}
		m := ln - rn*float64(int64(ln/rn))
		return m, nil
	case "<":
		return ln < rn, nil
	case "<=":
		return ln <= rn, nil
	case ">":
		return ln > rn, nil
	case ">=":
		return ln >= rn, nil
	default:
		return nil, &RuntimeError{Line: x.line, Msg: "unknown operator " + x.op}
	}
}

func pickBad(l, r Value, lok bool) Value {
	if !lok {
		return l
	}
	return r
}

func concatOperand(v Value) (string, bool) {
	switch x := v.(type) {
	case string:
		return x, true
	case float64:
		return ToString(x), true
	default:
		return "", false
	}
}

func compareStrings(op, l, r string) bool {
	switch op {
	case "<":
		return l < r
	case "<=":
		return l <= r
	case ">":
		return l > r
	default:
		return l >= r
	}
}

func valuesEqual(l, r Value) bool {
	if l == nil && r == nil {
		return true
	}
	switch a := l.(type) {
	case float64:
		b, ok := r.(float64)
		return ok && a == b
	case string:
		b, ok := r.(string)
		return ok && a == b
	case bool:
		b, ok := r.(bool)
		return ok && a == b
	default:
		return l == r // pointer identity for tables/functions
	}
}

// Package minilua implements a small Lua-like scripting language with a
// lexer, recursive-descent parser and tree-walking interpreter. It stands
// in for the Lua virtual machine embedded in Flame: module logic ships as
// source strings, is interpreted at run time inside a capability sandbox,
// and can be hot-swapped by C&C updates — the design property the paper
// singles out as what "distinguishes it from typical malware".
//
// Supported language: nil/true/false, numbers (float64), strings, tables,
// first-class functions with closures; local/global variables; if/elseif/
// else, while, repeat/until, numeric and generic for, break, return;
// operators + - * / % .. == ~= < <= > >= and or not - #; table
// constructors and indexing (t.k, t[k]). Execution is fuel-limited so
// hostile or runaway modules terminate.
package minilua

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tkEOF tokenKind = iota
	tkName
	tkNumber
	tkString
	tkKeyword
	tkOp
)

type token struct {
	kind tokenKind
	text string
	num  float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tkEOF:
		return "<eof>"
	case tkNumber:
		return fmt.Sprintf("%g", t.num)
	case tkString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

var keywords = map[string]bool{
	"and": true, "break": true, "do": true, "else": true, "elseif": true,
	"end": true, "false": true, "for": true, "function": true, "if": true,
	"local": true, "nil": true, "not": true, "or": true, "repeat": true,
	"return": true,
	"then":   true, "true": true, "until": true, "while": true, "in": true,
}

// SyntaxError reports a lexing or parsing failure with its source line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minilua: line %d: %s", e.Line, e.Msg)
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case isNameStart(c):
			start := i
			for i < n && isNameChar(src[i]) {
				i++
			}
			text := src[start:i]
			kind := tkName
			if keywords[text] {
				kind = tkKeyword
			}
			toks = append(toks, token{kind: kind, text: text, line: line})
		case c >= '0' && c <= '9':
			start := i
			seenDot := false
			for i < n && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' && !seenDot) {
				if src[i] == '.' {
					seenDot = true
				}
				i++
			}
			text := src[start:i]
			var num float64
			if _, err := fmt.Sscanf(text, "%g", &num); err != nil {
				return nil, &SyntaxError{Line: line, Msg: "malformed number " + text}
			}
			toks = append(toks, token{kind: tkNumber, text: text, num: num, line: line})
		case c == '"' || c == '\'':
			quote := c
			i++
			var b strings.Builder
			closed := false
			for i < n {
				ch := src[i]
				if ch == quote {
					closed = true
					i++
					break
				}
				if ch == '\n' {
					return nil, &SyntaxError{Line: line, Msg: "unterminated string"}
				}
				if ch == '\\' && i+1 < n {
					i++
					switch src[i] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '\\':
						b.WriteByte('\\')
					case '"':
						b.WriteByte('"')
					case '\'':
						b.WriteByte('\'')
					case '0':
						b.WriteByte(0)
					default:
						return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("bad escape \\%c", src[i])}
					}
					i++
					continue
				}
				b.WriteByte(ch)
				i++
			}
			if !closed {
				return nil, &SyntaxError{Line: line, Msg: "unterminated string"}
			}
			toks = append(toks, token{kind: tkString, text: b.String(), line: line})
		default:
			op, width := lexOp(src[i:])
			if op == "" {
				return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
			toks = append(toks, token{kind: tkOp, text: op, line: line})
			i += width
		}
	}
	toks = append(toks, token{kind: tkEOF, line: line})
	return toks, nil
}

func lexOp(s string) (string, int) {
	two := ""
	if len(s) >= 2 {
		two = s[:2]
	}
	switch two {
	case "==", "~=", "<=", ">=", "..":
		return two, 2
	}
	switch s[0] {
	case '+', '-', '*', '/', '%', '<', '>', '=', '(', ')', '{', '}', '[', ']', ',', ';', '.', '#', ':':
		return s[:1], 1
	}
	return "", 0
}

func isNameStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9'
}

package minilua

import "fmt"

// Parse compiles source into a chunk (a statement block) ready for
// execution.
func Parse(src string) (*Chunk, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	body, err := p.block(map[string]bool{})
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tkEOF {
		return nil, p.errf("unexpected %s after chunk", p.cur())
	}
	return &Chunk{body: body}, nil
}

// Chunk is a parsed program.
type Chunk struct {
	body []stmt
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) acceptOp(op string) bool {
	if p.cur().kind == tkOp && p.cur().text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKw(kw string) bool {
	if p.cur().kind == tkKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %s", op, p.cur())
	}
	return nil
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %q, found %s", kw, p.cur())
	}
	return nil
}

func (p *parser) expectName() (string, error) {
	if p.cur().kind != tkName {
		return "", p.errf("expected name, found %s", p.cur())
	}
	return p.next().text, nil
}

// blockEnd reports whether the current token terminates a block.
func (p *parser) blockEnd() bool {
	t := p.cur()
	if t.kind == tkEOF {
		return true
	}
	if t.kind != tkKeyword {
		return false
	}
	switch t.text {
	case "end", "else", "elseif", "until":
		return true
	}
	return false
}

func (p *parser) repeatStatement() (stmt, error) {
	line := p.cur().line
	p.pos++ // repeat
	body, err := p.block(nil)
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("until"); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	return &repeatStmt{line: line, body: body, cond: cond}, nil
}

func (p *parser) block(_ map[string]bool) ([]stmt, error) {
	var out []stmt
	for !p.blockEnd() {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
		// A return must be the last statement of a block.
		if _, isReturn := s.(*returnStmt); isReturn {
			break
		}
	}
	return out, nil
}

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	if t.kind == tkOp && t.text == ";" {
		p.pos++
		return nil, nil
	}
	if t.kind == tkKeyword {
		switch t.text {
		case "local":
			return p.localStatement()
		case "if":
			return p.ifStatement()
		case "while":
			return p.whileStatement()
		case "repeat":
			return p.repeatStatement()
		case "for":
			return p.forStatement()
		case "function":
			return p.funcStatement(false)
		case "return":
			p.pos++
			rs := &returnStmt{line: t.line}
			if !p.blockEnd() && !(p.cur().kind == tkOp && p.cur().text == ";") {
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				rs.e = e
			}
			p.acceptOp(";")
			return rs, nil
		case "break":
			p.pos++
			return &breakStmt{line: t.line}, nil
		case "do":
			p.pos++
			body, err := p.block(nil)
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("end"); err != nil {
				return nil, err
			}
			// Model "do ... end" as an if true block.
			return &ifStmt{line: t.line, conds: []expr{&boolExpr{v: true}}, blocks: [][]stmt{body}}, nil
		}
	}
	return p.exprOrAssign()
}

func (p *parser) localStatement() (stmt, error) {
	line := p.cur().line
	p.pos++ // local
	if p.acceptKw("function") {
		name, err := p.expectName()
		if err != nil {
			return nil, err
		}
		fn, err := p.funcBody(line)
		if err != nil {
			return nil, err
		}
		return &funcStmt{line: line, name: name, local: true, fn: fn}, nil
	}
	var names []string
	for {
		name, err := p.expectName()
		if err != nil {
			return nil, err
		}
		names = append(names, name)
		if !p.acceptOp(",") {
			break
		}
	}
	var exprs []expr
	if p.acceptOp("=") {
		var err error
		exprs, err = p.exprList()
		if err != nil {
			return nil, err
		}
	}
	return &localStmt{line: line, names: names, exprs: exprs}, nil
}

func (p *parser) ifStatement() (stmt, error) {
	line := p.cur().line
	p.pos++ // if
	out := &ifStmt{line: line}
	for {
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("then"); err != nil {
			return nil, err
		}
		body, err := p.block(nil)
		if err != nil {
			return nil, err
		}
		out.conds = append(out.conds, cond)
		out.blocks = append(out.blocks, body)
		if p.acceptKw("elseif") {
			continue
		}
		break
	}
	if p.acceptKw("else") {
		els, err := p.block(nil)
		if err != nil {
			return nil, err
		}
		out.els = els
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) whileStatement() (stmt, error) {
	line := p.cur().line
	p.pos++ // while
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("do"); err != nil {
		return nil, err
	}
	body, err := p.block(nil)
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return &whileStmt{line: line, cond: cond, body: body}, nil
}

func (p *parser) forStatement() (stmt, error) {
	line := p.cur().line
	p.pos++ // for
	first, err := p.expectName()
	if err != nil {
		return nil, err
	}
	// Generic for: for k, v in expr do ... end
	if p.acceptOp(",") {
		second, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("in"); err != nil {
			return nil, err
		}
		iterable, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("do"); err != nil {
			return nil, err
		}
		body, err := p.block(nil)
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("end"); err != nil {
			return nil, err
		}
		return &genForStmt{line: line, keyV: first, valV: second, iterable: iterable, body: body}, nil
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	start, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(","); err != nil {
		return nil, err
	}
	limit, err := p.expression()
	if err != nil {
		return nil, err
	}
	var step expr
	if p.acceptOp(",") {
		step, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("do"); err != nil {
		return nil, err
	}
	body, err := p.block(nil)
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return &numForStmt{line: line, varName: first, startE: start, limitE: limit, stepE: step, body: body}, nil
}

func (p *parser) funcStatement(local bool) (stmt, error) {
	line := p.cur().line
	p.pos++ // function
	name, err := p.expectName()
	if err != nil {
		return nil, err
	}
	fn, err := p.funcBody(line)
	if err != nil {
		return nil, err
	}
	return &funcStmt{line: line, name: name, local: local, fn: fn}, nil
}

func (p *parser) funcBody(line int) (*funcExpr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var params []string
	if !p.acceptOp(")") {
		for {
			name, err := p.expectName()
			if err != nil {
				return nil, err
			}
			params = append(params, name)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	body, err := p.block(nil)
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return &funcExpr{line: line, params: params, body: body}, nil
}

func (p *parser) exprOrAssign() (stmt, error) {
	line := p.cur().line
	first, err := p.suffixedExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tkOp && (p.cur().text == "=" || p.cur().text == ",") {
		targets := []expr{first}
		for p.acceptOp(",") {
			e, err := p.suffixedExpr()
			if err != nil {
				return nil, err
			}
			targets = append(targets, e)
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		exprs, err := p.exprList()
		if err != nil {
			return nil, err
		}
		for _, tgt := range targets {
			switch tgt.(type) {
			case *nameExpr, *indexExpr:
			default:
				return nil, &SyntaxError{Line: line, Msg: "cannot assign to this expression"}
			}
		}
		return &assignStmt{line: line, targets: targets, exprs: exprs}, nil
	}
	if _, ok := first.(*callExpr); !ok {
		return nil, &SyntaxError{Line: line, Msg: "expression is not a statement"}
	}
	return &exprStmt{line: line, e: first}, nil
}

func (p *parser) exprList() ([]expr, error) {
	var out []expr
	for {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.acceptOp(",") {
			return out, nil
		}
	}
}

// Operator precedence (low to high).
var binPrec = map[string]int{
	"or": 1, "and": 2,
	"<": 3, ">": 3, "<=": 3, ">=": 3, "==": 3, "~=": 3,
	"..": 4,
	"+":  5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

const unaryPrec = 7

func (p *parser) expression() (expr, error) { return p.binExprP(0) }

func (p *parser) binExprP(limit int) (expr, error) {
	var left expr
	var err error
	t := p.cur()
	switch {
	case t.kind == tkOp && (t.text == "-" || t.text == "#"):
		p.pos++
		operand, err2 := p.binExprP(unaryPrec)
		if err2 != nil {
			return nil, err2
		}
		left = &unExpr{line: t.line, op: t.text, e: operand}
	case t.kind == tkKeyword && t.text == "not":
		p.pos++
		operand, err2 := p.binExprP(unaryPrec)
		if err2 != nil {
			return nil, err2
		}
		left = &unExpr{line: t.line, op: "not", e: operand}
	default:
		left, err = p.simpleExpr()
		if err != nil {
			return nil, err
		}
	}
	for {
		t := p.cur()
		var op string
		if t.kind == tkOp {
			op = t.text
		} else if t.kind == tkKeyword && (t.text == "and" || t.text == "or") {
			op = t.text
		} else {
			break
		}
		prec, ok := binPrec[op]
		if !ok || prec <= limit {
			break
		}
		p.pos++
		// ".." is right-associative; others left.
		nextLimit := prec
		if op == ".." {
			nextLimit = prec - 1
		}
		right, err := p.binExprP(nextLimit)
		if err != nil {
			return nil, err
		}
		left = &binExpr{line: t.line, op: op, l: left, r: right}
	}
	return left, nil
}

func (p *parser) simpleExpr() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tkNumber:
		p.pos++
		return &numberExpr{v: t.num}, nil
	case t.kind == tkString:
		p.pos++
		return &stringExpr{v: t.text}, nil
	case t.kind == tkKeyword && t.text == "nil":
		p.pos++
		return &nilExpr{}, nil
	case t.kind == tkKeyword && t.text == "true":
		p.pos++
		return &boolExpr{v: true}, nil
	case t.kind == tkKeyword && t.text == "false":
		p.pos++
		return &boolExpr{v: false}, nil
	case t.kind == tkKeyword && t.text == "function":
		p.pos++
		return p.funcBody(t.line)
	case t.kind == tkOp && t.text == "{":
		return p.tableConstructor()
	default:
		return p.suffixedExpr()
	}
}

func (p *parser) primaryExpr() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tkName:
		p.pos++
		return &nameExpr{line: t.line, name: t.text}, nil
	case t.kind == tkOp && t.text == "(":
		p.pos++
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("unexpected %s", t)
	}
}

func (p *parser) suffixedExpr() (expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tkOp {
			return e, nil
		}
		switch t.text {
		case ".":
			p.pos++
			name, err := p.expectName()
			if err != nil {
				return nil, err
			}
			e = &indexExpr{line: t.line, obj: e, key: &stringExpr{v: name}}
		case "[":
			p.pos++
			key, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			e = &indexExpr{line: t.line, obj: e, key: key}
		case "(":
			p.pos++
			var args []expr
			if !p.acceptOp(")") {
				args, err = p.exprList()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			e = &callExpr{line: t.line, fn: e, args: args}
		default:
			return e, nil
		}
	}
}

func (p *parser) tableConstructor() (expr, error) {
	line := p.cur().line
	if err := p.expectOp("{"); err != nil {
		return nil, err
	}
	out := &tableExpr{line: line}
	for !p.acceptOp("}") {
		t := p.cur()
		switch {
		case t.kind == tkOp && t.text == "[":
			p.pos++
			key, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			val, err := p.expression()
			if err != nil {
				return nil, err
			}
			out.keys = append(out.keys, key)
			out.vals = append(out.vals, val)
		case t.kind == tkName && p.toks[p.pos+1].kind == tkOp && p.toks[p.pos+1].text == "=":
			p.pos += 2
			val, err := p.expression()
			if err != nil {
				return nil, err
			}
			out.keys = append(out.keys, &stringExpr{v: t.text})
			out.vals = append(out.vals, val)
		default:
			val, err := p.expression()
			if err != nil {
				return nil, err
			}
			out.arr = append(out.arr, val)
		}
		if p.acceptOp(",") || p.acceptOp(";") {
			continue
		}
		if err := p.expectOp("}"); err != nil {
			return nil, err
		}
		break
	}
	return out, nil
}

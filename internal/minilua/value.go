package minilua

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is any minilua value: nil, bool, float64, string, *Table,
// *Function, or *Builtin.
type Value any

// Table is the associative container. Integer-keyed entries starting at 1
// form the array part for # and ipairs-style iteration.
type Table struct {
	m map[Value]Value
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{m: make(map[Value]Value)} }

// Get returns the value for key (nil if absent).
func (t *Table) Get(key Value) Value { return t.m[normKey(key)] }

// Set stores value under key; setting nil removes the key.
func (t *Table) Set(key, value Value) {
	k := normKey(key)
	if value == nil {
		delete(t.m, k)
		return
	}
	t.m[k] = value
}

// Len returns the border: the count of consecutive integer keys from 1.
func (t *Table) Len() int {
	n := 0
	for {
		if _, ok := t.m[float64(n+1)]; !ok {
			return n
		}
		n++
	}
}

// Append adds value at the end of the array part.
func (t *Table) Append(value Value) { t.Set(float64(t.Len()+1), value) }

// SortedKeys returns all keys in a deterministic order: numbers ascending,
// then strings ascending, then everything else by formatted representation.
func (t *Table) SortedKeys() []Value {
	keys := make([]Value, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, k)
	}
	rank := func(v Value) int {
		switch v.(type) {
		case float64:
			return 0
		case string:
			return 1
		default:
			return 2
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		ri, rj := rank(keys[i]), rank(keys[j])
		if ri != rj {
			return ri < rj
		}
		switch a := keys[i].(type) {
		case float64:
			return a < keys[j].(float64)
		case string:
			return a < keys[j].(string)
		default:
			return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j])
		}
	})
	return keys
}

// Size returns the number of entries (array + hash parts).
func (t *Table) Size() int { return len(t.m) }

// normKey canonicalizes map keys (ints become float64).
func normKey(key Value) Value {
	switch k := key.(type) {
	case int:
		return float64(k)
	default:
		return key
	}
}

// Function is a user-defined closure.
type Function struct {
	name   string
	params []string
	body   []stmt
	env    *env
}

// Builtin is a Go-implemented function exposed to scripts.
type Builtin struct {
	Name string
	Fn   func(in *Interp, args []Value) (Value, error)
}

// Truthy implements Lua truth: nil and false are false, all else true.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	default:
		return true
	}
}

// ToString renders a value the way print does.
func ToString(v Value) string {
	switch x := v.(type) {
	case nil:
		return "nil"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case *Table:
		return fmt.Sprintf("table(%d)", x.Size())
	case *Function:
		if x.name != "" {
			return "function:" + x.name
		}
		return "function"
	case *Builtin:
		return "builtin:" + x.Name
	default:
		return fmt.Sprintf("%v", v)
	}
}

// TypeName returns the Lua type name of v.
func TypeName(v Value) string {
	switch v.(type) {
	case nil:
		return "nil"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case *Table:
		return "table"
	case *Function, *Builtin:
		return "function"
	default:
		return "userdata"
	}
}

// GoStringsToTable builds an array-style table from strings.
func GoStringsToTable(items []string) *Table {
	t := NewTable()
	for _, s := range items {
		t.Append(s)
	}
	return t
}

// TableToGoStrings flattens the array part of a table to Go strings.
func TableToGoStrings(t *Table) []string {
	n := t.Len()
	out := make([]string, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, ToString(t.Get(float64(i))))
	}
	return out
}

func formatValues(vals []Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = ToString(v)
	}
	return strings.Join(parts, "\t")
}

package minilua

// Statements.

type stmt interface{ stmtNode() }

type localStmt struct {
	line  int
	names []string
	exprs []expr
}

type assignStmt struct {
	line    int
	targets []expr // nameExpr or indexExpr
	exprs   []expr
}

type ifStmt struct {
	line   int
	conds  []expr
	blocks [][]stmt
	els    []stmt
}

type whileStmt struct {
	line int
	cond expr
	body []stmt
}

type repeatStmt struct {
	line int
	body []stmt
	cond expr // loop exits when cond becomes true
}

type numForStmt struct {
	line                  int
	varName               string
	startE, limitE, stepE expr // stepE may be nil
	body                  []stmt
}

type genForStmt struct {
	line       int
	keyV, valV string
	iterable   expr
	body       []stmt
}

type funcStmt struct {
	line  int
	name  string
	local bool
	fn    *funcExpr
}

type returnStmt struct {
	line int
	e    expr // may be nil
}

type breakStmt struct{ line int }

type exprStmt struct {
	line int
	e    expr
}

func (*localStmt) stmtNode()  {}
func (*assignStmt) stmtNode() {}
func (*ifStmt) stmtNode()     {}
func (*whileStmt) stmtNode()  {}
func (*repeatStmt) stmtNode() {}
func (*numForStmt) stmtNode() {}
func (*genForStmt) stmtNode() {}
func (*funcStmt) stmtNode()   {}
func (*returnStmt) stmtNode() {}
func (*breakStmt) stmtNode()  {}
func (*exprStmt) stmtNode()   {}

// Expressions.

type expr interface{ exprNode() }

type nilExpr struct{}
type boolExpr struct{ v bool }
type numberExpr struct{ v float64 }
type stringExpr struct{ v string }
type nameExpr struct {
	line int
	name string
}
type binExpr struct {
	line int
	op   string
	l, r expr
}
type unExpr struct {
	line int
	op   string
	e    expr
}
type callExpr struct {
	line int
	fn   expr
	args []expr
}
type indexExpr struct {
	line int
	obj  expr
	key  expr
}
type tableExpr struct {
	line int
	// array part values, then keyed part
	arr  []expr
	keys []expr
	vals []expr
}
type funcExpr struct {
	line   int
	params []string
	body   []stmt
}

func (*nilExpr) exprNode()    {}
func (*boolExpr) exprNode()   {}
func (*numberExpr) exprNode() {}
func (*stringExpr) exprNode() {}
func (*nameExpr) exprNode()   {}
func (*binExpr) exprNode()    {}
func (*unExpr) exprNode()     {}
func (*callExpr) exprNode()   {}
func (*indexExpr) exprNode()  {}
func (*tableExpr) exprNode()  {}
func (*funcExpr) exprNode()   {}

package minilua

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string) (Value, *Interp) {
	t.Helper()
	in := NewInterp()
	v, err := in.RunSource(src)
	if err != nil {
		t.Fatalf("RunSource(%q): %v", src, err)
	}
	return v, in
}

func runErr(t *testing.T, src string) error {
	t.Helper()
	in := NewInterp()
	_, err := in.RunSource(src)
	if err == nil {
		t.Fatalf("RunSource(%q) succeeded, want error", src)
	}
	return err
}

func TestArithmetic(t *testing.T) {
	cases := map[string]float64{
		"return 1 + 2":            3,
		"return 10 - 4":           6,
		"return 3 * 7":            21,
		"return 10 / 4":           2.5,
		"return 10 % 3":           1,
		"return -(2 + 3)":         -5,
		"return 2 + 3 * 4":        14,
		"return (2 + 3) * 4":      20,
		"return 1 + 2 - 3 + 4":    4,
		"return 100 / 10 / 2":     5,
		"return 7 % 3 + 10 * 0.5": 6,
	}
	for src, want := range cases {
		v, _ := run(t, src)
		if got, ok := v.(float64); !ok || got != want {
			t.Errorf("%q = %v, want %v", src, v, want)
		}
	}
}

func TestComparisonAndLogic(t *testing.T) {
	cases := map[string]bool{
		"return 1 < 2":                  true,
		"return 2 <= 2":                 true,
		"return 3 > 4":                  false,
		"return 1 == 1":                 true,
		"return 1 ~= 1":                 false,
		`return "a" < "b"`:              true,
		`return "abc" == "abc"`:         true,
		"return true and false":         false,
		"return true or false":          true,
		"return not nil":                true,
		"return nil == nil":             true,
		"return 1 == \"1\"":             false,
		"return (1 < 2) and (3 < 4)":    true,
		"return false or nil == nil":    true,
		"return not (1 > 2) and 5 == 5": true,
	}
	for src, want := range cases {
		v, _ := run(t, src)
		if got, ok := v.(bool); !ok || got != want {
			t.Errorf("%q = %v, want %v", src, v, want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// `and` must not evaluate rhs when lhs is false.
	v, _ := run(t, `
		local called = false
		function boom() called = true return 1 end
		local r = false and boom()
		return called
	`)
	if v != false {
		t.Fatalf("and short-circuit broken: %v", v)
	}
	v, _ = run(t, `return 5 or error("never")`)
	if v != 5.0 {
		t.Fatalf("or short-circuit = %v", v)
	}
}

func TestStringsAndConcat(t *testing.T) {
	v, _ := run(t, `return "flame" .. "-" .. 2012`)
	if v != "flame-2012" {
		t.Fatalf("concat = %v", v)
	}
	v, _ = run(t, `return #"beetlejuice"`)
	if v != 11.0 {
		t.Fatalf("len = %v", v)
	}
	v, _ = run(t, `return "tab\tnl\n\"q\""`)
	if v != "tab\tnl\n\"q\"" {
		t.Fatalf("escapes = %q", v)
	}
}

func TestLocalsAndGlobalsScoping(t *testing.T) {
	v, _ := run(t, `
		x = 10            -- global
		local y = 20
		function bump() x = x + 1 end
		bump()
		bump()
		return x + y
	`)
	if v != 32.0 {
		t.Fatalf("got %v", v)
	}
	// Locals shadow globals.
	v, _ = run(t, `
		x = 1
		local x = 2
		return x
	`)
	if v != 2.0 {
		t.Fatalf("shadowing = %v", v)
	}
}

func TestIfElseChain(t *testing.T) {
	src := `
		function classify(n)
			if n < 10 then return "small"
			elseif n < 100 then return "medium"
			elseif n < 1000 then return "large"
			else return "huge" end
		end
		return classify(%s)
	`
	cases := map[string]string{"5": "small", "50": "medium", "500": "large", "5000": "huge"}
	for arg, want := range cases {
		v, _ := run(t, strings.Replace(src, "%s", arg, 1))
		if v != want {
			t.Errorf("classify(%s) = %v, want %s", arg, v, want)
		}
	}
}

func TestWhileAndBreak(t *testing.T) {
	v, _ := run(t, `
		local i = 0
		local sum = 0
		while true do
			i = i + 1
			if i > 10 then break end
			sum = sum + i
		end
		return sum
	`)
	if v != 55.0 {
		t.Fatalf("sum = %v", v)
	}
}

func TestRepeatUntil(t *testing.T) {
	v, _ := run(t, `
		local n = 0
		repeat n = n + 1 until n >= 5
		return n
	`)
	if v != 5.0 {
		t.Fatalf("repeat = %v", v)
	}
	// Body runs at least once even when the condition is already true.
	v, _ = run(t, `
		local n = 100
		repeat n = n + 1 until true
		return n
	`)
	if v != 101.0 {
		t.Fatalf("repeat-once = %v", v)
	}
	// The condition sees body locals (Lua scoping rule).
	v, _ = run(t, `
		local i = 0
		repeat
			i = i + 1
			local done = i > 3
		until done
		return i
	`)
	if v != 4.0 {
		t.Fatalf("repeat body-local cond = %v", v)
	}
	// break exits immediately.
	v, _ = run(t, `
		local n = 0
		repeat
			n = n + 1
			if n == 2 then break end
		until false
		return n
	`)
	if v != 2.0 {
		t.Fatalf("repeat break = %v", v)
	}
	// Fuel still bounds infinite repeats.
	in := NewInterp()
	in.SetFuel(500)
	if _, err := in.RunSource(`repeat until false`); !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("err = %v, want fuel exhaustion", err)
	}
	if err := runErr(t, `repeat n = 1`); err == nil {
		t.Fatal("unterminated repeat accepted")
	}
}

func TestNumericFor(t *testing.T) {
	v, _ := run(t, `
		local sum = 0
		for i = 1, 5 do sum = sum + i end
		return sum
	`)
	if v != 15.0 {
		t.Fatalf("sum = %v", v)
	}
	v, _ = run(t, `
		local n = 0
		for i = 10, 1, -2 do n = n + 1 end
		return n
	`)
	if v != 5.0 {
		t.Fatalf("downward for = %v", v)
	}
	if err := runErr(t, `for i = 1, 5, 0 do end`); err == nil {
		t.Fatal("zero step allowed")
	}
}

func TestGenericForDeterministicOrder(t *testing.T) {
	v, in := run(t, `
		local t = {z = 1, a = 2, m = 3}
		t[10] = "ten"
		t[2] = "two"
		for k, v in t do print(k) end
		return true
	`)
	_ = v
	// Numbers first ascending, then strings ascending.
	want := "2\n10\na\nm\nz\n"
	if in.Output() != want {
		t.Fatalf("iteration order = %q, want %q", in.Output(), want)
	}
}

func TestTablesConstructAndIndex(t *testing.T) {
	v, _ := run(t, `
		local t = {1, 2, 3, name = "euphoria", ["key space"] = 42}
		return t[1] + t[3] + t["key space"]
	`)
	if v != 46.0 {
		t.Fatalf("got %v", v)
	}
	v, _ = run(t, `
		local t = {}
		t.module = "flask"
		t.count = 0
		t.count = t.count + 7
		return t.module .. ":" .. t.count
	`)
	if v != "flask:7" {
		t.Fatalf("got %v", v)
	}
}

func TestNestedTables(t *testing.T) {
	v, _ := run(t, `
		local cfg = {net = {domains = {"a.com", "b.com"}}, depth = 2}
		return cfg.net.domains[2]
	`)
	if v != "b.com" {
		t.Fatalf("got %v", v)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	v, _ := run(t, `
		function fib(n)
			if n < 2 then return n end
			return fib(n - 1) + fib(n - 2)
		end
		return fib(15)
	`)
	if v != 610.0 {
		t.Fatalf("fib = %v", v)
	}
}

func TestClosuresCaptureEnvironment(t *testing.T) {
	v, _ := run(t, `
		function counter()
			local n = 0
			return function() n = n + 1 return n end
		end
		local c1 = counter()
		local c2 = counter()
		c1() c1() c1()
		c2()
		return c1() * 10 + c2()
	`)
	if v != 42.0 {
		t.Fatalf("closures = %v", v)
	}
}

func TestLocalFunction(t *testing.T) {
	v, _ := run(t, `
		local function double(x) return x * 2 end
		return double(21)
	`)
	if v != 42.0 {
		t.Fatalf("got %v", v)
	}
}

func TestMultipleAssignment(t *testing.T) {
	v, _ := run(t, `
		local a, b = 1, 2
		a, b = b, a
		return a * 10 + b
	`)
	if v != 21.0 {
		t.Fatalf("swap = %v", v)
	}
}

func TestStdlibStringOps(t *testing.T) {
	cases := map[string]Value{
		`return sub("beetlejuice", 1, 6)`:       "beetle",
		`return sub("abc", 2)`:                  "bc",
		`return sub("abc", -2)`:                 "bc",
		`return find("mssecmgr.ocx", ".ocx")`:   9.0,
		`return find("abc", "zz")`:              nil,
		`return upper("gadget")`:                "GADGET",
		`return lower("MUNCH")`:                 "munch",
		`return format("%s=%d", "drives", 3)`:   "drives=3",
		`return tostring(42)`:                   "42",
		`return tonumber("17.5")`:               17.5,
		`return tonumber("xyz")`:                nil,
		`return type({})`:                       "table",
		`return type("s")`:                      "string",
		`return type(nil)`:                      "nil",
		`return floor(3.9)`:                     3.0,
		`return max(1, 9, 4)`:                   9.0,
		`return min(5, 2, 8)`:                   2.0,
		`return concat({"a","b","c"}, "-")`:     "a-b-c",
		`return len({"x","y"})`:                 2.0,
		`return split("a,b,c", ",")[2]`:         "b",
		`local t = {} insert(t, 5) return t[1]`: 5.0,
	}
	for src, want := range cases {
		v, _ := run(t, src)
		if !valuesEqual(v, want) && !(v == nil && want == nil) {
			t.Errorf("%q = %v, want %v", src, v, want)
		}
	}
}

func TestStdlibRemove(t *testing.T) {
	v, _ := run(t, `
		local t = {"a", "b", "c"}
		local last = remove(t)
		return last .. ":" .. #t
	`)
	if v != "c:2" {
		t.Fatalf("remove = %v", v)
	}
}

func TestPrintOutput(t *testing.T) {
	_, in := run(t, `print("hello", 42, true, nil)`)
	if in.Output() != "hello\t42\ttrue\tnil\n" {
		t.Fatalf("output = %q", in.Output())
	}
	in.ResetOutput()
	if in.Output() != "" {
		t.Fatal("ResetOutput failed")
	}
}

func TestHostBindings(t *testing.T) {
	in := NewInterp()
	var captured []string
	in.Register("host_list_files", func(_ *Interp, args []Value) (Value, error) {
		return GoStringsToTable([]string{"a.docx", "b.pdf", "c.dwg"}), nil
	})
	in.Register("host_leak", func(_ *Interp, args []Value) (Value, error) {
		captured = append(captured, ToString(argAt(args, 0)))
		return true, nil
	})
	_, err := in.RunSource(`
		local files = host_list_files()
		for i = 1, #files do
			local f = files[i]
			if find(f, ".docx") or find(f, ".dwg") then
				host_leak(f)
			end
		end
	`)
	if err != nil {
		t.Fatalf("RunSource: %v", err)
	}
	if len(captured) != 2 || captured[0] != "a.docx" || captured[1] != "c.dwg" {
		t.Fatalf("captured = %v", captured)
	}
}

func TestFuelExhaustion(t *testing.T) {
	in := NewInterp()
	in.SetFuel(1000)
	_, err := in.RunSource(`while true do end`)
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("err = %v, want ErrFuelExhausted", err)
	}
}

func TestFuelSurvivesNormalRun(t *testing.T) {
	in := NewInterp()
	in.SetFuel(100000)
	if _, err := in.RunSource(`local s = 0 for i = 1, 100 do s = s + i end return s`); err != nil {
		t.Fatalf("err = %v", err)
	}
	if in.Fuel() <= 0 || in.Fuel() >= 100000 {
		t.Fatalf("fuel = %d", in.Fuel())
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		`return 1 + "x"`,
		`return {} .. "x"`,
		`local t = nil return t.x`,
		`local f = 5 return f()`,
		`return 1 / 0`,
		`return 1 % 0`,
		`return #5`,
		`return -"str"`,
		`local t = {} t[nil] = 1`,
		`error("module failure")`,
		`return 1 < "a"`,
	}
	for _, src := range cases {
		err := runErr(t, src)
		var rt *RuntimeError
		if !errors.As(err, &rt) {
			t.Errorf("%q: err = %T %v, want RuntimeError", src, err, err)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		`return 1 +`,
		`if x then`,
		`local = 5`,
		`function end`,
		`return "unterminated`,
		`x = {1, 2`,
		`while do end`,
		`for i = 1 do end`,
		`1 + 2`, // expression is not a statement
		`@`,
		`return "bad \q escape"`,
	}
	for _, src := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded", src)
			continue
		}
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Errorf("%q: err = %T, want SyntaxError", src, err)
		}
	}
}

func TestCommentsIgnored(t *testing.T) {
	v, _ := run(t, `
		-- module header comment
		local x = 1 -- trailing
		-- another
		return x
	`)
	if v != 1.0 {
		t.Fatalf("got %v", v)
	}
}

func TestCallFromGo(t *testing.T) {
	in := NewInterp()
	if _, err := in.RunSource(`function add(a, b) return a + b end`); err != nil {
		t.Fatalf("define: %v", err)
	}
	v, err := in.Call(in.Global("add"), 19.0, 23.0)
	if err != nil || v != 42.0 {
		t.Fatalf("Call = %v, %v", v, err)
	}
	if _, err := in.Call(nil); err == nil {
		t.Fatal("calling nil succeeded")
	}
}

func TestMissingArgsAreNil(t *testing.T) {
	v, _ := run(t, `
		function f(a, b) if b == nil then return "no-b" end return b end
		return f(1)
	`)
	if v != "no-b" {
		t.Fatalf("got %v", v)
	}
}

func TestDoBlockScoping(t *testing.T) {
	v, _ := run(t, `
		local x = 1
		do
			local x = 2
		end
		return x
	`)
	if v != 1.0 {
		t.Fatalf("got %v", v)
	}
}

func TestTableLenBorder(t *testing.T) {
	v, _ := run(t, `
		local t = {1, 2, 3}
		t[5] = 5 -- hole at 4
		return #t
	`)
	if v != 3.0 {
		t.Fatalf("border = %v", v)
	}
}

func TestInterpreterDeterminism(t *testing.T) {
	src := `
		local acc = {}
		local t = {b = 2, a = 1, c = 3}
		for k, v in t do insert(acc, k .. "=" .. v) end
		return concat(acc, ",")
	`
	first, _ := run(t, src)
	for i := 0; i < 5; i++ {
		again, _ := run(t, src)
		if again != first {
			t.Fatalf("non-deterministic: %v vs %v", first, again)
		}
	}
	if first != "a=1,b=2,c=3" {
		t.Fatalf("order = %v", first)
	}
}

func TestArithmeticPropertyAddCommutes(t *testing.T) {
	f := func(a, b int16) bool {
		in := NewInterp()
		src := "return " + ToString(float64(a)) + " + " + ToString(float64(b))
		v1, err1 := in.RunSource(src)
		src2 := "return " + ToString(float64(b)) + " + " + ToString(float64(a))
		v2, err2 := in.RunSource(src2)
		return err1 == nil && err2 == nil && valuesEqual(v1, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		// Restrict to printable subset without quotes/backslashes.
		clean := strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == ' ' {
				return r
			}
			return -1
		}, s)
		in := NewInterp()
		v, err := in.RunSource(`return "` + clean + `"`)
		return err == nil && v == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatRightAssociative(t *testing.T) {
	v, _ := run(t, `return 1 .. 2 .. 3`)
	if v != "123" {
		t.Fatalf("got %v", v)
	}
}

func TestBreakOutsideLoopError(t *testing.T) {
	// break at chunk level is a runtime control error.
	in := NewInterp()
	_, err := in.RunSource(`break`)
	if err == nil {
		t.Fatal("break at top level succeeded")
	}
}

package minilua

import (
	"fmt"
	"strconv"
	"strings"
)

func argErr(name string, n int, want string, got Value) error {
	return &RuntimeError{Msg: fmt.Sprintf("%s: argument %d: expected %s, got %s", name, n, want, TypeName(got))}
}

func argAt(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return nil
}

// installStdlib binds the standard library into the interpreter globals.
func installStdlib(in *Interp) {
	in.Register("print", func(in *Interp, args []Value) (Value, error) {
		in.output.WriteString(formatValues(args))
		in.output.WriteByte('\n')
		return nil, nil
	})
	in.Register("type", func(_ *Interp, args []Value) (Value, error) {
		return TypeName(argAt(args, 0)), nil
	})
	in.Register("tostring", func(_ *Interp, args []Value) (Value, error) {
		return ToString(argAt(args, 0)), nil
	})
	in.Register("tonumber", func(_ *Interp, args []Value) (Value, error) {
		switch v := argAt(args, 0).(type) {
		case float64:
			return v, nil
		case string:
			n, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return nil, nil
			}
			return n, nil
		default:
			return nil, nil
		}
	})
	in.Register("len", func(_ *Interp, args []Value) (Value, error) {
		switch v := argAt(args, 0).(type) {
		case string:
			return float64(len(v)), nil
		case *Table:
			return float64(v.Len()), nil
		default:
			return nil, argErr("len", 1, "string or table", v)
		}
	})
	in.Register("insert", func(_ *Interp, args []Value) (Value, error) {
		t, ok := argAt(args, 0).(*Table)
		if !ok {
			return nil, argErr("insert", 1, "table", argAt(args, 0))
		}
		t.Append(argAt(args, 1))
		return nil, nil
	})
	in.Register("remove", func(_ *Interp, args []Value) (Value, error) {
		t, ok := argAt(args, 0).(*Table)
		if !ok {
			return nil, argErr("remove", 1, "table", argAt(args, 0))
		}
		n := t.Len()
		if n == 0 {
			return nil, nil
		}
		last := t.Get(float64(n))
		t.Set(float64(n), nil)
		return last, nil
	})
	in.Register("keys", func(_ *Interp, args []Value) (Value, error) {
		t, ok := argAt(args, 0).(*Table)
		if !ok {
			return nil, argErr("keys", 1, "table", argAt(args, 0))
		}
		out := NewTable()
		for _, k := range t.SortedKeys() {
			out.Append(k)
		}
		return out, nil
	})
	in.Register("concat", func(_ *Interp, args []Value) (Value, error) {
		t, ok := argAt(args, 0).(*Table)
		if !ok {
			return nil, argErr("concat", 1, "table", argAt(args, 0))
		}
		sep := ""
		if s, ok := argAt(args, 1).(string); ok {
			sep = s
		}
		return strings.Join(TableToGoStrings(t), sep), nil
	})
	in.Register("sub", func(_ *Interp, args []Value) (Value, error) {
		s, ok := argAt(args, 0).(string)
		if !ok {
			return nil, argErr("sub", 1, "string", argAt(args, 0))
		}
		i, _ := argAt(args, 1).(float64)
		j := float64(len(s))
		if v, ok := argAt(args, 2).(float64); ok {
			j = v
		}
		start, end := int(i), int(j)
		if start < 0 {
			start = len(s) + start + 1
		}
		if end < 0 {
			end = len(s) + end + 1
		}
		if start < 1 {
			start = 1
		}
		if end > len(s) {
			end = len(s)
		}
		if start > end {
			return "", nil
		}
		return s[start-1 : end], nil
	})
	in.Register("find", func(_ *Interp, args []Value) (Value, error) {
		s, ok := argAt(args, 0).(string)
		if !ok {
			return nil, argErr("find", 1, "string", argAt(args, 0))
		}
		needle, ok := argAt(args, 1).(string)
		if !ok {
			return nil, argErr("find", 2, "string", argAt(args, 1))
		}
		idx := strings.Index(s, needle)
		if idx < 0 {
			return nil, nil
		}
		return float64(idx + 1), nil
	})
	in.Register("lower", func(_ *Interp, args []Value) (Value, error) {
		s, ok := argAt(args, 0).(string)
		if !ok {
			return nil, argErr("lower", 1, "string", argAt(args, 0))
		}
		return strings.ToLower(s), nil
	})
	in.Register("upper", func(_ *Interp, args []Value) (Value, error) {
		s, ok := argAt(args, 0).(string)
		if !ok {
			return nil, argErr("upper", 1, "string", argAt(args, 0))
		}
		return strings.ToUpper(s), nil
	})
	in.Register("split", func(_ *Interp, args []Value) (Value, error) {
		s, ok := argAt(args, 0).(string)
		if !ok {
			return nil, argErr("split", 1, "string", argAt(args, 0))
		}
		sep, ok := argAt(args, 1).(string)
		if !ok || sep == "" {
			return nil, argErr("split", 2, "non-empty string", argAt(args, 1))
		}
		return GoStringsToTable(strings.Split(s, sep)), nil
	})
	in.Register("format", func(_ *Interp, args []Value) (Value, error) {
		f, ok := argAt(args, 0).(string)
		if !ok {
			return nil, argErr("format", 1, "string", argAt(args, 0))
		}
		var out strings.Builder
		argi := 1
		for i := 0; i < len(f); i++ {
			if f[i] != '%' || i+1 == len(f) {
				out.WriteByte(f[i])
				continue
			}
			i++
			switch f[i] {
			case '%':
				out.WriteByte('%')
			case 's':
				out.WriteString(ToString(argAt(args, argi)))
				argi++
			case 'd':
				n, _ := argAt(args, argi).(float64)
				out.WriteString(strconv.FormatInt(int64(n), 10))
				argi++
			case 'f':
				n, _ := argAt(args, argi).(float64)
				out.WriteString(strconv.FormatFloat(n, 'f', 2, 64))
				argi++
			default:
				return nil, &RuntimeError{Msg: fmt.Sprintf("format: unsupported verb %%%c", f[i])}
			}
		}
		return out.String(), nil
	})
	in.Register("floor", func(_ *Interp, args []Value) (Value, error) {
		n, ok := argAt(args, 0).(float64)
		if !ok {
			return nil, argErr("floor", 1, "number", argAt(args, 0))
		}
		return float64(int64(n)), nil
	})
	in.Register("max", func(_ *Interp, args []Value) (Value, error) {
		best, ok := argAt(args, 0).(float64)
		if !ok {
			return nil, argErr("max", 1, "number", argAt(args, 0))
		}
		for i := 1; i < len(args); i++ {
			if n, ok := args[i].(float64); ok && n > best {
				best = n
			}
		}
		return best, nil
	})
	in.Register("min", func(_ *Interp, args []Value) (Value, error) {
		best, ok := argAt(args, 0).(float64)
		if !ok {
			return nil, argErr("min", 1, "number", argAt(args, 0))
		}
		for i := 1; i < len(args); i++ {
			if n, ok := args[i].(float64); ok && n < best {
				best = n
			}
		}
		return best, nil
	})
	in.Register("error", func(_ *Interp, args []Value) (Value, error) {
		return nil, &RuntimeError{Msg: ToString(argAt(args, 0))}
	})
}

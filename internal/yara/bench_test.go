package yara

import "testing"

var benchRules = MustCompile(`
rule A {
    strings:
        $a = "TrkSvr"
        $b = "netinit.exe"
        $h = { FF D8 FF ?? 00 }
    condition:
        $a and ($b or $h)
}
rule B {
    strings:
        $x = "mssecmgr" nocase
        $y = "wpad.dat"
    condition:
        all of them
}
rule C {
    strings:
        $r = "AB"
    condition:
        #r >= 3
}`)

func benchHaystack(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte('a' + i%23)
	}
	copy(data[n/2:], "TrkSvr service with netinit.exe nearby")
	return data
}

func BenchmarkScan64K(b *testing.B) {
	data := benchHaystack(64 << 10)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		benchRules.Scan(data)
	}
}

func BenchmarkScan1MB(b *testing.B) {
	data := benchHaystack(1 << 20)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		benchRules.Scan(data)
	}
}

func BenchmarkCompile(b *testing.B) {
	src := `
rule Bench {
    meta:
        family = "bench"
    strings:
        $a = "alpha"
        $b = { DE AD ?? EF }
    condition:
        $a and $b
}`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

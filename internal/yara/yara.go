// Package yara implements a YARA-like rule language and scanning engine —
// the signature side of the dissection toolchain. Rules are parsed from a
// textual form close to real YARA:
//
//	rule ShamoonDropper {
//	    meta:
//	        family = "shamoon"
//	        severity = "high"
//	    strings:
//	        $svc = "TrkSvr"
//	        $rep = "netinit.exe"
//	        $jpg = { FF D8 FF ?? 00 }
//	    condition:
//	        $svc and ($rep or $jpg) and 2 of them
//	}
//
// Supported string forms: quoted text (optionally `nocase`) and hex byte
// patterns with `??` wildcards. Supported conditions: $id references,
// and/or/not, parentheses, `N of them`, `any of them`, `all of them`, and
// count comparisons `#id OP n` (OP in == != < <= > >=).
package yara

import (
	"fmt"
	"sort"
)

// Pattern is one compiled string declaration.
type Pattern struct {
	ID     string // without the $
	Nocase bool
	// Text is set for quoted patterns.
	Text []byte
	// Hex is set for hex patterns; Mask[i]==false means wildcard byte.
	Hex  []byte
	Mask []bool
}

// IsHex reports whether the pattern is a hex pattern.
func (p *Pattern) IsHex() bool { return p.Mask != nil }

// Rule is one compiled rule.
type Rule struct {
	Name     string
	Meta     map[string]string
	Patterns []*Pattern
	cond     condNode
}

// Pattern returns the pattern with the given id, or nil.
func (r *Rule) Pattern(id string) *Pattern {
	for _, p := range r.Patterns {
		if p.ID == id {
			return p
		}
	}
	return nil
}

// RuleSet is a compiled collection of rules.
type RuleSet struct {
	Rules []*Rule
}

// RuleNames returns the rule names in declaration order.
func (rs *RuleSet) RuleNames() []string {
	out := make([]string, len(rs.Rules))
	for i, r := range rs.Rules {
		out[i] = r.Name
	}
	return out
}

// Match is one rule firing on scanned data.
type Match struct {
	Rule *Rule
	// Hits maps pattern id to match offsets (sorted ascending).
	Hits map[string][]int
}

// MatchedIDs returns the pattern ids that hit, sorted.
func (m *Match) MatchedIDs() []string {
	out := make([]string, 0, len(m.Hits))
	for id := range m.Hits {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// condition AST
type condNode interface{ condMark() }

type condRef struct{ id string }     // $id
type condNot struct{ e condNode }    // not e
type condAnd struct{ l, r condNode } // l and r
type condOr struct{ l, r condNode }  // l or r
type condOfThem struct {
	n   int  // N of them
	all bool // all of them
	any bool // any of them
}
type condCount struct { // #id OP n
	id string
	op string
	n  int
}

func (*condRef) condMark()    {}
func (*condNot) condMark()    {}
func (*condAnd) condMark()    {}
func (*condOr) condMark()     {}
func (*condOfThem) condMark() {}
func (*condCount) condMark()  {}

// evalCond evaluates the condition against hit counts.
func evalCond(n condNode, hits map[string][]int, total int) (bool, error) {
	switch c := n.(type) {
	case *condRef:
		return len(hits[c.id]) > 0, nil
	case *condNot:
		v, err := evalCond(c.e, hits, total)
		return !v, err
	case *condAnd:
		l, err := evalCond(c.l, hits, total)
		if err != nil {
			return false, err
		}
		if !l {
			return false, nil
		}
		return evalCond(c.r, hits, total)
	case *condOr:
		l, err := evalCond(c.l, hits, total)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return evalCond(c.r, hits, total)
	case *condOfThem:
		matched := 0
		for _, offs := range hits {
			if len(offs) > 0 {
				matched++
			}
		}
		switch {
		case c.all:
			return matched == total, nil
		case c.any:
			return matched >= 1, nil
		default:
			return matched >= c.n, nil
		}
	case *condCount:
		count := len(hits[c.id])
		switch c.op {
		case "==":
			return count == c.n, nil
		case "!=":
			return count != c.n, nil
		case "<":
			return count < c.n, nil
		case "<=":
			return count <= c.n, nil
		case ">":
			return count > c.n, nil
		case ">=":
			return count >= c.n, nil
		default:
			return false, fmt.Errorf("yara: unknown count operator %q", c.op)
		}
	default:
		return false, fmt.Errorf("yara: unknown condition node %T", n)
	}
}

package yara

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports a rule-compilation failure.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("yara: line %d: %s", e.Line, e.Msg)
}

// Compile parses rule source text into a RuleSet.
func Compile(src string) (*RuleSet, error) {
	toks, err := yLex(src)
	if err != nil {
		return nil, err
	}
	p := &yParser{toks: toks}
	rs := &RuleSet{}
	seen := map[string]bool{}
	for p.cur().kind != yEOF {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, &ParseError{Line: 0, Msg: "duplicate rule " + r.Name}
		}
		seen[r.Name] = true
		rs.Rules = append(rs.Rules, r)
	}
	if len(rs.Rules) == 0 {
		return nil, &ParseError{Line: 0, Msg: "no rules in source"}
	}
	return rs, nil
}

// MustCompile is Compile for trusted built-in rules; it panics on error.
func MustCompile(src string) *RuleSet {
	rs, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return rs
}

type yTokKind int

const (
	yEOF yTokKind = iota
	yIdent
	yVar   // $name
	yCount // #name
	yNum
	yString
	yPunct // { } ( ) : = and keywords resolved as idents
)

type yTok struct {
	kind yTokKind
	text string
	num  int
	line int
}

func yLex(src string) ([]yTok, error) {
	var toks []yTok
	line := 1
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '$' || c == '#':
			kind := yVar
			if c == '#' {
				kind = yCount
			}
			i++
			start := i
			for i < n && isWordChar(src[i]) {
				i++
			}
			if i == start {
				return nil, &ParseError{Line: line, Msg: "empty identifier after " + string(c)}
			}
			toks = append(toks, yTok{kind: kind, text: src[start:i], line: line})
		case isWordChar(c):
			start := i
			for i < n && isWordChar(src[i]) {
				i++
			}
			text := src[start:i]
			if num, err := strconv.Atoi(text); err == nil {
				toks = append(toks, yTok{kind: yNum, text: text, num: num, line: line})
			} else {
				toks = append(toks, yTok{kind: yIdent, text: text, line: line})
			}
		case c == '"':
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if src[i] == '"' {
					closed = true
					i++
					break
				}
				if src[i] == '\n' {
					return nil, &ParseError{Line: line, Msg: "unterminated string"}
				}
				if src[i] == '\\' && i+1 < n {
					i++
					switch src[i] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '\\':
						b.WriteByte('\\')
					case '"':
						b.WriteByte('"')
					case 'x':
						if i+2 >= n {
							return nil, &ParseError{Line: line, Msg: "truncated \\x escape"}
						}
						v, err := strconv.ParseUint(src[i+1:i+3], 16, 8)
						if err != nil {
							return nil, &ParseError{Line: line, Msg: "bad \\x escape"}
						}
						b.WriteByte(byte(v))
						i += 2
					default:
						return nil, &ParseError{Line: line, Msg: fmt.Sprintf("bad escape \\%c", src[i])}
					}
					i++
					continue
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, &ParseError{Line: line, Msg: "unterminated string"}
			}
			toks = append(toks, yTok{kind: yString, text: b.String(), line: line})
		default:
			switch c {
			case '?':
				if i+1 < n && src[i+1] == '?' {
					toks = append(toks, yTok{kind: yPunct, text: "??", line: line})
					i += 2
					continue
				}
				return nil, &ParseError{Line: line, Msg: "single '?' (wildcards are '??')"}
			case '{', '}', '(', ')', ':', '=', '<', '>', '!':
				// Two-char comparison operators.
				if (c == '<' || c == '>' || c == '=' || c == '!') && i+1 < n && src[i+1] == '=' {
					toks = append(toks, yTok{kind: yPunct, text: src[i : i+2], line: line})
					i += 2
					continue
				}
				toks = append(toks, yTok{kind: yPunct, text: string(c), line: line})
				i++
			default:
				return nil, &ParseError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, yTok{kind: yEOF, line: line})
	return toks, nil
}

func isWordChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

type yParser struct {
	toks []yTok
	pos  int
}

func (p *yParser) cur() yTok  { return p.toks[p.pos] }
func (p *yParser) next() yTok { t := p.toks[p.pos]; p.pos++; return t }

func (p *yParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

func (p *yParser) expectPunct(s string) error {
	if p.cur().kind == yPunct && p.cur().text == s {
		p.pos++
		return nil
	}
	return p.errf("expected %q, found %q", s, p.cur().text)
}

func (p *yParser) expectIdent(s string) error {
	if p.cur().kind == yIdent && p.cur().text == s {
		p.pos++
		return nil
	}
	return p.errf("expected %q, found %q", s, p.cur().text)
}

func (p *yParser) acceptIdent(s string) bool {
	if p.cur().kind == yIdent && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *yParser) rule() (*Rule, error) {
	if err := p.expectIdent("rule"); err != nil {
		return nil, err
	}
	if p.cur().kind != yIdent {
		return nil, p.errf("expected rule name")
	}
	r := &Rule{Name: p.next().text, Meta: map[string]string{}}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	if p.acceptIdent("meta") {
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		for p.cur().kind == yIdent && p.cur().text != "strings" && p.cur().text != "condition" {
			key := p.next().text
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			switch p.cur().kind {
			case yString, yNum, yIdent:
				r.Meta[key] = p.next().text
			default:
				return nil, p.errf("bad meta value for %s", key)
			}
		}
	}
	if p.acceptIdent("strings") {
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		for p.cur().kind == yVar {
			pat, err := p.patternDecl()
			if err != nil {
				return nil, err
			}
			if r.Pattern(pat.ID) != nil {
				return nil, p.errf("duplicate string $%s", pat.ID)
			}
			r.Patterns = append(r.Patterns, pat)
		}
	}
	if err := p.expectIdent("condition"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	cond, err := p.condOr()
	if err != nil {
		return nil, err
	}
	r.cond = cond
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	// Validate references.
	if err := validateRefs(r, cond); err != nil {
		return nil, err
	}
	return r, nil
}

func validateRefs(r *Rule, n condNode) error {
	switch c := n.(type) {
	case *condRef:
		if r.Pattern(c.id) == nil {
			return &ParseError{Msg: fmt.Sprintf("rule %s: undefined string $%s", r.Name, c.id)}
		}
	case *condCount:
		if r.Pattern(c.id) == nil {
			return &ParseError{Msg: fmt.Sprintf("rule %s: undefined string #%s", r.Name, c.id)}
		}
	case *condNot:
		return validateRefs(r, c.e)
	case *condAnd:
		if err := validateRefs(r, c.l); err != nil {
			return err
		}
		return validateRefs(r, c.r)
	case *condOr:
		if err := validateRefs(r, c.l); err != nil {
			return err
		}
		return validateRefs(r, c.r)
	case *condOfThem:
		if len(r.Patterns) == 0 {
			return &ParseError{Msg: fmt.Sprintf("rule %s: 'of them' with no strings", r.Name)}
		}
	}
	return nil
}

func (p *yParser) patternDecl() (*Pattern, error) {
	id := p.next().text // yVar checked by caller
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	switch p.cur().kind {
	case yString:
		pat := &Pattern{ID: id, Text: []byte(p.next().text)}
		if p.acceptIdent("nocase") {
			pat.Nocase = true
		}
		if len(pat.Text) == 0 {
			return nil, p.errf("empty string pattern $%s", id)
		}
		return pat, nil
	case yPunct:
		if p.cur().text != "{" {
			return nil, p.errf("expected string or hex pattern for $%s", id)
		}
		p.pos++
		pat := &Pattern{ID: id}
		for {
			t := p.cur()
			if t.kind == yPunct && t.text == "}" {
				p.pos++
				break
			}
			switch {
			case t.kind == yPunct && t.text == "??":
				p.pos++
				pat.Hex = append(pat.Hex, 0)
				pat.Mask = append(pat.Mask, false)
			case t.kind == yIdent || t.kind == yNum:
				// Hex byte tokens lex as idents (e.g. "FF", "D8") or
				// numbers (e.g. "00", "90"); wildcard "??" is not
				// lexable as ident, handle below.
				text := t.text
				p.pos++
				for len(text) >= 2 {
					b, err := strconv.ParseUint(text[:2], 16, 8)
					if err != nil {
						return nil, p.errf("bad hex byte %q in $%s", text[:2], id)
					}
					pat.Hex = append(pat.Hex, byte(b))
					pat.Mask = append(pat.Mask, true)
					text = text[2:]
				}
				if len(text) != 0 {
					return nil, p.errf("odd-length hex run in $%s", id)
				}
			default:
				return nil, p.errf("unexpected token %q in hex pattern $%s", t.text, id)
			}
		}
		if len(pat.Hex) == 0 {
			return nil, p.errf("empty hex pattern $%s", id)
		}
		return pat, nil
	default:
		return nil, p.errf("expected string or hex pattern for $%s", id)
	}
}

func (p *yParser) condOr() (condNode, error) {
	l, err := p.condAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("or") {
		r, err := p.condAnd()
		if err != nil {
			return nil, err
		}
		l = &condOr{l: l, r: r}
	}
	return l, nil
}

func (p *yParser) condAnd() (condNode, error) {
	l, err := p.condUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("and") {
		r, err := p.condUnary()
		if err != nil {
			return nil, err
		}
		l = &condAnd{l: l, r: r}
	}
	return l, nil
}

func (p *yParser) condUnary() (condNode, error) {
	if p.acceptIdent("not") {
		e, err := p.condUnary()
		if err != nil {
			return nil, err
		}
		return &condNot{e: e}, nil
	}
	return p.condAtom()
}

func (p *yParser) condAtom() (condNode, error) {
	t := p.cur()
	switch {
	case t.kind == yPunct && t.text == "(":
		p.pos++
		e, err := p.condOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == yVar:
		p.pos++
		return &condRef{id: t.text}, nil
	case t.kind == yCount:
		p.pos++
		op := p.cur()
		if op.kind != yPunct {
			return nil, p.errf("expected comparison after #%s", t.text)
		}
		switch op.text {
		case "==", "!=", "<", "<=", ">", ">=":
		case "=":
			op.text = "=="
		default:
			return nil, p.errf("bad comparison %q after #%s", op.text, t.text)
		}
		p.pos++
		if p.cur().kind != yNum {
			return nil, p.errf("expected number after #%s %s", t.text, op.text)
		}
		n := p.next().num
		return &condCount{id: t.text, op: op.text, n: n}, nil
	case t.kind == yNum:
		p.pos++
		if err := p.expectIdent("of"); err != nil {
			return nil, err
		}
		if err := p.expectIdent("them"); err != nil {
			return nil, err
		}
		return &condOfThem{n: t.num}, nil
	case t.kind == yIdent && (t.text == "any" || t.text == "all"):
		p.pos++
		if err := p.expectIdent("of"); err != nil {
			return nil, err
		}
		if err := p.expectIdent("them"); err != nil {
			return nil, err
		}
		return &condOfThem{any: t.text == "any", all: t.text == "all"}, nil
	default:
		return nil, p.errf("unexpected %q in condition", t.text)
	}
}

package yara

// Scan evaluates every rule against data and returns the matches, in rule
// declaration order. A nil rule set matches nothing.
func (rs *RuleSet) Scan(data []byte) []Match {
	if rs == nil {
		return nil
	}
	var out []Match
	for _, r := range rs.Rules {
		if m, ok := r.Eval(data); ok {
			out = append(out, m)
		}
	}
	return out
}

// ScanNames is Scan returning only the matching rule names.
func (rs *RuleSet) ScanNames(data []byte) []string {
	var out []string
	for _, m := range rs.Scan(data) {
		out = append(out, m.Rule.Name)
	}
	return out
}

// Eval evaluates one rule against data.
func (r *Rule) Eval(data []byte) (Match, bool) {
	hits := make(map[string][]int, len(r.Patterns))
	for _, p := range r.Patterns {
		if offs := p.FindAll(data); len(offs) > 0 {
			hits[p.ID] = offs
		}
	}
	ok, err := evalCond(r.cond, hits, len(r.Patterns))
	if err != nil || !ok {
		return Match{}, false
	}
	return Match{Rule: r, Hits: hits}, true
}

// FindAll returns all match offsets of the pattern in data (including
// overlapping matches), ascending.
func (p *Pattern) FindAll(data []byte) []int {
	var out []int
	switch {
	case p.IsHex():
		n := len(p.Hex)
		for i := 0; i+n <= len(data); i++ {
			if hexMatchAt(data, i, p.Hex, p.Mask) {
				out = append(out, i)
			}
		}
	case p.Nocase:
		n := len(p.Text)
		for i := 0; i+n <= len(data); i++ {
			if foldMatchAt(data, i, p.Text) {
				out = append(out, i)
			}
		}
	default:
		n := len(p.Text)
		for i := 0; i+n <= len(data); i++ {
			if matchAt(data, i, p.Text) {
				out = append(out, i)
			}
		}
	}
	return out
}

func matchAt(data []byte, off int, pat []byte) bool {
	for j, b := range pat {
		if data[off+j] != b {
			return false
		}
	}
	return true
}

func foldMatchAt(data []byte, off int, pat []byte) bool {
	for j, b := range pat {
		if toLower(data[off+j]) != toLower(b) {
			return false
		}
	}
	return true
}

func hexMatchAt(data []byte, off int, hex []byte, mask []bool) bool {
	for j := range hex {
		if mask[j] && data[off+j] != hex[j] {
			return false
		}
	}
	return true
}

func toLower(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + 32
	}
	return b
}

package yara

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

const shamoonRule = `
// dissection signature for the Shamoon dropper
rule ShamoonDropper {
    meta:
        family = "shamoon"
        severity = "high"
    strings:
        $svc = "TrkSvr"
        $rep = "netinit.exe"
        $jpg = { FF D8 FF ?? 00 }
    condition:
        $svc and ($rep or $jpg)
}
`

func TestCompileAndScanBasic(t *testing.T) {
	rs, err := Compile(shamoonRule)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(rs.Rules) != 1 || rs.Rules[0].Name != "ShamoonDropper" {
		t.Fatalf("rules = %v", rs.RuleNames())
	}
	r := rs.Rules[0]
	if r.Meta["family"] != "shamoon" || r.Meta["severity"] != "high" {
		t.Fatalf("meta = %v", r.Meta)
	}

	data := []byte("...TrkSvr service...netinit.exe reporter...")
	matches := rs.Scan(data)
	if len(matches) != 1 {
		t.Fatalf("matches = %d", len(matches))
	}
	got := matches[0].MatchedIDs()
	if len(got) != 2 || got[0] != "rep" || got[1] != "svc" {
		t.Fatalf("matched ids = %v", got)
	}

	if ms := rs.Scan([]byte("TrkSvr only, no second indicator")); len(ms) != 0 {
		t.Fatalf("partial indicators matched: %v", ms)
	}
	if ms := rs.Scan([]byte("netinit.exe without service name")); len(ms) != 0 {
		t.Fatalf("condition ignored: %v", ms)
	}
}

func TestHexPatternWithWildcards(t *testing.T) {
	rs := MustCompile(`
rule JpegHeader {
    strings:
        $h = { FF D8 FF ?? 00 }
    condition:
        $h
}`)
	match := []byte{0x00, 0xFF, 0xD8, 0xFF, 0xE0, 0x00, 0x10}
	if len(rs.Scan(match)) != 1 {
		t.Fatal("wildcard hex did not match")
	}
	// Wildcard position can be anything...
	match[4] = 0x77
	if len(rs.Scan(match)) != 1 {
		t.Fatal("wildcard byte constrained")
	}
	// ...but fixed positions cannot.
	match[5] = 0x01
	if len(rs.Scan(match)) != 0 {
		t.Fatal("fixed byte ignored")
	}
}

func TestHexRunsAndMultiByteTokens(t *testing.T) {
	rs := MustCompile(`
rule Run {
    strings:
        $h = { DEAD BEEF }
    condition:
        $h
}`)
	if len(rs.Scan([]byte{0xDE, 0xAD, 0xBE, 0xEF})) != 1 {
		t.Fatal("multi-byte hex run failed")
	}
}

func TestNocase(t *testing.T) {
	rs := MustCompile(`
rule Nocase {
    strings:
        $a = "MsSecMgr" nocase
    condition:
        $a
}`)
	if len(rs.Scan([]byte("...MSSECMGR.OCX..."))) != 1 {
		t.Fatal("nocase failed upper")
	}
	if len(rs.Scan([]byte("...mssecmgr.ocx..."))) != 1 {
		t.Fatal("nocase failed lower")
	}
}

func TestOfThemConditions(t *testing.T) {
	src := `
rule TwoOfThem {
    strings:
        $a = "alpha"
        $b = "bravo"
        $c = "charlie"
    condition:
        2 of them
}
rule AnyOfThem {
    strings:
        $a = "alpha"
        $b = "bravo"
    condition:
        any of them
}
rule AllOfThem {
    strings:
        $a = "alpha"
        $b = "bravo"
    condition:
        all of them
}`
	rs := MustCompile(src)
	names := rs.ScanNames([]byte("alpha bravo"))
	if len(names) != 3 {
		t.Fatalf("alpha+bravo matched %v", names)
	}
	names = rs.ScanNames([]byte("alpha only"))
	if len(names) != 1 || names[0] != "AnyOfThem" {
		t.Fatalf("alpha-only matched %v", names)
	}
	names = rs.ScanNames([]byte("charlie alpha"))
	if len(names) != 2 {
		t.Fatalf("charlie+alpha matched %v", names)
	}
}

func TestCountConditions(t *testing.T) {
	rs := MustCompile(`
rule Repeats {
    strings:
        $x = "AB"
    condition:
        #x >= 3
}`)
	if len(rs.Scan([]byte("AB AB AB"))) != 1 {
		t.Fatal("three occurrences not counted")
	}
	if len(rs.Scan([]byte("AB AB"))) != 0 {
		t.Fatal("two occurrences matched >= 3")
	}
	// Overlapping matches count.
	rs2 := MustCompile(`
rule Overlap {
    strings:
        $x = "AA"
    condition:
        #x == 3
}`)
	if len(rs2.Scan([]byte("AAAA"))) != 1 {
		t.Fatal("overlapping occurrences not counted (AAAA has 3 AA)")
	}
}

func TestNotAndParens(t *testing.T) {
	rs := MustCompile(`
rule CleanTool {
    strings:
        $tool = "diskutil"
        $bad = "wiper"
    condition:
        $tool and not $bad
}`)
	if len(rs.Scan([]byte("diskutil v1"))) != 1 {
		t.Fatal("clean sample not matched")
	}
	if len(rs.Scan([]byte("diskutil wiper"))) != 0 {
		t.Fatal("bad sample matched")
	}
}

func TestOrPrecedence(t *testing.T) {
	// and binds tighter than or: $a or $b and $c == $a or ($b and $c)
	rs := MustCompile(`
rule Prec {
    strings:
        $a = "aa"
        $b = "bb"
        $c = "cc"
    condition:
        $a or $b and $c
}`)
	if len(rs.Scan([]byte("aa"))) != 1 {
		t.Fatal("$a alone should match")
	}
	if len(rs.Scan([]byte("bb"))) != 0 {
		t.Fatal("$b alone should not match")
	}
	if len(rs.Scan([]byte("bb cc"))) != 1 {
		t.Fatal("$b and $c should match")
	}
}

func TestMultipleRulesOrder(t *testing.T) {
	rs := MustCompile(`
rule First { strings: $a = "x" condition: $a }
rule Second { strings: $a = "x" condition: $a }
`)
	names := rs.ScanNames([]byte("x"))
	if len(names) != 2 || names[0] != "First" || names[1] != "Second" {
		t.Fatalf("names = %v", names)
	}
}

func TestHitOffsets(t *testing.T) {
	rs := MustCompile(`rule R { strings: $a = "ab" condition: $a }`)
	m, ok := rs.Rules[0].Eval([]byte("ab..ab"))
	if !ok {
		t.Fatal("no match")
	}
	offs := m.Hits["a"]
	if len(offs) != 2 || offs[0] != 0 || offs[1] != 4 {
		t.Fatalf("offsets = %v", offs)
	}
}

func TestEscapesInStrings(t *testing.T) {
	rs := MustCompile(`rule R { strings: $a = "a\x00b\n" condition: $a }`)
	if len(rs.Scan([]byte{'a', 0, 'b', '\n'})) != 1 {
		t.Fatal("escaped pattern failed")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		``,                             // no rules
		`rule {}`,                      // missing name
		`rule R { condition: $ghost }`, // undefined ref
		`rule R { strings: $a = "x" condition: }`,                                               // empty condition
		`rule R { strings: $a = "" condition: $a }`,                                             // empty pattern
		`rule R { strings: $a = { } condition: $a }`,                                            // empty hex
		`rule R { strings: $a = { GG } condition: $a }`,                                         // bad hex
		`rule R { strings: $a = { F } condition: $a }`,                                          // odd hex
		`rule R { strings: $a = "x" $a = "y" condition: $a }`,                                   // dup string
		`rule R { condition: 2 of them }`,                                                       // of-them without strings
		`rule R { strings: $a = "x" condition: #a >< 1 }`,                                       // bad op
		`rule R { strings: $a = "x" condition: $a } rule R { strings: $b = "y" condition: $b }`, // dup rule
		`rule R { strings: $a = "unterminated condition: $a }`,
		`rule R { strings: $a = "x" condition: $a`, // missing brace
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile accepted %q", src)
		} else {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("%q: err = %T, want ParseError", src, err)
			}
		}
	}
}

func TestNilRuleSetScansNothing(t *testing.T) {
	var rs *RuleSet
	if got := rs.Scan([]byte("anything")); got != nil {
		t.Fatalf("nil rule set matched: %v", got)
	}
	if got := rs.ScanNames([]byte("anything")); got != nil {
		t.Fatalf("nil rule set names: %v", got)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile("not a rule")
}

func TestCommentsSkipped(t *testing.T) {
	rs := MustCompile(`
// leading comment
rule R { // inline
    strings:
        $a = "x" // trailing
    condition:
        $a
}`)
	if len(rs.Scan([]byte("x"))) != 1 {
		t.Fatal("comments broke parsing")
	}
}

func TestFindAllProperty(t *testing.T) {
	// Every reported offset must actually contain the pattern.
	f := func(hay []byte, needle []byte) bool {
		if len(needle) == 0 || len(needle) > 4 {
			return true
		}
		p := &Pattern{ID: "x", Text: needle}
		for _, off := range p.FindAll(hay) {
			if !bytes.Equal(hay[off:off+len(needle)], needle) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFindAllCountsNonOverlapBaseline(t *testing.T) {
	p := &Pattern{ID: "x", Text: []byte("ab")}
	hay := []byte(strings.Repeat("ab", 10))
	if got := len(p.FindAll(hay)); got != 10 {
		t.Fatalf("FindAll = %d, want 10", got)
	}
}

func TestPatternOnImageBoundary(t *testing.T) {
	p := &Pattern{ID: "x", Text: []byte("end")}
	if got := p.FindAll([]byte("the end")); len(got) != 1 || got[0] != 4 {
		t.Fatalf("boundary match = %v", got)
	}
	if got := p.FindAll([]byte("en")); got != nil {
		t.Fatalf("short haystack matched: %v", got)
	}
}

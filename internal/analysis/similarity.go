package analysis

import (
	"fmt"
	"strings"

	"repro/internal/pe"
)

// shingleLen is the n-gram window for code-similarity analysis. Eight
// bytes is long enough that shared shingles mean shared code, short enough
// to survive relinking offsets in our synthetic images.
const shingleLen = 8

// ShingleSet is the hashed n-gram fingerprint of one sample's code.
type ShingleSet struct {
	Name string
	set  map[uint64]struct{}
}

// Fingerprint builds the shingle set of an image's section contents.
func Fingerprint(img *pe.File) *ShingleSet {
	s := &ShingleSet{Name: img.Name, set: make(map[uint64]struct{})}
	for _, sec := range img.Sections {
		s.addData(sec.Data)
	}
	return s
}

// FingerprintData builds a shingle set over raw bytes.
func FingerprintData(name string, data []byte) *ShingleSet {
	s := &ShingleSet{Name: name, set: make(map[uint64]struct{})}
	s.addData(data)
	return s
}

func (s *ShingleSet) addData(data []byte) {
	if len(data) < shingleLen {
		return
	}
	// Rolling FNV-1a over fixed windows.
	for i := 0; i+shingleLen <= len(data); i++ {
		var h uint64 = 14695981039346656037
		for j := 0; j < shingleLen; j++ {
			h ^= uint64(data[i+j])
			h *= 1099511628211
		}
		s.set[h] = struct{}{}
	}
}

// Size returns the number of distinct shingles.
func (s *ShingleSet) Size() int { return len(s.set) }

// Jaccard returns |A∩B| / |A∪B| for two fingerprints.
func Jaccard(a, b *ShingleSet) float64 {
	if len(a.set) == 0 || len(b.set) == 0 {
		return 0
	}
	small, large := a.set, b.set
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for h := range small {
		if _, ok := large[h]; ok {
			inter++
		}
	}
	union := len(a.set) + len(b.set) - inter
	return float64(inter) / float64(union)
}

// SimilarityMatrix holds pairwise Jaccard similarities between samples.
type SimilarityMatrix struct {
	Names []string
	Sim   [][]float64
}

// CompareSamples fingerprints every image and computes the full matrix.
func CompareSamples(imgs ...*pe.File) *SimilarityMatrix {
	sets := make([]*ShingleSet, len(imgs))
	m := &SimilarityMatrix{
		Names: make([]string, len(imgs)),
		Sim:   make([][]float64, len(imgs)),
	}
	for i, img := range imgs {
		sets[i] = Fingerprint(img)
		m.Names[i] = img.Name
		m.Sim[i] = make([]float64, len(imgs))
	}
	for i := range sets {
		m.Sim[i][i] = 1
		for j := i + 1; j < len(sets); j++ {
			v := Jaccard(sets[i], sets[j])
			m.Sim[i][j] = v
			m.Sim[j][i] = v
		}
	}
	return m
}

// Of returns the similarity between two named samples.
func (m *SimilarityMatrix) Of(a, b string) float64 {
	ai, bi := -1, -1
	for i, n := range m.Names {
		if n == a {
			ai = i
		}
		if n == b {
			bi = i
		}
	}
	if ai < 0 || bi < 0 {
		return 0
	}
	return m.Sim[ai][bi]
}

// Render prints the matrix as a table.
func (m *SimilarityMatrix) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "sample")
	for _, n := range m.Names {
		fmt.Fprintf(&b, " %14s", truncName(n))
	}
	b.WriteByte('\n')
	for i, n := range m.Names {
		fmt.Fprintf(&b, "%-16s", truncName(n))
		for j := range m.Names {
			fmt.Fprintf(&b, " %14.3f", m.Sim[i][j])
		}
		b.WriteByte('\n')
		_ = n
	}
	return b.String()
}

func truncName(n string) string {
	if len(n) > 14 {
		return n[:14]
	}
	return n
}

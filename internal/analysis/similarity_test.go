package analysis

import (
	"strings"
	"testing"

	"repro/internal/malware/platform"
	"repro/internal/pe"
	"repro/internal/sim"
)

func TestJaccardIdentityAndDisjoint(t *testing.T) {
	a := FingerprintData("a", []byte("the quick brown fox jumps over the lazy dog"))
	if got := Jaccard(a, a); got != 1 {
		t.Fatalf("self similarity = %v", got)
	}
	b := FingerprintData("b", []byte("0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ!!!!"))
	if got := Jaccard(a, b); got != 0 {
		t.Fatalf("disjoint similarity = %v", got)
	}
	empty := FingerprintData("e", []byte("short"))
	if got := Jaccard(a, empty); got != 0 {
		t.Fatalf("empty similarity = %v", got)
	}
}

func TestJaccardSharedBlock(t *testing.T) {
	k := sim.NewKernel(sim.WithSeed(1))
	shared := platform.Block(platform.Tilded, 32*1024)
	a := append(append([]byte(nil), shared...), k.RNG().Bytes(32*1024)...)
	b := append(append([]byte(nil), shared...), k.RNG().Bytes(32*1024)...)
	c := k.RNG().Bytes(64 * 1024)

	ab := Jaccard(FingerprintData("a", a), FingerprintData("b", b))
	ac := Jaccard(FingerprintData("a", a), FingerprintData("c", c))
	if ab < 0.2 {
		t.Fatalf("shared-block similarity = %v, want substantial", ab)
	}
	if ac > 0.01 {
		t.Fatalf("unrelated similarity = %v, want ~0", ac)
	}
	if ab <= ac {
		t.Fatal("shared block did not dominate")
	}
}

func TestCompareSamplesMatrix(t *testing.T) {
	mk := func(name string, data []byte) *pe.File {
		return &pe.File{Name: name, Machine: pe.MachineX86, Timestamp: sim.Epoch,
			Sections: []pe.Section{{Name: ".text", Data: data}}}
	}
	k := sim.NewKernel(sim.WithSeed(2))
	shared := platform.Block(platform.Flamer, 16*1024)
	m := CompareSamples(
		mk("x.exe", append(append([]byte(nil), shared...), k.RNG().Bytes(8*1024)...)),
		mk("y.exe", append(append([]byte(nil), shared...), k.RNG().Bytes(8*1024)...)),
		mk("z.exe", k.RNG().Bytes(24*1024)),
	)
	if m.Of("x.exe", "x.exe") != 1 {
		t.Fatal("diagonal not 1")
	}
	if m.Of("x.exe", "y.exe") != m.Of("y.exe", "x.exe") {
		t.Fatal("matrix not symmetric")
	}
	if m.Of("x.exe", "y.exe") <= m.Of("x.exe", "z.exe") {
		t.Fatalf("lineage not recovered: xy=%v xz=%v", m.Of("x.exe", "y.exe"), m.Of("x.exe", "z.exe"))
	}
	if m.Of("x.exe", "ghost.exe") != 0 {
		t.Fatal("unknown name should be 0")
	}
	out := m.Render()
	if !strings.Contains(out, "x.exe") || !strings.Contains(out, "1.000") {
		t.Fatalf("render = %s", out)
	}
}

func TestFingerprintOverSections(t *testing.T) {
	img := &pe.File{Name: "multi.exe", Machine: pe.MachineX86, Timestamp: sim.Epoch,
		Sections: []pe.Section{
			{Name: ".text", Data: []byte("section one content here")},
			{Name: ".data", Data: []byte("section two content here")},
		}}
	fp := Fingerprint(img)
	if fp.Size() == 0 || fp.Name != "multi.exe" {
		t.Fatalf("fingerprint = %+v", fp)
	}
}

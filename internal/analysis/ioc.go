package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// IOCKind classifies an indicator of compromise.
type IOCKind string

// Indicator kinds emitted by extraction.
const (
	IOCDomain   IOCKind = "domain"
	IOCFileName IOCKind = "filename"
	IOCFilePath IOCKind = "filepath"
	IOCService  IOCKind = "service"
	IOCRegistry IOCKind = "registry"
	IOCYaraRule IOCKind = "yara-rule"
)

// IOC is one indicator with its provenance.
type IOC struct {
	Kind   IOCKind
	Value  string
	Source string // "static" or "sandbox"
}

// IOCReport is the deliverable of a dissection: the machine-consumable
// indicator list the paper's vendor reports ended with.
type IOCReport struct {
	Sample string
	IOCs   []IOC
}

// ExtractIOCs merges indicators from a static report and (optionally) a
// sandbox behaviour report, de-duplicated and sorted.
func ExtractIOCs(static *StaticReport, behaviour *BehaviorReport) *IOCReport {
	rep := &IOCReport{}
	seen := map[string]bool{}
	add := func(kind IOCKind, value, source string) {
		value = strings.TrimSpace(value)
		if value == "" {
			return
		}
		key := string(kind) + "|" + strings.ToLower(value)
		if seen[key] {
			return
		}
		seen[key] = true
		rep.IOCs = append(rep.IOCs, IOC{Kind: kind, Value: value, Source: source})
	}

	if static != nil {
		rep.Sample = static.Name
		add(IOCFileName, static.Name, "static")
		for _, s := range static.Strings {
			low := strings.ToLower(s)
			switch {
			case strings.HasPrefix(low, "www.") || strings.Contains(low, ".com"):
				add(IOCDomain, s, "static")
			case strings.Contains(low, `\`):
				add(IOCFilePath, s, "static")
			case strings.Contains(low, ".exe") || strings.Contains(low, ".dll") ||
				strings.Contains(low, ".sys") || strings.Contains(low, ".ocx") ||
				strings.Contains(low, ".inf"):
				add(IOCFileName, s, "static")
			}
		}
		for _, res := range static.Resources {
			if res.DecryptsToImage && res.NestedName != "" {
				add(IOCFileName, res.NestedName, "static")
			}
		}
		for _, hit := range static.YaraHits {
			add(IOCYaraRule, hit, "static")
		}
	}
	if behaviour != nil {
		if rep.Sample == "" {
			rep.Sample = behaviour.Sample
		}
		for _, d := range behaviour.DomainsContacted {
			add(IOCDomain, d, "sandbox")
		}
		for _, f := range behaviour.FilesCreated {
			add(IOCFilePath, f, "sandbox")
		}
		for _, s := range behaviour.ServicesCreated {
			add(IOCRegistry, s, "sandbox")
		}
	}

	sort.Slice(rep.IOCs, func(i, j int) bool {
		if rep.IOCs[i].Kind != rep.IOCs[j].Kind {
			return rep.IOCs[i].Kind < rep.IOCs[j].Kind
		}
		return rep.IOCs[i].Value < rep.IOCs[j].Value
	})
	return rep
}

// ByKind returns the indicator values of one kind.
func (r *IOCReport) ByKind(kind IOCKind) []string {
	var out []string
	for _, ioc := range r.IOCs {
		if ioc.Kind == kind {
			out = append(out, ioc.Value)
		}
	}
	return out
}

// Render produces the indicator list, one per line.
func (r *IOCReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== IOCs for %s (%d indicators)\n", r.Sample, len(r.IOCs))
	for _, ioc := range r.IOCs {
		fmt.Fprintf(&b, "  %-9s %-60s [%s]\n", ioc.Kind, ioc.Value, ioc.Source)
	}
	return b.String()
}

// MatchPaths reports which of the given paths contain any filename/path
// indicator from the report — the fleet-hunting primitive.
func (r *IOCReport) MatchPaths(paths []string) []string {
	var needles []string
	for _, ioc := range r.IOCs {
		if ioc.Kind == IOCFileName || ioc.Kind == IOCFilePath {
			needles = append(needles, strings.ToLower(ioc.Value))
		}
	}
	var out []string
	for _, p := range paths {
		low := strings.ToLower(p)
		for _, n := range needles {
			if strings.Contains(low, n) || strings.Contains(n, low) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

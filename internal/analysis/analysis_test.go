package analysis

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/cnc"
	"repro/internal/host"
	"repro/internal/malware/shamoon"
	"repro/internal/netsim"
	"repro/internal/pe"
	"repro/internal/pki"
	"repro/internal/sim"
	"repro/internal/yara"
)

func seed(b byte) [32]byte {
	var s [32]byte
	s[0] = b
	return s
}

func buildShamoon(t *testing.T) (*sim.Kernel, *shamoon.Shamoon, *pki.Store) {
	t.Helper()
	k := sim.NewKernel(sim.WithSeed(99), sim.WithStart(shamoon.AramcoTrigger.Add(-48*time.Hour)))
	root := pki.NewRoot("SimRoot CA", pki.HashStrong, seed(1), k.Now().Add(-365*24*time.Hour), 100*365*24*time.Hour)
	eldosKey := pki.NewKeypair(seed(2))
	eldosCert, err := root.Issue(k.Now(), pki.IssueRequest{
		Subject: "Eldos Corporation", Usages: pki.UsageDriverSign,
		Lifetime: 10 * 365 * 24 * time.Hour, PubKey: eldosKey.Public,
	})
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	sh, err := shamoon.Build(k, shamoon.Config{
		ReporterDomain: "attacker.example",
		DriverKey:      eldosKey,
		DriverCert:     eldosCert,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return k, sh, pki.NewStore(root.Cert)
}

func TestStaticAnalysisOfShamoonMain(t *testing.T) {
	k, sh, store := buildShamoon(t)
	_ = k
	rules, err := CompileDisclosureRules("shamoon")
	if err != nil {
		t.Fatalf("CompileDisclosureRules: %v", err)
	}
	an := &Analyzer{Store: store, Rules: rules}
	rep, err := an.Analyze(sh.MainImage, sh.MainImage.Timestamp)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if rep.Name != "TrkSvr.exe" || rep.Machine != "x86" {
		t.Fatalf("header: %+v", rep)
	}
	// Three encrypted resources flagged.
	if len(rep.Resources) != 3 {
		t.Fatalf("resources = %d", len(rep.Resources))
	}
	for _, res := range rep.Resources {
		if !res.LikelyEncrypted {
			t.Fatalf("resource %d not flagged encrypted (entropy %.2f)", res.ID, res.Entropy)
		}
		if res.RecoveredKey == nil {
			t.Fatalf("resource %d: XOR key not recovered", res.ID)
		}
		if !res.DecryptsToImage {
			t.Fatalf("resource %d: decrypted payload not recognized as image", res.ID)
		}
	}
	// The YARA dissection rule fires on the dropper.
	joined := strings.Join(rep.YaraHits, ",")
	if !strings.Contains(joined, "Shamoon_Dropper") {
		t.Fatalf("yara hits = %v", rep.YaraHits)
	}
	// Unsigned main image.
	if rep.Signature.Present {
		t.Fatal("TrkSvr.exe should be unsigned")
	}
	// Render smoke test.
	out := rep.Render()
	if !strings.Contains(out, "ENCRYPTED") || !strings.Contains(out, "TrkSvr.exe") {
		t.Fatalf("render = %s", out)
	}
}

func TestImpHashClustersVariants(t *testing.T) {
	// The 32- and 64-bit Shamoon variants share the import table, so they
	// share the imphash; an unrelated image does not.
	_, sh, _ := buildShamoon(t)
	h32 := ImpHash(sh.MainImage)
	h64 := ImpHash(sh.MainImage64)
	if h32 == "" || h32 != h64 {
		t.Fatalf("variant imphashes differ: %q vs %q", h32, h64)
	}
	other := &pe.File{Name: "other.exe", Machine: pe.MachineX86, Timestamp: time.Unix(0, 0),
		Imports: []pe.Import{{Library: "user32.dll", Functions: []string{"MessageBoxW"}}}}
	if ImpHash(other) == h32 {
		t.Fatal("unrelated image shares the imphash")
	}
	// Order-normalized: shuffled imports hash identically.
	shuffled := &pe.File{Name: "s", Machine: pe.MachineX86, Timestamp: time.Unix(0, 0),
		Imports: []pe.Import{
			{Library: "mpr.dll", Functions: []string{"WNetAddConnection2W"}},
			{Library: "advapi32.dll", Functions: []string{"StartServiceW", "CreateServiceW"}},
		}}
	if ImpHash(shuffled) != h32 {
		t.Fatalf("order normalization broken: %q vs %q", ImpHash(shuffled), h32)
	}
}

func TestStaticAnalysisSignedDriver(t *testing.T) {
	k, sh, store := buildShamoon(t)
	an := &Analyzer{Store: store}
	rep, err := an.Analyze(sh.RawDiskDriver, k.Now())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !rep.Signature.Present || rep.Signature.Signer != "Eldos Corporation" {
		t.Fatalf("signature = %+v", rep.Signature)
	}
	if len(rep.Signature.ValidFor) != 1 || rep.Signature.ValidFor[0] != "driver-sign" {
		t.Fatalf("ValidFor = %v", rep.Signature.ValidFor)
	}
}

func TestXORKeyRecoveryKnownKeys(t *testing.T) {
	// Structured plaintext: an SPE image.
	img := &pe.File{Name: "component.exe", Machine: pe.MachineX86, Timestamp: time.Unix(0, 0),
		Sections: []pe.Section{{Name: ".text", Data: append([]byte("some code with strings and structure"), make([]byte, 4096)...)}}}
	plain, err := img.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for _, key := range [][]byte{{0x5A}, {0xA7}, {0x13, 0x37}, {0xDE, 0xAD, 0xBE}} {
		cipher := pe.XOR(plain, key)
		got, recovered, ok := RecoverXORKey(cipher, 4)
		if !ok {
			t.Fatalf("key % X: recovery not confident", key)
		}
		if !bytes.Equal(recovered, plain) {
			t.Fatalf("key % X: wrong plaintext (got key % X)", key, got)
		}
	}
}

func TestXORKeyRecoveryRejectsRandom(t *testing.T) {
	k := sim.NewKernel(sim.WithSeed(5))
	random := k.RNG().Bytes(8 * 1024)
	if _, _, ok := RecoverXORKey(random, 4); ok {
		t.Fatal("recovery claimed confidence on random data")
	}
	if _, _, ok := RecoverXORKey([]byte("tiny"), 4); ok {
		t.Fatal("recovery on tiny input")
	}
}

func TestSignatureAVBlocksKnownFamily(t *testing.T) {
	k, sh, store := buildShamoon(t)
	rules, _ := CompileDisclosureRules("shamoon")
	av := NewSignatureAV("SimAV", rules)

	h := host.New(k, "GUARDED", host.WithCertStore(store))
	h.AddSecurity(av)
	if _, err := h.Execute(sh.MainImage, true); err == nil {
		t.Fatal("AV with disclosure rules did not block the dropper")
	}

	// Before disclosure (no rules) the same sample runs.
	h2 := host.New(k, "UNGUARDED", host.WithCertStore(store))
	h2.AddSecurity(NewSignatureAV("SimAV", nil))
	if _, err := h2.Execute(sh.MainImage, true); err != nil {
		t.Fatalf("rule-less AV blocked execution: %v", err)
	}
}

func TestSignatureAVUpdateRules(t *testing.T) {
	k, sh, store := buildShamoon(t)
	av := NewSignatureAV("SimAV", nil)
	h := host.New(k, "WS", host.WithCertStore(store))
	h.AddSecurity(av)
	if _, err := h.Execute(sh.MainImage, true); err != nil {
		t.Fatalf("pre-update block: %v", err)
	}
	rules, _ := CompileDisclosureRules("shamoon")
	av.UpdateRules(rules)
	if av.ScanImage(h, sh.MainImage) == "" {
		t.Fatal("updated rules do not detect")
	}
}

func TestSandboxDetonationOfShamoon(t *testing.T) {
	// A fully self-contained detonation: fresh sandbox, its own build of
	// the family bound into the sandbox registry.
	sb := NewSandbox(42, WithDecoyDocs(20))
	// Build Shamoon against the sandbox kernel, triggering soon.
	root := pki.NewRoot("SimRoot CA", pki.HashStrong, seed(1), sb.K.Now().Add(-time.Hour), 100*365*24*time.Hour)
	eldosKey := pki.NewKeypair(seed(2))
	eldosCert, _ := root.Issue(sb.K.Now(), pki.IssueRequest{
		Subject: "Eldos Corporation", Usages: pki.UsageDriverSign,
		Lifetime: 10 * 365 * 24 * time.Hour, PubKey: eldosKey.Public,
	})
	sb.Victim.CertStore.AddRoot(root.Cert)
	sh, err := shamoon.Build(sb.K, shamoon.Config{
		TriggerAt:      sb.K.Now().Add(2 * time.Hour),
		ReporterDomain: "home.attacker.example",
		DriverKey:      eldosKey,
		DriverCert:     eldosCert,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sh.BindTo(sb.Registry)

	rep := sb.Run(sh.MainImage, 6*time.Hour)
	if !rep.Executed {
		t.Fatalf("not executed: %s", rep.ExecErr)
	}
	if len(rep.FilesCreated) == 0 {
		t.Fatal("no files created")
	}
	foundTrkSvr := false
	for _, f := range rep.FilesCreated {
		if strings.Contains(f, "trksvr.exe") {
			foundTrkSvr = true
		}
	}
	if !foundTrkSvr {
		t.Fatalf("dropper artefacts not observed: %v", rep.FilesCreated)
	}
	if len(rep.ServicesCreated) == 0 || len(rep.TasksCreated) == 0 {
		t.Fatalf("persistence not observed: %+v", rep)
	}
	// The sinkhole caught the reporter's domain.
	if len(rep.DomainsContacted) == 0 || rep.DomainsContacted[0] != "home.attacker.example" {
		t.Fatalf("domains = %v", rep.DomainsContacted)
	}
	if rep.WipeActions == 0 || !rep.HostWiped || rep.HostBootable {
		t.Fatalf("wipe not observed: %+v", rep)
	}
	if len(rep.DriversLoaded) == 0 {
		t.Fatal("raw-disk driver load not observed")
	}
	// Render smoke test.
	if out := rep.Render(); !strings.Contains(out, "wiped=true") {
		t.Fatalf("render = %s", out)
	}
}

func TestSandboxBenignSample(t *testing.T) {
	sb := NewSandbox(7)
	benign := &pe.File{Name: "notepad.exe", Machine: pe.MachineX86, Timestamp: sb.K.Now(),
		Sections: []pe.Section{{Name: ".text", Data: []byte("hello world")}}}
	rep := sb.Run(benign, time.Hour)
	if !rep.Executed {
		t.Fatal("benign sample blocked")
	}
	if len(rep.FilesCreated) != 0 || rep.WipeActions != 0 || len(rep.DomainsContacted) != 0 {
		t.Fatalf("benign sample produced activity: %+v", rep)
	}
}

func TestTrendClassifierMatchesPaperShape(t *testing.T) {
	stuxnetProfile := ClassifyTrends(TrendInput{
		Family: "stuxnet", ZeroDaysUsed: 4, SignedComponents: true, ICSCapability: true,
		HardwareFingerprinting: true, SpreadLimited: true,
		StolenCertificate: true, ModulesDownloadable: true,
		USBInfectionVector: true, SelfRemoval: true, RemoteTrigger: true,
	})
	flameProfile := ClassifyTrends(TrendInput{
		Family: "flame", ZeroDaysUsed: 1, ForgedCertificate: true, CnCServerCount: 22,
		ModularRuntime: true, SpreadLimited: true, ModulesDownloadable: true,
		USBInfectionVector: true, USBDataFerrying: true, SelfRemoval: true, RemoteTrigger: true,
	})
	shamoonProfile := ClassifyTrends(TrendInput{
		Family: "shamoon", BroadWormBehaviour: true, LegitimateDriverAbuse: true,
		Destructive: true,
	})

	// Paper shape: Stuxnet and Flame far more sophisticated than Shamoon.
	if stuxnetProfile.Score(AxisSophisticated) <= shamoonProfile.Score(AxisSophisticated) {
		t.Fatal("stuxnet should out-score shamoon on sophistication")
	}
	if flameProfile.Score(AxisSophisticated) <= shamoonProfile.Score(AxisSophisticated) {
		t.Fatal("flame should out-score shamoon on sophistication")
	}
	// All three abuse certificates in some way.
	for _, p := range []TrendProfile{stuxnetProfile, flameProfile, shamoonProfile} {
		if p.Score(AxisCertified) == 0 {
			t.Fatalf("%s: certified axis = 0", p.Family)
		}
	}
	// Shamoon has no suicide module (paper, V-F: "all described malware
	// (except Shamoon) have an uninstallation module").
	if shamoonProfile.Score(AxisSuiciding) != 0 {
		t.Fatalf("shamoon suiciding = %d", shamoonProfile.Score(AxisSuiciding))
	}
	if stuxnetProfile.Score(AxisSuiciding) == 0 || flameProfile.Score(AxisSuiciding) == 0 {
		t.Fatal("stuxnet/flame should score on suiciding")
	}
	// Flame leads on modularity.
	if flameProfile.Score(AxisModular) < stuxnetProfile.Score(AxisModular) {
		t.Fatal("flame should lead modularity")
	}

	table := RenderTable(stuxnetProfile, flameProfile, shamoonProfile)
	for _, want := range []string{"sophisticated", "stuxnet", "flame", "shamoon", "usb-spreading"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestCompileAllDisclosureRules(t *testing.T) {
	rs, err := CompileDisclosureRules()
	if err != nil {
		t.Fatalf("CompileDisclosureRules: %v", err)
	}
	if len(rs.Rules) < 4 {
		t.Fatalf("rules = %d", len(rs.Rules))
	}
}

func TestDisclosureRulesAreFamilySpecific(t *testing.T) {
	_, sh, _ := buildShamoon(t)
	stuxRules, _ := CompileDisclosureRules("stuxnet")
	raw, _ := sh.MainImage.Marshal()
	if hits := stuxRules.ScanNames(raw); len(hits) != 0 {
		t.Fatalf("stuxnet rules hit shamoon: %v", hits)
	}
}

func TestInterestingStringsFilter(t *testing.T) {
	data := []byte("boring words here\x00www.mypremierfutbol.com\x00netinit.exe\x00random filler")
	got := interestingStrings(data, 6)
	joined := strings.Join(got, "|")
	if !strings.Contains(joined, "futbol") || !strings.Contains(joined, "netinit.exe") {
		t.Fatalf("got %v", got)
	}
	for _, s := range got {
		if s == "boring words here" {
			t.Fatal("boring string kept")
		}
	}
}

func TestSandboxYaraPipeline(t *testing.T) {
	// Static + dynamic pipeline: hunt for the Flame C&C protocol rule in
	// traffic... simplified: confirm the yara engine integrates with
	// image bytes from an arbitrary family build.
	_, sh, store := buildShamoon(t)
	rules := yara.MustCompile(`
rule ReporterComponent {
    strings:
        $get = "data.asp"
        $inf = "f1.inf"
    condition:
        all of them
}`)
	an := &Analyzer{Store: store, Rules: rules}
	rep, err := an.Analyze(sh.ReporterImage, sh.ReporterImage.Timestamp)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(rep.YaraHits) != 1 || rep.YaraHits[0] != "ReporterComponent" {
		t.Fatalf("hits = %v", rep.YaraHits)
	}
}

func TestSandboxWithVictimOptions(t *testing.T) {
	sb := NewSandbox(3, WithVictimOptions(host.WithOS(host.WinXP)))
	if sb.Victim.OS != host.WinXP {
		t.Fatalf("victim OS = %v", sb.Victim.OS)
	}
}

func TestSinkholeCatchesArbitraryDomains(t *testing.T) {
	sb := NewSandbox(4)
	resp, err := sb.LAN.HTTP(sb.Victim, &netsim.Request{Method: "GET", Host: "never-registered.example", Path: "/x"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("sinkhole: %v %v", err, resp)
	}
	if len(sb.SinkholedRequests) != 1 {
		t.Fatalf("requests = %d", len(sb.SinkholedRequests))
	}
}

// Guard against regressions in cnc import (used by the full campaign
// examples that build on the analysis package).
var _ = cnc.ClientFL
